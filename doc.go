// Package repro reproduces "Eliminating on-chip traffic waste: are we
// there yet?" (Smolinski): a 16-tile multicore memory-system simulator
// with directory MESI and DeNovo protocol families built as state
// machines over a shared coherence-controller substrate
// (internal/coher), a composable protocol registry (the paper's nine
// canonical names plus base+Option ablation specs such as
// DeNovo+BypL2), a pluggable NoC (mesh, ring, or torus topologies;
// ideal or cycle-level VC router models with congestion telemetry),
// DDR3 DRAM, the paper's waste-classification methodology, six
// benchmark workload generators, and a parallel sharded experiment
// engine that regenerates every figure of the evaluation (Figures
// 5.1a-d, 5.2, 5.3a-c) per topology, router and protocol spec, pinned
// by a golden-figure regression suite.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The library entry point is internal/core (RunMatrix and the Figure
// builders); cmd/trafficsim is the command-line front end.
package repro
