// Package repro reproduces "Eliminating on-chip traffic waste: are we
// there yet?" (Smolinski): a 16-tile multicore memory-system simulator
// with directory MESI and DeNovo protocol families built as state
// machines over a shared coherence-controller substrate
// (internal/coher), a composable protocol registry (the paper's nine
// canonical names plus base+Option ablation specs such as
// DeNovo+BypL2), a parameterized workload registry (six ported
// benchmarks, six synthetic traffic patterns, trace record/replay), a
// pluggable NoC (mesh, ring, or torus topologies; ideal or cycle-level
// VC router models with congestion telemetry), DDR3 DRAM, and the
// paper's waste-classification methodology. A parallel sharded
// experiment engine regenerates every figure of the evaluation
// (Figures 5.1a-d, 5.2, 5.3a-c) per configuration, and a sweep engine
// runs any parameter axis — topology, router, VC geometry, or a
// workload parameter such as hotspot(t=1..16) — into assembled
// load-latency and waste-vs-load curve tables. Both are pinned by
// golden regression suites.
//
// See README.md for a walkthrough, docs/GUIDE.md for the task-oriented
// user guide and spec syntax, docs/FIGURES.md for the figure-by-figure
// mapping to the paper (units and known deviations), and DESIGN.md for
// the system inventory and modelling decisions. The library entry
// point is internal/core (RunMatrix, RunSweep, and the Figure
// builders); cmd/trafficsim is the command-line front end and
// cmd/papertables prints every registry inventory.
package repro
