// Package dram models a single-channel DDR3 DRAM with an FR-FCFS memory
// controller and an open-page row-buffer policy, in the spirit of DRAMSim2
// as used by the paper (Table 4.1: DDR3-1066, 8 banks, 2 ranks, FR-FCFS,
// open page).
//
// Timing parameters are expressed in core cycles. At the paper's 2 GHz core
// clock, one DDR3-1066 memory cycle is 3.75 core cycles; the defaults below
// correspond to 7-7-7 device timings and a BL8 burst.
//
// The model supports partial writes (writing a subset of a cache line),
// matching the assumption the thesis makes in §3.1 for the dirty-words-only
// L2 writeback optimization.
package dram

import "repro/internal/sim"

// Config holds channel timing and geometry.
type Config struct {
	TRP      int64  // precharge, core cycles
	TRCD     int64  // activate-to-column, core cycles
	CL       int64  // column access (CAS) latency, core cycles
	TBurst   int64  // data burst occupancy for one 64B line, core cycles
	Banks    int    // banks per channel (ranks * banks/rank)
	RowBytes uint32 // row-buffer size in bytes
}

// DefaultConfig returns DDR3-1066 7-7-7 timings at a 2 GHz core clock.
func DefaultConfig() Config {
	return Config{TRP: 26, TRCD: 26, CL: 26, TBurst: 15, Banks: 16, RowBytes: 8192}
}

// Request is one line-granularity access presented to the controller.
type Request struct {
	Addr  uint32 // byte address (line-aligned by convention)
	Write bool
	Done  func(finish int64) // invoked when the burst completes

	arrive int64
}

type bank struct {
	freeAt  int64
	openRow uint32
	hasRow  bool
}

// schedWindow bounds how many queued requests the FR-FCFS scheduler
// examines per decision, like a real controller's finite scheduling queue.
const schedWindow = 48

// Channel is one memory channel with its own FR-FCFS scheduler.
type Channel struct {
	cfg          Config
	k            *sim.Kernel
	banks        []bank
	busFree      int64
	queue        []*Request
	wakeAt       int64 // cycle of the armed wakeup; 0 = none armed
	rowShift     uint  // log2(RowBytes)
	bankMask     uint32
	schedPending bool

	// Stats.
	Reads, Writes           uint64
	RowHits, RowMisses      uint64
	BytesRead, BytesWritten uint64
}

// NewChannel creates a channel driven by kernel k. Banks and RowBytes
// must be powers of two (the defaults are).
func NewChannel(k *sim.Kernel, cfg Config) *Channel {
	if cfg.Banks <= 0 {
		cfg = DefaultConfig()
	}
	if cfg.Banks&(cfg.Banks-1) != 0 || cfg.RowBytes&(cfg.RowBytes-1) != 0 {
		panic("dram: Banks and RowBytes must be powers of two")
	}
	shift := uint(0)
	for 1<<shift < cfg.RowBytes {
		shift++
	}
	return &Channel{
		cfg: cfg, k: k, banks: make([]bank, cfg.Banks),
		rowShift: shift, bankMask: uint32(cfg.Banks - 1),
	}
}

// QueueLen reports the number of requests waiting to issue.
func (c *Channel) QueueLen() int { return len(c.queue) }

// Submit enqueues a request; Done fires when its data burst completes.
// The scheduling decision is deferred to the end of the current cycle so
// that all same-cycle arrivals compete in one FR-FCFS pick.
func (c *Channel) Submit(r *Request) {
	r.arrive = c.k.Now()
	c.queue = append(c.queue, r)
	if !c.schedPending {
		c.schedPending = true
		c.k.After(0, func() {
			c.schedPending = false
			c.schedule()
		})
	}
}

// bankRow maps an address to (bank index, row id). Consecutive rows stripe
// across banks so streaming accesses overlap bank activity, while lines
// within one row share an open page.
func (c *Channel) bankRow(addr uint32) (int, uint32) {
	rowID := addr >> c.rowShift
	return int(rowID & c.bankMask), rowID >> uintTrailing(c.bankMask)
}

// uintTrailing returns log2(mask+1) for an all-ones mask.
func uintTrailing(mask uint32) uint {
	n := uint(0)
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}

// schedule issues every request that can start now, preferring row hits
// (FR-FCFS) within a bounded scheduling window, then arms a wakeup at the
// earliest time another blocked request could start.
func (c *Channel) schedule() {
	now := c.k.Now()
	for {
		window := len(c.queue)
		if window > schedWindow {
			window = schedWindow
		}
		idx := -1
		// First ready row hit in arrival order; otherwise oldest ready.
		for i := 0; i < window; i++ {
			b, row := c.bankRow(c.queue[i].Addr)
			bk := &c.banks[b]
			if bk.freeAt > now {
				continue
			}
			if bk.hasRow && bk.openRow == row {
				idx = i
				break
			}
			if idx == -1 {
				idx = i
			}
		}
		if idx == -1 {
			break
		}
		r := c.queue[idx]
		c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
		c.issue(r, now)
	}
	// Arm a wakeup for the earliest bank-free time among blocked requests.
	if len(c.queue) == 0 {
		return
	}
	window := len(c.queue)
	if window > schedWindow {
		window = schedWindow
	}
	earliest := int64(-1)
	for i := 0; i < window; i++ {
		b, _ := c.bankRow(c.queue[i].Addr)
		if f := c.banks[b].freeAt; earliest == -1 || f < earliest {
			earliest = f
		}
	}
	if earliest <= now { // should not happen, defensive
		earliest = now + 1
	}
	if c.wakeAt != 0 && c.wakeAt > now && c.wakeAt <= earliest {
		return // an earlier (or equal) wakeup is already armed
	}
	c.wakeAt = earliest
	c.k.At(earliest, func() {
		if c.wakeAt == earliest {
			c.wakeAt = 0
		}
		c.schedule()
	})
}

func (c *Channel) issue(r *Request, now int64) {
	b, row := c.bankRow(r.Addr)
	bk := &c.banks[b]
	start := now
	var colReady int64
	switch {
	case bk.hasRow && bk.openRow == row:
		c.RowHits++
		colReady = start
	case bk.hasRow: // conflict: precharge + activate
		c.RowMisses++
		colReady = start + c.cfg.TRP + c.cfg.TRCD
	default: // closed: activate only
		c.RowMisses++
		colReady = start + c.cfg.TRCD
	}
	bk.hasRow, bk.openRow = true, row
	dataStart := colReady + c.cfg.CL
	if dataStart < c.busFree {
		dataStart = c.busFree
	}
	finish := dataStart + c.cfg.TBurst
	c.busFree = finish
	bk.freeAt = finish
	if r.Write {
		c.Writes++
		c.BytesWritten += 64
	} else {
		c.Reads++
		c.BytesRead += 64
	}
	done := r.Done
	c.k.At(finish, func() {
		if done != nil {
			done(finish)
		}
		c.schedule()
	})
}
