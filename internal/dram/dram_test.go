package dram

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

func newCh() (*sim.Kernel, *Channel) {
	k := &sim.Kernel{}
	return k, NewChannel(k, DefaultConfig())
}

func TestClosedBankRead(t *testing.T) {
	k, c := newCh()
	var fin int64
	c.Submit(&Request{Addr: 0, Done: func(f int64) { fin = f }})
	k.Run()
	// Closed bank: TRCD + CL + TBurst = 26+26+15 = 67.
	if fin != 67 {
		t.Fatalf("closed-bank read finished at %d, want 67", fin)
	}
	if c.RowMisses != 1 || c.RowHits != 0 {
		t.Fatalf("hits/misses = %d/%d", c.RowHits, c.RowMisses)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	k, c := newCh()
	var f1, f2, f3 int64
	c.Submit(&Request{Addr: 0, Done: func(f int64) { f1 = f }})
	c.Submit(&Request{Addr: 64, Done: func(f int64) { f2 = f }}) // same row
	k.Run()
	hitLat := f2 - f1
	// Row hit after a burst: CL+TBurst=41 but bus busy until f1, so the
	// second finishes at f1 + max(TBurst, ...) — just require hit < miss.
	k2 := &sim.Kernel{}
	c2 := NewChannel(k2, DefaultConfig())
	c2.Submit(&Request{Addr: 0, Done: func(f int64) { f1 = f }})
	// conflicting row in same bank: row stride = RowBytes*Banks
	conflict := DefaultConfig().RowBytes * uint32(DefaultConfig().Banks)
	c2.Submit(&Request{Addr: conflict, Done: func(f int64) { f3 = f }})
	k2.Run()
	missLat := f3 - f1
	if hitLat >= missLat {
		t.Fatalf("row hit (%d) not faster than row miss (%d)", hitLat, missLat)
	}
	if c.RowHits != 1 {
		t.Fatalf("RowHits = %d, want 1", c.RowHits)
	}
	if c2.RowMisses != 2 {
		t.Fatalf("conflict RowMisses = %d, want 2", c2.RowMisses)
	}
}

func TestBankParallelism(t *testing.T) {
	// Two requests to different banks overlap more than two to one bank.
	cfg := DefaultConfig()
	run := func(a2 uint32) int64 {
		k := &sim.Kernel{}
		c := NewChannel(k, cfg)
		c.Submit(&Request{Addr: 0})
		c.Submit(&Request{Addr: a2})
		k.Run()
		return k.Now()
	}
	sameBank := run(cfg.RowBytes * uint32(cfg.Banks)) // same bank, diff row
	diffBank := run(cfg.RowBytes)                     // next bank
	if diffBank >= sameBank {
		t.Fatalf("different banks (%d) not faster than same bank (%d)", diffBank, sameBank)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := DefaultConfig()
	k := &sim.Kernel{}
	c := NewChannel(k, cfg)
	var order []string
	// Open row 0 in bank 0.
	c.Submit(&Request{Addr: 0, Done: func(int64) { order = append(order, "warm") }})
	k.Run()
	// Now enqueue: a row-conflict first, then a row-hit. While the bank is
	// free, FR-FCFS should pick the row hit first.
	conflict := cfg.RowBytes * uint32(cfg.Banks)
	c.Submit(&Request{Addr: conflict, Done: func(int64) { order = append(order, "miss") }})
	c.Submit(&Request{Addr: 64, Done: func(int64) { order = append(order, "hit") }})
	k.Run()
	if len(order) != 3 || order[1] != "hit" || order[2] != "miss" {
		t.Fatalf("service order = %v, want hit before miss", order)
	}
}

func TestWriteCounted(t *testing.T) {
	k, c := newCh()
	c.Submit(&Request{Addr: 0, Write: true})
	c.Submit(&Request{Addr: 128})
	k.Run()
	if c.Writes != 1 || c.Reads != 1 {
		t.Fatalf("reads/writes = %d/%d", c.Reads, c.Writes)
	}
	if c.BytesWritten != 64 || c.BytesRead != 64 {
		t.Fatalf("bytes = %d/%d", c.BytesRead, c.BytesWritten)
	}
}

func TestAllRequestsComplete(t *testing.T) {
	k, c := newCh()
	const n = 500
	done := 0
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		c.Submit(&Request{
			Addr:  uint32(rng.Intn(1<<20)) &^ 63,
			Write: rng.Intn(3) == 0,
			Done:  func(int64) { done++ },
		})
	}
	k.Run()
	if done != n {
		t.Fatalf("completed %d/%d requests", done, n)
	}
	if c.QueueLen() != 0 {
		t.Fatalf("queue not drained: %d", c.QueueLen())
	}
}

func TestBandwidthBound(t *testing.T) {
	// The data bus serializes bursts: n back-to-back row hits cannot finish
	// faster than n*TBurst.
	k, c := newCh()
	const n = 64
	for i := 0; i < n; i++ {
		c.Submit(&Request{Addr: uint32(i * 64)}) // one row, all hits after first
	}
	k.Run()
	min := int64(n) * DefaultConfig().TBurst
	if k.Now() < min {
		t.Fatalf("finished at %d, violates bus serialization bound %d", k.Now(), min)
	}
}

func TestStreamingMostlyRowHits(t *testing.T) {
	k, c := newCh()
	lines := int(DefaultConfig().RowBytes / 64 * 4) // 4 rows worth
	for i := 0; i < lines; i++ {
		c.Submit(&Request{Addr: uint32(i * 64)})
	}
	k.Run()
	if c.RowHits < uint64(lines)*9/10 {
		t.Fatalf("streaming row hits = %d/%d, want >90%%", c.RowHits, lines)
	}
}

func TestLateArrivalScheduled(t *testing.T) {
	k, c := newCh()
	done := 0
	c.Submit(&Request{Addr: 0, Done: func(int64) { done++ }})
	k.At(1000, func() {
		c.Submit(&Request{Addr: 64, Done: func(int64) { done++ }})
	})
	k.Run()
	if done != 2 {
		t.Fatalf("late arrival not serviced: done=%d", done)
	}
}

func BenchmarkChannelRandom(b *testing.B) {
	k := &sim.Kernel{}
	c := NewChannel(k, DefaultConfig())
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < b.N; i++ {
		c.Submit(&Request{Addr: uint32(rng.Intn(1<<24)) &^ 63})
		if c.QueueLen() > 256 {
			k.Run()
		}
	}
	k.Run()
}
