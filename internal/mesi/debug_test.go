package mesi_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/mesi"
	"repro/internal/workloads"
)

// TestDeadlockDiagnostics is a development aid: on deadlock it prints the
// protocol's in-flight state. It passes when the system runs clean.
func TestDeadlockDiagnostics(t *testing.T) {
	prog := workloads.MustByName("FFT", workloads.Tiny, 16)
	env, err := memsys.NewEnv(testConfig(), prog.FootprintBytes(), prog.Regions())
	if err != nil {
		t.Fatal(err)
	}
	sys := mesi.New(env, mesi.Options{})
	r := core.NewRunner(env, sys, prog)
	var snap string
	r.OnViolation = func(addr uint32) { snap = sys.DumpWord(addr) }
	if err := r.Run(); err != nil {
		t.Fatalf("%v\nat violation:\n%s\nat end:\n%s\n%s", err, snap, sys.DumpWord(r.ViolationAddr), sys.DebugState())
	}
}
