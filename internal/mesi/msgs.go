package mesi

import (
	"repro/internal/coher"
	"repro/internal/memsys"
)

// L1 line states (cache.Line.State).
const (
	stI uint8 = iota // invalid (only via Line.Valid=false in practice)
	stS              // shared
	stE              // exclusive clean
	stM              // modified
)

// Per-word state bit: the word was written by the local core (dirty).
const wDirty uint8 = 1

// lineWords mirrors memsys geometry for fixed-size message payloads.
const lineWords = memsys.WordsPerLine

// --- L1 -> home L2 requests ---

type msgGetS struct {
	line uint32
	from int
}

type msgGetX struct {
	line uint32
	from int
}

type msgUpgrade struct {
	line uint32
	from int
}

// msgPut is a writeback (dirty=true: PutM with data) or a clean
// replacement notice (dirty=false: control only).
type msgPut struct {
	line  uint32
	from  int
	dirty bool
	data  [lineWords]uint32
	wmask uint16 // words actually written by the core
	minst [lineWords]uint64
}

// msgUnblock finishes a directory transaction. Under MMemL1, load fills
// carry the memory data to the L2 as a combined unblock+data message.
type msgUnblock struct {
	line     uint32
	from     int
	withData bool
	data     [lineWords]uint32
	minst    [lineWords]uint64
	hops     int
}

// --- home L2 -> L1 ---

// msgData is any data fill destined to an L1 (from L2, from an owner L1,
// or from a memory controller under MMemL1).
type msgData struct {
	line  uint32
	state uint8 // granted state: stS, stE or stM
	acks  int   // invalidation acks the requestor must collect
	data  [lineWords]uint32
	minst [lineWords]uint64
	// transfer marks an ownership move (FwdGetX): the words are the same
	// on-chip copies, so the receiver must not add memory references.
	transfer bool
	fromMem  bool
	tIssue   int64 // copied from the request, for Figure 5.2
	tAtMC    int64
	tDram    int64
	hops     int
	class    memsys.Class
	// needsUnblock is false for 3-hop data from an owner (the requestor
	// still unblocks once, tracked by the MSHR).
}

type msgUpgAck struct {
	line uint32
	acks int
}

type msgNack struct {
	line    uint32
	from    int // tile that NACKed (home)
	isPut   bool
	isStore bool
}

// msgInv invalidates a sharer's copy. ackTo is the tile to acknowledge
// (the requestor for GetX/Upgrade, the home for L2 evictions).
type msgInv struct {
	line  uint32
	ackTo int
	toL2  bool // ack goes to the home L2 (recall), not an L1
}

type msgInvAck struct {
	line uint32
	from int
}

// msgFwd forwards a request to the owning L1.
type msgFwd struct {
	line      uint32
	requestor int
	excl      bool // GetX (ownership transfer) vs GetS (downgrade)
	tIssue    int64
}

// msgRecall asks the owner to surrender a line for an L2 eviction.
type msgRecall struct {
	line uint32
}

type msgRecallResp struct {
	line    uint32
	from    int
	hasData bool // owner was M (or held dirty data in its victim buffer)
	data    [lineWords]uint32
	wmask   uint16
}

// msgDowngradeWB carries the owner's data to the home L2 on a FwdGetS.
type msgDowngradeWB struct {
	line  uint32
	from  int
	data  [lineWords]uint32
	wmask uint16
}

type msgWBAck struct {
	line uint32
}

// --- L2 <-> memory controller ---

type msgMemRead struct {
	line      uint32
	home      int // L2 slice tile
	requestor int // core tile
	grant     uint8
	class     memsys.Class
	direct    bool // MMemL1: respond straight to the requestor L1
	tIssue    int64
}

type msgMemData struct {
	line   uint32
	data   [lineWords]uint32
	minst  [lineWords]uint64
	class  memsys.Class
	grant  uint8
	req    int
	tIssue int64
	tAtMC  int64
	tDram  int64
	hops   int
}

type msgMemWB struct {
	line  uint32
	data  [lineWords]uint32
	wmask uint16
}

// --- dispatch (coher.Msg) ---
//
// Each message routes itself to the right component of the destination
// tile; the coher substrate invokes Dispatch on delivery.

func (m *msgData) Dispatch(s *System, tile int)        { s.l1s[tile].handleData(m) }
func (m *msgUpgAck) Dispatch(s *System, tile int)      { s.l1s[tile].handleUpgAck(m) }
func (m *msgNack) Dispatch(s *System, tile int)        { s.l1s[tile].handleNack(m) }
func (m *msgInv) Dispatch(s *System, tile int)         { s.l1s[tile].handleInv(m) }
func (m *msgInvAck) Dispatch(s *System, tile int)      { s.l1s[tile].handleInvAck(m) }
func (m *msgFwd) Dispatch(s *System, tile int)         { s.l1s[tile].handleFwd(m) }
func (m *msgRecall) Dispatch(s *System, tile int)      { s.l1s[tile].handleRecall(m) }
func (m *msgWBAck) Dispatch(s *System, tile int)       { s.l1s[tile].handleWBAck(m) }
func (m *msgGetS) Dispatch(s *System, tile int)        { s.l2s[tile].handleGetS(m) }
func (m *msgGetX) Dispatch(s *System, tile int)        { s.l2s[tile].handleGetX(m) }
func (m *msgUpgrade) Dispatch(s *System, tile int)     { s.l2s[tile].handleUpgrade(m) }
func (m *msgPut) Dispatch(s *System, tile int)         { s.l2s[tile].handlePut(m) }
func (m *msgUnblock) Dispatch(s *System, tile int)     { s.l2s[tile].handleUnblock(m) }
func (m *msgRecallResp) Dispatch(s *System, tile int)  { s.l2s[tile].handleRecallResp(m) }
func (m *msgDowngradeWB) Dispatch(s *System, tile int) { s.l2s[tile].handleDowngradeWB(m) }
func (m *msgMemData) Dispatch(s *System, tile int)     { s.l2s[tile].handleMemData(m) }
func (m *msgMemRead) Dispatch(s *System, tile int)     { s.handleMemRead(tile, m) }
func (m *msgMemWB) Dispatch(s *System, tile int)       { s.handleMemWB(tile, m) }

// Compile-time check that the whole vocabulary dispatches.
var _ = []coher.Msg[*System]{
	(*msgGetS)(nil), (*msgGetX)(nil), (*msgUpgrade)(nil), (*msgPut)(nil),
	(*msgUnblock)(nil), (*msgData)(nil), (*msgUpgAck)(nil), (*msgNack)(nil),
	(*msgInv)(nil), (*msgInvAck)(nil), (*msgFwd)(nil), (*msgRecall)(nil),
	(*msgRecallResp)(nil), (*msgDowngradeWB)(nil), (*msgWBAck)(nil),
	(*msgMemRead)(nil), (*msgMemData)(nil), (*msgMemWB)(nil),
}
