package mesi

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/memsys"
)

// maxStoreTxns bounds how many distinct lines a core's store buffer can be
// fetching concurrently (the 32-entry buffer itself bounds total pending
// writes, §4.2).
const maxStoreTxns = 8

// loadWaiter is a core load blocked on an in-flight line fill.
type loadWaiter struct {
	word int
	done func(val uint32, s memsys.Sample)
}

// mshr tracks one outstanding L1 transaction for a line.
type mshr struct {
	line    uint32
	isStore bool // GetX/Upgrade for the store buffer
	upgrade bool // issued as an Upgrade (may convert to GetX on retry)
	tIssue  int64

	loadWaiters []loadWaiter

	dataArrived bool
	needAcks    int
	gotAcks     int
	state       uint8
	data        [lineWords]uint32
	minst       [lineWords]uint64
	transfer    bool
	fromMem     bool
	tAtMC       int64
	tDram       int64
	hopsIn      int
	class       memsys.Class
}

// wbEntry is a victim buffer entry: an evicted line awaiting its
// writeback acknowledgement. It can still service forwarded requests.
type wbEntry struct {
	line    uint32
	dirty   bool
	aborted bool // ownership moved away; stop retrying
	data    [lineWords]uint32
	wmask   uint16
	minst   [lineWords]uint64
}

// sbEntry is one pending non-blocking write.
type sbEntry struct {
	addr uint32
	val  uint32
}

type l1Cache struct {
	sys  *System
	tile int
	c    *cache.Cache

	mshrs map[uint32]*mshr
	wbBuf map[uint32]*wbEntry

	sb           []sbEntry
	storeTxns    int
	storeUnstall func()
	drainDone    func()
}

func newL1(s *System, tile int) *l1Cache {
	cfg := s.env.Cfg
	return &l1Cache{
		sys:   s,
		tile:  tile,
		c:     cache.New(cfg.L1Bytes, cfg.L1Assoc, memsys.LineBytes),
		mshrs: make(map[uint32]*mshr),
		wbBuf: make(map[uint32]*wbEntry),
	}
}

func (l *l1Cache) env() *memsys.Env { return l.sys.env }

// --- core-facing operations ---

// load begins a blocking load. done fires when the value is available.
func (l *l1Cache) load(addr uint32, done func(uint32, memsys.Sample)) {
	env := l.env()
	env.K.After(env.Cfg.L1Latency, func() { l.loadAttempt(addr, env.K.Now(), done) })
}

func (l *l1Cache) loadAttempt(addr uint32, tIssue int64, done func(uint32, memsys.Sample)) {
	env := l.env()
	// Store-buffer forwarding: the newest pending write to this word wins.
	for i := len(l.sb) - 1; i >= 0; i-- {
		if l.sb[i].addr == addr {
			done(l.sb[i].val, memsys.Sample{Point: memsys.PointL1})
			return
		}
	}
	line, w := memsys.LineOf(addr), memsys.WordIndex(addr)
	if ln := l.c.Lookup(line); ln != nil {
		l.c.Touch(ln)
		env.Prof.L1Load(ln.Inst[w])
		env.Prof.MemLoad(ln.MInst[w])
		done(ln.Data[w], memsys.Sample{Point: memsys.PointL1})
		return
	}
	// A line being written back cannot be re-read until the writeback is
	// acknowledged; retry shortly.
	if _, busy := l.wbBuf[line]; busy {
		env.K.After(env.Cfg.RetryBackoff, func() { l.loadAttempt(addr, tIssue, done) })
		return
	}
	if m, ok := l.mshrs[line]; ok {
		m.loadWaiters = append(m.loadWaiters, loadWaiter{w, done})
		return
	}
	m := &mshr{line: line, tIssue: tIssue}
	m.loadWaiters = append(m.loadWaiters, loadWaiter{w, done})
	l.mshrs[line] = m
	l.sendGetS(m)
}

func (l *l1Cache) sendGetS(m *mshr) {
	env := l.env()
	home := env.Cfg.HomeTile(m.line)
	hops := env.Mesh.Hops(l.tile, home)
	env.Traffic.Ctl(memsys.ClassLD, memsys.BReqCtl, 1, hops)
	l.sys.send(l.tile, home, 1, &msgGetS{line: m.line, from: l.tile})
}

// storePush enqueues a non-blocking write; false when the buffer is full.
func (l *l1Cache) storePush(addr, val uint32) bool {
	if len(l.sb) >= l.env().Cfg.StoreBufferEntries {
		return false
	}
	l.sb = append(l.sb, sbEntry{addr, val})
	l.pumpStores()
	return true
}

// pumpStores issues store transactions for pending lines, up to the
// concurrency bound.
func (l *l1Cache) pumpStores() {
	env := l.env()
	seen := map[uint32]bool{}
	for i := 0; i < len(l.sb); i++ {
		line := memsys.LineOf(l.sb[i].addr)
		if seen[line] {
			continue
		}
		seen[line] = true
		if _, ok := l.mshrs[line]; ok {
			continue // a transaction for this line is already in flight
		}
		if _, busy := l.wbBuf[line]; busy {
			continue // wait for the writeback ack, then retry
		}
		if ln := l.c.Lookup(line); ln != nil && (ln.State == stM || ln.State == stE) {
			l.applyStores(ln)
			i = -1 // sb mutated; restart scan
			seen = map[uint32]bool{}
			continue
		}
		if l.storeTxns >= maxStoreTxns {
			break
		}
		l.storeTxns++
		m := &mshr{line: line, isStore: true, tIssue: env.K.Now()}
		l.mshrs[line] = m
		if ln := l.c.Lookup(line); ln != nil && ln.State == stS {
			m.upgrade = true
			home := env.Cfg.HomeTile(line)
			hops := env.Mesh.Hops(l.tile, home)
			env.Traffic.Ctl(memsys.ClassST, memsys.BReqCtl, 1, hops)
			l.sys.send(l.tile, home, 1, &msgUpgrade{line: line, from: l.tile})
		} else {
			l.sendGetX(m)
		}
	}
	if l.drainDone != nil {
		l.checkDrained()
	}
}

func (l *l1Cache) sendGetX(m *mshr) {
	env := l.env()
	m.upgrade = false
	home := env.Cfg.HomeTile(m.line)
	hops := env.Mesh.Hops(l.tile, home)
	env.Traffic.Ctl(memsys.ClassST, memsys.BReqCtl, 1, hops)
	l.sys.send(l.tile, home, 1, &msgGetX{line: m.line, from: l.tile})
}

// applyStores retires every buffered write targeting a line the core now
// owns (M), then wakes the driver if buffer space freed.
func (l *l1Cache) applyStores(ln *cache.Line) {
	env := l.env()
	ln.State = stM
	kept := l.sb[:0]
	for _, e := range l.sb {
		if memsys.LineOf(e.addr) != ln.Tag {
			kept = append(kept, e)
			continue
		}
		w := memsys.WordIndex(e.addr)
		env.Prof.L1Store(ln.Inst[w])
		env.Prof.MemStore(e.addr)
		if ln.MInst[w] != 0 {
			env.Prof.MemRelease(ln.MInst[w], false)
			ln.MInst[w] = 0
		}
		ln.Data[w] = e.val
		ln.WState[w] |= wDirty
	}
	l.sb = kept
	l.c.Touch(ln)
	if l.storeUnstall != nil {
		// Deferred: the driver's retry re-enters Store, which must not
		// recurse into this apply path synchronously.
		fn := l.storeUnstall
		env.K.After(0, fn)
	}
	if l.drainDone != nil {
		l.checkDrained()
	}
}

// drain registers a barrier-drain continuation: it fires once the store
// buffer is empty and no store transactions remain.
func (l *l1Cache) drain(done func()) {
	l.drainDone = done
	l.checkDrained()
}

func (l *l1Cache) checkDrained() {
	if len(l.sb) == 0 && l.storeTxns == 0 && l.drainDone != nil {
		d := l.drainDone
		l.drainDone = nil
		d()
	}
}

// --- protocol message handlers ---

func (l *l1Cache) handleData(m *msgData) {
	ms := l.mshrs[m.line]
	if ms == nil {
		panic(fmt.Sprintf("mesi: tile %d data without mshr line %#x", l.tile, m.line))
	}
	ms.dataArrived = true
	ms.state = m.state
	ms.needAcks += m.acks
	ms.data = m.data
	ms.minst = m.minst
	ms.transfer = m.transfer
	ms.fromMem = m.fromMem
	ms.tAtMC, ms.tDram, ms.hopsIn = m.tAtMC, m.tDram, m.hops
	ms.class = m.class
	l.tryCompleteFill(ms)
}

func (l *l1Cache) handleUpgAck(m *msgUpgAck) {
	ms := l.mshrs[m.line]
	if ms == nil {
		panic("mesi: upgrade ack without mshr")
	}
	// The line must still be present in S (invalidations racing ahead of
	// the upgrade are NACKed at the directory instead).
	ms.dataArrived = true
	ms.state = stM
	ms.needAcks += m.acks
	l.tryCompleteFill(ms)
}

func (l *l1Cache) handleInvAck(m *msgInvAck) {
	ms := l.mshrs[m.line]
	if ms == nil {
		panic("mesi: inv ack without mshr")
	}
	ms.gotAcks++
	l.tryCompleteFill(ms)
}

// tryCompleteFill finishes a transaction once data and all acks arrived.
func (l *l1Cache) tryCompleteFill(ms *mshr) {
	if !ms.dataArrived || ms.gotAcks < ms.needAcks {
		return
	}
	env := l.env()
	if !ms.upgrade && !l.canAllocate(ms.line) {
		// Every way is held by an in-flight upgrade; retry the fill once
		// those transactions finish.
		env.K.After(env.Cfg.RetryBackoff, func() { l.tryCompleteFill(ms) })
		return
	}
	delete(l.mshrs, ms.line)

	var ln *cache.Line
	if ms.upgrade {
		ln = l.c.Lookup(ms.line)
		if ln == nil {
			panic("mesi: upgraded line vanished")
		}
		ln.State = stM
	} else {
		ln = l.allocate(ms.line)
		ln.State = ms.state
		insts := make([]uint64, lineWords)
		for w := 0; w < lineWords; w++ {
			a := memsys.AddrOf(ms.line, w)
			ln.Data[w] = ms.data[w]
			ln.MInst[w] = ms.minst[w]
			id := env.Prof.L1Arrival(a, false)
			ln.Inst[w] = id
			insts[w] = id
			if !ms.transfer {
				env.Prof.MemAddRef(ms.minst[w])
			}
		}
		env.Traffic.Data(ms.class, ms.hopsIn, insts)
	}

	// Directory unblock. MMemL1 load fills from memory carry the data to
	// the L2 (unblock+data, profiled as load traffic).
	home := env.Cfg.HomeTile(ms.line)
	hops := env.Mesh.Hops(l.tile, home)
	if l.sys.opt.MemToL1 && ms.fromMem && !ms.isStore {
		env.Traffic.Ctl(memsys.ClassLD, memsys.BRespCtl, 1, hops)
		l.sys.send(l.tile, home, 1+memsys.DataFlits(lineWords), &msgUnblock{
			line: ms.line, from: l.tile, withData: true,
			data: ms.data, minst: ms.minst, hops: hops,
		})
	} else {
		env.Traffic.Ctl(memsys.ClassOVH, memsys.BOvhUnblock, 1, hops)
		l.sys.send(l.tile, home, 1, &msgUnblock{line: ms.line, from: l.tile})
	}

	sample := memsys.Sample{Point: memsys.PointOnChip}
	if ms.fromMem {
		sample = memsys.Sample{
			Point:  memsys.PointMemory,
			ToMC:   ms.tAtMC - ms.tIssue,
			Mem:    ms.tDram - ms.tAtMC,
			FromMC: env.K.Now() - ms.tDram,
		}
	}
	for _, wtr := range ms.loadWaiters {
		env.Prof.L1Load(ln.Inst[wtr.word])
		env.Prof.MemLoad(ln.MInst[wtr.word])
		wtr.done(ln.Data[wtr.word], sample)
	}
	if ms.isStore {
		l.storeTxns--
		l.applyStores(ln)
		l.pumpStores()
	}
}

func (l *l1Cache) handleNack(m *msgNack) {
	env := l.env()
	if m.isPut {
		wb := l.wbBuf[m.line]
		if wb == nil {
			return
		}
		if wb.aborted {
			// Ownership moved while the put was in flight; nothing to
			// retry and no ack will come for the stale put.
			delete(l.wbBuf, m.line)
			l.pumpStores()
			return
		}
		env.K.After(env.Cfg.RetryBackoff, func() { l.sendPut(wb) })
		return
	}
	ms := l.mshrs[m.line]
	if ms == nil {
		return // transaction already satisfied (stale NACK)
	}
	env.Traffic.Ctl(memsys.ClassOVH, memsys.BOvhNack, 1, env.Mesh.Hops(m.from, l.tile))
	backoff := env.Cfg.RetryBackoff + int64(l.tile)
	env.K.After(backoff, func() {
		if l.mshrs[m.line] != ms {
			return
		}
		if !ms.isStore {
			l.sendGetS(ms)
			return
		}
		// A NACKed upgrade retries as an upgrade only while the S copy
		// survives; otherwise it converts to a full GetX.
		if ms.upgrade {
			if ln := l.c.Lookup(m.line); ln != nil && ln.State == stS {
				home := env.Cfg.HomeTile(m.line)
				hops := env.Mesh.Hops(l.tile, home)
				env.Traffic.Ctl(memsys.ClassST, memsys.BReqCtl, 1, hops)
				l.sys.send(l.tile, home, 1, &msgUpgrade{line: m.line, from: l.tile})
				return
			}
		}
		l.sendGetX(ms)
	})
}

// handleInv invalidates this L1's shared copy and acknowledges.
func (l *l1Cache) handleInv(m *msgInv) {
	env := l.env()
	if ln := l.c.Lookup(m.line); ln != nil {
		for w := 0; w < lineWords; w++ {
			env.Prof.L1Invalidate(ln.Inst[w])
			if ln.MInst[w] != 0 {
				env.Prof.MemRelease(ln.MInst[w], true)
			}
		}
		l.c.Remove(ln)
	}
	hops := env.Mesh.Hops(l.tile, m.ackTo)
	env.Traffic.Ctl(memsys.ClassOVH, memsys.BOvhAck, 1, hops)
	if m.toL2 {
		// L2-eviction invalidation: acknowledge the home slice.
		l.sys.send(l.tile, m.ackTo, 1, &msgRecallResp{line: m.line, from: l.tile})
		return
	}
	l.sys.send(l.tile, m.ackTo, 1, &msgInvAck{line: m.line, from: l.tile})
}

// handleFwd services a forwarded GetS/GetX as the owner.
func (l *l1Cache) handleFwd(m *msgFwd) {
	env := l.env()
	class := memsys.ClassLD
	if m.excl {
		class = memsys.ClassST
	}
	var data [lineWords]uint32
	var minst [lineWords]uint64
	var wmask uint16
	if ln := l.c.Lookup(m.line); ln != nil {
		data, wmask = lineSnapshot(ln)
		minst = instSnapshot(ln)
		if m.excl {
			// Ownership transfer: local copy conceptually moves.
			for w := 0; w < lineWords; w++ {
				env.Prof.L1Invalidate(ln.Inst[w])
			}
			l.c.Remove(ln)
		} else {
			ln.State = stS
		}
	} else if wb := l.wbBuf[m.line]; wb != nil {
		data, wmask, minst = wb.data, wb.wmask, wb.minst
		if m.excl {
			wb.aborted = true // ownership moved; the retried Put is stale
		} else {
			wb.dirty = false // data handed to the L2 via the downgrade WB
		}
	} else {
		panic(fmt.Sprintf("mesi: tile %d forwarded for line %#x it does not hold", l.tile, m.line))
	}

	hops := env.Mesh.Hops(l.tile, m.requestor)
	env.Traffic.Ctl(class, memsys.BRespCtl, 1, hops)
	st := stS
	if m.excl {
		st = stM
	}
	l.sys.send(l.tile, m.requestor, 1+memsys.DataFlits(lineWords), &msgData{
		line: m.line, state: st, data: data, minst: minst,
		transfer: m.excl, tIssue: m.tIssue, hops: hops, class: class,
	})
	if !m.excl {
		// Downgrade writeback carries the (possibly dirty) data to the L2.
		home := env.Cfg.HomeTile(m.line)
		h2 := env.Mesh.Hops(l.tile, home)
		dirty := popcount(wmask)
		env.Traffic.Ctl(memsys.ClassWB, memsys.BWBCtl, 1, h2)
		env.Traffic.WBData(false, h2, dirty, lineWords-dirty)
		l.sys.send(l.tile, home, 1+memsys.DataFlits(lineWords), &msgDowngradeWB{
			line: m.line, from: l.tile, data: data, wmask: wmask,
		})
	}
}

// handleRecall surrenders a line for an inclusive L2 eviction.
func (l *l1Cache) handleRecall(m *msgRecall) {
	env := l.env()
	resp := &msgRecallResp{line: m.line, from: l.tile}
	if ln := l.c.Lookup(m.line); ln != nil {
		if ln.State == stM {
			resp.hasData = true
			resp.data, resp.wmask = lineSnapshot(ln)
		}
		for w := 0; w < lineWords; w++ {
			env.Prof.L1Invalidate(ln.Inst[w])
			if ln.MInst[w] != 0 {
				env.Prof.MemRelease(ln.MInst[w], true)
			}
		}
		l.c.Remove(ln)
	} else if wb := l.wbBuf[m.line]; wb != nil {
		if wb.dirty {
			resp.hasData = true
			resp.data, resp.wmask = wb.data, wb.wmask
		}
		wb.aborted = true
	}
	home := env.Cfg.HomeTile(m.line)
	hops := env.Mesh.Hops(l.tile, home)
	if resp.hasData {
		dirty := popcount(resp.wmask)
		env.Traffic.Ctl(memsys.ClassWB, memsys.BWBCtl, 1, hops)
		env.Traffic.WBData(false, hops, dirty, lineWords-dirty)
		l.sys.send(l.tile, home, 1+memsys.DataFlits(lineWords), resp)
	} else {
		env.Traffic.Ctl(memsys.ClassOVH, memsys.BOvhAck, 1, hops)
		l.sys.send(l.tile, home, 1, resp)
	}
}

func (l *l1Cache) handleWBAck(m *msgWBAck) {
	delete(l.wbBuf, m.line)
	l.pumpStores() // lines blocked on the victim buffer can proceed now
}

// --- eviction ---

// canAllocate reports whether a fill for line can find a victim way that
// is not pinned by an in-flight upgrade transaction.
func (l *l1Cache) canAllocate(line uint32) bool {
	return l.c.VictimWhere(line, func(v *cache.Line) bool {
		return l.mshrs[v.Tag] == nil
	}) != nil
}

// allocate returns a line for a fill, evicting the victim through the
// victim buffer if necessary. Lines pinned by in-flight upgrades are never
// chosen (callers check canAllocate first).
func (l *l1Cache) allocate(line uint32) *cache.Line {
	env := l.env()
	victim := l.c.VictimWhere(line, func(v *cache.Line) bool {
		return l.mshrs[v.Tag] == nil
	})
	if victim.Valid {
		vline := victim.Tag
		wb := &wbEntry{line: vline, dirty: victim.State == stM}
		wb.data, wb.wmask = lineSnapshot(victim)
		wb.minst = instSnapshot(victim)
		for w := 0; w < lineWords; w++ {
			env.Prof.L1Evict(victim.Inst[w])
			if victim.MInst[w] != 0 {
				env.Prof.MemRelease(victim.MInst[w], false)
			}
		}
		l.c.Remove(victim)
		l.wbBuf[vline] = wb
		l.sendPut(wb)
	}
	return l.c.Allocate(line)
}

func (l *l1Cache) sendPut(wb *wbEntry) {
	if wb.aborted {
		delete(l.wbBuf, wb.line)
		return
	}
	env := l.env()
	home := env.Cfg.HomeTile(wb.line)
	hops := env.Mesh.Hops(l.tile, home)
	msg := &msgPut{line: wb.line, from: l.tile, dirty: wb.dirty}
	if wb.dirty {
		msg.data, msg.wmask, msg.minst = wb.data, wb.wmask, wb.minst
		dirty := popcount(wb.wmask)
		env.Traffic.Ctl(memsys.ClassWB, memsys.BWBCtl, 1, hops)
		env.Traffic.WBData(false, hops, dirty, lineWords-dirty)
		l.sys.send(l.tile, home, 1+memsys.DataFlits(lineWords), msg)
	} else {
		// Clean replacement notice: pure protocol overhead (§5.2.4).
		env.Traffic.Ctl(memsys.ClassOVH, memsys.BOvhWBCtl, 1, hops)
		l.sys.send(l.tile, home, 1, msg)
	}
}

// --- helpers ---

func lineSnapshot(ln *cache.Line) (data [lineWords]uint32, wmask uint16) {
	for w := 0; w < lineWords; w++ {
		data[w] = ln.Data[w]
		if ln.WState[w]&wDirty != 0 {
			wmask |= 1 << w
		}
	}
	return
}

func instSnapshot(ln *cache.Line) (minst [lineWords]uint64) {
	for w := 0; w < lineWords; w++ {
		minst[w] = ln.MInst[w]
	}
	return
}

func popcount(m uint16) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
