package mesi

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coher"
	"repro/internal/memsys"
)

// maxStoreTxns bounds how many distinct lines a core's store buffer can be
// fetching concurrently (the 32-entry buffer itself bounds total pending
// writes, §4.2).
const maxStoreTxns = 8

// loadWaiter is a core load blocked on an in-flight line fill.
type loadWaiter struct {
	word int
	done func(val uint32, s memsys.Sample)
}

// mshr tracks one outstanding L1 transaction for a line.
type mshr struct {
	line    uint32
	isStore bool // GetX/Upgrade for the store buffer
	upgrade bool // issued as an Upgrade (may convert to GetX on retry)
	tIssue  int64

	loadWaiters []loadWaiter

	dataArrived bool
	needAcks    int
	gotAcks     int
	state       uint8
	data        [lineWords]uint32
	minst       [lineWords]uint64
	transfer    bool
	fromMem     bool
	tAtMC       int64
	tDram       int64
	hopsIn      int
	class       memsys.Class
}

// wbEntry is a victim buffer entry: an evicted line awaiting its
// writeback acknowledgement. It can still service forwarded requests.
type wbEntry struct {
	line    uint32
	dirty   bool
	aborted bool // ownership moved away; stop retrying
	data    [lineWords]uint32
	wmask   uint16
	minst   [lineWords]uint64
}

type l1Cache struct {
	sys  *System
	tile int
	c    *cache.Cache

	mshrs coher.Table[mshr]
	wbBuf coher.Table[wbEntry]

	sb           coher.StoreBuffer
	storeTxns    int
	storeUnstall func()
	drainGate    coher.DrainGate
}

func newL1(s *System, tile int) *l1Cache {
	cfg := s.Env.Cfg
	return &l1Cache{
		sys:   s,
		tile:  tile,
		c:     cache.New(cfg.L1Bytes, cfg.L1Assoc, memsys.LineBytes),
		mshrs: coher.NewTable[mshr](),
		wbBuf: coher.NewTable[wbEntry](),
		sb:    coher.NewStoreBuffer(cfg.StoreBufferEntries),
	}
}

func (l *l1Cache) env() *memsys.Env { return l.sys.Env }

// --- core-facing operations ---

// load begins a blocking load. done fires when the value is available.
func (l *l1Cache) load(addr uint32, done func(uint32, memsys.Sample)) {
	env := l.env()
	env.K.After(env.Cfg.L1Latency, func() { l.loadAttempt(addr, env.K.Now(), done) })
}

func (l *l1Cache) loadAttempt(addr uint32, tIssue int64, done func(uint32, memsys.Sample)) {
	env := l.env()
	// Store-buffer forwarding: the newest pending write to this word wins.
	if val, ok := l.sb.Forward(addr); ok {
		done(val, memsys.Sample{Point: memsys.PointL1})
		return
	}
	line, w := memsys.LineOf(addr), memsys.WordIndex(addr)
	if ln := l.c.Lookup(line); ln != nil {
		l.c.Touch(ln)
		env.Prof.L1Load(ln.Inst[w])
		env.Prof.MemLoad(ln.MInst[w])
		done(ln.Data[w], memsys.Sample{Point: memsys.PointL1})
		return
	}
	// A line being written back cannot be re-read until the writeback is
	// acknowledged; retry shortly.
	if l.wbBuf.Has(line) {
		l.sys.RetryAfter(func() { l.loadAttempt(addr, tIssue, done) })
		return
	}
	if m := l.mshrs.Get(line); m != nil {
		m.loadWaiters = append(m.loadWaiters, loadWaiter{w, done})
		return
	}
	m := &mshr{line: line, tIssue: tIssue}
	m.loadWaiters = append(m.loadWaiters, loadWaiter{w, done})
	l.mshrs.Put(line, m)
	l.sendGetS(m)
}

func (l *l1Cache) sendGetS(m *mshr) {
	home := l.env().Cfg.HomeTile(m.line)
	l.sys.SendCtl(memsys.ClassLD, memsys.BReqCtl, l.tile, home, &msgGetS{line: m.line, from: l.tile})
}

// storePush enqueues a non-blocking write; false when the buffer is full.
func (l *l1Cache) storePush(addr, val uint32) bool {
	if !l.sb.Push(addr, val) {
		return false
	}
	l.pumpStores()
	return true
}

// pumpStores issues store transactions for pending lines, up to the
// concurrency bound.
func (l *l1Cache) pumpStores() {
	env := l.env()
	seen := map[uint32]bool{}
	entries := l.sb.Entries()
	for i := 0; i < len(entries); i++ {
		line := memsys.LineOf(entries[i].Addr)
		if seen[line] {
			continue
		}
		seen[line] = true
		if l.mshrs.Has(line) {
			continue // a transaction for this line is already in flight
		}
		if l.wbBuf.Has(line) {
			continue // wait for the writeback ack, then retry
		}
		if ln := l.c.Lookup(line); ln != nil && (ln.State == stM || ln.State == stE) {
			l.applyStores(ln)
			i = -1 // sb mutated; restart scan
			entries = l.sb.Entries()
			seen = map[uint32]bool{}
			continue
		}
		if l.storeTxns >= maxStoreTxns {
			break
		}
		l.storeTxns++
		m := &mshr{line: line, isStore: true, tIssue: env.K.Now()}
		l.mshrs.Put(line, m)
		if ln := l.c.Lookup(line); ln != nil && ln.State == stS {
			m.upgrade = true
			home := env.Cfg.HomeTile(line)
			l.sys.SendCtl(memsys.ClassST, memsys.BReqCtl, l.tile, home, &msgUpgrade{line: line, from: l.tile})
		} else {
			l.sendGetX(m)
		}
	}
	l.drainGate.TryFire(l.drained())
}

func (l *l1Cache) sendGetX(m *mshr) {
	m.upgrade = false
	home := l.env().Cfg.HomeTile(m.line)
	l.sys.SendCtl(memsys.ClassST, memsys.BReqCtl, l.tile, home, &msgGetX{line: m.line, from: l.tile})
}

// applyStores retires every buffered write targeting a line the core now
// owns (M), then wakes the driver if buffer space freed.
func (l *l1Cache) applyStores(ln *cache.Line) {
	env := l.env()
	ln.State = stM
	l.sb.RetireLine(ln.Tag, memsys.LineOf, func(addr, val uint32) {
		w := memsys.WordIndex(addr)
		env.Prof.L1Store(ln.Inst[w])
		env.Prof.MemStore(addr)
		if ln.MInst[w] != 0 {
			env.Prof.MemRelease(ln.MInst[w], false)
			ln.MInst[w] = 0
		}
		ln.Data[w] = val
		ln.WState[w] |= wDirty
	})
	l.c.Touch(ln)
	if l.storeUnstall != nil {
		// Deferred: the driver's retry re-enters Store, which must not
		// recurse into this apply path synchronously.
		fn := l.storeUnstall
		env.K.After(0, fn)
	}
	l.drainGate.TryFire(l.drained())
}

// drain registers a barrier-drain continuation: it fires once the store
// buffer is empty and no store transactions remain.
func (l *l1Cache) drain(done func()) {
	l.drainGate.Arm(done)
	l.drainGate.TryFire(l.drained())
}

func (l *l1Cache) drained() bool { return l.sb.Empty() && l.storeTxns == 0 }

// --- protocol message handlers ---

func (l *l1Cache) handleData(m *msgData) {
	ms := l.mshrs.Get(m.line)
	if ms == nil {
		panic(fmt.Sprintf("mesi: tile %d data without mshr line %#x", l.tile, m.line))
	}
	ms.dataArrived = true
	ms.state = m.state
	ms.needAcks += m.acks
	ms.data = m.data
	ms.minst = m.minst
	ms.transfer = m.transfer
	ms.fromMem = m.fromMem
	ms.tAtMC, ms.tDram, ms.hopsIn = m.tAtMC, m.tDram, m.hops
	ms.class = m.class
	l.tryCompleteFill(ms)
}

func (l *l1Cache) handleUpgAck(m *msgUpgAck) {
	ms := l.mshrs.Get(m.line)
	if ms == nil {
		panic("mesi: upgrade ack without mshr")
	}
	// The line must still be present in S (invalidations racing ahead of
	// the upgrade are NACKed at the directory instead).
	ms.dataArrived = true
	ms.state = stM
	ms.needAcks += m.acks
	l.tryCompleteFill(ms)
}

func (l *l1Cache) handleInvAck(m *msgInvAck) {
	ms := l.mshrs.Get(m.line)
	if ms == nil {
		panic("mesi: inv ack without mshr")
	}
	ms.gotAcks++
	l.tryCompleteFill(ms)
}

// tryCompleteFill finishes a transaction once data and all acks arrived.
func (l *l1Cache) tryCompleteFill(ms *mshr) {
	if !ms.dataArrived || ms.gotAcks < ms.needAcks {
		return
	}
	env := l.env()
	if !ms.upgrade && !l.canAllocate(ms.line) {
		// Every way is held by an in-flight upgrade; retry the fill once
		// those transactions finish.
		l.sys.RetryAfter(func() { l.tryCompleteFill(ms) })
		return
	}
	l.mshrs.Delete(ms.line)

	var ln *cache.Line
	if ms.upgrade {
		ln = l.c.Lookup(ms.line)
		if ln == nil {
			panic("mesi: upgraded line vanished")
		}
		ln.State = stM
	} else {
		ln = l.allocate(ms.line)
		ln.State = ms.state
		insts := make([]uint64, lineWords)
		for w := 0; w < lineWords; w++ {
			a := memsys.AddrOf(ms.line, w)
			ln.Data[w] = ms.data[w]
			ln.MInst[w] = ms.minst[w]
			id := env.Prof.L1Arrival(a, false)
			ln.Inst[w] = id
			insts[w] = id
			if !ms.transfer {
				env.Prof.MemAddRef(ms.minst[w])
			}
		}
		env.Traffic.Data(ms.class, ms.hopsIn, insts)
	}

	// Directory unblock. MMemL1 load fills from memory carry the data to
	// the L2 (unblock+data, profiled as load traffic).
	home := env.Cfg.HomeTile(ms.line)
	if l.sys.opt.MemToL1 && ms.fromMem && !ms.isStore {
		hops := l.sys.CtlHops(memsys.ClassLD, memsys.BRespCtl, l.tile, home)
		l.sys.SendData(l.tile, home, lineWords, &msgUnblock{
			line: ms.line, from: l.tile, withData: true,
			data: ms.data, minst: ms.minst, hops: hops,
		})
	} else {
		l.sys.SendCtl(memsys.ClassOVH, memsys.BOvhUnblock, l.tile, home, &msgUnblock{line: ms.line, from: l.tile})
	}

	sample := memsys.Sample{Point: memsys.PointOnChip}
	if ms.fromMem {
		sample = memsys.Sample{
			Point:  memsys.PointMemory,
			ToMC:   ms.tAtMC - ms.tIssue,
			Mem:    ms.tDram - ms.tAtMC,
			FromMC: env.K.Now() - ms.tDram,
		}
	}
	for _, wtr := range ms.loadWaiters {
		env.Prof.L1Load(ln.Inst[wtr.word])
		env.Prof.MemLoad(ln.MInst[wtr.word])
		wtr.done(ln.Data[wtr.word], sample)
	}
	if ms.isStore {
		l.storeTxns--
		l.applyStores(ln)
		l.pumpStores()
	}
}

func (l *l1Cache) handleNack(m *msgNack) {
	env := l.env()
	if m.isPut {
		wb := l.wbBuf.Get(m.line)
		if wb == nil {
			return
		}
		if wb.aborted {
			// Ownership moved while the put was in flight; nothing to
			// retry and no ack will come for the stale put.
			l.wbBuf.Delete(m.line)
			l.pumpStores()
			return
		}
		l.sys.RetryAfter(func() { l.sendPut(wb) })
		return
	}
	ms := l.mshrs.Get(m.line)
	if ms == nil {
		return // transaction already satisfied (stale NACK)
	}
	l.sys.NackBackoff(m.from, l.tile, func() {
		if l.mshrs.Get(m.line) != ms {
			return
		}
		if !ms.isStore {
			l.sendGetS(ms)
			return
		}
		// A NACKed upgrade retries as an upgrade only while the S copy
		// survives; otherwise it converts to a full GetX.
		if ms.upgrade {
			if ln := l.c.Lookup(m.line); ln != nil && ln.State == stS {
				home := env.Cfg.HomeTile(m.line)
				l.sys.SendCtl(memsys.ClassST, memsys.BReqCtl, l.tile, home, &msgUpgrade{line: m.line, from: l.tile})
				return
			}
		}
		l.sendGetX(ms)
	})
}

// handleInv invalidates this L1's shared copy and acknowledges.
func (l *l1Cache) handleInv(m *msgInv) {
	env := l.env()
	if ln := l.c.Lookup(m.line); ln != nil {
		coher.ReleaseL1Line(env, ln, false, true)
		l.c.Remove(ln)
	}
	if m.toL2 {
		// L2-eviction invalidation: acknowledge the home slice.
		l.sys.SendCtl(memsys.ClassOVH, memsys.BOvhAck, l.tile, m.ackTo, &msgRecallResp{line: m.line, from: l.tile})
		return
	}
	l.sys.SendCtl(memsys.ClassOVH, memsys.BOvhAck, l.tile, m.ackTo, &msgInvAck{line: m.line, from: l.tile})
}

// handleFwd services a forwarded GetS/GetX as the owner.
func (l *l1Cache) handleFwd(m *msgFwd) {
	env := l.env()
	class := memsys.ClassLD
	if m.excl {
		class = memsys.ClassST
	}
	var data [lineWords]uint32
	var minst [lineWords]uint64
	var wmask uint16
	if ln := l.c.Lookup(m.line); ln != nil {
		data, wmask = coher.SnapshotData(ln), coher.DirtyMask(ln, wDirty)
		minst = coher.SnapshotMInst(ln)
		if m.excl {
			// Ownership transfer: local copy conceptually moves.
			for w := 0; w < lineWords; w++ {
				env.Prof.L1Invalidate(ln.Inst[w])
			}
			l.c.Remove(ln)
		} else {
			ln.State = stS
		}
	} else if wb := l.wbBuf.Get(m.line); wb != nil {
		data, wmask, minst = wb.data, wb.wmask, wb.minst
		if m.excl {
			wb.aborted = true // ownership moved; the retried Put is stale
		} else {
			wb.dirty = false // data handed to the L2 via the downgrade WB
		}
	} else {
		panic(fmt.Sprintf("mesi: tile %d forwarded for line %#x it does not hold", l.tile, m.line))
	}

	hops := l.sys.CtlHops(class, memsys.BRespCtl, l.tile, m.requestor)
	st := stS
	if m.excl {
		st = stM
	}
	l.sys.SendData(l.tile, m.requestor, lineWords, &msgData{
		line: m.line, state: st, data: data, minst: minst,
		transfer: m.excl, tIssue: m.tIssue, hops: hops, class: class,
	})
	if !m.excl {
		// Downgrade writeback carries the (possibly dirty) data to the L2.
		home := env.Cfg.HomeTile(m.line)
		dirty := coher.Popcount16(wmask)
		h2 := l.sys.CtlHops(memsys.ClassWB, memsys.BWBCtl, l.tile, home)
		env.Traffic.WBData(false, h2, dirty, lineWords-dirty)
		l.sys.SendData(l.tile, home, lineWords, &msgDowngradeWB{
			line: m.line, from: l.tile, data: data, wmask: wmask,
		})
	}
}

// handleRecall surrenders a line for an inclusive L2 eviction.
func (l *l1Cache) handleRecall(m *msgRecall) {
	env := l.env()
	resp := &msgRecallResp{line: m.line, from: l.tile}
	if ln := l.c.Lookup(m.line); ln != nil {
		if ln.State == stM {
			resp.hasData = true
			resp.data, resp.wmask = coher.SnapshotData(ln), coher.DirtyMask(ln, wDirty)
		}
		coher.ReleaseL1Line(env, ln, false, true)
		l.c.Remove(ln)
	} else if wb := l.wbBuf.Get(m.line); wb != nil {
		if wb.dirty {
			resp.hasData = true
			resp.data, resp.wmask = wb.data, wb.wmask
		}
		wb.aborted = true
	}
	home := env.Cfg.HomeTile(m.line)
	if resp.hasData {
		dirty := coher.Popcount16(resp.wmask)
		hops := l.sys.CtlHops(memsys.ClassWB, memsys.BWBCtl, l.tile, home)
		env.Traffic.WBData(false, hops, dirty, lineWords-dirty)
		l.sys.SendData(l.tile, home, lineWords, resp)
	} else {
		l.sys.SendCtl(memsys.ClassOVH, memsys.BOvhAck, l.tile, home, resp)
	}
}

func (l *l1Cache) handleWBAck(m *msgWBAck) {
	l.wbBuf.Delete(m.line)
	l.pumpStores() // lines blocked on the victim buffer can proceed now
}

// --- eviction ---

// canAllocate reports whether a fill for line can find a victim way that
// is not pinned by an in-flight upgrade transaction.
func (l *l1Cache) canAllocate(line uint32) bool {
	return l.c.VictimWhere(line, func(v *cache.Line) bool {
		return l.mshrs.Get(v.Tag) == nil
	}) != nil
}

// allocate returns a line for a fill, evicting the victim through the
// victim buffer if necessary. Lines pinned by in-flight upgrades are never
// chosen (callers check canAllocate first).
func (l *l1Cache) allocate(line uint32) *cache.Line {
	env := l.env()
	victim := l.c.VictimWhere(line, func(v *cache.Line) bool {
		return l.mshrs.Get(v.Tag) == nil
	})
	if victim.Valid {
		vline := victim.Tag
		wb := &wbEntry{line: vline, dirty: victim.State == stM}
		wb.data, wb.wmask = coher.SnapshotData(victim), coher.DirtyMask(victim, wDirty)
		wb.minst = coher.SnapshotMInst(victim)
		coher.ReleaseL1Line(env, victim, true, false)
		l.c.Remove(victim)
		l.wbBuf.Put(vline, wb)
		l.sendPut(wb)
	}
	return l.c.Allocate(line)
}

func (l *l1Cache) sendPut(wb *wbEntry) {
	if wb.aborted {
		l.wbBuf.Delete(wb.line)
		return
	}
	env := l.env()
	home := env.Cfg.HomeTile(wb.line)
	msg := &msgPut{line: wb.line, from: l.tile, dirty: wb.dirty}
	if wb.dirty {
		msg.data, msg.wmask, msg.minst = wb.data, wb.wmask, wb.minst
		dirty := coher.Popcount16(wb.wmask)
		hops := l.sys.CtlHops(memsys.ClassWB, memsys.BWBCtl, l.tile, home)
		env.Traffic.WBData(false, hops, dirty, lineWords-dirty)
		l.sys.SendData(l.tile, home, lineWords, msg)
	} else {
		// Clean replacement notice: pure protocol overhead (§5.2.4).
		l.sys.SendCtl(memsys.ClassOVH, memsys.BOvhWBCtl, l.tile, home, msg)
	}
}
