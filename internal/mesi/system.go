// Package mesi implements the paper's baseline: a blocking directory-based
// MESI protocol with an inclusive shared L2, as shipped with the Wisconsin
// GEMS simulator and modified for non-blocking writes (§3.3, §4.2), plus
// the MMemL1 variant ("Memory Controller to L1 Transfer" for MESI).
//
// Protocol shape reproduced here:
//   - line-granularity coherence, fetch-on-write everywhere;
//   - a blocking directory at the home L2 slice: requests to a line with a
//     transaction in flight are NACKed and retried;
//   - every transaction ends with a "directory unblock" control message
//     from the requesting L1 (the 65.3% of MESI overhead in §5.2.4);
//   - E state with silent E->M upgrade; S->M Upgrade requests;
//   - clean replacement notices (overhead traffic) and PutM writebacks;
//   - inclusive L2: evicting an L2 line recalls/invalidates L1 copies;
//   - L2->memory writebacks always move the full 64-byte line.
//
// MMemL1 exploits the blocking directory: on an L2 miss the memory
// controller sends data straight to the requesting L1; loads forward it to
// the L2 as a combined unblock+data message (profiled as load traffic),
// and stores never forward it at all, since the pending writeback would
// overwrite it (§3.3).
package mesi

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/memsys"
)

// Options selects the MESI variant.
type Options struct {
	MemToL1 bool // MMemL1
}

// System is a complete MESI memory system over a memsys.Env.
type System struct {
	env *memsys.Env
	opt Options
	l1s []*l1Cache
	l2s []*l2Slice
}

// New builds the protocol engine and registers its tiles on the mesh.
func New(env *memsys.Env, opt Options) *System {
	s := &System{env: env, opt: opt}
	n := env.Cfg.Tiles
	s.l1s = make([]*l1Cache, n)
	s.l2s = make([]*l2Slice, n)
	for t := 0; t < n; t++ {
		s.l1s[t] = newL1(s, t)
		s.l2s[t] = newL2(s, t)
		tile := t
		env.Mesh.Register(tile, func(p any) { s.dispatch(tile, p) })
	}
	return s
}

// Name implements memsys.Protocol.
func (s *System) Name() string {
	if s.opt.MemToL1 {
		return "MMemL1"
	}
	return "MESI"
}

// Load implements memsys.Protocol.
func (s *System) Load(core int, addr uint32, done func(uint32, memsys.Sample)) {
	s.l1s[core].load(addr, done)
}

// Store implements memsys.Protocol.
func (s *System) Store(core int, addr uint32, val uint32) bool {
	return s.l1s[core].storePush(addr, val)
}

// SetStoreUnstall implements memsys.Protocol.
func (s *System) SetStoreUnstall(core int, fn func()) { s.l1s[core].storeUnstall = fn }

// Drain implements memsys.Protocol.
func (s *System) Drain(core int, done func()) { s.l1s[core].drain(done) }

// AtBarrier implements memsys.Protocol. MESI needs no global barrier
// action: invalidations keep caches coherent eagerly.
func (s *System) AtBarrier(written []uint8) {}

// CheckInvariants verifies, at quiescence, that the system is coherent:
// at most one owner per line, inclusive L2 residency for every L1 line,
// and no leftover transactions. Tests call it after Run.
func (s *System) CheckInvariants() error {
	for t, sl := range s.l2s {
		for line, e := range sl.dir {
			if e.busy != nil {
				return fmt.Errorf("mesi: tile %d line %#x still busy", t, line)
			}
		}
	}
	var err error
	for t, l1 := range s.l1s {
		if len(l1.mshrs) != 0 {
			return fmt.Errorf("mesi: tile %d has %d leftover MSHRs", t, len(l1.mshrs))
		}
		if len(l1.wbBuf) != 0 {
			return fmt.Errorf("mesi: tile %d has %d leftover victim-buffer entries", t, len(l1.wbBuf))
		}
		tile := t
		l1.c.ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			home := s.l2s[s.env.Cfg.HomeTile(ln.Tag)]
			e := home.dir[ln.Tag]
			if home.c.Lookup(ln.Tag) == nil || e == nil {
				err = fmt.Errorf("mesi: inclusivity violation: tile %d holds line %#x absent from L2", tile, ln.Tag)
				return
			}
			switch ln.State {
			case stE, stM:
				if int(e.owner) != tile {
					err = fmt.Errorf("mesi: line %#x held %d-state at tile %d but directory owner is %d",
						ln.Tag, ln.State, tile, e.owner)
				}
			case stS:
				if e.sharers&(1<<tile) == 0 && int(e.owner) != tile {
					err = fmt.Errorf("mesi: line %#x shared at tile %d but not in sharer list", ln.Tag, tile)
				}
			}
		})
	}
	return err
}

// dispatch routes a delivered payload to the right component of a tile.
func (s *System) dispatch(tile int, p any) {
	switch m := p.(type) {
	// L1-bound.
	case *msgData:
		s.l1s[tile].handleData(m)
	case *msgUpgAck:
		s.l1s[tile].handleUpgAck(m)
	case *msgNack:
		s.l1s[tile].handleNack(m)
	case *msgInv:
		s.l1s[tile].handleInv(m)
	case *msgInvAck:
		s.l1s[tile].handleInvAck(m)
	case *msgFwd:
		s.l1s[tile].handleFwd(m)
	case *msgRecall:
		s.l1s[tile].handleRecall(m)
	case *msgWBAck:
		s.l1s[tile].handleWBAck(m)
	// L2-bound.
	case *msgGetS:
		s.l2s[tile].handleGetS(m)
	case *msgGetX:
		s.l2s[tile].handleGetX(m)
	case *msgUpgrade:
		s.l2s[tile].handleUpgrade(m)
	case *msgPut:
		s.l2s[tile].handlePut(m)
	case *msgUnblock:
		s.l2s[tile].handleUnblock(m)
	case *msgRecallResp:
		s.l2s[tile].handleRecallResp(m)
	case *msgDowngradeWB:
		s.l2s[tile].handleDowngradeWB(m)
	case *msgMemData:
		s.l2s[tile].handleMemData(m)
	// MC-bound.
	case *msgMemRead:
		s.handleMemRead(tile, m)
	case *msgMemWB:
		s.handleMemWB(tile, m)
	default:
		panic(fmt.Sprintf("mesi: unknown message %T at tile %d", p, tile))
	}
}

// send pushes a message into the mesh and returns the hop count for
// traffic accounting.
func (s *System) send(src, dst, flits int, payload any) int {
	return s.env.Mesh.Send(src, dst, flits, payload)
}

// l2HasWord reports whether the home L2 currently holds valid data for a
// word (Figure 4.3's "address present in L2?" check at the MC).
func (s *System) l2HasWord(addr uint32) bool {
	line := memsys.LineOf(addr)
	sl := s.l2s[s.env.Cfg.HomeTile(line)]
	l := sl.c.Lookup(line)
	if l == nil {
		return false
	}
	e := sl.dir[line]
	return e != nil && e.hasData
}

// --- memory controller ---

// handleMemRead services a line read at an MC tile: DRAM timing via the
// channel model, values from the backing store, fresh memory-level waste
// instances for every word shipped.
func (s *System) handleMemRead(tile int, m *msgMemRead) {
	env := s.env
	ch := env.Chans[env.Cfg.Channel(m.line)]
	tAtMC := env.K.Now()
	env.K.After(env.Cfg.MCLatency, func() {
		ch.Submit(dramReq(m.line, false, func(finish int64) {
			var data [lineWords]uint32
			var minst [lineWords]uint64
			for w := 0; w < lineWords; w++ {
				a := memsys.AddrOf(m.line, w)
				data[w] = env.MemRead(a)
				minst[w] = env.Prof.MemFetch(a, s.l2HasWord(a))
			}
			if m.direct {
				// MMemL1: straight to the requesting L1.
				hops := env.Mesh.Hops(tile, m.requestor)
				env.Traffic.Ctl(m.class, memsys.BRespCtl, 1, hops)
				s.send(tile, m.requestor, 1+memsys.DataFlits(lineWords), &msgData{
					line: m.line, state: m.grant, data: data, minst: minst,
					fromMem: true, tIssue: m.tIssue, tAtMC: tAtMC, tDram: finish,
					hops: hops, class: m.class,
				})
				return
			}
			hops := env.Mesh.Hops(tile, m.home)
			env.Traffic.Ctl(m.class, memsys.BRespCtl, 1, hops)
			s.send(tile, m.home, 1+memsys.DataFlits(lineWords), &msgMemData{
				line: m.line, data: data, minst: minst, class: m.class,
				grant: m.grant, req: m.requestor,
				tIssue: m.tIssue, tAtMC: tAtMC, tDram: finish, hops: hops,
			})
		}))
	})
}

// handleMemWB writes a full line back to DRAM (MESI always writes whole
// lines; partial-write support is a DeNovo optimization).
func (s *System) handleMemWB(tile int, m *msgMemWB) {
	env := s.env
	ch := env.Chans[env.Cfg.Channel(m.line)]
	env.K.After(env.Cfg.MCLatency, func() {
		for w := 0; w < lineWords; w++ {
			if m.wmask&(1<<w) != 0 {
				env.MemWrite(memsys.AddrOf(m.line, w), m.data[w])
			}
		}
		ch.Submit(dramReq(m.line, true, nil))
	})
}

// dramReq builds a line-granularity DRAM request.
func dramReq(line uint32, write bool, done func(int64)) *dram.Request {
	return &dram.Request{Addr: line << memsys.LineShift, Write: write, Done: done}
}
