// Package mesi implements the paper's baseline: a blocking directory-based
// MESI protocol with an inclusive shared L2, as shipped with the Wisconsin
// GEMS simulator and modified for non-blocking writes (§3.3, §4.2), plus
// the MMemL1 variant ("Memory Controller to L1 Transfer" for MESI).
//
// The package is a state machine plus a message vocabulary over the
// internal/coher substrate: coher owns tile registration, transport and
// traffic bookkeeping, the store buffer, the pending-transaction tables
// and the drain gates; this package owns the MESI states, the directory,
// and the handlers.
//
// Protocol shape reproduced here:
//   - line-granularity coherence, fetch-on-write everywhere;
//   - a blocking directory at the home L2 slice: requests to a line with a
//     transaction in flight are NACKed and retried;
//   - every transaction ends with a "directory unblock" control message
//     from the requesting L1 (the 65.3% of MESI overhead in §5.2.4);
//   - E state with silent E->M upgrade; S->M Upgrade requests;
//   - clean replacement notices (overhead traffic) and PutM writebacks;
//   - inclusive L2: evicting an L2 line recalls/invalidates L1 copies;
//   - L2->memory writebacks always move the full 64-byte line.
//
// MMemL1 exploits the blocking directory: on an L2 miss the memory
// controller sends data straight to the requesting L1; loads forward it to
// the L2 as a combined unblock+data message (profiled as load traffic),
// and stores never forward it at all, since the pending writeback would
// overwrite it (§3.3).
package mesi

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coher"
	"repro/internal/dram"
	"repro/internal/memsys"
)

// Options selects the MESI variant. Name overrides the reported
// configuration name (composed registry specs); empty derives the
// canonical name from the option set.
type Options struct {
	Name    string
	MemToL1 bool // MMemL1
}

// System is a complete MESI memory system over the coher substrate.
type System struct {
	coher.Substrate
	opt Options
	l1s []*l1Cache
	l2s []*l2Slice
}

// New builds the protocol engine and registers its tiles on the mesh.
func New(env *memsys.Env, opt Options) *System {
	s := &System{Substrate: coher.NewSubstrate(env), opt: opt}
	n := env.Cfg.Tiles
	s.l1s = make([]*l1Cache, n)
	s.l2s = make([]*l2Slice, n)
	for t := 0; t < n; t++ {
		s.l1s[t] = newL1(s, t)
		s.l2s[t] = newL2(s, t)
	}
	coher.RegisterTiles(env, s)
	return s
}

// Name implements memsys.Protocol.
func (s *System) Name() string {
	if s.opt.Name != "" {
		return s.opt.Name
	}
	if s.opt.MemToL1 {
		return "MMemL1"
	}
	return "MESI"
}

// Load implements memsys.Protocol.
func (s *System) Load(core int, addr uint32, done func(uint32, memsys.Sample)) {
	s.l1s[core].load(addr, done)
}

// Store implements memsys.Protocol.
func (s *System) Store(core int, addr uint32, val uint32) bool {
	return s.l1s[core].storePush(addr, val)
}

// SetStoreUnstall implements memsys.Protocol.
func (s *System) SetStoreUnstall(core int, fn func()) { s.l1s[core].storeUnstall = fn }

// Drain implements memsys.Protocol.
func (s *System) Drain(core int, done func()) { s.l1s[core].drain(done) }

// AtBarrier implements memsys.Protocol. MESI needs no global barrier
// action: invalidations keep caches coherent eagerly.
func (s *System) AtBarrier(written []uint8) {}

// CheckInvariants verifies, at quiescence, that the system is coherent:
// at most one owner per line, inclusive L2 residency for every L1 line,
// and no leftover transactions. Tests call it after Run.
func (s *System) CheckInvariants() error {
	for t, sl := range s.l2s {
		for line, e := range sl.dir {
			if e.busy != nil {
				return fmt.Errorf("mesi: tile %d line %#x still busy", t, line)
			}
		}
	}
	var err error
	for t, l1 := range s.l1s {
		if l1.mshrs.Len() != 0 {
			return fmt.Errorf("mesi: tile %d has %d leftover MSHRs", t, l1.mshrs.Len())
		}
		if l1.wbBuf.Len() != 0 {
			return fmt.Errorf("mesi: tile %d has %d leftover victim-buffer entries", t, l1.wbBuf.Len())
		}
		tile := t
		l1.c.ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			home := s.l2s[s.Env.Cfg.HomeTile(ln.Tag)]
			e := home.dir[ln.Tag]
			if home.c.Lookup(ln.Tag) == nil || e == nil {
				err = fmt.Errorf("mesi: inclusivity violation: tile %d holds line %#x absent from L2", tile, ln.Tag)
				return
			}
			switch ln.State {
			case stE, stM:
				if int(e.owner) != tile {
					err = fmt.Errorf("mesi: line %#x held %d-state at tile %d but directory owner is %d",
						ln.Tag, ln.State, tile, e.owner)
				}
			case stS:
				if e.sharers&(1<<tile) == 0 && int(e.owner) != tile {
					err = fmt.Errorf("mesi: line %#x shared at tile %d but not in sharer list", ln.Tag, tile)
				}
			}
		})
	}
	return err
}

// l2HasWord reports whether the home L2 currently holds valid data for a
// word (Figure 4.3's "address present in L2?" check at the MC).
func (s *System) l2HasWord(addr uint32) bool {
	line := memsys.LineOf(addr)
	sl := s.l2s[s.Env.Cfg.HomeTile(line)]
	l := sl.c.Lookup(line)
	if l == nil {
		return false
	}
	e := sl.dir[line]
	return e != nil && e.hasData
}

// --- memory controller ---

// handleMemRead services a line read at an MC tile: DRAM timing via the
// channel model, values from the backing store, fresh memory-level waste
// instances for every word shipped.
func (s *System) handleMemRead(tile int, m *msgMemRead) {
	env := s.Env
	ch := env.Chans[env.Cfg.Channel(m.line)]
	tAtMC := env.K.Now()
	env.K.After(env.Cfg.MCLatency, func() {
		ch.Submit(dramReq(m.line, false, func(finish int64) {
			var data [lineWords]uint32
			var minst [lineWords]uint64
			for w := 0; w < lineWords; w++ {
				a := memsys.AddrOf(m.line, w)
				data[w] = env.MemRead(a)
				minst[w] = env.Prof.MemFetch(a, s.l2HasWord(a))
			}
			if m.direct {
				// MMemL1: straight to the requesting L1.
				hops := s.CtlHops(m.class, memsys.BRespCtl, tile, m.requestor)
				s.SendData(tile, m.requestor, lineWords, &msgData{
					line: m.line, state: m.grant, data: data, minst: minst,
					fromMem: true, tIssue: m.tIssue, tAtMC: tAtMC, tDram: finish,
					hops: hops, class: m.class,
				})
				return
			}
			hops := s.CtlHops(m.class, memsys.BRespCtl, tile, m.home)
			s.SendData(tile, m.home, lineWords, &msgMemData{
				line: m.line, data: data, minst: minst, class: m.class,
				grant: m.grant, req: m.requestor,
				tIssue: m.tIssue, tAtMC: tAtMC, tDram: finish, hops: hops,
			})
		}))
	})
}

// handleMemWB writes a full line back to DRAM (MESI always writes whole
// lines; partial-write support is a DeNovo optimization).
func (s *System) handleMemWB(tile int, m *msgMemWB) {
	env := s.Env
	ch := env.Chans[env.Cfg.Channel(m.line)]
	env.K.After(env.Cfg.MCLatency, func() {
		for w := 0; w < lineWords; w++ {
			if m.wmask&(1<<w) != 0 {
				env.MemWrite(memsys.AddrOf(m.line, w), m.data[w])
			}
		}
		ch.Submit(dramReq(m.line, true, nil))
	})
}

// dramReq builds a line-granularity DRAM request.
func dramReq(line uint32, write bool, done func(int64)) *dram.Request {
	return &dram.Request{Addr: line << memsys.LineShift, Write: write, Done: done}
}
