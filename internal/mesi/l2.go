package mesi

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coher"
	"repro/internal/memsys"
)

// Transaction kinds at the directory.
const (
	txFetch uint8 = iota // memory fetch in flight (GetS/GetX miss)
	txHit                // on-chip service, waiting for unblock
	txFwd                // forwarded to owner
	txEvict              // inclusive L2 eviction / recall
)

// txn is one in-flight directory transaction for a line. The directory is
// blocking: while a txn exists, other requests for the line are NACKed.
type txn struct {
	kind      uint8
	requestor int
	class     memsys.Class
	grant     uint8
	isStore   bool
	tIssue    int64

	needUnblock   bool
	needDowngrade bool

	// Eviction sub-state.
	pendingAcks int
	cont        func() // continuation after the eviction finishes
}

// dirEntry is the directory state for a line. An entry exists while the
// line is resident in the L2 array and/or has a transaction in flight.
type dirEntry struct {
	owner   int8 // owning L1 tile (E or M), -1 if none
	sharers uint16
	hasData bool // L2 data array holds valid data (false for MMemL1 store fills)
	busy    *txn
}

type l2Slice struct {
	sys  *System
	tile int
	c    *cache.Cache
	dir  map[uint32]*dirEntry
}

func newL2(s *System, tile int) *l2Slice {
	cfg := s.Env.Cfg
	return &l2Slice{
		sys:  s,
		tile: tile,
		c:    cache.New(cfg.L2SliceBytes, cfg.L2Assoc, memsys.LineBytes),
		dir:  make(map[uint32]*dirEntry),
	}
}

func (sl *l2Slice) env() *memsys.Env { return sl.sys.Env }

func (sl *l2Slice) entry(line uint32) *dirEntry {
	e := sl.dir[line]
	if e == nil {
		e = &dirEntry{owner: -1}
		sl.dir[line] = e
	}
	return e
}

func (sl *l2Slice) nack(line uint32, to int, isStore, isPut bool) {
	sl.sys.SendCtl(memsys.ClassOVH, memsys.BOvhNack, sl.tile, to,
		&msgNack{line: line, from: sl.tile, isStore: isStore, isPut: isPut})
}

// --- request handlers ---

func (sl *l2Slice) handleGetS(m *msgGetS) {
	env := sl.env()
	env.K.After(env.Cfg.L2Latency, func() {
		e := sl.dir[m.line]
		if e != nil && e.busy != nil {
			sl.nack(m.line, m.from, false, false)
			return
		}
		ln := sl.c.Lookup(m.line)
		switch {
		case ln == nil:
			sl.startFetch(m.line, m.from, memsys.ClassLD, stE, false)
		case e.owner >= 0:
			e.busy = &txn{kind: txFwd, requestor: m.from, class: memsys.ClassLD,
				needUnblock: true, needDowngrade: true}
			sl.sys.SendCtl(memsys.ClassLD, memsys.BReqCtl, sl.tile, int(e.owner),
				&msgFwd{line: m.line, requestor: m.from})
		default:
			grant := stS
			if e.sharers == 0 {
				grant = stE
				e.owner = int8(m.from)
			} else {
				e.sharers |= 1 << m.from
			}
			sl.serveFromL2(ln, e, m.from, memsys.ClassLD, grant, 0)
		}
	})
}

func (sl *l2Slice) handleGetX(m *msgGetX) {
	env := sl.env()
	env.K.After(env.Cfg.L2Latency, func() {
		e := sl.dir[m.line]
		if e != nil && e.busy != nil {
			sl.nack(m.line, m.from, true, false)
			return
		}
		ln := sl.c.Lookup(m.line)
		switch {
		case ln == nil:
			sl.startFetch(m.line, m.from, memsys.ClassST, stM, true)
		case e.owner >= 0:
			e.busy = &txn{kind: txFwd, requestor: m.from, class: memsys.ClassST,
				isStore: true, needUnblock: true}
			sl.sys.SendCtl(memsys.ClassST, memsys.BReqCtl, sl.tile, int(e.owner),
				&msgFwd{line: m.line, requestor: m.from, excl: true})
			e.owner = int8(m.from)
		default:
			others := e.sharers &^ (1 << m.from)
			acks := coher.Popcount16(others)
			sl.sendInvs(m.line, others, m.from, false)
			e.sharers = 0
			e.owner = int8(m.from)
			sl.serveFromL2(ln, e, m.from, memsys.ClassST, stM, acks)
		}
	})
}

func (sl *l2Slice) handleUpgrade(m *msgUpgrade) {
	env := sl.env()
	env.K.After(env.Cfg.L2Latency, func() {
		e := sl.dir[m.line]
		if e == nil || e.busy != nil || e.owner >= 0 || e.sharers&(1<<m.from) == 0 {
			// Raced with an invalidation (or the line left the L2): the
			// requestor will convert to a full GetX.
			sl.nack(m.line, m.from, true, false)
			return
		}
		others := e.sharers &^ (1 << m.from)
		acks := coher.Popcount16(others)
		sl.sendInvs(m.line, others, m.from, false)
		e.sharers = 0
		e.owner = int8(m.from)
		e.busy = &txn{kind: txHit, requestor: m.from, class: memsys.ClassST,
			isStore: true, needUnblock: true}
		sl.sys.SendCtl(memsys.ClassST, memsys.BRespCtl, sl.tile, m.from,
			&msgUpgAck{line: m.line, acks: acks})
		if ln := sl.c.Lookup(m.line); ln != nil {
			sl.c.Touch(ln)
		}
	})
}

// serveFromL2 answers a request from the L2 data array: this is genuine L2
// reuse, so the served words classify as Used at the L2 (Figure 4.2).
func (sl *l2Slice) serveFromL2(ln *cache.Line, e *dirEntry, to int, class memsys.Class, grant uint8, acks int) {
	env := sl.env()
	e.busy = &txn{kind: txHit, requestor: to, class: class, needUnblock: true}
	var data [lineWords]uint32
	var minst [lineWords]uint64
	for w := 0; w < lineWords; w++ {
		data[w] = ln.Data[w]
		minst[w] = ln.MInst[w]
		env.Prof.L2Served(ln.Inst[w])
	}
	sl.c.Touch(ln)
	hops := sl.sys.CtlHops(class, memsys.BRespCtl, sl.tile, to)
	sl.sys.SendData(sl.tile, to, lineWords, &msgData{
		line: ln.Tag, state: grant, acks: acks, data: data, minst: minst,
		hops: hops, class: class,
	})
}

func (sl *l2Slice) sendInvs(line uint32, sharers uint16, ackTo int, toL2 bool) {
	env := sl.env()
	for t := 0; t < env.Cfg.Tiles; t++ {
		if sharers&(1<<t) == 0 {
			continue
		}
		sl.sys.SendCtl(memsys.ClassOVH, memsys.BOvhInval, sl.tile, t,
			&msgInv{line: line, ackTo: ackTo, toL2: toL2})
	}
}

// startFetch begins an L2 miss: reserve a way (recalling an inclusive
// victim if needed), then read the line from memory.
func (sl *l2Slice) startFetch(line uint32, requestor int, class memsys.Class, grant uint8, isStore bool) {
	env := sl.env()
	e := sl.entry(line)
	e.busy = &txn{kind: txFetch, requestor: requestor, class: class, grant: grant,
		isStore: isStore, needUnblock: true, tIssue: env.K.Now()}
	sl.ensureWay(line, func() {
		mc := env.Cfg.MCTile(line)
		sl.sys.SendCtl(class, memsys.BReqCtl, sl.tile, mc, &msgMemRead{
			line: line, home: sl.tile, requestor: requestor, grant: grant,
			class: class, direct: sl.sys.opt.MemToL1, tIssue: e.busy.tIssue,
		})
	})
}

// ensureWay guarantees the set of line has a free way, evicting an
// unbusied victim first if necessary, then calls cont.
func (sl *l2Slice) ensureWay(line uint32, cont func()) {
	victim := sl.c.VictimWhere(line, func(l *cache.Line) bool {
		ve := sl.dir[l.Tag]
		return ve == nil || ve.busy == nil
	})
	if victim == nil {
		// Every way is mid-transaction; retry shortly.
		sl.sys.RetryAfter(func() { sl.ensureWay(line, cont) })
		return
	}
	if !victim.Valid {
		cont()
		return
	}
	sl.evictLine(victim, func() { sl.ensureWay(line, cont) })
}

// evictLine removes a resident line to make room, recalling or
// invalidating L1 copies first (inclusive L2).
func (sl *l2Slice) evictLine(ln *cache.Line, cont func()) {
	line := ln.Tag
	e := sl.entry(line)
	e.busy = &txn{kind: txEvict, cont: cont}
	switch {
	case e.owner >= 0:
		sl.sys.SendCtl(memsys.ClassOVH, memsys.BOvhInval, sl.tile, int(e.owner),
			&msgRecall{line: line})
	case e.sharers != 0:
		e.busy.pendingAcks = coher.Popcount16(e.sharers)
		sl.sendInvs(line, e.sharers, sl.tile, true)
		e.sharers = 0
	default:
		sl.finishEvict(ln, e)
	}
}

// handleRecallResp collects an owner's recall data or a sharer's
// L2-directed invalidation ack during an eviction.
func (sl *l2Slice) handleRecallResp(m *msgRecallResp) {
	e := sl.dir[m.line]
	if e == nil || e.busy == nil || e.busy.kind != txEvict {
		panic(fmt.Sprintf("mesi: stray recall response for line %#x", m.line))
	}
	ln := sl.c.Lookup(m.line)
	if m.hasData {
		sl.mergeDirty(ln, m.data, m.wmask)
	}
	if e.owner >= 0 && m.from == int(e.owner) {
		e.owner = -1
		sl.finishEvict(ln, e)
		return
	}
	e.busy.pendingAcks--
	if e.busy.pendingAcks <= 0 {
		sl.finishEvict(ln, e)
	}
}

// finishEvict writes the (full) line back to memory if dirty, releases
// profiling state, and frees the way.
func (sl *l2Slice) finishEvict(ln *cache.Line, e *dirEntry) {
	env := sl.env()
	line := ln.Tag
	dirtyMask := coher.DirtyMask(ln, wDirty)
	data := coher.SnapshotData(ln)
	coher.ReleaseL2Line(env, ln)
	if dirtyMask != 0 {
		// MESI always writes the full 64B line back to memory; the clean
		// words are the Mem Waste of Figure 5.1d.
		mc := env.Cfg.MCTile(line)
		dirty := coher.Popcount16(dirtyMask)
		hops := sl.sys.CtlHops(memsys.ClassWB, memsys.BWBCtl, sl.tile, mc)
		env.Traffic.WBData(true, hops, dirty, lineWords-dirty)
		sl.sys.SendData(sl.tile, mc, lineWords, &msgMemWB{
			line: line, data: data, wmask: 0xffff,
		})
	}
	sl.c.Remove(ln)
	cont := e.busy.cont
	delete(sl.dir, line)
	if cont != nil {
		cont()
	}
}

// --- fills and writebacks ---

// handleMemData fills the L2 from memory (baseline path) and forwards the
// line to the requestor. The fill-forward is the L1's copy; the L2 copy's
// usefulness is decided by later reuse, so no Used marking happens here.
func (sl *l2Slice) handleMemData(m *msgMemData) {
	env := sl.env()
	env.K.After(env.Cfg.L2Latency, func() {
		e := sl.dir[m.line]
		if e == nil || e.busy == nil || e.busy.kind != txFetch {
			panic(fmt.Sprintf("mesi: memory data without fetch txn for line %#x", m.line))
		}
		sl.ensureWay(m.line, func() {
			ln := sl.c.Allocate(m.line)
			insts := make([]uint64, lineWords)
			for w := 0; w < lineWords; w++ {
				a := memsys.AddrOf(m.line, w)
				ln.Data[w] = m.data[w]
				ln.MInst[w] = m.minst[w]
				id := env.Prof.L2Arrival(a, false)
				ln.Inst[w] = id
				insts[w] = id
				env.Prof.MemAddRef(m.minst[w])
			}
			env.Traffic.Data(m.class, m.hops, insts)
			e.hasData = true
			if m.grant == stE || m.grant == stM {
				e.owner = int8(m.req)
			} else {
				e.sharers |= 1 << m.req
			}
			hops := sl.sys.CtlHops(m.class, memsys.BRespCtl, sl.tile, m.req)
			sl.sys.SendData(sl.tile, m.req, lineWords, &msgData{
				line: m.line, state: m.grant, data: m.data, minst: m.minst,
				fromMem: true, tIssue: m.tIssue, tAtMC: m.tAtMC, tDram: m.tDram,
				hops: hops, class: m.class,
			})
		})
	})
}

// handleUnblock ends a transaction. Under MMemL1, load unblocks carry the
// memory data into the L2; store fills leave the L2 entry data-less.
func (sl *l2Slice) handleUnblock(m *msgUnblock) {
	e := sl.dir[m.line]
	if e == nil || e.busy == nil {
		panic(fmt.Sprintf("mesi: unblock without txn for line %#x", m.line))
	}
	t := e.busy
	t.needUnblock = false
	if t.kind == txFetch && sl.sys.opt.MemToL1 {
		env := sl.env()
		sl.ensureWay(m.line, func() {
			ln := sl.c.Allocate(m.line)
			if m.withData {
				insts := make([]uint64, lineWords)
				for w := 0; w < lineWords; w++ {
					a := memsys.AddrOf(m.line, w)
					ln.Data[w] = m.data[w]
					ln.MInst[w] = m.minst[w]
					id := env.Prof.L2Arrival(a, false)
					ln.Inst[w] = id
					insts[w] = id
					env.Prof.MemAddRef(m.minst[w])
				}
				env.Traffic.Data(memsys.ClassLD, m.hops, insts)
				e.hasData = true
			} else {
				e.hasData = false
			}
			if t.grant == stE || t.grant == stM {
				e.owner = int8(t.requestor)
			} else {
				e.sharers |= 1 << t.requestor
			}
			sl.completeTxn(m.line, e)
		})
		return
	}
	sl.completeTxn(m.line, e)
}

func (sl *l2Slice) handleDowngradeWB(m *msgDowngradeWB) {
	e := sl.dir[m.line]
	if e == nil || e.busy == nil || !e.busy.needDowngrade {
		panic(fmt.Sprintf("mesi: stray downgrade WB for line %#x", m.line))
	}
	ln := sl.c.Lookup(m.line)
	sl.mergeDirty(ln, m.data, m.wmask)
	e.hasData = true
	// The former owner becomes a sharer alongside the requestor.
	e.sharers |= 1 << uint(m.from)
	e.sharers |= 1 << uint(e.busy.requestor)
	e.owner = -1
	e.busy.needDowngrade = false
	sl.completeTxn(m.line, e)
}

func (sl *l2Slice) completeTxn(line uint32, e *dirEntry) {
	if e.busy == nil || e.busy.needUnblock || e.busy.needDowngrade {
		return
	}
	e.busy = nil
	if sl.c.Lookup(line) == nil && e.owner < 0 && e.sharers == 0 {
		delete(sl.dir, line)
	}
}

// mergeDirty folds a full-line writeback from an L1 into the L2 line:
// MESI transfers whole lines, so every word is overwritten — open L2 word
// instances classify as Write waste (Figure 4.2, "overwritten by the data
// included in an L1 writeback") and their memory instances are released.
// Only the words the core actually wrote (wmask) become dirty for the
// L2->memory writeback accounting.
func (sl *l2Slice) mergeDirty(ln *cache.Line, data [lineWords]uint32, wmask uint16) {
	if ln == nil {
		return // transiently data-less entry: nothing cached to merge into
	}
	env := sl.env()
	for w := 0; w < lineWords; w++ {
		env.Prof.L2Overwritten(ln.Inst[w])
		if ln.MInst[w] != 0 {
			env.Prof.MemRelease(ln.MInst[w], false)
			ln.MInst[w] = 0
		}
		ln.Data[w] = data[w]
		if wmask&(1<<w) != 0 {
			ln.WState[w] |= wDirty
		}
	}
}

// handlePut processes writebacks and clean replacement notices.
func (sl *l2Slice) handlePut(m *msgPut) {
	env := sl.env()
	env.K.After(env.Cfg.L2Latency, func() {
		e := sl.dir[m.line]
		busy := e != nil && e.busy != nil
		fromOwner := e != nil && e.owner >= 0 && int(e.owner) == m.from
		// A put can also race with the sender's own in-flight fill: under
		// MMemL1 the directory records ownership only when the unblock is
		// processed, and ensureWay can defer that past the put's arrival
		// (the L1 already has the data straight from the MC, so it may have
		// evicted the line again by then). Acking such a put would destroy
		// the victim buffer and leave a stale owner behind, so the pending
		// requestor is treated exactly like the registered owner.
		fromPending := busy && e.busy.kind != txEvict && e.busy.requestor == m.from
		if busy && (fromOwner || fromPending) {
			// A forward may be racing to this L1; it must keep its victim
			// buffer alive and retry.
			sl.nack(m.line, m.from, false, true)
			return
		}
		if e != nil && !busy {
			ln := sl.c.Lookup(m.line)
			switch {
			case m.dirty && fromOwner:
				sl.mergeDirty(ln, m.data, m.wmask)
				e.hasData = true
				e.owner = -1
			case !m.dirty && fromOwner:
				e.owner = -1 // clean E replacement; L2 data stays valid
			default:
				e.sharers &^= 1 << m.from
			}
		} else if e != nil {
			// Busy, but from a mere sharer: safe to drop the sharer now.
			e.sharers &^= 1 << m.from
		}
		// Stale puts (line already evicted/transferred) are acked and
		// ignored.
		sl.sys.SendCtl(memsys.ClassWB, memsys.BWBCtl, sl.tile, m.from, &msgWBAck{line: m.line})
	})
}
