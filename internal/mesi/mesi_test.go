package mesi_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/mesi"
	"repro/internal/workloads"
)

func testConfig() memsys.Config { return memsys.Default().Scaled(64) }

func runProgram(t *testing.T, prog memsys.Program, opt mesi.Options) (*memsys.Env, *mesi.System, *core.Runner) {
	t.Helper()
	env, err := memsys.NewEnv(testConfig(), prog.FootprintBytes(), prog.Regions())
	if err != nil {
		t.Fatal(err)
	}
	sys := mesi.New(env, opt)
	r := core.NewRunner(env, sys, prog)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return env, sys, r
}

// scriptProgram is a minimal memsys.Program for directed scenarios.
type scriptProgram struct {
	name    string
	threads int
	foot    uint32
	regions []memsys.Region
	phases  [][][]memsys.Op // [phase][thread]ops
	written [][]uint8
	warmup  int
}

func (s *scriptProgram) Name() string             { return s.name }
func (s *scriptProgram) Threads() int             { return s.threads }
func (s *scriptProgram) FootprintBytes() uint32   { return s.foot }
func (s *scriptProgram) Regions() []memsys.Region { return s.regions }
func (s *scriptProgram) Phases() int              { return len(s.phases) }
func (s *scriptProgram) WarmupPhases() int        { return s.warmup }
func (s *scriptProgram) WrittenRegions(p int) []uint8 {
	if s.written == nil {
		return nil
	}
	return s.written[p]
}
func (s *scriptProgram) EmitOps(p, t int, emit func(memsys.Op)) {
	for _, op := range s.phases[p][t] {
		emit(op)
	}
}

func ld(addr uint32) memsys.Op { return memsys.Op{Kind: memsys.OpLoad, Addr: addr} }
func st(addr uint32) memsys.Op { return memsys.Op{Kind: memsys.OpStore, Addr: addr} }

func script(name string, foot uint32, phases [][][]memsys.Op) *scriptProgram {
	return &scriptProgram{
		name: name, threads: 16, foot: foot,
		regions: []memsys.Region{{ID: 1, Name: "all", Base: 0, Size: foot}},
		phases:  phases,
		written: make([][]uint8, len(phases)),
	}
}

// pad extends a per-thread op table to 16 threads.
func pad(perThread ...[]memsys.Op) [][]memsys.Op {
	out := make([][]memsys.Op, 16)
	copy(out, perThread)
	return out
}

func TestProducerConsumer(t *testing.T) {
	// Core 0 writes a line; after the barrier core 1 reads it (3-hop
	// forward from the owner). The oracle inside the runner validates the
	// value; we validate traffic was generated.
	p := script("prodcons", 4096, [][][]memsys.Op{
		pad([]memsys.Op{st(0), st(4), st(8)}),
		pad(nil, []memsys.Op{ld(0), ld(4), ld(8)}),
	})
	env, _, _ := runProgram(t, p, mesi.Options{})
	if env.Traffic.Total() == 0 {
		t.Fatal("no traffic recorded")
	}
	if env.Traffic.Get(memsys.ClassLD, memsys.BReqCtl) == 0 {
		t.Fatal("no load request traffic")
	}
}

func TestUpgradePath(t *testing.T) {
	// A core reads a line (S or E) that another core also read (forcing
	// S), then writes it: MESI must issue an Upgrade with invalidations.
	p := script("upgrade", 4096, [][][]memsys.Op{
		pad([]memsys.Op{ld(0)}, []memsys.Op{ld(0)}), // both read: line S at both
		pad([]memsys.Op{st(0)}),                     // writer upgrades
		pad(nil, []memsys.Op{ld(0)}),                // reader revalidates
	})
	env, _, _ := runProgram(t, p, mesi.Options{})
	if env.Traffic.Get(memsys.ClassOVH, memsys.BOvhInval) == 0 {
		t.Fatal("no invalidation traffic on upgrade")
	}
	if env.Traffic.Get(memsys.ClassOVH, memsys.BOvhAck) == 0 {
		t.Fatal("no ack traffic on upgrade")
	}
}

func TestEStateSilentUpgrade(t *testing.T) {
	// Sole reader then writer: E grant, then a silent E->M transition —
	// no upgrade/invalidate control at all for that line.
	p := script("estate", 4096, [][][]memsys.Op{
		pad([]memsys.Op{ld(64), st(64)}),
	})
	env, _, _ := runProgram(t, p, mesi.Options{})
	if env.Traffic.Get(memsys.ClassOVH, memsys.BOvhInval) != 0 {
		t.Fatal("invalidations sent for a sole E-state writer")
	}
	// Exactly one data response (the GetS fill); the store is silent.
	if got := env.Traffic.Get(memsys.ClassST, memsys.BReqCtl); got != 0 {
		t.Fatalf("store issued %v request flit-hops; E->M must be silent", got)
	}
}

func TestUnblockOverheadPresent(t *testing.T) {
	p := script("unblock", 4096, [][][]memsys.Op{
		pad([]memsys.Op{ld(0), ld(64), ld(128)}),
	})
	env, _, _ := runProgram(t, p, mesi.Options{})
	if env.Traffic.Get(memsys.ClassOVH, memsys.BOvhUnblock) == 0 {
		t.Fatal("blocking directory must generate unblock messages")
	}
}

func TestWritebackOnEviction(t *testing.T) {
	// Write many lines mapping to one small L1 so dirty evictions occur.
	var ops []memsys.Op
	for i := uint32(0); i < 64; i++ {
		ops = append(ops, st(i*64))
	}
	// Read them back so the WBs complete and the values must round-trip.
	var reads []memsys.Op
	for i := uint32(0); i < 64; i++ {
		reads = append(reads, ld(i*64))
	}
	p := script("wb", 64*64, [][][]memsys.Op{pad(ops), pad(reads)})
	env, _, _ := runProgram(t, p, mesi.Options{})
	if env.Traffic.Get(memsys.ClassWB, memsys.BWBL2Used) == 0 {
		t.Fatal("no dirty writeback data reached the L2")
	}
	// Fetch-on-write: stores fetched lines whose words were overwritten.
	if env.Prof.Count(0, 2) == 0 { // waste.LevelL1, waste.Write
		t.Fatal("fetch-on-write produced no Write waste")
	}
}

func TestAllWorkloadsOracleMESI(t *testing.T) {
	for _, prog := range workloads.Catalog(workloads.Tiny, 16) {
		prog := prog
		t.Run(prog.Name(), func(t *testing.T) {
			env, _, r := runProgram(t, prog, mesi.Options{})
			if env.Traffic.Total() == 0 {
				t.Fatal("no measured traffic")
			}
			if r.ExecCycles() <= 0 {
				t.Fatal("no measured execution time")
			}
		})
	}
}

func TestAllWorkloadsOracleMMemL1(t *testing.T) {
	for _, prog := range workloads.Catalog(workloads.Tiny, 16) {
		prog := prog
		t.Run(prog.Name(), func(t *testing.T) {
			runProgram(t, prog, mesi.Options{MemToL1: true})
		})
	}
}

func TestMMemL1EliminatesStoreL2Data(t *testing.T) {
	// §5.2.2: MMemL1 prevents data returned on an L2 write miss from
	// going to the L2, eliminating "Resp L2" store traffic.
	prog := workloads.MustByName("FFT", workloads.Tiny, 16)
	envA, _, _ := runProgram(t, prog, mesi.Options{})
	prog2 := workloads.MustByName("FFT", workloads.Tiny, 16)
	envB, _, _ := runProgram(t, prog2, mesi.Options{MemToL1: true})

	baseL2 := envA.Traffic.Get(memsys.ClassST, memsys.BRespL2Used) +
		envA.Traffic.Get(memsys.ClassST, memsys.BRespL2Waste)
	optL2 := envB.Traffic.Get(memsys.ClassST, memsys.BRespL2Used) +
		envB.Traffic.Get(memsys.ClassST, memsys.BRespL2Waste)
	if baseL2 == 0 {
		t.Fatal("baseline MESI has no store L2 data traffic to eliminate")
	}
	if optL2 != 0 {
		t.Fatalf("MMemL1 still sends store fill data to the L2: %v flit-hops", optL2)
	}
}

func TestMMemL1ReducesTraffic(t *testing.T) {
	prog := workloads.MustByName("radix", workloads.Tiny, 16)
	envA, _, _ := runProgram(t, prog, mesi.Options{})
	prog2 := workloads.MustByName("radix", workloads.Tiny, 16)
	envB, _, _ := runProgram(t, prog2, mesi.Options{MemToL1: true})
	if envB.Traffic.Total() >= envA.Traffic.Total() {
		t.Fatalf("MMemL1 (%.0f) did not reduce traffic vs MESI (%.0f)",
			envB.Traffic.Total(), envA.Traffic.Total())
	}
}

func TestOverheadBreakdownShape(t *testing.T) {
	// §5.2.4: unblock messages dominate MESI overhead.
	prog := workloads.MustByName("LU", workloads.Tiny, 16)
	env, _, _ := runProgram(t, prog, mesi.Options{})
	unblock := env.Traffic.Get(memsys.ClassOVH, memsys.BOvhUnblock)
	total := env.Traffic.ClassTotal(memsys.ClassOVH)
	if total == 0 || unblock/total < 0.3 {
		t.Fatalf("unblock share = %.2f of overhead; expected dominant", unblock/total)
	}
}
