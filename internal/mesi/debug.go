package mesi

import (
	"fmt"
	"strings"

	"repro/internal/memsys"
)

// DebugState renders in-flight protocol state, used by tests to diagnose
// deadlocks.
func (s *System) DebugState() string {
	var b strings.Builder
	for t, l1 := range s.l1s {
		if l1.mshrs.Len() == 0 && l1.wbBuf.Len() == 0 && l1.sb.Empty() {
			continue
		}
		fmt.Fprintf(&b, "L1[%d]: sb=%d storeTxns=%d drainPending=%v\n",
			t, l1.sb.Len(), l1.storeTxns, l1.drainGate.Armed())
		l1.mshrs.Range(func(line uint32, m *mshr) {
			fmt.Fprintf(&b, "  mshr %#x store=%v upg=%v dataArrived=%v acks=%d/%d waiters=%d\n",
				line, m.isStore, m.upgrade, m.dataArrived, m.gotAcks, m.needAcks, len(m.loadWaiters))
		})
		l1.wbBuf.Range(func(line uint32, wb *wbEntry) {
			fmt.Fprintf(&b, "  wbBuf %#x dirty=%v aborted=%v\n", line, wb.dirty, wb.aborted)
		})
	}
	for t, sl := range s.l2s {
		for line, e := range sl.dir {
			if e.busy != nil {
				fmt.Fprintf(&b, "L2[%d]: line %#x busy kind=%d req=%d unb=%v dwn=%v acks=%d\n",
					t, line, e.busy.kind, e.busy.requestor, e.busy.needUnblock, e.busy.needDowngrade, e.busy.pendingAcks)
			}
		}
	}
	return b.String()
}

// DumpWord renders the coherence state of one word across the system,
// used to diagnose functional (oracle) failures.
func (s *System) DumpWord(addr uint32) string {
	env := s.Env
	line := memsys.LineOf(addr)
	w := memsys.WordIndex(addr)
	var b strings.Builder
	fmt.Fprintf(&b, "word %#x (line %#x w%d): mem=%d\n", addr, line, w, env.MemRead(addr))
	home := s.l2s[env.Cfg.HomeTile(line)]
	if e := home.dir[line]; e != nil {
		fmt.Fprintf(&b, "  dir: owner=%d sharers=%04x hasData=%v busy=%v\n", e.owner, e.sharers, e.hasData, e.busy != nil)
	} else {
		fmt.Fprintf(&b, "  dir: no entry\n")
	}
	if ln := home.c.Lookup(line); ln != nil {
		fmt.Fprintf(&b, "  L2: val=%d dirty=%v\n", ln.Data[w], ln.WState[w]&wDirty != 0)
	}
	for t, l1 := range s.l1s {
		if ln := l1.c.Lookup(line); ln != nil {
			fmt.Fprintf(&b, "  L1[%d]: state=%d val=%d dirty=%v\n", t, ln.State, ln.Data[w], ln.WState[w]&wDirty != 0)
		}
		if wb := l1.wbBuf.Get(line); wb != nil {
			fmt.Fprintf(&b, "  L1[%d] wbBuf: dirty=%v aborted=%v val=%d\n", t, wb.dirty, wb.aborted, wb.data[w])
		}
		for _, e := range l1.sb.Entries() {
			if e.Addr == addr {
				fmt.Fprintf(&b, "  L1[%d] sb: val=%d\n", t, e.Val)
			}
		}
	}
	return b.String()
}
