package job

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/memsys"
)

// RenderText writes the outcome's tables exactly as cmd/trafficsim
// prints them — the byte-identical contract every transport shares: the
// CLI's stdout for a request equals the HTTP result endpoint's text
// rendering for the same request.
//
// Matrix runs: an optional "NoC ..." header (printed only when the run
// deviates from the defaults or pins the mesh shape, matching the CLI's
// explicit-flag semantics via the request's non-zero fields), then one
// figure table per requested id, then the summary. Sweep runs: an
// optional header naming the knobs pinned across the whole sweep (never
// the swept axis), then the assembled curve table.
//
// Figure-table errors abort mid-stream after the already-rendered tables
// — the same progressive output the CLI produced.
func (o *Outcome) RenderText(w io.Writer, req Request) error {
	if o.Sweep != nil {
		var pins []string
		if req.Mesh != "" && o.Sweep.Axis != "mesh" {
			pins = append(pins, "mesh: "+formatMesh(req.Mesh))
		}
		if req.Topology != "" && o.Sweep.Axis != "topology" {
			pins = append(pins, "topology: "+req.Topology)
		}
		if req.Router != "" && o.Sweep.Axis != "router" {
			pins = append(pins, "router: "+req.Router)
		}
		if len(pins) > 0 {
			fmt.Fprintf(w, "NoC %s\n\n", strings.Join(pins, ", "))
		}
		fmt.Fprintln(w, o.Sweep.Table())
		return nil
	}
	m := o.Matrix
	if m.Topology != "mesh" || m.Router != "ideal" || req.Mesh != "" {
		header := fmt.Sprintf("NoC topology: %s, router: %s", m.Topology, m.Router)
		if req.Mesh != "" {
			header += ", mesh: " + formatMesh(req.Mesh)
		}
		fmt.Fprintf(w, "%s\n\n", header)
	}
	for _, id := range req.FigureIDs() {
		t, err := m.Figure(id)
		if err != nil {
			return err
		}
		fmt.Fprintln(w, t)
	}
	if req.Summary {
		fmt.Fprintln(w, m.Summarize())
	}
	return nil
}

// formatMesh canonicalizes a validated "WxH" for headers ("04x4" prints
// as "4x4", the spelling the CLIs always printed).
func formatMesh(dims string) string {
	w, h, err := memsys.ParseMeshDims(dims)
	if err != nil {
		return dims
	}
	return memsys.FormatMeshDims(w, h)
}
