package job

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// The unified stream's total order, on a real parallel sweep: delivery is
// serialized (the callback is never concurrent), Seq is gap-free in
// delivery order, and each point's lifecycle events arrive in order —
// simulating (or cached) strictly before done.
func TestRunUnifiedStreamTotalOrder(t *testing.T) {
	var events []Event
	req := Request{Sweep: "hotspot(t=1,2)", Protocols: []string{"MESI"}}
	out, err := Run(context.Background(), req, RunConfig{
		// Appending without a lock is the point: emit serializes every
		// callback under one mutex, so this is race-free by contract (the
		// race detector enforces it).
		Events: func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Sweep == nil || len(out.Sweep.Points) != 2 {
		t.Fatalf("outcome = %+v, want a 2-point sweep", out)
	}

	begun := map[int]bool{}
	done := map[int]bool{}
	for i, ev := range events {
		if int(ev.Seq) != i {
			t.Fatalf("event %d has Seq %d: the stream must be gap-free in delivery order", i, ev.Seq)
		}
		switch ev.Kind {
		case KindCell:
			if ev.Bench == "" || ev.Protocol == "" {
				t.Fatalf("cell event %d missing bench/protocol: %+v", i, ev)
			}
		case KindPoint:
			switch ev.Status {
			case StatusSimulating, StatusCached:
				begun[ev.Point] = true
			case StatusDone:
				if !begun[ev.Point] {
					t.Fatalf("point %d done before simulating/cached (event %d)", ev.Point, i)
				}
				done[ev.Point] = true
			case StatusCacheCorrupt, StatusStoreFailed:
				t.Fatalf("unexpected warning event without a cache: %+v", ev)
			default:
				t.Fatalf("unknown point status %q", ev.Status)
			}
		default:
			t.Fatalf("unknown event kind %q", ev.Kind)
		}
	}
	if len(done) != 2 {
		t.Fatalf("saw done events for %d points, want 2", len(done))
	}
}

// A failing cache store is a loud warning event, never the run's error:
// the sweep completes with every point in the table, and the stream says
// which points will need resimulating on a later resume.
func TestRunStoreFailedEvent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cache, err := core.OpenPointCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the cache directory for a regular file: every Load and Store
	// inside it now fails with ENOTDIR — the persistent-failure shape a
	// broken disk or tampered path produces.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	var statuses []string
	req := Request{Sweep: "hotspot(t=1,2)", Protocols: []string{"MESI"}, Workers: 1}
	out, err := Run(context.Background(), req, RunConfig{
		Cache: cache,
		Events: func(ev Event) {
			if ev.Kind == KindPoint {
				statuses = append(statuses, ev.Status)
				if ev.Status == StatusStoreFailed && ev.Error == "" {
					t.Errorf("store-failed event carries no error: %+v", ev)
				}
			}
		},
	})
	if err != nil {
		t.Fatalf("Run must not fail on store errors: %v", err)
	}
	if len(out.Sweep.Points) != 2 {
		t.Fatalf("sweep completed %d/2 points", len(out.Sweep.Points))
	}
	failed := 0
	for _, s := range statuses {
		if s == StatusStoreFailed {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("store-failed events = %d (statuses %v), want one per point", failed, statuses)
	}
}

// Whole-matrix runs are cached too: an identical second Run is served
// from the store bit-identically, announced by a single cached event, and
// renders exactly the same text.
func TestRunMatrixCache(t *testing.T) {
	cache, err := core.OpenPointCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := Request{
		Figures:    []string{"net"},
		Benchmarks: []string{"uniform(p=0.05)"},
		Protocols:  []string{"MESI"},
		Workers:    1,
	}
	render := func(out *Outcome) string {
		t.Helper()
		var sb strings.Builder
		if err := out.RenderText(&sb, req); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}

	first, err := Run(context.Background(), req, RunConfig{Cache: cache})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if first.Cached {
		t.Fatal("first run claims to be cached")
	}

	var matrixEvents []Event
	second, err := Run(context.Background(), req, RunConfig{Cache: cache, Events: func(ev Event) {
		if ev.Kind == KindMatrix {
			matrixEvents = append(matrixEvents, ev)
		}
	}})
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !second.Cached {
		t.Fatal("identical second run was not served from the cache")
	}
	if len(matrixEvents) != 1 || matrixEvents[0].Status != StatusCached {
		t.Fatalf("matrix events = %+v, want one cached event", matrixEvents)
	}
	if a, b := render(first), render(second); a != b {
		t.Fatalf("cache-served matrix rendered differently:\n--- simulated\n%s\n--- cached\n%s", a, b)
	}
}

// Run validates before simulating, and the errors keep their usage-error
// type so transports map them to exit 2 / HTTP 400.
func TestRunValidates(t *testing.T) {
	_, err := Run(context.Background(), Request{Size: "huge"}, RunConfig{})
	if err == nil || !IsUsageError(err) {
		t.Fatalf("Run with a bad size: err = %v, want a UsageError", err)
	}
}

// ExampleRun shows the orchestration layer's whole surface: a request, a
// config with an event sink, an outcome rendered to the CLI's text.
func ExampleRun() {
	req := Request{Sweep: "hotspot(t=1,2)", Protocols: []string{"MESI"}, Workers: 1}
	points := 0
	out, err := Run(context.Background(), req, RunConfig{
		Events: func(ev Event) {
			if ev.Kind == KindPoint && ev.Status == StatusDone {
				points++
			}
		},
	})
	if err != nil {
		fmt.Println("run failed:", err)
		return
	}
	fmt.Printf("%d/%d points, axis %s\n", points, out.Sweep.Expected, out.Sweep.Axis)
	// Output:
	// 2/2 points, axis hotspot.t
}
