package job

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/workloads"
)

// FprintInventory writes the paper's configuration tables — Table 4.1
// (simulated system parameters) and Table 4.2 (application input sizes)
// — plus the inventories of every registry axis the scenario space is
// built from: NoC topologies, router models, protocol specs, workload
// specs, and the sweepable axes. It is the single source both
// cmd/papertables (stdout) and the server's /v1/catalog endpoint render
// from; dims is the "WxH" tile grid the geometry-dependent tables use.
func FprintInventory(w io.Writer, dims string) error {
	cfg := memsys.Default()
	mw, mh, err := memsys.ParseMeshDims(dims)
	if err != nil {
		return err
	}
	cfg = cfg.WithMesh(mw, mh)
	fmt.Fprintln(w, "Table 4.1 — Simulated system parameters")
	rows := [][2]string{
		{"Core", "2 GHz, in-order (1 cycle per non-memory instruction)"},
		{"L1D Cache (private)", fmt.Sprintf("%d KB, %d-way set associative, %d byte cache lines",
			cfg.L1Bytes/1024, cfg.L1Assoc, memsys.LineBytes)},
		{"L2 Cache (shared)", fmt.Sprintf("%d KB slices (%d MB total), %d-way set associative, %d byte cache lines",
			cfg.L2SliceBytes/1024, cfg.L2SliceBytes*cfg.Tiles/(1024*1024), cfg.L2Assoc, memsys.LineBytes)},
		{"Network", fmt.Sprintf("%dx%d %s, 16 byte links, %d cycle link latency, 1 control + %d data flits/packet",
			cfg.MeshWidth, cfg.MeshHeight, cfg.Topology, cfg.LinkLatency, cfg.MaxDataFlits)},
		{"Memory Controller", fmt.Sprintf("FR-FCFS scheduling, open page policy, %d corner-tile controllers", len(cfg.MCTiles))},
		{"DRAM", fmt.Sprintf("DDR3-1066, %d banks, %d KB rows", cfg.DRAM.Banks, cfg.DRAM.RowBytes/1024)},
		{"Store buffer", fmt.Sprintf("%d pending non-blocking writes per core", cfg.StoreBufferEntries)},
		{"Write combining", fmt.Sprintf("%d entries, %d cycle timeout (DeNovo)", cfg.WriteCombineEntries, cfg.WriteCombineTimeout)},
		{"Bloom filters", fmt.Sprintf("%d filters x %d entries per L2 slice (DBypFull)", cfg.Bloom.FiltersPerSlice, cfg.Bloom.Entries)},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %s\n", r[0], r[1])
	}

	fmt.Fprintln(w, "\nNoC topologies (trafficsim -topology; route lengths drive all flit-hop telemetry)")
	fmt.Fprintf(w, "  %-8s %6s %6s %10s %9s %9s\n", "kind", "tiles", "ports", "dir.links", "diameter", "avg hops")
	for _, kind := range mesh.TopologyKinds() {
		t, err := mesh.NewTopology(kind, cfg.MeshWidth, cfg.MeshHeight)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-8s %6d %6d %10d %9d %9.2f\n",
			kind, t.Tiles(), t.Ports(), len(t.Links()), mesh.Diameter(t), mesh.AvgHops(t))
	}

	fmt.Fprintln(w, "\nRouter models (trafficsim -router; packet latencies and congestion telemetry follow the model)")
	for _, kind := range mesh.RouterKinds() {
		desc, err := mesh.RouterDescription(kind)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-8s %s\n", kind, desc)
	}

	fmt.Fprintln(w, "\nProtocol registry (trafficsim -protocols; specs compose as base+Option)")
	fmt.Fprintf(w, "  %-22s %-8s %-9s %s\n", "spec", "family", "kind", "options")
	inventory := core.RegistryInventory()
	for _, v := range inventory {
		kind := "canonical"
		switch {
		case v.Canonical:
		case strings.Contains(v.Spec, "+"):
			kind = "composed"
		default:
			kind = "extension" // DBypHW: a named alias beyond the paper's nine
		}
		opts := strings.Join(v.Options, "+")
		if opts == "" {
			opts = "-"
		}
		fmt.Fprintf(w, "  %-22s %-8s %-9s %s\n", v.Spec, v.Family, kind, opts)
	}
	fmt.Fprintln(w, "\n  Option tokens:")
	for _, o := range core.OptionCatalog() {
		fmt.Fprintf(w, "    %-8s [%s] %s\n", o.Token, strings.Join(o.Families, ","), o.Desc)
	}
	registryWorkloads := workloads.RegistryWorkloads()
	meshPresets := core.MeshPresets()
	nScenarios := core.ScenarioCount(len(registryWorkloads), len(mesh.TopologyKinds()), len(mesh.RouterKinds()), len(meshPresets))
	fmt.Fprintf(w, "\n  Scenario space: %d registered protocols x %d workloads x %d topologies x %d routers x %d mesh presets = %d configurations\n",
		len(inventory), len(registryWorkloads), len(mesh.TopologyKinds()), len(mesh.RouterKinds()), len(meshPresets), nScenarios)

	fmt.Fprintln(w, "\nWorkload registry (trafficsim -benchmarks; specs are name(key=value,...))")
	fmt.Fprintf(w, "  %-10s %-9s %s\n", "name", "kind", "description")
	for _, wl := range workloads.SpecCatalog() {
		kind := "benchmark"
		if wl.Synthetic {
			kind = "synthetic"
		}
		fmt.Fprintf(w, "  %-10s %-9s %s\n", wl.Name, kind, wl.Desc)
		for _, p := range wl.Params {
			def := p.Default
			if def == "" {
				def = "required"
			}
			fmt.Fprintf(w, "  %-10s   %-7s   %s=%s: %s\n", "", "", p.Key, def, p.Desc)
		}
	}
	fmt.Fprintln(w, "\n  Preset parameter variants (counted in the scenario space):")
	for _, spec := range workloads.PresetVariants() {
		fmt.Fprintf(w, "    %s\n", spec)
	}

	fmt.Fprintln(w, "\nSweep axes (trafficsim -sweep; one assembled curve table per sweep)")
	fmt.Fprintf(w, "  %-10s %-20s %s\n", "axis", "values", "description")
	for _, a := range core.SweepAxisCatalog() {
		vals := strings.Join(a.Values, ",")
		if vals == "" {
			vals = a.Hint
		}
		fmt.Fprintf(w, "  %-10s %-20s %s\n", a.Name, vals, a.Desc)
	}
	fmt.Fprintln(w, "  Any numeric parameter in the workload registry above sweeps too,")
	fmt.Fprintln(w, "  as a range (lo..hi[..step]) or a value list:")
	for _, ex := range []string{
		"trafficsim -sweep 'hotspot(t=1..16)'            # saturation vs hot-tile concentration",
		"trafficsim -sweep 'uniform(p=0.01..0.09..0.02)' # load-latency curve vs injection rate",
		"trafficsim -sweep 'hotspot(t=1,2,4,p=0.1)'      # value list, fixed co-parameter",
		"trafficsim -sweep vcs=2,4,8 -router vc          # buffer ablation on the vc router",
		"trafficsim -sweep mesh=4x4,8x8,16x16 -router vc # scaling curve vs fabric size",
	} {
		fmt.Fprintf(w, "    %s\n", ex)
	}

	fmt.Fprintln(w, "\nTable 4.2 — Application input sizes (per scale)")
	fmt.Fprintf(w, "  %-14s %-12s %-12s %-12s\n", "application", "tiny", "small", "paper")
	for _, name := range workloads.Names() {
		fmt.Fprintf(w, "  %-14s", name)
		for _, size := range []workloads.Size{workloads.Tiny, workloads.Small, workloads.Paper} {
			p, err := workloads.ByName(name, size, 16)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, " %9.1f MB", float64(p.FootprintBytes())/(1024*1024))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nCache capacities scale with the input size (Config.Scaled) so the")
	fmt.Fprintln(w, "working-set-to-capacity ratios match the paper's; see DESIGN.md.")
	return nil
}
