package job

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
)

// State is a queued job's lifecycle state.
type State string

// The job states. A job moves queued -> running -> done|failed|cancelled;
// cancel-while-queued jumps straight to cancelled without ever running.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final (no more events, result —
// possibly partial — available).
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Queue errors every transport maps onto its own vocabulary (CLI exit
// codes, HTTP statuses).
var (
	// ErrQueueFull: the bounded FIFO is at capacity; the submission was
	// rejected, not dropped — retry later.
	ErrQueueFull = errors.New("job: queue full, retry later")
	// ErrShutdown: the queue is draining and accepts no new jobs.
	ErrShutdown = errors.New("job: queue is shutting down")
	// ErrUnknownJob: no job with that id was ever submitted here.
	ErrUnknownJob = errors.New("job: unknown job id")
	// ErrFinished: the job already reached a terminal state, so there is
	// nothing left to cancel.
	ErrFinished = errors.New("job: already finished")
)

// Progress counts a job's unified-stream events, the cheap summary a
// status poll wants without replaying the stream.
type Progress struct {
	// CellsStarted counts matrix cells claimed by workers so far.
	CellsStarted int `json:"cells_started"`
	// PointsTotal is the sweep's expansion size (0 for matrix jobs,
	// until the first point event for sweeps).
	PointsTotal int `json:"points_total,omitempty"`
	// PointsDone counts completed points — simulated and cache-served
	// alike.
	PointsDone int `json:"points_done,omitempty"`
	// PointsCached counts the subset of completed points served from the
	// cache; PointsDone - PointsCached is the simulated count.
	PointsCached int `json:"points_cached,omitempty"`
}

// Status is a point-in-time snapshot of one job.
type Status struct {
	// ID is the queue-assigned job id ("job-1", "job-2", ...).
	ID string `json:"id"`
	// Kind is "matrix" or "sweep".
	Kind string `json:"kind"`
	// State is the job's current lifecycle state.
	State State `json:"state"`
	// Error carries the run error for failed (and cancelled) jobs.
	Error string `json:"error,omitempty"`
	// Progress summarizes the event stream so far.
	Progress Progress `json:"progress"`
	// Events is the number of stream events recorded so far (the next
	// EventsSince cursor).
	Events int `json:"events"`
}

// QueueOptions configures NewQueue.
type QueueOptions struct {
	// Bound caps the jobs waiting to run (running jobs hold no slot);
	// Submit past it fails with ErrQueueFull instead of queueing
	// unboundedly. 0 means 16.
	Bound int
	// Executors is the number of jobs running concurrently. The default
	// (0) means 1: a single job already saturates the host through the
	// engine's shared worker pool, so concurrent jobs buy latency overlap
	// only when individual requests are small.
	Executors int
	// Cache, if non-nil, is the shared result store every job runs
	// against: identical submissions are served cached and bit-identical,
	// and cancelled sweeps keep their finished points for the next
	// submission to resume from.
	Cache *core.PointCache
}

// task is one submitted job. All fields are guarded by the queue's
// mutex; events/outcome are only handed out as snapshots.
type task struct {
	id        string
	req       Request
	state     State
	err       error
	outcome   *Outcome
	events    []Event
	prog      Progress
	cancelled bool
	cancel    context.CancelFunc
	notify    chan struct{} // closed and replaced on every change
	done      chan struct{} // closed once, on reaching a terminal state
}

// bump wakes every waiter: the previous notify channel closes and a
// fresh one takes its place.
func (t *task) bump() {
	close(t.notify)
	t.notify = make(chan struct{})
}

// Queue is a bounded FIFO of Requests running through the shared engine:
// Submit validates and enqueues, executor goroutines run jobs in
// submission order via Run, Status/EventsSince/Result observe, Cancel
// stops (queued or running), Shutdown drains gracefully. Completed jobs
// stay observable for the queue's lifetime — the result store for "fetch
// the result later" transports; the content-addressed cache, not the job
// map, is the durable layer.
type Queue struct {
	opts QueueOptions
	// runFn is the execution seam (Run in production; tests substitute a
	// controllable fake to pin queue semantics without simulating).
	runFn func(context.Context, Request, RunConfig) (*Outcome, error)

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*task
	ch     chan *task
	closed bool
	nextID int
	wg     sync.WaitGroup
}

// NewQueue starts a queue with opts.Executors executor goroutines.
// Callers own its lifecycle: Shutdown drains it.
func NewQueue(opts QueueOptions) *Queue {
	if opts.Bound <= 0 {
		opts.Bound = 16
	}
	if opts.Executors <= 0 {
		opts.Executors = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		opts:       opts,
		runFn:      Run,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*task),
		ch:         make(chan *task, opts.Bound),
	}
	for i := 0; i < opts.Executors; i++ {
		q.wg.Add(1)
		go func() {
			defer q.wg.Done()
			for t := range q.ch {
				q.exec(t)
			}
		}()
	}
	return q
}

// Submit validates req (strictly: every registry spec, including
// protocols, fails here with the same loud message the CLIs print) and
// enqueues it. It returns the job id, ErrQueueFull when the FIFO is at
// its bound, ErrShutdown after Shutdown, or the validation UsageError.
func (q *Queue) Submit(req Request) (string, error) {
	if err := req.ValidateStrict(); err != nil {
		return "", err
	}
	req.Normalize()
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return "", ErrShutdown
	}
	q.nextID++
	t := &task{
		id:     fmt.Sprintf("job-%d", q.nextID),
		req:    req,
		state:  StateQueued,
		notify: make(chan struct{}),
		done:   make(chan struct{}),
	}
	select {
	case q.ch <- t:
	default:
		q.nextID-- // the id was never exposed; reuse it
		return "", ErrQueueFull
	}
	q.jobs[t.id] = t
	return t.id, nil
}

// exec runs one dequeued job to a terminal state (or skips it if it was
// cancelled while queued).
func (q *Queue) exec(t *task) {
	q.mu.Lock()
	if t.state != StateQueued { // cancelled while queued
		q.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(q.baseCtx)
	t.cancel = cancel
	t.state = StateRunning
	t.bump()
	q.mu.Unlock()

	out, err := q.runFn(ctx, t.req, RunConfig{
		Cache:  q.opts.Cache,
		Events: func(ev Event) { q.record(t, ev) },
	})
	cancel()

	q.mu.Lock()
	t.outcome = out
	switch {
	case err == nil:
		t.state = StateDone
	case t.cancelled || errors.Is(err, context.Canceled):
		t.state = StateCancelled
		t.err = err
	default:
		t.state = StateFailed
		t.err = err
	}
	close(t.done)
	t.bump()
	q.mu.Unlock()
}

// record appends one stream event and folds it into the progress counts.
func (q *Queue) record(t *task, ev Event) {
	q.mu.Lock()
	t.events = append(t.events, ev)
	switch ev.Kind {
	case KindCell:
		t.prog.CellsStarted++
	case KindPoint:
		t.prog.PointsTotal = ev.Total
		switch ev.Status {
		case StatusCached:
			t.prog.PointsCached++
			t.prog.PointsDone++
		case StatusDone:
			t.prog.PointsDone++
		}
	}
	t.bump()
	q.mu.Unlock()
}

func (q *Queue) lookup(id string) (*task, error) {
	t := q.jobs[id]
	if t == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return t, nil
}

// Status snapshots one job.
func (q *Queue) Status(id string) (Status, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, err := q.lookup(id)
	if err != nil {
		return Status{}, err
	}
	st := Status{
		ID:       t.id,
		Kind:     t.req.Kind(),
		State:    t.state,
		Progress: t.prog,
		Events:   len(t.events),
	}
	if t.err != nil {
		st.Error = t.err.Error()
	}
	return st, nil
}

// Request returns the job's (normalized) request — what renderers need
// to turn an Outcome back into the CLI's exact tables.
func (q *Queue) Request(id string) (Request, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, err := q.lookup(id)
	if err != nil {
		return Request{}, err
	}
	return t.req, nil
}

// Result returns the job's outcome. For done jobs that is the full
// result; for cancelled or failed sweeps it is the partial result
// (completed points, never discarded) and may be nil when nothing
// finished. Non-terminal jobs have no result yet — callers gate on
// Status.
func (q *Queue) Result(id string) (*Outcome, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, err := q.lookup(id)
	if err != nil {
		return nil, err
	}
	return t.outcome, nil
}

// EventsSince returns the job's unified-stream events from position
// `from` on, the current state, and a channel that closes on the next
// change — everything a streaming transport needs to replay history and
// then follow live without polling.
func (q *Queue) EventsSince(id string, from int) ([]Event, State, <-chan struct{}, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, err := q.lookup(id)
	if err != nil {
		return nil, "", nil, err
	}
	if from < 0 {
		from = 0
	}
	var evs []Event
	if from < len(t.events) {
		evs = append(evs, t.events[from:]...)
	}
	return evs, t.state, t.notify, nil
}

// Cancel stops a job: a queued job goes straight to cancelled (it never
// runs), a running job's context is cancelled so the engine stops at the
// next cell boundary and keeps — and, with a cache, has already
// persisted — every completed point. Cancelling a terminal job returns
// ErrFinished.
func (q *Queue) Cancel(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	t, err := q.lookup(id)
	if err != nil {
		return err
	}
	switch t.state {
	case StateQueued:
		t.state = StateCancelled
		t.cancelled = true
		close(t.done)
		t.bump()
		return nil
	case StateRunning:
		t.cancelled = true
		if t.cancel != nil {
			t.cancel()
		}
		return nil
	default:
		return fmt.Errorf("%w: %s is %s", ErrFinished, id, t.state)
	}
}

// Wait blocks until the job reaches a terminal state or ctx is done.
func (q *Queue) Wait(ctx context.Context, id string) error {
	q.mu.Lock()
	t, err := q.lookup(id)
	q.mu.Unlock()
	if err != nil {
		return err
	}
	select {
	case <-t.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Shutdown drains the queue gracefully: no new submissions, queued jobs
// are cancelled (they never started; nothing is lost), and running jobs
// get until ctx expires to finish. When the grace period runs out the
// running jobs' contexts are cancelled — the engine returns partial
// results at the next cell boundary, and with a shared cache every
// completed sweep point is already persisted, so the next submission of
// the same request resumes instead of restarting. Shutdown returns once
// every executor has stopped.
func (q *Queue) Shutdown(ctx context.Context) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		q.wg.Wait()
		return
	}
	q.closed = true
	close(q.ch)
	for _, t := range q.jobs {
		if t.state == StateQueued {
			t.state = StateCancelled
			t.cancelled = true
			close(t.done)
			t.bump()
		}
	}
	q.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		q.mu.Lock()
		for _, t := range q.jobs {
			if t.state == StateRunning {
				t.cancelled = true
				if t.cancel != nil {
					t.cancel()
				}
			}
		}
		q.mu.Unlock()
		<-drained
	}
	q.baseCancel()
}
