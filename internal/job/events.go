package job

// The unified run-progress event stream. The engine exposes two separate
// callbacks with two separate serialization guarantees — the per-cell
// core.MatrixOptions.Progress and the per-point core.SweepOptions.Progress
// — and before this layer existed every client wired (and serialized) them
// independently. A Runner merges both into ONE stream with ONE contract:
//
//   - Events are delivered strictly one at a time, never concurrently,
//     whatever the worker count. One mutex inside the Runner covers both
//     underlying callbacks, so cell events and point events cannot
//     interleave mid-delivery.
//   - Seq increases by exactly 1 per event, starting at 0. A gap-free
//     total order is what lets a streaming transport (the HTTP NDJSON
//     feed) resume from any position and a client detect a dropped line.
//   - Within one sweep point, events arrive in lifecycle order:
//     "cached" alone, or "cache-corrupt" then "simulating", or
//     "simulating" first; the point's cell events follow its "simulating";
//     "done" (or "store-failed" then "done" — see below) ends the point.
//     Events of DIFFERENT points interleave freely when the shared pool
//     runs points concurrently.
//   - Warning events are part of the stream, not a side channel:
//     Status "cache-corrupt" (an entry exists but cannot be trusted; the
//     point resimulates) and "store-failed" (the point completed but could
//     not persist; a later resume resimulates it). Renderers MUST print
//     these even when a quiet flag suppresses normal progress — that is
//     the PR 7 contract trafficsim honors under -q, and it rides on the
//     stream's total order, not around it.
//
// TestUnifiedStreamTotalOrder and TestUnifiedStreamStoreFailed pin the
// contract.

import "repro/internal/core"

// Event kinds: which lifecycle an event belongs to.
const (
	// KindCell is a matrix-cell event: a worker claimed the
	// (Bench, Protocol) cell and its simulation is starting.
	KindCell = "cell"
	// KindPoint is a sweep-point event: Point/Total/Axis/Value name the
	// point, Status says what happened to it.
	KindPoint = "point"
	// KindMatrix is a whole-matrix cache event (matrix jobs run with a
	// result cache attached): Status cached, cache-corrupt or
	// store-failed, by analogy with the sweep-point statuses.
	KindMatrix = "matrix"
)

// Event statuses, shared by point and matrix events. Point statuses are
// the engine's core.SweepPointStatus vocabulary verbatim, so a rendered
// event line matches what the pre-refactor CLIs printed.
const (
	// StatusCached: served from the content-addressed cache; nothing
	// simulates.
	StatusCached = "cached"
	// StatusCacheCorrupt: a cache entry exists but cannot be trusted
	// (Error says why); the configuration simulates fresh and a good
	// entry is rewritten on completion. Renderers print this even when
	// quiet.
	StatusCacheCorrupt = "cache-corrupt"
	// StatusSimulating: the first cell was claimed by a worker.
	StatusSimulating = "simulating"
	// StatusDone: the last cell finished and the result is assembled
	// (and persisted, when a cache is attached).
	StatusDone = "done"
	// StatusStoreFailed: the result is complete and in hand, but the
	// cache could not persist it (Error says why); only a later cached
	// rerun pays, by resimulating. Renderers print this even when quiet.
	StatusStoreFailed = "store-failed"
)

// Event is one entry of a run's unified progress stream. Exactly one of
// the three kinds; unused fields are zero and omitted from JSON.
type Event struct {
	// Seq is the event's position in the run's total order: 0, 1, 2, ...
	// with no gaps and no concurrent delivery.
	Seq int64 `json:"seq"`
	// Kind is KindCell, KindPoint or KindMatrix.
	Kind string `json:"kind"`
	// Status qualifies point and matrix events (see the Status constants);
	// empty for cell events.
	Status string `json:"status,omitempty"`
	// Bench and Protocol name the cell for KindCell events.
	Bench    string `json:"bench,omitempty"`
	Protocol string `json:"protocol,omitempty"`
	// Point (0-based) of Total locates a KindPoint event in sweep order.
	Point int `json:"point,omitempty"`
	Total int `json:"total,omitempty"`
	// Axis and Value name the swept knob and the point's x coordinate
	// ("hotspot.t", "4") for KindPoint events.
	Axis  string `json:"axis,omitempty"`
	Value string `json:"value,omitempty"`
	// Error carries the cache failure for the cache-corrupt and
	// store-failed statuses.
	Error string `json:"error,omitempty"`
}

// pointStatus maps the engine's sweep-point status enum onto the stream's
// status vocabulary; the String() words are already the wire words.
func pointStatus(s core.SweepPointStatus) string { return s.String() }
