package job

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// blockingRunner is a controllable fake for the queue's runFn seam: it
// reports each start on started, then blocks until release closes or the
// job's context is cancelled (returning a partial outcome alongside the
// context error, the engine's contract).
type blockingRunner struct {
	started chan string
	release chan struct{}
}

func newBlockingRunner() *blockingRunner {
	return &blockingRunner{started: make(chan string, 16), release: make(chan struct{})}
}

func (b *blockingRunner) run(ctx context.Context, req Request, rc RunConfig) (*Outcome, error) {
	b.started <- req.Sweep
	select {
	case <-b.release:
		return &Outcome{Sweep: &core.SweepResult{Expected: 2}}, nil
	case <-ctx.Done():
		return &Outcome{Sweep: &core.SweepResult{Expected: 2}}, ctx.Err()
	}
}

func waitStart(t *testing.T, b *blockingRunner) {
	t.Helper()
	select {
	case <-b.started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}
}

func waitTerminal(t *testing.T, q *Queue, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Wait(ctx, id); err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	st, err := q.Status(id)
	if err != nil {
		t.Fatalf("Status(%s): %v", id, err)
	}
	return st
}

// The FIFO bound counts waiting jobs: with the single executor occupied,
// submissions queue up to the bound, the next one is rejected loudly with
// ErrQueueFull (not dropped, not blocked), and capacity freed by a
// finishing job is usable again.
func TestQueueBoundSaturation(t *testing.T) {
	b := newBlockingRunner()
	q := NewQueue(QueueOptions{Bound: 2})
	q.runFn = b.run
	defer q.Shutdown(context.Background())

	first, err := q.Submit(Request{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStart(t, b) // the executor holds job 1; the FIFO is empty again
	var queued []string
	for i := 0; i < 2; i++ {
		id, err := q.Submit(Request{})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		queued = append(queued, id)
	}
	if _, err := q.Submit(Request{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit past the bound: err = %v, want ErrQueueFull", err)
	}

	close(b.release)
	for _, id := range append([]string{first}, queued...) {
		if st := waitTerminal(t, q, id); st.State != StateDone {
			t.Fatalf("job %s finished %s, want done", id, st.State)
		}
	}
	if _, err := q.Submit(Request{}); err != nil {
		t.Fatalf("Submit after drain: %v", err)
	}
}

// Cancelling a queued job is immediate — it never runs, the executor
// skips it — while cancelling a running job cancels its context and the
// job keeps the partial outcome the runner returned. A second cancel is
// ErrFinished either way.
func TestQueueCancelQueuedVsRunning(t *testing.T) {
	b := newBlockingRunner()
	q := NewQueue(QueueOptions{Bound: 4})
	q.runFn = b.run
	defer func() { close(b.release); q.Shutdown(context.Background()) }()

	running, err := q.Submit(Request{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStart(t, b)
	queued, err := q.Submit(Request{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	if err := q.Cancel(queued); err != nil {
		t.Fatalf("Cancel(queued): %v", err)
	}
	st := waitTerminal(t, q, queued)
	if st.State != StateCancelled {
		t.Fatalf("queued job state = %s, want cancelled", st.State)
	}
	out, err := q.Result(queued)
	if err != nil || out != nil {
		t.Fatalf("cancelled-while-queued result = %v, %v; want nil, nil (it never ran)", out, err)
	}

	if err := q.Cancel(running); err != nil {
		t.Fatalf("Cancel(running): %v", err)
	}
	st = waitTerminal(t, q, running)
	if st.State != StateCancelled {
		t.Fatalf("running job state = %s, want cancelled", st.State)
	}
	out, err = q.Result(running)
	if err != nil || out == nil || out.Sweep == nil {
		t.Fatalf("cancelled-while-running result = %v, %v; want the partial outcome", out, err)
	}
	if err := q.Cancel(running); !errors.Is(err, ErrFinished) {
		t.Fatalf("second Cancel: err = %v, want ErrFinished", err)
	}

	// The executor skipped the cancelled-while-queued job; it must still
	// be alive to run new submissions.
	id, err := q.Submit(Request{})
	if err != nil {
		t.Fatalf("Submit after cancels: %v", err)
	}
	waitStart(t, b)
	if st, _ := q.Status(id); st.State != StateRunning {
		t.Fatalf("post-cancel job state = %s, want running", st.State)
	}
}

// Graceful drain: Shutdown rejects new submissions, cancels queued jobs
// (nothing lost — they never started), and when the grace period expires
// force-cancels running jobs, which keep their partial outcomes.
func TestQueueShutdownDrainPartials(t *testing.T) {
	b := newBlockingRunner()
	q := NewQueue(QueueOptions{Bound: 4})
	q.runFn = b.run

	running, err := q.Submit(Request{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitStart(t, b)
	queued, err := q.Submit(Request{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	grace, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	q.Shutdown(grace) // returns only once the executors stopped

	if _, err := q.Submit(Request{}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Submit after Shutdown: err = %v, want ErrShutdown", err)
	}
	if st, _ := q.Status(queued); st.State != StateCancelled {
		t.Fatalf("queued job state = %s, want cancelled", st.State)
	}
	if out, _ := q.Result(queued); out != nil {
		t.Fatalf("queued job has an outcome (%v); it never ran", out)
	}
	st, _ := q.Status(running)
	if st.State != StateCancelled {
		t.Fatalf("running job state = %s, want cancelled (grace expired)", st.State)
	}
	out, _ := q.Result(running)
	if out == nil || out.Sweep == nil {
		t.Fatal("force-cancelled job lost its partial outcome")
	}
}

// Submit validates strictly: malformed requests never enter the queue,
// and the error text is the registries' own (the same message the CLIs
// print and the HTTP transport returns as a 400).
func TestQueueSubmitValidation(t *testing.T) {
	q := NewQueue(QueueOptions{})
	defer q.Shutdown(context.Background())

	cases := []struct {
		req  Request
		want string
	}{
		{Request{Size: "huge"}, `unknown size "huge"`},
		{Request{Sweep: "hotspot(t=4)"}, "no parameter has multiple values"},
		{Request{Sweep: "hotspot(t=1,2)", Benchmarks: []string{"FFT"}}, "sets the benchmark axis"},
		{Request{Protocols: []string{"NOPE"}}, "NOPE"},
	}
	for _, c := range cases {
		id, err := q.Submit(c.req)
		if err == nil {
			t.Fatalf("Submit(%+v) accepted as %s, want validation error", c.req, id)
		}
		if !IsUsageError(err) {
			t.Fatalf("Submit(%+v): %v is not a UsageError", c.req, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("Submit(%+v): error %q does not contain %q", c.req, err, c.want)
		}
	}
}

// An identical resubmission is served entirely from the shared cache —
// zero simulated points — and renders bit-identically to the first run.
// This is the server's result-store contract end to end on the real
// runner.
func TestQueueCachedResubmissionBitIdentical(t *testing.T) {
	cache, err := core.OpenPointCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(QueueOptions{Cache: cache})
	defer q.Shutdown(context.Background())

	req := Request{Sweep: "hotspot(t=1,2)", Protocols: []string{"MESI"}, Workers: 1}
	render := func(id string) string {
		t.Helper()
		out, err := q.Result(id)
		if err != nil || out == nil {
			t.Fatalf("Result(%s): %v, %v", id, out, err)
		}
		r, err := q.Request(id)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := out.RenderText(&sb, r); err != nil {
			t.Fatalf("RenderText: %v", err)
		}
		return sb.String()
	}

	first, err := q.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st := waitTerminal(t, q, first); st.State != StateDone {
		t.Fatalf("first run: %s (%s)", st.State, st.Error)
	}

	second, err := q.Submit(req)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st := waitTerminal(t, q, second)
	if st.State != StateDone {
		t.Fatalf("second run: %s (%s)", st.State, st.Error)
	}
	if st.Progress.PointsDone != 2 || st.Progress.PointsCached != 2 {
		t.Fatalf("resubmission progress = %+v, want 2/2 points cached (0 simulated)", st.Progress)
	}
	if a, b := render(first), render(second); a != b {
		t.Fatalf("cached resubmission rendered differently:\n--- first\n%s\n--- second\n%s", a, b)
	}
}
