package job

// The HTTP/JSON transport over Queue — the service face of the layered
// pipeline (cmd/simserver is a flag-parsing shim around this handler):
//
//	POST   /v1/jobs             submit a Request, get a job id (202)
//	GET    /v1/jobs/{id}        status + progress counts
//	GET    /v1/jobs/{id}/events unified progress stream as NDJSON
//	GET    /v1/jobs/{id}/result assembled SweepTable / figure JSON
//	                            (?format=text renders the CLI's exact
//	                            bytes, the byte-identity contract)
//	DELETE /v1/jobs/{id}        cancel (queued or running)
//	GET    /v1/catalog          the registry inventories, as text
//	GET    /v1/healthz          liveness
//
// Errors are loud and carry the same validation messages the CLIs
// print: a malformed Request is a 400 with the registry's own error
// text, a full queue is a 503 with Retry-After, an unknown id is a 404.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Server serves the job API over a Queue.
type Server struct {
	q   *Queue
	mux *http.ServeMux
}

// NewServer builds the handler around an existing queue (whose lifecycle
// — including graceful Shutdown — the caller owns).
func NewServer(q *Queue) *Server {
	s := &Server{q: q, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/jobs", s.submit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	s.mux.HandleFunc("GET /v1/catalog", s.catalog)
	s.mux.HandleFunc("GET /v1/healthz", s.healthz)
	return s
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// writeError writes the loud error body; the message is whatever the
// registries and parsers said, verbatim.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// submitResponse acknowledges an accepted job.
type submitResponse struct {
	// ID is the queue-assigned job id.
	ID string `json:"id"`
	// State is the job's state at acceptance (always "queued").
	State State `json:"state"`
	// URL is the job's status resource.
	URL string `json:"url"`
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid request JSON: %w", err))
		return
	}
	id, err := s.q.Submit(req)
	switch {
	case err == nil:
	case IsUsageError(err):
		writeError(w, http.StatusBadRequest, err)
		return
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShutdown):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{ID: id, State: StateQueued, URL: "/v1/jobs/" + id})
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	st, err := s.q.Status(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// events streams the job's unified progress stream as NDJSON: recorded
// history first (from ?from=seq, default 0), then live events as they
// arrive, ending when the job reaches a terminal state. Every line is
// one Event; Seq is gap-free, so a dropped connection resumes with
// ?from=<last seq + 1>.
func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	from := 0
	if f := r.URL.Query().Get("from"); f != "" {
		n, err := strconv.Atoi(f)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid from=%q: want a non-negative event sequence number", f))
			return
		}
		from = n
	}
	if _, _, _, err := s.q.EventsSince(id, from); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, state, changed, err := s.q.EventsSince(id, from)
		if err != nil {
			return
		}
		for _, ev := range evs {
			enc.Encode(ev)
		}
		from += len(evs)
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		if state.Terminal() {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// sweepResultBody is the JSON shape of a completed (or partial) sweep.
type sweepResultBody struct {
	// Spec and Axis identify the sweep.
	Spec string `json:"spec"`
	Axis string `json:"axis"`
	// Expected is the sweep's expansion size; fewer points than expected
	// means a partial (cancelled or failed) result.
	Expected int `json:"expected"`
	// Points lists each completed point's axis value and whether it was
	// served from the cache.
	Points []sweepPointMeta `json:"points"`
	// Table is the assembled curve table (core.SweepTable).
	Table *core.SweepTable `json:"table"`
}

// sweepPointMeta is one completed point's metadata.
type sweepPointMeta struct {
	// Value is the point's axis value.
	Value string `json:"value"`
	// Cached reports cache service (bit-identical to simulation).
	Cached bool `json:"cached"`
}

// matrixResultBody is the JSON shape of a completed matrix run: the
// requested figure tables plus the summary, mirroring the CLI's output
// selection.
type matrixResultBody struct {
	// Figures holds one rendered table per requested figure id.
	Figures []*core.Table `json:"figures,omitempty"`
	// Summary is the headline paper-vs-measured averages, when requested.
	Summary *core.Summary `json:"summary,omitempty"`
	// Cached reports that the whole matrix was served from the cache.
	Cached bool `json:"cached,omitempty"`
}

// resultResponse is the result endpoint's JSON envelope.
type resultResponse struct {
	// ID and State identify the job; State is done or cancelled (a
	// cancelled sweep still carries its completed points).
	ID    string `json:"id"`
	State State  `json:"state"`
	// Error carries the run error alongside a partial result.
	Error string `json:"error,omitempty"`
	// Sweep or Matrix holds the result, by request kind.
	Sweep  *sweepResultBody  `json:"sweep,omitempty"`
	Matrix *matrixResultBody `json:"matrix,omitempty"`
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.q.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if !st.State.Terminal() {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s is %s; the result is available once it finishes (stream /v1/jobs/%s/events to follow)", id, st.State, id))
		return
	}
	out, err := s.q.Result(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if st.State == StateFailed {
		writeError(w, http.StatusInternalServerError, errors.New(st.Error))
		return
	}
	if out == nil {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s was cancelled before any result assembled", id))
		return
	}
	req, err := s.q.Request(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if format := r.URL.Query().Get("format"); format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := out.RenderText(w, req); err != nil {
			// Mid-stream figure errors surface inline; headers are gone.
			fmt.Fprintf(w, "render error: %v\n", err)
		}
		return
	}
	resp := resultResponse{ID: id, State: st.State, Error: st.Error}
	if out.Sweep != nil {
		body := &sweepResultBody{
			Spec:     out.Sweep.Spec,
			Axis:     out.Sweep.Axis,
			Expected: out.Sweep.Expected,
			Points:   []sweepPointMeta{},
			Table:    out.Sweep.Table(),
		}
		for _, p := range out.Sweep.Points {
			body.Points = append(body.Points, sweepPointMeta{Value: p.Value, Cached: p.Cached})
		}
		resp.Sweep = body
	} else if out.Matrix != nil {
		body := &matrixResultBody{Cached: out.Cached}
		for _, fid := range req.FigureIDs() {
			t, err := out.Matrix.Figure(fid)
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			body.Figures = append(body.Figures, t)
		}
		if req.Summary {
			body.Summary = out.Matrix.Summarize()
		}
		resp.Matrix = body
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) cancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.q.Cancel(id)
	switch {
	case err == nil:
	case errors.Is(err, ErrUnknownJob):
		writeError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrFinished):
		writeError(w, http.StatusConflict, err)
		return
	default:
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	st, err := s.q.Status(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// catalog serves the registry inventories (the papertables text) so API
// clients can discover the same vocabulary -help prints; ?mesh=WxH
// renders the geometry-dependent tables at other shapes.
func (s *Server) catalog(w http.ResponseWriter, r *http.Request) {
	dims := r.URL.Query().Get("mesh")
	if dims == "" {
		dims = "4x4"
	}
	var b strings.Builder
	if err := FprintInventory(&b, dims); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, b.String())
}

func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
