package job

import (
	"context"
	"errors"
	"sync"

	"repro/internal/core"
)

// RunConfig is the per-run policy a transport attaches to a Request:
// where cached results live and where progress events go. The zero value
// runs without a cache and without events.
type RunConfig struct {
	// Cache, if non-nil, is the content-addressed result store: sweep
	// points (and whole matrices) already present are served from disk
	// bit-identically, and completed ones persist as the run goes — which
	// is also what makes an interrupted run resumable.
	Cache *core.PointCache
	// Events, if non-nil, receives the run's unified progress stream
	// under the contract documented in events.go: serialized delivery,
	// gap-free Seq, lifecycle order per point.
	Events func(Event)
}

// Outcome is a run's assembled result: exactly one of Matrix (matrix
// requests) or Sweep (sweep requests) is non-nil. After a cancelled or
// failed sweep, Sweep still carries every point that completed — partial
// results are returned alongside the error, never discarded.
type Outcome struct {
	// Matrix is the matrix run's full benchmark x protocol result.
	Matrix *core.Matrix `json:"matrix,omitempty"`
	// Sweep is the sweep run's per-point results in sweep order.
	Sweep *core.SweepResult `json:"sweep,omitempty"`
	// Cached reports that a matrix run was served whole from the cache
	// (sweep points carry their own per-point Cached flags).
	Cached bool `json:"cached,omitempty"`
}

// eventSink serializes the unified stream: one mutex covers every
// emitting callback (per-cell and per-point alike), and Seq is assigned
// under it, so delivery order IS the total order.
type eventSink struct {
	mu   sync.Mutex
	next int64
	fn   func(Event)
}

func (s *eventSink) emit(ev Event) {
	if s == nil || s.fn == nil {
		return
	}
	s.mu.Lock()
	ev.Seq = s.next
	s.next++
	s.fn(ev)
	s.mu.Unlock()
}

// Run executes a validated Request through the core engine and returns
// the assembled Outcome. Matrix requests run via core.RunMatrixContext;
// sweep requests via core.RunSweepOpt, inheriting the shared worker
// pool, bit-identical-at-any-worker-count assembly, cache/resume
// machinery and context cancellation. Both the engine's per-cell
// callback and its per-point callback are funneled into rc.Events as one
// serialized stream.
//
// Errors: a UsageError means the request itself is wrong (callers
// usually Validate first, making that unreachable); anything else is a
// run failure. A cancelled or failing sweep returns the partial Outcome
// alongside the error — with a cache attached, those points are already
// persisted, so resubmitting the same request resumes instead of
// restarting.
func Run(ctx context.Context, req Request, rc RunConfig) (*Outcome, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	opt, err := req.matrixOptions()
	if err != nil {
		return nil, usage(err)
	}
	sink := &eventSink{fn: rc.Events}
	opt.Progress = func(bench, proto string) {
		sink.emit(Event{Kind: KindCell, Bench: bench, Protocol: proto})
	}
	if req.IsSweep() {
		return runSweep(ctx, opt, req, rc, sink)
	}
	return runMatrix(ctx, opt, rc, sink)
}

// runMatrix runs one matrix, served whole from the cache when possible:
// the sweep-point cache keys any resolved matrix configuration, so an
// identical matrix submission costs a disk read, bit-identically. Trace
// replays (ErrUncacheable) and corrupt entries fall back to simulating,
// the latter loudly; a failure to persist the finished matrix is a
// warning event, never the run's error.
func runMatrix(ctx context.Context, opt core.MatrixOptions, rc RunConfig, sink *eventSink) (*Outcome, error) {
	var key core.PointKey
	haveKey := false
	if rc.Cache != nil {
		k, err := core.PointKeyFor(opt)
		switch {
		case errors.Is(err, core.ErrUncacheable):
		case err != nil:
			return nil, err
		default:
			key, haveKey = k, true
			m, err := rc.Cache.Load(key)
			if err != nil {
				sink.emit(Event{Kind: KindMatrix, Status: StatusCacheCorrupt, Error: err.Error()})
			} else if m != nil {
				sink.emit(Event{Kind: KindMatrix, Status: StatusCached})
				return &Outcome{Matrix: m, Cached: true}, nil
			}
		}
	}
	m, err := core.RunMatrixContext(ctx, opt)
	if err != nil {
		return nil, err
	}
	if haveKey {
		if err := rc.Cache.Store(key, m); err != nil {
			sink.emit(Event{Kind: KindMatrix, Status: StatusStoreFailed, Error: err.Error()})
		}
	}
	return &Outcome{Matrix: m}, nil
}

// runSweep runs one sweep, translating the engine's point events into
// the unified stream. The engine serializes its own callback; the shared
// sink's mutex additionally orders point events against cell events, so
// the merged stream has one total order.
func runSweep(ctx context.Context, opt core.MatrixOptions, req Request, rc RunConfig, sink *eventSink) (*Outcome, error) {
	sopt := core.SweepOptions{
		Cache:     rc.Cache,
		MaxPoints: req.MaxPoints,
		Progress: func(ev core.SweepProgress) {
			e := Event{
				Kind:   KindPoint,
				Status: pointStatus(ev.Status),
				Point:  ev.Point,
				Total:  ev.Total,
				Axis:   ev.Axis,
				Value:  ev.Value,
			}
			if ev.Err != nil {
				e.Error = ev.Err.Error()
			}
			sink.emit(e)
		},
	}
	res, err := core.RunSweepOpt(ctx, opt, req.Sweep, sopt)
	var out *Outcome
	if res != nil {
		out = &Outcome{Sweep: res}
	}
	return out, err
}
