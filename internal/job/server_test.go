package job

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func postJob(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeError(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body did not decode: %v", err)
	}
	return e.Error
}

// Malformed submissions are loud 4xx with the same validation messages
// the CLIs print — the registry's own words, not a generic "bad request".
func TestServerRejectsMalformedRequests(t *testing.T) {
	q := NewQueue(QueueOptions{})
	defer q.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(q))
	defer ts.Close()

	cases := []struct {
		body string
		want string
	}{
		// The exact message trafficsim -sweep 'hotspot(t=4)' prints.
		{`{"sweep":"hotspot(t=4)"}`, `core: sweep "hotspot(t=4)": no parameter has multiple values (use a range like t=1..16 or a list like t=1,2,4)`},
		{`{"sweep":"hotspot(t=1,2)","benchmarks":["FFT"]}`, "sets the benchmark axis"},
		{`{"size":"huge"}`, `unknown size "huge"`},
		{`{"protocols":["NOPE"]}`, "NOPE"},
		{`{"bogus":1}`, "invalid request JSON"},
		{`not json`, "invalid request JSON"},
	}
	for _, c := range cases {
		resp := postJob(t, ts, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s: status %d, want 400", c.body, resp.StatusCode)
		}
		if msg := decodeError(t, resp); !strings.Contains(msg, c.want) {
			t.Fatalf("POST %s: error %q does not contain %q", c.body, msg, c.want)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/job-99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown job: status %d, want 404", resp.StatusCode)
	}
}

// The whole HTTP lifecycle on a real sweep: submit, stream the NDJSON
// events to completion, fetch the result — whose text rendering is
// byte-identical to what the orchestration layer (and therefore the CLI)
// produces — then resubmit and get the cache-served twin, also
// byte-identical, with zero simulated points.
func TestServerJobLifecycle(t *testing.T) {
	cache, err := core.OpenPointCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(QueueOptions{Cache: cache})
	defer q.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(q))
	defer ts.Close()

	const body = `{"sweep":"hotspot(t=1,2)","protocols":["MESI"],"workers":1}`
	resp := postJob(t, ts, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.ID == "" || sub.State != StateQueued {
		t.Fatalf("submit response = %+v", sub)
	}

	// Stream events to completion: NDJSON, one Event per line, gap-free
	// Seq, closing when the job reaches a terminal state.
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/" + sub.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("event stream was empty")
	}
	for i, ev := range events {
		if int(ev.Seq) != i {
			t.Fatalf("event %d has Seq %d: stream must be gap-free", i, ev.Seq)
		}
	}

	// The stream ended, so the job is terminal.
	st := httpStatus(t, ts, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	if st.Progress.PointsDone != 2 {
		t.Fatalf("progress = %+v, want 2 points done", st.Progress)
	}

	// Replaying the stream from an offset returns only the tail.
	resp, err = ts.Client().Get(fmt.Sprintf("%s/v1/jobs/%s/events?from=%d", ts.URL, sub.ID, len(events)-1))
	if err != nil {
		t.Fatal(err)
	}
	tail, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if n := bytes.Count(tail, []byte("\n")); n != 1 {
		t.Fatalf("events?from=%d returned %d lines, want 1", len(events)-1, n)
	}

	// The text rendering is the byte-identity contract: exactly what the
	// orchestration layer renders for this request (which the CLI shims
	// print verbatim — pinned against the real binaries in CI).
	req := Request{Sweep: "hotspot(t=1,2)", Protocols: []string{"MESI"}, Workers: 1}
	out, err := q.Result(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := out.RenderText(&want, req); err != nil {
		t.Fatal(err)
	}
	text := httpResultText(t, ts, sub.ID)
	if text != want.String() {
		t.Fatalf("result?format=text differs from RenderText:\n--- http\n%s\n--- direct\n%s", text, want.String())
	}

	// The JSON result carries the assembled table and per-point metadata.
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var res resultResponse
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if res.Sweep == nil || res.Sweep.Expected != 2 || len(res.Sweep.Points) != 2 || res.Sweep.Table == nil {
		t.Fatalf("result JSON = %+v, want a complete 2-point sweep", res)
	}

	// Cancelling a finished job is a conflict, not a silent no-op.
	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err = ts.Client().Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE on a done job: status %d, want 409", resp.StatusCode)
	}

	// An identical resubmission is served from the shared cache: zero
	// simulated points, byte-identical text.
	resp = postJob(t, ts, body)
	var sub2 submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Wait(ctx, sub2.ID); err != nil {
		t.Fatal(err)
	}
	st2 := httpStatus(t, ts, sub2.ID)
	if st2.State != StateDone || st2.Progress.PointsCached != 2 || st2.Progress.PointsDone != 2 {
		t.Fatalf("resubmission status = %+v, want done with 2/2 points cached", st2)
	}
	if text2 := httpResultText(t, ts, sub2.ID); text2 != text {
		t.Fatalf("cache-served result differs:\n--- first\n%s\n--- second\n%s", text, text2)
	}
}

func httpStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status: %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func httpResultText(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/result?format=text")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result?format=text: %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// A full FIFO answers 503 + Retry-After — backpressure, not an error the
// client can't distinguish from a broken server.
func TestServerQueueFull(t *testing.T) {
	b := newBlockingRunner()
	q := NewQueue(QueueOptions{Bound: 1})
	q.runFn = b.run
	defer func() { close(b.release); q.Shutdown(context.Background()) }()
	ts := httptest.NewServer(NewServer(q))
	defer ts.Close()

	resp := postJob(t, ts, `{}`)
	resp.Body.Close()
	waitStart(t, b)
	resp = postJob(t, ts, `{}`) // fills the single waiting slot
	resp.Body.Close()
	resp = postJob(t, ts, `{}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit past the bound: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After header")
	}
}

// DELETE on a running job cancels it; with nothing completed the result
// endpoint reports the conflict instead of inventing an empty table.
func TestServerCancelRunning(t *testing.T) {
	started := make(chan struct{}, 1)
	q := NewQueue(QueueOptions{})
	q.runFn = func(ctx context.Context, req Request, rc RunConfig) (*Outcome, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	defer q.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(q))
	defer ts.Close()

	resp := postJob(t, ts, `{}`)
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}

	// Fetching the result of an unfinished job is a 409 pointing at the
	// event stream, not an empty 200.
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of a running job: status %d, want 409", resp.StatusCode)
	}

	delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err = ts.Client().Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE running job: status %d, want 200", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Wait(ctx, sub.ID); err != nil {
		t.Fatal(err)
	}
	if st := httpStatus(t, ts, sub.ID); st.State != StateCancelled {
		t.Fatalf("state after DELETE = %s, want cancelled", st.State)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result of a cancelled-empty job: status %d, want 409", resp.StatusCode)
	}
}

// The catalog endpoint serves exactly the papertables text, and liveness
// answers without touching the queue.
func TestServerCatalogAndHealth(t *testing.T) {
	q := NewQueue(QueueOptions{})
	defer q.Shutdown(context.Background())
	ts := httptest.NewServer(NewServer(q))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("catalog: status %d", resp.StatusCode)
	}
	var want bytes.Buffer
	if err := FprintInventory(&want, "4x4"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("catalog differs from FprintInventory output")
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/catalog?mesh=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("catalog with bad mesh: status %d, want 400", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok":true`)) {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}
