// Package job is the run-orchestration layer between a validated request
// and an assembled result. It factors everything the one-shot CLIs used
// to hand-wire — registry validation, matrix/sweep execution, progress
// plumbing, cache/resume policy, cancellation — into three reusable
// pieces layered under any transport:
//
//	Request  one matrix or sweep run, as plain serializable strings
//	         (every axis is already a registry spec with loud
//	         validation, which is what makes the API nearly free)
//	Run      executes a Request via the core engine with ONE serialized
//	         progress-event stream (events.go) and a content-addressed
//	         result cache
//	Queue    a bounded FIFO of Requests with per-job states, streamed
//	         events, cancellation and graceful drain
//
// cmd/trafficsim, cmd/papertables and examples/loadsweep are flag-parsing
// shims over this package; cmd/simserver is an HTTP/JSON transport over
// Queue (server.go). See DESIGN.md "The layered run pipeline".
package job

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

// UsageError marks a request the caller got wrong — an unknown name, a
// malformed spec, a conflicting knob combination — as opposed to a
// simulation failing at runtime. CLIs exit 2 on it (their usage-error
// convention) and the HTTP transport answers 400; the message is the
// same loud text either way.
type UsageError struct {
	// Err is the underlying validation error, verbatim.
	Err error
}

// Error returns the underlying message unchanged, so clients print
// exactly the text the registries and parsers produce.
func (e *UsageError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *UsageError) Unwrap() error { return e.Err }

// IsUsageError reports whether err is a request-validation error (exit 2
// / HTTP 400) rather than a run failure (exit 1 / HTTP 500).
func IsUsageError(err error) bool {
	var u *UsageError
	return errors.As(err, &u)
}

func usage(err error) error { return &UsageError{Err: err} }

func usagef(format string, args ...any) error {
	return usage(fmt.Errorf(format, args...))
}

// Request is one run, fully described by transport-friendly values: every
// axis is a registry spec string the engine validates loudly, so a
// Request deserialized from JSON carries exactly the same vocabulary as
// one built from CLI flags. The zero value of each field means "engine
// default" — mirroring the CLIs, which only pin the knobs passed
// explicitly so sweeps can tell "defaulted" from "pinned".
type Request struct {
	// Figures lists the figure tables to assemble for a matrix run:
	// figure ids (core.FigureIDs) or "all". Meaningless under Sweep.
	Figures []string `json:"figures,omitempty"`
	// Summary adds the headline paper-vs-measured averages to a matrix
	// run's output.
	Summary bool `json:"summary,omitempty"`
	// Size is the input scale: "tiny" (default when empty), "small" or
	// "paper".
	Size string `json:"size,omitempty"`
	// Benchmarks selects workloads as registry specs (nil = the paper's
	// six). A workload-parameter sweep owns this axis; setting both is an
	// error.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Protocols selects protocol specs (nil = the paper's nine). A
	// protocol-axis sweep owns this axis.
	Protocols []string `json:"protocols,omitempty"`
	// Sweep, when non-empty, makes this a sweep run over the given spec
	// ("axis=v1,v2,..." or "family(key=lo..hi)"); empty means a matrix
	// run.
	Sweep string `json:"sweep,omitempty"`
	// Topology pins the NoC topology ("" = mesh, the engine default —
	// and the only spelling that lets a topology sweep run).
	Topology string `json:"topology,omitempty"`
	// Router pins the fabric forwarding model ("" = ideal).
	Router string `json:"router,omitempty"`
	// Mesh pins the tile-grid dimensions as "WxH" ("" = the paper's 4x4).
	Mesh string `json:"mesh,omitempty"`
	// VCs and VCDepth pin the vc router's buffer geometry (0 = model
	// default; dead — and rejected — under any other router).
	VCs     int `json:"vcs,omitempty"`
	VCDepth int `json:"vcdepth,omitempty"`
	// Threads is the simulated worker-thread count (0 = 16, the paper's
	// tile count).
	Threads int `json:"threads,omitempty"`
	// Workers bounds concurrent cell simulations (0 = one per CPU,
	// 1 = serial). Scheduling never changes results, only wall-clock.
	Workers int `json:"workers,omitempty"`
	// MaxPoints raises the sweep expansion cap (0 = the default cap,
	// core.DefaultSweepPointCap).
	MaxPoints int `json:"maxpoints,omitempty"`
}

// IsSweep reports whether the request is a sweep run.
func (r *Request) IsSweep() bool { return r.Sweep != "" }

// Kind names the request's run kind for statuses and logs.
func (r *Request) Kind() string {
	if r.IsSweep() {
		return "sweep"
	}
	return "matrix"
}

// Normalize applies the CLI's output defaulting: a matrix request that
// names no figures and no summary means "everything" — all figure tables
// plus the summary, exactly like running trafficsim with no -fig.
func (r *Request) Normalize() {
	if !r.IsSweep() && len(r.Figures) == 0 && !r.Summary {
		r.Figures = []string{"all"}
		r.Summary = true
	}
}

// SizeFromName resolves the input-scale name ("" defaults to tiny, the
// scale every CLI defaults to).
func SizeFromName(name string) (workloads.Size, error) {
	switch name {
	case "", "tiny":
		return workloads.Tiny, nil
	case "small":
		return workloads.Small, nil
	case "paper":
		return workloads.Paper, nil
	}
	return 0, fmt.Errorf("unknown size %q", name)
}

// FigureIDs returns the figure ids a matrix request renders, with "all"
// expanded, in request order.
func (r *Request) FigureIDs() []string {
	var ids []string
	for _, id := range r.Figures {
		if id == "all" {
			ids = append(ids, core.FigureIDs()...)
		} else {
			ids = append(ids, id)
		}
	}
	return ids
}

// Validate checks everything the pre-refactor CLIs checked before paying
// for any simulation, in the same order and with the same loud messages:
// knob conflicts, the input scale, figure ids, workload specs, the mesh
// shape, and — for sweeps — the spec itself plus axis-ownership
// conflicts. Every error is a UsageError (CLI exit 2, HTTP 400).
// Deliberately NOT checked here: protocol specs, which the engine
// validates when the run starts (the CLIs historically reported those at
// run time with exit 1, and byte-identical behavior is pinned) — the
// HTTP transport closes that gap with ValidateStrict.
func (r *Request) Validate() error {
	if (r.VCs != 0 || r.VCDepth != 0) && r.Router != "vc" {
		return usagef("-vcs/-vcdepth configure the vc router and are dead under any other model; add -router vc")
	}
	if r.MaxPoints < 0 {
		return usagef("-maxpoints %d: the sweep cap must be >= 1 (default %d)", r.MaxPoints, core.DefaultSweepPointCap)
	}
	if _, err := SizeFromName(r.Size); err != nil {
		return usage(err)
	}
	for _, id := range r.Figures {
		if id == "all" {
			continue
		}
		if err := core.ValidFigureID(id); err != nil {
			return usage(err)
		}
	}
	for _, spec := range r.Benchmarks {
		if _, err := workloads.ParseSpec(spec); err != nil {
			return usage(err)
		}
	}
	if r.Mesh != "" {
		if _, _, err := memsys.ParseMeshDims(r.Mesh); err != nil {
			return usage(err)
		}
	}
	if r.IsSweep() {
		if len(r.Figures) > 0 || r.Summary {
			return usagef("-sweep prints its own assembled table; drop -fig/-summary")
		}
		s, err := core.ParseSweepLimit(r.Sweep, r.MaxPoints)
		if err != nil {
			return usage(err)
		}
		opt, err := r.matrixOptions()
		if err != nil {
			return usage(err)
		}
		if _, err := s.PointOptions(opt); err != nil {
			return usage(err)
		}
	}
	return nil
}

// ValidateStrict is Validate plus the checks the CLIs defer to run time:
// protocol specs are resolved through the registry here, so a transport
// that wants every malformed request rejected at submission (the HTTP
// server's 400 contract) catches them before the job queues.
func (r *Request) ValidateStrict() error {
	if err := r.Validate(); err != nil {
		return err
	}
	for _, spec := range r.Protocols {
		if _, err := core.ParseProtocol(spec); err != nil {
			return usage(err)
		}
	}
	return nil
}

// ParsedSweep returns the request's validated sweep spec (nil for matrix
// requests) — the axis name and expanded point values, for renderers
// that need them before the run completes.
func (r *Request) ParsedSweep() (*core.SweepSpec, error) {
	if !r.IsSweep() {
		return nil, nil
	}
	s, err := core.ParseSweepLimit(r.Sweep, r.MaxPoints)
	if err != nil {
		return nil, usage(err)
	}
	return s, nil
}

// matrixOptions maps the request onto the engine's per-run options: zero
// fields stay zero so the engine applies its own defaults and sweeps can
// still claim unpinned axes.
func (r *Request) matrixOptions() (core.MatrixOptions, error) {
	size, err := SizeFromName(r.Size)
	if err != nil {
		return core.MatrixOptions{}, err
	}
	opt := core.MatrixOptions{
		Size:       size,
		Threads:    r.Threads,
		Protocols:  r.Protocols,
		Benchmarks: r.Benchmarks,
		Topology:   r.Topology,
		Router:     r.Router,
		VCs:        r.VCs,
		VCDepth:    r.VCDepth,
		Workers:    r.Workers,
	}
	if r.Mesh != "" {
		w, h, err := memsys.ParseMeshDims(r.Mesh)
		if err != nil {
			return core.MatrixOptions{}, err
		}
		opt.MeshWidth, opt.MeshHeight = w, h
	}
	return opt, nil
}
