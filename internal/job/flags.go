package job

import (
	"flag"
	"strings"
)

// Explicit reports which flags were actually passed on the command line.
// The distinction is load-bearing for sweeps: the engine applies the
// same defaults (mesh topology, ideal router, 16 threads) to zero-valued
// request fields, and a sweep over an axis must tell "defaulted" from
// "pinned" — sweeping topology against an explicit -topology is a
// conflict error, sweeping it against the default is the normal case.
// Every CLI used to hand-roll this flag.Visit loop (trafficsim twice);
// one helper keeps the explicitness semantics from drifting between call
// sites.
func Explicit(fs *flag.FlagSet) map[string]bool {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// SplitList splits a comma-separated list, trimming whitespace and
// dropping empty pieces — the shape of -protocols and every other plain
// CSV flag.
func SplitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// SplitSpecs splits a comma-separated workload-spec list, keeping commas
// inside parameter lists intact: "hotspot(t=2,p=0.1),FFT" is two specs.
func SplitSpecs(s string) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if p := strings.TrimSpace(s[start:end]); p != "" {
			out = append(out, p)
		}
	}
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(len(s))
	return out
}
