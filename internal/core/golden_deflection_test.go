package core_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

const goldenDeflPath = "testdata/golden_tiny_deflection.json"

// goldenDeflFigureIDs are the deflection snapshot's tables: the headline
// traffic figure plus the congestion-telemetry table. Unlike the main
// golden (where "net" is excluded so new telemetry columns stay cheap),
// the deflection snapshot pins "net" on purpose — DeflectedHops and the
// deflection router's latency profile ARE the behavior under test.
var goldenDeflFigureIDs = []string{"5.1a", "net"}

// goldenDeflOptions is the pinned configuration: the full Tiny benchmark
// suite under the protocol ladder's endpoints and midpoint, every cell on
// the deflection router.
func goldenDeflOptions() core.MatrixOptions {
	return core.MatrixOptions{
		Size:      workloads.Tiny,
		Protocols: []string{"MESI", "DeNovo", "DBypFull"},
		Router:    "deflection",
	}
}

// TestGoldenTinyDeflection pins the deflection router end to end the same
// way TestGoldenTinyMatrix pins the ideal model: the Tiny matrix under
// Router=deflection must reproduce the checked-in figure and telemetry
// tables exactly — deflected-hop counts included. Intentional model
// changes regenerate the snapshot with:
//
//	go test ./internal/core -run TestGoldenTinyDeflection -update
func TestGoldenTinyDeflection(t *testing.T) {
	if testing.Short() {
		t.Skip("full Tiny deflection matrix is slow; run without -short")
	}
	m, err := core.RunMatrix(goldenDeflOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := goldenFile{Figures: make(map[string]*core.Table, len(goldenDeflFigureIDs))}
	for _, id := range goldenDeflFigureIDs {
		tab, err := m.Figure(id)
		if err != nil {
			t.Fatal(err)
		}
		got.Figures[id] = tab
	}

	// Sanity the snapshot is pinning real deflection behavior, not a
	// silently-ideal run: some cell must have recorded deflected hops.
	var deflTotal float64
	net := got.Figures["net"]
	col := -1
	for i, c := range net.Columns {
		if c == "Defl Hops" {
			col = i
		}
	}
	if col < 0 {
		t.Fatalf("congestion table has no Defl Hops column: %v", net.Columns)
	}
	for _, row := range net.Rows {
		deflTotal += row.Values[col]
	}
	if deflTotal <= 0 {
		t.Fatal("no cell of the Tiny deflection matrix recorded deflected hops")
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(&got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenDeflPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenDeflPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d figures)", goldenDeflPath, len(got.Figures))
		return
	}

	raw, err := os.ReadFile(goldenDeflPath)
	if err != nil {
		t.Fatalf("%v — generate the snapshot with -update", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	// Round-trip the measured state through JSON so both sides compare
	// post-serialization (identical float64 round-trips, normalized nils).
	buf, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	var gotRT goldenFile
	if err := json.Unmarshal(buf, &gotRT); err != nil {
		t.Fatal(err)
	}
	for _, id := range goldenDeflFigureIDs {
		w, g := want.Figures[id], gotRT.Figures[id]
		if w == nil {
			t.Errorf("figure %s missing from golden file — regenerate with -update", id)
			continue
		}
		if reflect.DeepEqual(w, g) {
			continue
		}
		if !reflect.DeepEqual(w.Columns, g.Columns) {
			t.Errorf("figure %s: columns drifted: want %v, got %v", id, w.Columns, g.Columns)
			continue
		}
		if len(w.Rows) != len(g.Rows) {
			t.Errorf("figure %s: %d rows, golden has %d", id, len(g.Rows), len(w.Rows))
			continue
		}
		for i := range w.Rows {
			if !reflect.DeepEqual(w.Rows[i], g.Rows[i]) {
				t.Errorf("figure %s row %d (%s/%s) drifted:\nwant %v\ngot  %v",
					id, i, w.Rows[i].Bench, w.Rows[i].Protocol, w.Rows[i].Values, g.Rows[i].Values)
			}
		}
	}
}

// TestDeflectionMatrixMatchesSerial extends the bit-identical-at-any-
// worker-count guarantee to the deflection router: a serial run and a
// default-width parallel run of the same matrix must agree on every
// counter, deflected hops included.
func TestDeflectionMatrixMatchesSerial(t *testing.T) {
	run := func(workers int) *core.Matrix {
		m, err := core.RunMatrix(core.MatrixOptions{
			Size:       workloads.Tiny,
			Protocols:  []string{"MESI", "DBypFull"},
			Benchmarks: []string{"FFT"},
			Router:     "deflection",
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial, parallel := run(1), run(0)
	if serial.Router != "deflection" || parallel.Router != "deflection" {
		t.Fatalf("matrix router %q/%q, want deflection", serial.Router, parallel.Router)
	}
	for _, proto := range serial.Protocols {
		a, b := serial.Get("FFT", proto), parallel.Get("FFT", proto)
		if a == nil || b == nil {
			t.Fatalf("%s: missing cell", proto)
		}
		if a.FlitHops != b.FlitHops || a.ExecCycles != b.ExecCycles ||
			a.Waste != b.Waste || a.Time != b.Time || a.Net != b.Net {
			t.Fatalf("%s: deflection cell diverges between serial and parallel runs", proto)
		}
		if a.Net.Router != "deflection" {
			t.Fatalf("%s: cell ran router %q", proto, a.Net.Router)
		}
		if a.Net.PeakVCOccupancy <= 0 {
			t.Fatalf("%s: deflection run recorded no local-queue occupancy", proto)
		}
	}
}

// End to end, a saturating hotspot on the deflection router records
// deflected hops and a strictly higher mean packet latency than the
// ideal reservation model: misrouting detours are measured, not hidden.
func TestDeflectionHotspotEndToEnd(t *testing.T) {
	wl := workloads.MustByName("hotspot(t=1)", workloads.Tiny, 16)
	cfg := memsys.Default().Scaled(workloads.Tiny.ScaleDiv())
	ideal, err := core.RunOne(cfg, "MESI", wl)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = "deflection"
	defl, err := core.RunOne(cfg, "MESI", wl)
	if err != nil {
		t.Fatal(err)
	}
	if defl.Net.DeflectedHops == 0 {
		t.Fatal("hotspot run on the deflection router recorded zero deflected hops")
	}
	if ideal.Net.DeflectedHops != 0 {
		t.Fatalf("ideal router reported %d deflected hops", ideal.Net.DeflectedHops)
	}
	if !(defl.Net.LatencyMean > ideal.Net.LatencyMean) {
		t.Fatalf("deflection mean latency %.2f not above ideal %.2f",
			defl.Net.LatencyMean, ideal.Net.LatencyMean)
	}
}

// The saturation claim behind the sweep pin: under a rising hotspot load
// the deflection router's latency curve diverges from the vc router's —
// at high injection the two cycle-level models must not agree (deflection
// pays detours where vc pays buffering) — and only tables containing
// deflection cells grow the Defl% column.
func TestDeflectionSweepDivergesFromVC(t *testing.T) {
	if testing.Short() {
		t.Skip("two 3-point sweeps are slow; run without -short")
	}
	sweep := func(router string) *core.SweepTable {
		res, err := core.RunSweep(core.MatrixOptions{
			Size:      workloads.Tiny,
			Protocols: []string{"MESI"},
			Router:    router,
		}, "hotspot(t=1,4,16)")
		if err != nil {
			t.Fatal(err)
		}
		return res.Table()
	}
	vc, defl := sweep("vc"), sweep("deflection")

	wantVC := []string{"Traffic", "Cycles", "MeanLat", "MaxLat", "Util%", "Waste%", "L1Waste%"}
	if !reflect.DeepEqual(vc.Columns, wantVC) {
		t.Fatalf("vc sweep columns %v, want the historical set %v", vc.Columns, wantVC)
	}
	if !reflect.DeepEqual(defl.Columns, append(wantVC, "Defl%")) {
		t.Fatalf("deflection sweep columns %v, want %v plus Defl%%", defl.Columns, wantVC)
	}
	if len(vc.Rows) != len(defl.Rows) {
		t.Fatalf("row mismatch: vc %d, deflection %d", len(vc.Rows), len(defl.Rows))
	}
	col := func(t2 *core.SweepTable, name string) int {
		for i, c := range t2.Columns {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %s missing from %v", name, t2.Columns)
		return -1
	}
	meanVC, meanDefl := col(vc, "MeanLat"), col(defl, "MeanLat")
	deflIdx := col(defl, "Defl%")
	diverged, deflected := false, false
	for i := range vc.Rows {
		if vc.Rows[i].Values[meanVC] != defl.Rows[i].Values[meanDefl] {
			diverged = true
		}
		if defl.Rows[i].Values[deflIdx] > 0 {
			deflected = true
		}
	}
	if !diverged {
		t.Fatal("vc and deflection latency curves are identical across the hotspot sweep")
	}
	if !deflected {
		t.Fatal("no point of the deflection sweep reported a nonzero Defl%")
	}
}
