package core

import (
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/waste"
	"repro/internal/workloads"
)

// ProtocolNames lists the nine configurations of §3.2/§3.3 in the paper's
// figure order. The registry (registry.go) accepts these as canonical
// aliases alongside composable "base+Option" specs.
func ProtocolNames() []string {
	return []string{
		"MESI", "MMemL1",
		"DeNovo", "DFlexL1", "DValidateL2", "DMemL1", "DFlexL2", "DBypL2", "DBypFull",
	}
}

// NewProtocol instantiates a protocol engine by configuration spec on an
// environment (registering its tiles on the mesh). The spec is resolved
// through the composable registry: a canonical name ("DBypL2"), a family
// root, or a composition ("DeNovo+BypL2", "MESI+MemL1").
func NewProtocol(env *memsys.Env, spec string) (memsys.Protocol, error) {
	v, err := ParseProtocol(spec)
	if err != nil {
		return nil, err
	}
	return v.New(env), nil
}

// Result is one (protocol, benchmark) measurement, detached from its Env.
type Result struct {
	Protocol  string
	Benchmark string

	FlitHops   [memsys.NumClasses][memsys.NumBuckets]float64
	Waste      [3][8]uint64 // [waste.Level][waste.Category] words
	ExecCycles int64
	Time       memsys.TimeBreakdown // summed over cores
	WasteShare float64
	Net        mesh.NetStats // congestion telemetry over the measured window

	// KernelClamped counts events the kernel had to clamp to "now"
	// because a component scheduled them in the past. Any nonzero value
	// is a component-logic bug; the regression suite asserts zero across
	// the full Tiny matrix under both router models.
	KernelClamped uint64
}

// ClassTotal sums a traffic class.
func (r *Result) ClassTotal(c memsys.Class) float64 {
	var s float64
	for b := memsys.Bucket(0); b < memsys.NumBuckets; b++ {
		s += r.FlitHops[c][b]
	}
	return s
}

// Total sums all traffic.
func (r *Result) Total() float64 {
	var s float64
	for c := memsys.Class(0); c < memsys.NumClasses; c++ {
		s += r.ClassTotal(c)
	}
	return s
}

// WasteTotal sums the measured words fetched into a level.
func (r *Result) WasteTotal(level waste.Level) uint64 {
	var s uint64
	for _, c := range waste.Categories {
		s += r.Waste[level][c]
	}
	return s
}

// RunOne simulates one benchmark under one protocol configuration and
// returns the detached measurement.
func RunOne(cfg memsys.Config, protoName string, prog memsys.Program) (*Result, error) {
	env, err := memsys.NewEnv(cfg, prog.FootprintBytes(), prog.Regions())
	if err != nil {
		return nil, err
	}
	proto, err := NewProtocol(env, protoName)
	if err != nil {
		return nil, err
	}
	r := NewRunner(env, proto, prog)
	if err := r.Run(); err != nil {
		return nil, err
	}
	res := &Result{
		Protocol:      proto.Name(), // the normalized registry spec
		Benchmark:     prog.Name(),
		FlitHops:      env.Traffic.Snapshot(),
		Waste:         env.Prof.Snapshot(),
		ExecCycles:    r.ExecCycles(),
		WasteShare:    env.Traffic.WasteShare(),
		Net:           env.Mesh.Stats(),
		KernelClamped: env.K.Clamped(),
	}
	for _, tb := range r.Times {
		res.Time.Busy += tb.Busy
		res.Time.OnChip += tb.OnChip
		res.Time.ToMC += tb.ToMC
		res.Time.Mem += tb.Mem
		res.Time.FromMC += tb.FromMC
		res.Time.Sync += tb.Sync
	}
	return res, nil
}

// Matrix holds results for benchmarks x protocols, the unit every figure
// is drawn from.
type Matrix struct {
	Size       workloads.Size
	Topology   string // NoC topology every cell was simulated on
	Router     string // router model every cell was simulated with
	Benchmarks []string
	Protocols  []string
	Results    map[string]map[string]*Result // [benchmark][protocol]
}

// Get returns the result for (benchmark, protocol), or nil.
func (m *Matrix) Get(bench, proto string) *Result {
	if row := m.Results[bench]; row != nil {
		return row[proto]
	}
	return nil
}

// MatrixOptions configures RunMatrix / RunMatrixContext.
type MatrixOptions struct {
	Size      workloads.Size
	Threads   int      // 0 = 16 (the paper's tile count)
	Protocols []string // nil = all nine
	// Benchmarks selects the workloads, as registry specs: ported
	// benchmark names, synthetic patterns with optional parameters
	// ("uniform(p=0.1)", "hotspot(t=2)"), or trace replays
	// ("replay(file=x.trc)"). nil = the paper's six benchmarks.
	Benchmarks []string
	// Topology selects the NoC topology for every cell: "mesh" (default),
	// "ring", or "torus".
	Topology string
	// MeshWidth and MeshHeight re-dimension the tile grid for every cell
	// (0,0 = the paper's 4x4). Both must be set together; the tile count,
	// corner MC placement and Bloom bank geometry follow the dimensions
	// (memsys.Config.WithMesh), and Threads must not exceed the tile count.
	MeshWidth  int
	MeshHeight int
	// Router selects the fabric's forwarding model for every cell:
	// "ideal" (default), "vc" (the cycle-level VC wormhole router), or
	// "deflection" (the cycle-level bufferless deflection router).
	Router string
	// VCs overrides the vc router's virtual-channel count per input port
	// for every cell (0 = the model default; must be even and >= 2, see
	// memsys.Config.VCs).
	VCs int
	// VCDepth overrides the vc router's flit buffer depth per VC for every
	// cell (0 = the model default).
	VCDepth int
	// Workers bounds the number of simulations running concurrently:
	// 0 = one per available CPU (GOMAXPROCS), 1 = serial reference mode on
	// the calling goroutine. Cells are independent simulations, so the
	// assembled Matrix is bit-identical at every worker count.
	Workers int
	// Progress, if set, is called before each cell starts. With
	// Workers > 1 the calls come from worker goroutines (serialized, but
	// in completion-race order rather than matrix order).
	Progress func(bench, proto string)
}
