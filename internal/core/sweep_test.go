package core_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// TestParseSweepExpansion pins the expansion rules: ranges, steps, value
// lists, fixed co-parameters, and the canonical point order.
func TestParseSweepExpansion(t *testing.T) {
	cases := []struct {
		spec     string
		axis     string
		workload string
		values   []string
	}{
		{"topology=mesh,ring,torus", "topology", "", []string{"mesh", "ring", "torus"}},
		{"topology=ring,mesh", "topology", "", []string{"ring", "mesh"}}, // given order, not sorted
		{"router=ideal,vc", "router", "", []string{"ideal", "vc"}},
		{"vcs=2..8..2", "vcs", "", []string{"2", "4", "6", "8"}},
		{"vcdepth=1..4", "vcdepth", "", []string{"1", "2", "3", "4"}},
		{"threads=4,8,16", "threads", "", []string{"4", "8", "16"}},
		{"protocol=MESI,DeNovo+BypL2", "protocol", "", []string{"MESI", "DeNovo+BypL2"}},
		{"hotspot(t=1..4)", "hotspot.t", "hotspot", []string{"1", "2", "3", "4"}},
		{"hotspot(t=1,2,4,p=0.1)", "hotspot.t", "hotspot", []string{"1", "2", "4"}},
		{"uniform(p=0.02..0.06..0.02)", "uniform.p", "uniform", []string{"0.02", "0.04", "0.06"}},
		{"uniform(p=0..1..0.5)", "uniform.p", "uniform", []string{"0", "0.5", "1"}}, // int bounds, float step
		{"vcs=02,4", "vcs", "", []string{"2", "4"}},                                 // numeric values normalize
		{"hotspot(t=1,02,4)", "hotspot.t", "hotspot", []string{"1", "2", "4"}},      // workload values too
		{" hotspot( t = 1..3 ) ", "hotspot.t", "hotspot", []string{"1", "2", "3"}},
		{"prodcons(groups=2,4,8)", "prodcons.groups", "prodcons", []string{"2", "4", "8"}},
	}
	for _, c := range cases {
		s, err := core.ParseSweep(c.spec)
		if err != nil {
			t.Errorf("ParseSweep(%q): %v", c.spec, err)
			continue
		}
		if s.Axis != c.axis {
			t.Errorf("ParseSweep(%q): axis %q, want %q", c.spec, s.Axis, c.axis)
		}
		if s.Workload != c.workload {
			t.Errorf("ParseSweep(%q): workload %q, want %q", c.spec, s.Workload, c.workload)
		}
		if !reflect.DeepEqual(s.Values, c.values) {
			t.Errorf("ParseSweep(%q): values %v, want %v", c.spec, s.Values, c.values)
		}
	}
}

// TestParseSweepErrors pins the loud-failure paths: every malformed or
// unresolvable sweep must error at parse time, before any simulation.
func TestParseSweepErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "empty sweep"},
		{"hotspot", "neither axis=values nor workload"},
		{"gravity=1,2", "unknown sweep axis"},
		{"topology=mesh", "needs at least 2"},
		{"topology=mesh,hexgrid", "unknown topology"},
		{"topology=mesh,mesh", "duplicate point"},
		{"router=ideal,quantum", "unknown router"},
		{"vcs=2,3", "even count"},
		{"vcs=2,x", "not an integer"},
		{"vcdepth=0..2", ">= 1"},
		{"protocol=MESI,Dragon", "unknown protocol"},
		{"hotspot(t=1..16", "missing ')'"},
		{"hotspot(t=4)", "no parameter has multiple values"},
		{"hotspot(t=1..4,p=0.1..0.3..0.1)", "one axis"},
		{"hotspot(t=4..1)", "hi 1 < lo 4"},
		{"hotspot(t=1..4..0)", "must be positive"},
		{"vcs=4,04", "duplicate point"},
		{"protocol=MESI+MemL1,MESI + MemL1", "duplicate point"}, // normalized before dedup
		{"uniform(p=0.1..0.9)", "explicit step"},
		{"uniform(p=0.1..0.9..-0.1)", "positive number"},
		{"hotspot(t=1,2,4", "missing ')'"},
		{"hotspot(1,2,4)", "before any key="},
		{"warp(t=1..4)", "unknown benchmark"},
		{"hotspot(speed=1..4)", "unknown option"},
		{"hotspot(t=1,2,01)", "duplicate point"},
		{"vcs=2..2048..2", "expands past"},
	}
	for _, c := range cases {
		_, err := core.ParseSweep(c.spec)
		if err == nil {
			t.Errorf("ParseSweep(%q): no error, want %q", c.spec, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSweep(%q): error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

// TestSweepPointOptionsConflicts: a sweep that owns the benchmark or
// protocol axis must reject an explicit base list for the same axis
// instead of silently overriding it.
func TestSweepPointOptionsConflicts(t *testing.T) {
	s, err := core.ParseSweep("hotspot(t=1,2)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PointOptions(core.MatrixOptions{Benchmarks: []string{"FFT"}}); err == nil {
		t.Error("workload sweep with explicit benchmarks: no error")
	}
	if _, err := s.PointOptions(core.MatrixOptions{Protocols: []string{"MESI"}}); err != nil {
		t.Errorf("workload sweep with explicit protocols should be fine: %v", err)
	}
	p, err := core.ParseSweep("protocol=MESI,DeNovo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PointOptions(core.MatrixOptions{Protocols: []string{"MESI"}}); err == nil {
		t.Error("protocol sweep with explicit protocols: no error")
	}
	// Every engine axis owns its MatrixOptions field the same way. The VC
	// geometry axes additionally require the vc router — under ideal every
	// point would be identical, the silent-no-op class.
	engineAxes := []struct {
		spec   string
		pinned core.MatrixOptions
		clean  core.MatrixOptions
	}{
		{"topology=mesh,ring", core.MatrixOptions{Topology: "torus"}, core.MatrixOptions{}},
		{"router=ideal,vc", core.MatrixOptions{Router: "vc"}, core.MatrixOptions{}},
		{"vcs=2,4", core.MatrixOptions{Router: "vc", VCs: 6}, core.MatrixOptions{Router: "vc"}},
		{"vcdepth=1,2", core.MatrixOptions{Router: "vc", VCDepth: 8}, core.MatrixOptions{Router: "vc"}},
		{"threads=4,8", core.MatrixOptions{Threads: 16}, core.MatrixOptions{}},
	}
	for _, c := range engineAxes {
		sw, err := core.ParseSweep(c.spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sw.PointOptions(c.pinned); err == nil {
			t.Errorf("sweep %q with the axis pinned in base options: no error", c.spec)
		}
		if _, err := sw.PointOptions(c.clean); err != nil {
			t.Errorf("sweep %q with a clean base: %v", c.spec, err)
		}
	}
	// A VC-geometry sweep under the (default) ideal router is a silent
	// no-op and must be rejected.
	for _, spec := range []string{"vcs=2,4", "vcdepth=1,2"} {
		sw, err := core.ParseSweep(spec)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sw.PointOptions(core.MatrixOptions{}); err == nil {
			t.Errorf("sweep %q under the ideal router: no error", spec)
		} else if !strings.Contains(err.Error(), "vc router") {
			t.Errorf("sweep %q under ideal: error %q does not mention the vc router", spec, err)
		}
	}
}

// TestSweepPointOptionsApply verifies each engine axis lands on the right
// MatrixOptions field, point by point in sweep order.
func TestSweepPointOptionsApply(t *testing.T) {
	base := core.MatrixOptions{Size: workloads.Tiny, Router: "vc"}
	s, err := core.ParseSweep("vcs=2,4")
	if err != nil {
		t.Fatal(err)
	}
	pts, err := s.PointOptions(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].VCs != 2 || pts[1].VCs != 4 {
		t.Fatalf("vcs sweep points: %+v", pts)
	}
	if pts[0].Router != "vc" {
		t.Errorf("base Router not inherited: %q", pts[0].Router)
	}
	w, err := core.ParseSweep("hotspot(t=2,4)")
	if err != nil {
		t.Fatal(err)
	}
	wpts, err := w.PointOptions(base)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"hotspot(t=2)"}, {"hotspot"}} // t=4 is the default and folds away
	for i, p := range wpts {
		if !reflect.DeepEqual(p.Benchmarks, want[i]) {
			t.Errorf("point %d benchmarks %v, want %v", i, p.Benchmarks, want[i])
		}
	}
}

// sweepTestOptions is a small but real sweep configuration shared by the
// determinism tests: two points, two protocols, one benchmark per point.
func sweepTestOptions(workers int) core.MatrixOptions {
	return core.MatrixOptions{
		Size:      workloads.Tiny,
		Protocols: []string{"MESI", "DeNovo"},
		Workers:   workers,
	}
}

// TestSweepWorkersDeterminism is the sweep engine's core guarantee,
// inherited from the matrix engine: the assembled table is bit-identical
// between the serial reference (Workers: 1) and the parallel run
// (Workers: 0), field for field.
func TestSweepWorkersDeterminism(t *testing.T) {
	const spec = "hotspot(t=1,2)"
	serial, err := core.RunSweep(sweepTestOptions(1), spec)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.RunSweep(sweepTestOptions(0), spec)
	if err != nil {
		t.Fatal(err)
	}
	st, pt := serial.Table(), parallel.Table()
	if !reflect.DeepEqual(st, pt) {
		t.Errorf("sweep table diverges between Workers=1 and Workers=0:\nserial   %+v\nparallel %+v", st, pt)
	}
	// The guarantee covers the full per-point matrices, not just the
	// assembled table columns.
	for i := range serial.Points {
		a, b := serial.Points[i], parallel.Points[i]
		if a.Value != b.Value {
			t.Errorf("point %d: value %q vs %q", i, a.Value, b.Value)
		}
		if !reflect.DeepEqual(a.Matrix, b.Matrix) {
			t.Errorf("point %s: matrices diverge", a.Value)
		}
	}
}

// TestSweepOrderingStable: two identical runs produce identical tables —
// point order, row order, and values — so sweep output is reproducible
// run to run, not just worker count to worker count.
func TestSweepOrderingStable(t *testing.T) {
	const spec = "topology=ring,mesh"
	opt := core.MatrixOptions{
		Size:       workloads.Tiny,
		Protocols:  []string{"MESI"},
		Benchmarks: []string{"LU"},
	}
	first, err := core.RunSweep(opt, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := core.RunSweep(opt, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := []string{first.Points[0].Value, first.Points[1].Value}; !reflect.DeepEqual(got, []string{"ring", "mesh"}) {
		t.Errorf("point order %v, want the spec's order [ring mesh]", got)
	}
	if !reflect.DeepEqual(first.Table(), second.Table()) {
		t.Error("identical sweeps produced different tables")
	}
}

// TestSweepCancelReturnsPartial: cancelling mid-sweep must hand back the
// points that completed — in sweep order, identical to an uninterrupted
// run's — alongside the cancellation error, not discard them.
func TestSweepCancelReturnsPartial(t *testing.T) {
	const spec = "hotspot(t=1,2,4)"
	opt := core.MatrixOptions{Size: workloads.Tiny, Protocols: []string{"MESI"}, Workers: 1}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := core.RunSweepOpt(ctx, opt, spec, core.SweepOptions{
		Progress: func(ev core.SweepProgress) {
			if ev.Status == core.SweepPointDone {
				cancel() // first point finished; the serial pool stops at the next job
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if partial == nil {
		t.Fatal("cancelled sweep returned no partial result")
	}
	if partial.Expected != 3 {
		t.Errorf("Expected = %d, want 3", partial.Expected)
	}
	if len(partial.Points) != 1 {
		t.Fatalf("partial result has %d points, want 1", len(partial.Points))
	}
	if partial.Points[0].Value != "1" {
		t.Errorf("partial point value %q, want %q (sweep order)", partial.Points[0].Value, "1")
	}

	full, err := core.RunSweepOpt(context.Background(), opt, spec, core.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(partial.Points[0], full.Points[0]) {
		t.Error("the completed point of a cancelled sweep differs from an uninterrupted run")
	}
}

// TestSweepResumeMatchesFresh is the resume acceptance pin: kill a cached
// sweep after its first point, rerun the same sweep against the same
// cache, and the assembled result is deeply equal to an uninterrupted
// fresh run — with the finished point served from disk, not resimulated.
func TestSweepResumeMatchesFresh(t *testing.T) {
	const spec = "hotspot(t=1,2,4)"
	opt := core.MatrixOptions{Size: workloads.Tiny, Protocols: []string{"MESI"}, Workers: 1}
	cache, err := core.OpenPointCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := core.RunSweepOpt(ctx, opt, spec, core.SweepOptions{
		Cache: cache,
		Progress: func(ev core.SweepProgress) {
			if ev.Status == core.SweepPointDone {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(partial.Points) != 1 {
		t.Fatalf("interrupted run completed %d points, want 1", len(partial.Points))
	}

	var cachedN, simulatedN int
	resumed, err := core.RunSweepOpt(context.Background(), opt, spec, core.SweepOptions{
		Cache: cache,
		Progress: func(ev core.SweepProgress) {
			switch ev.Status {
			case core.SweepPointCached:
				cachedN++
			case core.SweepPointStarted:
				simulatedN++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cachedN != 1 || simulatedN != 2 {
		t.Errorf("resume served %d points from cache and simulated %d, want 1 and 2", cachedN, simulatedN)
	}

	fresh, err := core.RunSweepOpt(context.Background(), opt, spec, core.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Table(), fresh.Table()) {
		t.Error("resumed sweep table differs from an uninterrupted fresh run")
	}
	for i := range fresh.Points {
		if !reflect.DeepEqual(resumed.Points[i].Matrix, fresh.Points[i].Matrix) {
			t.Errorf("point %s: resumed matrix differs from fresh simulation", fresh.Points[i].Value)
		}
	}
}

// TestSweepPointFailureReturnsPartial: a mid-sweep point failure (a replay
// whose trace file is missing, only discovered when the point builds)
// names the failing point AND returns the points that completed before it.
func TestSweepPointFailureReturnsPartial(t *testing.T) {
	prog, err := workloads.ByName("FFT", workloads.Tiny, 16)
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(t.TempDir(), "fft.trc")
	if err := trace.WriteFile(good, trace.Record(prog)); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(t.TempDir(), "nope.trc")

	opt := core.MatrixOptions{Size: workloads.Tiny, Protocols: []string{"MESI"}, Workers: 1}
	res, err := core.RunSweepOpt(context.Background(), opt,
		"replay(file="+good+","+missing+")", core.SweepOptions{})
	if err == nil {
		t.Fatal("sweep with a missing trace file ran without error")
	}
	if !strings.Contains(err.Error(), "sweep point replay.file = "+missing) {
		t.Errorf("error %q does not name the failing point", err)
	}
	if res == nil || len(res.Points) != 1 {
		t.Fatalf("partial result = %+v, want the one completed point", res)
	}
	if res.Points[0].Value != good {
		t.Errorf("completed point value %q, want %q", res.Points[0].Value, good)
	}
	if res.Expected != 2 {
		t.Errorf("Expected = %d, want 2", res.Expected)
	}
}

// TestSweepMultiCellPointFailure: a cell failure inside a MULTI-cell point
// must fail the sweep. The pool stops claiming work on the first cell
// error, so the failing point's remaining count never reaches zero and
// pointDone never fires for it — the error used to be visible only
// through that hook, and a two-protocol point's failure was silently
// swallowed (partial result, nil error). The post-run scan of unassembled
// plans is the regression under test, at both worker modes.
func TestSweepMultiCellPointFailure(t *testing.T) {
	prog, err := workloads.ByName("FFT", workloads.Tiny, 16)
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(t.TempDir(), "fft.trc")
	if err := trace.WriteFile(good, trace.Record(prog)); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(t.TempDir(), "nope.trc")

	for _, workers := range []int{1, 2} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opt := core.MatrixOptions{
				Size:      workloads.Tiny,
				Protocols: []string{"MESI", "DeNovo"}, // two cells per point
				Workers:   workers,
			}
			res, err := core.RunSweepOpt(context.Background(), opt,
				"replay(file="+good+","+missing+")", core.SweepOptions{})
			if err == nil {
				t.Fatal("multi-cell point failure returned a nil error (partial result passed off as complete)")
			}
			if !strings.Contains(err.Error(), "sweep point replay.file = "+missing) {
				t.Errorf("error %q does not name the failing point", err)
			}
			if res == nil || len(res.Points) != 1 || res.Points[0].Value != good {
				t.Errorf("partial result = %+v, want exactly the completed %s point", res, good)
			}
		})
	}
}

// TestSweepCacheStoreFailureIsWarning: a cache that cannot persist points
// must not fail the sweep — every point's result is still in hand, so the
// sweep completes with a nil error and the failure surfaces as
// SweepPointStoreFailed progress events (a later resume resimulates).
func TestSweepCacheStoreFailureIsWarning(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	cache, err := core.OpenPointCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the cache directory with a regular file: every Load and
	// Store now fails (ENOTDIR), even when the tests run as root — unlike
	// permission bits, which root ignores.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dir, []byte("not a directory"), 0o644); err != nil {
		t.Fatal(err)
	}

	var storeFailed []core.SweepProgress
	opt := core.MatrixOptions{Size: workloads.Tiny, Protocols: []string{"MESI"}, Workers: 1}
	res, err := core.RunSweepOpt(context.Background(), opt, "hotspot(t=1,2)", core.SweepOptions{
		Cache: cache,
		Progress: func(ev core.SweepProgress) {
			if ev.Status == core.SweepPointStoreFailed {
				storeFailed = append(storeFailed, ev)
			}
		},
	})
	if err != nil {
		t.Fatalf("a fully completed sweep returned an error for a cache store failure: %v", err)
	}
	if res.Expected != 2 || len(res.Points) != 2 {
		t.Fatalf("got %d/%d points, want the complete sweep", len(res.Points), res.Expected)
	}
	if len(storeFailed) != 2 {
		t.Fatalf("got %d SweepPointStoreFailed events, want one per point", len(storeFailed))
	}
	for _, ev := range storeFailed {
		if ev.Err == nil {
			t.Errorf("store-failed event for point %d carries no error", ev.Point)
		}
	}

	// The unpersisted sweep must still match an uncached fresh run.
	fresh, err := core.RunSweepOpt(context.Background(), opt, "hotspot(t=1,2)", core.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Table(), fresh.Table()) {
		t.Error("sweep with a failing cache store differs from an uncached run")
	}
}

// TestSweepProgressPointIdentity pins the sweep-level progress contract in
// serial mode: per point, Started then Done, in sweep order, each event
// carrying the point's index, the sweep total, and the axis value.
func TestSweepProgressPointIdentity(t *testing.T) {
	var events []core.SweepProgress
	opt := core.MatrixOptions{Size: workloads.Tiny, Protocols: []string{"MESI"}, Workers: 1}
	_, err := core.RunSweepOpt(context.Background(), opt, "hotspot(t=1,2)", core.SweepOptions{
		Progress: func(ev core.SweepProgress) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []core.SweepProgress{
		{Point: 0, Total: 2, Axis: "hotspot.t", Value: "1", Status: core.SweepPointStarted},
		{Point: 0, Total: 2, Axis: "hotspot.t", Value: "1", Status: core.SweepPointDone},
		{Point: 1, Total: 2, Axis: "hotspot.t", Value: "2", Status: core.SweepPointStarted},
		{Point: 1, Total: 2, Axis: "hotspot.t", Value: "2", Status: core.SweepPointDone},
	}
	if !reflect.DeepEqual(events, want) {
		t.Errorf("progress events:\ngot  %+v\nwant %+v", events, want)
	}
}

// TestSweepTableStringWidths: every text column's width must come from its
// content. The protocol column was once hardcoded to 18 characters and
// broke alignment for longer composed specs; with computed widths every
// data line of the rendering is the same length.
func TestSweepTableStringWidths(t *testing.T) {
	table := &core.SweepTable{
		Spec:    "protocol=MESI,DValidateL2+DBypL2+FlexL1",
		Axis:    "protocol",
		Columns: []string{"Traffic", "Cycles"},
		Rows: []core.SweepRow{
			{Point: "MESI", Bench: "FFT", Protocol: "MESI", Values: []float64{100, 2000}},
			{Point: "DValidateL2+DBypL2+FlexL1", Bench: "FFT", Protocol: "DValidateL2+DBypL2+FlexL1", Values: []float64{90, 1900}},
		},
	}
	lines := strings.Split(table.String(), "\n")
	width := 0
	for i, line := range lines[1:] { // lines[0] is the title, blank lines separate points
		if line == "" {
			continue
		}
		if width == 0 {
			width = len(line)
		}
		if len(line) != width {
			t.Errorf("line %d is %d chars, want %d:\n%s", i+1, len(line), width, table)
		}
	}
	if got := len("DValidateL2+DBypL2+FlexL1"); width <= got {
		t.Errorf("rendered width %d does not fit the %d-char protocol", width, got)
	}
}

// TestParseSweepLimit: the default cap rejects a 512-point expansion, and
// an explicit limit admits exactly that many points — the cap is
// configurable, not a wall.
func TestParseSweepLimit(t *testing.T) {
	const spec = "vcs=2..1024..2" // 512 points
	if _, err := core.ParseSweep(spec); err == nil {
		t.Error("512-point sweep passed the default cap")
	} else if !strings.Contains(err.Error(), "raise the cap") {
		t.Errorf("cap error %q does not say how to raise the cap", err)
	}
	if _, err := core.ParseSweepLimit(spec, 511); err == nil {
		t.Error("512-point sweep passed a 511-point cap")
	}
	s, err := core.ParseSweepLimit(spec, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != 512 {
		t.Errorf("expanded to %d points, want 512", len(s.Values))
	}
	if s2, err := core.ParseSweepLimit("vcs=2,4", 0); err != nil || len(s2.Values) != 2 {
		t.Errorf("limit 0 must mean the default cap: %v", err)
	}
}

// TestSweepPointFailureIsLoud: a sweep point whose simulation cannot even
// be configured (odd VC count) fails with the point named, not silently.
func TestSweepPointFailureIsLoud(t *testing.T) {
	// vcs=3 is rejected at parse time; force a point failure through a
	// config the parser cannot see: VCDepth works, but an unknown
	// benchmark in the base options only surfaces when the point runs.
	opt := core.MatrixOptions{
		Size:       workloads.Tiny,
		Benchmarks: []string{"FTT"}, // typo: engine rejects it per point
		Protocols:  []string{"MESI"},
	}
	_, err := core.RunSweep(opt, "topology=mesh,ring")
	if err == nil {
		t.Fatal("sweep with an unknown benchmark ran without error")
	}
	if !strings.Contains(err.Error(), "sweep point topology = mesh") {
		t.Errorf("error %q does not name the failing sweep point", err)
	}
}
