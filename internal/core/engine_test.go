package core_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

// TestParallelMatrixMatchesSerial is the engine's core guarantee: the full
// 9-protocol x 6-benchmark cross product at tiny scale produces a Matrix
// deeply equal to the serial (Workers: 1) reference run at any worker
// count, cell by cell and field by field.
func TestParallelMatrixMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full 9x6 matrix twice is slow; run without -short")
	}
	serial, err := core.RunMatrix(core.MatrixOptions{Size: workloads.Tiny, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := core.RunMatrix(core.MatrixOptions{Size: workloads.Tiny, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Benchmarks) != 6 || len(serial.Protocols) != 9 {
		t.Fatalf("matrix shape %dx%d, want 6x9", len(serial.Benchmarks), len(serial.Protocols))
	}
	for _, bench := range serial.Benchmarks {
		for _, proto := range serial.Protocols {
			a, b := serial.Get(bench, proto), parallel.Get(bench, proto)
			if a == nil || b == nil {
				t.Fatalf("%s/%s: missing cell (serial %v, parallel %v)", bench, proto, a != nil, b != nil)
			}
			if a.FlitHops != b.FlitHops {
				t.Errorf("%s/%s: FlitHops diverge", bench, proto)
			}
			if a.Waste != b.Waste {
				t.Errorf("%s/%s: Waste diverges", bench, proto)
			}
			if a.ExecCycles != b.ExecCycles {
				t.Errorf("%s/%s: ExecCycles %d vs %d", bench, proto, a.ExecCycles, b.ExecCycles)
			}
			if a.Time != b.Time {
				t.Errorf("%s/%s: TimeBreakdown diverges", bench, proto)
			}
			if a.WasteShare != b.WasteShare {
				t.Errorf("%s/%s: WasteShare %v vs %v", bench, proto, a.WasteShare, b.WasteShare)
			}
		}
	}
}

// The parallel engine must fire Progress once per cell, like the serial
// loop did.
func TestParallelProgressCount(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]int{}
	_, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Protocols:  []string{"MESI", "DeNovo"},
		Benchmarks: []string{"LU", "FFT"},
		Workers:    4,
		Progress: func(b, p string) {
			mu.Lock()
			seen[b+"/"+p]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 {
		t.Fatalf("progress saw %d distinct cells, want 4: %v", len(seen), seen)
	}
	for cell, n := range seen {
		if n != 1 {
			t.Fatalf("cell %s announced %d times", cell, n)
		}
	}
}

func TestRunMatrixContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, err := core.RunMatrixContext(ctx, core.MatrixOptions{
			Size:       workloads.Tiny,
			Protocols:  []string{"MESI"},
			Benchmarks: []string{"LU"},
			Workers:    workers,
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// Topologies thread end-to-end: the same workload/protocol cell produces
// valid results on every topology, shorter-routed networks carry fewer
// flit-hops, and the matrix records which topology it ran on.
func TestMatrixTopologies(t *testing.T) {
	totals := map[string]float64{}
	for _, topo := range []string{"mesh", "ring", "torus"} {
		m, err := core.RunMatrix(core.MatrixOptions{
			Size:       workloads.Tiny,
			Protocols:  []string{"MESI"},
			Benchmarks: []string{"FFT"},
			Topology:   topo,
		})
		if err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
		if m.Topology != topo {
			t.Fatalf("matrix topology %q, want %q", m.Topology, topo)
		}
		res := m.Get("FFT", "MESI")
		if res == nil || res.Total() <= 0 || res.ExecCycles <= 0 {
			t.Fatalf("%s: empty result", topo)
		}
		totals[topo] = res.Total()
	}
	// A 4x4 torus averages 2.0 hops vs the mesh's 2.5 and the ring's 4.0,
	// so traffic must be ordered torus < mesh < ring.
	if !(totals["torus"] < totals["mesh"] && totals["mesh"] < totals["ring"]) {
		t.Fatalf("flit-hop totals not ordered torus < mesh < ring: %v", totals)
	}
}

// The engine's parallel-vs-serial guarantee extends to the vc router: the
// same cells at Workers 1 and 4 are deeply equal, including the new
// congestion telemetry, and the matrix records the router it ran.
func TestVCMatrixMatchesSerial(t *testing.T) {
	run := func(workers int) *core.Matrix {
		m, err := core.RunMatrix(core.MatrixOptions{
			Size:       workloads.Tiny,
			Protocols:  []string{"MESI", "DBypFull"},
			Benchmarks: []string{"FFT"},
			Router:     "vc",
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial, parallel := run(1), run(4)
	if serial.Router != "vc" || parallel.Router != "vc" {
		t.Fatalf("matrix router %q/%q, want vc", serial.Router, parallel.Router)
	}
	for _, proto := range serial.Protocols {
		a, b := serial.Get("FFT", proto), parallel.Get("FFT", proto)
		if a == nil || b == nil {
			t.Fatalf("%s: missing cell", proto)
		}
		if a.FlitHops != b.FlitHops || a.ExecCycles != b.ExecCycles ||
			a.Waste != b.Waste || a.Time != b.Time || a.Net != b.Net {
			t.Fatalf("%s: vc cell diverges between serial and parallel runs", proto)
		}
		if a.Net.Router != "vc" {
			t.Fatalf("%s: cell ran router %q", proto, a.Net.Router)
		}
		if a.Net.PeakVCOccupancy <= 0 {
			t.Fatalf("%s: vc run recorded no VC occupancy", proto)
		}
	}
}

// End to end, the cycle-level router makes the same workload see strictly
// higher mean packet latency than the ideal reservation model: credit
// stalls and allocation cycles are no longer invisible.
func TestVCLatencyAboveIdealEndToEnd(t *testing.T) {
	prog := workloads.MustByName("FFT", workloads.Tiny, 16)
	cfg := memsys.Default().Scaled(workloads.Tiny.ScaleDiv())
	ideal, err := core.RunOne(cfg, "MESI", prog)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Router = "vc"
	vc, err := core.RunOne(cfg, "MESI", prog)
	if err != nil {
		t.Fatal(err)
	}
	if !(vc.Net.LatencyMean > ideal.Net.LatencyMean) {
		t.Fatalf("vc mean latency %.2f not above ideal %.2f",
			vc.Net.LatencyMean, ideal.Net.LatencyMean)
	}
	if vc.ExecCycles <= ideal.ExecCycles {
		t.Fatalf("vc execution %d not slower than ideal %d", vc.ExecCycles, ideal.ExecCycles)
	}
}

func TestBadRouterRejected(t *testing.T) {
	_, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Protocols:  []string{"MESI"},
		Benchmarks: []string{"LU"},
		Router:     "bufferless",
	})
	if err == nil {
		t.Fatal("unknown router accepted")
	}
}

func TestBadTopologyRejected(t *testing.T) {
	_, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Protocols:  []string{"MESI"},
		Benchmarks: []string{"LU"},
		Topology:   "moebius",
	})
	if err == nil {
		t.Fatal("unknown topology accepted")
	}
}
