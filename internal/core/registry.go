package core

import (
	"fmt"
	"strings"

	"repro/internal/denovo"
	"repro/internal/memsys"
	"repro/internal/mesi"
)

// The composable protocol registry. The paper evaluates nine fixed
// configurations (§3.2/§3.3), each a bundle of orthogonal waste-eliminating
// optimizations stacked in one order. The registry decomposes the bundles:
// a protocol spec is a base (a family root or any canonical name) plus
// zero or more "+Option" suffixes, so the ladder's steps become reachable
// in any combination — the ablation axes the paper never ran.
//
//	MESI                  the paper's baseline
//	MESI+MemL1            == MMemL1, spelled compositionally
//	DeNovo+BypL2          response bypass without the Flex/ValidateL2 rungs
//	DFlexL1+BypFull       Bloom-guarded bypass on the bare Flex protocol
//
// The nine paper names remain canonical aliases and resolve bit-identically
// to their hardwired predecessors (pinned by the golden suite).

// OptionInfo describes one composable optimization token.
type OptionInfo struct {
	Token    string
	Families []string // family roots the token applies to
	Desc     string
}

// optionDef wires a token to its per-family appliers (nil = inapplicable).
type optionDef struct {
	token     string
	desc      string
	applyMESI func(*mesi.Options)
	applyDNV  func(*denovo.Options)
}

// optionDefs is the registry's option vocabulary, in canonical order.
// BypFull subsumes BypL2 (the Bloom-guarded request bypass only triggers
// on response-bypassed regions), so it sets both flags.
var optionDefs = []optionDef{
	{token: "MemL1", desc: "memory controller sends data straight to the requesting L1",
		applyMESI: func(o *mesi.Options) { o.MemToL1 = true },
		applyDNV:  func(o *denovo.Options) { o.MemToL1 = true }},
	{token: "FlexL1", desc: "communication-region (Flex) granularity for on-chip responses",
		applyDNV: func(o *denovo.Options) { o.FlexL1 = true }},
	{token: "ValL2", desc: "L2 write-validate + dirty-words-only L2->memory writebacks",
		applyDNV: func(o *denovo.Options) { o.ValidateL2 = true }},
	{token: "FlexL2", desc: "Flex applied at the memory controller (dropped words are Excess)",
		applyDNV: func(o *denovo.Options) { o.FlexL2 = true }},
	{token: "BypL2", desc: "L2 response bypass for annotated regions",
		applyDNV: func(o *denovo.Options) { o.BypassResp = true }},
	{token: "BypFull", desc: "Bloom-filter-guarded L2 request bypass (implies BypL2)",
		applyDNV: func(o *denovo.Options) { o.BypassResp = true; o.BypassReq = true }},
	{token: "BypHW", desc: "hardware reuse predictor replaces software bypass annotations",
		applyDNV: func(o *denovo.Options) { o.PredictBypass = true }},
}

func optionByToken(token string) *optionDef {
	for i := range optionDefs {
		if optionDefs[i].token == token {
			return &optionDefs[i]
		}
	}
	return nil
}

// OptionCatalog lists the composable option tokens with the families they
// apply to.
func OptionCatalog() []OptionInfo {
	out := make([]OptionInfo, 0, len(optionDefs))
	for _, d := range optionDefs {
		info := OptionInfo{Token: d.token, Desc: d.desc}
		if d.applyMESI != nil {
			info.Families = append(info.Families, "MESI")
		}
		if d.applyDNV != nil {
			info.Families = append(info.Families, "DeNovo")
		}
		out = append(out, info)
	}
	return out
}

// Variant is one resolved protocol configuration: a spec string, the
// family it instantiates, and the full option set in canonical order.
type Variant struct {
	Spec      string
	Family    string
	Canonical bool // one of the paper's nine names
	Options   []string

	mesiOpt *mesi.Options
	dnvOpt  *denovo.Options
}

// New instantiates the variant's protocol engine on an environment.
func (v *Variant) New(env *memsys.Env) memsys.Protocol {
	if v.mesiOpt != nil {
		opt := *v.mesiOpt
		opt.Name = v.Spec
		return mesi.New(env, opt)
	}
	opt := *v.dnvOpt
	opt.Name = v.Spec
	return denovo.New(env, opt)
}

// dnvOptionTokens lists the canonical tokens a DeNovo option set implies.
func dnvOptionTokens(o denovo.Options) []string {
	var t []string
	if o.MemToL1 {
		t = append(t, "MemL1")
	}
	if o.FlexL1 {
		t = append(t, "FlexL1")
	}
	if o.ValidateL2 {
		t = append(t, "ValL2")
	}
	if o.FlexL2 {
		t = append(t, "FlexL2")
	}
	if o.BypassReq {
		t = append(t, "BypFull")
	} else if o.BypassResp {
		t = append(t, "BypL2")
	}
	if o.PredictBypass {
		t = append(t, "BypHW")
	}
	return t
}

// baseVariant resolves a spec's base token: a family root ("MESI",
// "DeNovo") or any canonical/extension alias.
func baseVariant(base string) (*Variant, bool) {
	switch base {
	case "MESI":
		return &Variant{Spec: base, Family: "MESI", Canonical: true, mesiOpt: &mesi.Options{}}, true
	case "MMemL1":
		return &Variant{Spec: base, Family: "MESI", Canonical: true,
			Options: []string{"MemL1"}, mesiOpt: &mesi.Options{MemToL1: true}}, true
	}
	if opt, ok := denovo.VariantByName(base); ok {
		ext := base == "DBypHW"
		v := &Variant{Spec: base, Family: "DeNovo", Canonical: !ext,
			Options: dnvOptionTokens(opt)}
		o := opt
		o.Name = ""
		v.dnvOpt = &o
		return v, true
	}
	return nil, false
}

// ParseProtocol resolves a protocol spec — a base name optionally followed
// by "+Option" tokens — into a Variant. The base may be a family root
// (MESI, DeNovo), one of the paper's nine canonical names, or the DBypHW
// extension; options compose on top.
func ParseProtocol(spec string) (*Variant, error) {
	parts := strings.Split(strings.TrimSpace(spec), "+")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	v, ok := baseVariant(parts[0])
	if !ok {
		return nil, fmt.Errorf("core: unknown protocol %q (base %q; known bases: %s)",
			spec, parts[0], strings.Join(append(ProtocolNames(), "DBypHW"), ", "))
	}
	for _, token := range parts[1:] {
		d := optionByToken(token)
		if d == nil {
			var all []string
			for _, o := range optionDefs {
				all = append(all, o.token)
			}
			return nil, fmt.Errorf("core: protocol %q: unknown option %q (options: %s)",
				spec, token, strings.Join(all, ", "))
		}
		switch {
		case v.mesiOpt != nil:
			if d.applyMESI == nil {
				return nil, fmt.Errorf("core: protocol %q: option %q does not apply to the MESI family", spec, token)
			}
			d.applyMESI(v.mesiOpt)
		default:
			if d.applyDNV == nil {
				return nil, fmt.Errorf("core: protocol %q: option %q does not apply to the DeNovo family", spec, token)
			}
			d.applyDNV(v.dnvOpt)
		}
	}
	if len(parts) > 1 {
		// The spec is rebuilt from the trimmed parts so whitespace
		// spellings of one composition share a matrix key.
		v.Spec = strings.Join(parts, "+")
		v.Canonical = false
		if v.mesiOpt != nil {
			v.Options = nil
			if v.mesiOpt.MemToL1 {
				v.Options = []string{"MemL1"}
			}
		} else {
			v.Options = dnvOptionTokens(*v.dnvOpt)
		}
	}
	return v, nil
}

// ComposedVariants returns the registered compositions beyond the paper's
// nine configurations (and beyond the DBypHW predictor extension): rungs
// of the ladder recombined as the orthogonal knobs they are. Each runs
// end-to-end under the functional oracle like any canonical name.
func ComposedVariants() []string {
	return []string{
		// Response bypass on bare DeNovo: isolates the L2-pollution term
		// from the Flex and write-validate terms below it in the ladder.
		"DeNovo+BypL2",
		// Bloom-guarded request bypass on the bare Flex protocol: how much
		// of DBypFull's win survives without ValidateL2/MemL1/FlexL2?
		"DFlexL1+BypFull",
		// Write-validate L2 with comm-region responses but no MC changes:
		// the largest on-chip-only stack.
		"DValidateL2+FlexL1",
		// The MMemL1 ladder rung spelled compositionally (same engine;
		// distinct spec so it can sit beside MMemL1 in one matrix).
		"MESI+MemL1",
	}
}

// RegistryInventory resolves every registered configuration: the paper's
// nine canonical names in figure order, the DBypHW predictor extension,
// then the composed variants.
func RegistryInventory() []*Variant {
	specs := append([]string{}, ProtocolNames()...)
	specs = append(specs, "DBypHW")
	specs = append(specs, ComposedVariants()...)
	out := make([]*Variant, 0, len(specs))
	for _, spec := range specs {
		v, err := ParseProtocol(spec)
		if err != nil {
			panic(err) // registry self-consistency: all registered specs parse
		}
		out = append(out, v)
	}
	return out
}

// ScenarioCount returns the size of the scenario space the registry and
// engine expose: registered protocols x benchmarks x topologies x router
// models x mesh presets (the mesh axis accepts arbitrary WxH, so the
// preset count is the enumerable floor, not a ceiling).
func ScenarioCount(benchmarks, topologies, routers, meshes int) int {
	return len(RegistryInventory()) * benchmarks * topologies * routers * meshes
}
