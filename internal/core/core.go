package core
