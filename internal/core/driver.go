// Package core assembles the full simulated system and drives it: in-order
// cores executing workload op streams against a coherence protocol over
// the mesh/DRAM substrate, with barrier synchronization, the Figure 5.2
// execution-time breakdown, and a functional oracle that checks every load
// returns the value of its unique last writer (the data-race-free
// semantics both protocols must preserve).
//
// It also hosts the protocol registry (the nine configurations of §3.2 and
// §3.3) and the experiment harness that regenerates the paper's figures.
package core

import (
	"fmt"

	"repro/internal/memsys"
)

// Runner executes one program under one protocol on one Env.
type Runner struct {
	env   *memsys.Env
	proto memsys.Protocol
	prog  memsys.Program

	Times []memsys.TimeBreakdown // per-core Figure 5.2 accounting

	oracle     []uint32
	valCounter uint32
	oracleErr  error

	// ViolationAddr is the address of the first oracle violation, if any
	// (diagnostics). OnViolation, when set, fires at violation time so
	// tests can snapshot protocol state before it changes.
	ViolationAddr uint32
	OnViolation   func(addr uint32)

	phase        int
	arrived      int
	measureStart int64
	execCycles   int64
	finished     bool

	cores []coreState
}

type coreState struct {
	ops          []memsys.Op
	pc           int
	barrierEnter int64
	stallStart   int64
	storeStalled bool
	storeAddr    uint32
	storeVal     uint32
	active       bool
}

// NewRunner wires a program and protocol onto an environment. The
// protocol must already be registered on env's mesh.
func NewRunner(env *memsys.Env, proto memsys.Protocol, prog memsys.Program) *Runner {
	r := &Runner{
		env:    env,
		proto:  proto,
		prog:   prog,
		Times:  make([]memsys.TimeBreakdown, prog.Threads()),
		oracle: make([]uint32, len(env.Mem)),
		cores:  make([]coreState, prog.Threads()),
	}
	for c := 0; c < prog.Threads(); c++ {
		c := c
		proto.SetStoreUnstall(c, func() { r.retryStore(c) })
	}
	return r
}

// MaxSteps bounds a Run as a livelock watchdog (0 = default bound).
var MaxSteps uint64 = 2_000_000_000

// Run executes every phase to completion. It returns an error if the
// simulation deadlocks, livelocks, or the functional oracle detects a
// wrong value.
func (r *Runner) Run() error {
	r.beginPhase(0)
	for !r.finished {
		if r.env.K.RunLimit(1_000_000) == 0 {
			break // queue drained
		}
		if r.env.K.Steps() > MaxSteps {
			return fmt.Errorf("core: livelock in %s/%s at phase %d (cycle %d, %d events, %d clamped)",
				r.proto.Name(), r.prog.Name(), r.phase, r.env.K.Now(), r.env.K.Steps(), r.env.K.Clamped())
		}
	}
	if !r.finished {
		return fmt.Errorf("core: deadlock in %s/%s at phase %d (cycle %d, %d clamped)",
			r.proto.Name(), r.prog.Name(), r.phase, r.env.K.Now(), r.env.K.Clamped())
	}
	r.env.K.Run() // drain trailing protocol events (acks, writebacks)
	return r.oracleErr
}

// ExecCycles returns the measured-region execution time.
func (r *Runner) ExecCycles() int64 { return r.execCycles }

func (r *Runner) beginPhase(p int) {
	r.phase = p
	r.arrived = 0
	if p == r.prog.WarmupPhases() {
		r.env.StartMeasurement()
		r.measureStart = r.env.K.Now()
		for i := range r.Times {
			r.Times[i] = memsys.TimeBreakdown{}
		}
	}
	for c := 0; c < r.prog.Threads(); c++ {
		cs := &r.cores[c]
		cs.ops = cs.ops[:0]
		r.prog.EmitOps(p, c, func(o memsys.Op) { cs.ops = append(cs.ops, o) })
		cs.pc = 0
		cs.active = true
		c := c
		r.env.K.After(0, func() { r.step(c) })
	}
}

// step runs ops for a core until it blocks (load, compute, store-buffer
// full) or reaches the phase barrier.
func (r *Runner) step(c int) {
	cs := &r.cores[c]
	for {
		if cs.pc >= len(cs.ops) {
			r.enterBarrier(c)
			return
		}
		op := cs.ops[cs.pc]
		cs.pc++
		switch op.Kind {
		case memsys.OpCompute:
			r.Times[c].Busy += int64(op.Cycles)
			r.env.K.After(int64(op.Cycles), func() { r.step(c) })
			return
		case memsys.OpLoad:
			t0 := r.env.K.Now()
			expect := r.oracle[op.Addr>>2]
			r.proto.Load(c, op.Addr, func(val uint32, s memsys.Sample) {
				if val != expect && r.oracleErr == nil {
					r.oracleErr = fmt.Errorf(
						"core: oracle violation %s/%s: core %d load %#x = %d, want %d (phase %d, cycle %d)",
						r.proto.Name(), r.prog.Name(), c, op.Addr, val, expect, r.phase, r.env.K.Now())
					r.ViolationAddr = op.Addr
					if r.OnViolation != nil {
						r.OnViolation(op.Addr)
					}
				}
				stall := r.env.K.Now() - t0
				if s.Point == memsys.PointL1 {
					r.Times[c].Busy += stall // pipelined L1 hit
				} else {
					r.Times[c].AddStall(stall, s)
				}
				r.step(c)
			})
			return
		case memsys.OpStore:
			r.valCounter++
			val := r.valCounter
			r.oracle[op.Addr>>2] = val
			if !r.proto.Store(c, op.Addr, val) {
				cs.storeStalled = true
				cs.storeAddr, cs.storeVal = op.Addr, val
				cs.stallStart = r.env.K.Now()
				return
			}
		}
	}
}

// retryStore resumes a core blocked on a full store buffer.
func (r *Runner) retryStore(c int) {
	cs := &r.cores[c]
	if !cs.storeStalled {
		return
	}
	if !r.proto.Store(c, cs.storeAddr, cs.storeVal) {
		return // still full; the next unstall will retry
	}
	r.Times[c].OnChip += r.env.K.Now() - cs.stallStart
	cs.storeStalled = false
	r.step(c)
}

func (r *Runner) enterBarrier(c int) {
	cs := &r.cores[c]
	cs.active = false
	cs.barrierEnter = r.env.K.Now()
	r.proto.Drain(c, func() { r.coreArrived(c) })
}

func (r *Runner) coreArrived(c int) {
	r.arrived++
	if r.arrived < r.prog.Threads() {
		return
	}
	// Barrier release: everyone pays sync time up to now.
	now := r.env.K.Now()
	for i := range r.cores {
		r.Times[i].Sync += now - r.cores[i].barrierEnter
	}
	r.proto.AtBarrier(r.prog.WrittenRegions(r.phase))
	next := r.phase + 1
	if next >= r.prog.Phases() {
		r.finished = true
		r.execCycles = now - r.measureStart
		r.env.Prof.Finish()
		return
	}
	r.beginPhase(next)
}
