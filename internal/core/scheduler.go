package core

// The two-level scheduler. A sweep is a list of points; a point is a batch
// of matrix cells; every cell of every point feeds one shared worker pool.
// Workers claim (point, cell) jobs from a single cursor in point-major
// order, so early points finish (and persist, and stream to callers)
// first, while idle workers spill into later points instead of waiting at
// a per-point barrier. Each cell is an independent, fully deterministic
// simulation, so the schedule cannot change any result — only wall-clock
// time — and results are always assembled in point-major matrix order,
// which keeps the assembled output bit-identical at every worker count.
//
// The same pool runs a single matrix (RunMatrixContext: one plan) and a
// sweep (RunSweepOpt: one plan per non-cached point).

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/memsys"
	"repro/internal/workloads"
)

// matrixPlan is one fully resolved simulation batch — a matrix, or one
// sweep point: normalized options, the validated system config, the cell
// list, and per-cell result slots. Workload programs are built lazily on
// the point's first claimed cell so a 10,000-point sweep does not hold
// 10,000 programs alive up front.
type matrixPlan struct {
	opt        MatrixOptions
	cfg        memsys.Config
	benchSpecs []*workloads.Spec // non-nil when opt.Benchmarks was explicit
	cells      []matrixCell

	buildOnce sync.Once
	buildErr  error
	progs     []memsys.Program

	results   []*Result
	errs      []error
	remaining atomic.Int64 // cells not yet finished; 0 = point complete
	announced bool         // first cell claimed (guarded by the pool's progress mutex)
}

// planMatrix validates and normalizes one matrix configuration without
// running (or building) anything: protocol and workload specs are resolved
// through their registries so spelling variants of one configuration share
// a key and unknown names fail before any simulation, and the system
// config is validated with the axis overrides applied.
func planMatrix(opt MatrixOptions) (*matrixPlan, error) {
	if opt.Threads == 0 {
		opt.Threads = 16
	}
	if opt.Protocols == nil {
		opt.Protocols = ProtocolNames()
	} else {
		// Normalize specs up front so whitespace spellings of one
		// composition share a matrix key (and unknown specs fail before
		// any cell runs). Two spellings of one configuration would
		// simulate the same cells twice and print duplicate figure rows,
		// so duplicates are an error, not a silent double-run.
		normalized := make([]string, len(opt.Protocols))
		seen := make(map[string]string, len(opt.Protocols))
		for i, spec := range opt.Protocols {
			v, err := ParseProtocol(spec)
			if err != nil {
				return nil, err
			}
			if prev, dup := seen[v.Spec]; dup {
				return nil, fmt.Errorf("core: protocols %q and %q are the same configuration %q", prev, spec, v.Spec)
			}
			seen[v.Spec] = spec
			normalized[i] = v.Spec
		}
		opt.Protocols = normalized
	}
	var benchSpecs []*workloads.Spec
	if opt.Benchmarks == nil {
		opt.Benchmarks = workloads.Names()
	} else {
		// Normalize workload specs like protocol specs: spelling variants
		// of one configuration share a matrix key, and unknown benchmarks
		// fail loudly before any cell runs (the old path silently skipped
		// them via a nil program). Duplicate canonical specs are an error
		// for the same reason as duplicate protocols.
		normalized := make([]string, len(opt.Benchmarks))
		benchSpecs = make([]*workloads.Spec, len(opt.Benchmarks))
		seen := make(map[string]string, len(opt.Benchmarks))
		for i, spec := range opt.Benchmarks {
			s, err := workloads.ParseSpec(spec)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			if prev, dup := seen[s.Canonical]; dup {
				return nil, fmt.Errorf("core: benchmarks %q and %q are the same workload %q", prev, spec, s.Canonical)
			}
			seen[s.Canonical] = spec
			normalized[i] = s.Canonical
			benchSpecs[i] = s
		}
		opt.Benchmarks = normalized
	}

	cfg := memsys.Default().Scaled(opt.Size.ScaleDiv())
	if opt.MeshWidth != 0 || opt.MeshHeight != 0 {
		// Both dimensions travel together: a half-set pair would silently
		// simulate a shape the caller never asked for.
		if opt.MeshWidth < 1 || opt.MeshHeight < 1 {
			return nil, fmt.Errorf("core: mesh dimensions %dx%d: set both MeshWidth and MeshHeight to >= 1", opt.MeshWidth, opt.MeshHeight)
		}
		if opt.MeshWidth*opt.MeshHeight < 2 {
			return nil, fmt.Errorf("core: mesh dimensions %dx%d: a 1-tile network has no links; use at least 2 tiles", opt.MeshWidth, opt.MeshHeight)
		}
		cfg = cfg.WithMesh(opt.MeshWidth, opt.MeshHeight)
	}
	if opt.Threads > cfg.Tiles {
		return nil, fmt.Errorf("core: threads %d > tiles %d (%dx%d mesh); cores map one-per-tile, so shrink Threads/-threads or grow the mesh",
			opt.Threads, cfg.Tiles, cfg.MeshWidth, cfg.MeshHeight)
	}
	if opt.Topology != "" {
		cfg.Topology = opt.Topology
	}
	if opt.Router != "" {
		cfg.Router = opt.Router
	}
	if opt.VCs != 0 {
		cfg.VCs = opt.VCs
	}
	if opt.VCDepth != 0 {
		cfg.VCDepth = opt.VCDepth
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	cells := make([]matrixCell, 0, len(opt.Benchmarks)*len(opt.Protocols))
	for bi := range opt.Benchmarks {
		for pi := range opt.Protocols {
			cells = append(cells, matrixCell{bi, pi})
		}
	}
	p := &matrixPlan{
		opt:        opt,
		cfg:        cfg,
		benchSpecs: benchSpecs,
		cells:      cells,
		results:    make([]*Result, len(cells)),
		errs:       make([]error, len(cells)),
	}
	p.remaining.Store(int64(len(cells)))
	return p, nil
}

// build constructs each workload program once per benchmark, shared across
// the plan's protocol cells: EmitOps is a pure function of (phase, thread)
// over state frozen at construction, so concurrent readers are safe. It
// runs on the first claimed cell (any worker) and is idempotent.
func (p *matrixPlan) build() error {
	p.buildOnce.Do(func() {
		progs := make([]memsys.Program, len(p.opt.Benchmarks))
		for i, bench := range p.opt.Benchmarks {
			var err error
			if p.benchSpecs != nil {
				progs[i], err = p.benchSpecs[i].Build(p.opt.Size, p.opt.Threads)
			} else {
				progs[i], err = workloads.ByName(bench, p.opt.Size, p.opt.Threads)
			}
			if err != nil {
				p.buildErr = fmt.Errorf("core: %w", err)
				return
			}
		}
		p.progs = progs
	})
	return p.buildErr
}

// runCell simulates one cell into its result slot; errors land in the
// matching error slot so assemble can report the first one in matrix order.
func (p *matrixPlan) runCell(i int) {
	if err := p.build(); err != nil {
		p.errs[i] = err
		return
	}
	c := p.cells[i]
	res, err := RunOne(p.cfg, p.opt.Protocols[c.proto], p.progs[c.bench])
	if err != nil {
		p.errs[i] = fmt.Errorf("core: %s/%s: %w",
			p.opt.Protocols[c.proto], p.opt.Benchmarks[c.bench], err)
		return
	}
	p.results[i] = res
}

// assemble builds the Matrix from the plan's completed cells, or returns
// the first cell error in matrix order (deterministically, whatever the
// schedule was).
func (p *matrixPlan) assemble() (*Matrix, error) {
	for _, err := range p.errs {
		if err != nil {
			return nil, err
		}
	}
	m := &Matrix{
		Size:       p.opt.Size,
		Topology:   p.cfg.Topology,
		Router:     p.cfg.Router,
		Benchmarks: p.opt.Benchmarks,
		Protocols:  p.opt.Protocols,
		Results:    make(map[string]map[string]*Result, len(p.opt.Benchmarks)),
	}
	for i, c := range p.cells {
		bench := p.opt.Benchmarks[c.bench]
		row := m.Results[bench]
		if row == nil {
			row = make(map[string]*Result, len(p.opt.Protocols))
			m.Results[bench] = row
		}
		row[p.opt.Protocols[c.proto]] = p.results[i]
	}
	return m, nil
}

// schedJob indexes one cell of one plan in the shared pool's claim order.
type schedJob struct{ point, cell int }

// poolHooks are the scheduler's observation points. cellStarted and
// pointStarted fire under one mutex, in claim order (pointStarted before
// the point's first cellStarted); pointDone fires exactly once per
// completed point, on whichever worker finished its last cell.
type poolHooks struct {
	cellStarted  func(p *matrixPlan, cell int)
	pointStarted func(point int)
	pointDone    func(point int, p *matrixPlan)
}

// runPlans drives every cell of every plan through one shared worker pool.
// workers <= 0 means one per available CPU; workers == 1 is the serial
// reference mode, running jobs in point-major order on the calling
// goroutine. The first cell error stops the pool from claiming new work
// (in-flight cells finish; their points may still complete); cancelling
// ctx does the same and is reported as the returned error. Per-point
// success or failure is read off each plan afterwards.
func runPlans(ctx context.Context, plans []*matrixPlan, workers int, hooks poolHooks) error {
	var jobs []schedJob
	for pi, p := range plans {
		for ci := range p.cells {
			jobs = append(jobs, schedJob{pi, ci})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		failed atomic.Bool // a cell errored: stop claiming new work
		progMu sync.Mutex  // serializes the started hooks
	)
	announce := func(j schedJob) {
		if hooks.pointStarted == nil && hooks.cellStarted == nil {
			return
		}
		p := plans[j.point]
		progMu.Lock()
		if !p.announced {
			p.announced = true
			if hooks.pointStarted != nil {
				hooks.pointStarted(j.point)
			}
		}
		if hooks.cellStarted != nil {
			hooks.cellStarted(p, j.cell)
		}
		progMu.Unlock()
	}
	runJob := func(j schedJob) {
		p := plans[j.point]
		p.runCell(j.cell)
		if p.errs[j.cell] != nil {
			failed.Store(true)
		}
		if p.remaining.Add(-1) == 0 && hooks.pointDone != nil {
			hooks.pointDone(j.point, p)
		}
	}

	if workers <= 1 {
		// Serial reference mode: jobs run in point-major order on the
		// calling goroutine, exactly like the original nested loops.
		for _, j := range jobs {
			if err := ctx.Err(); err != nil {
				return err
			}
			if failed.Load() {
				break
			}
			announce(j)
			runJob(j)
		}
		return ctx.Err()
	}

	var (
		cursor atomic.Int64 // next job to claim
		wg     sync.WaitGroup
	)
	cursor.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1))
				if i >= len(jobs) || failed.Load() || ctx.Err() != nil {
					return
				}
				announce(jobs[i])
				runJob(jobs[i])
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
