package core_test

// The point-cache correctness suite: content addresses are distinct for
// distinct canonical configurations and identical across spellings of one
// configuration, cache hits are bit-identical to fresh simulation, and
// corrupt entries fail loudly, fall back to simulation, and heal.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// cacheSweepOptions is the tiny two-point sweep the cache tests run: one
// benchmark per point, one protocol, two cells total.
func cacheSweepOptions() (core.MatrixOptions, string) {
	return core.MatrixOptions{Size: workloads.Tiny, Protocols: []string{"MESI"}}, "hotspot(t=1,2)"
}

// runCachedSweep runs the sweep against dir's cache, collecting the
// sweep-level progress statuses.
func runCachedSweep(t *testing.T, dir string) (*core.SweepResult, []core.SweepPointStatus) {
	t.Helper()
	cache, err := core.OpenPointCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var statuses []core.SweepPointStatus
	opt, spec := cacheSweepOptions()
	res, err := core.RunSweepOpt(context.Background(), opt, spec, core.SweepOptions{
		Cache:    cache,
		Progress: func(ev core.SweepProgress) { statuses = append(statuses, ev.Status) },
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, statuses
}

func countStatus(statuses []core.SweepPointStatus, want core.SweepPointStatus) int {
	n := 0
	for _, s := range statuses {
		if s == want {
			n++
		}
	}
	return n
}

// TestPointKeyDistinctByConstruction: every axis of the configuration
// participates in the preimage, so distinct canonical configurations get
// distinct preimages (and therefore distinct keys), while spelling
// variants of one configuration collide on the same key because the
// registries normalize them before hashing.
func TestPointKeyDistinctByConstruction(t *testing.T) {
	base := core.MatrixOptions{Size: workloads.Tiny, Benchmarks: []string{"FFT"}, Protocols: []string{"MESI"}}
	variants := []core.MatrixOptions{
		base,
		{Size: workloads.Small, Benchmarks: []string{"FFT"}, Protocols: []string{"MESI"}},
		{Size: workloads.Tiny, Benchmarks: []string{"LU"}, Protocols: []string{"MESI"}},
		{Size: workloads.Tiny, Benchmarks: []string{"FFT"}, Protocols: []string{"DeNovo"}},
		{Size: workloads.Tiny, Benchmarks: []string{"FFT"}, Protocols: []string{"MESI"}, Topology: "ring"},
		{Size: workloads.Tiny, Benchmarks: []string{"FFT"}, Protocols: []string{"MESI"}, Router: "vc"},
		{Size: workloads.Tiny, Benchmarks: []string{"FFT"}, Protocols: []string{"MESI"}, Router: "vc", VCs: 8},
		{Size: workloads.Tiny, Benchmarks: []string{"FFT"}, Protocols: []string{"MESI"}, Router: "vc", VCDepth: 7},
		{Size: workloads.Tiny, Benchmarks: []string{"FFT"}, Protocols: []string{"MESI"}, Threads: 8},
		{Size: workloads.Tiny, Benchmarks: []string{"FFT", "LU"}, Protocols: []string{"MESI"}},
		// A spec containing commas must not collide with a spec list —
		// the preimage frames each spec, it does not comma-join them.
		{Size: workloads.Tiny, Benchmarks: []string{"hotspot(t=2,p=0.2)"}, Protocols: []string{"MESI"}},
		{Size: workloads.Tiny, Benchmarks: []string{"hotspot(t=2)", "uniform(p=0.2)"}, Protocols: []string{"MESI"}},
	}
	seen := map[string]int{}
	pre := map[string]int{}
	for i, opt := range variants {
		key, err := core.PointKeyFor(opt)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[key.Hash]; dup {
			t.Errorf("variants %d and %d share key %s", prev, i, key.Hash)
		}
		if prev, dup := pre[key.Preimage]; dup {
			t.Errorf("variants %d and %d share a preimage", prev, i)
		}
		seen[key.Hash], pre[key.Preimage] = i, i
	}

	// Spellings of one configuration normalize to one key: whitespace in
	// specs, default parameter values spelled out, Workers/Progress
	// (which cannot change results) ignored.
	a, err := core.PointKeyFor(base)
	if err != nil {
		t.Fatal(err)
	}
	equivalents := []core.MatrixOptions{
		{Size: workloads.Tiny, Benchmarks: []string{" FFT "}, Protocols: []string{"MESI"}, Workers: 7},
		{Size: workloads.Tiny, Benchmarks: []string{"FFT"}, Protocols: []string{"MESI"}, Threads: 16}, // the default
	}
	for i, opt := range equivalents {
		b, err := core.PointKeyFor(opt)
		if err != nil {
			t.Fatalf("equivalent %d: %v", i, err)
		}
		if b.Hash != a.Hash || b.Preimage != a.Preimage {
			t.Errorf("equivalent %d: key diverged from the canonical spelling", i)
		}
	}
	w1, err := core.PointKeyFor(core.MatrixOptions{Size: workloads.Tiny, Benchmarks: []string{"hotspot( t = 2 )"}, Protocols: []string{"MESI + MemL1"}})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := core.PointKeyFor(core.MatrixOptions{Size: workloads.Tiny, Benchmarks: []string{"hotspot(t=2)"}, Protocols: []string{"MESI+MemL1"}})
	if err != nil {
		t.Fatal(err)
	}
	if w1.Hash != w2.Hash {
		t.Error("whitespace spellings of one configuration produced different keys")
	}
}

// TestPointKeyReplayUncacheable: a trace replay's results depend on file
// contents the configuration hash cannot see, so such points must refuse
// a key rather than serve a stale matrix after the file changes.
func TestPointKeyReplayUncacheable(t *testing.T) {
	_, err := core.PointKeyFor(core.MatrixOptions{
		Size:       workloads.Tiny,
		Benchmarks: []string{"replay(file=/nonexistent.trc)"},
		Protocols:  []string{"MESI"},
	})
	if !errors.Is(err, core.ErrUncacheable) {
		t.Fatalf("replay point key err = %v, want ErrUncacheable", err)
	}
}

// TestPointCacheRoundTrip pins the losslessness the cache rests on: a
// stored matrix loads back deeply equal to the in-memory original, floats
// and all.
func TestPointCacheRoundTrip(t *testing.T) {
	opt := core.MatrixOptions{Size: workloads.Tiny, Benchmarks: []string{"LU"}, Protocols: []string{"MESI"}}
	m, err := core.RunMatrix(opt)
	if err != nil {
		t.Fatal(err)
	}
	key, err := core.PointKeyFor(opt)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := core.OpenPointCache(filepath.Join(t.TempDir(), "nested", "cache"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := cache.Load(key); err != nil || got != nil {
		t.Fatalf("load before store = (%v, %v), want miss", got, err)
	}
	if err := cache.Store(key, m); err != nil {
		t.Fatal(err)
	}
	got, err := cache.Load(key)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Error("matrix did not round-trip the cache bit-identically")
	}
}

// TestSweepCacheHitBitIdentical is the cache's core guarantee: a second
// identical sweep simulates nothing and assembles a result deeply equal
// to the fresh run — table and full per-point matrices.
func TestSweepCacheHitBitIdentical(t *testing.T) {
	dir := t.TempDir()
	fresh, firstStatuses := runCachedSweep(t, dir)
	if n := countStatus(firstStatuses, core.SweepPointCached); n != 0 {
		t.Fatalf("first run served %d points from an empty cache", n)
	}
	second, statuses := runCachedSweep(t, dir)
	if n := countStatus(statuses, core.SweepPointStarted); n != 0 {
		t.Errorf("second run simulated %d points, want 0", n)
	}
	if n := countStatus(statuses, core.SweepPointCached); n != len(fresh.Points) {
		t.Errorf("second run cached %d/%d points", n, len(fresh.Points))
	}
	if !reflect.DeepEqual(fresh.Table(), second.Table()) {
		t.Error("cache-served table differs from fresh simulation")
	}
	if len(second.Points) != len(fresh.Points) {
		t.Fatalf("%d points, want %d", len(second.Points), len(fresh.Points))
	}
	for i := range fresh.Points {
		if !second.Points[i].Cached {
			t.Errorf("point %d not marked cached", i)
		}
		if !reflect.DeepEqual(fresh.Points[i].Matrix, second.Points[i].Matrix) {
			t.Errorf("point %s: cache hit not bit-identical to fresh simulation", fresh.Points[i].Value)
		}
	}
}

// TestSweepCacheCorruptEntryFallsBack: garbage and truncated entries must
// error loudly (a SweepPointCacheCorrupt event carrying the error), fall
// back to fresh simulation with an unchanged result, and heal the entry.
func TestSweepCacheCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	fresh, _ := runCachedSweep(t, dir)
	entries, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(entries) != 2 {
		t.Fatalf("cache entries = %v (err %v), want 2", entries, err)
	}
	if err := os.WriteFile(entries[0], []byte("{ this is not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(entries[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[1], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	cache, err := core.OpenPointCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var corrupt []error
	var started int
	opt, spec := cacheSweepOptions()
	res, err := core.RunSweepOpt(context.Background(), opt, spec, core.SweepOptions{
		Cache: cache,
		Progress: func(ev core.SweepProgress) {
			switch ev.Status {
			case core.SweepPointCacheCorrupt:
				corrupt = append(corrupt, ev.Err)
			case core.SweepPointStarted:
				started++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 2 {
		t.Fatalf("%d corrupt-entry events, want 2", len(corrupt))
	}
	for _, e := range corrupt {
		if e == nil {
			t.Fatal("corrupt-entry event carried no error")
		}
		if !strings.Contains(e.Error(), "point cache entry") {
			t.Errorf("corrupt-entry error %q does not name the cache entry", e)
		}
	}
	if started != 2 {
		t.Errorf("resimulated %d points, want 2", started)
	}
	if !reflect.DeepEqual(fresh.Table(), res.Table()) {
		t.Error("fallback simulation differs from the original run")
	}

	// The rewritten entries must serve cleanly now.
	_, statuses := runCachedSweep(t, dir)
	if n := countStatus(statuses, core.SweepPointCached); n != 2 {
		t.Errorf("after healing, %d/2 points served from cache", n)
	}
}
