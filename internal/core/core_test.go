package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/waste"
	"repro/internal/workloads"
)

func TestProtocolRegistry(t *testing.T) {
	names := core.ProtocolNames()
	if len(names) != 9 {
		t.Fatalf("%d protocols, want 9", len(names))
	}
	prog := workloads.MustByName("LU", workloads.Tiny, 16)
	for _, n := range names {
		env, err := memsys.NewEnv(memsys.Default().Scaled(64), prog.FootprintBytes(), prog.Regions())
		if err != nil {
			t.Fatal(err)
		}
		p, err := core.NewProtocol(env, n)
		if err != nil {
			t.Fatalf("NewProtocol(%s): %v", n, err)
		}
		if p.Name() != n {
			t.Fatalf("protocol %q reports name %q", n, p.Name())
		}
	}
	env, _ := memsys.NewEnv(memsys.Default().Scaled(64), 64, nil)
	if _, err := core.NewProtocol(env, "bogus"); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}

func TestRunOneProducesResult(t *testing.T) {
	prog := workloads.MustByName("FFT", workloads.Tiny, 16)
	res, err := core.RunOne(memsys.Default().Scaled(64), "MESI", prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protocol != "MESI" || res.Benchmark != "FFT" {
		t.Fatal("result identity wrong")
	}
	if res.Total() <= 0 || res.ExecCycles <= 0 {
		t.Fatal("empty result")
	}
	if res.Time.Total() <= 0 {
		t.Fatal("no time breakdown")
	}
	if res.WasteTotal(waste.LevelL1) == 0 {
		t.Fatal("no L1 fetch words")
	}
}

func tinyMatrix(t *testing.T, protocols, benches []string) *core.Matrix {
	t.Helper()
	m, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Protocols:  protocols,
		Benchmarks: benches,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMatrixAndFigures(t *testing.T) {
	m := tinyMatrix(t, []string{"MESI", "MMemL1", "DeNovo"}, []string{"FFT", "LU"})
	if m.Get("FFT", "MESI") == nil || m.Get("LU", "DeNovo") == nil {
		t.Fatal("matrix missing results")
	}
	for _, id := range core.FigureIDs() {
		tab, err := m.Figure(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 6 { // 2 benches x 3 protocols
			t.Fatalf("%s: %d rows, want 6", id, len(tab.Rows))
		}
		s := tab.String()
		if !strings.Contains(s, "FFT") || !strings.Contains(s, "MESI") {
			t.Fatalf("%s rendering missing labels:\n%s", id, s)
		}
	}
	if _, err := m.Figure("9.9"); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestMESIBaselineNormalizesTo100(t *testing.T) {
	m := tinyMatrix(t, []string{"MESI", "DeNovo"}, []string{"radix"})
	for _, id := range []string{"5.1a", "5.2", "5.3a", "5.3b", "5.3c"} {
		tab, err := m.Figure(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row.Protocol != "MESI" {
				continue
			}
			if tot := row.Total(); tot < 99.9 || tot > 100.1 {
				t.Fatalf("%s: MESI row sums to %.2f%%, want 100%%", id, tot)
			}
		}
	}
}

func TestSummaryDirections(t *testing.T) {
	// At tiny scale the absolute numbers differ from the paper, but the
	// headline directions must hold: the optimized protocols reduce
	// traffic relative to MESI on average.
	m := tinyMatrix(t, []string{"MESI", "MMemL1", "DeNovo", "DFlexL1", "DBypFull"},
		[]string{"FFT", "radix", "barnes"})
	s := m.Summarize()
	if s.TrafficDBypFullVsMESI <= 0 {
		t.Fatalf("DBypFull does not reduce traffic vs MESI: %.3f", s.TrafficDBypFullVsMESI)
	}
	if s.TrafficMMemL1VsMESI <= 0 {
		t.Fatalf("MMemL1 does not reduce traffic vs MESI: %.3f", s.TrafficMMemL1VsMESI)
	}
	if s.MESIOverheadShare <= 0 {
		t.Fatal("MESI overhead share is zero")
	}
	if s.MESIOverheadUnblock < 0.3 {
		t.Fatalf("unblock share %.2f; expected dominant per §5.2.4", s.MESIOverheadUnblock)
	}
	out := s.String()
	if !strings.Contains(out, "paper") || !strings.Contains(out, "39.5%") {
		t.Fatal("summary rendering missing paper reference values")
	}
}

func TestMatrixProgressCallback(t *testing.T) {
	calls := 0
	_, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Protocols:  []string{"MESI"},
		Benchmarks: []string{"LU"},
		Progress:   func(b, p string) { calls++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("progress called %d times, want 1", calls)
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	_, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Benchmarks: []string{"nope"},
		Protocols:  []string{"MESI"},
	})
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	// Two identical runs must produce bit-identical traffic and timing:
	// the whole simulator is deterministic (no map-order leakage).
	for _, proto := range []string{"MESI", "DBypFull"} {
		a, err := core.RunOne(memsys.Default().Scaled(64), proto,
			workloads.MustByName("barnes", workloads.Tiny, 16))
		if err != nil {
			t.Fatal(err)
		}
		b, err := core.RunOne(memsys.Default().Scaled(64), proto,
			workloads.MustByName("barnes", workloads.Tiny, 16))
		if err != nil {
			t.Fatal(err)
		}
		if a.ExecCycles != b.ExecCycles {
			t.Fatalf("%s: exec cycles differ: %d vs %d", proto, a.ExecCycles, b.ExecCycles)
		}
		if a.Total() != b.Total() {
			t.Fatalf("%s: traffic differs: %v vs %v", proto, a.Total(), b.Total())
		}
		if a.FlitHops != b.FlitHops {
			t.Fatalf("%s: traffic breakdown differs", proto)
		}
		if a.Waste != b.Waste {
			t.Fatalf("%s: waste counts differ", proto)
		}
	}
}
