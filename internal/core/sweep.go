package core

// The third-axis sweep engine. RunMatrix crosses two axes — workloads x
// protocols — and every other knob (topology, router, VC geometry, a
// synthetic pattern's parameters) is a single value per run. A sweep
// crosses one more: a SweepSpec names an axis and an ordered value list,
// expands into one MatrixOptions per point, runs each point through the
// sharded engine (inheriting its cancellation and bit-identical-at-any-
// worker-count guarantees), and assembles the per-point results into one
// table — the data behind the classic NoC load-latency saturation curves
// and the paper's waste-vs-load question.
//
// Two spellings, mirroring the registries the axes come from:
//
//	topology=mesh,ring,torus     an engine axis with explicit values
//	vcs=2..8..2                  a numeric engine axis as lo..hi..step
//	protocol=MESI,DeNovo         one protocol per point (curve families)
//	hotspot(t=1..16)             a workload-registry parameter sweep
//	uniform(p=0.01..0.09..0.02)  a float parameter needs an explicit step
//	hotspot(t=1,2,4,p=0.1)       value lists and fixed co-parameters mix
//
// In a workload sweep exactly one parameter carries multiple values; the
// others are fixed for every point, and each expanded point is validated
// through workloads.ParseSpec before anything runs.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/waste"
	"repro/internal/workloads"
)

// MeshPresets are the mesh-dimension values the inventory advertises for
// the mesh axis (the paper's 4x4 plus the 64- and 256-tile scaling
// points). The axis itself accepts any WxH that memsys.ParseMeshDims
// does — these are the catalog entries, not a closed vocabulary.
func MeshPresets() []string {
	return []string{"4x4", "8x8", "16x16"}
}

// DefaultSweepPointCap bounds a sweep's expansion unless the caller
// raises it (ParseSweepLimit, trafficsim -maxpoints): a typo like
// "uniform(p=0.0001..1..0.0001)" should fail loudly, not run for a week.
// Genuinely large sweeps opt in to a higher cap explicitly — and should
// bring a point cache (-cachedir) so a kill doesn't cost the finished
// points.
const DefaultSweepPointCap = 256

// SweepAxisInfo describes one engine-level sweep axis for the inventory
// (cmd/papertables). Workload-parameter axes are not listed here — they
// come from the workload registry's own parameter catalog.
type SweepAxisInfo struct {
	Name   string
	Desc   string
	Values []string // enumerable values, nil for open-ended axes
	Hint   string   // value-shape hint when Values is nil
}

// sweepAxisDef wires an engine axis name to its per-point application.
type sweepAxisDef struct {
	name   string
	desc   string
	values func() []string // enumerable values (nil = open-ended)
	hint   string          // value-shape hint when values is nil
	// norm validates a value and returns its canonical spelling, so
	// spelling variants of one point ("4"/"04", "MESI+MemL1" with spaces)
	// collide in the duplicate check. nil = values() membership.
	norm func(v string) (string, error)
	// conflicts reports whether the base options already pin this axis
	// explicitly (a sweep owns its axis; overriding would be silent).
	conflicts func(o MatrixOptions) bool
	// requires rejects base options under which the axis has no effect —
	// a sweep whose points are all identical is a silent no-op, the
	// failure class this codebase errors on rather than prints.
	requires func(o MatrixOptions) error
	apply    func(o *MatrixOptions, value string) // set the axis on one point's options
}

// requiresVCRouter gates the VC-geometry axes: under the ideal router the
// VC knobs are dead and every sweep point would be bit-identical.
func requiresVCRouter(o MatrixOptions) error {
	if o.Router != "vc" {
		return fmt.Errorf("only the vc router reads VC geometry (every point would be identical); set Router/-router to vc")
	}
	return nil
}

// sweepAxes is the engine-axis registry, in presentation order. Workload
// parameters ("hotspot(t=...)") are the other sweepable surface; they are
// resolved through the workload registry instead.
var sweepAxes = []sweepAxisDef{
	{
		name: "topology", desc: "NoC topology for every cell",
		values:    mesh.TopologyKinds,
		conflicts: func(o MatrixOptions) bool { return o.Topology != "" },
		apply:     func(o *MatrixOptions, v string) { o.Topology = v },
	},
	{
		name: "router", desc: "fabric forwarding model for every cell",
		values:    mesh.RouterKinds,
		conflicts: func(o MatrixOptions) bool { return o.Router != "" },
		apply:     func(o *MatrixOptions, v string) { o.Router = v },
	},
	{
		name: "mesh", desc: "tile-grid dimensions WxH for every cell (tiles, MC corners and Bloom banks follow)",
		values: MeshPresets,
		hint:   "WxH, e.g. 4x4, 8x8, 16x16",
		norm: func(v string) (string, error) {
			w, h, err := memsys.ParseMeshDims(v)
			if err != nil {
				return "", err
			}
			return memsys.FormatMeshDims(w, h), nil
		},
		conflicts: func(o MatrixOptions) bool { return o.MeshWidth != 0 || o.MeshHeight != 0 },
		apply: func(o *MatrixOptions, v string) {
			o.MeshWidth, o.MeshHeight = mustParseMesh(v)
		},
	},
	{
		name: "vcs", desc: "vc router virtual channels per input port (even, >= 2)",
		hint: "even int >= 2",
		norm: func(v string) (string, error) {
			n, err := strconv.Atoi(v)
			if err != nil {
				return "", fmt.Errorf("%q is not an integer", v)
			}
			if n < 2 || n%2 != 0 {
				return "", fmt.Errorf("VCs = %d; the dateline split needs an even count >= 2", n)
			}
			return strconv.Itoa(n), nil
		},
		conflicts: func(o MatrixOptions) bool { return o.VCs != 0 },
		requires:  requiresVCRouter,
		apply:     func(o *MatrixOptions, v string) { o.VCs = mustAtoi(v) },
	},
	{
		name: "vcdepth", desc: "vc router flit buffer depth per VC (>= 1)",
		hint:      "int >= 1",
		norm:      normPositiveInt,
		conflicts: func(o MatrixOptions) bool { return o.VCDepth != 0 },
		requires:  requiresVCRouter,
		apply:     func(o *MatrixOptions, v string) { o.VCDepth = mustAtoi(v) },
	},
	{
		name: "threads", desc: "worker threads (= cores used) per cell",
		hint:      "int >= 1",
		norm:      normPositiveInt,
		conflicts: func(o MatrixOptions) bool { return o.Threads != 0 },
		apply:     func(o *MatrixOptions, v string) { o.Threads = mustAtoi(v) },
	},
	{
		name: "protocol", desc: "one protocol spec per point (replaces the matrix protocol axis)",
		hint: "any protocol spec",
		norm: func(v string) (string, error) {
			p, err := ParseProtocol(v)
			if err != nil {
				return "", err
			}
			return p.Spec, nil
		},
		conflicts: func(o MatrixOptions) bool { return o.Protocols != nil },
		apply:     func(o *MatrixOptions, v string) { o.Protocols = []string{v} },
	},
}

func normPositiveInt(v string) (string, error) {
	n, err := strconv.Atoi(v)
	if err != nil {
		return "", fmt.Errorf("%q is not an integer", v)
	}
	if n < 1 {
		return "", fmt.Errorf("%d must be >= 1", n)
	}
	return strconv.Itoa(n), nil
}

// mustAtoi converts a value the axis check already validated.
func mustAtoi(v string) int {
	n, err := strconv.Atoi(v)
	if err != nil {
		panic("core: unvalidated sweep value: " + v)
	}
	return n
}

// mustParseMesh converts a mesh value the axis check already validated.
func mustParseMesh(v string) (width, height int) {
	w, h, err := memsys.ParseMeshDims(v)
	if err != nil {
		panic("core: unvalidated sweep value: " + v)
	}
	return w, h
}

func sweepAxisByName(name string) *sweepAxisDef {
	for i := range sweepAxes {
		if sweepAxes[i].name == name {
			return &sweepAxes[i]
		}
	}
	return nil
}

// SweepAxisNames lists the engine-level sweep axes in presentation order.
func SweepAxisNames() []string {
	out := make([]string, len(sweepAxes))
	for i, d := range sweepAxes {
		out[i] = d.name
	}
	return out
}

// SweepAxisCatalog returns the engine-axis inventory for cmd/papertables.
func SweepAxisCatalog() []SweepAxisInfo {
	out := make([]SweepAxisInfo, len(sweepAxes))
	for i, d := range sweepAxes {
		info := SweepAxisInfo{Name: d.name, Desc: d.desc, Hint: d.hint}
		if d.values != nil {
			info.Values = d.values()
		}
		out[i] = info
	}
	return out
}

// SweepSpec is a parsed, validated sweep: one axis with an ordered,
// expanded value list, ready to stamp out per-point MatrixOptions.
type SweepSpec struct {
	// Spec is the normalized spelling of the sweep (whitespace trimmed,
	// value lists preserved as written).
	Spec string
	// Axis identifies the swept knob: an engine axis name ("topology",
	// "vcs", "protocol", ...) or "family.key" for a workload-parameter
	// sweep ("hotspot.t").
	Axis string
	// Workload is the swept workload family name for workload-parameter
	// sweeps ("" for engine axes).
	Workload string
	// Param is the swept parameter key for workload-parameter sweeps.
	Param string
	// Values holds one label per sweep point, in sweep order: the axis
	// value for engine axes ("ring", "4"), the swept parameter value for
	// workload sweeps ("2" for hotspot(t=2)) — the curve's x coordinates.
	Values []string

	axis  *sweepAxisDef // non-nil for engine-axis sweeps
	specs []string      // per-point workload specs (workload sweeps)
}

// expandRange expands one sweep value token: a plain value, an integer
// range "lo..hi" (step 1) or "lo..hi..step", or a float range with an
// explicit step ("0.1..0.9..0.2"). Ranges are inclusive of hi when the
// step lands on it, and capped at limit points.
func expandRange(tok string, limit int) ([]string, error) {
	if !strings.Contains(tok, "..") {
		return []string{tok}, nil
	}
	parts := strings.Split(tok, "..")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, fmt.Errorf("range %q is not lo..hi or lo..hi..step", tok)
	}
	// Integer range when every part — bounds and step alike — parses as
	// an integer; "0..1..0.25" has integer bounds but is a float range.
	allInt := true
	for _, p := range parts {
		if _, err := strconv.Atoi(p); err != nil {
			allInt = false
		}
	}
	if allInt {
		lo, _ := strconv.Atoi(parts[0])
		hi, _ := strconv.Atoi(parts[1])
		step := 1
		if len(parts) == 3 {
			if step, _ = strconv.Atoi(parts[2]); step < 1 {
				return nil, fmt.Errorf("range %q: step %q must be positive", tok, parts[2])
			}
		}
		if hi < lo {
			return nil, fmt.Errorf("range %q: hi %d < lo %d", tok, hi, lo)
		}
		var out []string
		for v := lo; v <= hi; v += step {
			out = append(out, strconv.Itoa(v))
			if len(out) > limit {
				return nil, fmt.Errorf("range %q expands past %d points (raise the cap with -maxpoints / ParseSweepLimit)", tok, limit)
			}
		}
		return out, nil
	}
	// Float range: the step is mandatory (there is no natural "next"
	// float, and an implied step would silently pick one).
	lo, err1 := strconv.ParseFloat(parts[0], 64)
	hi, err2 := strconv.ParseFloat(parts[1], 64)
	if err1 != nil || err2 != nil {
		return nil, fmt.Errorf("range %q: bounds are neither integers nor numbers", tok)
	}
	if len(parts) != 3 {
		return nil, fmt.Errorf("float range %q needs an explicit step (lo..hi..step)", tok)
	}
	step, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || step <= 0 {
		return nil, fmt.Errorf("range %q: step %q must be a positive number", tok, parts[2])
	}
	if hi < lo {
		return nil, fmt.Errorf("range %q: hi %g < lo %g", tok, hi, lo)
	}
	var out []string
	for i := 0; ; i++ {
		// Recompute from the index (lo + i*step, decimally rounded) so the
		// labels stay clean instead of accumulating float error.
		v := math.Round((lo+float64(i)*step)*1e9) / 1e9
		if v > hi+1e-12 {
			break
		}
		out = append(out, strconv.FormatFloat(v, 'g', -1, 64))
		if len(out) > limit {
			return nil, fmt.Errorf("range %q expands past %d points (raise the cap with -maxpoints / ParseSweepLimit)", tok, limit)
		}
	}
	return out, nil
}

// splitSweepValues splits a comma-separated value list where a piece
// containing '=' starts a new key and bare pieces extend the previous
// key's values: "t=1,2,4,p=0.1" is t->[1 2 4], p->[0.1]. Order of first
// appearance is preserved.
func splitSweepValues(body string, limit int) (keys []string, vals map[string][]string, err error) {
	vals = make(map[string][]string)
	cur := ""
	for _, piece := range strings.Split(body, ",") {
		piece = strings.TrimSpace(piece)
		if piece == "" {
			continue
		}
		if eq := strings.IndexByte(piece, '='); eq >= 0 {
			cur = strings.TrimSpace(piece[:eq])
			if cur == "" {
				return nil, nil, fmt.Errorf("option %q has an empty key", piece)
			}
			if _, dup := vals[cur]; dup {
				return nil, nil, fmt.Errorf("duplicate option %q", cur)
			}
			keys = append(keys, cur)
			piece = strings.TrimSpace(piece[eq+1:])
		} else if cur == "" {
			return nil, nil, fmt.Errorf("value %q before any key=", piece)
		}
		if piece == "" {
			return nil, nil, fmt.Errorf("option %q: empty value", cur)
		}
		expanded, err := expandRange(piece, limit)
		if err != nil {
			return nil, nil, err
		}
		for _, v := range expanded {
			vals[cur] = append(vals[cur], normScalar(v))
		}
	}
	return keys, vals, nil
}

// ParseSweep resolves a sweep spec — "axis=value,value,..." over an engine
// axis, or "family(key=range,...)" over a workload-registry parameter —
// into a validated SweepSpec without running anything. Every expanded
// point value is checked against its registry, so a sweep that parses
// cannot fail on spec resolution mid-run. The expansion is capped at
// DefaultSweepPointCap points; ParseSweepLimit raises the cap.
func ParseSweep(spec string) (*SweepSpec, error) {
	return ParseSweepLimit(spec, 0)
}

// ParseSweepLimit is ParseSweep with an explicit point cap (maxPoints <= 0
// means DefaultSweepPointCap). The cap exists so a typo'd range fails
// loudly instead of expanding into a week of simulation; sweeps that
// genuinely need more points raise it deliberately.
func ParseSweepLimit(spec string, maxPoints int) (*SweepSpec, error) {
	limit := maxPoints
	if limit <= 0 {
		limit = DefaultSweepPointCap
	}
	s := strings.TrimSpace(spec)
	if s == "" {
		return nil, fmt.Errorf("core: empty sweep spec (axes: %s; or a workload parameter like hotspot(t=1..16))",
			strings.Join(SweepAxisNames(), ", "))
	}
	if i := strings.IndexByte(s, '('); i >= 0 {
		return parseWorkloadSweep(spec, s, i, limit)
	}
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return nil, fmt.Errorf("core: sweep %q is neither axis=values nor workload(key=range)", spec)
	}
	name := strings.TrimSpace(s[:eq])
	axis := sweepAxisByName(name)
	if axis == nil {
		return nil, fmt.Errorf("core: unknown sweep axis %q (axes: %s; or a workload parameter like hotspot(t=1..16))",
			name, strings.Join(SweepAxisNames(), ", "))
	}
	var values []string
	for _, tok := range strings.Split(s[eq+1:], ",") {
		if tok = strings.TrimSpace(tok); tok == "" {
			continue
		}
		expanded, err := expandRange(tok, limit)
		if err != nil {
			return nil, fmt.Errorf("core: sweep %q: %w", spec, err)
		}
		values = append(values, expanded...)
	}
	if len(values) < 2 {
		return nil, fmt.Errorf("core: sweep %q has %d point(s); a sweep needs at least 2", spec, len(values))
	}
	if len(values) > limit {
		return nil, fmt.Errorf("core: sweep %q expands to %d points (cap %d; raise it with -maxpoints / ParseSweepLimit)", spec, len(values), limit)
	}
	seen := make(map[string]bool, len(values))
	for i, v := range values {
		if axis.norm != nil {
			n, err := axis.norm(v)
			if err != nil {
				return nil, fmt.Errorf("core: sweep %q: %v", spec, err)
			}
			values[i] = n
			v = n
		} else if !contains(axis.values(), v) {
			return nil, fmt.Errorf("core: sweep %q: unknown %s %q (valid: %s)",
				spec, axis.name, v, strings.Join(axis.values(), ", "))
		}
		if seen[v] {
			return nil, fmt.Errorf("core: sweep %q: duplicate point %q", spec, v)
		}
		seen[v] = true
	}
	return &SweepSpec{
		Spec:   name + "=" + strings.Join(values, ","),
		Axis:   name,
		Values: values,
		axis:   axis,
	}, nil
}

// parseWorkloadSweep handles the "family(key=range,...)" form: exactly one
// parameter carries multiple values and becomes the axis; the rest are
// fixed for every point.
func parseWorkloadSweep(orig, s string, paren, limit int) (*SweepSpec, error) {
	if !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("core: malformed sweep %q: missing ')'", orig)
	}
	family := strings.TrimSpace(s[:paren])
	keys, vals, err := splitSweepValues(s[paren+1:len(s)-1], limit)
	if err != nil {
		return nil, fmt.Errorf("core: sweep %q: %w", orig, err)
	}
	swept := ""
	for _, k := range keys {
		if len(vals[k]) > 1 {
			if swept != "" {
				return nil, fmt.Errorf("core: sweep %q: both %q and %q have multiple values; a sweep has one axis",
					orig, swept, k)
			}
			swept = k
		}
	}
	if swept == "" {
		return nil, fmt.Errorf("core: sweep %q: no parameter has multiple values (use a range like t=1..16 or a list like t=1,2,4)", orig)
	}
	if len(vals[swept]) > limit {
		return nil, fmt.Errorf("core: sweep %q expands to %d points (cap %d; raise it with -maxpoints / ParseSweepLimit)", orig, len(vals[swept]), limit)
	}
	sw := &SweepSpec{
		Axis:     family + "." + swept,
		Workload: family,
		Param:    swept,
	}
	seen := make(map[string]bool, len(vals[swept]))
	for _, v := range vals[swept] {
		// One concrete spec per point, every parameter spelled out; the
		// workload registry validates and canonicalizes it, so two
		// spellings of one point ("t=4" and "t=04") collide here.
		var opts []string
		for _, k := range keys {
			val := v
			if k != swept {
				val = vals[k][0]
			}
			opts = append(opts, k+"="+val)
		}
		pointSpec := family + "(" + strings.Join(opts, ",") + ")"
		parsed, err := workloads.ParseSpec(pointSpec)
		if err != nil {
			return nil, fmt.Errorf("core: sweep %q: %w", orig, err)
		}
		if seen[parsed.Canonical] {
			return nil, fmt.Errorf("core: sweep %q: duplicate point %s=%s", orig, swept, v)
		}
		seen[parsed.Canonical] = true
		sw.specs = append(sw.specs, parsed.Canonical)
		sw.Values = append(sw.Values, v)
	}
	if len(sw.Values) < 2 {
		return nil, fmt.Errorf("core: sweep %q has %d point(s); a sweep needs at least 2", orig, len(sw.Values))
	}
	// Canonical spelling: swept values expanded, fixed parameters kept.
	var parts []string
	for _, k := range keys {
		if k == swept {
			parts = append(parts, k+"="+strings.Join(vals[k], ","))
		} else {
			parts = append(parts, k+"="+vals[k][0])
		}
	}
	sw.Spec = family + "(" + strings.Join(parts, ",") + ")"
	return sw, nil
}

// normScalar canonicalizes a numeric-looking value the way the workload
// registry does ("02" -> "2", "0.050" -> "0.05"), so sweep-point labels
// and the canonical Spec match the registry's spelling; non-numeric
// values (file paths) pass through verbatim.
func normScalar(v string) string {
	if n, err := strconv.Atoi(v); err == nil {
		return strconv.Itoa(n)
	}
	if f, err := strconv.ParseFloat(v, 64); err == nil {
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	return v
}

func contains(list []string, v string) bool {
	for _, x := range list {
		if x == v {
			return true
		}
	}
	return false
}

// PointOptions returns the per-point MatrixOptions, in sweep order: base
// with the axis value applied. For workload-parameter sweeps each point's
// Benchmarks is the single swept spec; for the protocol axis each point's
// Protocols is the single swept protocol. A base that already pins the
// swept axis (an explicit benchmark list against a workload sweep, a
// nonzero Topology/Router/VCs/VCDepth/Threads against that engine axis)
// is an error rather than a silent override — callers leave a swept field
// at its zero value.
func (s *SweepSpec) PointOptions(base MatrixOptions) ([]MatrixOptions, error) {
	if s.Workload != "" && base.Benchmarks != nil {
		return nil, fmt.Errorf("core: sweep %q sets the benchmark axis; drop the explicit benchmark list", s.Spec)
	}
	if s.axis != nil && s.axis.conflicts != nil && s.axis.conflicts(base) {
		return nil, fmt.Errorf("core: sweep %q sets the %s axis; drop the explicit %s value", s.Spec, s.Axis, s.Axis)
	}
	if s.axis != nil && s.axis.requires != nil {
		if err := s.axis.requires(base); err != nil {
			return nil, fmt.Errorf("core: sweep %q: %v", s.Spec, err)
		}
	}
	out := make([]MatrixOptions, len(s.Values))
	for i, v := range s.Values {
		o := base
		if s.Workload != "" {
			o.Benchmarks = []string{s.specs[i]}
		} else {
			s.axis.apply(&o, v)
		}
		out[i] = o
	}
	return out, nil
}

// SweepPoint is one point of a completed sweep: the axis value and the
// full matrix simulated at it.
type SweepPoint struct {
	// Value is the point's axis value — the curve's x coordinate ("ring",
	// "4"). For workload-parameter sweeps the point's canonical workload
	// spec appears as the single benchmark of Matrix.
	Value string
	// Matrix holds the point's full benchmark x protocol results.
	Matrix *Matrix
	// Cached reports that the point was served from the point cache
	// instead of simulated (bit-identical either way; Load verifies the
	// configuration and tests pin the equality).
	Cached bool
}

// SweepResult is a sweep's outcome: every completed point's matrix, in
// sweep order. A run that was cancelled or hit a failing point returns
// the points that did complete (len(Points) < Expected) alongside the
// error, so callers keep — and, with a cache, persist — finished work.
type SweepResult struct {
	// Spec is the canonical sweep spelling the result was produced from.
	Spec string
	// Axis is the swept knob ("topology", "hotspot.t", ...).
	Axis string
	// Expected is the number of points the sweep expands to;
	// len(Points) == Expected for a complete run.
	Expected int
	// Points holds the per-point matrices of every completed point, in
	// sweep order (a partial result skips the unfinished points).
	Points []*SweepPoint
}

// SweepPointStatus tags a sweep-level progress event.
type SweepPointStatus int

// The sweep-level progress states, in the order a point can report them.
const (
	// SweepPointCached: the point was served from the cache; it will not
	// simulate.
	SweepPointCached SweepPointStatus = iota
	// SweepPointCacheCorrupt: a cache entry for the point exists but
	// cannot be trusted (Err says why); the point simulates fresh and a
	// good entry is rewritten on completion.
	SweepPointCacheCorrupt
	// SweepPointStarted: the point's first cell was claimed by a worker.
	SweepPointStarted
	// SweepPointDone: the point's last cell finished and its matrix is
	// assembled (and stored, when a cache is attached).
	SweepPointDone
	// SweepPointStoreFailed: the point completed but the cache could not
	// persist it (Err says why). The sweep's result is unaffected — the
	// point is in the SweepResult — but a later resume will resimulate it.
	SweepPointStoreFailed
)

// String names the status for progress lines.
func (s SweepPointStatus) String() string {
	switch s {
	case SweepPointCached:
		return "cached"
	case SweepPointCacheCorrupt:
		return "cache-corrupt"
	case SweepPointStarted:
		return "simulating"
	case SweepPointDone:
		return "done"
	case SweepPointStoreFailed:
		return "store-failed"
	}
	return fmt.Sprintf("SweepPointStatus(%d)", int(s))
}

// SweepProgress is one sweep-level progress event: which point (i of N,
// with its axis value), and what just happened to it. Events for one
// point arrive in status order; events for different points interleave
// when the pool runs points concurrently. Callbacks are serialized.
type SweepProgress struct {
	// Point is the 0-based index of the point in sweep order; Total is
	// the sweep's point count.
	Point, Total int
	// Axis and Value name the point ("hotspot.t", "4").
	Axis, Value string
	// Status says what happened; Err is set for SweepPointCacheCorrupt
	// and SweepPointStoreFailed.
	Status SweepPointStatus
	Err    error
}

// SweepOptions configures RunSweepOpt beyond the per-point MatrixOptions.
type SweepOptions struct {
	// Cache, if non-nil, serves repeated points from disk and persists
	// each point as it completes — which is also what makes a killed
	// sweep resumable: rerunning the same sweep skips the finished
	// points. Points the cache cannot key (trace replays) are always
	// simulated.
	Cache *PointCache
	// MaxPoints raises the sweep expansion cap (<= 0 means
	// DefaultSweepPointCap).
	MaxPoints int
	// Progress, if set, receives sweep-level events (serialized).
	Progress func(SweepProgress)
}

// RunSweep expands and runs a sweep over a base configuration; see
// RunSweepContext.
func RunSweep(opt MatrixOptions, spec string) (*SweepResult, error) {
	return RunSweepContext(context.Background(), opt, spec)
}

// RunSweepContext is RunSweepOpt with default SweepOptions (no cache, the
// default point cap, no sweep-level progress).
func RunSweepContext(ctx context.Context, opt MatrixOptions, spec string) (*SweepResult, error) {
	return RunSweepOpt(ctx, opt, spec, SweepOptions{})
}

// RunSweepOpt parses spec, expands it into per-point MatrixOptions on top
// of opt, and feeds every point's cells through one shared worker pool
// (opt.Workers wide; see scheduler.go): a point is a batch of cells, the
// pool claims cells in point-major order, and each point's matrix is
// assembled the moment its last cell finishes. Scheduling cannot change
// results — cells are independent deterministic simulations and assembly
// order is fixed — so the SweepResult is bit-identical at every worker
// count, cache on or off.
//
// With a cache attached, points whose configuration is already stored are
// served from disk up front (verified against the key's preimage) and
// completed points are persisted as the sweep runs. A failure to persist
// a point is reported through the sweep progress callback
// (SweepPointStoreFailed), never as the sweep's error: the result is
// already in hand, and only a later resume pays for the missing entry by
// resimulating that point. Cancelling ctx stops
// the pool at the next cell boundary; the returned SweepResult then holds
// every point that completed, alongside the error — nothing finished is
// discarded, and a cached rerun of the same sweep resumes from there.
func RunSweepOpt(ctx context.Context, opt MatrixOptions, spec string, sopt SweepOptions) (*SweepResult, error) {
	s, err := ParseSweepLimit(spec, sopt.MaxPoints)
	if err != nil {
		return nil, err
	}
	pts, err := s.PointOptions(opt)
	if err != nil {
		return nil, err
	}
	n := len(pts)
	res := &SweepResult{Spec: s.Spec, Axis: s.Axis, Expected: n}

	var emitMu sync.Mutex
	emit := func(ev SweepProgress) {
		if sopt.Progress == nil {
			return
		}
		ev.Total = n
		ev.Axis = s.Axis
		ev.Value = s.Values[ev.Point]
		emitMu.Lock()
		sopt.Progress(ev)
		emitMu.Unlock()
	}
	pointErr := func(i int, err error) error {
		return fmt.Errorf("core: sweep point %s = %s: %w", s.Axis, s.Values[i], err)
	}

	// Plan every point before anything runs: registry resolution and
	// config validation fail here, loudly, never mid-sweep. Programs are
	// built lazily per point, so planning 10,000 points stays cheap.
	plans := make([]*matrixPlan, n)
	for i, po := range pts {
		p, err := planMatrix(po)
		if err != nil {
			return res, pointErr(i, err)
		}
		plans[i] = p
	}

	// Serve cached points up front, in sweep order. A corrupt entry is
	// reported loudly and the point simulates fresh (rewriting a good
	// entry on completion).
	matrices := make([]*Matrix, n)
	cached := make([]bool, n)
	keys := make([]PointKey, n)
	haveKey := make([]bool, n)
	if sopt.Cache != nil {
		for i, p := range plans {
			key, err := pointKeyFor(p)
			if err != nil {
				if errors.Is(err, ErrUncacheable) {
					continue
				}
				return res, pointErr(i, err)
			}
			keys[i], haveKey[i] = key, true
			m, err := sopt.Cache.Load(key)
			if err != nil {
				emit(SweepProgress{Point: i, Status: SweepPointCacheCorrupt, Err: err})
				continue
			}
			if m != nil {
				matrices[i], cached[i] = m, true
				emit(SweepProgress{Point: i, Status: SweepPointCached})
			}
		}
	}

	// The remaining points share one pool. runIdx maps pool plan index
	// back to sweep point index.
	var toRun []*matrixPlan
	var runIdx []int
	for i, p := range plans {
		if matrices[i] == nil {
			toRun = append(toRun, p)
			runIdx = append(runIdx, i)
		}
	}

	var hooks poolHooks
	if opt.Progress != nil {
		hooks.cellStarted = func(p *matrixPlan, cell int) {
			c := p.cells[cell]
			opt.Progress(p.opt.Benchmarks[c.bench], p.opt.Protocols[c.proto])
		}
	}
	hooks.pointStarted = func(pi int) {
		emit(SweepProgress{Point: runIdx[pi], Status: SweepPointStarted})
	}
	hooks.pointDone = func(pi int, p *matrixPlan) {
		i := runIdx[pi]
		m, err := p.assemble()
		p.progs = nil // the point is done; let a long sweep's programs be collected
		if err != nil {
			// The cell error stays in p.errs; the post-run scan below
			// reports it in sweep order.
			return
		}
		matrices[i] = m
		if sopt.Cache != nil && haveKey[i] {
			// A store failure must not fail the sweep — the point's result
			// is in hand; only a later resume pays (it resimulates). Report
			// it loudly and keep going.
			if err := sopt.Cache.Store(keys[i], m); err != nil {
				emit(SweepProgress{Point: i, Status: SweepPointStoreFailed, Err: err})
			}
		}
		emit(SweepProgress{Point: i, Status: SweepPointDone})
	}

	runErr := runPlans(ctx, toRun, opt.Workers, hooks)

	// Assemble every completed point, in sweep order — on success that is
	// all of them; after a cancel or a point failure it is the partial
	// result the caller (and the resume machinery) keeps.
	for i := range plans {
		if matrices[i] != nil {
			res.Points = append(res.Points, &SweepPoint{Value: s.Values[i], Matrix: matrices[i], Cached: cached[i]})
		}
	}
	if runErr != nil {
		return res, runErr
	}
	// A cell failure stops the pool from claiming new work, so the failing
	// point's remaining count may never reach zero and pointDone (which
	// would have seen the error via assemble) may never fire for it — the
	// error then lives only in the plan's cell slots. Scan every point
	// that did not assemble, in sweep order, and report its first cell
	// error (cell slots are in matrix order, so the choice is
	// deterministic under any schedule that ran the same cells).
	for i, p := range plans {
		if matrices[i] != nil {
			continue
		}
		for _, cerr := range p.errs {
			if cerr != nil {
				return res, pointErr(i, cerr)
			}
		}
	}
	return res, nil
}

// sweepColumns are the assembled table's per-cell quantities: total
// traffic (flit-hops), execution cycles, mean and worst packet latency
// over the measured window (cycles), the hottest directed link's
// utilization (percent of cycles busy), the wasted share of all traffic
// (percent of flit-hops), and the share of words fetched into the L1 that
// were never used (percent) — the load-latency and waste-vs-load curve
// data in one table. A sweep with at least one deflection-routed cell
// grows a trailing "Defl%" column (the share of link traversals that were
// deflected detours); sweeps without one keep the historical column set,
// which the sweep golden pins byte-for-byte.
var sweepColumns = []string{"Traffic", "Cycles", "MeanLat", "MaxLat", "Util%", "Waste%", "L1Waste%"}

// deflColumn is the conditional trailing column: deflected link
// traversals as a percentage of all traversals the fabric carried.
const deflColumn = "Defl%"

// SweepTable is the assembled sweep output: one row per
// (point, benchmark, protocol) cell with the curve quantities, in sweep
// order. Values are raw (not normalized to a baseline): saturation curves
// compare points of one configuration, not protocols against MESI.
type SweepTable struct {
	// Spec and Axis identify the sweep the table was assembled from.
	Spec string
	Axis string
	// Columns names the per-row quantities (see sweepColumns).
	Columns []string
	// Rows holds every (point, benchmark, protocol) cell, point-major in
	// sweep order.
	Rows []SweepRow
}

// SweepRow is one (point, benchmark, protocol) cell of a SweepTable.
type SweepRow struct {
	// Point is the sweep-axis value the cell was simulated at.
	Point string
	// Bench and Protocol key the cell inside the point's matrix.
	Bench    string
	Protocol string
	// Values holds the quantities named by SweepTable.Columns.
	Values []float64
}

// Table assembles the sweep's curve table from the per-point matrices.
// The Defl% column appears only when some cell ran the deflection router
// (a router=... sweep, or a base configuration pinning it), so tables of
// purely buffered sweeps are unchanged.
func (r *SweepResult) Table() *SweepTable {
	hasDefl := false
	for _, p := range r.Points {
		for _, bench := range p.Matrix.Benchmarks {
			for _, proto := range p.Matrix.Protocols {
				if res := p.Matrix.Get(bench, proto); res != nil && res.Net.Router == "deflection" {
					hasDefl = true
				}
			}
		}
	}
	cols := sweepColumns
	if hasDefl {
		cols = append(append([]string{}, sweepColumns...), deflColumn)
	}
	t := &SweepTable{Spec: r.Spec, Axis: r.Axis, Columns: cols}
	for _, p := range r.Points {
		m := p.Matrix
		for _, bench := range m.Benchmarks {
			for _, proto := range m.Protocols {
				res := m.Get(bench, proto)
				if res == nil {
					continue
				}
				l1waste := 0.0
				if total := float64(res.WasteTotal(waste.LevelL1)); total > 0 {
					l1waste = 100 * (1 - float64(res.Waste[waste.LevelL1][waste.Used])/total)
				}
				values := []float64{
					res.Total(),
					float64(res.ExecCycles),
					res.Net.LatencyMean,
					float64(res.Net.LatencyMax),
					res.Net.LinkUtilMax * 100,
					res.WasteShare * 100,
					l1waste,
				}
				if hasDefl {
					// Deflected share of all traversals: minimal flit-hops
					// (res.Total) plus the deflected detours; 0 for the
					// non-deflection cells of a router=... sweep.
					deflPct := 0.0
					if d := float64(res.Net.DeflectedHops); d > 0 {
						deflPct = 100 * d / (res.Total() + d)
					}
					values = append(values, deflPct)
				}
				t.Rows = append(t.Rows, SweepRow{
					Point:    p.Value,
					Bench:    bench,
					Protocol: proto,
					Values:   values,
				})
			}
		}
	}
	return t
}

// String renders the assembled table as aligned text, one block per sweep
// point.
func (t *SweepTable) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep %s — one curve point per %s value\n", t.Spec, t.Axis)
	// Every text column's width is computed from its content (the
	// protocol column was once hardcoded to 18 and broke alignment for
	// longer composed specs).
	pointW, benchW, protoW := len(t.Axis), len("benchmark"), len("protocol")
	for _, r := range t.Rows {
		if len(r.Point) > pointW {
			pointW = len(r.Point)
		}
		if len(r.Bench) > benchW {
			benchW = len(r.Bench)
		}
		if len(r.Protocol) > protoW {
			protoW = len(r.Protocol)
		}
	}
	fmt.Fprintf(&b, "%-*s %-*s %-*s", pointW, t.Axis, benchW, "benchmark", protoW, "protocol")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteString("\n")
	prev := ""
	for _, r := range t.Rows {
		point := r.Point
		if point == prev {
			point = ""
		} else if prev != "" {
			b.WriteString("\n")
		}
		prev = r.Point
		fmt.Fprintf(&b, "%-*s %-*s %-*s", pointW, point, benchW, r.Bench, protoW, r.Protocol)
		for i, v := range r.Values {
			switch t.Columns[i] {
			case "Traffic", "Cycles", "MaxLat":
				fmt.Fprintf(&b, " %12.0f", v)
			default:
				fmt.Fprintf(&b, " %12.2f", v)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
