package core_test

// The mesh-geometry axis suite: parse/normalize/conflict rules for the
// mesh= engine axis, the dimensions' participation in the point-cache
// preimage, the loud threads-vs-tiles and half-set-dims failures, and the
// PR 8 acceptance pin — a mesh=4x4,8x8 sweep end-to-end through the
// cache with an interrupt and a resume.

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// TestSweepMeshAxisParse: WxH values normalize to the canonical spelling
// before dedup, arbitrary (non-preset) shapes are admitted, and degenerate
// shapes fail at parse time with the memsys diagnostic.
func TestSweepMeshAxisParse(t *testing.T) {
	s, err := core.ParseSweep("mesh= 4x4 ,8x8,16x16")
	if err != nil {
		t.Fatal(err)
	}
	if s.Axis != "mesh" {
		t.Errorf("axis %q, want mesh", s.Axis)
	}
	if want := []string{"4x4", "8x8", "16x16"}; !reflect.DeepEqual(s.Values, want) {
		t.Errorf("values %v, want %v", s.Values, want)
	}
	// Non-preset shapes parse too: the axis normalizes any valid WxH, the
	// presets are only the enumerable catalog floor.
	if s2, err := core.ParseSweep("mesh=2x8,4x4"); err != nil || s2.Values[0] != "2x8" {
		t.Errorf("non-preset mesh shape: values %v, err %v", s2, err)
	}
	for _, c := range []struct{ spec, want string }{
		{"mesh=4x4", "needs at least 2"},
		{"mesh=04x04,4x4", "duplicate point"}, // normalized before dedup
		{"mesh=0x4,4x4", ">= 1"},
		{"mesh=3x,4x4", "not WxH"},
		{"mesh=1x1,4x4", "no links"},
	} {
		if _, err := core.ParseSweep(c.spec); err == nil {
			t.Errorf("ParseSweep(%q): no error, want %q", c.spec, c.want)
		} else if !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSweep(%q): error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

// TestSweepMeshAxisConflictAndApply: the mesh axis owns the MeshWidth/
// MeshHeight pair — pinned dims in the base options are rejected, and each
// point lands its parsed dimensions on the right fields.
func TestSweepMeshAxisConflictAndApply(t *testing.T) {
	s, err := core.ParseSweep("mesh=4x4,8x8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PointOptions(core.MatrixOptions{MeshWidth: 16, MeshHeight: 16}); err == nil {
		t.Error("mesh sweep with pinned dimensions in base options: no error")
	}
	pts, err := s.PointOptions(core.MatrixOptions{Size: workloads.Tiny})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 ||
		pts[0].MeshWidth != 4 || pts[0].MeshHeight != 4 ||
		pts[1].MeshWidth != 8 || pts[1].MeshHeight != 8 {
		t.Fatalf("mesh sweep points: %+v", pts)
	}
}

// TestPointKeyIncludesMeshDims: the fabric geometry changes every route
// length, so it must be part of the cache preimage — two shapes must never
// collide on one key, and the dims must be visible in the preimage text.
func TestPointKeyIncludesMeshDims(t *testing.T) {
	base := core.MatrixOptions{Size: workloads.Tiny, Benchmarks: []string{"FFT"}, Protocols: []string{"MESI"}}
	k4, err := core.PointKeyFor(base)
	if err != nil {
		t.Fatal(err)
	}
	wide := base
	wide.MeshWidth, wide.MeshHeight = 8, 8
	wide.Threads = 16 // the default thread count, spelled out: dims are the only difference
	k8, err := core.PointKeyFor(wide)
	if err != nil {
		t.Fatal(err)
	}
	if k4.Hash == k8.Hash {
		t.Error("4x4 and 8x8 configurations share a cache key")
	}
	if !strings.Contains(k4.Preimage, "mesh=4x4\n") {
		t.Errorf("default preimage does not record mesh=4x4:\n%s", k4.Preimage)
	}
	if !strings.Contains(k8.Preimage, "mesh=8x8\n") {
		t.Errorf("8x8 preimage does not record mesh=8x8:\n%s", k8.Preimage)
	}
}

// TestMatrixMeshValidation: half-set dims and a thread count exceeding the
// tile count fail loudly before any simulation, naming the shape.
func TestMatrixMeshValidation(t *testing.T) {
	opt := core.MatrixOptions{Size: workloads.Tiny, Benchmarks: []string{"FFT"}, Protocols: []string{"MESI"}}

	half := opt
	half.MeshWidth = 8 // height left unset
	if _, err := core.RunMatrix(half); err == nil {
		t.Error("half-set mesh dimensions ran without error")
	} else if !strings.Contains(err.Error(), "both MeshWidth and MeshHeight") {
		t.Errorf("half-set dims error %q does not name the pair", err)
	}

	tiny := opt
	tiny.MeshWidth, tiny.MeshHeight = 2, 2
	tiny.Threads = 16 // 16 cores cannot map one-per-tile onto 4 tiles
	if _, err := core.RunMatrix(tiny); err == nil {
		t.Error("threads > tiles ran without error")
	} else if !strings.Contains(err.Error(), "threads 16 > tiles 4") {
		t.Errorf("threads-vs-tiles error %q does not quote the counts", err)
	}

	// The same shape with a fitting thread count is fine.
	tiny.Threads = 4
	if _, err := core.RunMatrix(tiny); err != nil {
		t.Errorf("2x2 mesh with 4 threads: %v", err)
	}
}

// TestSweepMeshCacheResume is the PR 8 acceptance pin: a mesh=4x4,8x8
// sweep runs end-to-end through the point cache — interrupt it after the
// first point, resume against the same cache, and the resumed result is
// deeply equal to an uninterrupted fresh run with the finished point
// served from disk under the dims-aware key.
func TestSweepMeshCacheResume(t *testing.T) {
	const spec = "mesh=4x4,8x8"
	opt := core.MatrixOptions{
		Size:       workloads.Tiny,
		Benchmarks: []string{"hotspot(t=1)"},
		Protocols:  []string{"MESI"},
		Workers:    1,
	}
	cache, err := core.OpenPointCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	partial, err := core.RunSweepOpt(ctx, opt, spec, core.SweepOptions{
		Cache: cache,
		Progress: func(ev core.SweepProgress) {
			if ev.Status == core.SweepPointDone {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(partial.Points) != 1 || partial.Points[0].Value != "4x4" {
		t.Fatalf("interrupted run completed %+v, want the 4x4 point", partial.Points)
	}

	var cachedN, simulatedN int
	resumed, err := core.RunSweepOpt(context.Background(), opt, spec, core.SweepOptions{
		Cache: cache,
		Progress: func(ev core.SweepProgress) {
			switch ev.Status {
			case core.SweepPointCached:
				cachedN++
			case core.SweepPointStarted:
				simulatedN++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cachedN != 1 || simulatedN != 1 {
		t.Errorf("resume served %d points from cache and simulated %d, want 1 and 1", cachedN, simulatedN)
	}

	fresh, err := core.RunSweepOpt(context.Background(), opt, spec, core.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Table(), fresh.Table()) {
		t.Error("resumed mesh sweep table differs from an uninterrupted fresh run")
	}
	for i := range fresh.Points {
		if !reflect.DeepEqual(resumed.Points[i].Matrix, fresh.Points[i].Matrix) {
			t.Errorf("point %s: resumed matrix differs from fresh simulation", fresh.Points[i].Value)
		}
	}
}
