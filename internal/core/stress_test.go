package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

// randProgram is a randomly generated data-race-free program: each phase
// partitions a pool of "objects" (small address blocks) among threads for
// writing, while reads may target anything written in an earlier phase or
// owned this phase. It deliberately exercises cross-phase ownership
// migration, false-sharing-shaped layouts (objects smaller than lines),
// scattered stores, and region annotations (Flex + bypass) — the paths
// where protocol races hide.
type randProgram struct {
	name     string
	threads  int
	phases   int
	objs     int
	objWords int
	foot     uint32
	regions  []memsys.Region
	ops      [][][]memsys.Op // [phase][thread]
}

func newRandProgram(seed int64) *randProgram {
	rng := rand.New(rand.NewSource(seed))
	p := &randProgram{
		name:     "stress",
		threads:  16,
		phases:   3 + rng.Intn(4),
		objs:     32 + rng.Intn(64),
		objWords: 3 + rng.Intn(10), // objects straddle lines
	}
	p.foot = uint32(p.objs*p.objWords*4+memsys.LineBytes) &^ (memsys.LineBytes - 1)
	// Two regions covering the pool: one annotated for Flex+bypass, one
	// plain, so every protocol feature is exercised.
	half := (p.foot / 2) &^ (memsys.LineBytes - 1)
	p.regions = []memsys.Region{
		{ID: 1, Name: "flexed", Base: 0, Size: half,
			StrideWords: uint16(p.objWords), CommOffsets: []uint16{0, 1}, Bypass: true},
		{ID: 2, Name: "plain", Base: half, Size: p.foot - half},
	}

	objAddr := func(o, w int) uint32 { return uint32((o*p.objWords + w) * 4) }
	p.ops = make([][][]memsys.Op, p.phases)
	for ph := 0; ph < p.phases; ph++ {
		p.ops[ph] = make([][]memsys.Op, p.threads)
		// Per phase: a subset of objects is writable, each by exactly one
		// owner; everything else is read-only for everyone. That makes
		// race-freedom a construction invariant.
		owner := make([]int, p.objs)
		writable := make([]bool, p.objs)
		for o := range owner {
			owner[o] = rng.Intn(p.threads)
			writable[o] = rng.Intn(2) == 0
		}
		for th := 0; th < p.threads; th++ {
			var ops []memsys.Op
			for n := 0; n < 20+rng.Intn(40); n++ {
				o := rng.Intn(p.objs)
				w := rng.Intn(p.objWords)
				a := objAddr(o, w)
				if int(a) >= int(p.foot) {
					continue
				}
				switch {
				case writable[o] && owner[o] == th && rng.Intn(2) == 0:
					ops = append(ops, memsys.Op{Kind: memsys.OpStore, Addr: a})
				case !writable[o] || owner[o] == th:
					ops = append(ops, memsys.Op{Kind: memsys.OpLoad, Addr: a})
				default:
					ops = append(ops, memsys.Op{Kind: memsys.OpCompute, Cycles: uint16(1 + rng.Intn(5))})
				}
			}
			p.ops[ph][th] = ops
		}
	}
	return p
}

func (p *randProgram) Name() string             { return p.name }
func (p *randProgram) Threads() int             { return p.threads }
func (p *randProgram) FootprintBytes() uint32   { return p.foot }
func (p *randProgram) Regions() []memsys.Region { return p.regions }
func (p *randProgram) Phases() int              { return p.phases }
func (p *randProgram) WarmupPhases() int        { return 1 }
func (p *randProgram) WrittenRegions(ph int) []uint8 {
	// Conservative: both regions may be written every phase.
	return []uint8{1, 2}
}
func (p *randProgram) EmitOps(ph, th int, emit func(memsys.Op)) {
	for _, op := range p.ops[ph][th] {
		emit(op)
	}
}

// verifyDRF asserts the generator's own race-freedom (belt and braces:
// the oracle depends on it).
func verifyDRF(t *testing.T, p *randProgram) {
	t.Helper()
	for ph := 0; ph < p.phases; ph++ {
		writer := map[uint32]int{}
		for th := 0; th < p.threads; th++ {
			for _, op := range p.ops[ph][th] {
				if op.Kind == memsys.OpStore {
					if w, ok := writer[op.Addr]; ok && w != th {
						t.Fatalf("generator raced: phase %d addr %#x threads %d/%d", ph, op.Addr, w, th)
					}
					writer[op.Addr] = th
				}
			}
		}
		for th := 0; th < p.threads; th++ {
			for _, op := range p.ops[ph][th] {
				if op.Kind == memsys.OpLoad {
					if w, ok := writer[op.Addr]; ok && w != th {
						t.Fatalf("generator read-write raced: phase %d addr %#x", ph, op.Addr)
					}
				}
			}
		}
	}
}

// TestStressRandomDRFPrograms runs randomly generated race-free programs
// under every protocol configuration with the load-value oracle active.
// This is the broadest race hunt in the suite: ownership migrates between
// cores at random, objects straddle lines, bypass and Flex regions mix
// with plain ones, and tiny caches force constant evictions and recalls.
func TestStressRandomDRFPrograms(t *testing.T) {
	seeds := []int64{1, 7, 42, 1337, 90210}
	if testing.Short() {
		seeds = seeds[:2]
	}
	cfg := memsys.Default().Scaled(64)
	for _, seed := range seeds {
		prog := newRandProgram(seed)
		verifyDRF(t, prog)
		for _, proto := range core.ProtocolNames() {
			res, err := core.RunOne(cfg, proto, prog)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if res.ExecCycles <= 0 {
				t.Fatalf("seed %d %s: no execution", seed, proto)
			}
		}
	}
}

// TestStressScatteredFootprint drives extreme set pressure: every object
// maps to the same L2 slice set so eviction/recall/refill paths churn.
func TestStressScatteredFootprint(t *testing.T) {
	cfg := memsys.Default().Scaled(64)
	// 40 lines, all home slice 2, all set 2 (line = 16k+2, set=(16k+2)&3=2).
	const lines = 40
	phases := make([][][]memsys.Op, 4)
	for ph := range phases {
		phases[ph] = make([][]memsys.Op, 16)
		for i := 0; i < lines; i++ {
			core := (i + ph) % 16
			addr := uint32(16*i+2) * 64
			if ph%2 == 0 {
				phases[ph][core] = append(phases[ph][core],
					memsys.Op{Kind: memsys.OpStore, Addr: addr},
					memsys.Op{Kind: memsys.OpStore, Addr: addr + 4})
			} else {
				phases[ph][core] = append(phases[ph][core],
					memsys.Op{Kind: memsys.OpLoad, Addr: addr})
			}
		}
	}
	foot := uint32(16*lines+4) * 64
	prog := &randProgram{
		name: "setstorm", threads: 16, phases: 4,
		foot:    foot,
		regions: []memsys.Region{{ID: 1, Name: "all", Base: 0, Size: foot}},
		ops:     phases,
	}
	for _, proto := range []string{"MESI", "MMemL1", "DeNovo", "DValidateL2", "DBypFull"} {
		if _, err := core.RunOne(cfg, proto, prog); err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
	}
}

// TestStoreBufferBackpressure fills MESI's 32-entry store buffer and
// verifies the driver's stall/unstall path completes with correct values.
func TestStoreBufferBackpressure(t *testing.T) {
	cfg := memsys.Default().Scaled(64)
	phases := make([][][]memsys.Op, 2)
	phases[0] = make([][]memsys.Op, 16)
	phases[1] = make([][]memsys.Op, 16)
	// One core issues 200 stores to distinct lines back-to-back: far more
	// than the buffer holds, so the driver must block and resume.
	for i := 0; i < 200; i++ {
		phases[0][3] = append(phases[0][3], memsys.Op{Kind: memsys.OpStore, Addr: uint32(i) * 64})
		phases[1][3] = append(phases[1][3], memsys.Op{Kind: memsys.OpLoad, Addr: uint32(i) * 64})
	}
	foot := uint32(200) * 64
	prog := &randProgram{
		name: "sbfull", threads: 16, phases: 2, foot: foot,
		regions: []memsys.Region{{ID: 1, Name: "all", Base: 0, Size: foot}},
		ops:     phases,
	}
	if _, err := core.RunOne(cfg, "MESI", prog); err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunOne(cfg, "MMemL1", prog); err != nil {
		t.Fatal(err)
	}
}

var _ = workloads.Tiny // keep the import available for future stress variants
