package core_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

// invariantChecker is implemented by both protocol System types.
type invariantChecker interface {
	CheckInvariants() error
}

// specResult is the measurement runSpec detaches from its simulation.
type specResult struct {
	Name       string
	ExecCycles int64
	FlitHops   [memsys.NumClasses][memsys.NumBuckets]float64
	Waste      [3][8]uint64
}

func (r *specResult) Total() float64 {
	var s float64
	for c := range r.FlitHops {
		for b := range r.FlitHops[c] {
			s += r.FlitHops[c][b]
		}
	}
	return s
}

// runSpec runs one benchmark under a registry spec with the functional
// oracle active and the protocol invariants checked at quiescence.
func runSpec(t *testing.T, spec, bench string) *specResult {
	t.Helper()
	prog := workloads.MustByName(bench, workloads.Tiny, 16)
	cfg := memsys.Default().Scaled(workloads.Tiny.ScaleDiv())
	env, err := memsys.NewEnv(cfg, prog.FootprintBytes(), prog.Regions())
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.NewProtocol(env, spec)
	if err != nil {
		t.Fatal(err)
	}
	r := core.NewRunner(env, proto, prog)
	if err := r.Run(); err != nil {
		t.Fatalf("%s/%s: %v", spec, bench, err)
	}
	if c, ok := proto.(invariantChecker); ok {
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("%s/%s: %v", spec, bench, err)
		}
	} else {
		t.Fatalf("%s: protocol does not expose invariants", spec)
	}
	return &specResult{
		Name:       proto.Name(),
		ExecCycles: r.ExecCycles(),
		FlitHops:   env.Traffic.Snapshot(),
		Waste:      env.Prof.Snapshot(),
	}
}

func TestParseProtocolCanonicalNames(t *testing.T) {
	for _, name := range core.ProtocolNames() {
		v, err := core.ParseProtocol(name)
		if err != nil {
			t.Fatalf("canonical %q rejected: %v", name, err)
		}
		if !v.Canonical {
			t.Errorf("%q not marked canonical", name)
		}
		if v.Spec != name {
			t.Errorf("%q resolved to spec %q", name, v.Spec)
		}
	}
	// The ladder's option sets decompose as documented.
	v, err := core.ParseProtocol("DBypFull")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"MemL1", "FlexL1", "ValL2", "FlexL2", "BypFull"}
	if !reflect.DeepEqual(v.Options, want) {
		t.Errorf("DBypFull options = %v, want %v", v.Options, want)
	}
}

func TestParseProtocolErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus",          // unknown base
		"DeNovo+Nope",    // unknown option
		"MESI+FlexL1",    // DeNovo-only option on the MESI family
		"MESI+ValL2",     // likewise
		"MMemL1+BypFull", // composition starts from a MESI alias
	} {
		if _, err := core.ParseProtocol(spec); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
}

// TestComposedSpecMatchesCanonical proves composition: a ladder rung
// spelled as base+options is bit-identical to its canonical alias.
func TestComposedSpecMatchesCanonical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several tiny simulations")
	}
	pairs := [][2]string{
		{"MESI+MemL1", "MMemL1"},
		{"DeNovo+FlexL1", "DFlexL1"},
		{"DeNovo+ValL2+MemL1", "DMemL1"},
	}
	for _, p := range pairs {
		a := runSpec(t, p[0], "LU")
		b := runSpec(t, p[1], "LU")
		if a.ExecCycles != b.ExecCycles || a.FlitHops != b.FlitHops || a.Waste != b.Waste {
			t.Errorf("%s and %s diverge: cycles %d vs %d, traffic %.1f vs %.1f",
				p[0], p[1], a.ExecCycles, b.ExecCycles, a.Total(), b.Total())
		}
	}
}

// TestComposedVariantsEndToEnd runs every registered composed variant
// under the functional oracle with invariants checked: the new points in
// the scenario space are real simulations, not just parseable names.
func TestComposedVariantsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several tiny simulations")
	}
	for _, spec := range core.ComposedVariants() {
		res := runSpec(t, spec, "FFT")
		if res.Total() <= 0 || res.ExecCycles <= 0 {
			t.Errorf("%s: empty result", spec)
		}
		if res.Name != spec {
			t.Errorf("%s: protocol reports name %q", spec, res.Name)
		}
	}
}

func TestRegistryInventory(t *testing.T) {
	inv := core.RegistryInventory()
	if len(inv) < 13 { // nine canonical + DBypHW + >= 3 composed
		t.Fatalf("inventory has %d entries, want >= 13", len(inv))
	}
	canonical := 0
	composed := 0
	seen := map[string]bool{}
	for _, v := range inv {
		if seen[v.Spec] {
			t.Errorf("duplicate inventory spec %q", v.Spec)
		}
		seen[v.Spec] = true
		if v.Canonical {
			canonical++
		}
		if v.Family != "MESI" && v.Family != "DeNovo" {
			t.Errorf("%s: unknown family %q", v.Spec, v.Family)
		}
	}
	for _, spec := range core.ComposedVariants() {
		if !seen[spec] {
			t.Errorf("composed variant %q missing from inventory", spec)
		}
		composed++
	}
	if canonical != 9 {
		t.Errorf("%d canonical entries, want 9", canonical)
	}
	if composed < 3 {
		t.Errorf("%d composed variants, want >= 3", composed)
	}
	// The scenario space the ISSUE targets: registered protocols x six
	// benchmarks x three topologies x three router models x three mesh
	// presets.
	if n := core.ScenarioCount(6, 3, 3, len(core.MeshPresets())); n < 1800 {
		t.Errorf("scenario space %d, want >= 1800", n)
	}
}

func TestRegistryProtocolsRunViaMatrix(t *testing.T) {
	// A composed spec flows through the matrix engine exactly like a
	// canonical name (this is what -protocols on cmd/trafficsim does).
	m, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Protocols:  []string{"MESI", "DeNovo+BypL2"},
		Benchmarks: []string{"LU"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Get("LU", "DeNovo+BypL2") == nil {
		t.Fatal("composed protocol missing from matrix")
	}
	tab, err := m.Figure("5.1a")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range tab.Rows {
		if row.Protocol == "DeNovo+BypL2" {
			found = true
		}
	}
	if !found {
		t.Fatal("composed protocol missing from figure rows")
	}
}
