package core_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

const goldenSweepPath = "testdata/golden_sweep_tiny.json"

// goldenSweepOptions is the pinned sweep configuration: a Tiny hotspot
// concentration sweep under the ladder's endpoints, parallel by default
// (the determinism test proves worker count cannot matter).
func goldenSweepOptions() (core.MatrixOptions, string) {
	return core.MatrixOptions{
		Size:      workloads.Tiny,
		Protocols: []string{"MESI", "DeNovo", "DBypFull"},
	}, "hotspot(t=1,2,4,8,16)"
}

// TestGoldenTinySweep pins the assembled sweep table the same way
// TestGoldenTinyMatrix pins the figure tables: the Tiny hotspot sweep must
// reproduce the checked-in curve table exactly, at any worker count.
// Intentional model changes regenerate the snapshot with:
//
//	go test ./internal/core -run TestGoldenTinySweep -update
func TestGoldenTinySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("5-point sweep x 3 protocols is slow; run without -short")
	}
	opt, spec := goldenSweepOptions()
	res, err := core.RunSweep(opt, spec)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Table()

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenSweepPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenSweepPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d rows)", goldenSweepPath, len(got.Rows))
		return
	}

	raw, err := os.ReadFile(goldenSweepPath)
	if err != nil {
		t.Fatalf("%v — generate the snapshot with -update", err)
	}
	var want core.SweepTable
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden sweep file: %v", err)
	}
	// Round-trip the measured table through JSON so both sides compare
	// post-serialization (identical float64 round-trips, normalized nils).
	buf, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var gotRT core.SweepTable
	if err := json.Unmarshal(buf, &gotRT); err != nil {
		t.Fatal(err)
	}

	if gotRT.Spec != want.Spec || gotRT.Axis != want.Axis {
		t.Errorf("sweep identity drifted: got (%q, %q), want (%q, %q)", gotRT.Spec, gotRT.Axis, want.Spec, want.Axis)
	}
	if !reflect.DeepEqual(gotRT.Columns, want.Columns) {
		t.Fatalf("columns drifted: got %v, want %v", gotRT.Columns, want.Columns)
	}
	if len(gotRT.Rows) != len(want.Rows) {
		t.Fatalf("%d rows, golden has %d", len(gotRT.Rows), len(want.Rows))
	}
	for i := range want.Rows {
		if !reflect.DeepEqual(want.Rows[i], gotRT.Rows[i]) {
			t.Errorf("row %d (%s/%s/%s) drifted:\nwant %v\ngot  %v",
				i, want.Rows[i].Point, want.Rows[i].Bench, want.Rows[i].Protocol,
				want.Rows[i].Values, gotRT.Rows[i].Values)
		}
	}
}
