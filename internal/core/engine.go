package core

import (
	"context"
)

// The sharded experiment engine: every (benchmark, protocol) cell of a
// matrix is an independent simulation with its own Env (kernel, mesh,
// caches, DRAM), so cells can run on as many OS threads as the host
// offers. The discrete-event kernel is fully deterministic and workload
// Programs are immutable after construction, which makes the parallel
// matrix bit-identical to the serial one — only wall-clock time changes.
// Planning (planMatrix) and the shared worker pool (runPlans) live in
// scheduler.go, where a sweep feeds many plans through the same pool.

// matrixCell indexes one simulation job in matrix order (benchmark-major,
// the order the old serial double loop used).
type matrixCell struct{ bench, proto int }

// RunMatrix runs the full cross product used by Figures 5.1-5.3: each
// benchmark under each protocol, with caches scaled to match the input
// scale (see DESIGN.md). It is RunMatrixContext without cancellation.
func RunMatrix(opt MatrixOptions) (*Matrix, error) {
	return RunMatrixContext(context.Background(), opt)
}

// RunMatrixContext runs the matrix across opt.Workers concurrent
// simulations (0 = one per available CPU) and assembles results in matrix
// order, so the output is deeply equal to a Workers: 1 run. Cancelling ctx
// stops the engine at the next cell boundary; cells already in flight
// finish first (one cell at tiny scale is well under a second).
func RunMatrixContext(ctx context.Context, opt MatrixOptions) (*Matrix, error) {
	p, err := planMatrix(opt)
	if err != nil {
		return nil, err
	}
	var hooks poolHooks
	if opt.Progress != nil {
		hooks.cellStarted = func(p *matrixPlan, cell int) {
			c := p.cells[cell]
			opt.Progress(p.opt.Benchmarks[c.bench], p.opt.Protocols[c.proto])
		}
	}
	if err := runPlans(ctx, []*matrixPlan{p}, opt.Workers, hooks); err != nil {
		return nil, err
	}
	return p.assemble()
}
