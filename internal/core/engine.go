package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/memsys"
	"repro/internal/workloads"
)

// The sharded experiment engine: every (benchmark, protocol) cell of a
// matrix is an independent simulation with its own Env (kernel, mesh,
// caches, DRAM), so cells can run on as many OS threads as the host
// offers. The discrete-event kernel is fully deterministic and workload
// Programs are immutable after construction, which makes the parallel
// matrix bit-identical to the serial one — only wall-clock time changes.

// matrixCell indexes one simulation job in matrix order (benchmark-major,
// the order the old serial double loop used).
type matrixCell struct{ bench, proto int }

// RunMatrix runs the full cross product used by Figures 5.1-5.3: each
// benchmark under each protocol, with caches scaled to match the input
// scale (see DESIGN.md). It is RunMatrixContext without cancellation.
func RunMatrix(opt MatrixOptions) (*Matrix, error) {
	return RunMatrixContext(context.Background(), opt)
}

// RunMatrixContext runs the matrix across opt.Workers concurrent
// simulations (0 = one per available CPU) and assembles results in matrix
// order, so the output is deeply equal to a Workers: 1 run. Cancelling ctx
// stops the engine at the next cell boundary; cells already in flight
// finish first (one cell at tiny scale is well under a second).
func RunMatrixContext(ctx context.Context, opt MatrixOptions) (*Matrix, error) {
	if opt.Threads == 0 {
		opt.Threads = 16
	}
	if opt.Protocols == nil {
		opt.Protocols = ProtocolNames()
	} else {
		// Normalize specs up front so whitespace spellings of one
		// composition share a matrix key (and unknown specs fail before
		// any cell runs). Two spellings of one configuration would
		// simulate the same cells twice and print duplicate figure rows,
		// so duplicates are an error, not a silent double-run.
		normalized := make([]string, len(opt.Protocols))
		seen := make(map[string]string, len(opt.Protocols))
		for i, spec := range opt.Protocols {
			v, err := ParseProtocol(spec)
			if err != nil {
				return nil, err
			}
			if prev, dup := seen[v.Spec]; dup {
				return nil, fmt.Errorf("core: protocols %q and %q are the same configuration %q", prev, spec, v.Spec)
			}
			seen[v.Spec] = spec
			normalized[i] = v.Spec
		}
		opt.Protocols = normalized
	}
	var benchSpecs []*workloads.Spec
	if opt.Benchmarks == nil {
		opt.Benchmarks = workloads.Names()
	} else {
		// Normalize workload specs like protocol specs: spelling variants
		// of one configuration share a matrix key, and unknown benchmarks
		// fail loudly before any cell runs (the old path silently skipped
		// them via a nil program). Duplicate canonical specs are an error
		// for the same reason as duplicate protocols.
		normalized := make([]string, len(opt.Benchmarks))
		benchSpecs = make([]*workloads.Spec, len(opt.Benchmarks))
		seen := make(map[string]string, len(opt.Benchmarks))
		for i, spec := range opt.Benchmarks {
			s, err := workloads.ParseSpec(spec)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			if prev, dup := seen[s.Canonical]; dup {
				return nil, fmt.Errorf("core: benchmarks %q and %q are the same workload %q", prev, spec, s.Canonical)
			}
			seen[s.Canonical] = spec
			normalized[i] = s.Canonical
			benchSpecs[i] = s
		}
		opt.Benchmarks = normalized
	}

	cfg := memsys.Default().Scaled(opt.Size.ScaleDiv())
	if opt.Topology != "" {
		cfg.Topology = opt.Topology
	}
	if opt.Router != "" {
		cfg.Router = opt.Router
	}
	if opt.VCs != 0 {
		cfg.VCs = opt.VCs
	}
	if opt.VCDepth != 0 {
		cfg.VCDepth = opt.VCDepth
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Construct each workload once per benchmark and share it across the
	// protocol cells: EmitOps is a pure function of (phase, thread) over
	// state frozen at construction, so concurrent readers are safe.
	progs := make([]memsys.Program, len(opt.Benchmarks))
	for i, bench := range opt.Benchmarks {
		var err error
		if benchSpecs != nil {
			progs[i], err = benchSpecs[i].Build(opt.Size, opt.Threads)
		} else {
			progs[i], err = workloads.ByName(bench, opt.Size, opt.Threads)
		}
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}

	cells := make([]matrixCell, 0, len(opt.Benchmarks)*len(opt.Protocols))
	for bi := range opt.Benchmarks {
		for pi := range opt.Protocols {
			cells = append(cells, matrixCell{bi, pi})
		}
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]*Result, len(cells))
	errs := make([]error, len(cells))
	runCell := func(i int) {
		c := cells[i]
		res, err := RunOne(cfg, opt.Protocols[c.proto], progs[c.bench])
		if err != nil {
			errs[i] = fmt.Errorf("core: %s/%s: %w",
				opt.Protocols[c.proto], opt.Benchmarks[c.bench], err)
			return
		}
		results[i] = res
	}

	if workers <= 1 {
		// Serial reference mode: cells run in matrix order on the calling
		// goroutine, exactly like the original double loop.
		for i := range cells {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if opt.Progress != nil {
				c := cells[i]
				opt.Progress(opt.Benchmarks[c.bench], opt.Protocols[c.proto])
			}
			if runCell(i); errs[i] != nil {
				return nil, errs[i]
			}
		}
	} else {
		var (
			cursor atomic.Int64 // next cell to claim
			failed atomic.Bool  // a cell errored: stop claiming new work
			progMu sync.Mutex   // serializes the Progress callback
			wg     sync.WaitGroup
		)
		cursor.Store(-1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(cursor.Add(1))
					if i >= len(cells) || failed.Load() || ctx.Err() != nil {
						return
					}
					if opt.Progress != nil {
						c := cells[i]
						progMu.Lock()
						opt.Progress(opt.Benchmarks[c.bench], opt.Protocols[c.proto])
						progMu.Unlock()
					}
					if runCell(i); errs[i] != nil {
						failed.Store(true)
					}
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err // first error in matrix order, deterministically
			}
		}
	}

	m := &Matrix{
		Size:       opt.Size,
		Topology:   cfg.Topology,
		Router:     cfg.Router,
		Benchmarks: opt.Benchmarks,
		Protocols:  opt.Protocols,
		Results:    make(map[string]map[string]*Result, len(opt.Benchmarks)),
	}
	for i, c := range cells {
		bench := opt.Benchmarks[c.bench]
		row := m.Results[bench]
		if row == nil {
			row = make(map[string]*Result, len(opt.Protocols))
			m.Results[bench] = row
		}
		row[opt.Protocols[c.proto]] = results[i]
	}
	return m, nil
}
