package core_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

var updateGolden = flag.Bool("update", false,
	"rewrite internal/core/testdata/golden_tiny.json from the current model")

// goldenFigureIDs are the snapshotted paper figures. The congestion table
// ("net") is deliberately excluded: it is new telemetry, not a pinned
// paper figure, and may grow columns without invalidating the model.
var goldenFigureIDs = []string{"5.1a", "5.1b", "5.1c", "5.1d", "5.2", "5.3a", "5.3b", "5.3c"}

// goldenFile is the serialized snapshot of every figure the full Tiny
// matrix produces, plus the headline summary.
type goldenFile struct {
	Figures map[string]*core.Table
	Summary *core.Summary
}

const goldenPath = "testdata/golden_tiny.json"

// TestGoldenTinyMatrix is the golden-figure regression suite: the full
// 6-benchmark x 9-protocol Tiny matrix must reproduce the checked-in
// figure tables and summary exactly, field for field. Any model change
// that shifts a figure — an accidental refactor drift as much as a real
// protocol change — fails here; intentional changes regenerate the
// snapshot with:
//
//	go test ./internal/core -run TestGoldenTinyMatrix -update
func TestGoldenTinyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full 6x9 matrix is slow; run without -short")
	}
	m, err := core.RunMatrix(core.MatrixOptions{Size: workloads.Tiny})
	if err != nil {
		t.Fatal(err)
	}
	got := goldenFile{
		Figures: make(map[string]*core.Table, len(goldenFigureIDs)),
		Summary: m.Summarize(),
	}
	for _, id := range goldenFigureIDs {
		tab, err := m.Figure(id)
		if err != nil {
			t.Fatal(err)
		}
		got.Figures[id] = tab
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(&got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d figures)", goldenPath, len(got.Figures))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v — generate the snapshot with -update", err)
	}
	var want goldenFile
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	// Round-trip the measured state through JSON so both sides compare
	// post-serialization (identical float64 round-trips, normalized nils).
	buf, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	var gotRT goldenFile
	if err := json.Unmarshal(buf, &gotRT); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want.Summary, gotRT.Summary) {
		t.Errorf("summary drifted from golden:\nwant %+v\ngot  %+v", want.Summary, gotRT.Summary)
	}
	for _, id := range goldenFigureIDs {
		w, g := want.Figures[id], gotRT.Figures[id]
		if w == nil {
			t.Errorf("figure %s missing from golden file — regenerate with -update", id)
			continue
		}
		if reflect.DeepEqual(w, g) {
			continue
		}
		// Localize the drift for the failure message.
		if !reflect.DeepEqual(w.Columns, g.Columns) {
			t.Errorf("figure %s: columns drifted: want %v, got %v", id, w.Columns, g.Columns)
			continue
		}
		if len(w.Rows) != len(g.Rows) {
			t.Errorf("figure %s: %d rows, golden has %d", id, len(g.Rows), len(w.Rows))
			continue
		}
		for i := range w.Rows {
			if !reflect.DeepEqual(w.Rows[i], g.Rows[i]) {
				t.Errorf("figure %s row %d (%s/%s) drifted:\nwant %v\ngot  %v",
					id, i, w.Rows[i].Bench, w.Rows[i].Protocol, w.Rows[i].Values, g.Rows[i].Values)
			}
		}
	}
}
