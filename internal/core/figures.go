package core

import (
	"fmt"
	"strings"

	"repro/internal/memsys"
	"repro/internal/waste"
)

// Table is a rendered figure: one row per (benchmark, protocol) with
// stacked category values normalized to the benchmark's MESI baseline
// (percent), mirroring the paper's stacked bar charts. Raw tables (the
// congestion telemetry) carry unnormalized values instead and render
// without the percent marks and the Total column.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Raw     bool
	Rows    []TableRow
}

// TableRow is one bar of a figure.
type TableRow struct {
	Bench    string
	Protocol string
	Values   []float64 // percent of the MESI baseline
}

// Total returns the stacked height of the row.
func (r *TableRow) Total() float64 {
	var s float64
	for _, v := range r.Values {
		s += v
	}
	return s
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	// The protocol column fits the longest registry spec (composed
	// variants like DValidateL2+FlexL1), not just the canonical names.
	fmt.Fprintf(&b, "%-14s %-18s", "benchmark", "protocol")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %14s", c)
	}
	if t.Raw {
		b.WriteString("\n")
	} else {
		fmt.Fprintf(&b, " %9s\n", "Total")
	}
	prev := ""
	for _, r := range t.Rows {
		bench := r.Bench
		if bench == prev {
			bench = ""
		} else if prev != "" {
			b.WriteString("\n")
		}
		prev = r.Bench
		fmt.Fprintf(&b, "%-14s %-18s", bench, r.Protocol)
		for _, v := range r.Values {
			if t.Raw {
				fmt.Fprintf(&b, " %14.2f", v)
			} else {
				fmt.Fprintf(&b, " %13.1f%%", v)
			}
		}
		if t.Raw {
			b.WriteString("\n")
		} else {
			fmt.Fprintf(&b, " %8.1f%%\n", r.Total())
		}
	}
	return b.String()
}

func (m *Matrix) eachRow(fill func(res, base *Result) []float64) []TableRow {
	var rows []TableRow
	for _, bench := range m.Benchmarks {
		base := m.Get(bench, "MESI")
		if base == nil {
			base = m.Get(bench, m.Protocols[0])
		}
		for _, proto := range m.Protocols {
			res := m.Get(bench, proto)
			if res == nil {
				continue
			}
			rows = append(rows, TableRow{Bench: bench, Protocol: proto, Values: fill(res, base)})
		}
	}
	return rows
}

func pct(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return v / base * 100
}

// Fig51a builds Figure 5.1a: overall network traffic (flit-hops) broken
// into LD/ST/WB/Overhead, normalized to MESI.
func (m *Matrix) Fig51a() *Table {
	t := &Table{
		ID:      "Fig 5.1a",
		Title:   "Overall network traffic (normalized flit-hops)",
		Columns: []string{"LD", "ST", "WB", "Overhead"},
	}
	t.Rows = m.eachRow(func(res, base *Result) []float64 {
		total := base.Total()
		return []float64{
			pct(res.ClassTotal(memsys.ClassLD), total),
			pct(res.ClassTotal(memsys.ClassST), total),
			pct(res.ClassTotal(memsys.ClassWB), total),
			pct(res.ClassTotal(memsys.ClassOVH), total),
		}
	})
	return t
}

var ldStColumns = []string{
	"Req Ctl", "Resp Ctl", "Resp L1 Used", "Resp L1 Waste", "Resp L2 Used", "Resp L2 Waste",
}

var ldStBuckets = []memsys.Bucket{
	memsys.BReqCtl, memsys.BRespCtl,
	memsys.BRespL1Used, memsys.BRespL1Waste,
	memsys.BRespL2Used, memsys.BRespL2Waste,
}

func (m *Matrix) classBreakdown(id, title string, class memsys.Class) *Table {
	t := &Table{ID: id, Title: title, Columns: ldStColumns}
	t.Rows = m.eachRow(func(res, base *Result) []float64 {
		total := base.ClassTotal(class)
		vals := make([]float64, len(ldStBuckets))
		for i, b := range ldStBuckets {
			vals[i] = pct(res.FlitHops[class][b], total)
		}
		return vals
	})
	return t
}

// Fig51b builds Figure 5.1b: load traffic breakdown, normalized to MESI's
// load traffic.
func (m *Matrix) Fig51b() *Table {
	return m.classBreakdown("Fig 5.1b", "LD network traffic breakdown", memsys.ClassLD)
}

// Fig51c builds Figure 5.1c: store traffic breakdown.
func (m *Matrix) Fig51c() *Table {
	return m.classBreakdown("Fig 5.1c", "ST network traffic breakdown", memsys.ClassST)
}

// Fig51d builds Figure 5.1d: writeback traffic breakdown.
func (m *Matrix) Fig51d() *Table {
	t := &Table{
		ID:      "Fig 5.1d",
		Title:   "WB network traffic breakdown",
		Columns: []string{"Control", "L2 Used", "L2 Waste", "Mem Used", "Mem Waste"},
	}
	buckets := []memsys.Bucket{
		memsys.BWBCtl, memsys.BWBL2Used, memsys.BWBL2Waste,
		memsys.BWBMemUsed, memsys.BWBMemWaste,
	}
	t.Rows = m.eachRow(func(res, base *Result) []float64 {
		total := base.ClassTotal(memsys.ClassWB)
		vals := make([]float64, len(buckets))
		for i, b := range buckets {
			vals[i] = pct(res.FlitHops[memsys.ClassWB][b], total)
		}
		return vals
	})
	return t
}

// Fig52 builds Figure 5.2: execution time broken into Compute / On-chip
// Hit / From MC / To MC / Mem / Sync, normalized to MESI.
func (m *Matrix) Fig52() *Table {
	t := &Table{
		ID:      "Fig 5.2",
		Title:   "Execution time (normalized)",
		Columns: []string{"Compute", "On-chip Hit", "From MC", "To MC", "Mem", "Sync"},
	}
	t.Rows = m.eachRow(func(res, base *Result) []float64 {
		total := float64(base.Time.Total())
		return []float64{
			pct(float64(res.Time.Busy), total),
			pct(float64(res.Time.OnChip), total),
			pct(float64(res.Time.FromMC), total),
			pct(float64(res.Time.ToMC), total),
			pct(float64(res.Time.Mem), total),
			pct(float64(res.Time.Sync), total),
		}
	})
	return t
}

// fetchWaste builds a Figure 5.3 panel: words fetched into a level,
// partitioned by waste category, normalized to MESI.
func (m *Matrix) fetchWaste(id, title string, level waste.Level, withExcess bool) *Table {
	cats := []waste.Category{
		waste.Used, waste.Fetch, waste.Write, waste.Invalidate, waste.Evict, waste.Unevicted,
	}
	cols := []string{"Used", "Fetch", "Write", "Invalidate", "Evict", "Unevicted"}
	if withExcess {
		cats = append(cats, waste.Excess)
		cols = append(cols, "Excess")
	}
	t := &Table{ID: id, Title: title, Columns: cols}
	t.Rows = m.eachRow(func(res, base *Result) []float64 {
		total := float64(base.WasteTotal(level))
		vals := make([]float64, len(cats))
		for i, c := range cats {
			vals[i] = pct(float64(res.Waste[level][c]), total)
		}
		return vals
	})
	return t
}

// Fig53a builds Figure 5.3a: L1 fetch waste.
func (m *Matrix) Fig53a() *Table {
	return m.fetchWaste("Fig 5.3a", "Words fetched into the L1 by waste category", waste.LevelL1, false)
}

// Fig53b builds Figure 5.3b: L2 fetch waste.
func (m *Matrix) Fig53b() *Table {
	return m.fetchWaste("Fig 5.3b", "Words fetched into the L2 (from memory) by waste category", waste.LevelL2, false)
}

// Fig53c builds Figure 5.3c: memory fetch waste, including the Excess
// waste the L2 Flex optimization drops at the memory controller.
func (m *Matrix) Fig53c() *Table {
	return m.fetchWaste("Fig 5.3c", "Words fetched from memory by waste category", waste.LevelMem, true)
}

// FigCongestion builds the congestion-telemetry table (not a paper
// figure): for each cell, the mean and worst packet latency over the
// measured window, the mean and hottest directed-link utilization
// (percent of cycles busy), the peak buffer occupancy (input-VC flits
// under "vc", local-queue flits under "deflection"), and the deflected
// link traversals (nonzero only under "deflection"). Values are raw, not
// normalized to MESI — latencies are only comparable within one router
// model, which the title records.
func (m *Matrix) FigCongestion() *Table {
	router := m.Router
	if router == "" {
		router = "ideal"
	}
	t := &Table{
		ID:      "Net",
		Title:   fmt.Sprintf("Congestion telemetry (router=%s, topology=%s)", router, m.Topology),
		Columns: []string{"Mean Lat", "Max Lat", "Link Util%", "Max Util%", "Peak VC", "Defl Hops"},
		Raw:     true,
	}
	t.Rows = m.eachRow(func(res, base *Result) []float64 {
		n := res.Net
		return []float64{
			n.LatencyMean,
			float64(n.LatencyMax),
			n.LinkUtilMean * 100,
			n.LinkUtilMax * 100,
			float64(n.PeakVCOccupancy),
			float64(n.DeflectedHops),
		}
	})
	return t
}

// figureKey normalizes a figure id to its canonical form, or returns ""
// for unknown ids.
func figureKey(id string) string {
	switch strings.ToLower(strings.TrimSpace(id)) {
	case "5.1a", "fig5.1a":
		return "5.1a"
	case "5.1b", "fig5.1b":
		return "5.1b"
	case "5.1c", "fig5.1c":
		return "5.1c"
	case "5.1d", "fig5.1d":
		return "5.1d"
	case "5.2", "fig5.2":
		return "5.2"
	case "5.3a", "fig5.3a":
		return "5.3a"
	case "5.3b", "fig5.3b":
		return "5.3b"
	case "5.3c", "fig5.3c":
		return "5.3c"
	case "net", "congestion":
		return "net"
	}
	return ""
}

// ValidFigureID rejects unknown figure ids with the known list, so CLIs
// can fail fast before paying for a matrix run.
func ValidFigureID(id string) error {
	if figureKey(id) == "" {
		return fmt.Errorf("core: unknown figure %q (figures: %s)", id, strings.Join(FigureIDs(), ", "))
	}
	return nil
}

// Figure builds a figure table by the paper's figure id.
func (m *Matrix) Figure(id string) (*Table, error) {
	switch figureKey(id) {
	case "5.1a":
		return m.Fig51a(), nil
	case "5.1b":
		return m.Fig51b(), nil
	case "5.1c":
		return m.Fig51c(), nil
	case "5.1d":
		return m.Fig51d(), nil
	case "5.2":
		return m.Fig52(), nil
	case "5.3a":
		return m.Fig53a(), nil
	case "5.3b":
		return m.Fig53b(), nil
	case "5.3c":
		return m.Fig53c(), nil
	case "net":
		return m.FigCongestion(), nil
	}
	return nil, fmt.Errorf("core: unknown figure %q (figures: %s)", id, strings.Join(FigureIDs(), ", "))
}

// FigureIDs lists the reproducible figure ids: the paper's eight figures
// plus the congestion-telemetry table.
func FigureIDs() []string {
	return []string{"5.1a", "5.1b", "5.1c", "5.1d", "5.2", "5.3a", "5.3b", "5.3c", "net"}
}

// Summary holds the paper's headline averages (§5.1, §5.2.4, §7) as
// measured by a matrix, with the paper's own values for comparison.
type Summary struct {
	// Average traffic reductions (fraction, e.g. 0.395 = 39.5%).
	TrafficDBypFullVsMESI    float64 // paper: 0.395
	TrafficDBypFullVsMMemL1  float64 // paper: 0.352
	TrafficDBypFullVsDFlexL1 float64 // paper: 0.189
	TrafficDeNovoVsMESI      float64 // paper: 0.139
	TrafficMMemL1VsMESI      float64 // paper: 0.062
	// Average execution-time reductions.
	TimeDBypFullVsMESI   float64 // paper: 0.105
	TimeDBypFullVsMMemL1 float64 // paper: 0.071
	TimeMMemL1VsMESI     float64 // paper: 0.038
	// Remaining waste share of DBypFull traffic. paper: 0.088
	DBypFullWasteShare float64
	// MESI overhead share of total traffic. paper: 0.136
	MESIOverheadShare float64
	// MESI overhead split (fractions of overhead). paper: 0.653/0.261/0.044/0.043
	MESIOverheadUnblock float64
	MESIOverheadWBCtl   float64
	MESIOverheadInval   float64
	MESIOverheadAck     float64
}

// avgReduction averages 1 - a/b across benchmarks for a metric.
func (m *Matrix) avgReduction(protoA, protoB string, metric func(*Result) float64) float64 {
	var sum float64
	n := 0
	for _, bench := range m.Benchmarks {
		a, b := m.Get(bench, protoA), m.Get(bench, protoB)
		if a == nil || b == nil || metric(b) == 0 {
			continue
		}
		sum += 1 - metric(a)/metric(b)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func (m *Matrix) avgOf(proto string, metric func(*Result) float64) float64 {
	var sum float64
	n := 0
	for _, bench := range m.Benchmarks {
		if r := m.Get(bench, proto); r != nil {
			sum += metric(r)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Summarize computes the headline averages from a full matrix.
func (m *Matrix) Summarize() *Summary {
	traffic := func(r *Result) float64 { return r.Total() }
	time := func(r *Result) float64 { return float64(r.ExecCycles) }
	s := &Summary{
		TrafficDBypFullVsMESI:    m.avgReduction("DBypFull", "MESI", traffic),
		TrafficDBypFullVsMMemL1:  m.avgReduction("DBypFull", "MMemL1", traffic),
		TrafficDBypFullVsDFlexL1: m.avgReduction("DBypFull", "DFlexL1", traffic),
		TrafficDeNovoVsMESI:      m.avgReduction("DeNovo", "MESI", traffic),
		TrafficMMemL1VsMESI:      m.avgReduction("MMemL1", "MESI", traffic),
		TimeDBypFullVsMESI:       m.avgReduction("DBypFull", "MESI", time),
		TimeDBypFullVsMMemL1:     m.avgReduction("DBypFull", "MMemL1", time),
		TimeMMemL1VsMESI:         m.avgReduction("MMemL1", "MESI", time),
		DBypFullWasteShare:       m.avgOf("DBypFull", func(r *Result) float64 { return r.WasteShare }),
	}
	s.MESIOverheadShare = m.avgOf("MESI", func(r *Result) float64 {
		t := r.Total()
		if t == 0 {
			return 0
		}
		return r.ClassTotal(memsys.ClassOVH) / t
	})
	var unb, wbc, inv, ack, ovh float64
	for _, bench := range m.Benchmarks {
		if r := m.Get(bench, "MESI"); r != nil {
			unb += r.FlitHops[memsys.ClassOVH][memsys.BOvhUnblock]
			wbc += r.FlitHops[memsys.ClassOVH][memsys.BOvhWBCtl]
			inv += r.FlitHops[memsys.ClassOVH][memsys.BOvhInval]
			ack += r.FlitHops[memsys.ClassOVH][memsys.BOvhAck]
			ovh += r.ClassTotal(memsys.ClassOVH)
		}
	}
	if ovh > 0 {
		s.MESIOverheadUnblock = unb / ovh
		s.MESIOverheadWBCtl = wbc / ovh
		s.MESIOverheadInval = inv / ovh
		s.MESIOverheadAck = ack / ovh
	}
	return s
}

// String renders the summary as paper-vs-measured lines.
func (s *Summary) String() string {
	var b strings.Builder
	line := func(name string, measured, paper float64) {
		fmt.Fprintf(&b, "%-42s measured %6.1f%%   paper %6.1f%%\n", name, measured*100, paper*100)
	}
	b.WriteString("Headline averages (paper §5.1, §5.2.4, §7):\n")
	line("traffic: DBypFull vs MESI", s.TrafficDBypFullVsMESI, 0.395)
	line("traffic: DBypFull vs MMemL1", s.TrafficDBypFullVsMMemL1, 0.352)
	line("traffic: DBypFull vs DFlexL1", s.TrafficDBypFullVsDFlexL1, 0.189)
	line("traffic: DeNovo vs MESI", s.TrafficDeNovoVsMESI, 0.139)
	line("traffic: MMemL1 vs MESI", s.TrafficMMemL1VsMESI, 0.062)
	line("exec time: DBypFull vs MESI", s.TimeDBypFullVsMESI, 0.105)
	line("exec time: DBypFull vs MMemL1", s.TimeDBypFullVsMMemL1, 0.071)
	line("exec time: MMemL1 vs MESI", s.TimeMMemL1VsMESI, 0.038)
	line("DBypFull remaining waste share", s.DBypFullWasteShare, 0.088)
	line("MESI overhead share of traffic", s.MESIOverheadShare, 0.136)
	line("MESI overhead: unblock", s.MESIOverheadUnblock, 0.653)
	line("MESI overhead: WB control", s.MESIOverheadWBCtl, 0.261)
	line("MESI overhead: invalidations", s.MESIOverheadInval, 0.044)
	line("MESI overhead: acks", s.MESIOverheadAck, 0.043)
	return b.String()
}
