package core

// The content-addressed sweep-point cache. A sweep point is one fully
// resolved matrix configuration, and the registries already give every
// axis a canonical spelling (ParseProtocol and workloads.ParseSpec
// normalization, memsys defaults applied by planMatrix) — so a point has
// exactly one preimage string, the preimage hashes to exactly one key,
// and distinct canonical configurations cannot share a key by
// construction: every field of the preimage is either a fixed-vocabulary
// token or a strconv.Quote-framed spec, so no two field lists concatenate
// to the same bytes. Entries store the preimage next to the matrix and
// Load verifies it, so even an adversarial hash collision (or a tampered
// file) is detected rather than silently served.
//
// Two consequences fall out of content addressing:
//
//   - Reuse is cross-run and cross-sweep: any sweep (or rerun) whose
//     points resolve to a cached configuration is served from disk, which
//     is both the "second identical sweep simulates nothing" fast path
//     and the -resume story — a killed sweep's completed points are
//     already entries, so rerunning the same command restarts where it
//     stopped.
//   - Points that depend on state outside the configuration (trace
//     replays read a file the spec only names) are not cacheable and are
//     always simulated; pointKeyFor reports ErrUncacheable for them.
//
// Entries are written atomically (temp file + rename), so a killed run
// never leaves a truncated entry behind; a corrupt or truncated entry —
// however it got there — fails Load loudly and the caller resimulates.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// cacheModelVersion stamps every point key with the simulation model's
// generation. Bump it whenever simulated results change — i.e. whenever
// the golden snapshots are regenerated — OR whenever the preimage gains a
// field, so entries written before the field existed can never alias a
// point that pins it. v2 added the mesh dimensions.
const cacheModelVersion = 2

// ErrUncacheable marks a point whose results depend on state the
// configuration hash cannot see (a trace replay's file contents); such
// points are always simulated fresh.
var ErrUncacheable = errors.New("depends on external state, not cacheable")

// PointKey is the content address of one sweep point: the canonical
// configuration preimage and its sha256, which names the cache entry.
type PointKey struct {
	// Hash is the hex sha256 of Preimage — the entry's file name.
	Hash string
	// Preimage is the canonical configuration encoding the hash commits
	// to; Load verifies it against the stored copy.
	Preimage string
}

// pointKeyFor computes the content address of a planned point. The plan
// carries the post-normalization configuration (canonical protocol and
// workload specs, defaults resolved into cfg), so every spelling of one
// configuration reaches the same preimage.
func pointKeyFor(p *matrixPlan) (PointKey, error) {
	for _, s := range p.benchSpecs {
		if s.Name == "replay" {
			return PointKey{}, fmt.Errorf("core: %s: %w", s.Canonical, ErrUncacheable)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "repro point cache v%d\n", cacheModelVersion)
	fmt.Fprintf(&b, "size=%d\n", int(p.opt.Size))
	fmt.Fprintf(&b, "threads=%d\n", p.opt.Threads)
	fmt.Fprintf(&b, "mesh=%dx%d\n", p.cfg.MeshWidth, p.cfg.MeshHeight)
	fmt.Fprintf(&b, "topology=%s\n", p.cfg.Topology)
	fmt.Fprintf(&b, "router=%s\n", p.cfg.Router)
	fmt.Fprintf(&b, "vcs=%d\n", p.cfg.VCs)
	fmt.Fprintf(&b, "vcdepth=%d\n", p.cfg.VCDepth)
	// Specs are Quote-framed: a spec can contain commas and spaces, and
	// naive joining would let two different lists share one encoding.
	b.WriteString("benchmarks=")
	for _, s := range p.opt.Benchmarks {
		b.WriteString(strconv.Quote(s))
	}
	b.WriteString("\nprotocols=")
	for _, s := range p.opt.Protocols {
		b.WriteString(strconv.Quote(s))
	}
	b.WriteString("\n")
	pre := b.String()
	sum := sha256.Sum256([]byte(pre))
	return PointKey{Hash: hex.EncodeToString(sum[:]), Preimage: pre}, nil
}

// PointKeyFor resolves opt like the engine would (registry normalization,
// defaults applied) and returns the point's content address, or
// ErrUncacheable for configurations the cache must not serve.
func PointKeyFor(opt MatrixOptions) (PointKey, error) {
	p, err := planMatrix(opt)
	if err != nil {
		return PointKey{}, err
	}
	return pointKeyFor(p)
}

// PointCache is an on-disk, content-addressed store of completed sweep
// points: one JSON entry per PointKey, named by its hash.
type PointCache struct {
	dir string
}

// OpenPointCache opens (creating if needed) the cache directory.
func OpenPointCache(dir string) (*PointCache, error) {
	if dir == "" {
		return nil, errors.New("core: point cache needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("core: point cache: %w", err)
	}
	return &PointCache{dir: dir}, nil
}

// Dir returns the cache's directory.
func (c *PointCache) Dir() string { return c.dir }

// cacheEntry is the on-disk shape: the preimage the key commits to, and
// the point's full matrix. Matrices round-trip JSON losslessly (all
// fields exported; float64 uses shortest-round-trip formatting), which is
// what lets a cache hit be bit-identical to fresh simulation.
type cacheEntry struct {
	Preimage string
	Matrix   *Matrix
}

func (c *PointCache) path(key PointKey) string {
	return filepath.Join(c.dir, key.Hash+".json")
}

// Load returns the cached matrix for key, (nil, nil) on a miss, or an
// error when an entry exists but cannot be trusted — unreadable,
// unparsable, truncated, or holding a different configuration than the
// key commits to. Callers treat that error as loud-and-recoverable:
// report it, then resimulate.
func (c *PointCache) Load(key PointKey) (*Matrix, error) {
	raw, err := os.ReadFile(c.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("core: point cache entry %s: %w", key.Hash[:12], err)
	}
	var e cacheEntry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("core: point cache entry %s is corrupt: %v", key.Hash[:12], err)
	}
	if e.Preimage != key.Preimage {
		return nil, fmt.Errorf("core: point cache entry %s holds a different configuration (collision or tampered entry)", key.Hash[:12])
	}
	if e.Matrix == nil || e.Matrix.Results == nil {
		return nil, fmt.Errorf("core: point cache entry %s is truncated", key.Hash[:12])
	}
	return e.Matrix, nil
}

// Store writes the point's matrix under key, atomically: the entry is
// staged in a temp file and renamed into place, so a killed run leaves
// either a complete entry or none.
func (c *PointCache) Store(key PointKey, m *Matrix) error {
	buf, err := json.Marshal(cacheEntry{Preimage: key.Preimage, Matrix: m})
	if err != nil {
		return fmt.Errorf("core: point cache entry %s: %w", key.Hash[:12], err)
	}
	tmp, err := os.CreateTemp(c.dir, "."+key.Hash+".tmp-")
	if err != nil {
		return fmt.Errorf("core: point cache: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("core: point cache entry %s: %w", key.Hash[:12], err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: point cache entry %s: %w", key.Hash[:12], err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("core: point cache entry %s: %w", key.Hash[:12], err)
	}
	return nil
}
