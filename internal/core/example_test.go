package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

// ExampleRunOne runs one benchmark under one protocol configuration and
// inspects the headline quantities the paper reports.
func ExampleRunOne() {
	size := workloads.Tiny
	cfg := memsys.Default().Scaled(size.ScaleDiv())
	prog := workloads.MustByName("LU", size, 16)

	res, err := core.RunOne(cfg, "MESI", prog)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Protocol, res.Benchmark)
	fmt.Println("has traffic:", res.Total() > 0)
	fmt.Println("has exec time:", res.ExecCycles > 0)
	// Output:
	// MESI LU
	// has traffic: true
	// has exec time: true
}

// ExampleMatrix_Figure regenerates a figure table from an experiment
// matrix, exactly as cmd/trafficsim does.
func ExampleMatrix_Figure() {
	m, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Protocols:  []string{"MESI", "DBypFull"},
		Benchmarks: []string{"radix"},
	})
	if err != nil {
		panic(err)
	}
	tab, _ := m.Figure("5.1a")
	fmt.Println(tab.ID, "rows:", len(tab.Rows))
	mesi := tab.Rows[0]
	fmt.Printf("%s normalizes to %.0f%%\n", mesi.Protocol, mesi.Total())
	fmt.Println("DBypFull below MESI:", tab.Rows[1].Total() < 100)
	// Output:
	// Fig 5.1a rows: 2
	// MESI normalizes to 100%
	// DBypFull below MESI: true
}
