package core_test

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Every registry workload — benchmarks, synthetic defaults, presets —
// must run end to end under representative rungs of the protocol ladder
// with the functional oracle active, produce traffic, and never force the
// kernel to clamp a past-time event.
func TestRegistryWorkloadsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload x protocol sweep is slow; run without -short")
	}
	m, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Benchmarks: workloads.RegistryWorkloads(),
		Protocols:  []string{"MESI", "DeNovo", "DBypFull"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range m.Benchmarks {
		for _, proto := range m.Protocols {
			res := m.Get(bench, proto)
			if res == nil {
				t.Fatalf("%s/%s: missing cell", bench, proto)
			}
			if res.Total() <= 0 || res.ExecCycles <= 0 {
				t.Errorf("%s/%s: no traffic or time measured", bench, proto)
			}
			if res.KernelClamped != 0 {
				t.Errorf("%s/%s: kernel clamped %d past-time events", bench, proto, res.KernelClamped)
			}
		}
	}
	// The synthetic pattern suite must give the optimization ladder
	// traction: DeNovo's overhead collapse (no unblock/inval/ack) removes
	// traffic vs MESI on every default pattern. (DBypFull is deliberately
	// not asserted — its Bloom-guarded request bypass can pay more in NACK
	// retries than it saves under extreme sharing, which is exactly the
	// kind of workload-dependence the pattern suite exists to expose.)
	for _, pattern := range []string{"uniform", "transpose", "bitcomp", "hotspot", "neighbor", "prodcons"} {
		dn, base := m.Get(pattern, "DeNovo"), m.Get(pattern, "MESI")
		if dn.Total() >= base.Total() {
			t.Errorf("DeNovo (%0.f flit-hops) not below MESI (%0.f) on %s", dn.Total(), base.Total(), pattern)
		}
	}
}

// Figure outputs over synthetic workloads must be bit-identical at any
// worker count, like the ported benchmarks.
func TestSyntheticMatrixWorkerEquality(t *testing.T) {
	run := func(workers int) *core.Matrix {
		m, err := core.RunMatrix(core.MatrixOptions{
			Size:       workloads.Tiny,
			Benchmarks: []string{"uniform", "hotspot(t=2)", "prodcons"},
			Protocols:  []string{"MESI", "DBypFull"},
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial, parallel := run(1), run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("synthetic matrix diverges between serial and parallel runs")
	}
	for _, id := range core.FigureIDs() {
		a, err := serial.Figure(id)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Figure(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("figure %s differs across worker counts", id)
		}
	}
}

// Spelling variants of one workload spec must collapse to one matrix key,
// and unknown specs must fail before any cell runs.
func TestMatrixNormalizesWorkloadSpecs(t *testing.T) {
	m, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Benchmarks: []string{" uniform( p = 0.05 ) "},
		Protocols:  []string{"MESI"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Benchmarks) != 1 || m.Benchmarks[0] != "uniform" {
		t.Fatalf("benchmarks = %v, want the canonical [uniform]", m.Benchmarks)
	}
	res := m.Get("uniform", "MESI")
	if res == nil || res.Benchmark != "uniform" {
		t.Fatalf("canonical cell missing or mislabeled: %+v", res)
	}
	_, err = core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Benchmarks: []string{"uniform(p=nope)"},
		Protocols:  []string{"MESI"},
	})
	if err == nil || !strings.Contains(err.Error(), "not a number") {
		t.Fatalf("malformed spec error %v does not name the failure", err)
	}
	// Two spellings of one configuration must be rejected, not silently
	// simulated twice into duplicate figure rows — on both axes.
	_, err = core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Benchmarks: []string{"uniform", "uniform(p=0.05)"},
		Protocols:  []string{"MESI"},
	})
	if err == nil || !strings.Contains(err.Error(), "same workload") {
		t.Fatalf("duplicate workload specs error = %v", err)
	}
	_, err = core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Benchmarks: []string{"FFT"},
		Protocols:  []string{"MMemL1", " MMemL1 "},
	})
	if err == nil || !strings.Contains(err.Error(), "same configuration") {
		t.Fatalf("duplicate protocol specs error = %v", err)
	}
}

func TestValidFigureID(t *testing.T) {
	for _, id := range core.FigureIDs() {
		if err := core.ValidFigureID(id); err != nil {
			t.Errorf("listed figure %q rejected: %v", id, err)
		}
	}
	for _, id := range []string{"", "9.9", "fig", "5.1e"} {
		if err := core.ValidFigureID(id); err == nil {
			t.Errorf("figure id %q accepted", id)
		}
	}
}

// The regression the Clamped counter exists for: across the full golden
// Tiny matrix under both router models, no component may schedule into
// the past. The ideal-router half piggybacks on the golden matrix shape;
// the vc router exercises the cycle-level tick pipeline.
func TestKernelNeverClampsTinyMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("three full Tiny matrices are slow; run without -short")
	}
	for _, router := range []string{"ideal", "vc", "deflection"} {
		m, err := core.RunMatrix(core.MatrixOptions{Size: workloads.Tiny, Router: router})
		if err != nil {
			t.Fatal(err)
		}
		for _, bench := range m.Benchmarks {
			for _, proto := range m.Protocols {
				if res := m.Get(bench, proto); res.KernelClamped != 0 {
					t.Errorf("router %s, %s/%s: %d events clamped to now — component scheduled into the past",
						router, bench, proto, res.KernelClamped)
				}
			}
		}
	}
}
