package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := New(32*1024, 8, 64)
	if c.Sets() != 64 || c.Assoc() != 8 || c.WordsPerLine() != 16 {
		t.Fatalf("geometry = %d sets / %d ways / %d words", c.Sets(), c.Assoc(), c.WordsPerLine())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two sets")
		}
	}()
	New(3*64*5, 5, 64)
}

func TestLookupAllocate(t *testing.T) {
	c := New(1024, 2, 64) // 8 sets
	if c.Lookup(100) != nil {
		t.Fatal("lookup hit in empty cache")
	}
	l := c.Allocate(100)
	if got := c.Lookup(100); got != l {
		t.Fatal("lookup missed allocated line")
	}
	if l.Tag != 100 || !l.Valid {
		t.Fatalf("line tag/valid = %d/%v", l.Tag, l.Valid)
	}
	if c.Occupancy() != 1 {
		t.Fatalf("occupancy = %d", c.Occupancy())
	}
	// Idempotent allocate.
	if c.Allocate(100) != l {
		t.Fatal("re-allocate did not return resident line")
	}
}

func TestLRUVictim(t *testing.T) {
	c := New(2*64, 2, 64) // 1 set, 2 ways
	a := c.Allocate(0)
	b := c.Allocate(1)
	c.Touch(a) // a now MRU; b is LRU
	v := c.Victim(2)
	if v != b {
		t.Fatal("victim is not the LRU line")
	}
	c.Allocate(2)
	if c.Lookup(1) != nil {
		t.Fatal("LRU line not evicted")
	}
	if c.Lookup(0) == nil {
		t.Fatal("MRU line wrongly evicted")
	}
	if c.Evictions != 1 {
		t.Fatalf("evictions = %d", c.Evictions)
	}
	_ = b
}

func TestVictimPrefersInvalid(t *testing.T) {
	c := New(2*64, 2, 64)
	a := c.Allocate(0)
	v := c.Victim(1)
	if v == a || v.Valid {
		t.Fatal("victim should be the invalid way")
	}
}

func TestAllocateResetsWordState(t *testing.T) {
	c := New(2*64, 2, 64)
	l := c.Allocate(0)
	l.WState[3] = 7
	l.Data[3] = 99
	l.Owner[3] = 2
	l.Inst[3] = 55
	l.State = 9
	c.Remove(l)
	l2 := c.Allocate(0)
	if l2.WState[3] != 0 || l2.Data[3] != 0 || l2.Owner[3] != 0 || l2.Inst[3] != 0 || l2.State != 0 {
		t.Fatal("Allocate did not reset line contents")
	}
}

func TestRemove(t *testing.T) {
	c := New(1024, 2, 64)
	l := c.Allocate(5)
	c.Remove(l)
	if c.Lookup(5) != nil || c.Occupancy() != 0 {
		t.Fatal("Remove left the line resident")
	}
	c.Remove(l) // double-remove is a no-op
}

func TestForEach(t *testing.T) {
	c := New(4*64, 2, 64) // 2 sets x 2 ways
	c.Allocate(0)
	c.Allocate(1)
	c.Allocate(2)
	n := 0
	c.ForEach(func(l *Line) { n++ })
	if n != 3 {
		t.Fatalf("ForEach visited %d, want 3", n)
	}
}

func TestSetConflictsOnly(t *testing.T) {
	// Lines mapping to different sets never evict each other.
	c := New(4*64, 1, 64) // 4 sets, direct-mapped
	c.Allocate(0)
	c.Allocate(1)
	c.Allocate(2)
	c.Allocate(3)
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4 (no conflicts)", c.Occupancy())
	}
	c.Allocate(4) // conflicts with 0
	if c.Lookup(0) != nil {
		t.Fatal("conflicting line not evicted")
	}
	if c.Occupancy() != 4 {
		t.Fatalf("occupancy = %d, want 4", c.Occupancy())
	}
}

// Property: the cache agrees with a reference model (map + per-set LRU
// lists) under a random stream of allocate/remove/touch operations.
func TestReferenceModelProperty(t *testing.T) {
	type ref struct {
		order []uint32 // resident line addrs per set, LRU first
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const sets, ways = 4, 2
		c := New(sets*ways*64, ways, 64)
		refs := make([]ref, sets)
		find := func(r *ref, a uint32) int {
			for i, x := range r.order {
				if x == a {
					return i
				}
			}
			return -1
		}
		for op := 0; op < 400; op++ {
			addr := uint32(rng.Intn(16))
			s := addr % sets
			r := &refs[s]
			switch rng.Intn(3) {
			case 0: // allocate
				if i := find(r, addr); i == -1 {
					if len(r.order) == ways { // evict LRU
						victim := r.order[0]
						r.order = r.order[1:]
						if c.Lookup(victim) == nil {
							return false
						}
					}
					r.order = append(r.order, addr)
				} else { // already resident: MRU
					r.order = append(append(r.order[:i:i], r.order[i+1:]...), addr)
				}
				c.Allocate(addr)
			case 1: // touch if resident
				if l := c.Lookup(addr); l != nil {
					c.Touch(l)
					i := find(r, addr)
					r.order = append(append(r.order[:i:i], r.order[i+1:]...), addr)
				}
			case 2: // remove if resident
				if l := c.Lookup(addr); l != nil {
					c.Remove(l)
					i := find(r, addr)
					r.order = append(r.order[:i:i], r.order[i+1:]...)
				}
			}
			// Check residency agreement.
			for _, rr := range refs {
				for _, a := range rr.order {
					if c.Lookup(a) == nil {
						return false
					}
				}
			}
			total := 0
			for _, rr := range refs {
				total += len(rr.order)
			}
			if c.Occupancy() != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(32*1024, 8, 64)
	for i := uint32(0); i < 512; i++ {
		c.Allocate(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint32(i) & 511)
	}
}

func BenchmarkAllocateEvict(b *testing.B) {
	c := New(32*1024, 8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Allocate(uint32(i) & 4095)
	}
}
