// Package cache provides set-associative cache arrays with per-word
// coherence state, per-word data values, and LRU replacement.
//
// The array is protocol-agnostic: a line carries a protocol-defined
// per-line state byte and a per-word state byte, plus per-word 32-bit data
// values and per-word waste-profiling instance ids (see internal/waste).
// Both MESI (line-granularity states) and DeNovo (word-granularity states)
// build on it.
package cache

// Line is one cache line. Slices are sized to the configured words per
// line at allocation and reused across occupancies.
type Line struct {
	Tag    uint32 // line address (byte address >> lineShift)
	Valid  bool
	State  uint8    // protocol-defined per-line state
	WState []uint8  // protocol-defined per-word state
	Data   []uint32 // per-word values (functional simulation)
	Owner  []uint8  // per-word auxiliary field (e.g. DeNovo registrant id)
	Inst   []uint64 // per-word waste-profiling instance ids (0 = none)
	MInst  []uint64 // per-word memory-fetch instance ids (Figure 4.3)
	Region uint8    // region id of the request that allocated the line
	lru    uint64
	way    int
}

// Cache is a set-associative array.
type Cache struct {
	sets      [][]*Line
	index     map[uint32]*Line // line address -> resident line
	assoc     int
	numSets   uint32
	wordsPer  int
	lruClock  uint64
	Evictions uint64
}

// New creates a cache of sizeBytes capacity with the given associativity
// and line size. sizeBytes/assoc/lineBytes must divide evenly and the set
// count must be a power of two.
func New(sizeBytes, assoc, lineBytes int) *Cache {
	lines := sizeBytes / lineBytes
	numSets := lines / assoc
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	c := &Cache{
		assoc:    assoc,
		numSets:  uint32(numSets),
		wordsPer: lineBytes / 4,
		index:    make(map[uint32]*Line, lines),
	}
	c.sets = make([][]*Line, numSets)
	for s := range c.sets {
		ways := make([]*Line, assoc)
		for w := range ways {
			ways[w] = &Line{
				WState: make([]uint8, c.wordsPer),
				Data:   make([]uint32, c.wordsPer),
				Owner:  make([]uint8, c.wordsPer),
				Inst:   make([]uint64, c.wordsPer),
				MInst:  make([]uint64, c.wordsPer),
				way:    w,
			}
		}
		c.sets[s] = ways
	}
	return c
}

// WordsPerLine returns words per line.
func (c *Cache) WordsPerLine() int { return c.wordsPer }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return int(c.numSets) }

// Assoc returns the associativity.
func (c *Cache) Assoc() int { return c.assoc }

func (c *Cache) setOf(lineAddr uint32) []*Line { return c.sets[lineAddr&(c.numSets-1)] }

// Lookup returns the resident line for lineAddr, or nil. It does not touch
// LRU state; call Touch on a hit that should refresh recency.
func (c *Cache) Lookup(lineAddr uint32) *Line {
	return c.index[lineAddr]
}

// Touch marks a line most recently used.
func (c *Cache) Touch(l *Line) {
	c.lruClock++
	l.lru = c.lruClock
}

// Victim returns the line that Allocate would evict for lineAddr: the
// invalid way if one exists (returned with Valid=false), else the LRU way.
// It never allocates. Callers use it to initiate writebacks before calling
// Allocate.
func (c *Cache) Victim(lineAddr uint32) *Line {
	set := c.setOf(lineAddr)
	var victim *Line
	for _, l := range set {
		if !l.Valid {
			return l
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// VictimWhere is like Victim but only considers valid lines for which ok
// returns true (used to skip lines with in-flight directory transactions).
// An invalid way is always acceptable. It returns nil when every way is
// valid and rejected.
func (c *Cache) VictimWhere(lineAddr uint32, ok func(*Line) bool) *Line {
	set := c.setOf(lineAddr)
	var victim *Line
	for _, l := range set {
		if !l.Valid {
			return l
		}
		if !ok(l) {
			continue
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// Allocate installs lineAddr into the set, evicting the victim if needed.
// It returns the (reset) line. The caller must have handled any writeback
// for the victim first (see Victim). Word state, data, owner and instance
// slices are zeroed; Valid is set and LRU refreshed.
func (c *Cache) Allocate(lineAddr uint32) *Line {
	if l := c.index[lineAddr]; l != nil {
		c.Touch(l)
		return l
	}
	l := c.Victim(lineAddr)
	if l.Valid {
		delete(c.index, l.Tag)
		c.Evictions++
	}
	l.Tag = lineAddr
	l.Valid = true
	l.State = 0
	l.Region = 0
	for i := 0; i < c.wordsPer; i++ {
		l.WState[i] = 0
		l.Data[i] = 0
		l.Owner[i] = 0
		l.Inst[i] = 0
		l.MInst[i] = 0
	}
	c.index[lineAddr] = l
	c.Touch(l)
	return l
}

// Remove invalidates a resident line (protocol invalidation or recall).
func (c *Cache) Remove(l *Line) {
	if !l.Valid {
		return
	}
	delete(c.index, l.Tag)
	l.Valid = false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int { return len(c.index) }

// ForEach visits every valid line. The visitor must not allocate or remove
// lines; it may mutate word state (used for self-invalidation sweeps).
func (c *Cache) ForEach(f func(*Line)) {
	for _, set := range c.sets {
		for _, l := range set {
			if l.Valid {
				f(l)
			}
		}
	}
}
