package bloom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestH3Deterministic(t *testing.T) {
	a, b := NewH3(7), NewH3(7)
	for k := uint32(0); k < 1000; k += 13 {
		if a.Hash(k) != b.Hash(k) {
			t.Fatalf("H3 not deterministic at key %d", k)
		}
	}
	if NewH3(7).Hash(12345) == NewH3(8).Hash(12345) &&
		NewH3(7).Hash(54321) == NewH3(8).Hash(54321) {
		t.Fatal("different seeds produced identical hashes")
	}
}

func TestH3ZeroKey(t *testing.T) {
	if NewH3(1).Hash(0) != 0 {
		t.Fatal("H3(0) must be 0 (empty XOR)")
	}
}

func TestFilterBasics(t *testing.T) {
	f := NewFilter(512, NewH3(1))
	if f.MayContain(42) {
		t.Fatal("empty filter claims containment")
	}
	f.Insert(42)
	if !f.MayContain(42) {
		t.Fatal("false negative after insert")
	}
	f.Clear()
	if f.MayContain(42) {
		t.Fatal("Clear did not clear")
	}
	if f.SizeBytes() != 64 {
		t.Fatalf("512-entry filter = %d bytes, want 64", f.SizeBytes())
	}
}

func TestNoFalseNegativesFilter(t *testing.T) {
	f := func(keys []uint32) bool {
		fl := NewFilter(512, NewH3(3))
		for _, k := range keys {
			fl.Insert(k)
		}
		for _, k := range keys {
			if !fl.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNoFalseNegativesCounting(t *testing.T) {
	f := func(keys []uint32, removeIdx []uint8) bool {
		c := NewCounting(512, NewH3(3))
		for _, k := range keys {
			c.Insert(k)
		}
		// Remove a subset; the rest must still be present.
		removed := map[int]bool{}
		for _, ri := range removeIdx {
			if len(keys) == 0 {
				break
			}
			i := int(ri) % len(keys)
			if !removed[i] {
				removed[i] = true
				c.Remove(keys[i])
			}
		}
		for i, k := range keys {
			if removed[i] {
				continue
			}
			if !c.MayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCountingRemove(t *testing.T) {
	c := NewCounting(512, NewH3(5))
	c.Insert(100)
	c.Insert(100)
	c.Remove(100)
	if !c.MayContain(100) {
		t.Fatal("count 2 - 1 should still contain")
	}
	c.Remove(100)
	if c.MayContain(100) {
		t.Fatal("count 0 should not contain (assuming no collision at this key)")
	}
}

func TestCountingSaturation(t *testing.T) {
	c := NewCounting(64, NewH3(5))
	for i := 0; i < 300; i++ {
		c.Insert(7)
	}
	for i := 0; i < 300; i++ {
		c.Remove(7)
	}
	if !c.MayContain(7) {
		t.Fatal("saturated counter was decremented; false negatives possible")
	}
}

func TestSnapshotMatchesCounting(t *testing.T) {
	c := NewCounting(512, NewH3(9))
	keys := []uint32{1, 64, 777, 4096, 99999}
	for _, k := range keys {
		c.Insert(k)
	}
	s := c.Snapshot()
	for _, k := range keys {
		if !s.MayContain(k) {
			t.Fatalf("snapshot lost key %d", k)
		}
	}
}

func TestUnionPreservesMembers(t *testing.T) {
	h := NewH3(2)
	a, b := NewFilter(512, h), NewFilter(512, h)
	a.Insert(10)
	b.Insert(20)
	a.Union(b)
	if !a.MayContain(10) || !a.MayContain(20) {
		t.Fatal("union lost members")
	}
}

func TestFalsePositiveRateReasonable(t *testing.T) {
	// 512-entry filter with ~50 inserted keys should have fpr well under 20%.
	f := NewFilter(512, NewH3(11))
	rng := rand.New(rand.NewSource(4))
	inserted := map[uint32]bool{}
	for len(inserted) < 50 {
		k := rng.Uint32()
		inserted[k] = true
		f.Insert(k)
	}
	fp, probes := 0, 0
	for i := 0; i < 10000; i++ {
		k := rng.Uint32()
		if inserted[k] {
			continue
		}
		probes++
		if f.MayContain(k) {
			fp++
		}
	}
	if rate := float64(fp) / float64(probes); rate > 0.20 {
		t.Fatalf("false positive rate %.3f too high", rate)
	}
}

func TestBankGeometryMatchesPaper(t *testing.T) {
	cfg := DefaultBankConfig(16)
	l2 := NewL2Bank(cfg)
	l1 := NewL1Bank(cfg)
	// Paper: 32*512*8 bits = 16KB per L2 slice; 32*512*16 filters at 1 bit
	// = 32KB per L1.
	if l2.SizeBytes() != 16*1024 {
		t.Fatalf("L2 bank = %d bytes, want 16384", l2.SizeBytes())
	}
	if l1.SizeBytes() != 32*1024 {
		t.Fatalf("L1 bank = %d bytes, want 32768", l1.SizeBytes())
	}
}

func TestL1BankDemandCopyFlow(t *testing.T) {
	cfg := DefaultBankConfig(4)
	l2 := NewL2Bank(cfg)
	l1 := NewL1Bank(cfg)
	line := uint32(0x1234)
	l2.Insert(line)

	valid, _ := l1.Query(2, line)
	if valid {
		t.Fatal("copy valid before fetch")
	}
	idx := l1.FilterIndex(line)
	if idx != l2.FilterIndex(line) {
		t.Fatal("L1/L2 disagree on filter index")
	}
	l1.LoadCopy(2, idx, l2.Snapshot(idx))
	valid, may := l1.Query(2, line)
	if !valid || !may {
		t.Fatalf("after copy: valid=%v may=%v, want true/true", valid, may)
	}

	// A local writeback must be visible without refetching.
	wbLine := uint32(0xff00)
	for l1.FilterIndex(wbLine) != idx { // pick a line mapping to same filter
		wbLine += 64
	}
	l1.InsertLocal(2, wbLine)
	_, may = l1.Query(2, wbLine)
	if !may {
		t.Fatal("local writeback not visible in L1 copy")
	}

	l1.ClearAll()
	valid, _ = l1.Query(2, line)
	if valid {
		t.Fatal("ClearAll did not invalidate copies")
	}
}

// Property: the end-to-end bypass-safety guarantee — if the L2 bank
// contains a line (dirty on-chip), an L1 that has fetched the relevant copy
// and applied its own writebacks can never conclude "definitely absent".
func TestBypassSafetyProperty(t *testing.T) {
	f := func(dirty []uint32, local []uint32) bool {
		cfg := DefaultBankConfig(1)
		l2 := NewL2Bank(cfg)
		l1 := NewL1Bank(cfg)
		for _, ln := range dirty {
			l2.Insert(ln)
		}
		// L1 fetches every filter copy.
		for i := 0; i < cfg.FiltersPerSlice; i++ {
			l1.LoadCopy(0, i, l2.Snapshot(i))
		}
		for _, ln := range local {
			l1.InsertLocal(0, ln)
		}
		for _, ln := range dirty {
			if valid, may := l1.Query(0, ln); valid && !may {
				return false // unsafe: would bypass a dirty line
			}
		}
		for _, ln := range local {
			if valid, may := l1.Query(0, ln); valid && !may {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFilterInsert(b *testing.B) {
	f := NewFilter(512, NewH3(1))
	for i := 0; i < b.N; i++ {
		f.Insert(uint32(i))
	}
}

func BenchmarkCountingQuery(b *testing.B) {
	c := NewCounting(512, NewH3(1))
	for i := 0; i < 256; i++ {
		c.Insert(uint32(i * 64))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MayContain(uint32(i))
	}
}
