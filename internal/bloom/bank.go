package bloom

// BankConfig describes the filter banks of §4.4.
type BankConfig struct {
	FiltersPerSlice int // number of Bloom filters at each L2 slice
	Entries         int // entries per filter
	Slices          int // number of L2 slices (tiles)
	Seed            uint64
}

// DefaultBankConfig returns the paper's idealized geometry: 32 filters per
// slice, 512 entries each, one H3 hash. For a 16-tile processor this is
// 32*512*16 bits = 32 KB per L1 and 32*512*8 bits = 16 KB per L2 slice.
func DefaultBankConfig(slices int) BankConfig {
	return BankConfig{FiltersPerSlice: 32, Entries: 512, Slices: slices, Seed: 0xb10f}
}

// L2Bank is the set of counting Bloom filters at one L2 slice. It tracks
// the line addresses that have dirty (registered or modified) words in that
// slice's portion of the address space.
type L2Bank struct {
	cfg     BankConfig
	sel     *H3
	filters []*Counting
}

// NewL2Bank creates the counting-filter bank for one slice.
func NewL2Bank(cfg BankConfig) *L2Bank {
	sel := NewH3(cfg.Seed ^ 0x5e1ec7)
	h := NewH3(cfg.Seed)
	b := &L2Bank{cfg: cfg, sel: sel, filters: make([]*Counting, cfg.FiltersPerSlice)}
	for i := range b.filters {
		b.filters[i] = NewCounting(cfg.Entries, h)
	}
	return b
}

// FilterIndex returns which filter within a slice a line address maps to.
func (b *L2Bank) FilterIndex(line uint32) int {
	return int(b.sel.Hash(line)) % len(b.filters)
}

// Insert records that line now has dirty data in this slice.
func (b *L2Bank) Insert(line uint32) { b.filters[b.FilterIndex(line)].Insert(line) }

// Remove records that line no longer has dirty data in this slice.
func (b *L2Bank) Remove(line uint32) { b.filters[b.FilterIndex(line)].Remove(line) }

// MayContain reports whether line may have dirty data in this slice.
func (b *L2Bank) MayContain(line uint32) bool {
	return b.filters[b.FilterIndex(line)].MayContain(line)
}

// Snapshot returns a plain-filter copy of filter idx, as shipped to an L1
// in a 64-byte Bloom-copy response.
func (b *L2Bank) Snapshot(idx int) *Filter { return b.filters[idx].Snapshot() }

// SizeBytes is the storage footprint of the bank (8-bit counters).
func (b *L2Bank) SizeBytes() int {
	n := 0
	for _, f := range b.filters {
		n += f.SizeBytes()
	}
	return n
}

// L1Bank is one L1 cache's conservative copy of every L2 slice's filters.
// Filters are copied on demand (valid bits track which copies exist), local
// writebacks are inserted eagerly, and everything is cleared at barriers.
type L1Bank struct {
	cfg     BankConfig
	sel     *H3
	h       *H3
	filters [][]*Filter // [slice][filterIdx]
	valid   [][]bool
}

// NewL1Bank creates the L1-side filter copies for all slices.
func NewL1Bank(cfg BankConfig) *L1Bank {
	b := &L1Bank{
		cfg: cfg,
		sel: NewH3(cfg.Seed ^ 0x5e1ec7),
		h:   NewH3(cfg.Seed),
	}
	b.filters = make([][]*Filter, cfg.Slices)
	b.valid = make([][]bool, cfg.Slices)
	for s := range b.filters {
		b.filters[s] = make([]*Filter, cfg.FiltersPerSlice)
		b.valid[s] = make([]bool, cfg.FiltersPerSlice)
		for i := range b.filters[s] {
			b.filters[s][i] = NewFilter(cfg.Entries, b.h)
		}
	}
	return b
}

// FilterIndex returns the per-slice filter index for a line address.
func (b *L1Bank) FilterIndex(line uint32) int { return int(b.sel.Hash(line)) % b.cfg.FiltersPerSlice }

// Query checks a line address against the copy for the line's home slice.
// valid=false means the copy has not been fetched yet (the caller must
// request a Bloom copy from the L2 before deciding).
func (b *L1Bank) Query(slice int, line uint32) (valid, mayContain bool) {
	i := b.FilterIndex(line)
	if !b.valid[slice][i] {
		return false, true
	}
	return true, b.filters[slice][i].MayContain(line)
}

// LoadCopy unions a snapshot received from slice's L2 into the local copy
// and marks it valid.
func (b *L1Bank) LoadCopy(slice, idx int, snap *Filter) {
	b.filters[slice][idx].Union(snap)
	b.valid[slice][idx] = true
}

// InsertLocal records a local writeback of line (whose home is slice) so
// the copy stays conservative without refetching.
func (b *L1Bank) InsertLocal(slice int, line uint32) {
	i := b.FilterIndex(line)
	b.filters[slice][i].Insert(line)
}

// ClearAll resets every copy and valid bit (done at barriers).
func (b *L1Bank) ClearAll() {
	for s := range b.filters {
		for i := range b.filters[s] {
			b.filters[s][i].Clear()
			b.valid[s][i] = false
		}
	}
}

// SizeBytes is the storage footprint of all copies (1-bit entries).
func (b *L1Bank) SizeBytes() int {
	n := 0
	for _, fs := range b.filters {
		for _, f := range fs {
			n += f.SizeBytes()
		}
	}
	return n
}
