// Package bloom implements the Bloom filters used by the paper's "L2
// Request Bypass" optimization (§4.4): plain 1-bit-per-entry filters at the
// L1 caches and 8-bit counting filters at the L2 slices, both indexed with
// an H3 hash function.
//
// The paper's configuration is 512 entries per filter, one H3 hash, 32
// filters per L2 slice (selected by a second hash of the line address), and
// an L1-side copy of every L2 filter populated on demand. The key property
// the protocol relies on is that Bloom filters never return false
// negatives; TestNoFalseNegatives* verify it.
package bloom

// H3 is an H3-class universal hash: the hash of a key is the XOR of fixed
// random rows selected by the set bits of the key.
type H3 struct {
	rows [32]uint32
}

// NewH3 builds a deterministic H3 hash from a seed (xorshift-generated
// rows, so the module stays stdlib-only and reproducible).
func NewH3(seed uint64) *H3 {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	h := &H3{}
	s := seed
	for i := range h.rows {
		// xorshift64*
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		h.rows[i] = uint32((s * 0x2545f4914f6cdd1d) >> 32)
	}
	return h
}

// Hash returns the 32-bit H3 hash of key.
func (h *H3) Hash(key uint32) uint32 {
	var v uint32
	for i := 0; key != 0; i++ {
		if key&1 != 0 {
			v ^= h.rows[i]
		}
		key >>= 1
	}
	return v
}

// Filter is a plain Bloom filter with 1-bit entries.
type Filter struct {
	bits    []uint64
	entries uint32
	h       *H3
}

// NewFilter creates a filter with the given number of entries (rounded up
// to a multiple of 64).
func NewFilter(entries int, h *H3) *Filter {
	if entries < 64 {
		entries = 64
	}
	words := (entries + 63) / 64
	return &Filter{bits: make([]uint64, words), entries: uint32(words * 64), h: h}
}

// Entries returns the filter capacity in bits.
func (f *Filter) Entries() int { return int(f.entries) }

// SizeBytes returns the storage size of the filter.
func (f *Filter) SizeBytes() int { return len(f.bits) * 8 }

func (f *Filter) idx(key uint32) (int, uint64) {
	i := f.h.Hash(key) % f.entries
	return int(i >> 6), 1 << (i & 63)
}

// Insert adds key to the filter.
func (f *Filter) Insert(key uint32) {
	w, m := f.idx(key)
	f.bits[w] |= m
}

// MayContain reports whether key may have been inserted. False means
// definitely not present.
func (f *Filter) MayContain(key uint32) bool {
	w, m := f.idx(key)
	return f.bits[w]&m != 0
}

// Clear resets the filter to empty.
func (f *Filter) Clear() {
	for i := range f.bits {
		f.bits[i] = 0
	}
}

// Union ORs other into f. Both filters must share geometry and hash.
func (f *Filter) Union(other *Filter) {
	if other == nil {
		return
	}
	if len(f.bits) != len(other.bits) {
		panic("bloom: union of mismatched filters")
	}
	for i := range f.bits {
		f.bits[i] |= other.bits[i]
	}
}

// PopCount returns the number of set entries (used to estimate occupancy).
func (f *Filter) PopCount() int {
	n := 0
	for _, w := range f.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Counting is a Bloom filter with 8-bit saturating counters, used at the L2
// so that entries can be removed when lines are cleaned or evicted.
type Counting struct {
	counts  []uint8
	entries uint32
	h       *H3
}

// NewCounting creates a counting filter with the given number of entries
// (rounded up to a multiple of 64 so Snapshot indices align with Filter).
func NewCounting(entries int, h *H3) *Counting {
	if entries < 64 {
		entries = 64
	}
	entries = (entries + 63) / 64 * 64
	return &Counting{counts: make([]uint8, entries), entries: uint32(entries), h: h}
}

// SizeBytes returns the storage size of the filter.
func (c *Counting) SizeBytes() int { return len(c.counts) }

func (c *Counting) idx(key uint32) int { return int(c.h.Hash(key) % c.entries) }

// Insert increments the counter for key (saturating at 255; a saturated
// counter is never decremented, preserving the no-false-negative property).
func (c *Counting) Insert(key uint32) {
	i := c.idx(key)
	if c.counts[i] < 255 {
		c.counts[i]++
	}
}

// Remove decrements the counter for key. Removing a key that was never
// inserted is a caller bug; the counter floors at zero to stay safe.
func (c *Counting) Remove(key uint32) {
	i := c.idx(key)
	if c.counts[i] > 0 && c.counts[i] < 255 {
		c.counts[i]--
	}
}

// MayContain reports whether key may be present.
func (c *Counting) MayContain(key uint32) bool { return c.counts[c.idx(key)] > 0 }

// Snapshot renders the counting filter as a plain filter (counter>0 => bit
// set), sharing the same hash, as sent to L1s in a copy response.
func (c *Counting) Snapshot() *Filter {
	f := NewFilter(int(c.entries), c.h)
	for i, v := range c.counts {
		if v > 0 {
			f.bits[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return f
}
