package waste

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newMeasuring() *Profiler {
	p := NewProfiler()
	p.StartMeasurement()
	return p
}

func TestL1FSMAllPaths(t *testing.T) {
	p := newMeasuring()

	// load -> Used
	id := p.L1Arrival(0, false)
	p.L1Load(id)
	// store before load -> Write
	id = p.L1Arrival(4, false)
	p.L1Store(id)
	// invalidate before use -> Invalidate
	id = p.L1Arrival(8, false)
	p.L1Invalidate(id)
	// evict before use -> Evict
	id = p.L1Arrival(12, false)
	p.L1Evict(id)
	// already present -> Fetch immediately
	p.L1Arrival(16, true)
	// nothing -> Unevicted at Finish
	p.L1Arrival(20, false)
	p.Finish()

	for _, c := range []Category{Used, Write, Invalidate, Evict, Fetch, Unevicted} {
		if got := p.Count(LevelL1, c); got != 1 {
			t.Errorf("L1 %v = %d, want 1", c, got)
		}
	}
}

func TestClassifyOnce(t *testing.T) {
	p := newMeasuring()
	id := p.L1Arrival(0, false)
	p.L1Load(id)  // Used (terminal)
	p.L1Evict(id) // must not reclassify
	p.L1Store(id)
	if p.Count(LevelL1, Used) != 1 || p.Count(LevelL1, Evict) != 0 || p.Count(LevelL1, Write) != 0 {
		t.Fatal("instance reclassified after terminal state")
	}
}

func TestL2FSMAllPaths(t *testing.T) {
	p := newMeasuring()
	p.L2Served(p.L2Arrival(0, false))
	p.L2Overwritten(p.L2Arrival(4, false))
	p.L2Evict(p.L2Arrival(8, false))
	p.L2Arrival(12, true) // Fetch
	p.L2Arrival(16, false)
	p.Finish()
	for _, c := range []Category{Used, Write, Evict, Fetch, Unevicted} {
		if got := p.Count(LevelL2, c); got != 1 {
			t.Errorf("L2 %v = %d, want 1", c, got)
		}
	}
}

func TestMemFSMUsed(t *testing.T) {
	p := newMeasuring()
	id := p.MemFetch(0, false)
	p.MemAddRef(id) // placed in L2
	p.MemAddRef(id) // copy to L1
	p.MemLoad(id)
	if p.Count(LevelMem, Used) != 1 {
		t.Fatal("mem load not Used")
	}
	// Releasing after classification changes nothing.
	p.MemRelease(id, false)
	p.MemRelease(id, false)
	if p.Count(LevelMem, Evict) != 0 {
		t.Fatal("released copies reclassified a Used instance")
	}
}

func TestMemFSMEvictLastCopy(t *testing.T) {
	p := newMeasuring()
	id := p.MemFetch(0, false)
	p.MemAddRef(id)
	p.MemAddRef(id)
	p.MemRelease(id, false)
	if p.Count(LevelMem, Evict) != 0 {
		t.Fatal("classified Evict while a copy remains")
	}
	p.MemRelease(id, false)
	if p.Count(LevelMem, Evict) != 1 {
		t.Fatal("last-copy eviction not classified Evict")
	}
}

func TestMemFSMInvalidate(t *testing.T) {
	p := newMeasuring()
	id := p.MemFetch(0, false)
	p.MemAddRef(id)
	p.MemRelease(id, true)
	if p.Count(LevelMem, Invalidate) != 1 {
		t.Fatal("invalidated last copy not classified Invalidate")
	}
}

func TestMemStoreClassifiesAllOpenInstances(t *testing.T) {
	p := newMeasuring()
	a := p.MemFetch(64, false)
	b := p.MemFetch(64, false) // second fetch of same address (non-inclusive L2)
	c := p.MemFetch(68, false) // different address
	p.MemAddRef(a)
	p.MemAddRef(b)
	p.MemAddRef(c)
	p.MemStore(64)
	if p.Count(LevelMem, Write) != 2 {
		t.Fatalf("MemStore classified %d instances, want 2", p.Count(LevelMem, Write))
	}
	p.MemLoad(c)
	if p.Count(LevelMem, Used) != 1 {
		t.Fatal("unrelated address affected by MemStore")
	}
}

func TestMemFetchPresentInL2(t *testing.T) {
	p := newMeasuring()
	p.MemFetch(0, true)
	if p.Count(LevelMem, Fetch) != 1 {
		t.Fatal("refetch of L2-present address not Fetch waste")
	}
}

func TestMemExcess(t *testing.T) {
	p := newMeasuring()
	p.MemExcess(0)
	if p.Count(LevelMem, Excess) != 1 {
		t.Fatal("Excess not counted")
	}
}

func TestWarmupNotCounted(t *testing.T) {
	p := NewProfiler() // warm-up mode
	warm := p.L1Arrival(0, false)
	p.StartMeasurement()
	p.L1Load(warm) // classification lands after measurement starts
	if p.TotalWords(LevelL1) != 0 {
		t.Fatal("warm-up instance counted")
	}
	meas := p.L1Arrival(4, false)
	p.L1Load(meas)
	if p.Count(LevelL1, Used) != 1 {
		t.Fatal("measured instance not counted")
	}
}

func TestOnClassifyObserver(t *testing.T) {
	p := newMeasuring()
	var gotLevel Level
	var gotCat Category
	var gotShare float64
	var gotClass uint8
	p.OnClassify(func(level Level, class uint8, cat Category, share float64, measured bool) {
		gotLevel, gotClass, gotCat, gotShare = level, class, cat, share
	})
	id := p.L1Arrival(0, false)
	p.SetTraffic(id, 3, 1.5)
	p.SetTraffic(id, 3, 0.5) // accumulates
	p.L1Load(id)
	if gotLevel != LevelL1 || gotCat != Used || gotShare != 2.0 || gotClass != 3 {
		t.Fatalf("observer got level=%v cat=%v share=%v class=%d", gotLevel, gotCat, gotShare, gotClass)
	}
}

func TestZeroIDIgnored(t *testing.T) {
	p := newMeasuring()
	p.L1Load(0)
	p.MemAddRef(0)
	p.MemRelease(0, false)
	p.SetTraffic(0, 1, 1)
	if p.TotalWords(LevelL1) != 0 {
		t.Fatal("id 0 must be inert")
	}
}

// Property: conservation — every created instance ends in exactly one
// terminal category, so per-level totals equal per-level creations.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := newMeasuring()
		created := [3]uint64{}
		var l1IDs, l2IDs, memIDs []uint64
		for i := 0; i < 300; i++ {
			addr := uint32(rng.Intn(64)) * 4
			switch rng.Intn(9) {
			case 0:
				l1IDs = append(l1IDs, p.L1Arrival(addr, rng.Intn(4) == 0))
				created[LevelL1]++
			case 1:
				l2IDs = append(l2IDs, p.L2Arrival(addr, rng.Intn(4) == 0))
				created[LevelL2]++
			case 2:
				id := p.MemFetch(addr, rng.Intn(4) == 0)
				p.MemAddRef(id)
				memIDs = append(memIDs, id)
				created[LevelMem]++
			case 3:
				if len(l1IDs) > 0 {
					p.L1Load(l1IDs[rng.Intn(len(l1IDs))])
				}
			case 4:
				if len(l1IDs) > 0 {
					p.L1Evict(l1IDs[rng.Intn(len(l1IDs))])
				}
			case 5:
				if len(l2IDs) > 0 {
					p.L2Served(l2IDs[rng.Intn(len(l2IDs))])
				}
			case 6:
				if len(memIDs) > 0 {
					p.MemRelease(memIDs[rng.Intn(len(memIDs))], rng.Intn(2) == 0)
				}
			case 7:
				p.MemStore(addr)
			case 8:
				if len(memIDs) > 0 {
					p.MemLoad(memIDs[rng.Intn(len(memIDs))])
				}
			}
		}
		p.Finish()
		for lvl := Level(0); lvl < 3; lvl++ {
			if p.TotalWords(lvl) != created[lvl] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProfilerLifecycle(b *testing.B) {
	p := newMeasuring()
	for i := 0; i < b.N; i++ {
		id := p.L1Arrival(uint32(i)*4, false)
		if i%2 == 0 {
			p.L1Load(id)
		} else {
			p.L1Evict(id)
		}
	}
}

func TestSnapshot(t *testing.T) {
	p := newMeasuring()
	p.L1Load(p.L1Arrival(0, false))
	p.L2Evict(p.L2Arrival(4, false))
	p.MemExcess(8)
	s := p.Snapshot()
	if s[LevelL1][Used] != 1 || s[LevelL2][Evict] != 1 || s[LevelMem][Excess] != 1 {
		t.Fatalf("snapshot = %v", s)
	}
	// Detached: later events do not mutate the snapshot.
	p.L1Load(p.L1Arrival(12, false))
	if s[LevelL1][Used] != 1 {
		t.Fatal("snapshot not detached")
	}
}

func TestChunkGrowth(t *testing.T) {
	p := newMeasuring()
	// Cross several chunk boundaries and verify ids stay addressable.
	n := chunkSize*2 + 37
	ids := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, p.L1Arrival(uint32(i)*4, false))
	}
	for _, id := range ids {
		p.L1Load(id)
	}
	if got := p.Count(LevelL1, Used); got != uint64(n) {
		t.Fatalf("classified %d of %d across chunks", got, n)
	}
}
