// Package waste implements the paper's detailed waste characterization
// (§4.1): every word moved into the L1, into the L2, or fetched from
// memory becomes an *instance* that is classified by a small finite-state
// machine into one of the categories Used, Write, Fetch, Invalidate,
// Evict, Unevicted (plus Excess for words dropped at the memory controller
// by the L2 Flex optimization).
//
// The three FSMs are those of Figures 4.1 (L1), 4.2 (L2) and 4.3 (memory).
// Memory instances are identified by (address, identifier) pairs and
// reference-counted across all on-chip copies, because a non-inclusive
// DeNovo L2 can hold several copies of the same word from different memory
// fetches at once.
//
// Classification is single-shot: once an instance reaches a terminal
// category it never changes. Words fetched during the warm-up period are
// tracked (so later events resolve) but excluded from the counts.
package waste

import "fmt"

// Category is the terminal classification of a word instance.
type Category uint8

// Classification categories (§4.1).
const (
	Open       Category = iota // not yet classified
	Used                       // read by the program / returned by the L2
	Write                      // overwritten before being used
	Fetch                      // fetched while already present
	Invalidate                 // invalidated by the protocol before use
	Evict                      // evicted before use
	Unevicted                  // still cached, unclassified, at end of run
	Excess                     // fetched from DRAM, dropped at the MC (L2 Flex)
	numCategories
)

// Categories lists the terminal categories in display order.
var Categories = []Category{Used, Fetch, Write, Invalidate, Evict, Unevicted, Excess}

func (c Category) String() string {
	switch c {
	case Open:
		return "Open"
	case Used:
		return "Used"
	case Write:
		return "Write"
	case Fetch:
		return "Fetch"
	case Invalidate:
		return "Invalidate"
	case Evict:
		return "Evict"
	case Unevicted:
		return "Unevicted"
	case Excess:
		return "Excess"
	}
	return fmt.Sprintf("Category(%d)", uint8(c))
}

// Level identifies which hierarchy level an instance was fetched into.
type Level uint8

// Hierarchy levels for instance creation.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMem
	numLevels
)

func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "Mem"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// ClassifyFunc observes classifications; the traffic recorder uses it to
// settle deferred Used/Waste flit-hop attribution. share is the pending
// flit-hop share attached via SetTraffic, class its message class tag.
type ClassifyFunc func(level Level, class uint8, cat Category, share float64, measured bool)

// inst is packed to 16 bytes: simulations create tens of millions of
// instances, so record size and allocation behaviour dominate memory use.
type inst struct {
	addr  uint32
	share float32
	refs  int32 // LevelMem only: live on-chip copies
	level Level
	cat   Category
	class uint8 // traffic class tag
	flags uint8 // bit0: measured
}

const (
	chunkShift = 16
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// Profiler owns all word instances for one simulation run. Instances live
// in fixed-size chunks so growth never copies existing records.
type Profiler struct {
	chunks     [][]inst
	n          uint64              // instances allocated, including the reserved id 0
	openByAddr map[uint32][]uint64 // word addr -> open LevelMem instance ids
	counts     [numLevels][numCategories]uint64
	measuring  bool
	onClassify ClassifyFunc
}

// NewProfiler creates an empty profiler (warm-up mode: not measuring).
func NewProfiler() *Profiler {
	p := &Profiler{openByAddr: make(map[uint32][]uint64)}
	p.chunks = append(p.chunks, make([]inst, chunkSize))
	p.n = 1 // id 0 reserved as "none"
	return p
}

func (p *Profiler) get(id uint64) *inst {
	return &p.chunks[id>>chunkShift][id&chunkMask]
}

// OnClassify installs the classification observer.
func (p *Profiler) OnClassify(f ClassifyFunc) { p.onClassify = f }

// StartMeasurement switches from warm-up to measured mode: instances
// created from now on count toward the category totals.
func (p *Profiler) StartMeasurement() { p.measuring = true }

// Measuring reports whether measurement has started.
func (p *Profiler) Measuring() bool { return p.measuring }

// Count returns the number of measured words classified as cat at level.
func (p *Profiler) Count(level Level, cat Category) uint64 { return p.counts[level][cat] }

// TotalWords returns all measured words fetched into level.
func (p *Profiler) TotalWords(level Level) uint64 {
	var n uint64
	for _, c := range Categories {
		n += p.counts[level][c]
	}
	return n
}

// Instances returns the number of live instance records (for memory-use
// telemetry in long runs).
func (p *Profiler) Instances() int { return int(p.n) - 1 }

func (p *Profiler) new(level Level, addr uint32) uint64 {
	id := p.n
	p.n++
	if id>>chunkShift == uint64(len(p.chunks)) {
		p.chunks = append(p.chunks, make([]inst, chunkSize))
	}
	in := p.get(id)
	in.addr = addr
	in.level = level
	in.cat = Open
	if p.measuring {
		in.flags = 1
	}
	return id
}

// SetTraffic attaches the deferred flit-hop share and message-class tag to
// an instance; the share is reported to the OnClassify observer when the
// instance settles.
func (p *Profiler) SetTraffic(id uint64, class uint8, share float64) {
	if id == 0 {
		return
	}
	in := p.get(id)
	in.class = class
	in.share += float32(share)
}

func (p *Profiler) classify(id uint64, cat Category) {
	if id == 0 {
		return
	}
	in := p.get(id)
	if in.cat != Open {
		return
	}
	in.cat = cat
	measured := in.flags&1 != 0
	if measured {
		p.counts[in.level][cat]++
	}
	if p.onClassify != nil {
		p.onClassify(in.level, in.class, cat, float64(in.share), measured)
	}
	if in.level == LevelMem {
		p.dropOpenMem(in.addr, id)
	}
}

// --- L1 FSM (Figure 4.1) ---

// L1Arrival records a word arriving at an L1 cache. present reports
// whether the word was already valid there; if so the arrival is
// immediately Fetch waste. The returned id is attached to the cached word.
func (p *Profiler) L1Arrival(addr uint32, present bool) uint64 {
	id := p.new(LevelL1, addr)
	if present {
		p.classify(id, Fetch)
	}
	return id
}

// L1Load marks the word instance as read by the program (Used).
func (p *Profiler) L1Load(id uint64) { p.classify(id, Used) }

// L1Store marks the word instance overwritten before use (Write).
func (p *Profiler) L1Store(id uint64) { p.classify(id, Write) }

// L1Invalidate marks the instance invalidated before use.
func (p *Profiler) L1Invalidate(id uint64) { p.classify(id, Invalidate) }

// L1Evict marks the instance evicted before use.
func (p *Profiler) L1Evict(id uint64) { p.classify(id, Evict) }

// --- L2 FSM (Figure 4.2) ---

// L2Arrival records a word arriving at an L2 slice from memory.
func (p *Profiler) L2Arrival(addr uint32, present bool) uint64 {
	id := p.new(LevelL2, addr)
	if present {
		p.classify(id, Fetch)
	}
	return id
}

// L2Served marks the word returned to an L1 as part of a response (Used).
func (p *Profiler) L2Served(id uint64) { p.classify(id, Used) }

// L2Overwritten marks the word overwritten by an L1 writeback (Write).
func (p *Profiler) L2Overwritten(id uint64) { p.classify(id, Write) }

// L2Evict marks the word evicted from the L2 before use.
func (p *Profiler) L2Evict(id uint64) { p.classify(id, Evict) }

// --- Memory FSM (Figure 4.3) ---

// MemFetch records a word of address addr leaving the memory controller
// toward the chip, creating a new (addr, id) instance with zero on-chip
// references. presentInL2 applies the Figure 4.3 "address present in L2"
// check (immediate Fetch classification).
func (p *Profiler) MemFetch(addr uint32, presentInL2 bool) uint64 {
	id := p.new(LevelMem, addr)
	if presentInL2 {
		p.classify(id, Fetch)
		return id
	}
	p.openByAddr[addr] = append(p.openByAddr[addr], id)
	return id
}

// MemExcess records a word fetched from DRAM and dropped at the MC by the
// L2 Flex filter: it never reaches the chip.
func (p *Profiler) MemExcess(addr uint32) uint64 {
	id := p.new(LevelMem, addr)
	p.classify(id, Excess)
	return id
}

// MemAddRef notes a new on-chip copy of instance id.
func (p *Profiler) MemAddRef(id uint64) {
	if id == 0 {
		return
	}
	p.get(id).refs++
}

// MemRelease notes the destruction of one on-chip copy (eviction without
// writeback, overwrite, or invalidation). When the last copy of an open
// instance disappears it classifies as Invalidate (if invalidated) or
// Evict.
func (p *Profiler) MemRelease(id uint64, invalidated bool) {
	if id == 0 {
		return
	}
	in := p.get(id)
	if in.refs > 0 {
		in.refs--
	}
	if in.refs == 0 && in.cat == Open {
		if invalidated {
			p.classify(id, Invalidate)
		} else {
			p.classify(id, Evict)
		}
	}
}

// MemLoad marks instance id read by a core (Used).
func (p *Profiler) MemLoad(id uint64) { p.classify(id, Used) }

// MemStore classifies every open instance of addr as Write: once any core
// writes the address, the coherence protocol will invalidate or overwrite
// every other on-chip copy (§4.1).
func (p *Profiler) MemStore(addr uint32) {
	ids := p.openByAddr[addr]
	if len(ids) == 0 {
		return
	}
	// classify() mutates the map entry; iterate over a stable copy.
	stable := append([]uint64(nil), ids...)
	for _, id := range stable {
		p.classify(id, Write)
	}
}

func (p *Profiler) dropOpenMem(addr uint32, id uint64) {
	ids := p.openByAddr[addr]
	for i, x := range ids {
		if x == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			break
		}
	}
	if len(ids) == 0 {
		delete(p.openByAddr, addr)
	} else {
		p.openByAddr[addr] = ids
	}
}

// Finish classifies every still-open instance as Unevicted (end of the
// measurement window, Figure 4.1-4.3 terminal edge).
func (p *Profiler) Finish() {
	for id := uint64(1); id < p.n; id++ {
		if p.get(id).cat == Open {
			p.classify(id, Unevicted)
		}
	}
}

// Snapshot returns the per-level, per-category measured word counts,
// detached from the profiler.
func (p *Profiler) Snapshot() (counts [3][8]uint64) {
	for l := Level(0); l < numLevels; l++ {
		for c := Category(0); c < numCategories; c++ {
			counts[l][c] = p.counts[l][c]
		}
	}
	return counts
}
