package coher

import (
	"repro/internal/cache"
	"repro/internal/memsys"
)

// ReleaseL1Line releases the waste-profiling state of every word of an L1
// line leaving the cache: the L1-level instances close with the eviction
// or invalidation transition, and any open memory-level instances are
// released (comm marks a communication-caused release — invalidation by
// another core's write — which classifies differently in Figure 4.3).
func ReleaseL1Line(env *memsys.Env, ln *cache.Line, evict, comm bool) {
	for w := range ln.Inst {
		if evict {
			env.Prof.L1Evict(ln.Inst[w])
		} else {
			env.Prof.L1Invalidate(ln.Inst[w])
		}
		if ln.MInst[w] != 0 {
			env.Prof.MemRelease(ln.MInst[w], comm)
		}
	}
}

// ReleaseL2Line releases the profiling state of every word of an L2 line
// being evicted (capacity transition; memory instances close uncaused).
func ReleaseL2Line(env *memsys.Env, ln *cache.Line) {
	for w := range ln.Inst {
		env.Prof.L2Evict(ln.Inst[w])
		if ln.MInst[w] != 0 {
			env.Prof.MemRelease(ln.MInst[w], false)
		}
	}
}

// SnapshotData copies a line's word values into a fixed-size message
// payload.
func SnapshotData(ln *cache.Line) (data [memsys.WordsPerLine]uint32) {
	for w := 0; w < memsys.WordsPerLine; w++ {
		data[w] = ln.Data[w]
	}
	return
}

// SnapshotMInst copies a line's memory-instance ids.
func SnapshotMInst(ln *cache.Line) (minst [memsys.WordsPerLine]uint64) {
	for w := 0; w < memsys.WordsPerLine; w++ {
		minst[w] = ln.MInst[w]
	}
	return
}

// DirtyMask collects the words whose per-word state has any of dirtyBits
// set.
func DirtyMask(ln *cache.Line, dirtyBits uint8) uint16 {
	var m uint16
	for w := 0; w < memsys.WordsPerLine; w++ {
		if ln.WState[w]&dirtyBits != 0 {
			m |= 1 << w
		}
	}
	return m
}
