package coher

// DrainGate holds a barrier-drain continuation until the owning
// controller reports quiescence. Both protocol families use the same
// shape: the driver registers a continuation at the barrier, and every
// event that could empty the pending state re-checks the gate.
type DrainGate struct {
	done func()
}

// Arm registers the drain continuation. Callers follow with
// TryFire(quiescent()) to handle the already-drained case.
func (g *DrainGate) Arm(done func()) { g.done = done }

// Armed reports whether a continuation is pending (diagnostics).
func (g *DrainGate) Armed() bool { return g.done != nil }

// TryFire fires and clears the continuation when one is armed and the
// owner is quiescent. It is safe to call unconditionally.
func (g *DrainGate) TryFire(quiescent bool) {
	if g.done == nil || !quiescent {
		return
	}
	d := g.done
	g.done = nil
	d()
}
