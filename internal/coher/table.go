package coher

import (
	"math/bits"
	"slices"
	"sort"
)

// Table is a pending-transaction table keyed by line address: MSHRs,
// victim (writeback) buffers, write-combining entries, L2 fetch tables.
// It wraps the map with the deterministic helpers a reproducible
// simulation needs — any iteration whose side effects reach the event
// kernel must happen in sorted line order.
type Table[V any] struct {
	m map[uint32]*V
}

// NewTable returns an empty table.
func NewTable[V any]() Table[V] { return Table[V]{m: make(map[uint32]*V)} }

// Get returns the entry for line, or nil.
func (t Table[V]) Get(line uint32) *V { return t.m[line] }

// Has reports whether line has an entry.
func (t Table[V]) Has(line uint32) bool { _, ok := t.m[line]; return ok }

// Put installs an entry for line.
func (t Table[V]) Put(line uint32, v *V) { t.m[line] = v }

// Delete removes line's entry.
func (t Table[V]) Delete(line uint32) { delete(t.m, line) }

// Len returns the number of entries.
func (t Table[V]) Len() int { return len(t.m) }

// SortedLines returns the keys in ascending order (deterministic
// iteration for flushes and drains).
func (t Table[V]) SortedLines() []uint32 {
	lines := make([]uint32, 0, len(t.m))
	for line := range t.m {
		lines = append(lines, line)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// Range visits entries in map order. Only for side-effect-free uses
// (diagnostics, invariant checks); simulation-visible iteration must use
// SortedLines.
func (t Table[V]) Range(f func(line uint32, v *V)) {
	for line, v := range t.m {
		f(line, v)
	}
}

// Popcount16 counts the set bits of a word mask.
func Popcount16(m uint16) int { return bits.OnesCount16(m) }

// SortU32 sorts a slice of word addresses in place.
func SortU32(s []uint32) { slices.Sort(s) }

// ContainsU32 reports whether s contains v.
func ContainsU32(s []uint32, v uint32) bool { return slices.Contains(s, v) }
