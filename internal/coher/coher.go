// Package coher is the protocol-agnostic coherence-controller substrate
// shared by the protocol families (internal/mesi, internal/denovo). A
// coherence protocol in this simulator is a set of per-tile controllers
// (an L1 per core, an L2 slice per tile, memory controllers at the MC
// tiles) exchanging messages over the mesh; everything about that shape
// that is not the protocol's state machine lives here:
//
//   - tile endpoint registration and message transport, with the paired
//     traffic accounting (every control flit charged to a class/bucket as
//     it is injected, §5.2);
//   - the per-message dispatch contract (Msg) that replaces the
//     hand-rolled system-level type switches;
//   - pending-transaction tables (MSHRs, victim buffers, fetch tables)
//     with the deterministic iteration helpers a reproducible simulation
//     needs;
//   - store-buffer and write-combining-table management (§4.2);
//   - NACK/retry-backoff handling and barrier drain gates;
//   - the per-word waste-attribution release hooks into memsys/waste.
//
// A protocol family built on this substrate is a state machine plus a
// message vocabulary: mesi and denovo define line/word states, message
// structs with Dispatch methods, and handlers; coher moves the bytes and
// keeps the books.
package coher

import (
	"fmt"

	"repro/internal/memsys"
)

// Msg is implemented by every protocol message: Dispatch routes the
// delivered payload to the right component (L1, L2 slice, MC) of the
// destination tile. S is the protocol's System type.
type Msg[S any] interface {
	Dispatch(s S, tile int)
}

// RegisterTiles registers every tile of the system on the mesh. Delivered
// payloads are routed through their Dispatch method, replacing the
// per-protocol dispatch switch.
func RegisterTiles[S any](env *memsys.Env, s S) {
	for t := 0; t < env.Cfg.Tiles; t++ {
		tile := t
		env.Mesh.Register(tile, func(p any) {
			m, ok := p.(Msg[S])
			if !ok {
				panic(fmt.Sprintf("coher: message %T does not dispatch to %T (tile %d)", p, s, tile))
			}
			m.Dispatch(s, tile)
		})
	}
}

// Substrate is the controller base a protocol's System embeds: the
// environment handle plus message transport with traffic accounting.
type Substrate struct {
	Env *memsys.Env
}

// NewSubstrate wraps an environment.
func NewSubstrate(env *memsys.Env) Substrate { return Substrate{Env: env} }

// Hops returns the route length between two tiles on the active topology.
func (s *Substrate) Hops(a, b int) int { return s.Env.Mesh.Hops(a, b) }

// Send pushes a payload of the given flit count into the mesh.
func (s *Substrate) Send(src, dst, flits int, payload any) {
	s.Env.Mesh.Send(src, dst, flits, payload)
}

// SendData sends a packet of one control flit plus the data flits needed
// for words data words. Data-word Used/Waste attribution is deferred via
// Traffic.Data/WBData at the call site; the header flit is charged
// separately (CtlHops or SendCtl).
func (s *Substrate) SendData(src, dst, words int, payload any) {
	s.Env.Mesh.Send(src, dst, 1+memsys.DataFlits(words), payload)
}

// CtlHops charges one control flit for a src->dst message to
// (class, bucket) and returns the hop count, for callers that embed the
// hop count in the payload before sending.
func (s *Substrate) CtlHops(class memsys.Class, bucket memsys.Bucket, src, dst int) int {
	hops := s.Env.Mesh.Hops(src, dst)
	s.Env.Traffic.Ctl(class, bucket, 1, hops)
	return hops
}

// SendCtl charges and sends a one-flit control message in one step and
// returns the hop count.
func (s *Substrate) SendCtl(class memsys.Class, bucket memsys.Bucket, src, dst int, payload any) int {
	hops := s.CtlHops(class, bucket, src, dst)
	s.Env.Mesh.Send(src, dst, 1, payload)
	return hops
}

// RetryAfter schedules fn after the configured retry backoff (used for
// resources busy with an in-flight transaction: victim buffers, pinned
// cache ways).
func (s *Substrate) RetryAfter(fn func()) {
	s.Env.K.After(s.Env.Cfg.RetryBackoff, fn)
}

// NackBackoff records a received NACK's control charge (from the NACKing
// tile) and schedules the retry after the backoff staggered by the
// receiver's tile id, so symmetric retries do not collide forever.
func (s *Substrate) NackBackoff(from, tile int, retry func()) {
	s.Env.Traffic.Ctl(memsys.ClassOVH, memsys.BOvhNack, 1, s.Env.Mesh.Hops(from, tile))
	s.Env.K.After(s.Env.Cfg.RetryBackoff+int64(tile), retry)
}
