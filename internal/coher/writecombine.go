package coher

// WCEntry is one write-combining table entry (§4.2): registrations for a
// line batched until the line fills, a timeout expires, the line is
// evicted, or a barrier drains the table.
type WCEntry struct {
	Line uint32
	Mask uint16
	Born int64
}

// WriteCombiner is the bounded write-combining table. The flush policy
// (what message a flush sends) belongs to the protocol; the table only
// manages entries deterministically.
type WriteCombiner struct {
	entries Table[WCEntry]
}

// NewWriteCombiner returns an empty table.
func NewWriteCombiner() WriteCombiner {
	return WriteCombiner{entries: NewTable[WCEntry]()}
}

// Get returns line's entry, or nil.
func (c *WriteCombiner) Get(line uint32) *WCEntry { return c.entries.Get(line) }

// Add installs a fresh entry for line, stamped with the current time.
func (c *WriteCombiner) Add(line uint32, now int64) *WCEntry {
	e := &WCEntry{Line: line, Born: now}
	c.entries.Put(line, e)
	return e
}

// Remove drops line's entry (flushed or evicted).
func (c *WriteCombiner) Remove(line uint32) { c.entries.Delete(line) }

// Len returns the number of pending entries.
func (c *WriteCombiner) Len() int { return c.entries.Len() }

// Oldest returns the entry to flush when the table is full: lowest birth
// time, ties broken by line address (deterministic across map orders).
func (c *WriteCombiner) Oldest() *WCEntry {
	var oldest *WCEntry
	c.entries.Range(func(_ uint32, e *WCEntry) {
		if oldest == nil || e.Born < oldest.Born ||
			(e.Born == oldest.Born && e.Line < oldest.Line) {
			oldest = e
		}
	})
	return oldest
}

// SortedLines returns pending lines in ascending order (barrier drains
// flush in deterministic line order).
func (c *WriteCombiner) SortedLines() []uint32 { return c.entries.SortedLines() }
