package coher

import (
	"reflect"
	"testing"
)

func TestStoreBufferForwardNewestWins(t *testing.T) {
	b := NewStoreBuffer(4)
	if !b.Push(0x100, 1) || !b.Push(0x104, 2) || !b.Push(0x100, 3) {
		t.Fatal("pushes rejected below capacity")
	}
	if v, ok := b.Forward(0x100); !ok || v != 3 {
		t.Fatalf("Forward(0x100) = %d,%v; want 3,true (newest wins)", v, ok)
	}
	if v, ok := b.Forward(0x104); !ok || v != 2 {
		t.Fatalf("Forward(0x104) = %d,%v; want 2,true", v, ok)
	}
	if _, ok := b.Forward(0x108); ok {
		t.Fatal("Forward hit for an address never written")
	}
	if !b.Push(0x10c, 4) {
		t.Fatal("push rejected at capacity-1")
	}
	if b.Push(0x110, 5) {
		t.Fatal("push accepted beyond capacity")
	}
}

func TestStoreBufferRetireLinePreservesOrder(t *testing.T) {
	b := NewStoreBuffer(8)
	lineOf := func(a uint32) uint32 { return a >> 6 }
	b.Push(0x40, 1) // line 1
	b.Push(0x00, 2) // line 0
	b.Push(0x44, 3) // line 1
	b.Push(0x04, 4) // line 0
	var got []uint32
	b.RetireLine(1, lineOf, func(addr, val uint32) { got = append(got, val) })
	if !reflect.DeepEqual(got, []uint32{1, 3}) {
		t.Fatalf("retired %v, want [1 3] in insertion order", got)
	}
	if b.Len() != 2 {
		t.Fatalf("%d entries left, want 2", b.Len())
	}
	if v, ok := b.Forward(0x04); !ok || v != 4 {
		t.Fatal("unrelated line disturbed by RetireLine")
	}
	if _, ok := b.Forward(0x44); ok {
		t.Fatal("retired entry still forwards")
	}
}

func TestTableSortedLines(t *testing.T) {
	tab := NewTable[int]()
	for _, line := range []uint32{9, 2, 7, 4} {
		v := int(line)
		tab.Put(line, &v)
	}
	want := []uint32{2, 4, 7, 9}
	if got := tab.SortedLines(); !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedLines = %v, want %v", got, want)
	}
	tab.Delete(7)
	if tab.Has(7) || tab.Len() != 3 {
		t.Fatal("Delete did not remove the entry")
	}
	if tab.Get(2) == nil || *tab.Get(2) != 2 {
		t.Fatal("Get lost an entry")
	}
}

func TestWriteCombinerOldestDeterministic(t *testing.T) {
	wc := NewWriteCombiner()
	wc.Add(0x30, 100)
	wc.Add(0x10, 50)
	wc.Add(0x20, 50) // same birth time: line address breaks the tie
	if o := wc.Oldest(); o == nil || o.Line != 0x10 {
		t.Fatalf("Oldest = %+v, want line 0x10", o)
	}
	wc.Remove(0x10)
	if o := wc.Oldest(); o == nil || o.Line != 0x20 {
		t.Fatalf("Oldest after remove = %+v, want line 0x20", o)
	}
	if got := wc.SortedLines(); !reflect.DeepEqual(got, []uint32{0x20, 0x30}) {
		t.Fatalf("SortedLines = %v", got)
	}
}

func TestDrainGate(t *testing.T) {
	var g DrainGate
	fired := 0
	g.TryFire(true) // unarmed: no-op
	g.Arm(func() { fired++ })
	if !g.Armed() {
		t.Fatal("gate not armed")
	}
	g.TryFire(false)
	if fired != 0 {
		t.Fatal("fired while not quiescent")
	}
	g.TryFire(true)
	g.TryFire(true) // continuation must fire exactly once
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	if g.Armed() {
		t.Fatal("gate still armed after firing")
	}
}

func TestPopcountAndSort(t *testing.T) {
	if Popcount16(0) != 0 || Popcount16(0xffff) != 16 || Popcount16(0b1011) != 3 {
		t.Fatal("Popcount16 wrong")
	}
	s := []uint32{5, 1, 4, 1, 3}
	SortU32(s)
	if !reflect.DeepEqual(s, []uint32{1, 1, 3, 4, 5}) {
		t.Fatalf("SortU32 = %v", s)
	}
	if !ContainsU32(s, 4) || ContainsU32(s, 2) {
		t.Fatal("ContainsU32 wrong")
	}
}
