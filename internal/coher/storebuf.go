package coher

// StoreEntry is one pending non-blocking write.
type StoreEntry struct {
	Addr uint32
	Val  uint32
}

// StoreBuffer is the core-side queue of pending non-blocking writes
// (§4.2): a bounded FIFO with newest-wins load forwarding and per-line
// retirement once the protocol has acquired write permission.
type StoreBuffer struct {
	entries []StoreEntry
	cap     int
}

// NewStoreBuffer returns a buffer bounded to capacity entries.
func NewStoreBuffer(capacity int) StoreBuffer {
	return StoreBuffer{cap: capacity}
}

// Push enqueues a write; false when the buffer is full (the driver stalls
// the core and retries on the unstall callback).
func (b *StoreBuffer) Push(addr, val uint32) bool {
	if len(b.entries) >= b.cap {
		return false
	}
	b.entries = append(b.entries, StoreEntry{addr, val})
	return true
}

// Forward returns the newest pending value for addr, if any (store-buffer
// forwarding: a core always sees its own program order).
func (b *StoreBuffer) Forward(addr uint32) (uint32, bool) {
	for i := len(b.entries) - 1; i >= 0; i-- {
		if b.entries[i].Addr == addr {
			return b.entries[i].Val, true
		}
	}
	return 0, false
}

// Len returns the number of pending writes.
func (b *StoreBuffer) Len() int { return len(b.entries) }

// Empty reports whether no writes are pending.
func (b *StoreBuffer) Empty() bool { return len(b.entries) == 0 }

// Entries exposes the queue in insertion order (read-only scan for
// per-line transaction grouping).
func (b *StoreBuffer) Entries() []StoreEntry { return b.entries }

// RetireLine removes every entry whose address lies on line, calling
// apply for each in insertion order. lineOf maps an address to its line.
func (b *StoreBuffer) RetireLine(line uint32, lineOf func(uint32) uint32, apply func(addr, val uint32)) {
	kept := b.entries[:0]
	for _, e := range b.entries {
		if lineOf(e.Addr) != line {
			kept = append(kept, e)
			continue
		}
		apply(e.Addr, e.Val)
	}
	b.entries = kept
}
