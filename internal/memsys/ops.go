package memsys

import (
	"fmt"
	"sort"
)

// OpKind discriminates workload operations.
type OpKind uint8

// Workload operation kinds.
const (
	OpLoad OpKind = iota
	OpStore
	OpCompute // Cycles of non-memory work
)

// Op is one operation in a thread's instruction stream. Barriers are
// implicit between phases.
type Op struct {
	Kind   OpKind
	Cycles uint16 // OpCompute only
	Addr   uint32 // byte address (word-aligned), OpLoad/OpStore
}

// Region describes one program data region (§2): a contiguous address
// range with optional structural information for the Flex optimization and
// an L2-bypass hint (§3.1).
type Region struct {
	ID   uint8
	Name string
	Base uint32 // byte offset of the region in the program footprint
	Size uint32 // bytes

	// StrideWords is the element size, in words, for array-of-structs
	// regions. Zero means the region has no element structure.
	StrideWords uint16

	// CommOffsets lists the word offsets within one element that form the
	// region's communication region (the fields used together in the
	// current usage). Empty means "whole element / no Flex shaping".
	CommOffsets []uint16

	// Bypass marks the region for the L2 response/request bypass
	// optimizations (read-then-overwritten or streaming data, §3.1).
	Bypass bool
}

// Contains reports whether addr falls inside the region.
func (r *Region) Contains(addr uint32) bool { return addr >= r.Base && addr < r.Base+r.Size }

// CommWords returns the word-aligned byte addresses of the communication
// region covering addr: the annotated field offsets of the element that
// contains addr, clipped to the region. With no structure it returns just
// addr's word.
func (r *Region) CommWords(addr uint32) []uint32 {
	if r.StrideWords == 0 || len(r.CommOffsets) == 0 {
		return []uint32{WordAddr(addr)}
	}
	strideBytes := uint32(r.StrideWords) * WordBytes
	elem := r.Base + (addr-r.Base)/strideBytes*strideBytes
	out := make([]uint32, 0, len(r.CommOffsets))
	for _, off := range r.CommOffsets {
		w := elem + uint32(off)*WordBytes
		if w < r.Base+r.Size {
			out = append(out, w)
		}
	}
	return out
}

// InComm reports whether addr's field offset lies inside the region's
// communication region. Requests for fields outside it (used in other
// phases) fall back to line-granularity transfers, mirroring the paper's
// usage-specific communication regions.
func (r *Region) InComm(addr uint32) bool {
	if r.StrideWords == 0 || len(r.CommOffsets) == 0 {
		return false
	}
	off := uint16((addr - r.Base) / WordBytes % uint32(r.StrideWords))
	for _, o := range r.CommOffsets {
		// off < StrideWords by construction, so o == off is subsumed by
		// o%StrideWords == off (proved redundant by the agreement property
		// test in region_prop_test.go).
		if o%r.StrideWords == off {
			return true
		}
	}
	return false
}

// RegionTable resolves addresses to regions with binary search.
type RegionTable struct {
	regions []Region // sorted by Base
}

// NewRegionTable builds a lookup table; regions must not overlap.
func NewRegionTable(regions []Region) (*RegionTable, error) {
	rs := append([]Region(nil), regions...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Base < rs[j].Base })
	for i := 1; i < len(rs); i++ {
		if rs[i-1].Base+rs[i-1].Size > rs[i].Base {
			return nil, fmt.Errorf("memsys: regions %q and %q overlap", rs[i-1].Name, rs[i].Name)
		}
	}
	return &RegionTable{regions: rs}, nil
}

// ByAddr returns the region containing addr, or nil.
func (t *RegionTable) ByAddr(addr uint32) *Region {
	lo, hi := 0, len(t.regions)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.regions[mid].Base <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return nil
	}
	r := &t.regions[lo-1]
	if !r.Contains(addr) {
		return nil
	}
	return r
}

// ByID returns the region with the given id, or nil.
func (t *RegionTable) ByID(id uint8) *Region {
	for i := range t.regions {
		if t.regions[i].ID == id {
			return &t.regions[i]
		}
	}
	return nil
}

// All returns the regions sorted by base address.
func (t *RegionTable) All() []Region { return t.regions }

// Program is a deterministic parallel workload: a fixed number of threads
// each executing a sequence of phases separated by global barriers. It is
// the simulator-facing contract implemented by internal/workloads.
type Program interface {
	// Name is the benchmark name (Table 4.2).
	Name() string
	// Threads is the number of worker threads (= cores used).
	Threads() int
	// FootprintBytes is the size of the program's address space.
	FootprintBytes() uint32
	// Regions describes the program's data regions.
	Regions() []Region
	// Phases is the total number of phases (warm-up + measured).
	Phases() int
	// WarmupPhases is how many leading phases are excluded from stats.
	WarmupPhases() int
	// WrittenRegions lists region ids written during phase p; DeNovo
	// self-invalidates these regions at the closing barrier.
	WrittenRegions(p int) []uint8
	// EmitOps streams thread t's operations for phase p, in order.
	EmitOps(p, t int, emit func(Op))
}
