package memsys

import (
	"testing"
	"testing/quick"

	"repro/internal/waste"
)

func TestAddressHelpers(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 1 {
		t.Fatal("LineOf wrong")
	}
	if WordIndex(0) != 0 || WordIndex(4) != 1 || WordIndex(63) != 15 {
		t.Fatal("WordIndex wrong")
	}
	if AddrOf(1, 2) != 64+8 {
		t.Fatal("AddrOf wrong")
	}
	if WordAddr(7) != 4 {
		t.Fatal("WordAddr wrong")
	}
}

func TestAddrRoundTripProperty(t *testing.T) {
	f := func(a uint32) bool {
		w := WordAddr(a)
		return AddrOf(LineOf(w), WordIndex(w)) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfigMatchesTable41(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Tiles != 16 || c.L1Bytes != 32*1024 || c.L1Assoc != 8 {
		t.Fatal("L1 config differs from Table 4.1")
	}
	if c.L2SliceBytes != 256*1024 || c.L2Assoc != 16 {
		t.Fatal("L2 config differs from Table 4.1")
	}
	if c.LinkLatency != 3 || c.MaxDataFlits != 4 || c.MaxDataWords() != 16 {
		t.Fatal("network config differs from Table 4.1")
	}
	if len(c.MCTiles) != 4 {
		t.Fatal("corner MCs missing")
	}
	if c.StoreBufferEntries != 32 || c.WriteCombineEntries != 32 || c.WriteCombineTimeout != 10000 {
		t.Fatal("protocol knobs differ from §4.2")
	}
}

func TestScaled(t *testing.T) {
	c := Default().Scaled(4)
	if c.L1Bytes != 8*1024 || c.L2SliceBytes != 64*1024 {
		t.Fatalf("scaled caches = %d/%d", c.L1Bytes, c.L2SliceBytes)
	}
	if c.L1Assoc != 8 || c.Tiles != 16 {
		t.Fatal("Scaled changed associativity or tiles")
	}
	// Scaling never produces a cache smaller than one set.
	tiny := Default().Scaled(1 << 20)
	if tiny.L1Bytes < tiny.L1Assoc*LineBytes {
		t.Fatal("over-scaled L1")
	}
}

func TestHomeTileAndChannel(t *testing.T) {
	c := Default()
	seen := map[int]bool{}
	for line := uint32(0); line < 64; line++ {
		h := c.HomeTile(line)
		if h < 0 || h >= 16 {
			t.Fatalf("home %d out of range", h)
		}
		seen[h] = true
		ch := c.Channel(line)
		if ch < 0 || ch >= 4 {
			t.Fatalf("channel %d out of range", ch)
		}
		if mc := c.MCTile(line); mc != c.MCTiles[ch] {
			t.Fatal("MCTile/Channel mismatch")
		}
	}
	if len(seen) != 16 {
		t.Fatalf("line interleaving reaches %d tiles, want 16", len(seen))
	}
}

func TestDataFlits(t *testing.T) {
	cases := []struct{ words, flits int }{{1, 1}, {4, 1}, {5, 2}, {16, 4}, {0, 0}}
	for _, c := range cases {
		if got := DataFlits(c.words); got != c.flits {
			t.Errorf("DataFlits(%d) = %d, want %d", c.words, got, c.flits)
		}
	}
}

func TestRegionTable(t *testing.T) {
	regions := []Region{
		{ID: 1, Name: "a", Base: 0, Size: 256},
		{ID: 2, Name: "b", Base: 1024, Size: 512},
	}
	rt, err := NewRegionTable(regions)
	if err != nil {
		t.Fatal(err)
	}
	if r := rt.ByAddr(100); r == nil || r.ID != 1 {
		t.Fatal("ByAddr(100) wrong")
	}
	if r := rt.ByAddr(256); r != nil {
		t.Fatal("gap address resolved to a region")
	}
	if r := rt.ByAddr(1024 + 511); r == nil || r.ID != 2 {
		t.Fatal("ByAddr end of b wrong")
	}
	if rt.ByID(2) == nil || rt.ByID(9) != nil {
		t.Fatal("ByID wrong")
	}
}

func TestRegionTableOverlapRejected(t *testing.T) {
	_, err := NewRegionTable([]Region{
		{ID: 1, Base: 0, Size: 100},
		{ID: 2, Base: 50, Size: 100},
	})
	if err == nil {
		t.Fatal("overlap not rejected")
	}
}

func TestCommWords(t *testing.T) {
	r := Region{ID: 1, Base: 0, Size: 1024, StrideWords: 8, CommOffsets: []uint16{0, 2, 5}}
	// addr 100 -> element 3 (bytes 96..127): words 96, 104, 116.
	got := r.CommWords(100)
	want := []uint32{96, 104, 116}
	if len(got) != len(want) {
		t.Fatalf("CommWords = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CommWords = %v, want %v", got, want)
		}
	}
	// Unstructured region: just the word itself.
	u := Region{ID: 2, Base: 0, Size: 64}
	if g := u.CommWords(9); len(g) != 1 || g[0] != 8 {
		t.Fatalf("unstructured CommWords = %v", g)
	}
}

func TestCommWordsClipped(t *testing.T) {
	r := Region{ID: 1, Base: 0, Size: 40, StrideWords: 8, CommOffsets: []uint16{0, 7}}
	// Element 1 starts at byte 32; offset 7 would be byte 60, outside Size 40.
	got := r.CommWords(36)
	if len(got) != 1 || got[0] != 32 {
		t.Fatalf("clipped CommWords = %v", got)
	}
}

func TestTrafficCtlAndTotals(t *testing.T) {
	prof := waste.NewProfiler()
	tr := NewTraffic(prof)
	tr.StartMeasurement()
	tr.Ctl(ClassLD, BReqCtl, 1, 3)
	tr.Ctl(ClassOVH, BOvhNack, 1, 2)
	if tr.Get(ClassLD, BReqCtl) != 3 {
		t.Fatal("Ctl flit-hops wrong")
	}
	if tr.ClassTotal(ClassOVH) != 2 || tr.Total() != 5 {
		t.Fatal("totals wrong")
	}
	// Zero-hop messages cost nothing.
	tr.Ctl(ClassLD, BReqCtl, 1, 0)
	if tr.Total() != 5 {
		t.Fatal("0-hop message counted")
	}
}

func TestTrafficDeferredAttribution(t *testing.T) {
	prof := waste.NewProfiler()
	tr := NewTraffic(prof)
	prof.StartMeasurement()
	tr.StartMeasurement()

	// A 5-word LD response to L1 over 2 hops: data flits = 2, so data
	// flit-hops = 4. Word shares: 5 * (2/4) = 2.5; filler = 4 - 2.5 = 1.5.
	ids := make([]uint64, 5)
	for i := range ids {
		ids[i] = prof.L1Arrival(uint32(i*4), false)
	}
	tr.Data(ClassLD, 2, ids)
	if got := tr.Get(ClassLD, BRespCtl); got != 1.5 {
		t.Fatalf("filler = %v, want 1.5", got)
	}
	// Classify: 2 used, 3 evicted.
	prof.L1Load(ids[0])
	prof.L1Load(ids[1])
	prof.L1Evict(ids[2])
	prof.L1Evict(ids[3])
	prof.L1Evict(ids[4])
	if got := tr.Get(ClassLD, BRespL1Used); got != 1.0 {
		t.Fatalf("L1 used = %v, want 1.0", got)
	}
	if got := tr.Get(ClassLD, BRespL1Waste); got != 1.5 {
		t.Fatalf("L1 waste = %v, want 1.5", got)
	}
}

func TestTrafficWarmupExcluded(t *testing.T) {
	prof := waste.NewProfiler()
	tr := NewTraffic(prof)
	// warm-up: not measuring
	id := prof.L1Arrival(0, false)
	tr.Data(ClassLD, 4, []uint64{id})
	tr.StartMeasurement()
	prof.StartMeasurement()
	prof.L1Load(id) // classification of a warm-up instance
	if tr.Total() != 0 {
		t.Fatalf("warm-up data counted: %v", tr.Total())
	}
}

func TestWBData(t *testing.T) {
	prof := waste.NewProfiler()
	tr := NewTraffic(prof)
	tr.StartMeasurement()
	// 3 dirty + 2 clean words over 4 hops to memory: data flits = 2 => 8
	// data flit-hops. dirty share 3/4*4=3, clean 2/4*4=2, filler 8-5=3.
	tr.WBData(true, 4, 3, 2)
	if tr.Get(ClassWB, BWBMemUsed) != 3 || tr.Get(ClassWB, BWBMemWaste) != 2 {
		t.Fatalf("WB used/waste = %v/%v", tr.Get(ClassWB, BWBMemUsed), tr.Get(ClassWB, BWBMemWaste))
	}
	if tr.Get(ClassWB, BWBCtl) != 3 {
		t.Fatalf("WB filler = %v, want 3", tr.Get(ClassWB, BWBCtl))
	}
	// 4 dirty words over 1 hop: exactly one full data flit-hop.
	tr.WBData(false, 1, 4, 0)
	if tr.Get(ClassWB, BWBL2Used) != 1 {
		t.Fatal("L2 WB used wrong")
	}
}

func TestWasteShare(t *testing.T) {
	prof := waste.NewProfiler()
	tr := NewTraffic(prof)
	prof.StartMeasurement()
	tr.StartMeasurement()
	a := prof.L1Arrival(0, false)
	b := prof.L1Arrival(4, false)
	tr.Data(ClassLD, 4, []uint64{a, b}) // 2 words * 1 flit-hop share each, filler 2
	prof.L1Load(a)
	prof.L1Evict(b)
	// used=1, waste=1, respctl filler=2 → waste share = 1/4.
	if got := tr.WasteShare(); got != 0.25 {
		t.Fatalf("WasteShare = %v, want 0.25", got)
	}
}

func TestTimeBreakdownAddStall(t *testing.T) {
	var tb TimeBreakdown
	tb.AddStall(10, Sample{Point: PointOnChip})
	if tb.OnChip != 10 {
		t.Fatal("on-chip stall not recorded")
	}
	tb.AddStall(100, Sample{Point: PointMemory, ToMC: 10, Mem: 30, FromMC: 10})
	if tb.ToMC != 20 || tb.Mem != 60 || tb.FromMC != 20 {
		t.Fatalf("memory stall split = %d/%d/%d", tb.ToMC, tb.Mem, tb.FromMC)
	}
	if tb.Total() != 110 {
		t.Fatalf("total = %d", tb.Total())
	}
	// Missing decomposition falls back to Mem.
	tb = TimeBreakdown{}
	tb.AddStall(50, Sample{Point: PointMemory})
	if tb.Mem != 50 {
		t.Fatal("fallback not applied")
	}
}

func TestEnvConstruction(t *testing.T) {
	cfg := Default()
	e, err := NewEnv(cfg, 4096, []Region{{ID: 1, Base: 0, Size: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Chans) != 4 || len(e.Mem) != 1024 {
		t.Fatal("env sizing wrong")
	}
	e.MemWrite(100, 7)
	if e.MemRead(100) != 7 {
		t.Fatal("backing store broken")
	}
	if e.Mesh.Tiles() != 16 {
		t.Fatal("mesh sizing wrong")
	}
}

func TestEnvRejectsBadConfig(t *testing.T) {
	cfg := Default()
	cfg.Tiles = 15
	if _, err := NewEnv(cfg, 64, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestInComm(t *testing.T) {
	r := Region{ID: 1, Base: 64, Size: 4096, StrideWords: 24,
		CommOffsets: []uint16{0, 1, 2, 7}}
	// Element 0 starts at byte 64: offsets 0,1,2,7 are addrs 64,68,72,92.
	for _, a := range []uint32{64, 68, 72, 92} {
		if !r.InComm(a) {
			t.Errorf("InComm(%#x) = false, want true", a)
		}
	}
	for _, a := range []uint32{76, 96, 64 + 8*4} {
		if r.InComm(a) {
			t.Errorf("InComm(%#x) = true, want false", a)
		}
	}
	// Offsets past the stride (prefetch into the next record) still match
	// their in-record position.
	pre := Region{ID: 2, Base: 0, Size: 4096, StrideWords: 12,
		CommOffsets: []uint16{0, 12}}
	if !pre.InComm(0) || !pre.InComm(48) {
		t.Error("prefetch offsets must map back into the record")
	}
	// Unstructured regions have no communication region.
	u := Region{ID: 3, Base: 0, Size: 64}
	if u.InComm(0) {
		t.Error("unstructured region reported a comm region")
	}
}

func TestConfigTopologyValidation(t *testing.T) {
	cfg := Default()
	for _, topo := range []string{"", "mesh", "ring", "torus"} {
		cfg.Topology = topo
		if err := cfg.Validate(); err != nil {
			t.Errorf("topology %q rejected: %v", topo, err)
		}
	}
	cfg.Topology = "hypercube"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown topology accepted")
	}
}

// Regression for the silent dateline imbalance: Config documents "min 2"
// VCs but odd counts used to pass straight into allocVC's vcs/2 split,
// giving class 0 fewer buffers (VCs=3 -> classes of 1 and 2). Validate
// must reject them loudly; even counts >= 2 and the 0 default stay legal.
func TestConfigVCValidation(t *testing.T) {
	cfg := Default()
	cfg.Router = "vc"
	for _, vcs := range []int{0, 2, 4, 8} {
		cfg.VCs = vcs
		if err := cfg.Validate(); err != nil {
			t.Errorf("VCs=%d rejected: %v", vcs, err)
		}
	}
	for _, vcs := range []int{1, 3, 5, 7, -2} {
		cfg.VCs = vcs
		if err := cfg.Validate(); err == nil {
			t.Errorf("VCs=%d accepted; the dateline split needs an even count >= 2", vcs)
		}
	}
	cfg.VCs = 0
	cfg.VCDepth = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative VCDepth accepted")
	}
}

// The VC knobs must actually reach the fabric: an env built with VCs=4
// must run the vc router with four VCs per input port (peak occupancy can
// then exceed the default two VCs' worth only if the knob threaded).
func TestEnvVCKnobsThreadThrough(t *testing.T) {
	cfg := Default().Scaled(64)
	cfg.Router = "vc"
	cfg.VCs = 4
	cfg.VCDepth = 1
	env, err := NewEnv(cfg, 4096, []Region{{ID: 1, Base: 0, Size: 4096}})
	if err != nil {
		t.Fatal(err)
	}
	if env.Mesh.Router() != "vc" {
		t.Fatalf("router = %q, want vc", env.Mesh.Router())
	}
}

func TestEnvTopologyThreadsThrough(t *testing.T) {
	cfg := Default().Scaled(64)
	cfg.Topology = "ring"
	e, err := NewEnv(cfg, 4096, nil)
	if err != nil {
		t.Fatal(err)
	}
	if kind := e.Mesh.Topology().Kind(); kind != "ring" {
		t.Fatalf("env mesh topology %q, want ring", kind)
	}
	// Ring route 0 -> 15 is one hop; the mesh's would be six.
	if h := e.Mesh.Hops(0, 15); h != 1 {
		t.Fatalf("ring Hops(0,15) = %d, want 1", h)
	}
}
