package memsys

import (
	"math/rand"
	"testing"
)

// randomRegion builds a structurally valid region: a positive stride and
// communication offsets inside one element (offsets name fields of the
// element, so o < StrideWords — the shape every workload region uses).
func randomRegion(rng *rand.Rand, id uint8, base uint32) Region {
	stride := uint16(rng.Intn(16) + 1)
	nOff := rng.Intn(int(stride)) + 1
	perm := rng.Perm(int(stride))
	offs := make([]uint16, 0, nOff)
	for _, o := range perm[:nOff] {
		offs = append(offs, uint16(o))
	}
	// A size that is deliberately NOT a multiple of the stride sometimes,
	// to exercise CommWords' clip at the region end.
	elems := rng.Intn(8) + 1
	size := uint32(elems)*uint32(stride)*WordBytes + uint32(rng.Intn(int(stride)))*WordBytes
	return Region{
		ID: id, Name: "r", Base: base, Size: size,
		StrideWords: stride, CommOffsets: offs,
	}
}

// TestCommWordsInCommAgree is the agreement property the Flex machinery
// relies on: for every word address a in a structured region,
// InComm(a) is true exactly when a's own word appears in CommWords(a).
// The property also proves the "|| o == off" disjunct the check used to
// carry was redundant: off is reduced mod StrideWords, so o == off
// implies o%StrideWords == off.
func TestCommWordsInCommAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(0xC0FFEE))
	for trial := 0; trial < 500; trial++ {
		r := randomRegion(rng, 1, uint32(rng.Intn(64))*LineBytes)
		for a := r.Base; a < r.Base+r.Size; a += WordBytes {
			inComm := r.InComm(a)
			words := r.CommWords(a)
			listed := false
			for _, w := range words {
				if w == WordAddr(a) {
					listed = true
				}
				// Every listed word must itself be in the communication
				// region and inside the region bounds (the clip).
				if !r.Contains(w) {
					t.Fatalf("region %+v: CommWords(%#x) lists %#x outside the region", r, a, w)
				}
				if !r.InComm(w) {
					t.Fatalf("region %+v: CommWords(%#x) lists %#x but InComm is false", r, a, w)
				}
			}
			if inComm != listed {
				t.Fatalf("region %+v: addr %#x InComm=%v but CommWords listing=%v (%v)",
					r, a, inComm, listed, words)
			}
		}
	}
}

// TestInCommUnstructuredRegions pins the degenerate cases: regions with
// no element structure have no communication region, and CommWords falls
// back to the single requested word.
func TestInCommUnstructuredRegions(t *testing.T) {
	for _, r := range []Region{
		{ID: 1, Base: 0, Size: 256},                              // no stride
		{ID: 2, Base: 0, Size: 256, StrideWords: 4},              // stride, no offsets
		{ID: 3, Base: 0, Size: 256, CommOffsets: []uint16{0, 1}}, // offsets, no stride
	} {
		for a := r.Base; a < r.Base+r.Size; a += WordBytes {
			if r.InComm(a) {
				t.Fatalf("region %+v: InComm(%#x) true without structure", r, a)
			}
			if w := r.CommWords(a); len(w) != 1 || w[0] != WordAddr(a) {
				t.Fatalf("region %+v: CommWords(%#x) = %v, want the word itself", r, a, w)
			}
		}
	}
}
