package memsys

import (
	"math/rand"
	"testing"
)

// linearByAddr is the reference implementation of RegionTable.ByAddr: an
// O(n) scan over the (non-overlapping) regions.
func linearByAddr(regions []Region, addr uint32) *Region {
	for i := range regions {
		if regions[i].Contains(addr) {
			return &regions[i]
		}
	}
	return nil
}

// FuzzRegionTableByAddr fuzzes the binary search every Flex/bypass lookup
// depends on: for an arbitrary set of random non-overlapping regions
// (adjacent, gapped, zero-gap, high-address), ByAddr must agree with the
// linear scan at region starts, ends, interior words, gap words and the
// fuzzed probe address. The checked-in corpus under testdata/fuzz seeds
// the edge shapes (empty table, single region, adjacent regions, probes
// beyond the last region, address-space ceiling).
func FuzzRegionTableByAddr(f *testing.F) {
	f.Add(int64(1), 0, uint32(0))           // empty table
	f.Add(int64(2), 1, uint32(64))          // single region
	f.Add(int64(3), 8, uint32(0x1000))      // several regions, mid probe
	f.Add(int64(4), 16, uint32(0xffffffff)) // probe at the address ceiling
	f.Add(int64(-5), 3, uint32(4))          // negative seed, low probe
	f.Fuzz(func(t *testing.T, seed int64, nRegions int, probe uint32) {
		n := nRegions % 32
		if n < 0 {
			n = -n
		}
		rng := rand.New(rand.NewSource(seed))
		regions := make([]Region, 0, n)
		base := uint32(rng.Intn(1024)) * WordBytes
		for i := 0; i < n; i++ {
			size := uint32(rng.Intn(256)+1) * WordBytes
			if base+size < base {
				break // address space exhausted
			}
			regions = append(regions, Region{ID: uint8(i + 1), Name: "r", Base: base, Size: size})
			gap := uint32(rng.Intn(3)) * uint32(rng.Intn(128)) * WordBytes // often zero: adjacent regions
			next := base + size + gap
			if next < base {
				break
			}
			base = next
		}
		// Shuffle construction order: NewRegionTable must sort.
		rng.Shuffle(len(regions), func(i, j int) { regions[i], regions[j] = regions[j], regions[i] })
		tab, err := NewRegionTable(regions)
		if err != nil {
			t.Fatalf("non-overlapping regions rejected: %v", err)
		}

		sorted := tab.All()
		check := func(addr uint32) {
			got := tab.ByAddr(addr)
			want := linearByAddr(sorted, addr)
			switch {
			case (got == nil) != (want == nil):
				t.Fatalf("ByAddr(%#x) = %v, linear scan = %v", addr, got, want)
			case got != nil && got.ID != want.ID:
				t.Fatalf("ByAddr(%#x) = region %d, linear scan = region %d", addr, got.ID, want.ID)
			}
		}
		check(probe)
		check(WordAddr(probe))
		for i := range sorted {
			r := &sorted[i]
			check(r.Base)
			check(r.Base + r.Size - 1)
			check(r.Base + r.Size) // first word past the region (gap or neighbor)
			check(r.Base + (r.Size/2)&^3)
			if r.Base > 0 {
				check(r.Base - 1)
			}
		}
	})
}
