package memsys

import "repro/internal/waste"

// Class is the top-level traffic category of Figure 5.1a.
type Class uint8

// Traffic classes.
const (
	ClassLD Class = iota
	ClassST
	ClassWB
	ClassOVH
	NumClasses
)

func (c Class) String() string {
	switch c {
	case ClassLD:
		return "LD"
	case ClassST:
		return "ST"
	case ClassWB:
		return "WB"
	case ClassOVH:
		return "Overhead"
	}
	return "Class?"
}

// Bucket is the fine-grained traffic category used by Figures 5.1b-5.1d
// and the overhead split of §5.2.4.
type Bucket uint8

// Traffic buckets.
const (
	// Load/store breakdown (Figure 5.1b/5.1c).
	BReqCtl Bucket = iota
	BRespCtl
	BRespL1Used
	BRespL1Waste
	BRespL2Used
	BRespL2Waste
	// Writeback breakdown (Figure 5.1d).
	BWBCtl
	BWBL2Used
	BWBL2Waste
	BWBMemUsed
	BWBMemWaste
	// Overhead breakdown (§5.2.4).
	BOvhUnblock
	BOvhWBCtl
	BOvhInval
	BOvhAck
	BOvhNack
	BOvhBloom
	NumBuckets
)

func (b Bucket) String() string {
	names := [...]string{
		"Req Ctl", "Resp Ctl", "Resp L1 Used", "Resp L1 Waste",
		"Resp L2 Used", "Resp L2 Waste",
		"WB Control", "WB L2 Used", "WB L2 Waste", "WB Mem Used", "WB Mem Waste",
		"Unblock", "Clean WB Ctl", "Invalidation", "Ack", "NACK", "Bloom Copy",
	}
	if int(b) < len(names) {
		return names[b]
	}
	return "Bucket?"
}

// Traffic accumulates flit-hops per (class, bucket). Data words are
// attributed to Used/Waste lazily: the sender attaches a per-word flit-hop
// share to the destination's waste instance, and the share lands in the
// right bucket when the instance classifies (§5.2: "we assign fractional
// flits to the appropriate categories").
type Traffic struct {
	flitHops [NumClasses][NumBuckets]float64
	enabled  bool
	prof     *waste.Profiler
}

// NewTraffic creates a recorder wired to the profiler's classification
// stream. Recording starts disabled (warm-up); call StartMeasurement.
func NewTraffic(prof *waste.Profiler) *Traffic {
	t := &Traffic{prof: prof}
	prof.OnClassify(func(level waste.Level, class uint8, cat waste.Category, share float64, measured bool) {
		if !measured || share == 0 {
			return
		}
		var b Bucket
		used := cat == waste.Used
		switch level {
		case waste.LevelL1:
			if used {
				b = BRespL1Used
			} else {
				b = BRespL1Waste
			}
		case waste.LevelL2:
			if used {
				b = BRespL2Used
			} else {
				b = BRespL2Waste
			}
		default:
			return // memory-level instances carry no on-chip traffic share
		}
		t.flitHops[Class(class)][b] += share
	})
	return t
}

// StartMeasurement zeroes the counters and enables recording.
func (t *Traffic) StartMeasurement() {
	t.flitHops = [NumClasses][NumBuckets]float64{}
	t.enabled = true
}

// Ctl records a control-only contribution: flits control flits over hops
// links. It is also used for the header flit of data-bearing messages.
func (t *Traffic) Ctl(class Class, bucket Bucket, flits, hops int) {
	if !t.enabled || hops == 0 || flits == 0 {
		return
	}
	t.flitHops[class][bucket] += float64(flits * hops)
}

// Data records the data flits of a response carrying the given destination
// word instances over hops links. Each word's share (hops/4 flit-hops) is
// deferred onto its instance; the unfilled remainder of the last data flit
// is charged to Resp Ctl, as in §5.2. The message's control flit must be
// recorded separately with Ctl.
func (t *Traffic) Data(class Class, hops int, insts []uint64) {
	words := len(insts)
	if words == 0 || hops == 0 {
		return
	}
	share := float64(hops) / 4
	for _, id := range insts {
		t.prof.SetTraffic(id, uint8(class), share)
	}
	if !t.enabled {
		return
	}
	filler := (float64(DataFlits(words)) - float64(words)/4) * float64(hops)
	t.flitHops[class][BRespCtl] += filler
}

// WBData records writeback data flits: dirty words are Used, unmodified
// words are Waste (Figure 5.1d), attribution is immediate. dest selects the
// L2 or Mem buckets. Unfilled flit remainder goes to WB Control.
func (t *Traffic) WBData(toMem bool, hops, dirtyWords, cleanWords int) {
	if !t.enabled || hops == 0 {
		return
	}
	words := dirtyWords + cleanWords
	if words == 0 {
		return
	}
	h := float64(hops)
	used, waste := BWBL2Used, BWBL2Waste
	if toMem {
		used, waste = BWBMemUsed, BWBMemWaste
	}
	t.flitHops[ClassWB][used] += float64(dirtyWords) / 4 * h
	t.flitHops[ClassWB][waste] += float64(cleanWords) / 4 * h
	filler := (float64(DataFlits(words)) - float64(words)/4) * h
	t.flitHops[ClassWB][BWBCtl] += filler
}

// Get returns the flit-hops recorded for (class, bucket).
func (t *Traffic) Get(class Class, bucket Bucket) float64 { return t.flitHops[class][bucket] }

// ClassTotal returns all flit-hops in a class.
func (t *Traffic) ClassTotal(class Class) float64 {
	var s float64
	for b := Bucket(0); b < NumBuckets; b++ {
		s += t.flitHops[class][b]
	}
	return s
}

// Total returns all recorded flit-hops.
func (t *Traffic) Total() float64 {
	var s float64
	for c := Class(0); c < NumClasses; c++ {
		s += t.ClassTotal(c)
	}
	return s
}

// WasteShare returns the fraction of total traffic attributed to wasted
// data movement (the paper's "8.8% of the remaining traffic" metric):
// Resp L1/L2 Waste plus WB L2/Mem Waste over the total.
func (t *Traffic) WasteShare() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	var w float64
	for c := Class(0); c < NumClasses; c++ {
		w += t.flitHops[c][BRespL1Waste] + t.flitHops[c][BRespL2Waste]
	}
	w += t.flitHops[ClassWB][BWBL2Waste] + t.flitHops[ClassWB][BWBMemWaste]
	return w / total
}

// Snapshot returns a copy of all flit-hop counters, detached from the
// recorder (experiment results outlive their simulation Env).
func (t *Traffic) Snapshot() [NumClasses][NumBuckets]float64 { return t.flitHops }
