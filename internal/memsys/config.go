// Package memsys holds the shared memory-system framework: the simulated
// system configuration (the paper's Table 4.1), the memory-operation and
// data-region model that workloads emit, the network-traffic recorder with
// the paper's load/store/writeback/overhead categories and deferred
// per-word Used/Waste attribution, and the execution-time breakdown of
// Figure 5.2. Protocol engines (internal/mesi, internal/denovo) and the
// driver (internal/core) both build on this package.
package memsys

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/bloom"
	"repro/internal/dram"
	"repro/internal/mesh"
)

// Word and line geometry shared by the whole simulator.
const (
	WordBytes    = 4
	LineBytes    = 64
	WordsPerLine = LineBytes / WordBytes
	LineShift    = 6
)

// LineOf returns the line address (byte address >> LineShift) of addr.
func LineOf(addr uint32) uint32 { return addr >> LineShift }

// WordIndex returns the word offset of addr within its line.
func WordIndex(addr uint32) int { return int(addr>>2) & (WordsPerLine - 1) }

// WordAddr returns the word-aligned byte address.
func WordAddr(addr uint32) uint32 { return addr &^ 3 }

// AddrOf reconstructs a byte address from a line address and word index.
func AddrOf(line uint32, word int) uint32 { return line<<LineShift | uint32(word)<<2 }

// Config is the simulated system of Table 4.1 plus protocol-level knobs
// from §4.2 and §4.4.
type Config struct {
	Tiles      int // cores / L1s / L2 slices
	MeshWidth  int
	MeshHeight int
	// Topology selects the NoC geometry: "mesh" (the paper's XY-routed
	// grid, the default), "ring" (bidirectional, the tiles linearized
	// into one cycle), or "torus" (mesh plus wraparound links). Route
	// lengths — and therefore all flit-hop telemetry — follow it.
	Topology string
	// Router selects the fabric's forwarding model: "ideal" (the paper's
	// injection-time link reservation, the default), "vc" (a
	// cycle-level wormhole router with per-port input VCs, credit-based
	// flow control and round-robin allocation), or "deflection" (a
	// cycle-level bufferless router that misroutes on contention instead
	// of buffering, reporting the detours as NetStats.DeflectedHops).
	// Packet latencies — and therefore the congestion telemetry — follow
	// it; minimal flit-hop traffic accounting is identical under all.
	Router string
	// VCs is the vc router's virtual-channel count per input port
	// (0 = default 2). It must be even and at least 2: the dateline
	// deadlock-avoidance scheme splits the VCs into two equal classes, so
	// an odd count would silently give class 0 fewer buffers and skew
	// both fairness and the torus deadlock margin. Validate rejects odd
	// values rather than letting that imbalance happen.
	VCs int
	// VCDepth is the vc router's flit buffer depth per VC (0 = default 4).
	VCDepth int

	L1Bytes int // private L1 data cache per tile
	L1Assoc int

	L2SliceBytes int // shared L2 slice per tile
	L2Assoc      int

	LinkLatency  int64 // cycles per mesh hop
	MaxDataFlits int   // data flits per packet (4 => 64B max data)

	L1Latency int64 // L1 access latency
	L2Latency int64 // L2 slice access latency
	MCLatency int64 // memory-controller processing latency

	StoreBufferEntries  int   // non-blocking writes per core (MESI + DeNovo)
	WriteCombineEntries int   // DeNovo write-combining table entries
	WriteCombineTimeout int64 // cycles before a pending registration flushes

	RetryBackoff int64 // cycles an L1 waits before retrying a NACKed request

	MCTiles []int // tiles hosting memory controllers (corner tiles)
	DRAM    dram.Config

	Bloom bloom.BankConfig // L2 request-bypass filter geometry (§4.4)
}

// CornerTiles returns the memory-controller placement for a width x height
// grid: the four corner tiles, deduplicated in row-major order for
// degenerate shapes (a 1-wide or 1-tall grid has fewer distinct corners,
// and a 1x1 grid exactly one). This is the generalization of the paper's
// {0, 3, 12, 15} on the 4x4 mesh; the ring linearizes the same tiles, so
// the corner indexes stay valid on every topology.
func CornerTiles(width, height int) []int {
	corners := []int{0, width - 1, (height - 1) * width, height*width - 1}
	out := corners[:0]
	for _, c := range corners {
		dup := false
		for _, prev := range out {
			if prev == c {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
		}
	}
	return out
}

// ParseMeshDims parses a "WxH" mesh-dimension string ("4x4", "8x8",
// "16x16") into its width and height. Degenerate shapes fail loudly:
// missing parts ("3x"), non-integers, and non-positive dimensions ("0x4")
// are errors, and so is a single-tile 1x1 grid (no second tile to talk
// to — every NoC quantity would be degenerate).
func ParseMeshDims(s string) (width, height int, err error) {
	parts := strings.Split(strings.TrimSpace(s), "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("memsys: mesh dimensions %q are not WxH (e.g. 4x4, 8x8)", s)
	}
	w, werr := strconv.Atoi(strings.TrimSpace(parts[0]))
	h, herr := strconv.Atoi(strings.TrimSpace(parts[1]))
	if werr != nil || herr != nil {
		return 0, 0, fmt.Errorf("memsys: mesh dimensions %q are not WxH with integer parts", s)
	}
	if w < 1 || h < 1 {
		return 0, 0, fmt.Errorf("memsys: mesh dimensions %dx%d: both must be >= 1", w, h)
	}
	if w*h < 2 {
		return 0, 0, fmt.Errorf("memsys: mesh dimensions %dx%d: a 1-tile network has no links; use at least 2 tiles", w, h)
	}
	return w, h, nil
}

// FormatMeshDims renders mesh dimensions in the canonical "WxH" spelling.
func FormatMeshDims(width, height int) string {
	return fmt.Sprintf("%dx%d", width, height)
}

// WithMesh returns a copy of c re-dimensioned to a width x height grid:
// Tiles, the corner memory-controller placement, and the Bloom bank
// geometry (one bank per L2 slice) all follow the dimensions. Per-tile
// cache and link parameters are unchanged — scaling the fabric scales the
// aggregate capacity with it, as a real tiled CMP would.
func (c Config) WithMesh(width, height int) Config {
	c.MeshWidth, c.MeshHeight = width, height
	c.Tiles = width * height
	c.MCTiles = CornerTiles(width, height)
	c.Bloom = bloom.DefaultBankConfig(c.Tiles)
	return c
}

// Default returns the paper's simulated system (Table 4.1): 16 tiles, 2 GHz
// in-order cores, 32 KB 8-way L1s, 256 KB 16-way L2 slices (4 MB total),
// 4x4 mesh with 16-byte links and 3-cycle link latency, packets of at most
// one control flit and four data flits, corner-tile memory controllers with
// single-channel DDR3-1066 DIMMs.
func Default() Config {
	return Config{
		Tiles:      16,
		MeshWidth:  4,
		MeshHeight: 4,
		Topology:   "mesh",
		Router:     "ideal",

		L1Bytes: 32 * 1024,
		L1Assoc: 8,

		L2SliceBytes: 256 * 1024,
		L2Assoc:      16,

		LinkLatency:  3,
		MaxDataFlits: 4,

		L1Latency: 2,
		L2Latency: 10,
		MCLatency: 6,

		StoreBufferEntries:  32,
		WriteCombineEntries: 32,
		WriteCombineTimeout: 10000,

		RetryBackoff: 24,

		MCTiles: CornerTiles(4, 4),
		DRAM:    dram.DefaultConfig(),
		Bloom:   bloom.DefaultBankConfig(16),
	}
}

// Scaled returns a copy of c with cache capacities divided by div. Input
// sizes are scaled by the same factor in the experiment harness so that
// working-set-to-capacity ratios — which determine reuse, bypass benefit
// and eviction waste — match the paper's. Associativities, the mesh, and
// DRAM timing are unchanged.
func (c Config) Scaled(div int) Config {
	if div <= 1 {
		return c
	}
	c.L1Bytes /= div
	c.L2SliceBytes /= div
	if c.L1Bytes < c.L1Assoc*LineBytes {
		c.L1Bytes = c.L1Assoc * LineBytes
	}
	if c.L2SliceBytes < c.L2Assoc*LineBytes {
		c.L2SliceBytes = c.L2Assoc * LineBytes
	}
	return c
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.Tiles != c.MeshWidth*c.MeshHeight {
		return fmt.Errorf("memsys: tiles %d != mesh %dx%d", c.Tiles, c.MeshWidth, c.MeshHeight)
	}
	if _, err := mesh.NewTopology(c.Topology, c.MeshWidth, c.MeshHeight); err != nil {
		return fmt.Errorf("memsys: %w", err)
	}
	if err := mesh.ValidRouter(c.Router); err != nil {
		return fmt.Errorf("memsys: %w", err)
	}
	if c.VCs != 0 && (c.VCs < 2 || c.VCs%2 != 0) {
		return fmt.Errorf("memsys: VCs = %d; the dateline split needs an even count >= 2", c.VCs)
	}
	if c.VCDepth < 0 {
		return fmt.Errorf("memsys: VCDepth = %d must not be negative", c.VCDepth)
	}
	if len(c.MCTiles) == 0 {
		return fmt.Errorf("memsys: no memory controllers")
	}
	// The memory-controller placement must track the mesh dimensions: the
	// hardcoded 4x4 corners {0, 3, 12, 15} silently land on interior (or
	// out-of-range) tiles of any other grid, skewing every to-MC route
	// length. Each MC tile must be in range and a corner of this grid —
	// configs that re-dimension the mesh go through WithMesh, which keeps
	// the placement in sync.
	corners := CornerTiles(c.MeshWidth, c.MeshHeight)
	for _, t := range c.MCTiles {
		if t < 0 || t >= c.Tiles {
			return fmt.Errorf("memsys: MC tile %d out of range for %d tiles", t, c.Tiles)
		}
		isCorner := false
		for _, corner := range corners {
			if t == corner {
				isCorner = true
				break
			}
		}
		if !isCorner {
			return fmt.Errorf("memsys: MC tile %d is not a corner of the %dx%d mesh (corners: %v); use WithMesh to re-dimension",
				t, c.MeshWidth, c.MeshHeight, corners)
		}
	}
	if c.MaxDataFlits <= 0 {
		return fmt.Errorf("memsys: MaxDataFlits must be positive")
	}
	return nil
}

// HomeTile returns the L2 slice (tile) that owns a line address: lines are
// interleaved across slices.
func (c Config) HomeTile(line uint32) int { return int(line) % c.Tiles }

// Channel returns the memory-channel index for a line address. A different
// bit range than HomeTile is used so slice and channel interleaving are
// decorrelated.
func (c Config) Channel(line uint32) int {
	return int(line>>4) % len(c.MCTiles)
}

// MCTile returns the tile hosting the memory controller for a line.
func (c Config) MCTile(line uint32) int { return c.MCTiles[c.Channel(line)] }

// MaxDataWords is the largest number of words one packet can carry.
func (c Config) MaxDataWords() int { return c.MaxDataFlits * 4 }

// DataFlits returns the number of 16-byte data flits needed for n words.
func DataFlits(words int) int { return (words + 3) / 4 }
