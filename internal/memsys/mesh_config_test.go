package memsys

import (
	"reflect"
	"strings"
	"testing"
)

func TestCornerTiles(t *testing.T) {
	cases := []struct {
		w, h int
		want []int
	}{
		{4, 4, []int{0, 3, 12, 15}}, // the paper's MC placement
		{8, 8, []int{0, 7, 56, 63}},
		{16, 16, []int{0, 15, 240, 255}},
		{2, 8, []int{0, 1, 14, 15}},
		{1, 4, []int{0, 3}},  // 1-wide: left and right corners coincide
		{4, 1, []int{0, 3}},  // 1-tall: top and bottom coincide
		{1, 1, []int{0}},     // degenerate, rejected elsewhere
	}
	for _, c := range cases {
		if got := CornerTiles(c.w, c.h); !reflect.DeepEqual(got, c.want) {
			t.Errorf("CornerTiles(%d, %d) = %v, want %v", c.w, c.h, got, c.want)
		}
	}
}

func TestParseMeshDims(t *testing.T) {
	for _, s := range []string{"4x4", " 8x8 ", "16x16", "2x3", "1x2"} {
		w, h, err := ParseMeshDims(s)
		if err != nil {
			t.Errorf("ParseMeshDims(%q): %v", s, err)
			continue
		}
		if FormatMeshDims(w, h) != strings.ReplaceAll(strings.TrimSpace(s), " ", "") {
			t.Errorf("ParseMeshDims(%q) = %dx%d", s, w, h)
		}
	}
	for _, s := range []string{"", "4", "3x", "x4", "0x4", "4x0", "-1x4", "1x1", "4x4x4", "axb", "4.5x4"} {
		if _, _, err := ParseMeshDims(s); err == nil {
			t.Errorf("ParseMeshDims(%q) accepted a degenerate shape", s)
		}
	}
}

func TestWithMesh(t *testing.T) {
	cfg := Default().WithMesh(8, 8)
	if cfg.Tiles != 64 || cfg.MeshWidth != 8 || cfg.MeshHeight != 8 {
		t.Fatalf("WithMesh(8,8): tiles %d, dims %dx%d", cfg.Tiles, cfg.MeshWidth, cfg.MeshHeight)
	}
	if want := []int{0, 7, 56, 63}; !reflect.DeepEqual(cfg.MCTiles, want) {
		t.Errorf("MC tiles %v, want corners %v", cfg.MCTiles, want)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("WithMesh(8,8) config invalid: %v", err)
	}
	// Interleaving scales with the dims: home tiles cover all 64 slices
	// and channels cover all four controllers.
	homes := map[int]bool{}
	chans := map[int]bool{}
	for line := uint32(0); line < 1024; line++ {
		homes[cfg.HomeTile(line)] = true
		chans[cfg.Channel(line)] = true
	}
	if len(homes) != 64 {
		t.Errorf("home-tile interleaving reached %d of 64 slices", len(homes))
	}
	if len(chans) != len(cfg.MCTiles) {
		t.Errorf("channel interleaving reached %d of %d controllers", len(chans), len(cfg.MCTiles))
	}
}

// TestValidateMCPlacement pins the cross-check that caught the hardcoded
// 4x4 corners: every MC tile must be in range for the tile count AND a
// corner of the configured grid.
func TestValidateMCPlacement(t *testing.T) {
	cfg := Default().WithMesh(8, 8)

	bad := cfg
	bad.MCTiles = []int{0, 3, 12, 15} // the 4x4 literal: interior tiles on 8x8
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "corner") {
		t.Errorf("4x4 corner literal on an 8x8 mesh: err = %v, want a corner complaint", err)
	}

	oor := Default()
	oor.MCTiles = []int{0, 99}
	if err := oor.Validate(); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("out-of-range MC tile: err = %v, want out-of-range complaint", err)
	}

	mismatch := Default()
	mismatch.MeshWidth = 8 // Tiles stays 16: dims and count disagree
	if err := mismatch.Validate(); err == nil {
		t.Error("tiles != width*height passed Validate")
	}
}
