package memsys

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/mesh"
	"repro/internal/sim"
	"repro/internal/waste"
)

// ServicePoint says where a load was satisfied, for the Figure 5.2
// execution-time breakdown.
type ServicePoint uint8

// Load service points.
const (
	PointL1     ServicePoint = iota // L1 hit or store-buffer forward
	PointOnChip                     // L2 slice or a remote L1
	PointMemory                     // DRAM
)

// Sample carries the timing decomposition of one completed load.
type Sample struct {
	Point ServicePoint
	// For PointMemory loads: request travel to the MC, DRAM service, and
	// response travel back (cycles). Zero otherwise.
	ToMC, Mem, FromMC int64
}

// TimeBreakdown accumulates one core's cycles into the Figure 5.2
// categories.
type TimeBreakdown struct {
	Busy, OnChip, ToMC, Mem, FromMC, Sync int64
}

// Total returns the sum of all categories.
func (t *TimeBreakdown) Total() int64 {
	return t.Busy + t.OnChip + t.ToMC + t.Mem + t.FromMC + t.Sync
}

// AddStall distributes a load stall of d cycles according to the sample.
// For memory loads the protocol-reported component times are scaled to the
// observed stall so the categories always sum to the wall-clock time.
func (t *TimeBreakdown) AddStall(d int64, s Sample) {
	if d <= 0 {
		return
	}
	switch s.Point {
	case PointL1, PointOnChip:
		t.OnChip += d
	case PointMemory:
		sum := s.ToMC + s.Mem + s.FromMC
		if sum <= 0 {
			t.Mem += d
			return
		}
		toMC := d * s.ToMC / sum
		mem := d * s.Mem / sum
		t.ToMC += toMC
		t.Mem += mem
		t.FromMC += d - toMC - mem
	}
}

// Protocol is the contract between the core driver and a coherence
// protocol engine.
type Protocol interface {
	// Name is the configuration name as it appears in the figures.
	Name() string
	// Load issues a blocking load for core; done fires when the value is
	// available, with the timing sample for Figure 5.2.
	Load(core int, addr uint32, done func(val uint32, s Sample))
	// Store issues a non-blocking store. It returns false when the store
	// buffer is full; the driver retries after the unstall callback.
	Store(core int, addr uint32, val uint32) bool
	// SetStoreUnstall registers the driver's retry hook for a core.
	SetStoreUnstall(core int, fn func())
	// Drain completes core's pending stores/registrations before a
	// barrier; done fires when the core is quiescent.
	Drain(core int, done func())
	// AtBarrier performs the protocol's global barrier actions (DeNovo
	// self-invalidation of the written regions, Bloom filter clears).
	// It is called once per barrier after every core has drained.
	AtBarrier(written []uint8)
}

// Env bundles the shared simulation state handed to protocol engines.
type Env struct {
	K       *sim.Kernel
	Mesh    *mesh.Mesh
	Chans   []*dram.Channel // one per memory channel, indexed like Config.MCTiles
	Cfg     Config
	Traffic *Traffic
	Prof    *waste.Profiler
	Regions *RegionTable
	Mem     []uint32 // word-indexed backing store (functional values)
}

// NewEnv constructs the kernel, mesh, DRAM channels, profiler and traffic
// recorder for one simulation run.
func NewEnv(cfg Config, footprintBytes uint32, regions []Region) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rt, err := NewRegionTable(regions)
	if err != nil {
		return nil, err
	}
	k := &sim.Kernel{}
	prof := waste.NewProfiler()
	e := &Env{
		K: k,
		Mesh: mesh.New(k, mesh.Config{
			Width: cfg.MeshWidth, Height: cfg.MeshHeight,
			Topology: cfg.Topology,
			Router:   cfg.Router,
			VCs:      cfg.VCs, VCDepth: cfg.VCDepth,
			LinkLatency: cfg.LinkLatency, LocalLatency: 1,
		}),
		Cfg:     cfg,
		Traffic: NewTraffic(prof),
		Prof:    prof,
		Regions: rt,
		Mem:     make([]uint32, (footprintBytes+3)/4),
	}
	e.Chans = make([]*dram.Channel, len(cfg.MCTiles))
	for i := range e.Chans {
		e.Chans[i] = dram.NewChannel(k, cfg.DRAM)
	}
	return e, nil
}

// MemRead returns the backing-store value of a word address.
func (e *Env) MemRead(addr uint32) uint32 {
	i := addr >> 2
	if int(i) >= len(e.Mem) {
		panic(fmt.Sprintf("memsys: read outside footprint: %#x", addr))
	}
	return e.Mem[i]
}

// MemWrite updates the backing-store value of a word address.
func (e *Env) MemWrite(addr uint32, val uint32) {
	i := addr >> 2
	if int(i) >= len(e.Mem) {
		panic(fmt.Sprintf("memsys: write outside footprint: %#x", addr))
	}
	e.Mem[i] = val
}

// StartMeasurement flips profiler and traffic recorder into measured mode
// after the warm-up phases and opens a fresh congestion-telemetry window
// on the fabric.
func (e *Env) StartMeasurement() {
	e.Prof.StartMeasurement()
	e.Traffic.StartMeasurement()
	e.Mesh.ResetStats()
}
