package workloads

import "repro/internal/memsys"

// Barnes models SPLASH-2 Barnes-Hut (Table 4.2: 16K bodies). Each
// iteration builds an oct-tree (sequentialized onto thread 0, as the paper
// modified it), computes forces by traversing the tree, then updates body
// positions and velocities.
//
// Layouts reproduce what the paper blames Barnes' waste on:
//   - bodies are 96-byte array-of-structs records (not a multiple of the
//     line size, so useful fields spread across a varying number of
//     lines), with several fields used only during tree construction and
//     compiler padding mixed into useful lines;
//   - cells are 128-byte records whose center-of-mass and child-pointer
//     fields are the only ones touched during the force phase.
//
// The Flex communication regions cover exactly the force-phase fields, so
// DFlexL1/DFlexL2 avoid shipping build-only fields and padding (§5.2.1).
type Barnes struct {
	threads int
	bodies  int
	cells   int
	lay     layout
	bodyR   uint8
	cellR   uint8
}

const (
	bodyWords = 24 // 96 bytes: mass(1) pos(6) pad(1) vel(6) acc(6) build-only(4)
	cellWords = 32 // 128 bytes: COM mass+pos(8) children(4) build-only(20)

	bodyMass  = 0 // word offsets within a body
	bodyPos   = 1
	bodyVel   = 8
	bodyAcc   = 14
	bodyBuild = 20

	cellCOM      = 0
	cellChildren = 8
	cellBuild    = 12
)

// NewBarnes builds the Barnes-Hut benchmark at the given scale.
func NewBarnes(size Size, threads int) *Barnes {
	var n int
	switch size {
	case Tiny:
		n = 256
	case Small:
		n = 2048
	default:
		n = 16 * 1024 // paper
	}
	b := &Barnes{threads: threads, bodies: n, cells: n / 2}
	// Force-phase communication regions: mass+pos for bodies, COM+children
	// for cells.
	bodyComm := make([]uint16, 8)
	for i := range bodyComm {
		bodyComm[i] = uint16(i)
	}
	cellComm := make([]uint16, 12)
	for i := range cellComm {
		cellComm[i] = uint16(i)
	}
	b.bodyR = b.lay.add("bodies", uint32(n)*bodyWords*4,
		regionOpts{strideWords: bodyWords, comm: bodyComm})
	b.cellR = b.lay.add("cells", uint32(b.cells)*cellWords*4,
		regionOpts{strideWords: cellWords, comm: cellComm})
	return b
}

// Name implements memsys.Program.
func (b *Barnes) Name() string { return "barnes" }

// Threads implements memsys.Program.
func (b *Barnes) Threads() int { return b.threads }

// FootprintBytes implements memsys.Program.
func (b *Barnes) FootprintBytes() uint32 { return b.lay.next }

// Regions implements memsys.Program.
func (b *Barnes) Regions() []memsys.Region { return b.lay.regions }

// Phases implements memsys.Program: (build, force, update) x 2 iterations.
func (b *Barnes) Phases() int { return 6 }

// WarmupPhases implements memsys.Program: the first iteration (§4.3).
func (b *Barnes) WarmupPhases() int { return 3 }

// WrittenRegions implements memsys.Program.
func (b *Barnes) WrittenRegions(p int) []uint8 {
	switch p % 3 {
	case 0:
		return []uint8{b.cellR}
	default:
		return []uint8{b.bodyR}
	}
}

func (b *Barnes) bodyAddr(i, word int) uint32 {
	return b.lay.base(b.bodyR) + uint32(i*bodyWords+word)*4
}

func (b *Barnes) cellAddr(i, word int) uint32 {
	return b.lay.base(b.cellR) + uint32(i*cellWords+word)*4
}

// EmitOps implements memsys.Program.
func (b *Barnes) EmitOps(p, t int, emit func(memsys.Op)) {
	e := emitter{emit}
	it := p / 3
	lo, hi := span(b.bodies, b.threads, t)
	switch p % 3 {
	case 0: // tree build, sequentialized onto thread 0
		if t != 0 {
			return
		}
		rng := newRNG(uint64(0xbab0 + it))
		for i := 0; i < b.bodies; i++ {
			e.loadWords(b.bodyAddr(i, bodyMass), 7) // mass+pos guide insertion
			// Walk an insertion path and touch build-only cell fields.
			c := rng.intn(b.cells)
			e.loadWords(b.cellAddr(c, cellChildren), 4)
			e.storeWords(b.cellAddr(c, cellBuild), 4)
			e.compute(6)
		}
		for c := 0; c < b.cells; c++ { // finalize: write whole cell records
			e.storeWords(b.cellAddr(c, 0), cellWords)
		}
	case 1: // force computation
		rng := newRNG(uint64(0xf0ce+it)<<8 + uint64(t))
		for i := lo; i < hi; i++ {
			e.loadWords(b.bodyAddr(i, bodyMass), 8) // own mass+pos
			// Tree walk: COM + children of ~8 cells.
			for d := 0; d < 8; d++ {
				c := rng.intn(b.cells)
				e.loadWords(b.cellAddr(c, cellCOM), 8)
				e.loadWords(b.cellAddr(c, cellChildren), 4)
				e.compute(10)
			}
			// Direct interactions with a few nearby bodies.
			for d := 0; d < 3; d++ {
				j := rng.intn(b.bodies)
				e.loadWords(b.bodyAddr(j, bodyMass), 8)
				e.compute(12)
			}
			e.storeWords(b.bodyAddr(i, bodyAcc), 6) // own acceleration
		}
	case 2: // update positions and velocities
		for i := lo; i < hi; i++ {
			e.loadWords(b.bodyAddr(i, bodyAcc), 6)
			e.loadWords(b.bodyAddr(i, bodyVel), 6)
			e.compute(8)
			e.storeWords(b.bodyAddr(i, bodyVel), 6)
			e.storeWords(b.bodyAddr(i, bodyPos), 6)
		}
	}
}
