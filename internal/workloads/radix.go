package workloads

import "repro/internal/memsys"

// Radix models the SPLASH-2 radix sort (Table 4.2: 4M keys, radix 1024).
// Each iteration sorts by one 10-bit digit: a histogram phase streams the
// keys, a scan phase (thread 0) turns per-thread histograms into global
// offsets, and a permutation phase streams the keys again and scatters
// them into the destination array. Source and destination swap between
// iterations. The generator computes the real permutation so iteration
// n+1 sees the key order iteration n produced, and so concurrent writers
// never touch the same address (data-race free).
//
// The patterns the paper attributes radix's results to:
//   - the permutation writes randomly across 1024 buckets, far more lines
//     than the L1 (or DeNovo's 32-entry write-combining table) can hold,
//     so MESI fetch-on-write produces Write+Evict waste and DeNovo issues
//     extra registration control traffic (§5.2.2),
//   - both arrays are streamed read-once when acting as the source
//     (L2 response bypass type 2).
type Radix struct {
	threads int
	n       int
	lay     layout
	arr     [2]uint8 // ping-pong key arrays
	hist    uint8
	offsets uint8

	// keyOrder[it][i] is the key value at position i at the start of
	// iteration it; rank[it][i] is where position i's key lands.
	keys  [][]uint32
	ranks [][]int32
}

const radixBits = 10
const radixBuckets = 1 << radixBits

// NewRadix builds the radix benchmark at the given scale.
func NewRadix(size Size, threads int) *Radix {
	var n int
	switch size {
	case Tiny:
		n = 16 * 1024
	case Small:
		n = 256 * 1024
	default:
		n = 4 * 1024 * 1024 // paper
	}
	r := &Radix{threads: threads, n: n}
	arrBytes := uint32(n) * 4
	r.arr[0] = r.lay.add("keys0", arrBytes, regionOpts{strideWords: 1, bypass: true})
	r.arr[1] = r.lay.add("keys1", arrBytes, regionOpts{strideWords: 1, bypass: true})
	r.hist = r.lay.add("hist", uint32(threads)*radixBuckets*4, regionOpts{})
	r.offsets = r.lay.add("offsets", uint32(threads)*radixBuckets*4, regionOpts{})
	r.precompute()
	return r
}

// iterations: one warm-up sort pass plus one measured pass (§4.3).
func (r *Radix) iterations() int { return 2 }

// precompute materializes keys and destination ranks for every iteration.
func (r *Radix) precompute() {
	iters := r.iterations()
	r.keys = make([][]uint32, iters+1)
	r.ranks = make([][]int32, iters)
	cur := make([]uint32, r.n)
	rng := newRNG(0xace5)
	for i := range cur {
		cur[i] = uint32(rng.next()) & (1<<(radixBits*2) - 1)
	}
	r.keys[0] = cur
	for it := 0; it < iters; it++ {
		shift := uint(radixBits * it)
		// Per-thread bucket counts in thread-major order, as the scan
		// phase defines them.
		starts := make([]int32, r.threads*radixBuckets)
		for t := 0; t < r.threads; t++ {
			lo, hi := span(r.n, r.threads, t)
			for i := lo; i < hi; i++ {
				b := int(cur[i]>>shift) & (radixBuckets - 1)
				starts[b*r.threads+t]++
			}
		}
		var sum int32
		for i := range starts {
			c := starts[i]
			starts[i] = sum
			sum += c
		}
		rank := make([]int32, r.n)
		next := append([]int32(nil), starts...)
		for t := 0; t < r.threads; t++ {
			lo, hi := span(r.n, r.threads, t)
			for i := lo; i < hi; i++ {
				b := int(cur[i]>>shift) & (radixBuckets - 1)
				rank[i] = next[b*r.threads+t]
				next[b*r.threads+t]++
			}
		}
		r.ranks[it] = rank
		out := make([]uint32, r.n)
		for i, p := range rank {
			out[p] = cur[i]
		}
		cur = out
		r.keys[it+1] = cur
	}
}

// Name implements memsys.Program.
func (r *Radix) Name() string { return "radix" }

// Threads implements memsys.Program.
func (r *Radix) Threads() int { return r.threads }

// FootprintBytes implements memsys.Program.
func (r *Radix) FootprintBytes() uint32 { return r.lay.next }

// Regions implements memsys.Program.
func (r *Radix) Regions() []memsys.Region { return r.lay.regions }

// Phases implements memsys.Program: 3 per iteration.
func (r *Radix) Phases() int { return 3 * r.iterations() }

// WarmupPhases implements memsys.Program: the first sort pass.
func (r *Radix) WarmupPhases() int { return 3 }

// WrittenRegions implements memsys.Program.
func (r *Radix) WrittenRegions(p int) []uint8 {
	it, ph := p/3, p%3
	switch ph {
	case 0:
		return []uint8{r.hist}
	case 1:
		return []uint8{r.offsets}
	default:
		return []uint8{r.arr[(it+1)%2]}
	}
}

// EmitOps implements memsys.Program.
func (r *Radix) EmitOps(p, t int, emit func(memsys.Op)) {
	e := emitter{emit}
	it, ph := p/3, p%3
	src := r.lay.base(r.arr[it%2])
	dst := r.lay.base(r.arr[(it+1)%2])
	lo, hi := span(r.n, r.threads, t)
	switch ph {
	case 0: // histogram: stream keys, flush local counts at the end
		for i := lo; i < hi; i++ {
			e.load(src + uint32(i)*4)
			if i%16 == 15 {
				e.compute(8)
			}
		}
		histBase := r.lay.base(r.hist) + uint32(t)*radixBuckets*4
		e.storeWords(histBase, radixBuckets)
	case 1: // scan (thread 0): read all histograms, write all offsets
		if t != 0 {
			return
		}
		e.loadWords(r.lay.base(r.hist), r.threads*radixBuckets)
		e.compute(radixBuckets)
		e.storeWords(r.lay.base(r.offsets), r.threads*radixBuckets)
	case 2: // permutation: stream source, scatter into destination
		rank := r.ranks[it]
		// Each thread reads its offsets row once.
		e.loadWords(r.lay.base(r.offsets)+uint32(t)*radixBuckets*4, radixBuckets)
		for i := lo; i < hi; i++ {
			e.load(src + uint32(i)*4)
			e.store(dst + uint32(rank[i])*4)
		}
	}
}

// KeysAt exposes the key array contents at the start of iteration it, for
// tests that validate the permutation is a real sort.
func (r *Radix) KeysAt(it int) []uint32 { return r.keys[it] }
