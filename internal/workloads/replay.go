package workloads

import (
	"fmt"

	"repro/internal/memsys"
	"repro/internal/trace"
)

// The replay spec re-drives a recorded op-stream trace (internal/trace)
// through the Program contract, bit-identically to the program it was
// captured from. Record traces with `trafficsim -record <file>` or the
// trace package's Recorder, then run them like any benchmark:
//
//	trafficsim -record /tmp/fft.trc -benchmarks FFT -size tiny
//	trafficsim -fig 5.1a -benchmarks 'replay(file=/tmp/fft.trc)'
//
// The trace fixes the thread count, footprint and phase structure, so the
// size and threads arguments are ignored (a trace records one scale).
func replaySpec() specDef {
	return specDef{
		name: "replay", synthetic: true,
		params: []paramDef{{key: "file", def: "", desc: "path to a recorded trace (trafficsim -record)"}},
		desc:   "re-drive a recorded op-stream trace bit-identically",
		build: func(canonical string, args []string, _ Size, _ int) (memsys.Program, error) {
			path := args[0]
			if path == "" {
				return nil, fmt.Errorf("workloads: replay needs a trace: replay(file=path)")
			}
			t, err := trace.ReadFile(path)
			if err != nil {
				return nil, fmt.Errorf("workloads: replay: %w", err)
			}
			return trace.NewProgram(t, canonical), nil
		},
	}
}
