package workloads

// Synthetic traffic patterns: the standard NoC stress suite (uniform
// random, transpose, bit-complement, hotspot, nearest-neighbor,
// producer/consumer), each expressed as a data-race-free memsys.Program so
// it runs under every protocol spec with full waste attribution, not just
// as raw packet injection.
//
// All patterns share one shape. A single "data" region holds linesPer
// cache lines per thread, interleaved so thread t owns lines congruent to
// t modulo the thread count — with the paper's 16 threads on 16 tiles,
// thread t's lines are homed at tile t's L2 slice, so a pattern's
// (consumer -> owner) map is exactly its (node -> destination tile)
// traffic map. Phases alternate:
//
//	produce: every writer overwrites all words of its own lines
//	         (store traffic; MESI's fetch-on-write is pure Write waste),
//	consume: every consumer reads the first readWords words of each line
//	         its pattern maps it to (load traffic toward the owners'
//	         tiles; the unread words are Fetch waste).
//
// The region is annotated like the ported benchmarks — line-sized elements
// whose communication region is the consumed half (Flex), marked
// read-then-overwritten (L2 bypass) — so the full optimization ladder has
// traction on synthetic traffic too. Threads idle in a phase (consumers
// while producing, producers while consuming, and in prodcons the
// non-writers) emit matching compute so barriers stay balanced.
//
// The injection-rate parameter p inserts round(1/p)-1 compute cycles after
// each line's burst, approximating one request packet per 1/p cycles per
// active thread. Everything is precomputed at construction: EmitOps is a
// pure read of frozen state, as the engine and the DRF fuzz target
// require.

import (
	"fmt"

	"repro/internal/memsys"
)

// synthDims returns (linesPer, iters) for an input scale.
func synthDims(size Size) (int, int) {
	switch size {
	case Tiny:
		return 16, 2
	case Small:
		return 64, 3
	default:
		return 256, 4
	}
}

// synthReadWords is how many leading words of a line consumers read; the
// rest of the fetched line is attributable waste.
const synthReadWords = memsys.WordsPerLine / 2

// synthetic implements memsys.Program for all registered patterns.
type synthetic struct {
	name     string
	threads  int
	lay      layout
	data     uint8
	linesPer int
	iters    int
	gap      int         // compute cycles after each line burst
	writer   []bool      // per thread: writes during produce phases
	dests    [][][]int32 // [iter][thread] -> global line indexes to consume
}

// lineIndex returns the region-relative line index of owner o's j-th line.
func (s *synthetic) lineIndex(o, j int) int32 { return int32(j*s.threads + o) }

func (s *synthetic) lineAddr(idx int32) uint32 {
	return s.lay.base(s.data) + uint32(idx)*memsys.LineBytes
}

// newSynthetic builds the shared skeleton; callers fill dests and writer.
func newSynthetic(name string, size Size, threads int, rate float64) *synthetic {
	linesPer, iters := synthDims(size)
	s := &synthetic{
		name:     name,
		threads:  threads,
		linesPer: linesPer,
		iters:    iters,
		gap:      int(1/rate+0.5) - 1,
	}
	var comm []uint16
	for w := 0; w < synthReadWords; w++ {
		comm = append(comm, uint16(w))
	}
	s.data = s.lay.add("data", uint32(threads*linesPer)*memsys.LineBytes, regionOpts{
		strideWords: memsys.WordsPerLine,
		comm:        comm,
		bypass:      true,
	})
	s.writer = make([]bool, threads)
	for t := range s.writer {
		s.writer[t] = true
	}
	s.dests = make([][][]int32, iters)
	for i := range s.dests {
		s.dests[i] = make([][]int32, threads)
	}
	return s
}

// allLinesOf maps consumer t to every line of one owner, per iteration.
func (s *synthetic) allLinesOf(owner func(t int) int) {
	for i := range s.dests {
		for t := 0; t < s.threads; t++ {
			o := owner(t)
			lines := make([]int32, s.linesPer)
			for j := range lines {
				lines[j] = s.lineIndex(o, j)
			}
			s.dests[i][t] = lines
		}
	}
}

// Name implements memsys.Program: the canonical spec string.
func (s *synthetic) Name() string { return s.name }

// Threads implements memsys.Program.
func (s *synthetic) Threads() int { return s.threads }

// FootprintBytes implements memsys.Program.
func (s *synthetic) FootprintBytes() uint32 { return s.lay.next }

// Regions implements memsys.Program.
func (s *synthetic) Regions() []memsys.Region { return s.lay.regions }

// Phases implements memsys.Program: warm-up, then produce/consume per
// iteration.
func (s *synthetic) Phases() int { return 1 + 2*s.iters }

// WarmupPhases implements memsys.Program.
func (s *synthetic) WarmupPhases() int { return 1 }

// WrittenRegions implements memsys.Program: produce phases dirty the data
// region (DeNovo self-invalidates it at their closing barriers).
func (s *synthetic) WrittenRegions(p int) []uint8 {
	if p >= 1 && p%2 == 1 {
		return []uint8{s.data}
	}
	return nil
}

// idleCycles approximates one phase of active work, so idle threads reach
// the barrier on a comparable clock instead of instantly.
func (s *synthetic) idleCycles() int { return s.linesPer * (s.gap + 4) }

// EmitOps implements memsys.Program.
func (s *synthetic) EmitOps(p, t int, emit func(memsys.Op)) {
	e := emitter{emit}
	switch {
	case p == 0: // warm-up: thread 0 touches one word per line.
		if t != 0 {
			return
		}
		for off := uint32(0); off < s.lay.next; off += memsys.LineBytes {
			e.load(off)
		}
	case p%2 == 1: // produce
		if !s.writer[t] {
			e.compute(s.idleCycles())
			return
		}
		for j := 0; j < s.linesPer; j++ {
			e.storeWords(s.lineAddr(s.lineIndex(t, j)), memsys.WordsPerLine)
			e.compute(s.gap)
		}
	default: // consume
		lines := s.dests[(p-2)/2][t]
		if len(lines) == 0 {
			e.compute(s.idleCycles())
			return
		}
		for _, idx := range lines {
			e.loadWords(s.lineAddr(idx), synthReadWords)
			e.compute(s.gap)
		}
	}
}

// isqrt returns the integer square root of n.
func isqrt(n int) int {
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// isPow2 reports whether n is a power of two.
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// checkRate validates an injection-rate parameter. The lower bound keeps
// the derived compute gap (~1/p cycles) inside both int range and a
// simulatable phase length; below it, 1/p would overflow the float-to-int
// conversion and silently invert the knob.
func checkRate(spec string, p float64) error {
	if p < 1e-4 || p > 1 {
		return fmt.Errorf("workloads: %s: injection rate p = %g outside [0.0001, 1]", spec, p)
	}
	return nil
}

// syntheticSpecs returns the synthetic-pattern registry entries in
// canonical order; spec.go registers them after the benchmarks.
func syntheticSpecs() []specDef {
	return []specDef{{
		name: "uniform", synthetic: true,
		params: []paramDef{{key: "p", def: "0.05", desc: "injection rate (line bursts per cycle per thread)"}},
		desc:   "uniform-random traffic: every consumer reads lines of uniformly drawn owners",
		build: func(canonical string, args []string, size Size, threads int) (memsys.Program, error) {
			p := argFloat(args, 0)
			if err := checkRate(canonical, p); err != nil {
				return nil, err
			}
			s := newSynthetic(canonical, size, threads, p)
			r := newRNG(0x756e69 ^ uint64(threads)<<8 ^ uint64(size))
			for i := range s.dests {
				for t := 0; t < threads; t++ {
					lines := make([]int32, s.linesPer)
					for j := range lines {
						lines[j] = s.lineIndex(r.intn(threads), r.intn(s.linesPer))
					}
					s.dests[i][t] = lines
				}
			}
			return s, nil
		},
	}, {
		name: "transpose", synthetic: true,
		params: []paramDef{{key: "p", def: "0.05", desc: "injection rate"}},
		desc:   "matrix-transpose traffic: node (x,y) consumes from (y,x); index reversal when the thread count is not a square",
		build: func(canonical string, args []string, size Size, threads int) (memsys.Program, error) {
			p := argFloat(args, 0)
			if err := checkRate(canonical, p); err != nil {
				return nil, err
			}
			s := newSynthetic(canonical, size, threads, p)
			side := isqrt(threads)
			s.allLinesOf(func(t int) int {
				if side*side == threads {
					return (t % side * side) + t/side
				}
				return threads - 1 - t
			})
			return s, nil
		},
	}, {
		name: "bitcomp", synthetic: true,
		params: []paramDef{{key: "p", def: "0.05", desc: "injection rate"}},
		desc:   "bit-complement traffic: thread t consumes from ^t (index reversal for non-power-of-two counts)",
		build: func(canonical string, args []string, size Size, threads int) (memsys.Program, error) {
			p := argFloat(args, 0)
			if err := checkRate(canonical, p); err != nil {
				return nil, err
			}
			s := newSynthetic(canonical, size, threads, p)
			s.allLinesOf(func(t int) int {
				if isPow2(threads) {
					return ^t & (threads - 1)
				}
				return threads - 1 - t
			})
			return s, nil
		},
	}, {
		name: "hotspot", synthetic: true,
		params: []paramDef{
			{key: "t", def: "4", desc: "hot tiles: consumers read only lines homed at the first t tiles"},
			{key: "p", def: "0.05", desc: "injection rate"},
		},
		desc: "hotspot traffic: all consumers hammer the first t tiles' lines",
		build: func(canonical string, args []string, size Size, threads int) (memsys.Program, error) {
			h, p := argInt(args, 0), argFloat(args, 1)
			if err := checkRate(canonical, p); err != nil {
				return nil, err
			}
			if h < 1 {
				return nil, fmt.Errorf("workloads: %s: hot-tile count t = %d must be >= 1", canonical, h)
			}
			if h > threads {
				h = threads
			}
			s := newSynthetic(canonical, size, threads, p)
			for i := range s.dests {
				for t := 0; t < threads; t++ {
					lines := make([]int32, s.linesPer)
					for j := range lines {
						lines[j] = s.lineIndex((t+j+i)%h, j)
					}
					s.dests[i][t] = lines
				}
			}
			return s, nil
		},
	}, {
		name: "neighbor", synthetic: true,
		params: []paramDef{{key: "p", def: "0.05", desc: "injection rate"}},
		desc:   "nearest-neighbor traffic: thread t consumes from thread t+1 (mod threads)",
		build: func(canonical string, args []string, size Size, threads int) (memsys.Program, error) {
			p := argFloat(args, 0)
			if err := checkRate(canonical, p); err != nil {
				return nil, err
			}
			s := newSynthetic(canonical, size, threads, p)
			s.allLinesOf(func(t int) int { return (t + 1) % threads })
			return s, nil
		},
	}, {
		name: "prodcons", synthetic: true,
		params: []paramDef{
			{key: "groups", def: "4", desc: "sharing groups; in each, the first half produce and the rest consume"},
			{key: "p", def: "0.05", desc: "injection rate"},
		},
		desc: "producer/consumer traffic: disjoint groups, consumers cycle over their group's producers",
		build: func(canonical string, args []string, size Size, threads int) (memsys.Program, error) {
			g, p := argInt(args, 0), argFloat(args, 1)
			if err := checkRate(canonical, p); err != nil {
				return nil, err
			}
			if g < 1 {
				return nil, fmt.Errorf("workloads: %s: groups = %d must be >= 1", canonical, g)
			}
			if g > threads {
				g = threads
			}
			s := newSynthetic(canonical, size, threads, p)
			gs := (threads + g - 1) / g
			for t := range s.writer {
				s.writer[t] = t%gs < (gs+1)/2 // first half of each group produces
			}
			for i := range s.dests {
				for t := 0; t < threads; t++ {
					if s.writer[t] {
						continue // producers do not consume
					}
					lo := t / gs * gs
					var prods []int
					for m := lo; m < lo+gs && m < threads; m++ {
						if s.writer[m] {
							prods = append(prods, m)
						}
					}
					if len(prods) == 0 {
						continue
					}
					lines := make([]int32, s.linesPer)
					for j := range lines {
						lines[j] = s.lineIndex(prods[(t+j)%len(prods)], j)
					}
					s.dests[i][t] = lines
				}
			}
			return s, nil
		},
	}}
}
