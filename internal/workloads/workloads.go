// Package workloads is the parameterized workload registry: the paper's
// six benchmarks (Table 4.2) as deterministic memory-reference
// generators, the standard NoC synthetic traffic patterns (uniform,
// transpose, bitcomp, hotspot, neighbor, prodcons — spec.go,
// synthetic.go), and replay of recorded op-stream traces (replay.go,
// internal/trace). Specs resolve through ByName/ParseSpec as
// "name(key=value,...)" strings with loud errors for unknown input.
//
// The benchmarks are FFT, LU, radix and Barnes-Hut from SPLASH-2,
// fluidanimate from PARSEC (modified to the ghost-cell pattern), and
// parallel SAH kD-tree construction. The original study ran the real
// binaries on a full-system simulator; here each benchmark is a
// synthetic kernel that reproduces the access patterns the paper
// attributes its results to (see DESIGN.md): phase structure separated
// by barriers, per-thread working sets, element layouts with
// per-phase-unused fields, streaming read-once regions, scattered
// permutation writes, and read-then-overwrite accumulators. Every
// program in the registry is data-race free across threads within a
// phase (the property DeNovo requires), which the package tests verify.
package workloads

import (
	"fmt"

	"repro/internal/memsys"
)

// Size selects an input scale.
type Size int

// Input scales. Tiny is for unit tests, Small for the benchmark harness
// (with proportionally scaled caches), Paper for the Table 4.2 inputs.
const (
	Tiny Size = iota
	Small
	Paper
)

// ScaleDiv returns the cache-scaling divisor the experiment harness pairs
// with each input size so working-set/capacity ratios match the paper.
func (s Size) ScaleDiv() int {
	switch s {
	case Tiny:
		return 64
	case Small:
		return 16
	default:
		return 1
	}
}

// String returns the scale's CLI spelling ("tiny", "small", "paper").
func (s Size) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Paper:
		return "paper"
	}
	return fmt.Sprintf("Size(%d)", int(s))
}

// benchmarks is the single source of truth for the six ported programs,
// in the paper's figure order: Names, Catalog and the registry entries in
// spec.go all derive from it.
var benchmarks = []struct {
	name string
	ctor func(Size, int) memsys.Program
}{
	{"fluidanimate", func(s Size, t int) memsys.Program { return NewFluidanimate(s, t) }},
	{"LU", func(s Size, t int) memsys.Program { return NewLU(s, t) }},
	{"FFT", func(s Size, t int) memsys.Program { return NewFFT(s, t) }},
	{"radix", func(s Size, t int) memsys.Program { return NewRadix(s, t) }},
	{"barnes", func(s Size, t int) memsys.Program { return NewBarnes(s, t) }},
	{"kD-tree", func(s Size, t int) memsys.Program { return NewKDTree(s, t) }},
}

// Catalog returns all six benchmarks at the given scale with the given
// thread count (the paper uses 16, one per tile).
func Catalog(size Size, threads int) []memsys.Program {
	progs := make([]memsys.Program, len(benchmarks))
	for i, b := range benchmarks {
		progs[i] = b.ctor(size, threads)
	}
	return progs
}

// Names lists the ported benchmark names in the paper's figure order.
// The full registry — benchmarks plus synthetic patterns and the trace
// replayer — is SpecNames (spec.go); resolve any of them with ByName.
func Names() []string {
	names := make([]string, len(benchmarks))
	for i, b := range benchmarks {
		names[i] = b.name
	}
	return names
}

// layout allocates line-aligned regions in a growing footprint.
type layout struct {
	regions []memsys.Region
	next    uint32
}

func (l *layout) add(name string, bytes uint32, opts regionOpts) uint8 {
	id := uint8(len(l.regions) + 1)
	bytes = (bytes + memsys.LineBytes - 1) &^ (memsys.LineBytes - 1)
	l.regions = append(l.regions, memsys.Region{
		ID:          id,
		Name:        name,
		Base:        l.next,
		Size:        bytes,
		StrideWords: opts.strideWords,
		CommOffsets: opts.comm,
		Bypass:      opts.bypass,
	})
	l.next += bytes
	return id
}

func (l *layout) base(id uint8) uint32 { return l.regions[id-1].Base }

type regionOpts struct {
	strideWords uint16
	comm        []uint16
	bypass      bool
}

// rng is a small deterministic xorshift PRNG so generators never depend on
// math/rand internals across Go versions.
type rng uint64

func newRNG(seed uint64) *rng {
	r := rng(seed*2685821657736338717 + 1)
	return &r
}

func (r *rng) next() uint64 {
	x := uint64(*r)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*r = rng(x)
	return x
}

// intn returns a deterministic value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// emitter wraps the raw emit callback with convenience ops.
type emitter struct {
	emit func(memsys.Op)
}

func (e emitter) load(addr uint32)  { e.emit(memsys.Op{Kind: memsys.OpLoad, Addr: addr &^ 3}) }
func (e emitter) store(addr uint32) { e.emit(memsys.Op{Kind: memsys.OpStore, Addr: addr &^ 3}) }
func (e emitter) compute(cycles int) {
	for cycles > 0 {
		c := cycles
		if c > 60000 {
			c = 60000
		}
		e.emit(memsys.Op{Kind: memsys.OpCompute, Cycles: uint16(c)})
		cycles -= c
	}
}

// loadWords reads count consecutive words starting at addr.
func (e emitter) loadWords(addr uint32, count int) {
	for i := 0; i < count; i++ {
		e.load(addr + uint32(i)*4)
	}
}

// storeWords writes count consecutive words starting at addr.
func (e emitter) storeWords(addr uint32, count int) {
	for i := 0; i < count; i++ {
		e.store(addr + uint32(i)*4)
	}
}

// span splits n items across p threads and returns thread t's [lo, hi).
func span(n, p, t int) (int, int) {
	per := (n + p - 1) / p
	lo := t * per
	hi := lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}
