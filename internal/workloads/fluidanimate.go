package workloads

import "repro/internal/memsys"

// Fluidanimate models the PARSEC fluidanimate SPH kernel (Table 4.2:
// simmedium), modified — as the paper did — to the ghost-cell pattern, so
// threads only ever write their own cells and read neighbours' cells from
// the previous phase.
//
// The grid is stored struct-of-arrays per field, but each cell reserves 16
// particle slots per field while holding far fewer particles, so lines
// carry trailing pre-allocated space that is fetched and evicted unused
// ("the majority of objects are not fully filled", §5.2.2/§5.3).
//
// Phase structure per iteration: clear accumulators (pure overwrite →
// Write waste under fetch-on-write), density stencil over +X/+Y/+Z
// neighbours in X-Y-Z traversal order (unblocked reuse → poor L2 reuse),
// force stencil, then advance + array-to-array position copy
// (read-then-overwrite → L2 response bypass type 1 on the pos region).
type Fluidanimate struct {
	threads    int
	nx, ny, nz int
	lay        layout
	posR       uint8
	velR       uint8
	accR       uint8
	denR       uint8
	pos2R      uint8
	counts     []int // particles per cell (deterministic)
}

const fluidSlots = 16 // particle capacity per cell

// NewFluidanimate builds the benchmark at the given scale.
func NewFluidanimate(size Size, threads int) *Fluidanimate {
	var nx, ny, nz int
	switch size {
	case Tiny:
		nx, ny, nz = 4, 4, 4
	case Small:
		nx, ny, nz = 8, 8, 8
	default:
		nx, ny, nz = 20, 20, 20 // ~simmedium cell count
	}
	f := &Fluidanimate{threads: threads, nx: nx, ny: ny, nz: nz}
	cells := uint32(nx * ny * nz)
	posBytes := cells * fluidSlots * 3 * 4 // 3 words per particle slot
	f.posR = f.lay.add("pos", posBytes, regionOpts{bypass: true})
	f.velR = f.lay.add("vel", posBytes, regionOpts{})
	f.accR = f.lay.add("acc", posBytes, regionOpts{})
	f.denR = f.lay.add("density", cells*fluidSlots*4, regionOpts{})
	f.pos2R = f.lay.add("pos2", posBytes, regionOpts{})
	// Deterministic fill levels, mostly well under capacity.
	f.counts = make([]int, cells)
	rng := newRNG(0xf1d0)
	for i := range f.counts {
		f.counts[i] = 1 + rng.intn(8) + rng.intn(5) // avg ~6.5 of 16 slots
	}
	return f
}

func (f *Fluidanimate) cellCount() int { return f.nx * f.ny * f.nz }

// Name implements memsys.Program.
func (f *Fluidanimate) Name() string { return "fluidanimate" }

// Threads implements memsys.Program.
func (f *Fluidanimate) Threads() int { return f.threads }

// FootprintBytes implements memsys.Program.
func (f *Fluidanimate) FootprintBytes() uint32 { return f.lay.next }

// Regions implements memsys.Program.
func (f *Fluidanimate) Regions() []memsys.Region { return f.lay.regions }

// Phases implements memsys.Program: 4 per iteration x 2 iterations.
func (f *Fluidanimate) Phases() int { return 8 }

// WarmupPhases implements memsys.Program: the first iteration.
func (f *Fluidanimate) WarmupPhases() int { return 4 }

// WrittenRegions implements memsys.Program.
func (f *Fluidanimate) WrittenRegions(p int) []uint8 {
	switch p % 4 {
	case 0:
		return []uint8{f.accR, f.denR}
	case 1:
		return []uint8{f.denR}
	case 2:
		return []uint8{f.accR}
	default:
		return []uint8{f.velR, f.posR, f.pos2R}
	}
}

// vec3Addr returns the address of cell c's particle-slot array in a
// 3-words-per-slot region.
func (f *Fluidanimate) vec3Addr(region uint8, c int) uint32 {
	return f.lay.base(region) + uint32(c)*fluidSlots*3*4
}

func (f *Fluidanimate) denAddr(c int) uint32 {
	return f.lay.base(f.denR) + uint32(c)*fluidSlots*4
}

// neighbours returns the +X, +Y, +Z neighbour cell indices (interior
// stencil; boundary cells have fewer neighbours).
func (f *Fluidanimate) neighbours(c int) []int {
	x := c % f.nx
	y := (c / f.nx) % f.ny
	z := c / (f.nx * f.ny)
	var out []int
	if x+1 < f.nx {
		out = append(out, c+1)
	}
	if y+1 < f.ny {
		out = append(out, c+f.nx)
	}
	if z+1 < f.nz {
		out = append(out, c+f.nx*f.ny)
	}
	return out
}

// EmitOps implements memsys.Program.
func (f *Fluidanimate) EmitOps(p, t int, emit func(memsys.Op)) {
	e := emitter{emit}
	lo, hi := span(f.cellCount(), f.threads, t)
	switch p % 4 {
	case 0: // clear accumulators: pure overwrite, no prior read
		for c := lo; c < hi; c++ {
			n := f.counts[c]
			e.storeWords(f.vec3Addr(f.accR, c), 3*n)
			e.storeWords(f.denAddr(c), n)
		}
	case 1: // density stencil: own pos + neighbour pos -> own density
		for c := lo; c < hi; c++ {
			n := f.counts[c]
			e.loadWords(f.vec3Addr(f.posR, c), 3*n)
			for _, nb := range f.neighbours(c) {
				e.loadWords(f.vec3Addr(f.posR, nb), 3*f.counts[nb])
			}
			e.compute(6 * n)
			e.storeWords(f.denAddr(c), n)
		}
	case 2: // force stencil: own+neighbour pos/density -> own acc
		for c := lo; c < hi; c++ {
			n := f.counts[c]
			e.loadWords(f.vec3Addr(f.posR, c), 3*n)
			e.loadWords(f.denAddr(c), n)
			for _, nb := range f.neighbours(c) {
				e.loadWords(f.vec3Addr(f.posR, nb), 3*f.counts[nb])
				e.loadWords(f.denAddr(nb), f.counts[nb])
			}
			e.compute(8 * n)
			e.storeWords(f.vec3Addr(f.accR, c), 3*n)
		}
	case 3: // advance: integrate, then copy positions (array-to-array)
		for c := lo; c < hi; c++ {
			n := f.counts[c]
			e.loadWords(f.vec3Addr(f.accR, c), 3*n)
			e.loadWords(f.vec3Addr(f.velR, c), 3*n)
			e.storeWords(f.vec3Addr(f.velR, c), 3*n)
			e.compute(4 * n)
			e.loadWords(f.vec3Addr(f.posR, c), 3*n)
			e.storeWords(f.vec3Addr(f.posR, c), 3*n)
			e.storeWords(f.vec3Addr(f.pos2R, c), 3*n)
		}
	}
}
