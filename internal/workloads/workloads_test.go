package workloads

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/memsys"
)

func tinyCatalog() []memsys.Program { return Catalog(Tiny, 16) }

// registryTinyPrograms builds every registry workload — the six ported
// benchmarks, the synthetic patterns at their defaults, and the preset
// parameter variants — so the generic Program-contract tests cover the
// synthetic axis with the same rigor as the benchmarks.
func registryTinyPrograms() []memsys.Program {
	var out []memsys.Program
	for _, spec := range RegistryWorkloads() {
		out = append(out, MustByName(spec, Tiny, 16))
	}
	return out
}

func collect(p memsys.Program, phase, thread int) []memsys.Op {
	var ops []memsys.Op
	p.EmitOps(phase, thread, func(o memsys.Op) { ops = append(ops, o) })
	return ops
}

func TestCatalogNamesAndOrder(t *testing.T) {
	progs := tinyCatalog()
	names := Names()
	if len(progs) != 6 || len(names) != 6 {
		t.Fatalf("catalog size %d / names %d", len(progs), len(names))
	}
	for i, p := range progs {
		if p.Name() != names[i] {
			t.Errorf("catalog[%d] = %q, want %q", i, p.Name(), names[i])
		}
	}
	if _, err := ByName("radix", Tiny, 16); err != nil {
		t.Fatalf("ByName(radix): %v", err)
	}
	if _, err := ByName("nope", Tiny, 16); err == nil {
		t.Fatal("ByName(nope) did not error")
	}
}

// ByName's dispatch must cover Names(): every listed name constructs a
// program reporting that name, the result agrees with the Catalog entry
// at the same position, and anything else is a loud error (regression for
// the silent nil return that let callers deref or skip unknown names).
func TestByNameCoversExactlyNames(t *testing.T) {
	catalog := tinyCatalog()
	for i, name := range Names() {
		p, err := ByName(name, Tiny, 16)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%q) built %q", name, p.Name())
		}
		if p.Name() != catalog[i].Name() || p.FootprintBytes() != catalog[i].FootprintBytes() {
			t.Fatalf("ByName(%q) disagrees with Catalog[%d]", name, i)
		}
	}
	for _, bogus := range []string{"", "fft", "lu", "Radix", "kdtree", "nope", "FTT"} {
		p, err := ByName(bogus, Tiny, 16)
		if err == nil {
			t.Fatalf("ByName(%q) = %v, want a loud unknown-benchmark error", bogus, p)
		}
		if !strings.Contains(err.Error(), "unknown benchmark") {
			t.Fatalf("ByName(%q) error %q does not name the failure", bogus, err)
		}
	}
}

func TestAllProgramsBasicContract(t *testing.T) {
	for _, p := range registryTinyPrograms() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			if p.Threads() != 16 {
				t.Fatalf("threads = %d", p.Threads())
			}
			if p.Phases() <= p.WarmupPhases() {
				t.Fatalf("no measured phases: %d total, %d warmup", p.Phases(), p.WarmupPhases())
			}
			if p.FootprintBytes() == 0 || p.FootprintBytes()%memsys.LineBytes != 0 {
				t.Fatalf("footprint %d not line-aligned", p.FootprintBytes())
			}
			if _, err := memsys.NewRegionTable(p.Regions()); err != nil {
				t.Fatalf("regions invalid: %v", err)
			}
			total := 0
			for ph := 0; ph < p.Phases(); ph++ {
				for th := 0; th < p.Threads(); th++ {
					total += len(collect(p, ph, th))
				}
				for _, id := range p.WrittenRegions(ph) {
					found := false
					for _, r := range p.Regions() {
						if r.ID == id {
							found = true
						}
					}
					if !found {
						t.Fatalf("phase %d declares unknown written region %d", ph, id)
					}
				}
			}
			if total == 0 {
				t.Fatal("program emits no ops")
			}
		})
	}
}

func TestAddressesInFootprintAndAligned(t *testing.T) {
	for _, p := range registryTinyPrograms() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			fp := p.FootprintBytes()
			for ph := 0; ph < p.Phases(); ph++ {
				for th := 0; th < p.Threads(); th++ {
					for _, op := range collect(p, ph, th) {
						if op.Kind == memsys.OpCompute {
							continue
						}
						if op.Addr%4 != 0 {
							t.Fatalf("phase %d: unaligned address %#x", ph, op.Addr)
						}
						if op.Addr >= fp {
							t.Fatalf("phase %d: address %#x outside footprint %#x", ph, op.Addr, fp)
						}
					}
				}
			}
		})
	}
}

func TestDeterministicEmission(t *testing.T) {
	for _, name := range Names() {
		a, b := MustByName(name, Tiny, 16), MustByName(name, Tiny, 16)
		for ph := 0; ph < a.Phases(); ph++ {
			for th := 0; th < a.Threads(); th++ {
				oa, ob := collect(a, ph, th), collect(b, ph, th)
				if len(oa) != len(ob) {
					t.Fatalf("%s phase %d thread %d: lengths differ", name, ph, th)
				}
				for i := range oa {
					if oa[i] != ob[i] {
						t.Fatalf("%s phase %d thread %d op %d differs", name, ph, th, i)
					}
				}
			}
		}
	}
}

// TestDataRaceFreedom verifies the DeNovo prerequisite: within any phase,
// an address written by one thread is neither read nor written by another.
func TestDataRaceFreedom(t *testing.T) {
	for _, p := range registryTinyPrograms() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for ph := 0; ph < p.Phases(); ph++ {
				writer := map[uint32]int{}
				reader := map[uint32]int{} // representative reader
				for th := 0; th < p.Threads(); th++ {
					for _, op := range collect(p, ph, th) {
						switch op.Kind {
						case memsys.OpStore:
							if w, ok := writer[op.Addr]; ok && w != th {
								t.Fatalf("phase %d: %#x written by threads %d and %d", ph, op.Addr, w, th)
							}
							writer[op.Addr] = th
						case memsys.OpLoad:
							if _, ok := reader[op.Addr]; !ok {
								reader[op.Addr] = th
							}
						}
					}
				}
				for addr, w := range writer {
					for th := 0; th < p.Threads(); th++ {
						if th == w {
							continue
						}
						// Re-scan this thread for reads of addr only if some
						// thread read it at all (cheap pre-filter).
						if _, any := reader[addr]; !any {
							continue
						}
					}
				}
				// Full read-write conflict check.
				readers := map[uint32]map[int]bool{}
				for th := 0; th < p.Threads(); th++ {
					for _, op := range collect(p, ph, th) {
						if op.Kind != memsys.OpLoad {
							continue
						}
						if readers[op.Addr] == nil {
							readers[op.Addr] = map[int]bool{}
						}
						readers[op.Addr][th] = true
					}
				}
				for addr, w := range writer {
					for th := range readers[addr] {
						if th != w {
							t.Fatalf("phase %d: %#x written by %d, read by %d", ph, addr, w, th)
						}
					}
				}
			}
		})
	}
}

func TestWorkDistribution(t *testing.T) {
	// Parallel phases must involve most threads (not everything on thread 0).
	for _, p := range registryTinyPrograms() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			parallelPhases := 0
			for ph := 0; ph < p.Phases(); ph++ {
				active := 0
				for th := 0; th < p.Threads(); th++ {
					if len(collect(p, ph, th)) > 0 {
						active++
					}
				}
				if active > p.Threads()/2 {
					parallelPhases++
				}
			}
			if parallelPhases == 0 {
				t.Fatal("no parallel phases")
			}
		})
	}
}

func TestRadixIsARealSort(t *testing.T) {
	r := NewRadix(Tiny, 16)
	final := r.KeysAt(r.iterations())
	// After sorting by the two lowest 10-bit digits of 20-bit keys, the
	// array must be fully sorted.
	if !sort.SliceIsSorted(final, func(i, j int) bool { return final[i] < final[j] }) {
		t.Fatal("radix permutation does not sort the keys")
	}
	// And it must be a permutation of the initial keys.
	a := append([]uint32(nil), r.KeysAt(0)...)
	b := append([]uint32(nil), final...)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("radix lost or duplicated keys")
		}
	}
}

func TestRadixScatterExceedsWriteCombining(t *testing.T) {
	// The permutation phase must write to far more than 32 distinct lines
	// per thread before revisiting (the paper's §5.2.2 store-control
	// blowup). Count distinct destination lines in thread 0's permute ops.
	r := NewRadix(Tiny, 16)
	lines := map[uint32]bool{}
	for _, op := range collect(r, 5, 0) { // measured permute phase
		if op.Kind == memsys.OpStore {
			lines[memsys.LineOf(op.Addr)] = true
		}
	}
	if len(lines) < 200 {
		t.Fatalf("permute touches only %d lines; need scatter >> 32", len(lines))
	}
}

func TestBarnesLayoutMatchesPaper(t *testing.T) {
	b := NewBarnes(Tiny, 16)
	var bodies, cells *memsys.Region
	rt, _ := memsys.NewRegionTable(b.Regions())
	for _, r := range rt.All() {
		r := r
		switch r.Name {
		case "bodies":
			bodies = &r
		case "cells":
			cells = &r
		}
	}
	// Body records must not be a multiple of the cache-line size.
	if bodies.StrideWords*4%memsys.LineBytes == 0 {
		t.Fatal("body stride is line-aligned; paper requires straddling records")
	}
	if len(bodies.CommOffsets) == 0 || len(cells.CommOffsets) == 0 {
		t.Fatal("Flex communication regions missing")
	}
	// Communication region smaller than the record (that is the Flex win).
	if len(bodies.CommOffsets) >= int(bodies.StrideWords) {
		t.Fatal("body comm region covers whole record; no Flex benefit")
	}
}

func TestKDTreeEdgeCommSpansRecords(t *testing.T) {
	k := NewKDTree(Tiny, 16)
	var edges *memsys.Region
	for _, r := range k.Regions() {
		if r.Name == "edges" {
			rr := r
			edges = &rr
		}
	}
	if edges == nil || !edges.Bypass {
		t.Fatal("edges region missing or not bypassed")
	}
	max := uint16(0)
	for _, o := range edges.CommOffsets {
		if o > max {
			max = o
		}
	}
	if max < edges.StrideWords {
		t.Fatal("edge comm region does not prefetch into the next record")
	}
	if len(edges.CommOffsets) > 16 {
		t.Fatal("edge comm region exceeds the 64B packet cap")
	}
}

func TestFluidCellsUnderfilled(t *testing.T) {
	f := NewFluidanimate(Tiny, 16)
	full, total := 0, 0
	for _, c := range f.counts {
		total++
		if c >= fluidSlots {
			full++
		}
	}
	if full*2 >= total {
		t.Fatal("most cells full; paper requires mostly-underfilled cells")
	}
}

func TestBypassAnnotationsMatchPaper(t *testing.T) {
	// §5.2.1: bypass applies to fluidanimate, FFT, radix and kD-tree only.
	want := map[string]bool{
		"fluidanimate": true, "FFT": true, "radix": true, "kD-tree": true,
		"LU": false, "barnes": false,
	}
	for _, p := range tinyCatalog() {
		has := false
		for _, r := range p.Regions() {
			if r.Bypass {
				has = true
			}
		}
		if has != want[p.Name()] {
			t.Errorf("%s: bypass=%v, want %v", p.Name(), has, want[p.Name()])
		}
	}
}

func TestFlexAnnotationsMatchPaper(t *testing.T) {
	// §5.2.1: Flex is only applicable to Barnes-Hut and kD-tree.
	want := map[string]bool{
		"barnes": true, "kD-tree": true,
		"LU": false, "FFT": false, "radix": false, "fluidanimate": false,
	}
	for _, p := range tinyCatalog() {
		has := false
		for _, r := range p.Regions() {
			if len(r.CommOffsets) > 0 && len(r.CommOffsets) < int(r.StrideWords) ||
				(len(r.CommOffsets) > 0 && r.StrideWords > 0 && len(r.CommOffsets) != int(r.StrideWords)) {
				has = true
			}
		}
		if has != want[p.Name()] {
			t.Errorf("%s: flex=%v, want %v", p.Name(), has, want[p.Name()])
		}
	}
}

func TestSpanCoversAll(t *testing.T) {
	for _, n := range []int{0, 1, 15, 16, 17, 100} {
		covered := 0
		prevHi := 0
		for t1 := 0; t1 < 16; t1++ {
			lo, hi := span(n, 16, t1)
			if lo < prevHi {
				t.Fatalf("span overlap at thread %d", t1)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != n {
			t.Fatalf("span covers %d of %d", covered, n)
		}
	}
}

func TestSizesGrowMonotonically(t *testing.T) {
	for _, spec := range RegistryWorkloads() {
		tiny := MustByName(spec, Tiny, 16).FootprintBytes()
		small := MustByName(spec, Small, 16).FootprintBytes()
		if small <= tiny {
			t.Errorf("%s: small footprint %d <= tiny %d", spec, small, tiny)
		}
	}
}
