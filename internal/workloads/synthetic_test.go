package workloads

import (
	"testing"

	"repro/internal/memsys"
)

// ownerOf maps an address in a synthetic program's data region back to the
// owning thread (the line-interleaving invariant the patterns build on).
func ownerOf(s *synthetic, addr uint32) int {
	line := int((addr - s.lay.base(s.data)) / memsys.LineBytes)
	return line % s.threads
}

func buildSynthetic(t *testing.T, spec string) *synthetic {
	t.Helper()
	p := MustByName(spec, Tiny, 16)
	s, ok := p.(*synthetic)
	if !ok {
		t.Fatalf("%s did not build a synthetic program", spec)
	}
	return s
}

// consumedOwners returns the set of owners thread th reads from during
// consume phases.
func consumedOwners(s *synthetic, th int) map[int]bool {
	owners := map[int]bool{}
	for p := 2; p < s.Phases(); p += 2 {
		for _, op := range collect(s, p, th) {
			if op.Kind == memsys.OpLoad {
				owners[ownerOf(s, op.Addr)] = true
			}
		}
	}
	return owners
}

func TestSyntheticProduceWritesOwnLinesOnly(t *testing.T) {
	for _, spec := range []string{"uniform", "transpose", "bitcomp", "hotspot", "neighbor", "prodcons"} {
		s := buildSynthetic(t, spec)
		for p := 1; p < s.Phases(); p += 2 {
			for th := 0; th < s.threads; th++ {
				for _, op := range collect(s, p, th) {
					if op.Kind != memsys.OpStore {
						continue
					}
					if got := ownerOf(s, op.Addr); got != th {
						t.Fatalf("%s phase %d: thread %d wrote a line owned by %d", spec, p, th, got)
					}
				}
			}
		}
	}
}

func TestTransposeMapping(t *testing.T) {
	s := buildSynthetic(t, "transpose")
	// 16 threads on a 4x4 arrangement: thread r*4+c consumes from c*4+r.
	for th := 0; th < 16; th++ {
		want := (th%4)*4 + th/4
		owners := consumedOwners(s, th)
		if len(owners) != 1 || !owners[want] {
			t.Fatalf("thread %d consumes from %v, want {%d}", th, owners, want)
		}
	}
}

func TestBitcompMapping(t *testing.T) {
	s := buildSynthetic(t, "bitcomp")
	for th := 0; th < 16; th++ {
		want := ^th & 15
		owners := consumedOwners(s, th)
		if len(owners) != 1 || !owners[want] {
			t.Fatalf("thread %d consumes from %v, want {%d}", th, owners, want)
		}
	}
}

func TestNeighborMapping(t *testing.T) {
	s := buildSynthetic(t, "neighbor")
	for th := 0; th < 16; th++ {
		owners := consumedOwners(s, th)
		if len(owners) != 1 || !owners[(th+1)%16] {
			t.Fatalf("thread %d consumes from %v, want {%d}", th, owners, (th+1)%16)
		}
	}
}

func TestHotspotConcentration(t *testing.T) {
	for _, c := range []struct {
		spec string
		hot  int
	}{{"hotspot", 4}, {"hotspot(t=1)", 1}, {"hotspot(t=8)", 8}} {
		s := buildSynthetic(t, c.spec)
		for th := 0; th < s.threads; th++ {
			for o := range consumedOwners(s, th) {
				if o >= c.hot {
					t.Fatalf("%s: thread %d consumed from cold owner %d", c.spec, th, o)
				}
			}
		}
	}
}

func TestUniformSpreadsAcrossOwners(t *testing.T) {
	s := buildSynthetic(t, "uniform")
	owners := map[int]bool{}
	for th := 0; th < s.threads; th++ {
		for o := range consumedOwners(s, th) {
			owners[o] = true
		}
	}
	if len(owners) < s.threads/2 {
		t.Fatalf("uniform touches only %d of %d owners", len(owners), s.threads)
	}
}

func TestProdconsRoles(t *testing.T) {
	s := buildSynthetic(t, "prodcons") // groups=4 over 16 threads: groups of 4, 2 produce + 2 consume
	producers, consumers := 0, 0
	for th := 0; th < s.threads; th++ {
		writes, reads := false, false
		for p := 1; p < s.Phases(); p++ {
			for _, op := range collect(s, p, th) {
				switch op.Kind {
				case memsys.OpStore:
					writes = true
				case memsys.OpLoad:
					reads = true
				}
			}
		}
		if writes && reads {
			t.Fatalf("thread %d both produces and consumes", th)
		}
		if writes {
			producers++
		}
		if reads {
			consumers++
		}
	}
	if producers != 8 || consumers != 8 {
		t.Fatalf("producers=%d consumers=%d, want 8/8", producers, consumers)
	}
	// Consumers read only within their own group's producers.
	for th := 0; th < s.threads; th++ {
		for o := range consumedOwners(s, th) {
			if o/4 != th/4 {
				t.Fatalf("thread %d (group %d) consumed from thread %d (group %d)", th, th/4, o, o/4)
			}
			if !s.writer[o] {
				t.Fatalf("thread %d consumed from non-producer %d", th, o)
			}
		}
	}
}

// The injection-rate parameter must control the compute gap: a lower rate
// inserts strictly more compute cycles into the same op structure.
func TestInjectionRateControlsGap(t *testing.T) {
	slow := MustByName("uniform(p=0.01)", Tiny, 16)
	fast := MustByName("uniform(p=0.5)", Tiny, 16)
	cycles := func(p memsys.Program) int64 {
		var sum int64
		for ph := 1; ph < p.Phases(); ph++ {
			for th := 0; th < p.Threads(); th++ {
				for _, op := range collect(p, ph, th) {
					if op.Kind == memsys.OpCompute {
						sum += int64(op.Cycles)
					}
				}
			}
		}
		return sum
	}
	if cycles(slow) <= cycles(fast)*10 {
		t.Fatalf("p=0.01 emits %d compute cycles, p=0.5 emits %d; rate knob inert", cycles(slow), cycles(fast))
	}
}

// Consumers read only half of each fetched line, so under MESI the fetch
// must show attributable waste — the point of running patterns through
// the full waste methodology rather than raw packet injection.
func TestSyntheticConsumeReadsHalfLines(t *testing.T) {
	s := buildSynthetic(t, "neighbor")
	for p := 2; p < s.Phases(); p += 2 {
		for th := 0; th < s.threads; th++ {
			perLine := map[uint32]int{}
			for _, op := range collect(s, p, th) {
				if op.Kind == memsys.OpLoad {
					perLine[memsys.LineOf(op.Addr)]++
				}
			}
			for line, n := range perLine {
				if n != synthReadWords {
					t.Fatalf("phase %d thread %d line %#x: %d words read, want %d", p, th, line, n, synthReadWords)
				}
			}
		}
	}
}

// Odd thread counts exercise the fallback partner maps; the patterns must
// stay DRF and in-footprint there too (the fuzz target covers this
// continuously; this is the deterministic regression).
func TestSyntheticOddThreadCounts(t *testing.T) {
	for _, spec := range []string{"uniform", "transpose", "bitcomp", "hotspot", "neighbor", "prodcons"} {
		for _, threads := range []int{1, 3, 7, 15} {
			p := MustByName(spec, Tiny, threads)
			fp := p.FootprintBytes()
			for ph := 0; ph < p.Phases(); ph++ {
				for th := 0; th < threads; th++ {
					for _, op := range collect(p, ph, th) {
						if op.Kind != memsys.OpCompute && op.Addr >= fp {
							t.Fatalf("%s/%d: address %#x outside footprint", spec, threads, op.Addr)
						}
					}
				}
				// Per-phase DRF.
				w := map[uint32]int{}
				for th := 0; th < threads; th++ {
					for _, op := range collect(p, ph, th) {
						if op.Kind == memsys.OpStore {
							if prev, ok := w[op.Addr]; ok && prev != th {
								t.Fatalf("%s/%d phase %d: %#x written by %d and %d", spec, threads, ph, op.Addr, prev, th)
							}
							w[op.Addr] = th
						}
					}
				}
				for th := 0; th < threads; th++ {
					for _, op := range collect(p, ph, th) {
						if op.Kind == memsys.OpLoad {
							if prev, ok := w[op.Addr]; ok && prev != th {
								t.Fatalf("%s/%d phase %d: %#x written by %d, read by %d", spec, threads, ph, op.Addr, prev, th)
							}
						}
					}
				}
			}
		}
	}
}
