package workloads

import (
	"strings"
	"testing"

	"repro/internal/memsys"
	"repro/internal/trace"
)

func TestParseSpecNormalization(t *testing.T) {
	cases := []struct{ in, want string }{
		{"uniform", "uniform"},
		{"uniform(p=0.05)", "uniform"}, // default spelled out folds away
		{"uniform(p=0.1)", "uniform(p=0.1)"},
		{"uniform( p = 0.10 )", "uniform(p=0.1)"},
		{" hotspot(t=2) ", "hotspot(t=2)"},
		{"hotspot(p=0.05,t=4)", "hotspot"},
		{"hotspot(p=0.1,t=2)", "hotspot(t=2,p=0.1)"}, // declaration order
		{"prodcons(groups=04)", "prodcons"},
		{"FFT", "FFT"},
		{"replay(file=/tmp/x.trc)", "replay(file=/tmp/x.trc)"},
	}
	for _, c := range cases {
		s, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if s.Canonical != c.want {
			t.Errorf("ParseSpec(%q).Canonical = %q, want %q", c.in, s.Canonical, c.want)
		}
		// Canonical spellings are fixed points.
		again, err := ParseSpec(s.Canonical)
		if err != nil || again.Canonical != s.Canonical {
			t.Errorf("canonical %q not a fixed point (%v)", s.Canonical, err)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"FTT", "unknown benchmark"},
		{"uniform(", "missing ')'"},
		{"uniform(p)", "not key=value"},
		{"uniform(q=1)", "unknown option"},
		{"uniform(p=x)", "not a number"},
		{"uniform(p=0.1,p=0.2)", "duplicate option"},
		{"hotspot(t=1.5)", "not an integer"},
		{"FFT(p=1)", "takes no options"},
		{"uniform(p=)", "empty value"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.in)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", c.in)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSpec(%q) error %q, want mention of %q", c.in, err, c.wantSub)
		}
	}
	// Out-of-range parameter values fail at build time — including rates
	// small enough that the derived 1/p compute gap would overflow int
	// and silently invert the knob.
	for _, spec := range []string{"uniform(p=0)", "uniform(p=2)", "uniform(p=1e-20)", "hotspot(t=0)", "prodcons(groups=0)"} {
		if _, err := ByName(spec, Tiny, 16); err == nil {
			t.Errorf("ByName(%q) accepted an out-of-range parameter", spec)
		}
	}
}

func TestSpecNamesCoverRegistry(t *testing.T) {
	names := SpecNames()
	// Benchmarks first, in the paper's figure order.
	for i, b := range Names() {
		if names[i] != b {
			t.Fatalf("SpecNames[%d] = %q, want benchmark %q", i, names[i], b)
		}
	}
	for _, syn := range []string{"uniform", "transpose", "bitcomp", "hotspot", "neighbor", "prodcons", "replay"} {
		found := false
		for _, n := range names {
			if n == syn {
				found = true
			}
		}
		if !found {
			t.Errorf("synthetic %q missing from SpecNames", syn)
		}
	}
	if len(SyntheticNames()) != 7 {
		t.Errorf("SyntheticNames = %v, want the 6 patterns + replay", SyntheticNames())
	}
	// The runnable inventory: 6 benchmarks + 6 synthetic defaults + the
	// presets, all parseable and canonical.
	reg := RegistryWorkloads()
	if len(reg) != 6+6+len(PresetVariants()) {
		t.Fatalf("RegistryWorkloads has %d entries: %v", len(reg), reg)
	}
	for _, spec := range reg {
		s, err := ParseSpec(spec)
		if err != nil {
			t.Errorf("registry spec %q does not parse: %v", spec, err)
			continue
		}
		if s.Canonical != spec {
			t.Errorf("registry spec %q not canonical (normalizes to %q)", spec, s.Canonical)
		}
	}
	for _, info := range SpecCatalog() {
		if info.Desc == "" {
			t.Errorf("spec %q has no description", info.Name)
		}
	}
}

// The determinism property the engine builds on, for every registry
// workload spec: constructing a spec twice yields bit-identical op
// streams, and a record -> replay round trip through the trace format
// reproduces them bit-identically too.
func TestRegistrySpecDeterminism(t *testing.T) {
	for _, spec := range RegistryWorkloads() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			a := MustByName(spec, Tiny, 16)
			b := MustByName(spec, Tiny, 16)
			replayed := trace.NewProgram(trace.Record(a), "")
			if a.Name() != spec {
				t.Fatalf("program name %q != canonical spec %q", a.Name(), spec)
			}
			for ph := 0; ph < a.Phases(); ph++ {
				for th := 0; th < a.Threads(); th++ {
					ops := collect(a, ph, th)
					for which, other := range map[string]memsys.Program{"rebuild": b, "replay": replayed} {
						got := collect(other, ph, th)
						if len(got) != len(ops) {
							t.Fatalf("%s phase %d thread %d: %d ops, want %d", which, ph, th, len(got), len(ops))
						}
						for i := range ops {
							if got[i] != ops[i] {
								t.Fatalf("%s phase %d thread %d op %d differs", which, ph, th, i)
							}
						}
					}
				}
			}
		})
	}
}
