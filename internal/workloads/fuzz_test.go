package workloads

import (
	"sync"
	"testing"

	"repro/internal/memsys"
)

// fuzzSpecs lists the workloads the DRF fuzz target can draw: the six
// ported benchmarks and every registry workload (synthetic defaults and
// preset variants), so odd thread counts stress the pattern partner maps
// (transpose on non-squares, bitcomp on non-powers-of-two, prodcons
// remainder groups) as hard as the benchmarks.
func fuzzSpecs() []string { return RegistryWorkloads() }

// FuzzWorkloadDRF fuzzes the two properties the experiment engine builds
// on: EmitOps is pure (repeated calls over the same frozen program state
// emit identical streams — including calls racing from many goroutines,
// which `go test -race` checks for real) and data-race free (within any
// phase, an address stored by one thread is never touched by another —
// the DeNovo prerequisite the functional oracle depends on). The corpus
// under testdata/fuzz seeds every benchmark at both thread-count
// extremes.
func FuzzWorkloadDRF(f *testing.F) {
	for i := range fuzzSpecs() {
		f.Add(i, 16)
		f.Add(i, 1)
	}
	f.Add(3, 7) // radix on a non-power-of-two thread count
	f.Fuzz(func(t *testing.T, benchIdx, threadsRaw int) {
		names := fuzzSpecs()
		name := names[((benchIdx%len(names))+len(names))%len(names)]
		threads := ((threadsRaw%16)+16)%16 + 1
		p, err := ByName(name, Tiny, threads)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Threads() != threads {
			t.Fatalf("%s: %d threads, want %d", name, p.Threads(), threads)
		}
		collect := func(ph, th int) []memsys.Op {
			var ops []memsys.Op
			p.EmitOps(ph, th, func(o memsys.Op) { ops = append(ops, o) })
			return ops
		}
		for ph := 0; ph < p.Phases(); ph++ {
			// First pass: serial reference emission.
			serial := make([][]memsys.Op, threads)
			for th := range serial {
				serial[th] = collect(ph, th)
			}
			// Second pass: all threads emit concurrently; the streams must
			// match the serial ones exactly (purity), and -race verifies
			// EmitOps never mutates shared program state.
			concurrent := make([][]memsys.Op, threads)
			var wg sync.WaitGroup
			for th := 0; th < threads; th++ {
				wg.Add(1)
				go func(th int) {
					defer wg.Done()
					concurrent[th] = collect(ph, th)
				}(th)
			}
			wg.Wait()
			for th := range serial {
				if len(serial[th]) != len(concurrent[th]) {
					t.Fatalf("%s phase %d thread %d: emission not pure (%d vs %d ops)",
						name, ph, th, len(serial[th]), len(concurrent[th]))
				}
				for i := range serial[th] {
					if serial[th][i] != concurrent[th][i] {
						t.Fatalf("%s phase %d thread %d op %d differs across calls", name, ph, th, i)
					}
				}
			}
			// DRF: no address stored by one thread is loaded or stored by
			// another within the same phase.
			writer := map[uint32]int{}
			for th := range serial {
				for _, op := range serial[th] {
					if op.Kind != memsys.OpStore {
						continue
					}
					if w, ok := writer[op.Addr]; ok && w != th {
						t.Fatalf("%s phase %d: %#x written by threads %d and %d",
							name, ph, op.Addr, w, th)
					}
					writer[op.Addr] = th
				}
			}
			for th := range serial {
				for _, op := range serial[th] {
					if op.Kind != memsys.OpLoad {
						continue
					}
					if w, ok := writer[op.Addr]; ok && w != th {
						t.Fatalf("%s phase %d: %#x written by thread %d, read by %d",
							name, ph, op.Addr, w, th)
					}
				}
			}
		}
	})
}
