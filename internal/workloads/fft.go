package workloads

import "repro/internal/memsys"

// FFT models the SPLASH-2 six-step FFT (Table 4.2: 256K points): rows of a
// sqrt(n) x sqrt(n) matrix of complex doubles get local FFTs, then the
// matrix is transposed into a destination array, then the destination rows
// get local FFTs.
//
// The patterns the paper attributes FFT's results to:
//   - the transpose reads each source element exactly once (L2 response
//     bypass, "read once in the current phase"),
//   - the in-place row FFTs read then overwrite the same addresses (bypass
//     type 1),
//   - the destination array is overwritten before being read, so MESI's
//     fetch-on-write moves data that is pure Write waste, eliminated by
//     write-validate,
//   - the destination is reused by the following phase, so it must not be
//     bypassed.
type FFT struct {
	threads int
	m       int // matrix dimension; n = m*m points
	lay     layout
	src     uint8
	dst     uint8
}

// Complex double: 16 bytes = 4 words.
const fftElemWords = 4

// NewFFT builds the FFT benchmark at the given scale.
func NewFFT(size Size, threads int) *FFT {
	var m int
	switch size {
	case Tiny:
		m = 32 // 1K points
	case Small:
		m = 128 // 16K points
	default:
		m = 512 // 256K points (paper)
	}
	f := &FFT{threads: threads, m: m}
	bytes := uint32(m) * uint32(m) * fftElemWords * 4
	f.src = f.lay.add("src", bytes, regionOpts{strideWords: fftElemWords, bypass: true})
	f.dst = f.lay.add("dst", bytes, regionOpts{strideWords: fftElemWords})
	return f
}

// Name implements memsys.Program.
func (f *FFT) Name() string { return "FFT" }

// Threads implements memsys.Program.
func (f *FFT) Threads() int { return f.threads }

// FootprintBytes implements memsys.Program.
func (f *FFT) FootprintBytes() uint32 { return f.lay.next }

// Regions implements memsys.Program.
func (f *FFT) Regions() []memsys.Region { return f.lay.regions }

// Phases implements memsys.Program: warm-up read, row FFTs, transpose,
// destination row FFTs.
func (f *FFT) Phases() int { return 4 }

// WarmupPhases implements memsys.Program: FFT is not iterative, so one
// core touches the major structures during warm-up (§4.3).
func (f *FFT) WarmupPhases() int { return 1 }

// WrittenRegions implements memsys.Program.
func (f *FFT) WrittenRegions(p int) []uint8 {
	switch p {
	case 1:
		return []uint8{f.src}
	case 2, 3:
		return []uint8{f.dst}
	}
	return nil
}

func (f *FFT) elem(region uint8, row, col int) uint32 {
	return f.lay.base(region) + uint32(row*f.m+col)*fftElemWords*4
}

// EmitOps implements memsys.Program.
func (f *FFT) EmitOps(p, t int, emit func(memsys.Op)) {
	e := emitter{emit}
	lo, hi := span(f.m, f.threads, t)
	switch p {
	case 0: // warm-up: thread 0 touches one word per line of src and dst.
		if t != 0 {
			return
		}
		for off := uint32(0); off < f.lay.next; off += memsys.LineBytes {
			e.load(off)
		}
	case 1: // local FFTs over source rows (read-modify-write in place)
		for r := lo; r < hi; r++ {
			f.rowFFT(e, f.src, r)
		}
	case 2: // transpose: stream rows of src, scatter into columns of dst
		for r := lo; r < hi; r++ {
			for c := 0; c < f.m; c++ {
				e.loadWords(f.elem(f.src, r, c), fftElemWords)
				e.compute(2)
				e.storeWords(f.elem(f.dst, c, r), fftElemWords)
			}
		}
	case 3: // local FFTs over destination rows
		for r := lo; r < hi; r++ {
			f.rowFFT(e, f.dst, r)
		}
	}
}

// rowFFT reads a whole row, computes, and overwrites it.
func (f *FFT) rowFFT(e emitter, region uint8, row int) {
	for c := 0; c < f.m; c++ {
		e.loadWords(f.elem(region, row, c), fftElemWords)
	}
	e.compute(4 * f.m) // ~ m log m butterfly work, abstracted
	for c := 0; c < f.m; c++ {
		e.storeWords(f.elem(region, row, c), fftElemWords)
	}
}
