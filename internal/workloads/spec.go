package workloads

// The parameterized workload registry, mirroring the protocol registry in
// internal/core: a workload spec is a registered name with optional
// parenthesized key=value options,
//
//	FFT                  a ported benchmark (Table 4.2)
//	uniform              a synthetic pattern at its default injection rate
//	uniform(p=0.1)       the same pattern, parameterized
//	hotspot(t=2)         two hot tiles instead of four
//	replay(file=x.trc)   re-drive a recorded trace (internal/trace)
//
// Every spec resolves to a DRF memsys.Program, so synthetic patterns and
// replayed traces run under the full protocol registry with the same waste
// attribution as the ported benchmarks. ParseSpec normalizes spellings
// ("hotspot( t = 2 )" -> "hotspot(t=2)") so one configuration always keys
// one matrix row.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/memsys"
)

// ParamInfo documents one spec parameter for the registry inventory.
type ParamInfo struct {
	Key     string
	Default string
	Desc    string
}

// paramDef declares a parameter a spec accepts, with its default spelling.
type paramDef struct {
	key  string
	def  string // default value, pre-normalized
	desc string
}

// specDef is one registry entry: a named workload family with parameters.
type specDef struct {
	name      string
	synthetic bool
	params    []paramDef
	desc      string
	// build constructs the program. args holds one normalized value per
	// declared parameter, in declaration order; canonical is the
	// normalized spec string the program must report as its Name.
	build func(canonical string, args []string, size Size, threads int) (memsys.Program, error)
}

func (d *specDef) paramIndex(key string) int {
	for i := range d.params {
		if d.params[i].key == key {
			return i
		}
	}
	return -1
}

// specDefs is the registry: the six ported benchmarks (no parameters),
// the synthetic traffic patterns, and the trace replayer. registerSpec
// appends to it from package init (synthetic.go, trace hooks).
var specDefs []specDef

func registerSpec(d specDef) {
	for _, have := range specDefs {
		if have.name == d.name {
			panic("workloads: duplicate spec " + d.name)
		}
	}
	specDefs = append(specDefs, d)
}

// init builds the registry in canonical order: the six benchmarks in the
// paper's figure order, then the synthetic patterns, then the trace
// replayer (explicit calls, not per-file inits, so the order never
// depends on file names).
func init() {
	for _, b := range benchmarks {
		b := b
		registerSpec(specDef{
			name: b.name,
			desc: "ported benchmark (Table 4.2)",
			build: func(_ string, _ []string, size Size, threads int) (memsys.Program, error) {
				return b.ctor(size, threads), nil
			},
		})
	}
	for _, d := range syntheticSpecs() {
		registerSpec(d)
	}
	registerSpec(replaySpec())
}

func specByName(name string) *specDef {
	for i := range specDefs {
		if specDefs[i].name == name {
			return &specDefs[i]
		}
	}
	return nil
}

// Spec is a parsed, normalized workload spec, ready to build.
type Spec struct {
	// Canonical is the normalized spelling: the registered name, plus any
	// non-default parameters in declaration order. It is the matrix key
	// and the Name() the built program reports.
	Canonical string
	// Name is the registered family name ("uniform", "FFT", ...).
	Name string
	// Synthetic reports whether the spec is a synthetic traffic pattern
	// or trace replay rather than a ported benchmark.
	Synthetic bool

	def  *specDef
	args []string // one normalized value per declared param
}

// Build constructs the program at the given scale and thread count.
func (s *Spec) Build(size Size, threads int) (memsys.Program, error) {
	if threads <= 0 {
		return nil, fmt.Errorf("workloads: %s: threads = %d must be positive", s.Canonical, threads)
	}
	return s.def.build(s.Canonical, s.args, size, threads)
}

// ParseSpec resolves a workload spec string — a registered name optionally
// followed by parenthesized key=value options — without building the
// program. Unknown names, unknown keys, and malformed values are loud
// errors (the old ByName returned nil and let callers deref or silently
// skip).
func ParseSpec(spec string) (*Spec, error) {
	s := strings.TrimSpace(spec)
	name, argstr := s, ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("workloads: malformed spec %q: missing ')'", spec)
		}
		name, argstr = strings.TrimSpace(s[:i]), s[i+1:len(s)-1]
	}
	d := specByName(name)
	if d == nil {
		return nil, fmt.Errorf("workloads: unknown benchmark %q (known: %s)",
			name, strings.Join(SpecNames(), ", "))
	}
	args := make([]string, len(d.params))
	for i, p := range d.params {
		args[i] = p.def
	}
	set := make([]bool, len(d.params))
	for _, kv := range splitArgs(argstr) {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return nil, fmt.Errorf("workloads: spec %q: option %q is not key=value", spec, kv)
		}
		key := strings.TrimSpace(kv[:eq])
		val := strings.TrimSpace(kv[eq+1:])
		i := d.paramIndex(key)
		if i < 0 {
			var known []string
			for _, p := range d.params {
				known = append(known, p.key)
			}
			if len(known) == 0 {
				return nil, fmt.Errorf("workloads: spec %q: %s takes no options", spec, d.name)
			}
			return nil, fmt.Errorf("workloads: spec %q: unknown option %q (options: %s)",
				spec, key, strings.Join(known, ", "))
		}
		if set[i] {
			return nil, fmt.Errorf("workloads: spec %q: duplicate option %q", spec, key)
		}
		norm, err := normalizeValue(d.params[i], val)
		if err != nil {
			return nil, fmt.Errorf("workloads: spec %q: %w", spec, err)
		}
		args[i] = norm
		set[i] = true
	}
	canonical := d.name
	var shown []string
	for i, p := range d.params {
		if args[i] != p.def {
			shown = append(shown, p.key+"="+args[i])
		}
	}
	if len(shown) > 0 {
		canonical += "(" + strings.Join(shown, ",") + ")"
	}
	return &Spec{Canonical: canonical, Name: d.name, Synthetic: d.synthetic, def: d, args: args}, nil
}

// splitArgs splits "k=v,k2=v2" on commas, dropping empty pieces.
func splitArgs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// normalizeValue canonicalizes a parameter value so equal configurations
// spell identically. Numeric-looking defaults get numeric normalization
// ("0.050" -> "0.05", "04" -> "4"); everything else (file paths) is kept
// verbatim.
func normalizeValue(p paramDef, val string) (string, error) {
	if val == "" {
		return "", fmt.Errorf("option %q: empty value", p.key)
	}
	if _, err := strconv.Atoi(p.def); err == nil {
		n, err := strconv.Atoi(val)
		if err != nil {
			return "", fmt.Errorf("option %q: %q is not an integer", p.key, val)
		}
		return strconv.Itoa(n), nil
	}
	if _, err := strconv.ParseFloat(p.def, 64); err == nil {
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return "", fmt.Errorf("option %q: %q is not a number", p.key, val)
		}
		return strconv.FormatFloat(f, 'g', -1, 64), nil
	}
	return val, nil
}

// argInt fetches a declared-parameter value as an int (build helpers; the
// value was validated during parsing).
func argInt(args []string, i int) int {
	n, err := strconv.Atoi(args[i])
	if err != nil {
		panic("workloads: unvalidated int arg: " + args[i])
	}
	return n
}

func argFloat(args []string, i int) float64 {
	f, err := strconv.ParseFloat(args[i], 64)
	if err != nil {
		panic("workloads: unvalidated float arg: " + args[i])
	}
	return f
}

// ByName resolves and builds a workload spec in one step. It is the
// checked lookup every user-facing path goes through: unknown names return
// an error instead of the nil the pre-registry version handed back.
func ByName(spec string, size Size, threads int) (memsys.Program, error) {
	s, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return s.Build(size, threads)
}

// MustByName is ByName for tests and examples with hardwired known-good
// names; it panics on error.
func MustByName(spec string, size Size, threads int) memsys.Program {
	p, err := ByName(spec, size, threads)
	if err != nil {
		panic(err)
	}
	return p
}

// SpecNames lists every registered workload family: the six benchmarks in
// the paper's figure order, then the synthetic patterns and the replayer
// in registration order.
func SpecNames() []string {
	out := make([]string, len(specDefs))
	for i := range specDefs {
		out[i] = specDefs[i].name
	}
	return out
}

// SyntheticNames lists the registered synthetic patterns and the trace
// replayer — SpecNames minus the ported benchmarks.
func SyntheticNames() []string {
	var out []string
	for i := range specDefs {
		if specDefs[i].synthetic {
			out = append(out, specDefs[i].name)
		}
	}
	return out
}

// SpecInfo describes one registry entry for the inventory table.
type SpecInfo struct {
	Name      string
	Synthetic bool
	Desc      string
	Params    []ParamInfo
}

// SpecCatalog returns the registry inventory in registration order.
func SpecCatalog() []SpecInfo {
	out := make([]SpecInfo, len(specDefs))
	for i, d := range specDefs {
		info := SpecInfo{Name: d.name, Synthetic: d.synthetic, Desc: d.desc}
		for _, p := range d.params {
			info.Params = append(info.Params, ParamInfo{Key: p.key, Default: p.def, Desc: p.desc})
		}
		out[i] = info
	}
	return out
}

// PresetVariants lists registered non-default parameterizations: named
// points on the synthetic parameter axes that join the benchmark and
// default-pattern inventory in the scenario count, the same way the
// protocol registry's ComposedVariants join the paper's nine names. Each
// parses, normalizes to itself, and runs end-to-end like any other spec.
func PresetVariants() []string {
	return []string{
		// Injection-rate sweep endpoints around uniform's default 0.05.
		"uniform(p=0.02)",
		"uniform(p=0.2)",
		// Single hot tile: the worst-case concentration the dateline VCs
		// and the ideal model's link reservation disagree about most.
		"hotspot(t=1)",
		// All-to-one-quadrant pressure, between hotspot(t=4) and uniform.
		"hotspot(t=8)",
		// Coarse and fine sharing groups around prodcons' default 4.
		"prodcons(groups=2)",
		"prodcons(groups=8)",
	}
}

// RegistryWorkloads returns the full runnable workload inventory for
// scenario counting and sweeps: the six benchmarks, each synthetic
// pattern at its defaults (replay excluded — it needs a trace file), and
// the preset parameter variants, deduplicated and in registry order.
func RegistryWorkloads() []string {
	var out []string
	seen := map[string]bool{}
	add := func(spec string) {
		if !seen[spec] {
			seen[spec] = true
			out = append(out, spec)
		}
	}
	for _, d := range specDefs {
		if d.name == "replay" {
			continue
		}
		add(d.name)
	}
	for _, spec := range PresetVariants() {
		s, err := ParseSpec(spec)
		if err != nil {
			panic(err) // registry self-consistency: all presets parse
		}
		add(s.Canonical)
	}
	return out
}
