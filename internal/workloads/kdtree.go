package workloads

import "repro/internal/memsys"

// KDTree models the parallel SAH kD-tree construction of Choi et al.
// (Table 4.2: bunny). Each iteration (tree level) sweeps the edge-event
// array to evaluate SAH split candidates while consulting the triangle
// array, then a sequential phase commits the chosen splits to tree nodes.
//
// The paper's kD-tree findings that the layouts reproduce:
//   - the edges array is huge and streamed read-once per phase (L2
//     response bypass type 2), and its records are 48 bytes, so useful
//     fields straddle line boundaries;
//   - the edges communication region spans two consecutive records (Flex
//     prefetching of the predictable stream), which with the 64-byte
//     packet cap forces some lines to be fetched twice from memory —
//     the Excess waste of Figure 5.3c;
//   - the triangles array is randomly accessed, and only half of each
//     record is needed during the sweep (Flex), so bypassing edges leaves
//     it more L2 room (§5.2.1).
type KDTree struct {
	threads int
	tris    int
	edges   int
	lay     layout
	triR    uint8
	edgeR   uint8
	sahR    uint8
	nodeR   uint8
}

const (
	kdTriWords  = 16 // 64B triangle record; sweep uses the first 8 words
	kdEdgeWords = 12 // 48B edge record; 8 useful words + padding
)

// NewKDTree builds the kD-tree benchmark at the given scale.
func NewKDTree(size Size, threads int) *KDTree {
	var tris int
	switch size {
	case Tiny:
		tris = 1024
	case Small:
		tris = 8 * 1024
	default:
		tris = 64 * 1024 // ~bunny scale
	}
	k := &KDTree{threads: threads, tris: tris, edges: 2 * tris}
	triComm := make([]uint16, 8)
	for i := range triComm {
		triComm[i] = uint16(i)
	}
	// Edge communication region: the useful fields of this record plus the
	// next record (stream prefetch) — 16 words, exactly the 64B packet cap.
	edgeComm := make([]uint16, 0, 16)
	for i := 0; i < 8; i++ {
		edgeComm = append(edgeComm, uint16(i))
	}
	for i := 0; i < 8; i++ {
		edgeComm = append(edgeComm, uint16(kdEdgeWords+i))
	}
	k.triR = k.lay.add("triangles", uint32(tris)*kdTriWords*4,
		regionOpts{strideWords: kdTriWords, comm: triComm})
	k.edgeR = k.lay.add("edges", uint32(k.edges)*kdEdgeWords*4,
		regionOpts{strideWords: kdEdgeWords, comm: edgeComm, bypass: true})
	k.sahR = k.lay.add("sah", uint32(threads)*256*4, regionOpts{})
	k.nodeR = k.lay.add("nodes", 64*1024, regionOpts{})
	return k
}

// Name implements memsys.Program.
func (k *KDTree) Name() string { return "kD-tree" }

// Threads implements memsys.Program.
func (k *KDTree) Threads() int { return k.threads }

// FootprintBytes implements memsys.Program.
func (k *KDTree) FootprintBytes() uint32 { return k.lay.next }

// Regions implements memsys.Program.
func (k *KDTree) Regions() []memsys.Region { return k.lay.regions }

// Phases implements memsys.Program: (sweep, commit) per iteration; one
// warm-up iteration plus the paper's three measured iterations (§4.3).
func (k *KDTree) Phases() int { return 2 * 4 }

// WarmupPhases implements memsys.Program.
func (k *KDTree) WarmupPhases() int { return 2 }

// WrittenRegions implements memsys.Program.
func (k *KDTree) WrittenRegions(p int) []uint8 {
	if p%2 == 0 {
		return []uint8{k.sahR}
	}
	return []uint8{k.nodeR}
}

func (k *KDTree) edgeAddr(i, word int) uint32 {
	return k.lay.base(k.edgeR) + uint32(i*kdEdgeWords+word)*4
}

func (k *KDTree) triAddr(i, word int) uint32 {
	return k.lay.base(k.triR) + uint32(i*kdTriWords+word)*4
}

// EmitOps implements memsys.Program.
func (k *KDTree) EmitOps(p, t int, emit func(memsys.Op)) {
	e := emitter{emit}
	it := p / 2
	if p%2 == 0 { // SAH sweep
		lo, hi := span(k.edges, k.threads, t)
		rng := newRNG(0xd7ee<<4 + uint64(it*131+t))
		for i := lo; i < hi; i++ {
			e.loadWords(k.edgeAddr(i, 0), 8) // stream useful edge fields
			if i%2 == 0 {
				// Consult the triangle this event belongs to (random order).
				tri := rng.intn(k.tris)
				e.loadWords(k.triAddr(tri, 0), 8)
				e.compute(6)
			}
		}
		// Flush per-thread SAH accumulators.
		e.storeWords(k.lay.base(k.sahR)+uint32(t)*256*4, 256)
	} else { // commit splits (sequential)
		if t != 0 {
			return
		}
		e.loadWords(k.lay.base(k.sahR), k.threads*256)
		e.compute(512)
		e.storeWords(k.lay.base(k.nodeR)+uint32(it%4)*4096, 1024)
	}
}
