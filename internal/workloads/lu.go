package workloads

import "repro/internal/memsys"

// LU models the SPLASH-2 blocked dense LU factorization (Table 4.2:
// 512x512 matrix, 16x16 blocks, "aligned" variant — blocks stored
// contiguously so there is no false sharing).
//
// Per factorization step k the kernel runs three phases: factorize the
// diagonal block, update the perimeter row/column blocks, update the
// interior blocks. Blocks are assigned to threads round-robin, and only a
// block's owner writes it, so phases are data-race free.
//
// The patterns the paper attributes LU's results to:
//   - triangular accesses inside diagonal/perimeter blocks touch only part
//     of each cache line (Evict waste from poor spatial locality),
//   - lines are read by several consumers before their owner writes them
//     again, so MESI sees frequent S->M Upgrade requests,
//   - the working set is small relative to the L2, so L2 bypass has no
//     opportunity (no Bypass annotation).
type LU struct {
	threads int
	n       int // matrix dimension
	b       int // block dimension
	nb      int // blocks per dimension
	lay     layout
	mat     uint8
}

// Matrix element: double = 2 words.
const luElemWords = 2

// NewLU builds the LU benchmark at the given scale.
func NewLU(size Size, threads int) *LU {
	var n int
	switch size {
	case Tiny:
		n = 64
	case Small:
		n = 128
	default:
		n = 512 // paper
	}
	l := &LU{threads: threads, n: n, b: 16}
	l.nb = n / l.b
	bytes := uint32(n) * uint32(n) * luElemWords * 4
	l.mat = l.lay.add("matrix", bytes, regionOpts{strideWords: luElemWords})
	return l
}

// Name implements memsys.Program.
func (l *LU) Name() string { return "LU" }

// Threads implements memsys.Program.
func (l *LU) Threads() int { return l.threads }

// FootprintBytes implements memsys.Program.
func (l *LU) FootprintBytes() uint32 { return l.lay.next }

// Regions implements memsys.Program.
func (l *LU) Regions() []memsys.Region { return l.lay.regions }

// Phases implements memsys.Program: 1 warm-up + 3 per factorization step.
func (l *LU) Phases() int { return 1 + 3*l.nb }

// WarmupPhases implements memsys.Program (§4.3: one core reads the matrix).
func (l *LU) WarmupPhases() int { return 1 }

// WrittenRegions implements memsys.Program: every compute phase writes
// somewhere in the matrix.
func (l *LU) WrittenRegions(p int) []uint8 {
	if p == 0 {
		return nil
	}
	return []uint8{l.mat}
}

// owner assigns blocks to threads round-robin.
func (l *LU) owner(bi, bj int) int { return (bi*l.nb + bj) % l.threads }

// blockAddr returns the byte address of element (i, j) inside block
// (bi, bj); blocks are stored contiguously ("aligned" LU).
func (l *LU) blockAddr(bi, bj, i, j int) uint32 {
	blockBytes := uint32(l.b*l.b) * luElemWords * 4
	base := l.lay.base(l.mat) + uint32(bi*l.nb+bj)*blockBytes
	return base + uint32(i*l.b+j)*luElemWords*4
}

// EmitOps implements memsys.Program.
func (l *LU) EmitOps(p, t int, emit func(memsys.Op)) {
	e := emitter{emit}
	if p == 0 {
		if t != 0 {
			return
		}
		for off := uint32(0); off < l.lay.next; off += memsys.LineBytes {
			e.load(off)
		}
		return
	}
	k := (p - 1) / 3
	switch (p - 1) % 3 {
	case 0: // factorize diagonal block (k,k): triangular in-place update
		if l.owner(k, k) != t {
			return
		}
		for j := 0; j < l.b; j++ {
			for i := j; i < l.b; i++ {
				e.loadWords(l.blockAddr(k, k, i, j), luElemWords)
			}
			e.compute(3 * (l.b - j))
			for i := j + 1; i < l.b; i++ {
				e.storeWords(l.blockAddr(k, k, i, j), luElemWords)
			}
		}
	case 1: // perimeter: row blocks (k,j) and column blocks (i,k)
		for j := k + 1; j < l.nb; j++ {
			if l.owner(k, j) == t {
				l.perimUpdate(e, k, k, j)
			}
			if l.owner(j, k) == t {
				l.perimUpdate(e, k, j, k)
			}
		}
	case 2: // interior: (i,j) -= (i,k)*(k,j)
		for i := k + 1; i < l.nb; i++ {
			for j := k + 1; j < l.nb; j++ {
				if l.owner(i, j) != t {
					continue
				}
				l.readBlock(e, i, k)
				l.readBlock(e, k, j)
				e.compute(2 * l.b * l.b)
				l.rmwBlock(e, i, j)
			}
		}
	}
}

// perimUpdate solves a perimeter block against the diagonal block:
// triangular read of the diagonal, full read-modify-write of the target.
func (l *LU) perimUpdate(e emitter, k, bi, bj int) {
	for j := 0; j < l.b; j++ {
		for i := j; i < l.b; i++ {
			e.loadWords(l.blockAddr(k, k, i, j), luElemWords)
		}
	}
	e.compute(l.b * l.b)
	l.rmwBlock(e, bi, bj)
}

func (l *LU) readBlock(e emitter, bi, bj int) {
	for i := 0; i < l.b; i++ {
		for j := 0; j < l.b; j++ {
			e.loadWords(l.blockAddr(bi, bj, i, j), luElemWords)
		}
	}
}

func (l *LU) rmwBlock(e emitter, bi, bj int) {
	for i := 0; i < l.b; i++ {
		for j := 0; j < l.b; j++ {
			e.loadWords(l.blockAddr(bi, bj, i, j), luElemWords)
			e.storeWords(l.blockAddr(bi, bj, i, j), luElemWords)
		}
	}
}
