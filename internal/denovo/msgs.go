package denovo

import (
	"repro/internal/bloom"
	"repro/internal/coher"
	"repro/internal/memsys"
)

// L1 per-word states (cache.Line.WState).
const (
	wInvalid uint8 = iota
	wValid
	wRegistered // written and registered (or registration pending)
)

// L2 per-word states (low bits of WState); l2Dirty marks words newer than
// memory (written back from an L1).
const (
	l2Invalid uint8 = iota
	l2Valid
	l2Registered
	l2StateMask uint8 = 0x3
	l2Dirty     uint8 = 0x4
)

const lineWords = memsys.WordsPerLine

// --- L1 -> home L2 ---

// dvnLoadReq asks the home slice for a set of words. key is the critical
// line, used to route responses back to the requestor's MSHR. Under Flex
// the want set may span lines (the region's communication region).
type dvnLoadReq struct {
	key    uint32 // critical line
	crit   uint32 // critical word address
	from   int
	wants  []uint32 // word addresses, critical word included
	bypass bool     // region is L2-response-bypassed
	flex   bool     // region has a communication region and Flex is on
	tIssue int64
}

// dvnRegister records ownership of written words at the registry (§2).
type dvnRegister struct {
	line uint32
	from int
	mask uint16
}

type dvnRegAck struct {
	line uint32
	mask uint16
}

// dvnWB is a writeback of registered words, possibly combined with a
// pending registration ("combined writeback and register message", §4.2).
type dvnWB struct {
	line uint32
	from int
	mask uint16 // words carried (registered or pending registration)
	vals [lineWords]uint32
}

type dvnWBAck struct {
	line uint32
}

// --- home L2 -> L1 ---

// dvnData delivers word values to a requesting L1 (from the L2 array, a
// remote owner, or the memory controller).
type dvnData struct {
	key     uint32
	words   []uint32 // word addresses
	vals    []uint32
	minsts  []uint64
	fromMem bool
	tAtMC   int64
	tDram   int64
	hops    int
}

// dvnDeny tells the requestor that some flex-prefetch words will not be
// delivered (not on-chip and outside the memory fetch scope).
type dvnDeny struct {
	key   uint32
	words []uint32
}

// dvnFwdRead asks a registered owner to send words to the requestor.
type dvnFwdRead struct {
	key       uint32
	requestor int
	words     []uint32
	tIssue    int64
}

// dvnInvalWord invalidates superseded copies at a previous registrant.
type dvnInvalWord struct {
	words []uint32
}

// dvnRecall asks an owner to surrender registered words for an L2
// eviction; the owner invalidates its copies.
type dvnRecall struct {
	line uint32
	mask uint16
}

type dvnRecallResp struct {
	line uint32
	from int
	mask uint16
	vals [lineWords]uint32
}

// dvnNack bounces a request for a line under eviction (§5.2.4: NACKs are
// DeNovo's only baseline overhead).
type dvnNack struct {
	key  uint32
	from int
}

// --- L2 / L1 <-> memory controller ---

// dvnMemRead fetches words from memory. wants lists the word addresses to
// return to the requestor (empty when only the L2 fill matters). noReturn
// masks critical-line words that are dirty on-chip and must be filtered
// (§3.1, "Memory Controller to L1 Transfer").
type dvnMemRead struct {
	key       uint32
	critLine  uint32
	wants     []uint32
	noReturn  uint16
	home      int
	requestor int
	direct    bool // respond to the requestor L1
	fillL2    bool // send an L2 fill
	flex      bool // drop non-wanted words as Excess (L2 Flex, §3.1)
	class     memsys.Class
	tIssue    int64
}

// dvnL2Fill installs memory data at the home slice.
type dvnL2Fill struct {
	line   uint32
	mask   uint16
	vals   [lineWords]uint32
	minsts [lineWords]uint64
	class  memsys.Class
	hops   int
	tAtMC  int64
	tDram  int64
}

// --- Bloom filter copies (§4.4) ---

type dvnBloomReq struct {
	idx  int
	from int
}

type dvnBloomResp struct {
	idx   int
	slice int
	snap  *bloom.Filter
}

// --- dispatch (coher.Msg) ---
//
// Each message routes itself to the right component of the destination
// tile; the coher substrate invokes Dispatch on delivery.

func (m *dvnData) Dispatch(s *System, tile int)       { s.l1s[tile].handleData(m) }
func (m *dvnDeny) Dispatch(s *System, tile int)       { s.l1s[tile].handleDeny(m) }
func (m *dvnFwdRead) Dispatch(s *System, tile int)    { s.l1s[tile].handleFwdRead(m) }
func (m *dvnInvalWord) Dispatch(s *System, tile int)  { s.l1s[tile].handleInvalWord(m) }
func (m *dvnRecall) Dispatch(s *System, tile int)     { s.l1s[tile].handleRecall(m) }
func (m *dvnRegAck) Dispatch(s *System, tile int)     { s.l1s[tile].handleRegAck(m) }
func (m *dvnWBAck) Dispatch(s *System, tile int)      { s.l1s[tile].handleWBAck(m) }
func (m *dvnNack) Dispatch(s *System, tile int)       { s.l1s[tile].handleNack(m) }
func (m *dvnBloomResp) Dispatch(s *System, tile int)  { s.l1s[tile].handleBloomResp(m) }
func (m *dvnLoadReq) Dispatch(s *System, tile int)    { s.l2s[tile].handleLoadReq(m) }
func (m *dvnRegister) Dispatch(s *System, tile int)   { s.l2s[tile].handleRegister(m) }
func (m *dvnWB) Dispatch(s *System, tile int)         { s.l2s[tile].handleWB(m) }
func (m *dvnRecallResp) Dispatch(s *System, tile int) { s.l2s[tile].handleRecallResp(m) }
func (m *dvnL2Fill) Dispatch(s *System, tile int)     { s.l2s[tile].handleL2Fill(m) }
func (m *dvnBloomReq) Dispatch(s *System, tile int)   { s.l2s[tile].handleBloomReq(m) }
func (m *dvnMemRead) Dispatch(s *System, tile int)    { s.handleMemRead(tile, m) }
func (m *msgMemWBPartial) Dispatch(s *System, tile int) {
	s.handleMemWB(tile, m)
}

// Compile-time check that the whole vocabulary dispatches.
var _ = []coher.Msg[*System]{
	(*dvnLoadReq)(nil), (*dvnRegister)(nil), (*dvnWB)(nil), (*dvnData)(nil),
	(*dvnDeny)(nil), (*dvnFwdRead)(nil), (*dvnInvalWord)(nil), (*dvnRecall)(nil),
	(*dvnRecallResp)(nil), (*dvnRegAck)(nil), (*dvnWBAck)(nil), (*dvnNack)(nil),
	(*dvnL2Fill)(nil), (*dvnBloomReq)(nil), (*dvnBloomResp)(nil),
	(*dvnMemRead)(nil), (*msgMemWBPartial)(nil),
}
