package denovo_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/denovo"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

// TestDiagnostics runs the trickiest workload/variant pair and dumps the
// protocol state on deadlock or an oracle violation.
func TestDiagnostics(t *testing.T) {
	prog := workloads.MustByName("radix", workloads.Tiny, 16)
	env, err := memsys.NewEnv(testConfig(), prog.FootprintBytes(), prog.Regions())
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := denovo.VariantByName("DeNovo")
	sys := denovo.New(env, opt)
	r := core.NewRunner(env, sys, prog)
	old := core.MaxSteps
	core.MaxSteps = 50_000_000
	defer func() { core.MaxSteps = old }()
	if err := r.Run(); err != nil {
		t.Fatalf("%v\n%s", err, sys.DebugState())
	}
}

// scriptProgram mirrors the mesi test helper for directed scenarios.
type scriptProgram struct {
	name    string
	threads int
	foot    uint32
	regions []memsys.Region
	phases  [][][]memsys.Op
	written [][]uint8
	warmup  int
}

func (s *scriptProgram) Name() string             { return s.name }
func (s *scriptProgram) Threads() int             { return s.threads }
func (s *scriptProgram) FootprintBytes() uint32   { return s.foot }
func (s *scriptProgram) Regions() []memsys.Region { return s.regions }
func (s *scriptProgram) Phases() int              { return len(s.phases) }
func (s *scriptProgram) WarmupPhases() int        { return s.warmup }
func (s *scriptProgram) WrittenRegions(p int) []uint8 {
	if s.written == nil {
		return nil
	}
	return s.written[p]
}
func (s *scriptProgram) EmitOps(p, t int, emit func(memsys.Op)) {
	for _, op := range s.phases[p][t] {
		emit(op)
	}
}

func ld(addr uint32) memsys.Op { return memsys.Op{Kind: memsys.OpLoad, Addr: addr} }
func st(addr uint32) memsys.Op { return memsys.Op{Kind: memsys.OpStore, Addr: addr} }

// pad extends a per-thread op table to 16 threads.
func pad(perThread ...[]memsys.Op) [][]memsys.Op {
	out := make([][]memsys.Op, 16)
	copy(out, perThread)
	return out
}
