package denovo

import (
	"fmt"
	"strings"
)

// DebugState renders in-flight protocol state for deadlock diagnostics.
func (s *System) DebugState() string {
	var b strings.Builder
	for t, l1 := range s.l1s {
		if l1.mshrs.Len() == 0 && l1.wc.Len() == 0 && l1.wbBuf.Len() == 0 && l1.pendingRegs == 0 {
			continue
		}
		fmt.Fprintf(&b, "L1[%d]: wc=%d pendingRegs=%d wbBuf=%d drain=%v\n",
			t, l1.wc.Len(), l1.pendingRegs, l1.wbBuf.Len(), l1.drainGate.Armed())
		l1.mshrs.Range(func(key uint32, m *mshr) {
			fmt.Fprintf(&b, "  mshr %#x wanted=%d waiters=%d\n", key, len(m.wanted), len(m.waiters))
			for a := range m.wanted {
				fmt.Fprintf(&b, "    want %#x\n", a)
			}
		})
	}
	for t, sl := range s.l2s {
		sl.fetch.Range(func(line uint32, f *l2Fetch) {
			fmt.Fprintf(&b, "L2[%d]: fetch %#x retries=%d\n", t, line, len(f.retry))
		})
		for line := range sl.busyEvict {
			fmt.Fprintf(&b, "L2[%d]: evicting %#x\n", t, line)
		}
	}
	return b.String()
}
