package denovo

import (
	"fmt"
	"strings"
)

// DebugState renders in-flight protocol state for deadlock diagnostics.
func (s *System) DebugState() string {
	var b strings.Builder
	for t, l1 := range s.l1s {
		if len(l1.mshrs) == 0 && len(l1.wc) == 0 && len(l1.wbBuf) == 0 && l1.pendingRegs == 0 {
			continue
		}
		fmt.Fprintf(&b, "L1[%d]: wc=%d pendingRegs=%d wbBuf=%d drain=%v\n",
			t, len(l1.wc), l1.pendingRegs, len(l1.wbBuf), l1.drainDone != nil)
		for key, m := range l1.mshrs {
			fmt.Fprintf(&b, "  mshr %#x wanted=%d waiters=%d\n", key, len(m.wanted), len(m.waiters))
			for a := range m.wanted {
				fmt.Fprintf(&b, "    want %#x\n", a)
			}
		}
	}
	for t, sl := range s.l2s {
		for line, f := range sl.fetch {
			fmt.Fprintf(&b, "L2[%d]: fetch %#x retries=%d\n", t, line, len(f.retry))
		}
		for line := range sl.busyEvict {
			fmt.Fprintf(&b, "L2[%d]: evicting %#x\n", t, line)
		}
	}
	return b.String()
}
