package denovo

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/cache"
	"repro/internal/coher"
	"repro/internal/memsys"
)

// l2Fetch tracks one in-flight memory fetch for a line. Requests that
// cannot be satisfied while the fetch is in flight are queued and
// re-dispatched once the fill lands.
type l2Fetch struct {
	line   uint32
	retry  []*dvnLoadReq
	tAtMC  int64
	tDram  int64
	filled bool
}

// memStamp carries DRAM timing to re-dispatched requests so their loads
// still sample as memory time in Figure 5.2.
type memStamp struct {
	tAtMC, tDram int64
}

type l2Slice struct {
	sys  *System
	tile int
	c    *cache.Cache

	fetch     coher.Table[l2Fetch]
	busyEvict map[uint32]bool
	evictCont map[uint32]*evictState
	gate      map[uint32][]func()
	dirtyCnt  map[uint32]int // words per line that are registered or dirty
	blooms    *bloom.L2Bank
	pred      *bypassPredictor
}

// evictState tracks an eviction waiting on owner recalls.
type evictState struct {
	pending int
	cont    func()
}

func newL2(s *System, tile int) *l2Slice {
	cfg := s.Env.Cfg
	sl := &l2Slice{
		sys:       s,
		tile:      tile,
		c:         cache.New(cfg.L2SliceBytes, cfg.L2Assoc, memsys.LineBytes),
		fetch:     coher.NewTable[l2Fetch](),
		busyEvict: make(map[uint32]bool),
		evictCont: make(map[uint32]*evictState),
		gate:      make(map[uint32][]func()),
		dirtyCnt:  make(map[uint32]int),
	}
	if s.opt.BypassReq {
		sl.blooms = bloom.NewL2Bank(cfg.Bloom)
	}
	if s.opt.PredictBypass {
		sl.pred = newBypassPredictor()
	}
	return sl
}

func (sl *l2Slice) env() *memsys.Env { return sl.sys.Env }

// lockLine serializes state mutations per line in arrival order. Timed
// retries would let an old writeback overtake a newer registration from
// the same L1; the FIFO gate preserves per-source message order instead.
// op must arrange for unlockLine to run when its mutation completes.
func (sl *l2Slice) lockLine(line uint32, op func()) {
	if q, gated := sl.gate[line]; gated {
		sl.gate[line] = append(q, op)
		return
	}
	sl.gate[line] = nil
	op()
}

func (sl *l2Slice) unlockLine(line uint32) {
	q, gated := sl.gate[line]
	if !gated {
		panic("denovo: unlock of ungated line")
	}
	if len(q) == 0 {
		delete(sl.gate, line)
		return
	}
	next := q[0]
	sl.gate[line] = q[1:]
	next()
}

// markDirty/markClean maintain the per-line dirty-word count and the
// counting Bloom filters of §4.4.
func (sl *l2Slice) markDirty(line uint32) {
	sl.dirtyCnt[line]++
	if sl.dirtyCnt[line] == 1 && sl.blooms != nil {
		sl.blooms.Insert(line)
	}
}

func (sl *l2Slice) markClean(line uint32) {
	if sl.dirtyCnt[line] == 0 {
		return
	}
	sl.dirtyCnt[line]--
	if sl.dirtyCnt[line] == 0 {
		delete(sl.dirtyCnt, line)
		if sl.blooms != nil {
			sl.blooms.Remove(line)
		}
	}
}

// dirtyMask returns the words of a line that are stale in memory
// (registered to an L1 or dirty at the L2).
func (sl *l2Slice) dirtyMask(line uint32) uint16 {
	ln := sl.c.Lookup(line)
	if ln == nil {
		return 0
	}
	var m uint16
	for w := 0; w < lineWords; w++ {
		st := ln.WState[w]
		if st&l2StateMask == l2Registered || st&l2Dirty != 0 {
			m |= 1 << w
		}
	}
	return m
}

// --- load requests ---

func (sl *l2Slice) handleLoadReq(m *dvnLoadReq) {
	env := sl.env()
	env.K.After(env.Cfg.L2Latency, func() { sl.serve(m, nil) })
}

// serve satisfies a request from the L2 array, remote owners, and memory.
// stamp is non-nil when the request was re-dispatched after a fill, so
// loads keep their memory-time attribution.
func (sl *l2Slice) serve(m *dvnLoadReq, stamp *memStamp) {
	env := sl.env()
	var direct, nacked, denied []uint32
	fwd := map[uint8][]uint32{}
	mem := map[uint32][]uint32{}

	critLine := memsys.LineOf(m.crit)
	bypass := m.bypass
	if sl.pred != nil && !bypass && sl.pred.shouldBypass(critLine) {
		bypass = true
	}
	for _, addr := range m.wants {
		line, w := memsys.LineOf(addr), memsys.WordIndex(addr)
		if sl.busyEvict[line] {
			nacked = append(nacked, addr)
			continue
		}
		ln := sl.c.Lookup(line)
		if ln != nil {
			switch ln.WState[w] & l2StateMask {
			case l2Valid:
				direct = append(direct, addr)
				continue
			case l2Registered:
				if int(ln.Owner[w]) != m.from {
					fwd[ln.Owner[w]] = append(fwd[ln.Owner[w]], addr)
					continue
				}
				// Registered to the requestor itself: nothing to send
				// (it already owns the word); drop from the want set.
				denied = append(denied, addr)
				continue
			}
		}
		// Invalid at the L2 (or line absent): memory.
		if line != critLine && !(bypass && sl.sys.opt.FlexL2) {
			// Cross-line Flex prefetch is only fetched from memory by the
			// bypass+FlexL2 path; otherwise only on-chip copies serve it.
			denied = append(denied, addr)
			continue
		}
		mem[line] = append(mem[line], addr)
	}

	if len(direct) > 0 {
		sl.sendFromArray(m, direct, stamp)
	}
	for owner := 0; owner < env.Cfg.Tiles; owner++ { // deterministic order
		words, ok := fwd[uint8(owner)]
		if !ok {
			continue
		}
		sl.sys.SendCtl(memsys.ClassLD, memsys.BReqCtl, sl.tile, owner, &dvnFwdRead{
			key: m.key, requestor: m.from, words: words, tIssue: m.tIssue,
		})
	}
	if len(nacked) > 0 {
		// NACK: the requestor retries the whole remainder (§5.2.4).
		sl.sys.SendCtl(memsys.ClassOVH, memsys.BOvhNack, sl.tile, m.from,
			&dvnNack{key: m.key, from: sl.tile})
	}
	if len(denied) > 0 {
		sl.sys.SendCtl(memsys.ClassLD, memsys.BRespCtl, sl.tile, m.from,
			&dvnDeny{key: m.key, words: denied})
	}
	if len(mem) == 0 {
		return
	}

	var memWords []uint32
	for _, words := range mem {
		memWords = append(memWords, words...)
	}
	coher.SortU32(memWords)

	if bypass {
		// L2 response bypass: fetch straight to the L1, no L2 fill.
		mc := env.Cfg.MCTile(critLine)
		sl.sys.SendCtl(memsys.ClassLD, memsys.BReqCtl, sl.tile, mc, &dvnMemRead{
			key: m.key, critLine: critLine, wants: memWords,
			noReturn: sl.dirtyMask(critLine),
			home:     sl.tile, requestor: m.from,
			direct: true, fillL2: false, flex: m.flex && sl.sys.opt.FlexL2,
			class: memsys.ClassLD, tIssue: m.tIssue,
		})
		return
	}

	if f := sl.fetch.Get(critLine); f != nil {
		// A fetch is already in flight: re-dispatch the remainder after
		// the fill.
		rest := *m
		rest.wants = memWords
		f.retry = append(f.retry, &rest)
		return
	}

	f := &l2Fetch{line: critLine}
	sl.fetch.Put(critLine, f)
	if sl.sys.opt.MemToL1 {
		// §3.1 Memory Controller to L1 Transfer: data goes to the L1 and
		// the L2 in parallel; the request carries the dirty-word vector.
		sl.sendMemRead(m, critLine, memWords, true)
		return
	}
	// Baseline: memory fills the L2; the requestor is re-dispatched after
	// the fill and served from the array.
	rest := *m
	rest.wants = memWords
	f.retry = append(f.retry, &rest)
	sl.sendMemRead(m, critLine, nil, false)
}

func (sl *l2Slice) sendMemRead(m *dvnLoadReq, critLine uint32, wants []uint32, direct bool) {
	mc := sl.env().Cfg.MCTile(critLine)
	sl.sys.SendCtl(memsys.ClassLD, memsys.BReqCtl, sl.tile, mc, &dvnMemRead{
		key: m.key, critLine: critLine, wants: wants,
		noReturn: sl.dirtyMask(critLine),
		home:     sl.tile, requestor: m.from,
		direct: direct, fillL2: true,
		flex:  m.flex && sl.sys.opt.FlexL2,
		class: memsys.ClassLD, tIssue: m.tIssue,
	})
}

// sendFromArray serves words from the L2 data array: genuine L2 reuse, so
// the words classify as Used at the L2 (Figure 4.2) — unless this is the
// immediate forward of a fill (stamp != nil), which is the L1's copy, not
// L2 reuse.
func (sl *l2Slice) sendFromArray(m *dvnLoadReq, words []uint32, stamp *memStamp) {
	env := sl.env()
	vals := make([]uint32, len(words))
	minsts := make([]uint64, len(words))
	for i, addr := range words {
		ln := sl.c.Lookup(memsys.LineOf(addr))
		w := memsys.WordIndex(addr)
		vals[i] = ln.Data[w]
		minsts[i] = ln.MInst[w]
		if stamp == nil {
			env.Prof.L2Served(ln.Inst[w])
			if ln.State < 255 {
				ln.State++ // reuse count for the bypass predictor
			}
		}
		sl.c.Touch(ln)
	}
	hops := sl.sys.CtlHops(memsys.ClassLD, memsys.BRespCtl, sl.tile, m.from)
	d := &dvnData{key: m.key, words: words, vals: vals, minsts: minsts, hops: hops}
	if stamp != nil {
		d.fromMem = true
		d.tAtMC, d.tDram = stamp.tAtMC, stamp.tDram
	}
	sl.sys.SendData(sl.tile, m.from, len(words), d)
}

// --- registration (§2) ---

func (sl *l2Slice) handleRegister(m *dvnRegister) {
	env := sl.env()
	env.K.After(env.Cfg.L2Latency, func() {
		sl.lockLine(m.line, func() { sl.register(m) })
	})
}

func (sl *l2Slice) register(m *dvnRegister) {
	ln := sl.c.Lookup(m.line)
	if ln == nil {
		sl.ensureWay(m.line, func() { sl.registerInstalled(m, true) })
		return
	}
	sl.registerInstalled(m, false)
}

// registerInstalled applies a registration once the line has a way.
func (sl *l2Slice) registerInstalled(m *dvnRegister, fresh bool) {
	env := sl.env()
	ln := sl.c.Allocate(m.line)
	invals := map[uint8][]uint32{}
	for w := 0; w < lineWords; w++ {
		if m.mask&(1<<w) == 0 {
			continue
		}
		addr := memsys.AddrOf(m.line, w)
		switch ln.WState[w] & l2StateMask {
		case l2Registered:
			old := ln.Owner[w]
			if int(old) != m.from {
				invals[old] = append(invals[old], addr)
			}
		case l2Valid:
			// The L2's clean copy dies before use: Write waste (Fig 4.2).
			env.Prof.L2Overwritten(ln.Inst[w])
			if ln.MInst[w] != 0 {
				env.Prof.MemRelease(ln.MInst[w], false)
				ln.MInst[w] = 0
			}
			sl.markDirty(m.line)
		case l2Invalid:
			sl.markDirty(m.line)
		}
		ln.WState[w] = l2Registered | (ln.WState[w] &^ (l2StateMask | l2Dirty))
		ln.Owner[w] = uint8(m.from)
		ln.Inst[w] = 0
	}
	for owner := 0; owner < env.Cfg.Tiles; owner++ { // deterministic order
		words, ok := invals[uint8(owner)]
		if !ok {
			continue
		}
		sl.sys.SendCtl(memsys.ClassST, memsys.BReqCtl, sl.tile, owner, &dvnInvalWord{words: words})
	}
	// Baseline DeNovo keeps a fetch-on-write L2: a write miss fetches the
	// rest of the line from memory (§3.1).
	if fresh && !sl.sys.opt.ValidateL2 {
		sl.fetchForWrite(m.line)
	}
	sl.sys.SendCtl(memsys.ClassST, memsys.BRespCtl, sl.tile, m.from,
		&dvnRegAck{line: m.line, mask: m.mask})
	sl.unlockLine(m.line)
}

// fetchForWrite fills the invalid words of a write-allocated line
// (fetch-on-write at the L2, baseline DeNovo only).
func (sl *l2Slice) fetchForWrite(line uint32) {
	if sl.fetch.Has(line) {
		return
	}
	// Nothing to fetch when every word is already registered, dirty or
	// valid (a fully overwritten line, e.g. radix's permutation).
	ln := sl.c.Lookup(line)
	need := false
	for w := 0; w < lineWords; w++ {
		if ln == nil || ln.WState[w]&(l2StateMask|l2Dirty) == l2Invalid {
			need = true
			break
		}
	}
	if !need {
		return
	}
	sl.fetch.Put(line, &l2Fetch{line: line})
	mc := sl.env().Cfg.MCTile(line)
	sl.sys.SendCtl(memsys.ClassST, memsys.BReqCtl, sl.tile, mc, &dvnMemRead{
		key: line, critLine: line,
		noReturn: sl.dirtyMask(line),
		home:     sl.tile, requestor: -1,
		fillL2: true, class: memsys.ClassST,
	})
}

// --- writebacks ---

func (sl *l2Slice) handleWB(m *dvnWB) {
	env := sl.env()
	env.K.After(env.Cfg.L2Latency, func() {
		sl.lockLine(m.line, func() { sl.writeback(m) })
	})
}

func (sl *l2Slice) writeback(m *dvnWB) {
	if sl.c.Lookup(m.line) == nil {
		sl.ensureWay(m.line, func() { sl.writebackInstalled(m) })
		return
	}
	sl.writebackInstalled(m)
}

func (sl *l2Slice) writebackInstalled(m *dvnWB) {
	env := sl.env()
	ln := sl.c.Allocate(m.line)
	fresh := false
	for w := 0; w < lineWords; w++ {
		if m.mask&(1<<w) == 0 {
			continue
		}
		st := ln.WState[w] & l2StateMask
		if st == l2Registered && int(ln.Owner[w]) != m.from {
			continue // superseded by a newer registrant: stale data
		}
		switch st {
		case l2Valid:
			// Combined writeback+register over a clean copy.
			env.Prof.L2Overwritten(ln.Inst[w])
			if ln.MInst[w] != 0 {
				env.Prof.MemRelease(ln.MInst[w], false)
				ln.MInst[w] = 0
			}
			sl.markDirty(m.line)
		case l2Invalid:
			sl.markDirty(m.line)
			fresh = true
		}
		ln.Data[w] = m.vals[w]
		ln.WState[w] = l2Valid | l2Dirty
		ln.Owner[w] = 0
		ln.Inst[w] = 0
	}
	if fresh && !sl.sys.opt.ValidateL2 {
		sl.fetchForWrite(m.line)
	}
	sl.sys.SendCtl(memsys.ClassWB, memsys.BWBCtl, sl.tile, m.from, &dvnWBAck{line: m.line})
	sl.unlockLine(m.line)
}

// --- fills ---

func (sl *l2Slice) handleL2Fill(m *dvnL2Fill) {
	env := sl.env()
	env.K.After(env.Cfg.L2Latency, func() {
		sl.lockLine(m.line, func() {
			if sl.c.Lookup(m.line) == nil {
				sl.ensureWay(m.line, func() { sl.fillInstalled(m) })
				return
			}
			sl.fillInstalled(m)
		})
	})
}

func (sl *l2Slice) fillInstalled(m *dvnL2Fill) {
	env := sl.env()
	ln := sl.c.Allocate(m.line)
	insts := make([]uint64, 0, lineWords)
	for w := 0; w < lineWords; w++ {
		if m.mask&(1<<w) == 0 {
			continue
		}
		addr := memsys.AddrOf(m.line, w)
		present := ln.WState[w]&l2StateMask != l2Invalid
		id := env.Prof.L2Arrival(addr, present)
		insts = append(insts, id)
		if present {
			// The shipped copy is dropped (the L2 already has the word).
			env.Prof.MemRelease(m.minsts[w], false)
			continue
		}
		ln.Data[w] = m.vals[w]
		ln.WState[w] = l2Valid
		ln.Inst[w] = id
		ln.MInst[w] = m.minsts[w]
		env.Prof.MemAddRef(m.minsts[w])
	}
	env.Traffic.Data(m.class, m.hops, insts)

	f := sl.fetch.Get(m.line)
	sl.fetch.Delete(m.line)
	sl.unlockLine(m.line)
	if f == nil {
		return
	}
	stamp := &memStamp{tAtMC: m.tAtMC, tDram: m.tDram}
	for _, req := range f.retry {
		sl.serve(req, stamp)
	}
}

// --- eviction ---

// ensureWay guarantees a free way in line's set, then calls cont.
func (sl *l2Slice) ensureWay(line uint32, cont func()) {
	victim := sl.c.VictimWhere(line, func(l *cache.Line) bool {
		_, gated := sl.gate[l.Tag]
		return !gated && !sl.busyEvict[l.Tag] && !sl.fetch.Has(l.Tag)
	})
	if victim == nil {
		sl.sys.RetryAfter(func() { sl.ensureWay(line, cont) })
		return
	}
	if !victim.Valid {
		cont()
		return
	}
	// The continuation runs synchronously when the eviction finishes and
	// claims the freed way immediately (callers Allocate first thing), so
	// concurrent allocations cannot steal it and livelock the set.
	sl.evictLine(victim, cont)
}

// evictLine recalls registered words from their owners, writes dirty words
// to memory, and frees the way.
func (sl *l2Slice) evictLine(ln *cache.Line, cont func()) {
	env := sl.env()
	line := ln.Tag
	// The victim is ungated (VictimWhere guarantees it); take its gate so
	// arriving registrations/writebacks queue behind the eviction.
	sl.lockLine(line, func() {})
	sl.busyEvict[line] = true
	owners := map[uint8]uint16{}
	for w := 0; w < lineWords; w++ {
		if ln.WState[w]&l2StateMask == l2Registered {
			owners[ln.Owner[w]] |= 1 << w
		}
	}
	pending := len(owners)
	if pending == 0 {
		sl.finishEvict(ln, cont)
		return
	}
	sl.evictCont[line] = &evictState{pending: pending, cont: cont}
	for owner := 0; owner < env.Cfg.Tiles; owner++ { // deterministic order
		mask, ok := owners[uint8(owner)]
		if !ok {
			continue
		}
		sl.sys.SendCtl(memsys.ClassWB, memsys.BWBCtl, sl.tile, owner,
			&dvnRecall{line: line, mask: mask})
	}
}

func (sl *l2Slice) handleRecallResp(m *dvnRecallResp) {
	ln := sl.c.Lookup(m.line)
	st := sl.evictCont[m.line]
	if st == nil || ln == nil {
		panic(fmt.Sprintf("denovo: slice %d recall resp line %#x from %d mask %04x: st=%v ln=%v busy=%v gated=%v",
			sl.tile, m.line, m.from, m.mask, st != nil, ln != nil, sl.busyEvict[m.line], func() bool { _, g := sl.gate[m.line]; return g }()))
	}
	for w := 0; w < lineWords; w++ {
		if m.mask&(1<<w) == 0 {
			continue
		}
		ln.Data[w] = m.vals[w]
		ln.WState[w] = l2Valid | l2Dirty
		ln.Owner[w] = 0
	}
	st.pending--
	if st.pending == 0 {
		delete(sl.evictCont, m.line)
		sl.finishEvict(ln, st.cont)
	}
}

// finishEvict writes dirty words back to memory (dirty-words-only with
// ValidateL2; the full line otherwise) and removes the line.
func (sl *l2Slice) finishEvict(ln *cache.Line, cont func()) {
	env := sl.env()
	line := ln.Tag
	var dirty uint16
	msg := &msgMemWBPartial{line: line}
	for w := 0; w < lineWords; w++ {
		if ln.WState[w]&l2Dirty != 0 {
			dirty |= 1 << w
			msg.vals[w] = ln.Data[w]
		}
		env.Prof.L2Evict(ln.Inst[w])
		if ln.MInst[w] != 0 {
			env.Prof.MemRelease(ln.MInst[w], false)
		}
	}
	if dirty != 0 {
		msg.mask = dirty
		mc := env.Cfg.MCTile(line)
		nDirty := coher.Popcount16(dirty)
		clean := 0
		if !sl.sys.opt.ValidateL2 {
			// Baseline: the full 64B line travels to memory.
			clean = lineWords - nDirty
		}
		hops := sl.sys.CtlHops(memsys.ClassWB, memsys.BWBCtl, sl.tile, mc)
		env.Traffic.WBData(true, hops, nDirty, clean)
		sl.sys.SendData(sl.tile, mc, nDirty+clean, msg)
	}
	if sl.dirtyCnt[line] > 0 {
		delete(sl.dirtyCnt, line)
		if sl.blooms != nil {
			sl.blooms.Remove(line)
		}
	}
	if sl.pred != nil {
		sl.pred.train(line, ln.State > 0)
	}
	sl.c.Remove(ln)
	delete(sl.busyEvict, line)
	// The waiting allocation claims the freed way synchronously BEFORE the
	// gate releases queued operations, which could otherwise steal it and
	// force a silent eviction of a line that is mid-recall.
	cont()
	sl.unlockLine(line)
}

// --- Bloom copies (§4.4) ---

func (sl *l2Slice) handleBloomReq(m *dvnBloomReq) {
	env := sl.env()
	hops := sl.sys.Hops(sl.tile, m.from)
	snap := sl.blooms.Snapshot(m.idx)
	// The snapshot payload is entries/8 bytes (64B for the paper's 512
	// entries): one control flit plus the data flits it fills.
	flits := 1 + memsys.DataFlits((snap.SizeBytes()+3)/4)
	env.Traffic.Ctl(memsys.ClassOVH, memsys.BOvhBloom, flits, hops)
	sl.sys.Send(sl.tile, m.from, flits, &dvnBloomResp{
		idx: m.idx, slice: sl.tile, snap: snap,
	})
}
