package denovo

import "repro/internal/bloom"

// bypassPredictor is a hardware-only alternative to the software-annotated
// "L2 Response Bypass" of §3.1 — the follow-up study the paper names in
// its related work: counter-based reuse/dead-block predictors in the
// style of Kharbutli & Solihin and Gaur et al. decide, per line, whether
// an incoming memory fill is worth caching at the L2.
//
// Mechanism: every L2 line tracks whether it was reused (served a request
// from the array) while resident. At eviction the predictor trains a
// table of saturating counters indexed by a hash of the line address:
// never-reused lines push their counter toward "bypass", reused lines
// pull it back. A memory fill whose counter has saturated is sent to the
// requesting L1 only. Unlike the paper's software scheme the predictor
// needs no programmer annotations and adapts to working-set changes, at
// the cost of training time and aliasing.
type bypassPredictor struct {
	counters  []uint8
	h         *bloom.H3
	max       uint8
	threshold uint8

	// Telemetry.
	Trained  uint64
	Bypassed uint64
}

// predictorEntries is the per-slice table size (2-bit counters).
const predictorEntries = 1024

func newBypassPredictor() *bypassPredictor {
	return &bypassPredictor{
		counters:  make([]uint8, predictorEntries),
		h:         bloom.NewH3(0xdead),
		max:       3,
		threshold: 2,
	}
}

func (p *bypassPredictor) idx(line uint32) int {
	return int(p.h.Hash(line)) % len(p.counters)
}

// train records the reuse outcome of an evicted line.
func (p *bypassPredictor) train(line uint32, reused bool) {
	p.Trained++
	i := p.idx(line)
	if reused {
		if p.counters[i] > 0 {
			p.counters[i]--
		}
	} else if p.counters[i] < p.max {
		p.counters[i]++
	}
}

// shouldBypass predicts whether a fill for line would see no L2 reuse.
func (p *bypassPredictor) shouldBypass(line uint32) bool {
	if p.counters[p.idx(line)] >= p.threshold {
		p.Bypassed++
		return true
	}
	return false
}
