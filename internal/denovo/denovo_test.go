package denovo_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/denovo"
	"repro/internal/memsys"
	"repro/internal/waste"
	"repro/internal/workloads"
)

func testConfig() memsys.Config { return memsys.Default().Scaled(64) }

func runProgram(t *testing.T, prog memsys.Program, opt denovo.Options) (*memsys.Env, *denovo.System, *core.Runner) {
	t.Helper()
	env, err := memsys.NewEnv(testConfig(), prog.FootprintBytes(), prog.Regions())
	if err != nil {
		t.Fatal(err)
	}
	sys := denovo.New(env, opt)
	r := core.NewRunner(env, sys, prog)
	if err := r.Run(); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return env, sys, r
}

func variant(t *testing.T, name string) denovo.Options {
	t.Helper()
	opt, ok := denovo.VariantByName(name)
	if !ok {
		t.Fatalf("unknown variant %q", name)
	}
	return opt
}

func TestVariantsMatchPaper(t *testing.T) {
	names := []string{"DeNovo", "DFlexL1", "DValidateL2", "DMemL1", "DFlexL2", "DBypL2", "DBypFull"}
	vs := denovo.Variants()
	if len(vs) != len(names) {
		t.Fatalf("%d variants, want %d", len(vs), len(names))
	}
	for i, v := range vs {
		if v.Name != names[i] {
			t.Errorf("variant %d = %s, want %s", i, v.Name, names[i])
		}
	}
	if _, ok := denovo.VariantByName("nope"); ok {
		t.Fatal("VariantByName accepted a bogus name")
	}
	// Cumulative feature composition (§3.2).
	full, _ := denovo.VariantByName("DBypFull")
	if !(full.FlexL1 && full.ValidateL2 && full.MemToL1 && full.FlexL2 && full.BypassResp && full.BypassReq) {
		t.Fatal("DBypFull does not include all optimizations")
	}
}

// TestAllWorkloadsAllVariants is the core correctness matrix: every paper
// configuration runs every benchmark with the load-value oracle active.
func TestAllWorkloadsAllVariants(t *testing.T) {
	for _, opt := range denovo.Variants() {
		opt := opt
		t.Run(opt.Name, func(t *testing.T) {
			for _, prog := range workloads.Catalog(workloads.Tiny, 16) {
				prog := prog
				t.Run(prog.Name(), func(t *testing.T) {
					env, _, r := runProgram(t, prog, opt)
					if env.Traffic.Total() == 0 {
						t.Fatal("no measured traffic")
					}
					if r.ExecCycles() <= 0 {
						t.Fatal("no measured execution time")
					}
				})
			}
		})
	}
}

func TestWriteValidateNoStoreDataFetch(t *testing.T) {
	// §5.2.2: write-validate eliminates store-triggered data responses to
	// the L1 entirely (MESI's fetch-on-write fetches a full line).
	prog := workloads.MustByName("FFT", workloads.Tiny, 16)
	env, _, _ := runProgram(t, prog, variant(t, "DeNovo"))
	stL1 := env.Traffic.Get(memsys.ClassST, memsys.BRespL1Used) +
		env.Traffic.Get(memsys.ClassST, memsys.BRespL1Waste)
	if stL1 != 0 {
		t.Fatalf("DeNovo store path moved %v L1 data flit-hops; write-validate forbids it", stL1)
	}
	// Registration control traffic must exist instead.
	if env.Traffic.Get(memsys.ClassST, memsys.BReqCtl) == 0 {
		t.Fatal("no registration traffic")
	}
}

func TestBaselineFetchOnWriteAtL2(t *testing.T) {
	// §5.2.2: baseline DeNovo keeps fetch-on-write at the L2 (store-class
	// memory fills); DValidateL2 eliminates it.
	prog := workloads.MustByName("FFT", workloads.Tiny, 16)
	envA, _, _ := runProgram(t, prog, variant(t, "DeNovo"))
	prog2 := workloads.MustByName("FFT", workloads.Tiny, 16)
	envB, _, _ := runProgram(t, prog2, variant(t, "DValidateL2"))

	base := envA.Traffic.Get(memsys.ClassST, memsys.BRespL2Used) +
		envA.Traffic.Get(memsys.ClassST, memsys.BRespL2Waste)
	opt := envB.Traffic.Get(memsys.ClassST, memsys.BRespL2Used) +
		envB.Traffic.Get(memsys.ClassST, memsys.BRespL2Waste)
	if base == 0 {
		t.Fatal("baseline DeNovo shows no L2 fetch-on-write traffic")
	}
	if opt != 0 {
		t.Fatalf("DValidateL2 still fetches on write at the L2: %v flit-hops", opt)
	}
}

func TestDirtyWordsOnlyWritebacks(t *testing.T) {
	// Figure 5.1d: DeNovo L1->L2 writebacks carry only dirty words (no L2
	// Waste); DValidateL2 extends this to L2->Mem writebacks.
	prog := workloads.MustByName("radix", workloads.Tiny, 16)
	envA, _, _ := runProgram(t, prog, variant(t, "DeNovo"))
	if w := envA.Traffic.Get(memsys.ClassWB, memsys.BWBL2Waste); w != 0 {
		t.Fatalf("DeNovo L1->L2 WB carries %v waste flit-hops", w)
	}
	prog2 := workloads.MustByName("radix", workloads.Tiny, 16)
	envB, _, _ := runProgram(t, prog2, variant(t, "DValidateL2"))
	if w := envB.Traffic.Get(memsys.ClassWB, memsys.BWBMemWaste); w != 0 {
		t.Fatalf("DValidateL2 L2->Mem WB carries %v waste flit-hops", w)
	}
	// The baseline writes full lines to memory: waste must exist there.
	if envA.Traffic.Get(memsys.ClassWB, memsys.BWBMemUsed) > 0 &&
		envA.Traffic.Get(memsys.ClassWB, memsys.BWBMemWaste) == 0 {
		t.Fatal("baseline DeNovo full-line memory WBs show no waste")
	}
}

func TestDeNovoOverheadIsOnlyNacksAndBloom(t *testing.T) {
	// §5.2.4: DeNovo has no invalidation/ack/unblock overhead; its only
	// overhead messages are NACKs (and Bloom copies with DBypFull).
	for _, name := range []string{"DeNovo", "DValidateL2", "DFlexL2"} {
		prog := workloads.MustByName("LU", workloads.Tiny, 16)
		env, _, _ := runProgram(t, prog, variant(t, name))
		for _, b := range []memsys.Bucket{memsys.BOvhUnblock, memsys.BOvhInval, memsys.BOvhAck, memsys.BOvhWBCtl} {
			if v := env.Traffic.Get(memsys.ClassOVH, b); v != 0 {
				t.Fatalf("%s has %v flit-hops of %v overhead", name, v, b)
			}
		}
	}
}

func TestFlexReducesLoadTrafficOnBarnes(t *testing.T) {
	// §5.2.1: Flex sends only communication-region words for Barnes-Hut.
	prog := workloads.MustByName("barnes", workloads.Tiny, 16)
	envA, _, _ := runProgram(t, prog, variant(t, "DeNovo"))
	prog2 := workloads.MustByName("barnes", workloads.Tiny, 16)
	envB, _, _ := runProgram(t, prog2, variant(t, "DFlexL1"))
	a := envA.Traffic.ClassTotal(memsys.ClassLD)
	b := envB.Traffic.ClassTotal(memsys.ClassLD)
	if b >= a {
		t.Fatalf("DFlexL1 load traffic %.0f >= DeNovo %.0f on barnes", b, a)
	}
}

func TestBypassReducesL2Insertions(t *testing.T) {
	// §5.2.1: L2 response bypass keeps streaming data out of the L2.
	prog := workloads.MustByName("kD-tree", workloads.Tiny, 16)
	envA, _, _ := runProgram(t, prog, variant(t, "DFlexL2"))
	prog2 := workloads.MustByName("kD-tree", workloads.Tiny, 16)
	envB, _, _ := runProgram(t, prog2, variant(t, "DBypL2"))
	a := envA.Prof.TotalWords(waste.LevelL2)
	b := envB.Prof.TotalWords(waste.LevelL2)
	if b >= a {
		t.Fatalf("DBypL2 inserted %d words into the L2, DFlexL2 %d; bypass must reduce it", b, a)
	}
}

func TestRequestBypassUsesBloomFilters(t *testing.T) {
	prog := workloads.MustByName("FFT", workloads.Tiny, 16)
	env, _, _ := runProgram(t, prog, variant(t, "DBypFull"))
	if env.Traffic.Get(memsys.ClassOVH, memsys.BOvhBloom) == 0 {
		t.Fatal("DBypFull generated no Bloom copy traffic")
	}
}

func TestFlexL2ProducesExcessWaste(t *testing.T) {
	// §5.3: with conventional line-granularity DRAM, L2 Flex drops
	// non-communication words at the MC (Excess waste) for barnes/kD-tree.
	prog := workloads.MustByName("barnes", workloads.Tiny, 16)
	env, _, _ := runProgram(t, prog, variant(t, "DFlexL2"))
	if env.Prof.Count(waste.LevelMem, waste.Excess) == 0 {
		t.Fatal("DFlexL2 on barnes produced no Excess waste")
	}
	// Without FlexL2 there is no Excess at all.
	prog2 := workloads.MustByName("barnes", workloads.Tiny, 16)
	env2, _, _ := runProgram(t, prog2, variant(t, "DMemL1"))
	if env2.Prof.Count(waste.LevelMem, waste.Excess) != 0 {
		t.Fatal("DMemL1 produced Excess waste without L2 Flex")
	}
}

func TestSelfInvalidationRefetches(t *testing.T) {
	// A reader of a written region must refetch after the barrier: the
	// runner's oracle already validates the VALUE; here we check the
	// invalidation waste category shows up at the L1.
	prog := workloads.MustByName("fluidanimate", workloads.Tiny, 16)
	env, _, _ := runProgram(t, prog, variant(t, "DeNovo"))
	if env.Prof.Count(waste.LevelL1, waste.Invalidate) == 0 {
		t.Fatal("self-invalidation produced no Invalidate waste")
	}
}

func TestDeNovoBeatsMESIOnTraffic(t *testing.T) {
	// Headline direction (§5.1): the fully optimized protocol cuts traffic
	// relative to the DeNovo baseline on bypassable benchmarks.
	prog := workloads.MustByName("FFT", workloads.Tiny, 16)
	envA, _, _ := runProgram(t, prog, variant(t, "DeNovo"))
	prog2 := workloads.MustByName("FFT", workloads.Tiny, 16)
	envB, _, _ := runProgram(t, prog2, variant(t, "DBypFull"))
	if envB.Traffic.Total() >= envA.Traffic.Total() {
		t.Fatalf("DBypFull traffic %.0f >= DeNovo %.0f on FFT",
			envB.Traffic.Total(), envA.Traffic.Total())
	}
}

func TestOwnershipHandoff(t *testing.T) {
	// Registration moves between cores across phases: A writes (registers),
	// B reads (forwarded from A), B writes (re-registration invalidates
	// A's stale copy), A reads B's value. The runner's oracle checks every
	// value; the invariant checker verifies single-registrant consistency.
	p := &scriptProgram{
		name: "handoff", threads: 16, foot: 4096,
		regions: []memsys.Region{{ID: 1, Name: "all", Base: 0, Size: 4096}},
		phases: [][][]memsys.Op{
			pad([]memsys.Op{st(0), st(4)}),      // A writes
			pad(nil, []memsys.Op{ld(0), ld(4)}), // B reads (fwd from A)
			pad(nil, []memsys.Op{st(0), st(4)}), // B re-registers
			pad([]memsys.Op{ld(0), ld(4)}),      // A reads B's values
		},
		written: [][]uint8{{1}, nil, {1}, nil},
	}
	for _, name := range []string{"DeNovo", "DValidateL2", "DBypFull"} {
		opt := variant(t, name)
		t.Run(name, func(t *testing.T) { runProgram(t, p, opt) })
	}
}

func TestL2EvictionRecallsRegisteredWords(t *testing.T) {
	// Overflow one L2 set of one home slice with registered lines: the L2
	// must recall ownership from the L1s and write the data to memory, and
	// later reads must still see the right values (oracle-checked).
	// Lines of the form 16i+1 share home slice 1 (line%16==1) and set 1
	// (line&3==1) at the Tiny scale (4 sets/slice), and their memory
	// channel differs from the home tile so writebacks cross the mesh.
	const lines = 24 // > 16 ways
	var writes, reads [][]memsys.Op
	writes = make([][]memsys.Op, 16)
	reads = make([][]memsys.Op, 16)
	for i := 0; i < lines; i++ {
		core := i % 16
		addr := uint32(16*i+1) * 64
		writes[core] = append(writes[core], st(addr))
		reads[core] = append(reads[core], ld(addr))
	}
	foot := uint32(16*lines+2) * 64
	p := &scriptProgram{
		name: "recall", threads: 16, foot: foot,
		regions: []memsys.Region{{ID: 1, Name: "all", Base: 0, Size: foot}},
		phases:  [][][]memsys.Op{writes, reads},
		written: [][]uint8{{1}, nil},
	}
	for _, name := range []string{"DeNovo", "DValidateL2"} {
		opt := variant(t, name)
		t.Run(name, func(t *testing.T) {
			env, _, _ := runProgram(t, p, opt)
			// Recalled dirty data must have produced L2->memory writebacks.
			if env.Traffic.Get(memsys.ClassWB, memsys.BWBMemUsed) == 0 {
				t.Fatal("no dirty data reached memory despite L2 overflow")
			}
		})
	}
}

func TestFlexOutsideCommFallsBackToLine(t *testing.T) {
	// Loads of fields outside the communication region must use line
	// requests, not degenerate per-word requests (§2: communication
	// regions are usage-specific). barnes' update phase reads vel/acc
	// which are outside the force-phase comm region; DFlexL1's request
	// count must stay close to the baseline's.
	prog := workloads.MustByName("barnes", workloads.Tiny, 16)
	envA, _, _ := runProgram(t, prog, variant(t, "DeNovo"))
	prog2 := workloads.MustByName("barnes", workloads.Tiny, 16)
	envB, _, _ := runProgram(t, prog2, variant(t, "DFlexL1"))
	a := envA.Traffic.Get(memsys.ClassLD, memsys.BReqCtl)
	b := envB.Traffic.Get(memsys.ClassLD, memsys.BReqCtl)
	if b > a*1.15 {
		t.Fatalf("DFlexL1 request control %.0f >> baseline %.0f", b, a)
	}
}

func TestHardwareBypassPredictorExtension(t *testing.T) {
	// The DBypHW extension (predictor.go) must (1) run every workload
	// correctly, and (2) reduce L2 insertions on a streaming benchmark
	// without any software bypass annotations.
	opt := variant(t, "DBypHW")
	if !opt.PredictBypass || opt.BypassResp {
		t.Fatal("DBypHW must use the predictor, not annotations")
	}
	for _, prog := range workloads.Catalog(workloads.Tiny, 16) {
		prog := prog
		t.Run(prog.Name(), func(t *testing.T) { runProgram(t, prog, opt) })
	}
	// Streaming comparison: kD-tree edges give the predictor dead lines
	// to learn from.
	prog := workloads.MustByName("kD-tree", workloads.Tiny, 16)
	envBase, _, _ := runProgram(t, prog, variant(t, "DFlexL2"))
	prog2 := workloads.MustByName("kD-tree", workloads.Tiny, 16)
	envHW, _, _ := runProgram(t, prog2, variant(t, "DBypHW"))
	a := envBase.Prof.TotalWords(waste.LevelL2)
	b := envHW.Prof.TotalWords(waste.LevelL2)
	if b >= a {
		t.Fatalf("predictor bypass inserted %d L2 words, baseline %d; expected a reduction", b, a)
	}
}
