// Package denovo implements the DeNovo hardware-software coherence
// protocol of Choi et al. and the thesis' optimization stack (§2, §3):
//
//   - word-level coherence: L1 words are Invalid, Valid or Registered;
//     the shared L2 doubles as the registry, tracking per-word ownership;
//   - no sharer lists, no invalidation broadcasts, no transient states:
//     data-race-free software plus self-invalidation at barriers replace
//     them (the written regions of the finished phase are invalidated in
//     every L1, sparing registered words);
//   - write-validate L1: stores complete locally and register
//     asynchronously through a 32-entry write-combining table with a
//     10,000-cycle timeout (§4.2);
//   - optional L2 write-validate + dirty-words-only writebacks
//     (DValidateL2), memory-controller-to-L1 transfer (DMemL1), Flex
//     communication-granularity responses on-chip (DFlexL1) and at the MC
//     (DFlexL2, with conventional line-granularity DRAM: dropped words
//     are the Excess waste of Figure 5.3c), L2 response bypass (DBypL2)
//     and Bloom-filter-guarded L2 request bypass (DBypFull, §4.4).
//
// Like internal/mesi, the package is a state machine plus a message
// vocabulary over the internal/coher substrate, which owns transport,
// dispatch, the pending-transaction tables, the write-combining table
// bookkeeping and the drain gates.
package denovo

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coher"
	"repro/internal/dram"
	"repro/internal/memsys"
)

// Options compose the protocol variants of §3.2. The fields are the
// orthogonal optimization knobs the registry in internal/core exposes as
// composable option tokens.
type Options struct {
	Name       string
	FlexL1     bool // Flex for on-chip responses
	ValidateL2 bool // L2 write-validate + dirty-words-only L2->Mem WB
	MemToL1    bool // MC sends data to L1 and L2 in parallel
	FlexL2     bool // Flex applied at the memory controller
	BypassResp bool // L2 response bypass for annotated regions
	BypassReq  bool // L2 request bypass (Bloom filters)

	// PredictBypass replaces the software bypass annotations with a
	// hardware counter-based reuse predictor at each L2 slice — the
	// hardware-only alternative the paper's related-work section names as
	// follow-up study (see predictor.go). Extension beyond the paper's
	// nine configurations.
	PredictBypass bool
}

// Variants returns the paper's DeNovo configurations in figure order.
func Variants() []Options {
	return []Options{
		{Name: "DeNovo"},
		{Name: "DFlexL1", FlexL1: true},
		{Name: "DValidateL2", ValidateL2: true},
		{Name: "DMemL1", ValidateL2: true, MemToL1: true},
		{Name: "DFlexL2", ValidateL2: true, MemToL1: true, FlexL1: true, FlexL2: true},
		{Name: "DBypL2", ValidateL2: true, MemToL1: true, FlexL1: true, FlexL2: true, BypassResp: true},
		{Name: "DBypFull", ValidateL2: true, MemToL1: true, FlexL1: true, FlexL2: true, BypassResp: true, BypassReq: true},
	}
}

// ExtensionVariants returns configurations beyond the paper's set:
// DBypHW swaps the software bypass annotations of DBypL2 for the
// hardware reuse predictor.
func ExtensionVariants() []Options {
	return []Options{
		{Name: "DBypHW", ValidateL2: true, MemToL1: true, FlexL1: true, FlexL2: true,
			PredictBypass: true},
	}
}

// VariantByName returns the named configuration (paper set first, then
// extensions) and whether it exists.
func VariantByName(name string) (Options, bool) {
	for _, v := range Variants() {
		if v.Name == name {
			return v, true
		}
	}
	for _, v := range ExtensionVariants() {
		if v.Name == name {
			return v, true
		}
	}
	return Options{}, false
}

// System is a complete DeNovo memory system over the coher substrate.
type System struct {
	coher.Substrate
	opt Options
	l1s []*l1Cache
	l2s []*l2Slice
}

// New builds the protocol engine and registers its tiles on the mesh.
func New(env *memsys.Env, opt Options) *System {
	if opt.Name == "" {
		opt.Name = "DeNovo"
	}
	s := &System{Substrate: coher.NewSubstrate(env), opt: opt}
	n := env.Cfg.Tiles
	s.l1s = make([]*l1Cache, n)
	s.l2s = make([]*l2Slice, n)
	for t := 0; t < n; t++ {
		s.l1s[t] = newL1(s, t)
		s.l2s[t] = newL2(s, t)
	}
	coher.RegisterTiles(env, s)
	return s
}

// Name implements memsys.Protocol.
func (s *System) Name() string { return s.opt.Name }

// Load implements memsys.Protocol.
func (s *System) Load(core int, addr uint32, done func(uint32, memsys.Sample)) {
	s.l1s[core].load(addr, done)
}

// Store implements memsys.Protocol. DeNovo stores are write-validate:
// they complete locally and never stall the core (§3.1).
func (s *System) Store(core int, addr uint32, val uint32) bool {
	s.l1s[core].store(addr, val)
	return true
}

// SetStoreUnstall implements memsys.Protocol (unused: stores never stall).
func (s *System) SetStoreUnstall(core int, fn func()) {}

// Drain implements memsys.Protocol: flush the write-combining table and
// wait for all registrations and writebacks to be acknowledged.
func (s *System) Drain(core int, done func()) { s.l1s[core].drain(done) }

// AtBarrier implements memsys.Protocol: self-invalidate the regions
// written during the finished phase in every L1 and clear the L1 Bloom
// filter copies (§2, §4.4).
func (s *System) AtBarrier(written []uint8) {
	for _, l1 := range s.l1s {
		l1.selfInvalidate(written)
		if s.opt.BypassReq {
			l1.blooms.ClearAll()
		}
	}
}

// l2HasWord implements the Figure 4.3 "address present in L2?" check.
func (s *System) l2HasWord(addr uint32) bool {
	line := memsys.LineOf(addr)
	sl := s.l2s[s.Env.Cfg.HomeTile(line)]
	ln := sl.c.Lookup(line)
	if ln == nil {
		return false
	}
	return ln.WState[memsys.WordIndex(addr)]&l2StateMask == l2Valid
}

// msgMemWBPartial writes a set of dirty words back to DRAM. With
// ValidateL2 only the dirty words travel (partial DRAM writes, §3.1);
// the baseline writes the full line.
type msgMemWBPartial struct {
	line uint32
	mask uint16
	vals [lineWords]uint32
}

// rowOf returns the DRAM row identifier of a line (for the L2 Flex
// same-row constraint, §3.1).
func (s *System) rowOf(line uint32) uint32 {
	return (line << memsys.LineShift) / s.Env.Cfg.DRAM.RowBytes
}

// handleMemRead services a fetch at an MC tile. It may read several lines
// from DRAM (Flex prefetch within one row), filters dirty on-chip words,
// applies the Flex communication region (dropping unsent words as Excess),
// and responds to the L1 and/or the home L2.
func (s *System) handleMemRead(tile int, m *dvnMemRead) {
	env := s.Env
	ch := env.Chans[env.Cfg.Channel(m.critLine)]
	tAtMC := env.K.Now()

	// Decide which lines to fetch: always the critical line; with Flex at
	// the MC, also other lines holding wanted words if they share the
	// critical line's DRAM row (row activation is expensive, §3.1).
	lines := []uint32{m.critLine}
	if m.flex {
		critRow := s.rowOf(m.critLine)
		seen := map[uint32]bool{m.critLine: true}
		for _, w := range m.wants {
			ln := memsys.LineOf(w)
			if !seen[ln] && s.rowOf(ln) == critRow {
				seen[ln] = true
				lines = append(lines, ln)
			}
		}
	}
	// Deny wanted words on lines we will not fetch.
	var denied []uint32
	fetched := map[uint32]bool{}
	for _, ln := range lines {
		fetched[ln] = true
	}
	for _, w := range m.wants {
		if !fetched[memsys.LineOf(w)] {
			denied = append(denied, w)
		}
	}

	wantSet := map[uint32]bool{}
	for _, w := range m.wants {
		wantSet[w] = true
	}

	env.K.After(env.Cfg.MCLatency, func() {
		remaining := len(lines)
		var finish int64
		for _, ln := range lines {
			ln := ln
			ch.Submit(&dram.Request{Addr: ln << memsys.LineShift, Done: func(f int64) {
				if f > finish {
					finish = f
				}
				remaining--
				if remaining == 0 {
					s.memReadDone(tile, m, lines, wantSet, denied, tAtMC, finish)
				}
			}})
		}
	})
}

// memReadDone assembles and sends the responses once DRAM delivers.
func (s *System) memReadDone(tile int, m *dvnMemRead, lines []uint32, wantSet map[uint32]bool, denied []uint32, tAtMC, tDram int64) {
	env := s.Env
	var words []uint32
	var vals []uint32
	var minsts []uint64
	var fillOrder []*dvnL2Fill

	for _, ln := range lines {
		var fill *dvnL2Fill
		if m.fillL2 {
			fill = &dvnL2Fill{line: ln, class: m.class, tAtMC: tAtMC, tDram: tDram}
			fillOrder = append(fillOrder, fill)
		}
		for w := 0; w < lineWords; w++ {
			a := memsys.AddrOf(ln, w)
			if ln == m.critLine && m.noReturn&(1<<w) != 0 {
				continue // dirty on-chip: memory's copy is stale
			}
			sendL1 := wantSet[a] && m.direct
			sendL2 := fill != nil && (!m.flex || wantSet[a])
			if !sendL1 && !sendL2 {
				if m.flex {
					env.Prof.MemExcess(a) // fetched from DRAM, dropped here
				}
				continue
			}
			mi := env.Prof.MemFetch(a, s.l2HasWord(a))
			if sendL1 {
				words = append(words, a)
				vals = append(vals, env.MemRead(a))
				minsts = append(minsts, mi)
			}
			if sendL2 {
				fill.mask |= 1 << w
				fill.vals[w] = env.MemRead(a)
				fill.minsts[w] = mi
			}
		}
	}

	if m.direct {
		hops := s.CtlHops(m.class, memsys.BRespCtl, tile, m.requestor)
		s.SendData(tile, m.requestor, len(words), &dvnData{
			key: m.key, words: words, vals: vals, minsts: minsts,
			fromMem: true, tAtMC: tAtMC, tDram: tDram, hops: hops,
		})
		if len(denied) > 0 {
			env.Traffic.Ctl(m.class, memsys.BRespCtl, 1, hops)
			s.Send(tile, m.requestor, 1, &dvnDeny{key: m.key, words: denied})
		}
	}
	for _, fill := range fillOrder {
		// Even an empty fill must be delivered: the home slice's fetch
		// entry pins the line until the fill lands.
		hops := s.CtlHops(m.class, memsys.BRespCtl, tile, m.home)
		fill.hops = hops
		s.SendData(tile, m.home, coher.Popcount16(fill.mask), fill)
	}
}

// handleMemWB commits dirty words to DRAM.
func (s *System) handleMemWB(tile int, m *msgMemWBPartial) {
	env := s.Env
	ch := env.Chans[env.Cfg.Channel(m.line)]
	env.K.After(env.Cfg.MCLatency, func() {
		for w := 0; w < lineWords; w++ {
			if m.mask&(1<<w) != 0 {
				env.MemWrite(memsys.AddrOf(m.line, w), m.vals[w])
			}
		}
		ch.Submit(&dram.Request{Addr: m.line << memsys.LineShift, Write: true})
	})
}

// CheckInvariants verifies protocol sanity at quiescence: every word
// registered at an L2 is registered at exactly the recorded owner, no
// in-flight transactions remain, and write-combining tables are empty.
func (s *System) CheckInvariants() error {
	for t, l1 := range s.l1s {
		if l1.mshrs.Len() != 0 {
			return fmt.Errorf("denovo: tile %d has %d leftover MSHRs", t, l1.mshrs.Len())
		}
		if l1.wc.Len() != 0 {
			return fmt.Errorf("denovo: tile %d has %d leftover WC entries", t, l1.wc.Len())
		}
		if l1.pendingRegs != 0 {
			return fmt.Errorf("denovo: tile %d has %d unacked registrations", t, l1.pendingRegs)
		}
		if l1.wbBuf.Len() != 0 {
			return fmt.Errorf("denovo: tile %d has %d leftover victim buffers", t, l1.wbBuf.Len())
		}
	}
	var err error
	for t, sl := range s.l2s {
		if len(sl.busyEvict) != 0 {
			return fmt.Errorf("denovo: slice %d has %d leftover evictions", t, len(sl.busyEvict))
		}
		_ = t
	}
	// Registration consistency.
	for _, sl := range s.l2s {
		sl.c.ForEach(func(ln *cache.Line) {
			if err != nil {
				return
			}
			for w := 0; w < lineWords; w++ {
				if ln.WState[w]&l2StateMask != l2Registered {
					continue
				}
				owner := int(ln.Owner[w])
				ol := s.l1s[owner].c.Lookup(ln.Tag)
				if ol == nil || ol.WState[w] != wRegistered {
					err = fmt.Errorf("denovo: word %#x registered to %d who does not hold it",
						memsys.AddrOf(ln.Tag, w), owner)
					return
				}
			}
		})
	}
	return err
}
