package denovo

import "testing"

func TestPredictorTrainsTowardBypass(t *testing.T) {
	p := newBypassPredictor()
	line := uint32(0x40)
	if p.shouldBypass(line) {
		t.Fatal("cold predictor must not bypass")
	}
	p.train(line, false) // dead once
	if p.shouldBypass(line) {
		t.Fatal("one dead eviction must not saturate")
	}
	p.train(line, false)
	if !p.shouldBypass(line) {
		t.Fatal("two dead evictions should predict bypass")
	}
	// Reuse pulls it back below the threshold.
	p.train(line, true)
	if p.shouldBypass(line) {
		t.Fatal("reuse training did not recover the line")
	}
}

func TestPredictorSaturation(t *testing.T) {
	p := newBypassPredictor()
	line := uint32(0x80)
	for i := 0; i < 100; i++ {
		p.train(line, false)
	}
	// Saturated at max: two reuse trainings must be enough to drop below
	// the threshold from max=3 -> 1.
	p.train(line, true)
	p.train(line, true)
	if p.shouldBypass(line) {
		t.Fatal("counter did not saturate at max")
	}
}

func TestPredictorTelemetry(t *testing.T) {
	p := newBypassPredictor()
	p.train(1, false)
	p.train(1, false)
	p.shouldBypass(1)
	if p.Trained != 2 || p.Bypassed != 1 {
		t.Fatalf("telemetry = %d/%d", p.Trained, p.Bypassed)
	}
}
