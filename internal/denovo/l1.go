package denovo

import (
	"fmt"

	"repro/internal/bloom"
	"repro/internal/cache"
	"repro/internal/coher"
	"repro/internal/memsys"
)

// loadWaiter is a blocked core load waiting for one word.
type loadWaiter struct {
	addr uint32
	done func(uint32, memsys.Sample)
}

// mshr tracks one outstanding load request group, keyed by the critical
// line. Under Flex the wanted set may span lines.
type mshr struct {
	key     uint32
	wanted  map[uint32]bool
	waiters []loadWaiter
	tIssue  int64
}

// wbEntry is a victim-buffer entry: registered words in flight to the L2,
// able to service forwarded reads and recalls until acknowledged. A line
// can be refetched, re-written and evicted again before the first ack
// returns, so entries count outstanding writebacks and merge values
// (mesh delivery is FIFO per source/destination pair, so the L2 applies
// the writebacks in send order).
type wbEntry struct {
	line    uint32
	mask    uint16
	vals    [lineWords]uint32
	pending int
}

type l1Cache struct {
	sys  *System
	tile int
	c    *cache.Cache

	mshrs coher.Table[mshr]
	wc    coher.WriteCombiner
	wbBuf coher.Table[wbEntry]

	pendingRegs int
	drainGate   coher.DrainGate

	blooms    *bloom.L1Bank
	bloomWait map[int][]func() // key: slice*4096+filterIdx
}

func newL1(s *System, tile int) *l1Cache {
	cfg := s.Env.Cfg
	l := &l1Cache{
		sys:   s,
		tile:  tile,
		c:     cache.New(cfg.L1Bytes, cfg.L1Assoc, memsys.LineBytes),
		mshrs: coher.NewTable[mshr](),
		wc:    coher.NewWriteCombiner(),
		wbBuf: coher.NewTable[wbEntry](),
	}
	if s.opt.BypassReq {
		l.blooms = bloom.NewL1Bank(cfg.Bloom)
		l.bloomWait = make(map[int][]func())
	}
	return l
}

func (l *l1Cache) env() *memsys.Env { return l.sys.Env }

// --- loads ---

func (l *l1Cache) load(addr uint32, done func(uint32, memsys.Sample)) {
	env := l.env()
	env.K.After(env.Cfg.L1Latency, func() { l.loadAttempt(addr, env.K.Now(), done) })
}

func (l *l1Cache) loadAttempt(addr uint32, tIssue int64, done func(uint32, memsys.Sample)) {
	env := l.env()
	line, w := memsys.LineOf(addr), memsys.WordIndex(addr)
	if ln := l.c.Lookup(line); ln != nil && ln.WState[w] != wInvalid {
		l.c.Touch(ln)
		env.Prof.L1Load(ln.Inst[w])
		env.Prof.MemLoad(ln.MInst[w])
		done(ln.Data[w], memsys.Sample{Point: memsys.PointL1})
		return
	}
	if l.wbBuf.Has(line) {
		l.sys.RetryAfter(func() { l.loadAttempt(addr, tIssue, done) })
		return
	}
	if m := l.mshrs.Get(line); m != nil {
		m.waiters = append(m.waiters, loadWaiter{addr, done})
		if !m.wanted[addr] {
			// The in-flight request did not cover this word; ask again.
			m.wanted[addr] = true
			l.sendLoadReq(m, []uint32{addr}, nil)
		}
		return
	}
	m := &mshr{key: line, wanted: map[uint32]bool{}, tIssue: tIssue}
	m.waiters = append(m.waiters, loadWaiter{addr, done})
	l.mshrs.Put(line, m)

	region := env.Regions.ByAddr(addr)
	flex := l.sys.opt.FlexL1 && region != nil && region.InComm(addr)
	var wants []uint32
	if flex {
		for _, wa := range region.CommWords(addr) {
			if len(wants) >= env.Cfg.MaxDataWords() {
				break
			}
			if ln := l.c.Lookup(memsys.LineOf(wa)); ln != nil && ln.WState[memsys.WordIndex(wa)] != wInvalid {
				continue // already cached
			}
			wants = append(wants, wa)
		}
	} else {
		ln := l.c.Lookup(line)
		for i := 0; i < lineWords; i++ {
			if ln != nil && ln.WState[i] != wInvalid {
				continue
			}
			wants = append(wants, memsys.AddrOf(line, i))
		}
	}
	// The critical word is always requested.
	if !coher.ContainsU32(wants, memsys.WordAddr(addr)) {
		wants = append(wants, memsys.WordAddr(addr))
	}
	for _, wa := range wants {
		m.wanted[wa] = true
	}

	bypass := l.sys.opt.BypassResp && region != nil && region.Bypass
	if bypass && l.sys.opt.BypassReq {
		l.tryRequestBypass(m, addr, wants, flex)
		return
	}
	l.sendLoadReq(m, wants, &reqMeta{crit: addr, bypass: bypass, flex: flex})
}

// reqMeta carries per-request attributes for sendLoadReq.
type reqMeta struct {
	crit   uint32
	bypass bool
	flex   bool
}

func (l *l1Cache) sendLoadReq(m *mshr, wants []uint32, meta *reqMeta) {
	home := l.env().Cfg.HomeTile(m.key)
	req := &dvnLoadReq{key: m.key, from: l.tile, wants: wants, tIssue: m.tIssue}
	if meta != nil {
		req.crit, req.bypass, req.flex = meta.crit, meta.bypass, meta.flex
	} else {
		req.crit = wants[0]
	}
	l.sys.SendCtl(memsys.ClassLD, memsys.BReqCtl, l.tile, home, req)
}

// tryRequestBypass consults the L1 Bloom filter copies (§4.4): when the
// critical line definitely has no dirty words on-chip, the request goes
// straight to the memory controller, skipping the L2.
func (l *l1Cache) tryRequestBypass(m *mshr, crit uint32, wants []uint32, flex bool) {
	env := l.env()
	home := env.Cfg.HomeTile(m.key)
	valid, may := l.blooms.Query(home, m.key)
	if !valid {
		l.fetchBloomCopy(home, m.key, func() { l.tryRequestBypass(m, crit, wants, flex) })
		return
	}
	if may {
		// Possibly dirty on-chip: take the normal path through the L2.
		l.sendLoadReq(m, wants, &reqMeta{crit: crit, bypass: true, flex: flex})
		return
	}
	mc := env.Cfg.MCTile(m.key)
	l.sys.SendCtl(memsys.ClassLD, memsys.BReqCtl, l.tile, mc, &dvnMemRead{
		key: m.key, critLine: m.key, wants: wants,
		home: home, requestor: l.tile,
		direct: true, fillL2: false, flex: flex && l.sys.opt.FlexL2,
		class: memsys.ClassLD, tIssue: m.tIssue,
	})
}

// fetchBloomCopy requests one filter snapshot from the home slice on
// demand, coalescing concurrent waiters (§4.4).
func (l *l1Cache) fetchBloomCopy(slice int, line uint32, cont func()) {
	idx := l.blooms.FilterIndex(line)
	key := slice*4096 + idx
	l.bloomWait[key] = append(l.bloomWait[key], cont)
	if len(l.bloomWait[key]) > 1 {
		return // request already in flight
	}
	l.sys.SendCtl(memsys.ClassOVH, memsys.BOvhBloom, l.tile, slice, &dvnBloomReq{idx: idx, from: l.tile})
}

func (l *l1Cache) handleBloomResp(m *dvnBloomResp) {
	l.blooms.LoadCopy(m.slice, m.idx, m.snap)
	key := m.slice*4096 + m.idx
	waiters := l.bloomWait[key]
	delete(l.bloomWait, key)
	for _, cont := range waiters {
		cont()
	}
}

// --- stores (write-validate, §3.1) ---

func (l *l1Cache) store(addr, val uint32) {
	env := l.env()
	line, w := memsys.LineOf(addr), memsys.WordIndex(addr)
	ln := l.c.Lookup(line)
	if ln == nil {
		// Write-validate: allocate without fetching.
		l.evictFor(line)
		ln = l.c.Allocate(line)
	}
	env.Prof.L1Store(ln.Inst[w])
	env.Prof.MemStore(addr)
	if ln.MInst[w] != 0 {
		env.Prof.MemRelease(ln.MInst[w], false)
		ln.MInst[w] = 0
	}
	ln.Data[w] = val
	if ln.WState[w] != wRegistered {
		ln.WState[w] = wRegistered
		l.wcAdd(line, w)
	}
	l.c.Touch(ln)
}

// wcAdd batches a registration request in the write-combining table.
func (l *l1Cache) wcAdd(line uint32, w int) {
	env := l.env()
	e := l.wc.Get(line)
	if e == nil {
		if l.wc.Len() >= env.Cfg.WriteCombineEntries {
			l.flushOldestWC()
		}
		e = l.wc.Add(line, env.K.Now())
		entry := e
		env.K.After(env.Cfg.WriteCombineTimeout, func() {
			if l.wc.Get(line) == entry {
				l.flushWC(entry)
			}
		})
	}
	e.Mask |= 1 << w
	if e.Mask == 0xffff {
		l.flushWC(e) // the entire line has been written
	}
}

func (l *l1Cache) flushOldestWC() {
	if oldest := l.wc.Oldest(); oldest != nil {
		l.flushWC(oldest)
	}
}

func (l *l1Cache) flushWC(e *coher.WCEntry) {
	l.wc.Remove(e.Line)
	l.pendingRegs++
	home := l.env().Cfg.HomeTile(e.Line)
	l.sys.SendCtl(memsys.ClassST, memsys.BReqCtl, l.tile, home,
		&dvnRegister{line: e.Line, from: l.tile, mask: e.Mask})
}

func (l *l1Cache) handleRegAck(m *dvnRegAck) {
	l.pendingRegs--
	l.drainGate.TryFire(l.drained())
}

// --- responses ---

func (l *l1Cache) handleData(m *dvnData) {
	env := l.env()
	ms := l.mshrs.Get(m.key)
	insts := make([]uint64, 0, len(m.words))
	for i, addr := range m.words {
		line, w := memsys.LineOf(addr), memsys.WordIndex(addr)
		ln := l.c.Lookup(line)
		if ln == nil {
			l.evictFor(line)
			ln = l.c.Allocate(line)
			if r := env.Regions.ByAddr(addr); r != nil {
				ln.Region = r.ID
			}
		}
		present := ln.WState[w] != wInvalid
		id := env.Prof.L1Arrival(addr, present)
		insts = append(insts, id)
		if !present {
			ln.Inst[w] = id
			ln.Data[w] = m.vals[i]
			ln.WState[w] = wValid
			ln.MInst[w] = m.minsts[i]
			env.Prof.MemAddRef(m.minsts[i])
		}
		if ms != nil {
			delete(ms.wanted, addr)
		}
	}
	env.Traffic.Data(memsys.ClassLD, m.hops, insts)
	if ms == nil {
		return // stale response (mshr already satisfied)
	}
	sample := memsys.Sample{Point: memsys.PointOnChip}
	if m.fromMem {
		sample = memsys.Sample{
			Point:  memsys.PointMemory,
			ToMC:   m.tAtMC - ms.tIssue,
			Mem:    m.tDram - m.tAtMC,
			FromMC: env.K.Now() - m.tDram,
		}
	}
	l.completeWaiters(ms, sample)
}

// completeWaiters finishes every waiter whose word is now cached and
// closes the MSHR once the wanted set is empty.
func (l *l1Cache) completeWaiters(ms *mshr, sample memsys.Sample) {
	env := l.env()
	kept := ms.waiters[:0]
	for _, wtr := range ms.waiters {
		line, w := memsys.LineOf(wtr.addr), memsys.WordIndex(wtr.addr)
		ln := l.c.Lookup(line)
		if ln == nil || ln.WState[w] == wInvalid {
			kept = append(kept, wtr)
			continue
		}
		env.Prof.L1Load(ln.Inst[w])
		env.Prof.MemLoad(ln.MInst[w])
		wtr.done(ln.Data[w], sample)
	}
	ms.waiters = kept
	if len(ms.wanted) == 0 {
		if len(ms.waiters) != 0 {
			panic(fmt.Sprintf("denovo: tile %d mshr %#x closed with %d waiters", l.tile, ms.key, len(ms.waiters)))
		}
		l.mshrs.Delete(ms.key)
	}
}

// handleDeny drops flex-prefetch words that will not be delivered. Denied
// words with waiters are re-requested individually.
func (l *l1Cache) handleDeny(m *dvnDeny) {
	ms := l.mshrs.Get(m.key)
	if ms == nil {
		return
	}
	var reissue []uint32
	for _, addr := range m.words {
		if !ms.wanted[addr] {
			continue
		}
		needed := false
		for _, wtr := range ms.waiters {
			if memsys.WordAddr(wtr.addr) == addr {
				needed = true
				break
			}
		}
		if needed {
			reissue = append(reissue, addr)
		} else {
			delete(ms.wanted, addr)
		}
	}
	if len(reissue) > 0 {
		l.sendLoadReq(ms, reissue, &reqMeta{crit: reissue[0]})
	}
	l.completeWaiters(ms, memsys.Sample{Point: memsys.PointOnChip})
}

func (l *l1Cache) handleNack(m *dvnNack) {
	ms := l.mshrs.Get(m.key)
	if ms == nil {
		return
	}
	l.sys.NackBackoff(m.from, l.tile, func() {
		if l.mshrs.Get(m.key) != ms || len(ms.wanted) == 0 {
			return
		}
		wants := make([]uint32, 0, len(ms.wanted))
		for a := range ms.wanted {
			wants = append(wants, a)
		}
		coher.SortU32(wants)
		l.sendLoadReq(ms, wants, &reqMeta{crit: wants[0]})
	})
}

// handleFwdRead serves a forwarded read as the registered owner; the copy
// duplicates (the owner stays registered).
func (l *l1Cache) handleFwdRead(m *dvnFwdRead) {
	words := make([]uint32, 0, len(m.words))
	vals := make([]uint32, 0, len(m.words))
	minsts := make([]uint64, 0, len(m.words))
	for _, addr := range m.words {
		line, w := memsys.LineOf(addr), memsys.WordIndex(addr)
		if ln := l.c.Lookup(line); ln != nil && ln.WState[w] == wRegistered {
			words = append(words, addr)
			vals = append(vals, ln.Data[w])
			minsts = append(minsts, 0)
			continue
		}
		if wb := l.wbBuf.Get(line); wb != nil && wb.mask&(1<<w) != 0 {
			words = append(words, addr)
			vals = append(vals, wb.vals[w])
			minsts = append(minsts, 0)
			continue
		}
		panic(fmt.Sprintf("denovo: tile %d forwarded for word %#x it does not own", l.tile, addr))
	}
	hops := l.sys.CtlHops(memsys.ClassLD, memsys.BRespCtl, l.tile, m.requestor)
	l.sys.SendData(l.tile, m.requestor, len(words), &dvnData{
		key: m.key, words: words, vals: vals, minsts: minsts, hops: hops,
	})
}

// handleInvalWord drops copies superseded by a new registrant.
func (l *l1Cache) handleInvalWord(m *dvnInvalWord) {
	env := l.env()
	for _, addr := range m.words {
		line, w := memsys.LineOf(addr), memsys.WordIndex(addr)
		ln := l.c.Lookup(line)
		if ln == nil || ln.WState[w] == wInvalid {
			continue
		}
		env.Prof.L1Invalidate(ln.Inst[w])
		if ln.MInst[w] != 0 {
			env.Prof.MemRelease(ln.MInst[w], true)
			ln.MInst[w] = 0
		}
		ln.WState[w] = wInvalid
	}
}

// handleRecall surrenders registered words for an L2 eviction.
func (l *l1Cache) handleRecall(m *dvnRecall) {
	env := l.env()
	resp := &dvnRecallResp{line: m.line, from: l.tile}
	ln := l.c.Lookup(m.line)
	for w := 0; w < lineWords; w++ {
		if m.mask&(1<<w) == 0 {
			continue
		}
		if ln != nil && ln.WState[w] == wRegistered {
			resp.mask |= 1 << w
			resp.vals[w] = ln.Data[w]
			env.Prof.L1Invalidate(ln.Inst[w])
			ln.WState[w] = wInvalid
			continue
		}
		if wb := l.wbBuf.Get(m.line); wb != nil && wb.mask&(1<<w) != 0 {
			resp.mask |= 1 << w
			resp.vals[w] = wb.vals[w]
		}
	}
	home := env.Cfg.HomeTile(m.line)
	dirty := coher.Popcount16(resp.mask)
	hops := l.sys.CtlHops(memsys.ClassWB, memsys.BWBCtl, l.tile, home)
	env.Traffic.WBData(false, hops, dirty, 0)
	l.sys.SendData(l.tile, home, dirty, resp)
}

func (l *l1Cache) handleWBAck(m *dvnWBAck) {
	if wb := l.wbBuf.Get(m.line); wb != nil {
		wb.pending--
		if wb.pending <= 0 {
			l.wbBuf.Delete(m.line)
		}
	}
	l.drainGate.TryFire(l.drained())
}

// --- eviction ---

// evictFor frees the victim way for a fill or store allocation. Valid
// words drop silently (no sharer lists); registered words and pending
// registrations leave through a combined writeback+register message.
func (l *l1Cache) evictFor(line uint32) {
	env := l.env()
	victim := l.c.Victim(line)
	if !victim.Valid {
		return
	}
	vline := victim.Tag
	var regMask uint16
	var vals [lineWords]uint32
	for w := 0; w < lineWords; w++ {
		if victim.WState[w] == wRegistered {
			regMask |= 1 << w
			vals[w] = victim.Data[w]
		}
	}
	coher.ReleaseL1Line(env, victim, true, false)
	// Pending registrations ride along with the writeback.
	l.wc.Remove(vline)
	l.c.Remove(victim)
	if regMask == 0 {
		return
	}
	if old := l.wbBuf.Get(vline); old != nil {
		for w := 0; w < lineWords; w++ {
			if regMask&(1<<w) != 0 {
				old.vals[w] = vals[w]
			}
		}
		old.mask |= regMask
		old.pending++
	} else {
		l.wbBuf.Put(vline, &wbEntry{line: vline, mask: regMask, vals: vals, pending: 1})
	}
	home := env.Cfg.HomeTile(vline)
	dirty := coher.Popcount16(regMask)
	hops := l.sys.CtlHops(memsys.ClassWB, memsys.BWBCtl, l.tile, home)
	env.Traffic.WBData(false, hops, dirty, 0)
	if l.sys.opt.BypassReq {
		l.blooms.InsertLocal(home, vline)
	}
	l.sys.SendData(l.tile, home, dirty, &dvnWB{
		line: vline, from: l.tile, mask: regMask, vals: vals,
	})
}

// --- barriers ---

func (l *l1Cache) drain(done func()) {
	// Flush every pending registration (release semantics, §4.2), in
	// deterministic line order.
	for _, line := range l.wc.SortedLines() {
		if e := l.wc.Get(line); e != nil {
			l.flushWC(e)
		}
	}
	l.drainGate.Arm(done)
	l.drainGate.TryFire(l.drained())
}

func (l *l1Cache) drained() bool {
	return l.wc.Len() == 0 && l.pendingRegs == 0 && l.wbBuf.Len() == 0
}

// selfInvalidate drops non-registered words of the regions written during
// the finished phase (§2).
func (l *l1Cache) selfInvalidate(written []uint8) {
	if len(written) == 0 {
		return
	}
	env := l.env()
	set := map[uint8]bool{}
	for _, id := range written {
		set[id] = true
	}
	l.c.ForEach(func(ln *cache.Line) {
		r := env.Regions.ByAddr(ln.Tag << memsys.LineShift)
		if r == nil || !set[r.ID] {
			return
		}
		for w := 0; w < lineWords; w++ {
			if ln.WState[w] != wValid {
				continue
			}
			env.Prof.L1Invalidate(ln.Inst[w])
			if ln.MInst[w] != 0 {
				env.Prof.MemRelease(ln.MInst[w], true)
				ln.MInst[w] = 0
			}
			ln.WState[w] = wInvalid
		}
	})
}
