package mesh

import (
	"testing"

	"repro/internal/sim"
)

func newRouterTest(t *testing.T, router, topo string, w, h int) (*sim.Kernel, *Mesh, *int) {
	t.Helper()
	k := &sim.Kernel{}
	m := New(k, Config{Width: w, Height: h, Topology: topo, Router: router,
		LinkLatency: 3, LocalLatency: 1})
	delivered := new(int)
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) { *delivered++ })
	}
	return k, m, delivered
}

func TestRouterRegistry(t *testing.T) {
	for _, kind := range RouterKinds() {
		if err := ValidRouter(kind); err != nil {
			t.Errorf("registered router %q rejected: %v", kind, err)
		}
		if desc, err := RouterDescription(kind); err != nil || desc == "" {
			t.Errorf("registered router %q has no description (err %v)", kind, err)
		}
		k := &sim.Kernel{}
		m := New(k, Config{Width: 2, Height: 2, Router: kind, LinkLatency: 1})
		if m.Router() != kind {
			t.Errorf("router %q reports kind %q", kind, m.Router())
		}
	}
	if err := ValidRouter(""); err != nil {
		t.Errorf("empty router rejected: %v", err)
	}
	if desc, err := RouterDescription(""); err != nil || desc == "" {
		t.Errorf("default router description missing (err %v)", err)
	}
	if err := ValidRouter("bufferless"); err == nil {
		t.Error("unknown router accepted")
	}
	// Regression: an unregistered kind used to describe itself as "",
	// which printed an empty inventory row instead of failing.
	if desc, err := RouterDescription("bufferless"); err == nil {
		t.Errorf("unknown router described as %q; want a loud error", desc)
	}
	defer func() {
		if recover() == nil {
			t.Error("New did not panic on unknown router")
		}
	}()
	New(&sim.Kernel{}, Config{Width: 2, Height: 2, Router: "bufferless"})
}

// A single flit through an idle vc network pays exactly one allocation
// cycle at injection plus LinkLatency per hop: hops*L + 1, one cycle more
// than the ideal router's hops*L.
// Regression for the silent dateline imbalance: an odd VC count used to
// be accepted and split unevenly between the two dateline classes. The vc
// router now refuses to construct (user input is validated earlier by
// memsys.Config.Validate; reaching New with a bad count is a bug).
func TestVCOddCountPanics(t *testing.T) {
	for _, vcs := range []int{1, 3, 5, -2} {
		vcs := vcs
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("VCs=%d accepted; want panic on the uneven dateline split", vcs)
				}
			}()
			New(&sim.Kernel{}, Config{Width: 2, Height: 2, Router: "vc", VCs: vcs, LinkLatency: 1})
		}()
	}
	// Even counts and the zero default still construct.
	for _, vcs := range []int{0, 2, 6} {
		New(&sim.Kernel{}, Config{Width: 2, Height: 2, Router: "vc", VCs: vcs, LinkLatency: 1})
	}
}

func TestVCUncontendedSingleFlitLatency(t *testing.T) {
	k, m, delivered := newRouterTest(t, "vc", "mesh", 4, 4)
	m.Send(0, 15, 1, nil) // 6 hops
	k.Run()
	if *delivered != 1 {
		t.Fatal("not delivered")
	}
	if got := m.Stats().LatencyMax; got != 6*3+1 {
		t.Fatalf("vc 1-flit latency = %d, want 19", got)
	}
}

// Multi-flit packets pipeline one flit per cycle behind the header:
// hops*L + flits, again exactly one cycle over the ideal formula.
func TestVCUncontendedMultiFlitLatency(t *testing.T) {
	k, m, _ := newRouterTest(t, "vc", "mesh", 4, 4)
	m.Send(0, 2, 4, "a") // 2 hops, 4 flits (= VCDepth, so no credit stall)
	k.Run()
	if got := m.Stats().LatencyMax; got != 2*3+4 {
		t.Fatalf("vc 4-flit 2-hop latency = %d, want 10", got)
	}
}

// The vc router is deterministic: identical injection sequences yield
// identical delivery times, latencies and telemetry on every topology.
func TestVCSendDeterministicPerTopology(t *testing.T) {
	for _, kind := range TopologyKinds() {
		run := func() (int64, NetStats) {
			k, m, _ := newRouterTest(t, "vc", kind, 4, 4)
			for i := 0; i < 40; i++ {
				m.Send(i%16, (i*7+3)%16, 1+i%5, nil)
			}
			k.Run()
			return k.Now(), m.Stats()
		}
		t1, s1 := run()
		t2, s2 := run()
		if t1 != t2 || s1 != s2 {
			t.Fatalf("%s: nondeterministic vc delivery: %d/%d %+v %+v", kind, t1, t2, s1, s2)
		}
	}
}

// All-to-all traffic drains on every topology: the dateline VC classes
// break the ring/torus wraparound dependency cycles, so the credit-based
// router cannot deadlock. RunLimit bounds the test against livelock.
func TestVCAllToAllDrainsEveryTopology(t *testing.T) {
	for _, kind := range TopologyKinds() {
		k, m, delivered := newRouterTest(t, "vc", kind, 4, 4)
		want := 0
		for s := 0; s < 16; s++ {
			for d := 0; d < 16; d++ {
				if s == d {
					continue
				}
				m.Send(s, d, 5, nil)
				want++
			}
		}
		if steps := k.RunLimit(5_000_000); steps == 5_000_000 {
			t.Fatalf("%s: vc network livelocked", kind)
		}
		if *delivered != want {
			t.Fatalf("%s: delivered %d of %d packets (deadlock)", kind, *delivered, want)
		}
	}
}

// hotspotMeanLatency drives the acceptance scenario: every tile repeatedly
// fires packets at tile 0 and the mean delivery latency is measured.
func hotspotMeanLatency(t *testing.T, router string) float64 {
	t.Helper()
	k, m, delivered := newRouterTest(t, router, "mesh", 4, 4)
	want := 0
	for round := 0; round < 8; round++ {
		for src := 1; src < 16; src++ {
			m.Send(src, 0, 5, nil)
			want++
		}
	}
	k.Run()
	if *delivered != want {
		t.Fatalf("%s: delivered %d of %d", router, *delivered, want)
	}
	s := m.Stats()
	if s.Delivered != uint64(want) || s.LatencyMean <= 0 {
		t.Fatalf("%s: bad stats %+v", router, s)
	}
	return s.LatencyMean
}

// The headline congestion claim: on a hotspot pattern the cycle-level vc
// router reports strictly higher mean packet latency than the ideal
// injection-time reservation on the same topology — buffers, credits and
// allocation stalls are visible instead of hidden.
func TestVCHotspotLatencyExceedsIdeal(t *testing.T) {
	ideal := hotspotMeanLatency(t, "ideal")
	vc := hotspotMeanLatency(t, "vc")
	if !(vc > ideal) {
		t.Fatalf("vc mean latency %.2f not strictly above ideal %.2f", vc, ideal)
	}
}

// Congestion telemetry: the hotspot saturates tile 0's inbound links and
// backs flits up in the VC buffers.
func TestVCStatsTelemetry(t *testing.T) {
	k, m, _ := newRouterTest(t, "vc", "mesh", 4, 4)
	for round := 0; round < 8; round++ {
		for src := 1; src < 16; src++ {
			m.Send(src, 0, 5, nil)
		}
	}
	k.Run()
	s := m.Stats()
	if s.Router != "vc" {
		t.Fatalf("stats router = %q", s.Router)
	}
	if s.PeakVCOccupancy <= 0 || s.PeakVCOccupancy > defaultVCDepth {
		t.Fatalf("peak VC occupancy %d outside (0, %d]", s.PeakVCOccupancy, defaultVCDepth)
	}
	if s.LinkUtilMax <= s.LinkUtilMean || s.LinkUtilMax > 1 {
		t.Fatalf("link utilization mean %.3f max %.3f implausible", s.LinkUtilMean, s.LinkUtilMax)
	}
	var histTotal uint64
	for _, c := range s.LatencyHist {
		histTotal += c
	}
	if histTotal != s.Delivered {
		t.Fatalf("latency histogram counts %d packets, delivered %d", histTotal, s.Delivered)
	}
}

// ResetStats opens a fresh measurement window without touching the
// cumulative packet/flit-hop counters.
func TestResetStatsWindow(t *testing.T) {
	k, m, _ := newRouterTest(t, "ideal", "mesh", 4, 4)
	m.Send(0, 15, 5, nil)
	k.Run()
	if m.Stats().Delivered != 1 {
		t.Fatal("warm-up delivery not counted before reset")
	}
	m.ResetStats()
	if s := m.Stats(); s.Delivered != 0 || s.LatencyMax != 0 || s.LinkUtilMax != 0 {
		t.Fatalf("stats not zeroed: %+v", s)
	}
	m.Send(0, 3, 2, nil)
	k.Run()
	s := m.Stats()
	if s.Delivered != 1 || s.LatencyMax != 3*3+1 {
		t.Fatalf("measured window wrong: %+v", s)
	}
	if m.Packets() != 2 || m.FlitHops() != 30+6 {
		t.Fatalf("cumulative counters disturbed: %d packets, %d flit-hops",
			m.Packets(), m.FlitHops())
	}
}

// Dateline bookkeeping: exactly the wraparound links are flagged, and
// every port maps to a sane axis.
func TestWrapLinkDetection(t *testing.T) {
	for _, kind := range TopologyKinds() {
		topo, _ := NewTopology(kind, 4, 4)
		wraps := 0
		for _, l := range topo.Links() {
			if topo.Wraparound(l.From, l.Port) {
				wraps++
			}
		}
		want := map[string]int{"mesh": 0, "ring": 2, "torus": 16}[kind]
		if wraps != want {
			t.Errorf("%s: %d wraparound links, want %d", kind, wraps, want)
		}
		for p := 0; p < topo.Ports(); p++ {
			if a := topo.PortAxis(p); a < 0 || a > 1 {
				t.Errorf("%s: port %d axis %d out of range", kind, p, a)
			}
		}
	}
}

// The ideal router still matches the historical wormhole formula after the
// refactor (the golden suite pins the full matrices; this pins the fabric).
func TestIdealLatencyUnchanged(t *testing.T) {
	k, m, _ := newRouterTest(t, "ideal", "mesh", 4, 4)
	m.Send(0, 15, 5, nil)
	k.Run()
	if k.Now() != 6*3+4 {
		t.Fatalf("ideal latency = %d, want 22", k.Now())
	}
	if s := m.Stats(); s.LatencyMax != 22 || s.PeakVCOccupancy != 0 {
		t.Fatalf("ideal stats wrong: %+v", s)
	}
}
