package mesh

import (
	"testing"

	"repro/internal/sim"
)

// Router-isolated deflection benches, the siblings of the vc set in
// vc_bench_test.go: drive the fabric directly (no protocol engines, no
// memory system), so ns/op measures the deflection tick loop itself —
// arbitration, deflections and the endpoint reorder path — under the
// same sparse/hotspot/dense shapes the vc benches pin.

func benchDeflSparseFlow(b *testing.B, w, h int) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: w, Height: h, Router: "deflection", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}
	last := m.Tiles() - 1
	// Warm the pools (packet/flit free lists, rings, kernel event slice).
	for i := 0; i < 3; i++ {
		m.Send(0, last, 5, nil)
		k.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(0, last, 5, nil)
		k.Run()
	}
}

func BenchmarkDeflSparseFlow4x4(b *testing.B)   { benchDeflSparseFlow(b, 4, 4) }
func BenchmarkDeflSparseFlow16x16(b *testing.B) { benchDeflSparseFlow(b, 16, 16) }

// BenchmarkDeflSparseHotspot16x16 is the idle-heavy hotspot shape on the
// large fabric: four corner tiles stream multi-flit packets at one
// central hot tile, so a handful of routers carry all the work — plus,
// unlike vc, real contention at the hot tile forces deflections.
func BenchmarkDeflSparseHotspot16x16(b *testing.B) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: 16, Height: 16, Router: "deflection", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}
	hot := 16*8 + 8 // central tile
	burst := func() {
		for _, src := range []int{0, 15, 240, 255} {
			m.Send(src, hot, 5, nil)
		}
	}
	for i := 0; i < 3; i++ {
		burst()
		k.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		burst()
		k.Run()
	}
}

// BenchmarkDeflDense4x4 saturates the paper's 4x4 fabric with crossing
// streams — every router active, heavy deflection traffic, the dense
// regression guard for the arbitration loop.
func BenchmarkDeflDense4x4(b *testing.B) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: 4, Height: 4, Router: "deflection", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}
	burst := func() {
		for t := 0; t < 16; t++ {
			m.Send(t, 15-t, 5, nil)
		}
	}
	for i := 0; i < 3; i++ {
		burst()
		k.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		burst()
		k.Run()
	}
}
