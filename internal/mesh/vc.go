package mesh

// The cycle-level virtual-channel wormhole router (Config.Router = "vc").
//
// Every router has, per incoming link, VCs flit buffers of VCDepth entries
// each, managed with credit-based flow control: a flit may leave upstream
// only while the downstream buffer has a free slot, and the credit returns
// one link latency after the slot frees. Each cycle every router performs,
// in fixed tile/port order:
//
//   - VC allocation: a header flit at the front of an input VC (or the
//     source queue) claims a free downstream VC in its dateline class,
//     round-robin per output port;
//   - switch allocation: each output port (plus the ejection port) accepts
//     at most one flit per cycle, chosen round-robin over the (input port,
//     VC) candidates, and each input port supplies at most one flit per
//     cycle;
//   - link traversal: the winning flit reaches the downstream buffer
//     LinkLatency cycles later.
//
// Determinism: the whole network advances inside a single self-scheduling
// kernel event per cycle ("tick"), which only runs while packets are in
// flight, and every allocation scan uses fixed iteration order plus
// per-port round-robin pointers. Two runs that inject the same packets at
// the same cycles therefore produce identical deliveries.
//
// Deadlock freedom: routing is minimal and dimension-ordered, and the VCs
// are split into two dateline classes — packets start in class 0 and move
// to class 1 for the rest of the dimension after crossing a wraparound
// (dateline) link, so the ring and torus channel-dependency cycles are
// broken exactly as in the classic dateline scheme. Meshes never wrap and
// simply use class 0.

import "fmt"

const (
	defaultVCs     = 2
	defaultVCDepth = 4
)

// vcPkt is one packet traveling the VC network.
type vcPkt struct {
	dst, flits int
	payload    any
	injectAt   int64
}

// hopState tracks a packet streaming through one router stage: an input VC
// or the head of a source (injection) queue.
type hopState struct {
	pkt     *vcPkt
	outPort int // output port at this node; topo.Ports() means ejection
	class   int // dateline VC class held at this node (0 or 1)
	axis    int // axis (port/2) of the hop that reached this node; -1 at source
	downVC  int // VC allocated at the downstream input port; -1 = none yet
	sent    int // flits this stage has forwarded
}

// inVC is one input virtual channel: streaming state plus the buffered
// flits' arrival cycles (a slot is reserved from the moment the upstream
// sends, which is what the credit counter tracks).
type inVC struct {
	hopState
	arrivals []int64
}

type linkEnd struct{ node, port int }

type vcNode struct {
	injQ    []*vcPkt
	inj     hopState
	in      [][]inVC  // [input port][vc]
	ups     []linkEnd // upstream (node, output port) feeding each input port
	downTo  []int     // downstream node per output port; -1 = no link
	downIn  []int     // downstream input-port index per output port
	wrap    []bool    // per output port: wraparound (dateline-crossing) link
	credits [][]int   // [output port][downstream vc]: free buffer slots
	outRR   []int     // switch-allocation round-robin pointer per output port
	vcRR    []int     // VC-allocation round-robin pointer per output port
	usedIn  []bool    // input port already supplied a flit this cycle
	active  int       // packets currently staged at this node
}

type vcRouter struct {
	m        *Mesh
	vcs      int
	depth    int
	eject    int // pseudo output port index = topo.Ports()
	nodes    []vcNode
	inFlight int
	ticking  bool
}

func newVCRouter(m *Mesh) *vcRouter {
	vcs := m.cfg.VCs
	if vcs == 0 {
		vcs = defaultVCs
	}
	// The dateline scheme splits the VCs into two equal classes; an odd
	// count would silently short class 0 (e.g. VCs=3 -> classes of 1 and
	// 2), skewing fairness and the torus deadlock margin. User-facing
	// paths validate via memsys.Config.Validate; reaching here with a bad
	// count is a programmer error, same as an unknown topology in New.
	if vcs < 2 || vcs%2 != 0 {
		panic(fmt.Sprintf("mesh: VCs = %d; the dateline split needs an even count >= 2", m.cfg.VCs))
	}
	depth := m.cfg.VCDepth
	if depth <= 0 {
		depth = defaultVCDepth
	}
	ports := m.topo.Ports()
	r := &vcRouter{m: m, vcs: vcs, depth: depth, eject: ports}
	r.nodes = make([]vcNode, m.topo.Tiles())
	for i := range r.nodes {
		nd := &r.nodes[i]
		nd.downTo = make([]int, ports)
		for p := range nd.downTo {
			nd.downTo[p] = -1
		}
		nd.downIn = make([]int, ports)
		nd.wrap = make([]bool, ports)
		nd.credits = make([][]int, ports)
		nd.outRR = make([]int, ports+1)
		nd.vcRR = make([]int, ports)
		nd.inj.downVC = -1
	}
	for _, l := range m.topo.Links() {
		to := &r.nodes[l.To]
		idx := len(to.in)
		row := make([]inVC, vcs)
		for v := range row {
			row[v].downVC = -1
		}
		to.in = append(to.in, row)
		to.ups = append(to.ups, linkEnd{l.From, l.Port})
		from := &r.nodes[l.From]
		from.downTo[l.Port] = l.To
		from.downIn[l.Port] = idx
		from.wrap[l.Port] = m.topo.Wraparound(l.From, l.Port)
		cr := make([]int, vcs)
		for v := range cr {
			cr[v] = depth
		}
		from.credits[l.Port] = cr
	}
	for i := range r.nodes {
		nd := &r.nodes[i]
		nd.usedIn = make([]bool, len(nd.in)+1)
	}
	return r
}

func (r *vcRouter) kind() string { return "vc" }

func (r *vcRouter) inject(src, dst, flits int, payload any) int {
	pkt := &vcPkt{dst: dst, flits: flits, payload: payload, injectAt: r.m.k.Now()}
	nd := &r.nodes[src]
	nd.injQ = append(nd.injQ, pkt)
	if len(nd.injQ) == 1 {
		r.startInjection(src, nd)
	}
	r.inFlight++
	r.schedule()
	return r.m.topo.Hops(src, dst)
}

// startInjection stages the head of a source queue for switch allocation.
func (r *vcRouter) startInjection(n int, nd *vcNode) {
	s := &nd.inj
	s.pkt = nd.injQ[0]
	s.sent = 0
	s.class = 0
	s.axis = -1
	s.downVC = -1
	s.outPort, _ = r.m.topo.NextPort(n, s.pkt.dst)
	nd.active++
}

func (r *vcRouter) schedule() {
	if r.ticking {
		return
	}
	r.ticking = true
	r.m.k.After(1, r.tick)
}

// tick advances the whole network by one cycle.
func (r *vcRouter) tick() {
	r.ticking = false
	now := r.m.k.Now()
	for i := range r.nodes {
		nd := &r.nodes[i]
		if nd.active == 0 {
			continue
		}
		for j := range nd.usedIn {
			nd.usedIn[j] = false
		}
		for out := 0; out <= r.eject; out++ {
			r.serviceOutput(i, nd, out, now)
		}
	}
	if r.inFlight > 0 {
		r.schedule()
	}
}

// serviceOutput runs VC + switch allocation for one output port: scan the
// (input port, VC) candidates round-robin and forward the first winner.
func (r *vcRouter) serviceOutput(n int, nd *vcNode, out int, now int64) {
	numIn := len(nd.in)
	total := numIn*r.vcs + 1 // +1: the source queue head
	start := nd.outRR[out]
	for k := 1; k <= total; k++ {
		id := (start + k) % total
		var s *hopState
		var buf *inVC
		inPort, vcIdx := numIn, -1 // defaults: the source queue
		if id < numIn*r.vcs {
			inPort, vcIdx = id/r.vcs, id%r.vcs
			buf = &nd.in[inPort][vcIdx]
			s = &buf.hopState
			if len(buf.arrivals) == 0 || buf.arrivals[0] > now {
				continue
			}
		} else {
			s = &nd.inj
		}
		if s.pkt == nil || s.outPort != out || nd.usedIn[inPort] {
			continue
		}
		if out != r.eject {
			if s.downVC < 0 && !r.allocVC(nd, s, out) {
				continue // no free downstream VC for this header
			}
			if nd.credits[out][s.downVC] == 0 {
				continue // downstream buffer full
			}
		}
		r.forward(n, nd, out, inPort, vcIdx, s, buf, now)
		nd.outRR[out] = id
		return
	}
}

// allocVC claims a free downstream input VC in the packet's dateline class
// and stages the packet's streaming state at the downstream node.
func (r *vcRouter) allocVC(nd *vcNode, s *hopState, out int) bool {
	class := s.class
	if r.m.topo.PortAxis(out) != s.axis {
		class = 0 // a new dimension starts a new dateline ring
	}
	if nd.wrap[out] {
		class = 1 // crossing the dateline moves to the upper VC class
	}
	half := r.vcs / 2
	lo, hi := 0, half
	if class == 1 {
		lo, hi = half, r.vcs
	}
	d := nd.downTo[out]
	down := &r.nodes[d]
	width := hi - lo
	start := nd.vcRR[out]
	for k := 0; k < width; k++ {
		w := lo + (start+k)%width
		tgt := &down.in[nd.downIn[out]][w]
		if tgt.pkt != nil {
			continue
		}
		nd.vcRR[out] = (start + k + 1) % width
		s.downVC = w
		tgt.pkt = s.pkt
		tgt.sent = 0
		tgt.class = class
		tgt.axis = r.m.topo.PortAxis(out)
		tgt.downVC = -1
		tgt.arrivals = tgt.arrivals[:0]
		if d == s.pkt.dst {
			tgt.outPort = r.eject
		} else {
			tgt.outPort, _ = r.m.topo.NextPort(d, s.pkt.dst)
		}
		down.active++
		return true
	}
	return false
}

// forward moves one flit out of a stage: onto the link toward the
// downstream buffer, or off the network at the ejection port.
func (r *vcRouter) forward(n int, nd *vcNode, out, inPort, vcIdx int, s *hopState, buf *inVC, now int64) {
	nd.usedIn[inPort] = true
	s.sent++
	tail := s.sent == s.pkt.flits
	if buf != nil {
		// The flit frees a buffer slot; the credit reaches the upstream
		// router one link traversal later.
		buf.arrivals = buf.arrivals[1:]
		up := nd.ups[inPort]
		upNode := &r.nodes[up.node]
		r.m.k.After(r.m.cfg.LinkLatency, func() { upNode.credits[up.port][vcIdx]++ })
	}
	if out == r.eject {
		if tail {
			r.m.complete(n, s.pkt.payload, s.pkt.injectAt, now)
			r.inFlight--
			r.release(n, nd, s)
		}
		return
	}
	tgt := &r.nodes[nd.downTo[out]].in[nd.downIn[out]][s.downVC]
	tgt.arrivals = append(tgt.arrivals, now+r.m.cfg.LinkLatency)
	if occ := len(tgt.arrivals); occ > r.m.peakVC {
		r.m.peakVC = occ
	}
	nd.credits[out][s.downVC]--
	r.m.linkBusy[n][out]++
	if tail {
		r.release(n, nd, s)
	}
}

// release retires a packet's stage at this node once its tail has left,
// freeing the VC (or advancing the source queue) for the next packet.
func (r *vcRouter) release(n int, nd *vcNode, s *hopState) {
	nd.active--
	if s == &nd.inj {
		nd.injQ = nd.injQ[1:]
		s.pkt = nil
		if len(nd.injQ) > 0 {
			r.startInjection(n, nd)
		}
		return
	}
	s.pkt = nil
	s.downVC = -1
}
