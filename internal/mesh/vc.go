package mesh

// The cycle-level virtual-channel wormhole router (Config.Router = "vc").
//
// Every router has, per incoming link, VCs flit buffers of VCDepth entries
// each, managed with credit-based flow control: a flit may leave upstream
// only while the downstream buffer has a free slot, and the credit returns
// one link latency after the slot frees. Each cycle every router performs,
// in fixed tile/port order:
//
//   - VC allocation: a header flit at the front of an input VC (or the
//     source queue) claims a free downstream VC in its dateline class,
//     round-robin per output port;
//   - switch allocation: each output port (plus the ejection port) accepts
//     at most one flit per cycle, chosen round-robin over the (input port,
//     VC) candidates, and each input port supplies at most one flit per
//     cycle;
//   - link traversal: the winning flit reaches the downstream buffer
//     LinkLatency cycles later.
//
// Determinism: the whole network advances inside the kernel's recurring-
// tick slot, one tick per cycle while packets are in flight, and every
// allocation scan uses fixed iteration order plus per-port round-robin
// pointers. Two runs that inject the same packets at the same cycles
// therefore produce identical deliveries.
//
// Idle skip-ahead: a tick that forwards nothing proves the network frozen
// — every staged flit is blocked on a future buffered-flit arrival, a
// pending credit return, or (transitively) another blocked flit — so the
// next tick is armed with Kernel.TickSkipTo at the earliest arrival or
// credit time instead of next cycle. The kernel clamps the jump to its
// next pending event (which may inject new packets, resetting the wake
// horizon via inject), and TickSkipTo's sequence accounting keeps
// equal-timestamp event ordering bit-identical to per-cycle ticking, so
// the optimization is invisible except to the wall clock.
//
// Allocation-free steady state: packets come from a free list, per-VC
// arrival queues are fixed-capacity rings (credits bound occupancy by
// VCDepth), credit returns ride a router-global time-ordered ring drained
// at tick start (every credit takes exactly LinkLatency cycles, so pushes
// are monotone) instead of a kernel closure per flit, and the injection
// queues recycle their backing arrays. A steady-state tick performs zero
// heap allocations; vc_alloc_test.go pins that with testing.AllocsPerRun.
//
// O(active) ticks: a tick visits only the nodes that hold staged packets,
// found through activeMask — a bitmask with bit n set exactly while
// nodes[n].active > 0 (set in startInjection and allocVC when a node
// gains its first stage, cleared in release when its last stage retires).
// Iteration goes word by word via bits.TrailingZeros64, i.e. in the same
// ascending node order as the old full scan, which is what keeps the
// cross-node allocation coupling deterministic (a release at node i frees
// a downstream VC that a later node j > i can claim in the same cycle,
// exactly as before). A bit set mid-tick by allocVC is behavior-neutral
// either way: the newly staged stage has no buffered flits yet (its
// arrival ring is empty until forward pushes with a future timestamp), so
// visiting it or not forwards nothing and moves no round-robin pointer.
// Link advancement is batched by construction: an in-flight flit lives in
// a downstream arrival ring with a future arrival stamp and costs nothing
// per cycle, so an uncontended packet keeps at most two nodes active (the
// stage it streams from and the stage allocated downstream) and its full
// traversal costs O(hops) node visits total — not O(hops·tiles) as under
// the full scan. The skip-ahead horizon composes: an idle fabric still
// jumps the kernel, and a sparse fabric now ticks in O(active).
//
// Deadlock freedom: routing is minimal and dimension-ordered, and the VCs
// are split into two dateline classes — packets start in class 0 and move
// to class 1 for the rest of the dimension after crossing a wraparound
// (dateline) link, so the ring and torus channel-dependency cycles are
// broken exactly as in the classic dateline scheme. Meshes never wrap and
// simply use class 0.

import (
	"fmt"
	"math"
	"math/bits"
)

const (
	defaultVCs     = 2
	defaultVCDepth = 4
)

// vcPkt is one packet traveling the VC network. Packets are recycled
// through the router's free list once their tail flit ejects.
type vcPkt struct {
	dst, flits int
	payload    any
	injectAt   int64
	next       *vcPkt // free list link
}

// hopState tracks a packet streaming through one router stage: an input VC
// or the head of a source (injection) queue.
type hopState struct {
	pkt     *vcPkt
	id      int // candidate bit index at this node (inPort*vcs+vc; numIn*vcs = source)
	outPort int // output port at this node; topo.Ports() means ejection
	class   int // dateline VC class held at this node (0 or 1)
	axis    int // axis (port/2) of the hop that reached this node; -1 at source
	downVC  int // VC allocated at the downstream input port; -1 = none yet
	sent    int // flits this stage has forwarded
}

// inVC is one input virtual channel: streaming state plus a fixed-capacity
// ring of the buffered flits' arrival cycles (a slot is reserved from the
// moment the upstream sends, which is what the credit counter tracks, so
// occupancy never exceeds VCDepth).
type inVC struct {
	hopState
	arr     []int64 // arrival-cycle ring, cap == VCDepth, FIFO
	arrHead int
	arrLen  int
}

func (b *inVC) arrFront() int64 { return b.arr[b.arrHead] }

func (b *inVC) arrPop() {
	b.arrHead++
	if b.arrHead == len(b.arr) {
		b.arrHead = 0
	}
	b.arrLen--
}

func (b *inVC) arrPush(t int64) {
	i := b.arrHead + b.arrLen
	if i >= len(b.arr) {
		i -= len(b.arr)
	}
	b.arr[i] = t
	b.arrLen++
}

// creditRet is one in-flight credit return: the upstream output (node,
// port, vc) regains a buffer slot at cycle at.
type creditRet struct {
	at   int64
	node int32
	port int16
	vc   int16
}

type linkEnd struct{ node, port int }

type vcNode struct {
	injQ    []*vcPkt // pending source packets; injQ[injHead:] is live
	injHead int
	inj     hopState
	in      [][]inVC  // [input port][vc]
	ups     []linkEnd // upstream (node, output port) feeding each input port
	downTo  []int     // downstream node per output port; -1 = no link
	downIn  []int     // downstream input-port index per output port
	wrap    []bool    // per output port: wraparound (dateline-crossing) link
	credits [][]int   // [output port][downstream vc]: free buffer slots
	outRR   []int     // switch-allocation round-robin pointer per output port
	vcRR    []int     // VC-allocation round-robin pointer per output port
	usedIn  []bool    // input port already supplied a flit this cycle
	active  int       // packets currently staged at this node
	// cand[out] has bit s.id set for every stage staged toward output out
	// (s.pkt != nil && s.outPort == out), so switch allocation scans only
	// live candidates instead of every (input, vc) slot. Unused when the
	// router falls back to wide mode (candidate ids beyond 63).
	cand []uint64
}

type vcRouter struct {
	m        *Mesh
	vcs      int
	depth    int
	eject    int // pseudo output port index = topo.Ports()
	wide     bool // candidate ids exceed 64 bits; use the linear scan
	nodes    []vcNode
	inFlight int

	// activeMask has bit n set exactly while nodes[n].active > 0; tick and
	// nextArrival iterate it instead of scanning every node. The invariant
	// is maintained by startInjection/allocVC (set) and release (clear)
	// and pinned by TestVCActiveMaskInvariant.
	activeMask []uint64

	// tickVisits counts nodes visited by tick since construction — the
	// work counter behind the O(active) test (per-tick visits on a sparse
	// mesh are bounded by the traffic's footprint, not the tile count).
	tickVisits uint64

	// wake is the cycle before which no staged flit can make progress
	// (set by a no-progress tick; 0 = the next tick must do a full scan).
	// inject resets it: a new header invalidates the frozen-state proof.
	wake int64

	// Pending credit returns, a time-ordered ring (constant LinkLatency
	// makes pushes monotone). Drained at the start of every tick, exactly
	// matching the old per-credit kernel events, which always fired before
	// the same cycle's tick.
	credQ    []creditRet
	credHead int
	credLen  int

	pktFree *vcPkt // recycled packets
}

func newVCRouter(m *Mesh) *vcRouter {
	vcs := m.cfg.VCs
	if vcs == 0 {
		vcs = defaultVCs
	}
	// The dateline scheme splits the VCs into two equal classes; an odd
	// count would silently short class 0 (e.g. VCs=3 -> classes of 1 and
	// 2), skewing fairness and the torus deadlock margin. User-facing
	// paths validate via memsys.Config.Validate; reaching here with a bad
	// count is a programmer error, same as an unknown topology in New.
	if vcs < 2 || vcs%2 != 0 {
		panic(fmt.Sprintf("mesh: VCs = %d; the dateline split needs an even count >= 2", m.cfg.VCs))
	}
	depth := m.cfg.VCDepth
	if depth <= 0 {
		depth = defaultVCDepth
	}
	ports := m.topo.Ports()
	r := &vcRouter{m: m, vcs: vcs, depth: depth, eject: ports}
	r.nodes = make([]vcNode, m.topo.Tiles())
	r.activeMask = make([]uint64, (len(r.nodes)+63)/64)
	for i := range r.nodes {
		nd := &r.nodes[i]
		nd.downTo = make([]int, ports)
		for p := range nd.downTo {
			nd.downTo[p] = -1
		}
		nd.downIn = make([]int, ports)
		nd.wrap = make([]bool, ports)
		nd.credits = make([][]int, ports)
		nd.outRR = make([]int, ports+1)
		nd.vcRR = make([]int, ports)
		nd.inj.downVC = -1
	}
	for _, l := range m.topo.Links() {
		to := &r.nodes[l.To]
		idx := len(to.in)
		row := make([]inVC, vcs)
		for v := range row {
			row[v].id = idx*vcs + v
			row[v].downVC = -1
			row[v].arr = make([]int64, depth)
		}
		to.in = append(to.in, row)
		to.ups = append(to.ups, linkEnd{l.From, l.Port})
		from := &r.nodes[l.From]
		from.downTo[l.Port] = l.To
		from.downIn[l.Port] = idx
		from.wrap[l.Port] = m.topo.Wraparound(l.From, l.Port)
		cr := make([]int, vcs)
		for v := range cr {
			cr[v] = depth
		}
		from.credits[l.Port] = cr
	}
	for i := range r.nodes {
		nd := &r.nodes[i]
		nd.usedIn = make([]bool, len(nd.in)+1)
		nd.inj.id = len(nd.in) * vcs
		nd.cand = make([]uint64, ports+1)
		if nd.inj.id >= 64 {
			r.wide = true
		}
	}
	m.k.SetTicker(r.tick)
	return r
}

func (r *vcRouter) kind() string { return "vc" }

func (r *vcRouter) inject(src, dst, flits int, payload any) int {
	pkt := r.pktFree
	if pkt == nil {
		pkt = &vcPkt{}
	} else {
		r.pktFree = pkt.next
		pkt.next = nil
	}
	pkt.dst, pkt.flits, pkt.payload, pkt.injectAt = dst, flits, payload, r.m.k.Now()
	nd := &r.nodes[src]
	nd.injQ = append(nd.injQ, pkt)
	if len(nd.injQ)-nd.injHead == 1 {
		r.startInjection(src, nd)
	}
	r.inFlight++
	r.wake = 0 // a fresh header invalidates any frozen-state proof
	if !r.m.k.TickArmed() {
		r.m.k.TickNext()
	}
	return r.m.topo.Hops(src, dst)
}

// markActive and clearActive maintain the active-node bitmask; they are
// the only writers, called exactly on a node's 0->1 and 1->0 stage-count
// transitions.
func (r *vcRouter) markActive(n int)  { r.activeMask[n>>6] |= 1 << uint(n&63) }
func (r *vcRouter) clearActive(n int) { r.activeMask[n>>6] &^= 1 << uint(n&63) }

// startInjection stages the head of a source queue for switch allocation.
func (r *vcRouter) startInjection(n int, nd *vcNode) {
	s := &nd.inj
	s.pkt = nd.injQ[nd.injHead]
	s.sent = 0
	s.class = 0
	s.axis = -1
	s.downVC = -1
	s.outPort, _ = r.m.topo.NextPort(n, s.pkt.dst)
	nd.cand[s.outPort] |= 1 << uint(s.id)
	nd.active++
	if nd.active == 1 {
		r.markActive(n)
	}
}

// pushCredit queues a credit return for cycle at (always now+LinkLatency,
// so the ring stays time-ordered without sorting).
func (r *vcRouter) pushCredit(at int64, node, port, vc int) {
	if r.credLen == len(r.credQ) {
		grown := make([]creditRet, max(64, 2*len(r.credQ)))
		for i := 0; i < r.credLen; i++ {
			grown[i] = r.credQ[(r.credHead+i)%len(r.credQ)]
		}
		r.credQ = grown
		r.credHead = 0
	}
	i := r.credHead + r.credLen
	if i >= len(r.credQ) {
		i -= len(r.credQ)
	}
	r.credQ[i] = creditRet{at: at, node: int32(node), port: int16(port), vc: int16(vc)}
	r.credLen++
}

// drainCredits applies every credit due by now.
func (r *vcRouter) drainCredits(now int64) {
	for r.credLen > 0 {
		c := &r.credQ[r.credHead]
		if c.at > now {
			return
		}
		r.nodes[c.node].credits[c.port][c.vc]++
		r.credHead++
		if r.credHead == len(r.credQ) {
			r.credHead = 0
		}
		r.credLen--
	}
}

// tick advances the whole network by one cycle, or proves the current
// cycle (and possibly a run of following ones) idle and skips ahead.
func (r *vcRouter) tick() {
	now := r.m.k.Now()
	r.drainCredits(now)
	if now < r.wake {
		// Still inside a proven-frozen window (the kernel pulled the tick
		// earlier for a heap event that turned out not to inject).
		r.m.k.TickSkipTo(r.wake)
		return
	}
	progressed := false
	// Visit only active nodes, in ascending node order (the same order as
	// the old full scan — required, since a release at node i can free a
	// downstream VC that a later node j claims this same cycle). Each mask
	// word is snapshotted when reached: bits set into it mid-tick by
	// allocVC belong to stages with empty arrival rings that cannot
	// forward this cycle, so skipping them is bit-identical (see the
	// package comment).
	for w, word := range r.activeMask {
		for ; word != 0; word &= word - 1 {
			i := w<<6 + bits.TrailingZeros64(word)
			nd := &r.nodes[i]
			r.tickVisits++
			for j := range nd.usedIn {
				nd.usedIn[j] = false
			}
			if r.wide {
				for out := 0; out <= r.eject; out++ {
					if r.serviceOutputScan(i, nd, out, now) {
						progressed = true
					}
				}
				continue
			}
			for out := 0; out <= r.eject; out++ {
				if nd.cand[out] == 0 {
					continue
				}
				if r.serviceOutput(i, nd, out, now) {
					progressed = true
				}
			}
		}
	}
	if r.inFlight == 0 {
		return // network drained; the next inject re-arms the tick
	}
	if progressed {
		r.wake = 0
		r.m.k.TickNext()
		return
	}
	// Nothing moved: every staged flit waits on a future arrival, a
	// pending credit, or a flit that is itself frozen. The state cannot
	// change before the earliest arrival/credit lands, so skip there.
	wake := r.nextArrival(now)
	if r.credLen > 0 && r.credQ[r.credHead].at < wake {
		wake = r.credQ[r.credHead].at
	}
	if wake == math.MaxInt64 {
		// No future arrival or credit either: a true deadlock. Keep
		// ticking so the behavior matches the per-cycle model exactly;
		// the driver's livelock watchdog reports it.
		r.wake = 0
		r.m.k.TickNext()
		return
	}
	r.wake = wake
	r.m.k.TickSkipTo(wake)
}

// nextArrival returns the earliest strictly-future buffered-flit arrival
// cycle, or MaxInt64 if none is in flight. Arrivals already due (a flit
// buffered but blocked on credits or a downstream VC) don't bound the
// wake horizon — whatever unblocks them is a credit return or another
// flit's arrival, which the caller accounts separately.
func (r *vcRouter) nextArrival(now int64) int64 {
	min := int64(math.MaxInt64)
	for w, word := range r.activeMask {
		for ; word != 0; word &= word - 1 {
			nd := &r.nodes[w<<6+bits.TrailingZeros64(word)]
			for p := range nd.in {
				row := nd.in[p]
				for v := range row {
					b := &row[v]
					if b.pkt != nil && b.arrLen > 0 {
						if t := b.arrFront(); t > now && t < min {
							min = t
						}
					}
				}
			}
		}
	}
	return min
}

// serviceOutput runs VC + switch allocation for one output port: visit the
// staged (input port, VC) candidates in round-robin order via the port's
// candidate bitmask and forward the first winner. It reports whether a flit
// moved. The mask holds exactly the stages with s.pkt != nil and
// s.outPort == out, so skipping unset bits examines the same eligible
// candidates, in the same order, as the exhaustive scan.
func (r *vcRouter) serviceOutput(n int, nd *vcNode, out int, now int64) bool {
	mask := nd.cand[out]
	numIn := len(nd.in)
	start := nd.outRR[out]
	// Round-robin order from start+1: ids above start ascending, then ids
	// from 0 through start. A shift count of 64 (start == 63) yields 0 in
	// Go, correctly leaving no "above" half.
	above := mask &^ (1<<uint(start+1) - 1)
	for _, half := range [2]uint64{above, mask &^ above} {
		for m := half; m != 0; m &= m - 1 {
			id := bits.TrailingZeros64(m)
			var s *hopState
			var buf *inVC
			inPort, vcIdx := numIn, -1 // defaults: the source queue
			if id < numIn*r.vcs {
				inPort, vcIdx = id/r.vcs, id%r.vcs
				buf = &nd.in[inPort][vcIdx]
				s = &buf.hopState
				if buf.arrLen == 0 || buf.arrFront() > now {
					continue
				}
			} else {
				s = &nd.inj
			}
			if nd.usedIn[inPort] {
				continue
			}
			if out != r.eject {
				if s.downVC < 0 && !r.allocVC(nd, s, out) {
					continue // no free downstream VC for this header
				}
				if nd.credits[out][s.downVC] == 0 {
					continue // downstream buffer full
				}
			}
			r.forward(n, nd, out, inPort, vcIdx, s, buf, now)
			nd.outRR[out] = id
			return true
		}
	}
	return false
}

// serviceOutputScan is the exhaustive-order fallback used in wide mode
// (candidate ids beyond 63, i.e. VCs >= 16 on a 4-port topology): scan
// every (input port, VC) slot round-robin and forward the first winner.
func (r *vcRouter) serviceOutputScan(n int, nd *vcNode, out int, now int64) bool {
	numIn := len(nd.in)
	total := numIn*r.vcs + 1 // +1: the source queue head
	start := nd.outRR[out]
	for k := 1; k <= total; k++ {
		id := (start + k) % total
		var s *hopState
		var buf *inVC
		inPort, vcIdx := numIn, -1 // defaults: the source queue
		if id < numIn*r.vcs {
			inPort, vcIdx = id/r.vcs, id%r.vcs
			buf = &nd.in[inPort][vcIdx]
			s = &buf.hopState
			if buf.arrLen == 0 || buf.arrFront() > now {
				continue
			}
		} else {
			s = &nd.inj
		}
		if s.pkt == nil || s.outPort != out || nd.usedIn[inPort] {
			continue
		}
		if out != r.eject {
			if s.downVC < 0 && !r.allocVC(nd, s, out) {
				continue // no free downstream VC for this header
			}
			if nd.credits[out][s.downVC] == 0 {
				continue // downstream buffer full
			}
		}
		r.forward(n, nd, out, inPort, vcIdx, s, buf, now)
		nd.outRR[out] = id
		return true
	}
	return false
}

// allocVC claims a free downstream input VC in the packet's dateline class
// and stages the packet's streaming state at the downstream node.
func (r *vcRouter) allocVC(nd *vcNode, s *hopState, out int) bool {
	class := s.class
	if r.m.topo.PortAxis(out) != s.axis {
		class = 0 // a new dimension starts a new dateline ring
	}
	if nd.wrap[out] {
		class = 1 // crossing the dateline moves to the upper VC class
	}
	half := r.vcs / 2
	lo, hi := 0, half
	if class == 1 {
		lo, hi = half, r.vcs
	}
	d := nd.downTo[out]
	down := &r.nodes[d]
	width := hi - lo
	start := nd.vcRR[out]
	for k := 0; k < width; k++ {
		w := lo + (start+k)%width
		tgt := &down.in[nd.downIn[out]][w]
		if tgt.pkt != nil {
			continue
		}
		nd.vcRR[out] = (start + k + 1) % width
		s.downVC = w
		tgt.pkt = s.pkt
		tgt.sent = 0
		tgt.class = class
		tgt.axis = r.m.topo.PortAxis(out)
		tgt.downVC = -1
		tgt.arrHead, tgt.arrLen = 0, 0
		if d == s.pkt.dst {
			tgt.outPort = r.eject
		} else {
			tgt.outPort, _ = r.m.topo.NextPort(d, s.pkt.dst)
		}
		down.cand[tgt.outPort] |= 1 << uint(tgt.id)
		down.active++
		if down.active == 1 {
			r.markActive(d)
		}
		return true
	}
	return false
}

// forward moves one flit out of a stage: onto the link toward the
// downstream buffer, or off the network at the ejection port.
func (r *vcRouter) forward(n int, nd *vcNode, out, inPort, vcIdx int, s *hopState, buf *inVC, now int64) {
	nd.usedIn[inPort] = true
	s.sent++
	tail := s.sent == s.pkt.flits
	if buf != nil {
		// The flit frees a buffer slot; the credit reaches the upstream
		// router one link traversal later.
		buf.arrPop()
		up := nd.ups[inPort]
		r.pushCredit(now+r.m.cfg.LinkLatency, up.node, up.port, vcIdx)
	}
	if out == r.eject {
		if tail {
			pkt := s.pkt
			r.m.complete(n, pkt.payload, pkt.injectAt, now)
			r.inFlight--
			r.release(n, nd, s)
			pkt.payload = nil
			pkt.next = r.pktFree
			r.pktFree = pkt
		}
		return
	}
	tgt := &r.nodes[nd.downTo[out]].in[nd.downIn[out]][s.downVC]
	tgt.arrPush(now + r.m.cfg.LinkLatency)
	if tgt.arrLen > r.m.peakVC {
		r.m.peakVC = tgt.arrLen
	}
	nd.credits[out][s.downVC]--
	r.m.linkBusy[n][out]++
	if tail {
		r.release(n, nd, s)
	}
}

// release retires a packet's stage at this node once its tail has left,
// freeing the VC (or advancing the source queue) for the next packet.
func (r *vcRouter) release(n int, nd *vcNode, s *hopState) {
	nd.cand[s.outPort] &^= 1 << uint(s.id)
	nd.active--
	if nd.active == 0 {
		r.clearActive(n)
	}
	if s == &nd.inj {
		nd.injQ[nd.injHead] = nil // drop the reference for the free list
		nd.injHead++
		s.pkt = nil
		if nd.injHead < len(nd.injQ) {
			r.startInjection(n, nd)
		} else {
			nd.injQ = nd.injQ[:0] // drained: recycle the backing array
			nd.injHead = 0
		}
		return
	}
	s.pkt = nil
	s.downVC = -1
}
