package mesh

import (
	"testing"

	"repro/internal/sim"
)

// TestVCTickZeroAlloc pins the allocation-free steady state of the vc
// router at the paper's 4x4 and at 16x16: once the free lists, rings and
// queue backing arrays are warm, ticking the network — switch allocation,
// credit returns, deliveries and re-injection included — must perform
// zero heap allocations. This is the guard that keeps the PR6 free lists
// (and the PR8 active-node mask, which must not allocate either) from
// silently regressing.
func TestVCTickZeroAlloc(t *testing.T) {
	t.Run("4x4", func(t *testing.T) { testVCTickZeroAlloc(t, 4, 4) })
	t.Run("16x16", func(t *testing.T) { testVCTickZeroAlloc(t, 16, 16) })
}

func testVCTickZeroAlloc(t *testing.T, w, h int) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: w, Height: h, Router: "vc", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}

	// A deterministic burst of crossing multi-flit packets: corner-to-corner
	// streams plus nearby traffic, enough to exercise VC allocation, credit
	// stalls and the ejection path at once. Corners are computed from the
	// dims so the same shape runs on any grid.
	last := m.Tiles() - 1
	burst := func() {
		m.Send(0, last, 5, nil)
		m.Send(last, 0, 5, nil)
		m.Send(w-1, last-(w-1), 5, nil)
		m.Send(last-(w-1), w-1, 5, nil)
		m.Send(1, last-2, 5, nil)
		m.Send(w+1, w+2, 5, nil)
	}

	// Warm every pool: packet free list, delivery free list, credit ring,
	// injection-queue backing arrays, and the kernel's event slice.
	for i := 0; i < 3; i++ {
		burst()
		k.Run()
	}

	// Dry run to learn how many kernel steps one warm burst takes.
	burst()
	steps := 0
	for k.Step() {
		steps++
	}
	if steps < 20 {
		t.Fatalf("burst drained in %d steps; too short to measure", steps)
	}

	// Measured run over the identical schedule. AllocsPerRun calls the
	// function runs+1 times (one warm-up call), so stay inside the burst.
	burst()
	runs := steps - 2
	avg := testing.AllocsPerRun(runs, func() {
		if !k.Step() {
			t.Fatal("kernel drained mid-measurement")
		}
	})
	k.Run()
	if avg != 0 {
		t.Fatalf("steady-state vc tick allocates: %v allocs per kernel step, want 0", avg)
	}
}
