package mesh

import (
	"testing"

	"repro/internal/sim"
)

// TestVCTickZeroAlloc pins the allocation-free steady state of the vc
// router: once the free lists, rings and queue backing arrays are warm,
// ticking the network — switch allocation, credit returns, deliveries and
// re-injection included — must perform zero heap allocations. This is the
// guard that keeps the PR6 free lists from silently regressing.
func TestVCTickZeroAlloc(t *testing.T) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: 4, Height: 4, Router: "vc", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}

	// A deterministic burst of crossing multi-flit packets: corner-to-corner
	// streams plus same-column traffic, enough to exercise VC allocation,
	// credit stalls and the ejection path at once.
	burst := func() {
		m.Send(0, 15, 5, nil)
		m.Send(15, 0, 5, nil)
		m.Send(3, 12, 5, nil)
		m.Send(12, 3, 5, nil)
		m.Send(1, 13, 5, nil)
		m.Send(5, 6, 5, nil)
	}

	// Warm every pool: packet free list, delivery free list, credit ring,
	// injection-queue backing arrays, and the kernel's event slice.
	for i := 0; i < 3; i++ {
		burst()
		k.Run()
	}

	// Dry run to learn how many kernel steps one warm burst takes.
	burst()
	steps := 0
	for k.Step() {
		steps++
	}
	if steps < 20 {
		t.Fatalf("burst drained in %d steps; too short to measure", steps)
	}

	// Measured run over the identical schedule. AllocsPerRun calls the
	// function runs+1 times (one warm-up call), so stay inside the burst.
	burst()
	runs := steps - 2
	avg := testing.AllocsPerRun(runs, func() {
		if !k.Step() {
			t.Fatal("kernel drained mid-measurement")
		}
	})
	k.Run()
	if avg != 0 {
		t.Fatalf("steady-state vc tick allocates: %v allocs per kernel step, want 0", avg)
	}
}
