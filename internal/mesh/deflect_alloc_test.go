package mesh

import (
	"testing"

	"repro/internal/sim"
)

// TestDeflectionTickZeroAlloc pins the allocation-free steady state of
// the deflection router at the paper's 4x4 and at 16x16: once the
// packet/flit free lists, arrival rings and queue backing arrays are
// warm, ticking the network — arbitration, deflections, side-buffer
// parking, ejections and deliveries included — must perform zero heap
// allocations, the same guarantee the vc router pins.
func TestDeflectionTickZeroAlloc(t *testing.T) {
	t.Run("4x4", func(t *testing.T) { testDeflTickZeroAlloc(t, 4, 4) })
	t.Run("16x16", func(t *testing.T) { testDeflTickZeroAlloc(t, 16, 16) })
}

func testDeflTickZeroAlloc(t *testing.T, w, h int) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: w, Height: h, Router: "deflection", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}

	// The same crossing multi-flit burst the vc test uses: enough
	// head-on contention to force deflections and side-buffer traffic.
	last := m.Tiles() - 1
	burst := func() {
		m.Send(0, last, 5, nil)
		m.Send(last, 0, 5, nil)
		m.Send(w-1, last-(w-1), 5, nil)
		m.Send(last-(w-1), w-1, 5, nil)
		m.Send(1, last-2, 5, nil)
		m.Send(w+1, w+2, 5, nil)
	}

	// Warm every pool: packet and flit free lists, delivery free list,
	// candidate scratch, queue backing arrays, and the kernel's events.
	for i := 0; i < 3; i++ {
		burst()
		k.Run()
	}

	// Dry run to learn how many kernel steps one warm burst takes.
	burst()
	steps := 0
	for k.Step() {
		steps++
	}
	if steps < 20 {
		t.Fatalf("burst drained in %d steps; too short to measure", steps)
	}

	// Measured run over the identical schedule. AllocsPerRun calls the
	// function runs+1 times (one warm-up call), so stay inside the burst.
	burst()
	runs := steps - 2
	avg := testing.AllocsPerRun(runs, func() {
		if !k.Step() {
			t.Fatal("kernel drained mid-measurement")
		}
	})
	k.Run()
	if avg != 0 {
		t.Fatalf("steady-state deflection tick allocates: %v allocs per kernel step, want 0", avg)
	}
}
