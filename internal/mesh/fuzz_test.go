package mesh

import "testing"

// FuzzRouteMinimality fuzzes the routing contract every fabric model
// leans on: for an arbitrary registered topology, geometry and tile pair,
// iterating NextPort from src must terminate at dst in exactly
// Hops(src, dst) steps, with every step crossing a link the topology
// enumerates. The checked-in corpus under testdata/fuzz seeds the edge
// geometries (1-wide grids, wraparound tie-breaks, corner-to-corner
// routes).
func FuzzRouteMinimality(f *testing.F) {
	f.Add(0, 4, 4, 0, 15)  // mesh corner to corner
	f.Add(1, 4, 4, 0, 8)   // ring antipode (tie goes clockwise)
	f.Add(2, 4, 4, 0, 10)  // torus diameter route
	f.Add(2, 1, 7, 3, 5)   // degenerate 1-wide torus
	f.Add(1, 16, 1, 15, 0) // long ring wrap
	f.Fuzz(func(t *testing.T, kindIdx, w, h, srcRaw, dstRaw int) {
		kinds := TopologyKinds()
		kind := kinds[((kindIdx%len(kinds))+len(kinds))%len(kinds)]
		width := ((w%8)+8)%8 + 1
		height := ((h%8)+8)%8 + 1
		topo, err := NewTopology(kind, width, height)
		if err != nil {
			t.Fatalf("%s %dx%d rejected: %v", kind, width, height, err)
		}
		n := topo.Tiles()
		src := ((srcRaw % n) + n) % n
		dst := ((dstRaw % n) + n) % n

		links := make(map[Link]bool, len(topo.Links()))
		for _, l := range topo.Links() {
			links[l] = true
		}
		steps, cur := 0, src
		for cur != dst {
			port, next := topo.NextPort(cur, dst)
			if port < 0 || port >= topo.Ports() {
				t.Fatalf("%s %dx%d: NextPort(%d,%d) port %d out of range",
					kind, width, height, cur, dst, port)
			}
			if !links[Link{cur, port, next}] {
				t.Fatalf("%s %dx%d: route %d->%d uses unlisted link %d -[%d]-> %d",
					kind, width, height, src, dst, cur, port, next)
			}
			cur = next
			steps++
			if steps > n {
				t.Fatalf("%s %dx%d: route %d->%d does not terminate", kind, width, height, src, dst)
			}
		}
		if want := topo.Hops(src, dst); steps != want {
			t.Fatalf("%s %dx%d: route %d->%d took %d steps, Hops says %d",
				kind, width, height, src, dst, steps, want)
		}
	})
}
