package mesh

import "fmt"

// routerRegistry is the single source of truth for router models: kinds,
// inventory descriptions, and constructors all derive from it.
var routerRegistry = []struct {
	kind string
	desc string
	ctor func(*Mesh) router
}{
	{"ideal", "injection-time link reservation — the paper's wormhole approximation (default)",
		func(m *Mesh) router { return newIdealRouter(m) }},
	{"vc", "cycle-level wormhole router: per-port input VCs, credit flow control, round-robin allocation",
		func(m *Mesh) router { return newVCRouter(m) }},
	{"deflection", "cycle-level bufferless router: oldest-first arbitration, contention deflects instead of buffering",
		func(m *Mesh) router { return newDeflRouter(m) }},
}

// RouterKinds lists the registered router models in presentation order.
func RouterKinds() []string {
	kinds := make([]string, len(routerRegistry))
	for i, r := range routerRegistry {
		kinds[i] = r.kind
	}
	return kinds
}

// RouterDescription returns the one-line inventory description of a
// registered router kind (used by cmd/papertables and /v1/catalog). The
// empty string describes the default ("ideal"); an unregistered kind is
// an error — it used to return "" silently, which let a registry or
// inventory drift print an empty papertables row.
func RouterDescription(kind string) (string, error) {
	if kind == "" {
		kind = "ideal"
	}
	for _, r := range routerRegistry {
		if r.kind == kind {
			return r.desc, nil
		}
	}
	return "", fmt.Errorf("mesh: unknown router %q (have %v)", kind, RouterKinds())
}

// ValidRouter reports whether kind names a registered router model. The
// empty string selects the default ("ideal").
func ValidRouter(kind string) error {
	if _, err := newRouterCtor(kind); err != nil {
		return err
	}
	return nil
}

// newRouterCtor resolves a kind to its constructor ("" = "ideal").
func newRouterCtor(kind string) (func(*Mesh) router, error) {
	if kind == "" {
		kind = "ideal"
	}
	for _, r := range routerRegistry {
		if r.kind == kind {
			return r.ctor, nil
		}
	}
	return nil, fmt.Errorf("mesh: unknown router %q (have %v)", kind, RouterKinds())
}

// router is the forwarding-model contract the fabric programs against.
// inject consumes one packet of flits flits with src != dst, must
// eventually call Mesh.complete exactly once for it when the model says
// the packet arrives (recording the packet's latency in the congestion
// telemetry), and returns the route length in links (the fabric charges
// flits x hops to the traffic telemetry, identically under every model).
// Implementations must be deterministic: all state advances on kernel
// events only, so simulations are bit-identical at any engine worker
// count.
type router interface {
	kind() string
	inject(src, dst, flits int, payload any) int
}

// idealRouter is the paper's original wormhole approximation: the entire
// route is reserved link by link at injection time, so contention on hot
// links delays later packets, but there are no buffers, no credit stalls,
// and no allocation latency. It is the default and the reference model the
// golden figure suite pins.
type idealRouter struct {
	m *Mesh
	// linkFree[t][p] is the cycle at which tile t's outgoing link on port
	// p becomes free. Port meanings are topology-defined.
	linkFree [][]int64
}

func newIdealRouter(m *Mesh) *idealRouter {
	linkFree := make([][]int64, m.topo.Tiles())
	for i := range linkFree {
		linkFree[i] = make([]int64, m.topo.Ports())
	}
	return &idealRouter{m: m, linkFree: linkFree}
}

func (r *idealRouter) kind() string { return "ideal" }

func (r *idealRouter) inject(src, dst, flits int, payload any) int {
	m := r.m
	hops := 0
	t0 := m.k.Now() // header ready to leave current router
	t := t0
	cur := src
	for cur != dst {
		port, next := m.topo.NextPort(cur, dst)
		start := t
		if free := r.linkFree[cur][port]; free > start {
			start = free
		}
		r.linkFree[cur][port] = start + int64(flits) // serialization
		m.linkBusy[cur][port] += int64(flits)
		t = start + m.cfg.LinkLatency // header at next router
		cur = next
		hops++
	}
	// The tail flit arrives flits-1 cycles after the header.
	m.complete(dst, payload, t0, t+int64(flits-1))
	return hops
}
