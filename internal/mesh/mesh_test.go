package mesh

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTest(w, h int) (*sim.Kernel, *Mesh, *[]any) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: w, Height: h, LinkLatency: 3, LocalLatency: 1})
	delivered := &[]any{}
	for t := 0; t < m.Tiles(); t++ {
		m.Register(t, func(p any) { *delivered = append(*delivered, p) })
	}
	return k, m, delivered
}

func TestHopsManhattan(t *testing.T) {
	_, m, _ := newTest(4, 4)
	cases := []struct{ src, dst, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 15, 6}, {5, 10, 2}, {3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestLocalDelivery(t *testing.T) {
	k, m, got := newTest(4, 4)
	hops := m.Send(5, 5, 3, "x")
	if hops != 0 {
		t.Fatalf("same-tile hops = %d, want 0", hops)
	}
	k.Run()
	if len(*got) != 1 || (*got)[0] != "x" {
		t.Fatalf("delivery = %v", *got)
	}
	if k.Now() != 1 {
		t.Fatalf("local delivery at %d, want 1", k.Now())
	}
}

func TestUncontendedLatency(t *testing.T) {
	k, m, got := newTest(4, 4)
	// 0 -> 3: 3 hops. 1-flit packet: 3 hops * 3 cycles = 9.
	m.Send(0, 3, 1, "a")
	k.Run()
	if len(*got) != 1 {
		t.Fatal("not delivered")
	}
	if k.Now() != 9 {
		t.Fatalf("1-flit latency = %d, want 9", k.Now())
	}
}

func TestMultiFlitTail(t *testing.T) {
	k, m, _ := newTest(4, 4)
	// 5 flits over 2 hops: header 2*3=6, tail +4 => 10.
	var at int64
	m2 := m
	_ = m2
	m.Send(0, 2, 5, "a")
	k.At(0, func() {})
	k.Run()
	at = k.Now()
	if at != 10 {
		t.Fatalf("5-flit 2-hop latency = %d, want 10", at)
	}
}

func TestFlitHopAccounting(t *testing.T) {
	k, m, _ := newTest(4, 4)
	m.Send(0, 15, 5, "a") // 6 hops * 5 flits = 30
	m.Send(1, 1, 5, "b")  // local: 0
	k.Run()
	if m.FlitHops() != 30 {
		t.Fatalf("FlitHops = %d, want 30", m.FlitHops())
	}
	if m.Packets() != 2 {
		t.Fatalf("Packets = %d, want 2", m.Packets())
	}
}

func TestLinkContentionSerializes(t *testing.T) {
	k, m, got := newTest(4, 1)
	// Two 4-flit packets over the same first link (0->1...): the second
	// header cannot start until the first has fully serialized (4 cycles).
	m.Send(0, 3, 4, "a")
	m.Send(0, 3, 4, "b")
	k.Run()
	if len(*got) != 2 {
		t.Fatal("not all delivered")
	}
	// First: start 0, per-hop start times 0,4?? — each hop reserves flits
	// cycles; header latency 3 but serialization 4 dominates pipelining.
	// a: hop starts 0,3,6 (no contention downstream since a leads), tail
	// arrival = 6+3+3 = 12.
	// b: first hop start = 4 (link busy until 4), then contends with a's
	// reservations downstream: link1 free at 3+4=7, b header arrives at
	// 4+3=7 -> start 7; link2 free at 6+4=10, b at 7+3=10 -> start 10;
	// arrival = 10+3+3 = 16.
	if k.Now() != 16 {
		t.Fatalf("contended delivery finished at %d, want 16", k.Now())
	}
}

func TestXYRouteDeterministic(t *testing.T) {
	// Sending the same packet twice yields identical timing state.
	k1, m1, _ := newTest(4, 4)
	m1.Send(2, 13, 3, "p")
	k1.Run()
	t1 := k1.Now()
	k2, m2, _ := newTest(4, 4)
	m2.Send(2, 13, 3, "p")
	k2.Run()
	if k2.Now() != t1 {
		t.Fatalf("nondeterministic delivery: %d vs %d", k2.Now(), t1)
	}
}

func TestRegisterTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate Register")
		}
	}()
	k := &sim.Kernel{}
	m := New(k, Config{Width: 2, Height: 2, LinkLatency: 1})
	m.Register(0, func(any) {})
	m.Register(0, func(any) {})
}

func TestZeroFlitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero-flit send")
		}
	}()
	k := &sim.Kernel{}
	m := New(k, Config{Width: 2, Height: 2, LinkLatency: 1})
	m.Register(0, func(any) {})
	m.Register(1, func(any) {})
	m.Send(0, 1, 0, nil)
}

// Property: hops equals Manhattan distance for all tile pairs in a 4x4 mesh,
// and a send's reported hops matches Hops().
func TestHopsProperty(t *testing.T) {
	f := func(a, b uint8) bool {
		src, dst := int(a)%16, int(b)%16
		k, m, _ := newTest(4, 4)
		hops := m.Send(src, dst, 1, nil)
		k.Run()
		sx, sy := src%4, src/4
		dx, dy := dst%4, dst/4
		man := abs(sx-dx) + abs(sy-dy)
		return hops == man && m.Hops(src, dst) == man
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: uncontended latency = hops*linkLatency + flits-1 for any route.
func TestLatencyFormulaProperty(t *testing.T) {
	f := func(a, b, fl uint8) bool {
		src, dst := int(a)%16, int(b)%16
		flits := int(fl)%5 + 1
		if src == dst {
			return true
		}
		k, m, _ := newTest(4, 4)
		m.Send(src, dst, flits, nil)
		k.Run()
		want := int64(m.Hops(src, dst))*3 + int64(flits-1)
		return k.Now() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMeshSend(b *testing.B) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: 4, Height: 4, LinkLatency: 3})
	for t := 0; t < 16; t++ {
		m.Register(t, func(any) {})
	}
	for i := 0; i < b.N; i++ {
		m.Send(i%16, (i*7)%16, 1+i%5, nil)
		if k.Pending() > 4096 {
			k.Run()
		}
	}
	k.Run()
}
