package mesh

import (
	"testing"

	"repro/internal/sim"
)

// FuzzDeflectionPermutation fuzzes the deflection router's safety
// contract under arbitrary topologies, geometries and injection
// schedules: after every kernel step the per-tick output assignment must
// have been a permutation (no two flits on one link in one cycle, pinned
// by strictly increasing arrival-ring stamps), no flit may be dropped or
// duplicated (the global flit ledger balances), and the active-node mask
// must track exactly the staged nodes. After the drain every injected
// packet must have been delivered, none earlier than its minimal route
// allows, and the link-traversal ledger must balance: actual traversals
// equal minimal flit-hops plus reported deflected hops. The checked-in
// corpus under testdata/fuzz seeds the edge geometries (1-wide grids,
// hotspot schedules, single-packet runs).
func FuzzDeflectionPermutation(f *testing.F) {
	f.Add(uint64(1), 0, 4, 4, 32)   // paper mesh, mixed traffic
	f.Add(uint64(7), 1, 4, 4, 48)   // ring under load
	f.Add(uint64(9), 2, 4, 4, 48)   // torus wrap contention
	f.Add(uint64(3), 0, 1, 6, 16)   // degenerate 1-wide mesh (single axis)
	f.Add(uint64(11), 2, 1, 7, 24)  // degenerate 1-wide torus
	f.Add(uint64(42), 0, 6, 6, 64)  // bigger grid, heavier schedule
	f.Add(uint64(5), 1, 16, 1, 1)   // long ring, lone packet
	f.Fuzz(func(t *testing.T, seed uint64, kindIdx, w, h, npkts int) {
		kinds := TopologyKinds()
		kind := kinds[((kindIdx%len(kinds))+len(kinds))%len(kinds)]
		width := ((w%6)+6)%6 + 1
		height := ((h%6)+6)%6 + 1
		npkts = ((npkts%64)+64)%64 + 1

		// splitmix64: a tiny deterministic PRNG so the schedule is a pure
		// function of the fuzz input (no math/rand state to leak between
		// runs).
		next := func() uint64 {
			seed += 0x9e3779b97f4a7c15
			z := seed
			z ^= z >> 30
			z *= 0xbf58476d1ce4e5b9
			z ^= z >> 27
			z *= 0x94d049bb133111eb
			return z ^ (z >> 31)
		}

		k := &sim.Kernel{}
		m := New(k, Config{Width: width, Height: height, Topology: kind,
			Router: "deflection", LinkLatency: 3, LocalLatency: 1})
		r := m.r.(*deflRouter)
		n := m.Tiles()
		delivered := 0
		for tile := 0; tile < n; tile++ {
			m.Register(tile, func(p any) {
				if minAt := p.(int64); k.Now() < minAt {
					t.Fatalf("%s %dx%d: delivery at %d beats minimal-route bound %d",
						kind, width, height, k.Now(), minAt)
				}
				delivered++
			})
		}

		// A pseudo-random timed schedule: packets injected over a 200-cycle
		// window from random sources to random destinations, so arbitration
		// sees every mix of ages and the side buffer gets real traffic.
		for i := 0; i < npkts; i++ {
			src := int(next() % uint64(n))
			dst := int(next() % uint64(n))
			flits := 1 + int(next()%5)
			at := int64(next() % 200)
			k.At(at, func() {
				minAt := k.Now() + int64(m.Hops(src, dst))*3 + int64(flits)
				if src == dst {
					minAt = k.Now() + 1 // LocalLatency path, no fabric involved
				}
				m.Send(src, dst, flits, minAt)
			})
		}

		steps := 0
		for k.Step() {
			checkDeflConservation(t, r)
			steps++
			if steps > 2_000_000 {
				t.Fatalf("%s %dx%d: schedule of %d packets did not drain (livelock)",
					kind, width, height, npkts)
			}
		}
		if delivered != npkts {
			t.Fatalf("%s %dx%d: delivered %d of %d packets", kind, width, height, delivered, npkts)
		}
		checkDeflDrained(t, r)
		var traversals uint64
		for _, l := range m.Topology().Links() {
			traversals += uint64(m.linkBusy[l.From][l.Port])
		}
		if s := m.Stats(); traversals != m.FlitHops()+s.DeflectedHops {
			t.Fatalf("%s %dx%d: %d link traversals, want minimal %d + deflected %d",
				kind, width, height, traversals, m.FlitHops(), s.DeflectedHops)
		}
	})
}
