package mesh

// The cycle-level deflection router (Config.Router = "deflection"): a
// minimally-buffered (bufferless-style) forwarding model in the
// BLESS/CHIPPER/MinBD lineage. Routers hold no packet buffers on the
// links: every flit that arrives at a router this cycle must leave it
// this cycle — through its productive output port when it wins
// arbitration, through any free non-productive port (a *deflection*)
// when it loses, or into the node's small local side buffer in the one
// case per cycle where every output is taken. The model trades buffer
// area for extra link traversals, which is exactly the tradeoff the
// paper's waste accounting can measure: the extra traversals surface as
// NetStats.DeflectedHops, a waste category neither "ideal" nor "vc" can
// express.
//
// Flit-level forwarding and reassembly: packets are split into flits at
// injection and every flit routes independently (deflections reorder
// them freely), so the destination counts arrivals and completes the
// packet when the last flit ejects. A packet's latency is therefore
// injection to last-flit ejection, directly comparable with the vc
// router's header-to-tail window (both models deliver an uncontended
// packet in hops*LinkLatency + flits cycles; one flit in hops*L + 1).
//
// Point-to-point ordering: deflections can let a younger packet reach
// the destination before an older one from the same source (the older
// one took a detour), but the coherence protocols — like every fabric
// client built against the ideal and vc routers — assume each (src, dst)
// channel delivers in injection order. The destination therefore keeps a
// small reorder buffer per ordered pair: a packet whose flits have all
// ejected is held until every earlier packet of its channel has
// delivered, and its latency window runs to the release cycle, so the
// reordering cost is measured rather than leaked into the protocol.
//
// Priority and livelock freedom: contention is resolved oldest-first by
// the strict total order (packet injection cycle, packet sequence
// number, flit index). The globally oldest staged flit wins every
// arbitration it enters — ejection and output ports are assigned in
// priority order at its node, nothing at another node competes for them
// — so it moves productively every cycle it is staged and delivers in
// bounded time; induction over the order gives every flit a delivery
// bound. No separate age threshold is needed: age *is* the priority.
//
// The side buffer: with the symmetric registered topologies (every
// node's in-degree equals its out-degree), a cycle's candidates at a
// node are at most in-degree arrivals plus one local flit, against
// out-degree links plus one ejection slot — so at most one candidate per
// node per cycle can fail to get a port, and it parks in the node's side
// buffer (a MinBD-style local queue shared with the injection backlog).
// Side-buffered flits re-enter arbitration as the node's local
// candidate, chosen oldest-first across the side buffer and the
// injection queue, so an old parked flit displaces younger injections
// and cannot starve.
//
// Determinism, O(active) ticks, skip-ahead and the allocation-free
// steady state all follow the vc router's scheme (see vc.go): the whole
// network advances inside the kernel's recurring-tick slot in ascending
// node order over an active-node bitmask, a no-progress tick proves
// every staged flit waits on a future link arrival and skips the kernel
// to the earliest one, and packets, flits and queue backing arrays are
// recycled through free lists so a steady-state tick performs zero heap
// allocations (deflect_alloc_test.go pins that).
//
// Waste accounting: every link traversal is charged to the per-link
// utilization telemetry as it happens, and when a flit ejects, the hops
// it actually took beyond its minimal route are added to
// Mesh.deflHops — so after a drain, total link traversals equal the
// minimal flit-hops the fabric charges at injection plus
// NetStats.DeflectedHops (FuzzDeflectionPermutation pins the identity).

import (
	"math"
	"math/bits"
)

// deflPkt is one packet in flight on the deflection network: flit
// bookkeeping plus the reassembly count. Recycled through the router's
// free list once the last flit ejects.
type deflPkt struct {
	dst, flits int
	minHops    int // minimal route length, for deflected-hop accounting
	payload    any
	injectAt   int64
	seq        uint64 // per-router injection sequence, the priority tiebreak
	arrived    int    // flits ejected at dst so far

	// The (src, dst) channel's in-order delivery state: pairSeq is this
	// packet's position on the channel and pair the shared channel record
	// (see deliver).
	pairSeq uint64
	pair    *deflPair

	// next links the packet on the free list, or on its channel's reorder
	// buffer while it waits for earlier packets to deliver.
	next *deflPkt
}

// deflPair is one (src, dst) ordered channel: the injection-side sequence
// counter, the delivery-side cursor, and the reorder buffer of completed
// packets held for an earlier one (sorted by pairSeq, almost always
// empty). Records are created on a channel's first packet and kept for
// the life of the router, so the steady state allocates nothing.
type deflPair struct {
	nextInject  uint64
	nextDeliver uint64
	pending     *deflPkt
}

// deflFlit is one independently-routed flit. Flits outlive their order:
// deflections reorder them, so each carries its index (the final
// priority tiebreak) and its own hop counter for waste accounting.
type deflFlit struct {
	pkt  *deflPkt
	idx  int
	hops int // links traversed so far (>= pkt.minHops at ejection)
	next *deflFlit
}

// before reports whether flit a outranks flit b under the oldest-first
// total order: injection cycle, then packet sequence, then flit index.
// The order is strict (no two staged flits compare equal), which is what
// makes arbitration — and therefore the whole model — deterministic.
func (a *deflFlit) before(b *deflFlit) bool {
	if a.pkt.injectAt != b.pkt.injectAt {
		return a.pkt.injectAt < b.pkt.injectAt
	}
	if a.pkt.seq != b.pkt.seq {
		return a.pkt.seq < b.pkt.seq
	}
	return a.idx < b.idx
}

// deflSlot is one in-flight flit on a link: it becomes a candidate at
// the downstream router at cycle at.
type deflSlot struct {
	at int64
	f  *deflFlit
}

// deflRing is a fixed-capacity FIFO of the flits in flight on one
// directed link. At most one flit enters a link per cycle and every
// arrival is consumed the tick it lands, so occupancy never exceeds
// LinkLatency+1 and arrival stamps are strictly increasing.
type deflRing struct {
	s    []deflSlot
	head int
	n    int
}

func (r *deflRing) front() *deflSlot { return &r.s[r.head] }

func (r *deflRing) pop() {
	r.s[r.head].f = nil
	r.head++
	if r.head == len(r.s) {
		r.head = 0
	}
	r.n--
}

func (r *deflRing) push(at int64, f *deflFlit) {
	i := r.head + r.n
	if i >= len(r.s) {
		i -= len(r.s)
	}
	r.s[i] = deflSlot{at, f}
	r.n++
}

// deflNode is one router of the deflection network.
type deflNode struct {
	rings  []deflRing // arrival ring per input port
	downTo []int      // downstream node per output port; -1 = no link
	downIn []int      // downstream input-port index per output port

	// The local queue: injQ is the injection backlog (appended in
	// priority order, so its head is its oldest flit) and sideQ holds
	// side-buffered flits (at most one parks per cycle; scanned for the
	// oldest). The node's single local candidate each cycle is the older
	// of the two heads.
	injQ    []*deflFlit
	injHead int
	sideQ   []*deflFlit

	staged int // flits at this node: ring occupancy + local queue
}

// localLen returns the local-queue occupancy (injection backlog plus
// side buffer), the quantity tracked as peak buffering telemetry.
func (nd *deflNode) localLen() int { return len(nd.injQ) - nd.injHead + len(nd.sideQ) }

// deflCand is one cycle's arbitration candidate at a node. src encodes
// where the flit came from: srcInj/srcSide for the local candidate
// (still in its queue; removed only if it wins an output), or >= 0 for
// an arrival already popped from that input port's ring.
type deflCand struct {
	f   *deflFlit
	src int
}

const (
	srcInj  = -1
	srcSide = -2
)

type deflRouter struct {
	m        *Mesh
	ports    int
	nodes    []deflNode
	inFlight int    // packets not yet fully ejected
	flits    int    // flit records currently on the network
	seq      uint64 // next packet sequence number

	// activeMask has bit n set exactly while nodes[n].staged > 0; tick
	// and nextArrival iterate it instead of scanning every node (same
	// scheme as the vc router, pinned by TestDeflectionActiveMaskInvariant).
	activeMask []uint64

	// tickVisits counts nodes visited by tick since construction — the
	// work counter behind the O(active) test.
	tickVisits uint64

	// wake is the cycle before which no staged flit can make progress
	// (set by a no-progress tick; 0 = the next tick must do a full scan).
	wake int64

	// Per-tick scratch, reused across nodes so arbitration allocates
	// nothing: the candidate list (at most in-degree + 1 entries) and
	// the output-port claim flags.
	cands     []deflCand
	portTaken []bool
	sideIdx   int  // index in sideQ of the current local candidate
	injGated  bool // this tick skipped a same-cycle injection (see tickNode)

	// pairs holds the per-(src, dst) in-order delivery records, keyed
	// src<<32|dst (see deliver).
	pairs map[uint64]*deflPair

	pktFree  *deflPkt
	flitFree *deflFlit
}

func newDeflRouter(m *Mesh) *deflRouter {
	ports := m.topo.Ports()
	r := &deflRouter{m: m, ports: ports}
	r.nodes = make([]deflNode, m.topo.Tiles())
	r.activeMask = make([]uint64, (len(r.nodes)+63)/64)
	r.cands = make([]deflCand, 0, ports+1)
	r.portTaken = make([]bool, ports)
	r.pairs = make(map[uint64]*deflPair)
	for i := range r.nodes {
		nd := &r.nodes[i]
		nd.downTo = make([]int, ports)
		for p := range nd.downTo {
			nd.downTo[p] = -1
		}
		nd.downIn = make([]int, ports)
	}
	ringCap := int(m.cfg.LinkLatency) + 1
	for _, l := range m.topo.Links() {
		to := &r.nodes[l.To]
		idx := len(to.rings)
		to.rings = append(to.rings, deflRing{s: make([]deflSlot, ringCap)})
		from := &r.nodes[l.From]
		from.downTo[l.Port] = l.To
		from.downIn[l.Port] = idx
	}
	m.k.SetTicker(r.tick)
	return r
}

func (r *deflRouter) kind() string { return "deflection" }

func (r *deflRouter) newFlit(pkt *deflPkt, idx int) *deflFlit {
	f := r.flitFree
	if f == nil {
		f = &deflFlit{}
	} else {
		r.flitFree = f.next
		f.next = nil
	}
	f.pkt, f.idx, f.hops = pkt, idx, 0
	return f
}

func (r *deflRouter) inject(src, dst, flits int, payload any) int {
	pkt := r.pktFree
	if pkt == nil {
		pkt = &deflPkt{}
	} else {
		r.pktFree = pkt.next
		pkt.next = nil
	}
	hops := r.m.topo.Hops(src, dst)
	pkt.dst, pkt.flits, pkt.minHops = dst, flits, hops
	pkt.payload, pkt.injectAt, pkt.arrived = payload, r.m.k.Now(), 0
	pkt.seq = r.seq
	r.seq++
	key := uint64(src)<<32 | uint64(dst)
	pair := r.pairs[key]
	if pair == nil {
		pair = &deflPair{}
		r.pairs[key] = pair
	}
	pkt.pair, pkt.pairSeq = pair, pair.nextInject
	pair.nextInject++
	nd := &r.nodes[src]
	for i := 0; i < flits; i++ {
		nd.injQ = append(nd.injQ, r.newFlit(pkt, i))
	}
	r.addStaged(src, flits)
	r.flits += flits
	if occ := nd.localLen(); occ > r.m.peakVC {
		r.m.peakVC = occ
	}
	r.inFlight++
	r.wake = 0 // fresh flits invalidate any frozen-state proof
	if !r.m.k.TickArmed() {
		r.m.k.TickNext()
	}
	return hops
}

// addStaged and subStaged maintain a node's staged-flit count and the
// active-node bitmask; they are the only writers.
func (r *deflRouter) addStaged(n, k int) {
	nd := &r.nodes[n]
	if nd.staged == 0 {
		r.activeMask[n>>6] |= 1 << uint(n&63)
	}
	nd.staged += k
}

func (r *deflRouter) subStaged(n, k int) {
	nd := &r.nodes[n]
	nd.staged -= k
	if nd.staged == 0 {
		r.activeMask[n>>6] &^= 1 << uint(n&63)
	}
}

// tick advances the whole network by one cycle, or proves the cycle idle
// and skips ahead (exactly the vc router's tick discipline).
func (r *deflRouter) tick() {
	now := r.m.k.Now()
	if now < r.wake {
		r.m.k.TickSkipTo(r.wake)
		return
	}
	progressed := false
	r.injGated = false
	// Ascending node order over the active mask. Each word is read when
	// the range reaches it; bits set mid-tick belong to nodes whose only
	// new state is a future-stamped link arrival, so visiting them or
	// not is behavior-neutral (same argument as the vc router's).
	for w, word := range r.activeMask {
		for ; word != 0; word &= word - 1 {
			i := w<<6 + bits.TrailingZeros64(word)
			r.tickVisits++
			if r.tickNode(i, now) {
				progressed = true
			}
		}
	}
	if r.inFlight == 0 {
		return // network drained; the next inject re-arms the tick
	}
	if progressed {
		r.wake = 0
		r.m.k.TickNext()
		return
	}
	// Nothing moved, so no arrival was due and every arbitrable local
	// queue is empty (a node with a local flit always finds a free
	// output): every staged flit is in flight on a link — or was injected
	// this very cycle and gated to its first arbitration next cycle, in
	// which case the skip horizon is capped at now+1.
	wake := r.nextArrival(now)
	if r.injGated && now+1 < wake {
		wake = now + 1
	}
	if wake == math.MaxInt64 {
		// Unreachable while flits exist (they are all on links with
		// finite stamps), but keep the vc router's defensive shape: tick
		// per-cycle and let the driver's livelock watchdog report.
		r.wake = 0
		r.m.k.TickNext()
		return
	}
	r.wake = wake
	r.m.k.TickSkipTo(wake)
}

// nextArrival returns the earliest strictly-future link-arrival cycle
// across the active nodes, or MaxInt64 if nothing is in flight.
func (r *deflRouter) nextArrival(now int64) int64 {
	min := int64(math.MaxInt64)
	for w, word := range r.activeMask {
		for ; word != 0; word &= word - 1 {
			nd := &r.nodes[w<<6+bits.TrailingZeros64(word)]
			for p := range nd.rings {
				ring := &nd.rings[p]
				if ring.n > 0 {
					if t := ring.front().at; t > now && t < min {
						min = t
					}
				}
			}
		}
	}
	return min
}

// tickNode runs one node's cycle: gather this cycle's candidates, rank
// them oldest-first, and place every one — ejection, productive port,
// deflection, or (for at most one) the side buffer. Reports whether any
// flit moved.
func (r *deflRouter) tickNode(n int, now int64) bool {
	nd := &r.nodes[n]
	cands := r.cands[:0]

	// Due link arrivals: at most one per input port per cycle (stamps in
	// a ring are strictly increasing and every due front is consumed the
	// tick it lands, so the front is the only candidate).
	for p := range nd.rings {
		ring := &nd.rings[p]
		if ring.n > 0 && ring.front().at <= now {
			cands = append(cands, deflCand{ring.front().f, p})
			ring.pop()
		}
	}
	removed := len(cands) // flits leaving this node (adjusted below)

	// The local candidate: the older of the injection-backlog head (the
	// backlog is appended in priority order, so the head is the oldest)
	// and the oldest side-buffered flit. Peeked, not popped — it leaves
	// its queue only if it wins an output this cycle. A flit injected
	// this very cycle is gated to next tick: whether the injecting event
	// ran before or after this cycle's tick, its first hop leaves at
	// injectAt+1, keeping latency a pure function of the schedule rather
	// than of same-cycle event ordering.
	var local *deflFlit
	localSrc := srcInj
	if nd.injHead < len(nd.injQ) {
		if f := nd.injQ[nd.injHead]; f.pkt.injectAt < now {
			local = f
		} else {
			r.injGated = true
		}
	}
	for i, f := range nd.sideQ {
		if local == nil || f.before(local) {
			local, localSrc = f, srcSide
			r.sideIdx = i
		}
	}
	if local != nil {
		// The local candidate leaves the node only if it wins an output;
		// takeLocal's call sites bump removed when it does.
		cands = append(cands, deflCand{local, localSrc})
	}
	if len(cands) == 0 {
		return false
	}

	// Oldest-first ranking (insertion sort: at most in-degree+1 entries,
	// and the order is strict so the result is unique).
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i
		for j > 0 && c.f.before(cands[j-1].f) {
			cands[j] = cands[j-1]
			j--
		}
		cands[j] = c
	}

	for p := range r.portTaken {
		r.portTaken[p] = false
	}
	ejected := false
	progressed := false
	for _, c := range cands {
		f := c.f
		want := -1 // -1: this flit wants ejection (or lost it this cycle)
		if f.pkt.dst == n {
			if !ejected {
				ejected = true
				if c.src < 0 {
					r.takeLocal(nd, c.src)
					removed++
				}
				r.ejectFlit(n, f, now)
				progressed = true
				continue
			}
		} else {
			want, _ = r.m.topo.NextPort(n, f.pkt.dst)
		}
		out := -1
		if want >= 0 && !r.portTaken[want] {
			out = want
		} else {
			// Deflect: the lowest-numbered free output. The detour is
			// not charged here — deflected waste is the flit's actual
			// hops beyond its minimal route, settled at ejection.
			for p := 0; p < r.ports; p++ {
				if nd.downTo[p] >= 0 && !r.portTaken[p] {
					out = p
					break
				}
			}
		}
		if out >= 0 {
			r.portTaken[out] = true
			if c.src < 0 {
				r.takeLocal(nd, c.src)
				removed++
			}
			f.hops++
			d := nd.downTo[out]
			r.nodes[d].rings[nd.downIn[out]].push(now+r.m.cfg.LinkLatency, f)
			r.addStaged(d, 1)
			r.m.linkBusy[n][out]++
			progressed = true
			continue
		}
		// Every output (and the ejection slot, if wanted) is taken: park
		// in the side buffer. Only an arrival can land here — the local
		// candidate is still in its queue and simply stays — and the
		// in-degree <= out-degree symmetry means at most one arrival per
		// cycle does. The flit changed state (link to buffer), so the
		// cycle made progress and the next tick re-arbitrates it.
		if c.src >= 0 {
			nd.sideQ = append(nd.sideQ, f)
			if occ := nd.localLen(); occ > r.m.peakVC {
				r.m.peakVC = occ
			}
			removed-- // it stayed at this node after all
			progressed = true
		}
	}
	if removed > 0 {
		r.subStaged(n, removed)
	}
	return progressed
}

// takeLocal removes the winning local candidate from its queue; arrivals
// (src >= 0) were already popped from their ring at gather and never
// reach here.
func (r *deflRouter) takeLocal(nd *deflNode, src int) {
	if src == srcInj {
		nd.injQ[nd.injHead] = nil
		nd.injHead++
		if nd.injHead == len(nd.injQ) {
			nd.injQ = nd.injQ[:0] // drained: recycle the backing array
			nd.injHead = 0
		}
		return
	}
	last := len(nd.sideQ) - 1
	nd.sideQ[r.sideIdx] = nd.sideQ[last]
	nd.sideQ[last] = nil
	nd.sideQ = nd.sideQ[:last]
}

// ejectFlit takes a flit off the network at its destination, settles its
// deflected-hop waste, and hands the packet to in-order delivery when it
// was the last.
func (r *deflRouter) ejectFlit(n int, f *deflFlit, now int64) {
	pkt := f.pkt
	r.m.deflHops += uint64(f.hops - pkt.minHops)
	f.pkt = nil
	f.next = r.flitFree
	r.flitFree = f
	r.flits--
	pkt.arrived++
	if pkt.arrived == pkt.flits {
		r.deliver(n, pkt, now)
	}
}

// deliver completes a fully-ejected packet in channel order: if earlier
// packets of its (src, dst) channel are still in flight it parks on the
// channel's reorder buffer, otherwise it delivers now — and releases any
// parked successors its delivery unblocks, at the same cycle. Liveness is
// inductive: the channel's earliest undelivered packet is never parked,
// so its flits are on the fabric and the livelock-free tick delivers it.
func (r *deflRouter) deliver(n int, pkt *deflPkt, now int64) {
	pair := pkt.pair
	if pkt.pairSeq != pair.nextDeliver {
		pp := &pair.pending
		for *pp != nil && (*pp).pairSeq < pkt.pairSeq {
			pp = &(*pp).next
		}
		pkt.next = *pp
		*pp = pkt
		return
	}
	for {
		pair.nextDeliver++
		r.m.complete(n, pkt.payload, pkt.injectAt, now)
		r.inFlight--
		pkt.payload, pkt.pair = nil, nil
		pkt.next = r.pktFree
		r.pktFree = pkt
		if pair.pending == nil || pair.pending.pairSeq != pair.nextDeliver {
			return
		}
		pkt = pair.pending
		pair.pending = pkt.next
	}
}
