package mesh

import (
	"math/bits"
	"testing"

	"repro/internal/sim"
)

// TestVCTickWorkIsOActive pins the O(active) claim with a work counter:
// a single flow crossing a 16x16 mesh keeps at most a handful of routers
// staged at any cycle (the stage it streams from plus the stage allocated
// downstream), so per-tick node visits must be bounded by the flow's
// footprint — not by the 256 tiles the old full scan walked every cycle.
func TestVCTickWorkIsOActive(t *testing.T) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: 16, Height: 16, Router: "vc", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}
	r := m.r.(*vcRouter)

	// One 5-flit packet corner to corner: 30 hops on the 16x16 mesh.
	hops := m.Send(0, m.Tiles()-1, 5, nil)

	maxPerStep, ticks := uint64(0), 0
	prev := r.tickVisits
	for k.Step() {
		if d := r.tickVisits - prev; d > 0 {
			ticks++
			if d > maxPerStep {
				maxPerStep = d
			}
		}
		prev = r.tickVisits
	}

	if ticks == 0 {
		t.Fatal("no ticks fired; the traversal did not run")
	}
	// A wormhole packet pipelines: while the head streams ahead the tail
	// is still crossing earlier routers, so the packet spans O(flits)
	// stages at once — for 5 flits, at most ~6 nodes (span plus the
	// downstream stage the head just allocated). Nowhere near the 256 the
	// full scan visited.
	if maxPerStep > 7 {
		t.Errorf("a single 5-flit flow visited %d nodes in one tick, want <= 7 (O(active), not O(tiles))", maxPerStep)
	}
	// Total work across the whole traversal is O(hops + flits), nowhere
	// near hops x 256. The constant covers flit serialization and the
	// skip-ahead granularity; what matters is the scale.
	total := r.tickVisits
	bound := uint64(8 * (hops + 5))
	if total > bound {
		t.Errorf("traversal visited %d nodes total over %d hops, want <= %d", total, hops, bound)
	}
}

// checkActiveMask verifies the membership invariant the O(active) tick
// relies on: activeMask bit n is set exactly while nodes[n].active > 0,
// and a node's stage count matches its live stages.
func checkActiveMask(t *testing.T, r *vcRouter) {
	t.Helper()
	for n := range r.nodes {
		nd := &r.nodes[n]
		bit := r.activeMask[n>>6]>>uint(n&63)&1 == 1
		if bit != (nd.active > 0) {
			t.Fatalf("node %d: activeMask bit %v but active = %d", n, bit, nd.active)
		}
		staged := 0
		if nd.inj.pkt != nil {
			staged++
		}
		for p := range nd.in {
			for v := range nd.in[p] {
				if nd.in[p][v].pkt != nil {
					staged++
				}
			}
		}
		if staged != nd.active {
			t.Fatalf("node %d: active = %d but %d stages hold packets", n, nd.active, staged)
		}
		// The candidate masks are the per-output view of the same stages.
		cand := 0
		for _, w := range nd.cand {
			cand += bits.OnesCount64(w)
		}
		if !r.wide && cand != nd.active {
			t.Fatalf("node %d: active = %d but %d candidate bits set", n, nd.active, cand)
		}
	}
}

// TestVCActiveMaskInvariant steps busy bursts on a 16x16 mesh and torus
// and checks the mask invariant after every kernel step — including the
// dateline (wraparound) allocation path the torus exercises. Run under
// -race in CI.
func TestVCActiveMaskInvariant(t *testing.T) {
	for _, topo := range []string{"mesh", "torus"} {
		t.Run(topo, func(t *testing.T) {
			k := &sim.Kernel{}
			m := New(k, Config{Width: 16, Height: 16, Topology: topo, Router: "vc", LinkLatency: 3, LocalLatency: 1})
			for tile := 0; tile < m.Tiles(); tile++ {
				m.Register(tile, func(any) {})
			}
			r := m.r.(*vcRouter)
			hot := 16*8 + 8
			for round := 0; round < 3; round++ {
				// Crossing streams, a hotspot, and wraparound-adjacent
				// sources so torus datelines are crossed.
				for _, src := range []int{0, 15, 240, 255, 7, 248} {
					m.Send(src, hot, 5, nil)
					m.Send(hot, src, 3, nil)
				}
				m.Send(0, 255, 5, nil)
				m.Send(255, 0, 5, nil)
				for k.Step() {
					checkActiveMask(t, r)
				}
				checkActiveMask(t, r)
			}
			// Drained network: no node may stay on the mask.
			for w, word := range r.activeMask {
				if word != 0 {
					t.Fatalf("drained network still has active bits in word %d: %#x", w, word)
				}
			}
		})
	}
}
