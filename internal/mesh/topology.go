package mesh

import "fmt"

// Topology defines the geometry and routing discipline of the on-chip
// network: how many tiles and router ports exist, how a packet steps from
// tile to tile, and how long each route is in links. The Mesh fabric
// (link serialization, delivery scheduling, flit-hop telemetry) is
// topology-agnostic and drives whichever Topology it is built with.
//
// Routing must be deterministic and minimal with respect to Hops: for any
// src != dst, repeatedly applying NextPort must reach dst in exactly
// Hops(src, dst) steps. Both protocol engines account their per-message
// flit-hops with Hops, so the figure telemetry follows the topology
// automatically.
type Topology interface {
	// Kind is the registry name ("mesh", "ring", "torus").
	Kind() string
	// Tiles returns the number of tiles (routers).
	Tiles() int
	// Ports returns the number of directed output ports per router.
	Ports() int
	// Hops returns the route length in links from src to dst (0 when
	// src == dst).
	Hops(src, dst int) int
	// NextPort returns the output port taken at cur and the neighbouring
	// tile it leads to, for one routing step toward dst. cur must differ
	// from dst.
	NextPort(cur, dst int) (port, next int)
	// Links enumerates every directed link in the network.
	Links() []Link
	// PortAxis returns the dimension a port moves along; ports of the
	// same dimension share a value. The vc router resets its dateline VC
	// class when a route switches axes.
	PortAxis(port int) int
	// Wraparound reports whether the directed link leaving tile from on
	// port crosses its dimension's wraparound boundary (the dateline).
	// The vc router moves packets to the upper VC class after such a
	// hop, which is what keeps wraparound topologies deadlock-free — a
	// topology with wrap links that does not report them here can
	// deadlock the credit loop.
	Wraparound(from, port int) bool
}

// Link is one directed channel: tile From's output port Port leads to
// tile To.
type Link struct {
	From, Port, To int
}

// TopologyKinds lists the registered topology names in presentation order.
func TopologyKinds() []string { return []string{"mesh", "ring", "torus"} }

// NewTopology constructs a topology by registry name over a width x height
// tile grid. The empty kind defaults to "mesh" (the paper's network). The
// ring linearizes the same width*height tiles into a single cycle.
func NewTopology(kind string, width, height int) (Topology, error) {
	if width <= 0 || height <= 0 {
		return nil, fmt.Errorf("mesh: non-positive dimensions %dx%d", width, height)
	}
	switch kind {
	case "", "mesh":
		return &XYMesh{w: width, h: height}, nil
	case "ring":
		return &Ring{n: width * height}, nil
	case "torus":
		return &Torus{w: width, h: height}, nil
	}
	return nil, fmt.Errorf("mesh: unknown topology %q (have %v)", kind, TopologyKinds())
}

// Mesh/torus port numbering, shared so the mesh and torus agree with the
// historical direction encoding.
const (
	portEast  = 0 // +X
	portWest  = 1 // -X
	portSouth = 2 // +Y
	portNorth = 3 // -Y
)

// XYMesh is the paper's network (Table 4.1): a width x height mesh with
// dimension-ordered XY routing — packets fully resolve the X dimension,
// then the Y dimension, which is deadlock-free and minimal.
type XYMesh struct{ w, h int }

// Kind implements Topology.
func (m *XYMesh) Kind() string { return "mesh" }

// Tiles implements Topology.
func (m *XYMesh) Tiles() int { return m.w * m.h }

// Ports implements Topology: E, W, S, N.
func (m *XYMesh) Ports() int { return 4 }

// Hops implements Topology: the Manhattan distance.
func (m *XYMesh) Hops(src, dst int) int {
	sx, sy := src%m.w, src/m.w
	dx, dy := dst%m.w, dst/m.w
	return abs(dx-sx) + abs(dy-sy)
}

// NextPort implements Topology: X first, then Y.
func (m *XYMesh) NextPort(cur, dst int) (port, next int) {
	x, y := cur%m.w, cur/m.w
	dx, dy := dst%m.w, dst/m.w
	switch {
	case x < dx:
		port, x = portEast, x+1
	case x > dx:
		port, x = portWest, x-1
	case y < dy:
		port, y = portSouth, y+1
	default:
		port, y = portNorth, y-1
	}
	return port, y*m.w + x
}

// PortAxis implements Topology: E/W move along X, S/N along Y.
func (m *XYMesh) PortAxis(port int) int { return port / 2 }

// Wraparound implements Topology: a grid mesh has no wraparound links.
func (m *XYMesh) Wraparound(from, port int) bool { return false }

// Links implements Topology: each tile links to its in-grid neighbours.
func (m *XYMesh) Links() []Link {
	var ls []Link
	for t := 0; t < m.Tiles(); t++ {
		x, y := t%m.w, t/m.w
		if x+1 < m.w {
			ls = append(ls, Link{t, portEast, t + 1})
		}
		if x > 0 {
			ls = append(ls, Link{t, portWest, t - 1})
		}
		if y+1 < m.h {
			ls = append(ls, Link{t, portSouth, t + m.w})
		}
		if y > 0 {
			ls = append(ls, Link{t, portNorth, t - m.w})
		}
	}
	return ls
}

// Ring port numbering.
const (
	portCW  = 0 // clockwise: tile i -> (i+1) mod n
	portCCW = 1 // counter-clockwise: tile i -> (i-1) mod n
)

// Ring is a bidirectional ring: the tiles form a single cycle and packets
// take the shorter way around (ties break clockwise, deterministically).
// Routers need only two ports, trading the mesh's path diversity for a
// diameter of n/2 — the geometry studied by ring-router NoC work.
type Ring struct{ n int }

// Kind implements Topology.
func (r *Ring) Kind() string { return "ring" }

// Tiles implements Topology.
func (r *Ring) Tiles() int { return r.n }

// Ports implements Topology: CW, CCW.
func (r *Ring) Ports() int { return 2 }

// Hops implements Topology: the shorter way around the cycle.
func (r *Ring) Hops(src, dst int) int { return ringDist(src, dst, r.n) }

// NextPort implements Topology. The shorter-direction choice is stable
// along a route: once a packet starts clockwise its forward distance only
// shrinks, so every step picks the same direction.
func (r *Ring) NextPort(cur, dst int) (port, next int) {
	d := dst - cur
	if d < 0 {
		d += r.n
	}
	if d*2 <= r.n { // tie goes clockwise
		return portCW, (cur + 1) % r.n
	}
	return portCCW, (cur - 1 + r.n) % r.n
}

// PortAxis implements Topology: the ring is one dimension.
func (r *Ring) PortAxis(port int) int { return 0 }

// Wraparound implements Topology: the dateline sits between tiles n-1
// and 0.
func (r *Ring) Wraparound(from, port int) bool {
	return (port == portCW && from == r.n-1) || (port == portCCW && from == 0)
}

// Links implements Topology: two directed links per tile.
func (r *Ring) Links() []Link {
	ls := make([]Link, 0, 2*r.n)
	for t := 0; t < r.n; t++ {
		ls = append(ls, Link{t, portCW, (t + 1) % r.n})
		ls = append(ls, Link{t, portCCW, (t - 1 + r.n) % r.n})
	}
	return ls
}

// Torus is the mesh plus wraparound links in both dimensions. Routing is
// dimension-ordered (X then Y) like the mesh, but each dimension travels
// the shorter way around its cycle (ties break toward +X/+Y), halving the
// worst-case hop count: a 4x4 torus has diameter 4 where the mesh has 6.
type Torus struct{ w, h int }

// Kind implements Topology.
func (t *Torus) Kind() string { return "torus" }

// Tiles implements Topology.
func (t *Torus) Tiles() int { return t.w * t.h }

// Ports implements Topology: E, W, S, N (with wraparound).
func (t *Torus) Ports() int { return 4 }

// ringDist returns the shorter cyclic distance from a to b modulo n.
func ringDist(a, b, n int) int {
	d := b - a
	if d < 0 {
		d += n
	}
	if d*2 > n {
		return n - d
	}
	return d
}

// Hops implements Topology: per-dimension shorter cyclic distances.
func (t *Torus) Hops(src, dst int) int {
	return ringDist(src%t.w, dst%t.w, t.w) + ringDist(src/t.w, dst/t.w, t.h)
}

// NextPort implements Topology: resolve X around its ring, then Y.
func (t *Torus) NextPort(cur, dst int) (port, next int) {
	x, y := cur%t.w, cur/t.w
	dx, dy := dst%t.w, dst/t.w
	if x != dx {
		d := dx - x
		if d < 0 {
			d += t.w
		}
		if d*2 <= t.w { // tie goes +X
			return portEast, y*t.w + (x+1)%t.w
		}
		return portWest, y*t.w + (x-1+t.w)%t.w
	}
	d := dy - y
	if d < 0 {
		d += t.h
	}
	if d*2 <= t.h { // tie goes +Y
		return portSouth, ((y+1)%t.h)*t.w + x
	}
	return portNorth, ((y-1+t.h)%t.h)*t.w + x
}

// PortAxis implements Topology: E/W move along X, S/N along Y.
func (t *Torus) PortAxis(port int) int { return port / 2 }

// Wraparound implements Topology: each dimension's dateline sits at its
// grid edge.
func (t *Torus) Wraparound(from, port int) bool {
	x, y := from%t.w, from/t.w
	switch port {
	case portEast:
		return x == t.w-1
	case portWest:
		return x == 0
	case portSouth:
		return y == t.h-1
	case portNorth:
		return y == 0
	}
	return false
}

// Links implements Topology: four directed links per tile, wrapping at the
// edges. Degenerate 1-wide dimensions contribute no links (a tile is not
// linked to itself).
func (t *Torus) Links() []Link {
	var ls []Link
	for tile := 0; tile < t.Tiles(); tile++ {
		x, y := tile%t.w, tile/t.w
		if t.w > 1 {
			ls = append(ls, Link{tile, portEast, y*t.w + (x+1)%t.w})
			ls = append(ls, Link{tile, portWest, y*t.w + (x-1+t.w)%t.w})
		}
		if t.h > 1 {
			ls = append(ls, Link{tile, portSouth, ((y+1)%t.h)*t.w + x})
			ls = append(ls, Link{tile, portNorth, ((y-1+t.h)%t.h)*t.w + x})
		}
	}
	return ls
}

// Diameter returns the longest minimal route in the topology, in links.
func Diameter(t Topology) int {
	max := 0
	for s := 0; s < t.Tiles(); s++ {
		for d := 0; d < t.Tiles(); d++ {
			if h := t.Hops(s, d); h > max {
				max = h
			}
		}
	}
	return max
}

// AvgHops returns the mean route length over all ordered tile pairs
// (including same-tile pairs, which contribute zero).
func AvgHops(t Topology) float64 {
	n := t.Tiles()
	if n == 0 {
		return 0
	}
	sum := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			sum += t.Hops(s, d)
		}
	}
	return float64(sum) / float64(n*n)
}
