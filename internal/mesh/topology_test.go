package mesh

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newTopoTest(t *testing.T, kind string, w, h int) (*sim.Kernel, *Mesh) {
	t.Helper()
	k := &sim.Kernel{}
	m := New(k, Config{Width: w, Height: h, Topology: kind, LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}
	return k, m
}

func TestNewTopologyRegistry(t *testing.T) {
	for _, kind := range TopologyKinds() {
		topo, err := NewTopology(kind, 4, 4)
		if err != nil {
			t.Fatalf("NewTopology(%s): %v", kind, err)
		}
		if topo.Kind() != kind {
			t.Fatalf("topology %q reports kind %q", kind, topo.Kind())
		}
		if topo.Tiles() != 16 {
			t.Fatalf("%s: %d tiles, want 16", kind, topo.Tiles())
		}
	}
	if topo, err := NewTopology("", 4, 4); err != nil || topo.Kind() != "mesh" {
		t.Fatalf("empty kind: topo=%v err=%v, want mesh", topo, err)
	}
	if _, err := NewTopology("moebius", 4, 4); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := NewTopology("mesh", 0, 4); err == nil {
		t.Fatal("degenerate geometry accepted")
	}
}

func TestRingHops(t *testing.T) {
	r, _ := NewTopology("ring", 4, 4) // 16-tile ring
	cases := []struct{ src, dst, want int }{
		{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {0, 8, 8}, {0, 9, 7}, {15, 0, 1}, {0, 15, 1}, {3, 13, 6},
	}
	for _, c := range cases {
		if got := r.Hops(c.src, c.dst); got != c.want {
			t.Errorf("ring Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestTorusHops(t *testing.T) {
	to, _ := NewTopology("torus", 4, 4)
	cases := []struct{ src, dst, want int }{
		{0, 0, 0},
		{0, 3, 1},  // X wraparound
		{0, 12, 1}, // Y wraparound
		{0, 15, 2}, // both wraparounds
		{0, 5, 2},  // interior, same as mesh
		{0, 10, 4}, // worst case: 2+2 (the diameter)
		{5, 10, 2},
	}
	for _, c := range cases {
		if got := to.Hops(c.src, c.dst); got != c.want {
			t.Errorf("torus Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

// Torus routes are never longer than mesh routes between the same tiles:
// the torus only adds links.
func TestTorusNeverWorseThanMesh(t *testing.T) {
	me, _ := NewTopology("mesh", 4, 4)
	to, _ := NewTopology("torus", 4, 4)
	for s := 0; s < 16; s++ {
		for d := 0; d < 16; d++ {
			if to.Hops(s, d) > me.Hops(s, d) {
				t.Fatalf("torus Hops(%d,%d)=%d > mesh %d", s, d, to.Hops(s, d), me.Hops(s, d))
			}
		}
	}
}

// Property: for every topology and tile pair, walking NextPort reaches the
// destination in exactly Hops steps, every step crosses a real link, and a
// Send reports the same hop count.
func TestRoutesMatchHopsProperty(t *testing.T) {
	for _, kind := range TopologyKinds() {
		topo, _ := NewTopology(kind, 4, 4)
		links := map[Link]bool{}
		for _, l := range topo.Links() {
			links[l] = true
		}
		for s := 0; s < topo.Tiles(); s++ {
			for d := 0; d < topo.Tiles(); d++ {
				steps, cur := 0, s
				for cur != d {
					port, next := topo.NextPort(cur, d)
					if port < 0 || port >= topo.Ports() {
						t.Fatalf("%s: NextPort(%d,%d) port %d out of range", kind, cur, d, port)
					}
					if !links[Link{cur, port, next}] {
						t.Fatalf("%s: route %d->%d uses unlisted link %d -[%d]-> %d", kind, s, d, cur, port, next)
					}
					cur = next
					steps++
					if steps > topo.Tiles() {
						t.Fatalf("%s: route %d->%d does not terminate", kind, s, d)
					}
				}
				if want := topo.Hops(s, d); steps != want {
					t.Fatalf("%s: route %d->%d took %d steps, Hops says %d", kind, s, d, steps, want)
				}
			}
		}
	}
}

func TestLinkCounts(t *testing.T) {
	cases := []struct {
		kind string
		want int
	}{
		{"mesh", 48},  // 2 * 2 * (3*4) directed links in a 4x4 grid
		{"ring", 32},  // 2 per tile
		{"torus", 64}, // 4 per tile
	}
	for _, c := range cases {
		topo, _ := NewTopology(c.kind, 4, 4)
		if got := len(topo.Links()); got != c.want {
			t.Errorf("%s: %d directed links, want %d", c.kind, got, c.want)
		}
	}
}

func TestDiameterAndAvgHops(t *testing.T) {
	cases := []struct {
		kind     string
		diameter int
		avg      float64
	}{
		{"mesh", 6, 2.5},
		{"ring", 8, 4.0},
		{"torus", 4, 2.0},
	}
	for _, c := range cases {
		topo, _ := NewTopology(c.kind, 4, 4)
		if got := Diameter(topo); got != c.diameter {
			t.Errorf("%s diameter = %d, want %d", c.kind, got, c.diameter)
		}
		if got := AvgHops(topo); got != c.avg {
			t.Errorf("%s avg hops = %f, want %f", c.kind, got, c.avg)
		}
	}
}

// Uncontended latency on every topology follows the wormhole formula:
// hops*linkLatency + flits-1.
func TestLatencyFormulaPerTopology(t *testing.T) {
	for _, kind := range TopologyKinds() {
		f := func(a, b, fl uint8) bool {
			src, dst := int(a)%16, int(b)%16
			flits := int(fl)%5 + 1
			if src == dst {
				return true
			}
			k, m := newTopoTest(t, kind, 4, 4)
			m.Send(src, dst, flits, nil)
			k.Run()
			return k.Now() == int64(m.Hops(src, dst))*3+int64(flits-1)
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}

// The ring serializes contending packets on its single clockwise channel.
func TestRingContentionSerializes(t *testing.T) {
	k, m := newTopoTest(t, "ring", 4, 1)
	// 0 -> 1 is one clockwise hop. Two 4-flit packets share link (0, CW):
	// a: start 0, header arrives 3, tail 3+3 = 6.
	// b: link busy until 4, header arrives 7, tail 10.
	m.Send(0, 1, 4, "a")
	m.Send(0, 1, 4, "b")
	k.Run()
	if k.Now() != 10 {
		t.Fatalf("contended ring delivery finished at %d, want 10", k.Now())
	}
}

// Opposite ring directions use independent channels: no cross-contention.
func TestRingDirectionsIndependent(t *testing.T) {
	k, m := newTopoTest(t, "ring", 4, 1)
	m.Send(0, 1, 4, "cw")  // port CW, tail at 6
	m.Send(0, 3, 4, "ccw") // port CCW, also 1 hop, tail at 6
	k.Run()
	if k.Now() != 6 {
		t.Fatalf("independent ring channels finished at %d, want 6", k.Now())
	}
}

// Flit-hop telemetry tracks the per-topology route lengths.
func TestFlitHopsFollowTopology(t *testing.T) {
	wants := map[string]uint64{"mesh": 6 * 5, "ring": 1 * 5, "torus": 2 * 5}
	for _, kind := range TopologyKinds() {
		k, m := newTopoTest(t, kind, 4, 4)
		m.Send(0, 15, 5, nil)
		k.Run()
		if got := m.FlitHops(); got != wants[kind] {
			t.Errorf("%s: FlitHops = %d, want %d", kind, got, wants[kind])
		}
	}
}

func TestSendDeterministicPerTopology(t *testing.T) {
	for _, kind := range TopologyKinds() {
		k1, m1 := newTopoTest(t, kind, 4, 4)
		m1.Send(2, 13, 3, "p")
		m1.Send(7, 4, 2, "q")
		k1.Run()
		k2, m2 := newTopoTest(t, kind, 4, 4)
		m2.Send(2, 13, 3, "p")
		m2.Send(7, 4, 2, "q")
		k2.Run()
		if k1.Now() != k2.Now() || m1.FlitHops() != m2.FlitHops() {
			t.Fatalf("%s: nondeterministic delivery", kind)
		}
	}
}
