package mesh

import (
	"testing"

	"repro/internal/sim"
)

// TestDeflectionTickWorkIsOActive pins the O(active) claim for the
// deflection router with the same work counter the vc test uses: a
// single flow crossing a 16x16 mesh keeps only the nodes its flits are
// staged at on the active mask, so per-tick node visits are bounded by
// the flow's footprint — not the 256 tiles a full scan would walk. The
// deflection bounds are looser than vc's: without per-hop buffering
// every in-flight flit keeps its own node staged, so a 5-flit packet
// can span up to ~flits+2 nodes (one per flit in flight plus the
// injection and arrival ends).
func TestDeflectionTickWorkIsOActive(t *testing.T) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: 16, Height: 16, Router: "deflection", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}
	r := m.r.(*deflRouter)

	// One 5-flit packet corner to corner: 30 hops on the 16x16 mesh.
	hops := m.Send(0, m.Tiles()-1, 5, nil)

	maxPerStep, ticks := uint64(0), 0
	prev := r.tickVisits
	for k.Step() {
		if d := r.tickVisits - prev; d > 0 {
			ticks++
			if d > maxPerStep {
				maxPerStep = d
			}
		}
		prev = r.tickVisits
	}

	if ticks == 0 {
		t.Fatal("no ticks fired; the traversal did not run")
	}
	if maxPerStep > 8 {
		t.Errorf("a single 5-flit flow visited %d nodes in one tick, want <= 8 (O(active), not O(tiles))", maxPerStep)
	}
	// Total work across the traversal is O(flits * hops) at worst — each
	// flit's node is visited once per link stage — nowhere near hops x 256.
	total := r.tickVisits
	bound := uint64(8 * 5 * (hops + 5))
	if total > bound {
		t.Errorf("traversal visited %d nodes total over %d hops, want <= %d", total, hops, bound)
	}
}

// TestDeflectionActiveMaskInvariant steps contended bursts on a 16x16
// mesh and torus and runs the full conservation audit after every kernel
// step: mask membership, staged counts, ring-stamp monotonicity and the
// global flit ledger. Run under -race in CI.
func TestDeflectionActiveMaskInvariant(t *testing.T) {
	for _, topo := range []string{"mesh", "torus"} {
		t.Run(topo, func(t *testing.T) {
			k := &sim.Kernel{}
			m := New(k, Config{Width: 16, Height: 16, Topology: topo, Router: "deflection",
				LinkLatency: 3, LocalLatency: 1})
			for tile := 0; tile < m.Tiles(); tile++ {
				m.Register(tile, func(any) {})
			}
			r := m.r.(*deflRouter)
			hot := 16*8 + 8
			for round := 0; round < 3; round++ {
				// Crossing streams, a hotspot, and wraparound-adjacent
				// sources so torus wrap ports carry traffic.
				for _, src := range []int{0, 15, 240, 255, 7, 248} {
					m.Send(src, hot, 5, nil)
					m.Send(hot, src, 3, nil)
				}
				m.Send(0, 255, 5, nil)
				m.Send(255, 0, 5, nil)
				for k.Step() {
					checkDeflConservation(t, r)
				}
				checkDeflConservation(t, r)
			}
			checkDeflDrained(t, r)
		})
	}
}
