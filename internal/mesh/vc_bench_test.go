package mesh

import (
	"testing"

	"repro/internal/sim"
)

// Router-isolated vc benches: drive the fabric directly (no protocol
// engines, no memory system), so ns/op measures the tick loop itself.
// The end-to-end SimThroughputVC* benches at the repo root are dominated
// by the cache/DRAM simulation; these are the ones that expose the
// per-tick O(tiles)-scan vs O(active)-mask difference the PR 8 rewrite
// targets.

// benchVCSparseFlow measures one warm corner-to-corner packet traversal
// per iteration: a single 5-flit packet crosses the full diameter and
// drains. On a 16x16 mesh this is the sparse extreme — at most two of the
// 256 routers hold work at any cycle, so under the old full-scan tick
// nearly all per-tick work was skipping idle nodes.
func benchVCSparseFlow(b *testing.B, w, h int) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: w, Height: h, Router: "vc", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}
	last := m.Tiles() - 1
	// Warm the pools (packet free list, rings, kernel event slice).
	for i := 0; i < 3; i++ {
		m.Send(0, last, 5, nil)
		k.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Send(0, last, 5, nil)
		k.Run()
	}
}

func BenchmarkVCSparseFlow4x4(b *testing.B)   { benchVCSparseFlow(b, 4, 4) }
func BenchmarkVCSparseFlow16x16(b *testing.B) { benchVCSparseFlow(b, 16, 16) }

// BenchmarkVCSparseHotspot16x16 is the idle-heavy hotspot shape on the
// large fabric: the four corner tiles stream multi-flit packets at one
// central hot tile. A handful of routers along the four routes carry all
// the work while ~240 tiles idle — the case the active-node mask turns
// from O(tiles) into O(active) per tick.
func BenchmarkVCSparseHotspot16x16(b *testing.B) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: 16, Height: 16, Router: "vc", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}
	hot := 16*8 + 8 // central tile
	burst := func() {
		for _, src := range []int{0, 15, 240, 255} {
			m.Send(src, hot, 5, nil)
		}
	}
	for i := 0; i < 3; i++ {
		burst()
		k.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		burst()
		k.Run()
	}
}

// BenchmarkVCDense4x4 saturates the paper's 4x4 fabric with crossing
// streams — the dense regression guard: with every router active the mask
// iteration must cost no more than the old full scan did.
func BenchmarkVCDense4x4(b *testing.B) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: 4, Height: 4, Router: "vc", LinkLatency: 3, LocalLatency: 1})
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(any) {})
	}
	burst := func() {
		for t := 0; t < 16; t++ {
			m.Send(t, 15-t, 5, nil)
		}
	}
	for i := 0; i < 3; i++ {
		burst()
		k.Run()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		burst()
		k.Run()
	}
}
