// Package mesh models an on-chip interconnect with pluggable topologies,
// per-link serialization, and wormhole-style pipelining.
//
// The fabric (Mesh) is topology-agnostic: geometry and routing live behind
// the Topology interface, with three registered implementations — the
// paper's dimension-ordered (XY) mesh, a bidirectional ring, and a 2D
// torus with wraparound links (see topology.go). The default matches the
// network of the paper's Table 4.1: a 4x4 mesh with 16-byte links and a
// 3-cycle per-hop latency. A packet consists of one control flit plus up
// to four 16-byte data flits (at most 64 bytes of data per message).
// Traffic is measured in flit-hops: a packet of f flits that traverses h
// links contributes f*h flit-hops, so per-topology route lengths flow
// directly into the paper's traffic telemetry.
//
// Each directed link forwards one flit per cycle; the model reserves links
// for the full serialization time of a packet, so contention on hot links
// delays later packets. This is a wormhole approximation (no virtual
// channels, no credit stalls), which is sufficient for the flit-hop and
// queuing behaviour studied in the paper.
package mesh

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes network geometry and link parameters.
type Config struct {
	Width, Height int    // tiles in X and Y (the ring linearizes them)
	Topology      string // "mesh" (default), "ring", or "torus"
	LinkLatency   int64  // cycles for a flit to traverse one link
	LocalLatency  int64  // cycles for a same-tile (0-hop) delivery
}

// Handler receives a delivered payload at a tile.
type Handler func(payload any)

// Mesh is the interconnect fabric. Create one with New.
type Mesh struct {
	cfg      Config
	topo     Topology
	k        *sim.Kernel
	handlers []Handler
	// linkFree[t][p] is the cycle at which tile t's outgoing link on port
	// p becomes free. Port meanings are topology-defined.
	linkFree [][]int64

	// Telemetry.
	packets  uint64
	flitHops uint64
}

// New creates an interconnect driven by kernel k. Unknown topology names
// panic; validate them beforehand with NewTopology (memsys.Config.Validate
// does) when the name comes from user input.
func New(k *sim.Kernel, cfg Config) *Mesh {
	topo, err := NewTopology(cfg.Topology, cfg.Width, cfg.Height)
	if err != nil {
		panic(err.Error())
	}
	if cfg.LinkLatency <= 0 {
		cfg.LinkLatency = 1
	}
	if cfg.LocalLatency <= 0 {
		cfg.LocalLatency = 1
	}
	n := topo.Tiles()
	linkFree := make([][]int64, n)
	for i := range linkFree {
		linkFree[i] = make([]int64, topo.Ports())
	}
	return &Mesh{
		cfg:      cfg,
		topo:     topo,
		k:        k,
		handlers: make([]Handler, n),
		linkFree: linkFree,
	}
}

// Topology returns the routing geometry the fabric was built with.
func (m *Mesh) Topology() Topology { return m.topo }

// Tiles returns the number of tiles.
func (m *Mesh) Tiles() int { return m.topo.Tiles() }

// Register installs the delivery handler for a tile. It must be called once
// per tile before any Send that targets it.
func (m *Mesh) Register(tile int, h Handler) {
	if m.handlers[tile] != nil {
		panic(fmt.Sprintf("mesh: tile %d registered twice", tile))
	}
	m.handlers[tile] = h
}

// Hops returns the route length in links between two tiles under the
// configured topology.
func (m *Mesh) Hops(src, dst int) int { return m.topo.Hops(src, dst) }

// Send injects a packet of the given flit count from src to dst and
// schedules delivery of payload at the destination handler. It returns the
// number of link hops the packet traverses (0 for same-tile delivery) so
// that callers can account flit-hops.
func (m *Mesh) Send(src, dst, flits int, payload any) int {
	if flits <= 0 {
		panic("mesh: packet with no flits")
	}
	m.packets++
	if src == dst {
		m.deliver(dst, payload, m.k.Now()+m.cfg.LocalLatency)
		return 0
	}
	hops := 0
	t := m.k.Now() // header ready to leave current router
	cur := src
	for cur != dst {
		port, next := m.topo.NextPort(cur, dst)
		start := t
		if free := m.linkFree[cur][port]; free > start {
			start = free
		}
		m.linkFree[cur][port] = start + int64(flits) // serialization
		t = start + m.cfg.LinkLatency                // header at next router
		cur = next
		hops++
	}
	// The tail flit arrives flits-1 cycles after the header.
	m.deliver(dst, payload, t+int64(flits-1))
	m.flitHops += uint64(flits * hops)
	return hops
}

func (m *Mesh) deliver(dst int, payload any, at int64) {
	h := m.handlers[dst]
	if h == nil {
		panic(fmt.Sprintf("mesh: no handler registered for tile %d", dst))
	}
	m.k.At(at, func() { h(payload) })
}

// Packets returns the number of packets injected so far.
func (m *Mesh) Packets() uint64 { return m.packets }

// FlitHops returns total flit-hops carried so far.
func (m *Mesh) FlitHops() uint64 { return m.flitHops }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
