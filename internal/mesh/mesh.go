// Package mesh models an on-chip interconnect with pluggable topologies,
// pluggable router models, per-link serialization, and wormhole-style
// pipelining.
//
// The fabric (Mesh) is topology-agnostic: geometry and routing live behind
// the Topology interface, with three registered implementations — the
// paper's dimension-ordered (XY) mesh, a bidirectional ring, and a 2D
// torus with wraparound links (see topology.go). The default matches the
// network of the paper's Table 4.1: a 4x4 mesh with 16-byte links and a
// 3-cycle per-hop latency. A packet consists of one control flit plus up
// to four 16-byte data flits (at most 64 bytes of data per message).
// Traffic is measured in flit-hops: a packet of f flits that traverses h
// links contributes f*h flit-hops, so per-topology route lengths flow
// directly into the paper's traffic telemetry.
//
// The forwarding model is likewise pluggable (see router.go):
//
//   - Router "ideal" (default): each directed link forwards one flit per
//     cycle and the model reserves links for the full serialization time
//     of a packet at injection, so contention on hot links delays later
//     packets. This is the wormhole approximation the paper's figures are
//     built on (no virtual channels, no credit stalls).
//   - Router "vc": a cycle-level wormhole router with per-port input VCs,
//     credit-based flow control and round-robin VC/switch allocation (see
//     vc.go), which exposes the congestion effects the ideal model hides.
//   - Router "deflection": a cycle-level minimally-buffered router (see
//     deflect.go) that misroutes on contention instead of buffering —
//     oldest-first arbitration, losers deflected onto free ports, a small
//     per-node side buffer — trading buffer cost for extra link
//     traversals, surfaced as the DeflectedHops waste category.
//
// Whatever the model, the fabric records congestion telemetry — a
// packet-latency histogram, per-link utilization, peak buffer occupancy
// (input-VC flits under "vc", injection-plus-side-buffer flits under
// "deflection"), and deflected hops — snapshotted with Stats and zeroed
// with ResetStats at the start of the measured window.
package mesh

import (
	"fmt"
	"math/bits"

	"repro/internal/sim"
)

// Config describes network geometry, link parameters and the router model.
type Config struct {
	Width, Height int    // tiles in X and Y (the ring linearizes them)
	Topology      string // "mesh" (default), "ring", or "torus"
	Router        string // "ideal" (default), "vc", or "deflection"
	VCs           int    // vc router: virtual channels per input port (default 2; must be even >= 2 for the dateline class split)
	VCDepth       int    // vc router: flit buffer depth per VC (default 4)
	LinkLatency   int64  // cycles for a flit to traverse one link
	LocalLatency  int64  // cycles for a same-tile (0-hop) delivery
}

// Handler receives a delivered payload at a tile.
type Handler func(payload any)

// LatencyBins is the number of log2 buckets in the packet-latency
// histogram: bucket 0 counts zero-latency deliveries, bucket b counts
// latencies in [2^(b-1), 2^b), and the last bucket absorbs the tail.
const LatencyBins = 20

// Mesh is the interconnect fabric. Create one with New.
type Mesh struct {
	cfg      Config
	topo     Topology
	k        *sim.Kernel
	handlers []Handler
	r        router

	// Cumulative telemetry (never reset).
	packets  uint64
	flitHops uint64

	// Congestion telemetry, zeroed by ResetStats at measurement start.
	statsStart int64
	delivered  uint64
	latSum     int64
	latMax     int64
	latHist    [LatencyBins]uint64
	linkBusy   [][]int64 // [tile][port] flit-cycles of link occupancy
	peakVC     int       // peak buffering: max flits in any input VC (vc) or node local queue (deflection)
	deflHops   uint64    // deflection router: link traversals beyond the minimal routes

	delFree *delivery // free list of pending-delivery records
}

// delivery is one packet's pending final-delivery event. Records are
// free-listed on the mesh and scheduled with Kernel.AtArg, so steady-state
// delivery traffic allocates nothing.
type delivery struct {
	m       *Mesh
	payload any
	dst     int
	lat     int64
	next    *delivery
}

// runDelivery fires a scheduled delivery: record the packet's latency in
// the measured window, recycle the record, then hand the payload to the
// tile. A package-level function value, so AtArg call sites never build a
// closure.
func runDelivery(a any) {
	d := a.(*delivery)
	m, dst, payload, lat := d.m, d.dst, d.payload, d.lat
	d.payload = nil
	d.next = m.delFree
	m.delFree = d
	m.recordLatency(lat)
	m.handlers[dst](payload)
}

// New creates an interconnect driven by kernel k. Unknown topology or
// router names panic; validate them beforehand with NewTopology /
// ValidRouter (memsys.Config.Validate does) when the names come from user
// input.
func New(k *sim.Kernel, cfg Config) *Mesh {
	topo, err := NewTopology(cfg.Topology, cfg.Width, cfg.Height)
	if err != nil {
		panic(err.Error())
	}
	if cfg.LinkLatency <= 0 {
		cfg.LinkLatency = 1
	}
	if cfg.LocalLatency <= 0 {
		cfg.LocalLatency = 1
	}
	n := topo.Tiles()
	linkBusy := make([][]int64, n)
	for i := range linkBusy {
		linkBusy[i] = make([]int64, topo.Ports())
	}
	m := &Mesh{
		cfg:      cfg,
		topo:     topo,
		k:        k,
		handlers: make([]Handler, n),
		linkBusy: linkBusy,
	}
	ctor, err := newRouterCtor(cfg.Router)
	if err != nil {
		panic(err.Error())
	}
	m.r = ctor(m)
	return m
}

// Topology returns the routing geometry the fabric was built with.
func (m *Mesh) Topology() Topology { return m.topo }

// Router returns the name of the forwarding model in use.
func (m *Mesh) Router() string { return m.r.kind() }

// Tiles returns the number of tiles.
func (m *Mesh) Tiles() int { return m.topo.Tiles() }

// Register installs the delivery handler for a tile. It must be called once
// per tile before any Send that targets it.
func (m *Mesh) Register(tile int, h Handler) {
	if m.handlers[tile] != nil {
		panic(fmt.Sprintf("mesh: tile %d registered twice", tile))
	}
	m.handlers[tile] = h
}

// Hops returns the route length in links between two tiles under the
// configured topology.
func (m *Mesh) Hops(src, dst int) int { return m.topo.Hops(src, dst) }

// Send injects a packet of the given flit count from src to dst and
// schedules delivery of payload at the destination handler. It returns the
// number of link hops the packet traverses (0 for same-tile delivery) so
// that callers can account flit-hops.
func (m *Mesh) Send(src, dst, flits int, payload any) int {
	if flits <= 0 {
		panic("mesh: packet with no flits")
	}
	m.packets++
	if src == dst {
		now := m.k.Now()
		m.complete(dst, payload, now, now+m.cfg.LocalLatency)
		return 0
	}
	hops := m.r.inject(src, dst, flits, payload)
	m.flitHops += uint64(flits * hops)
	return hops
}

// complete schedules the final delivery of a packet and records its
// latency when the delivery event fires, so warm-up deliveries never leak
// into the measured window.
func (m *Mesh) complete(dst int, payload any, injectedAt, at int64) {
	if m.handlers[dst] == nil {
		panic(fmt.Sprintf("mesh: no handler registered for tile %d", dst))
	}
	d := m.delFree
	if d == nil {
		d = &delivery{m: m}
	} else {
		m.delFree = d.next
	}
	d.payload, d.dst, d.lat = payload, dst, at-injectedAt
	m.k.AtArg(at, runDelivery, d)
}

func (m *Mesh) recordLatency(lat int64) {
	m.delivered++
	m.latSum += lat
	if lat > m.latMax {
		m.latMax = lat
	}
	b := bits.Len64(uint64(lat))
	if b >= LatencyBins {
		b = LatencyBins - 1
	}
	m.latHist[b]++
}

// Packets returns the number of packets injected so far.
func (m *Mesh) Packets() uint64 { return m.packets }

// FlitHops returns total flit-hops carried so far.
func (m *Mesh) FlitHops() uint64 { return m.flitHops }

// NetStats is a detached congestion-telemetry snapshot covering the window
// since the last ResetStats.
type NetStats struct {
	Router    string // forwarding model the fabric ran
	Delivered uint64 // packets delivered in the window
	Cycles    int64  // window length in cycles

	LatencyMean float64             // mean injection-to-delivery packet latency
	LatencyMax  int64               // worst packet latency observed
	LatencyHist [LatencyBins]uint64 // log2-bucketed latency histogram

	LinkUtilMean float64 // mean directed-link utilization (flit-cycles/cycle)
	LinkUtilMax  float64 // utilization of the hottest directed link

	// PeakVCOccupancy is the deepest buffering the window saw: the max
	// flits in any input VC under "vc", the max injection-backlog plus
	// side-buffer flits at any node under "deflection" (0 for ideal).
	PeakVCOccupancy int

	// DeflectedHops counts link traversals taken beyond the packets'
	// minimal routes — the deflection router's waste category (buffer
	// cost traded for extra traversals; 0 under "ideal" and "vc").
	DeflectedHops uint64
}

// Stats snapshots the congestion telemetry accumulated since the last
// ResetStats (or since construction).
func (m *Mesh) Stats() NetStats {
	s := NetStats{
		Router:          m.r.kind(),
		Delivered:       m.delivered,
		Cycles:          m.k.Now() - m.statsStart,
		LatencyMax:      m.latMax,
		LatencyHist:     m.latHist,
		PeakVCOccupancy: m.peakVC,
		DeflectedHops:   m.deflHops,
	}
	if m.delivered > 0 {
		s.LatencyMean = float64(m.latSum) / float64(m.delivered)
	}
	if s.Cycles > 0 {
		links := m.topo.Links()
		var sum float64
		for _, l := range links {
			u := float64(m.linkBusy[l.From][l.Port]) / float64(s.Cycles)
			sum += u
			if u > s.LinkUtilMax {
				s.LinkUtilMax = u
			}
		}
		if len(links) > 0 {
			s.LinkUtilMean = sum / float64(len(links))
		}
	}
	return s
}

// ResetStats zeroes the congestion telemetry and restarts its measurement
// window at the current cycle. The cumulative Packets/FlitHops counters
// are unaffected.
func (m *Mesh) ResetStats() {
	m.statsStart = m.k.Now()
	m.delivered, m.latSum, m.latMax = 0, 0, 0
	m.latHist = [LatencyBins]uint64{}
	for i := range m.linkBusy {
		for j := range m.linkBusy[i] {
			m.linkBusy[i][j] = 0
		}
	}
	m.peakVC = 0
	m.deflHops = 0
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
