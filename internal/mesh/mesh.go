// Package mesh models an on-chip mesh interconnect with dimension-ordered
// (XY) routing, per-link serialization, and wormhole-style pipelining.
//
// The model matches the network of the paper's Table 4.1: a 4x4 mesh with
// 16-byte links and a 3-cycle per-hop latency. A packet consists of one
// control flit plus up to four 16-byte data flits (at most 64 bytes of data
// per message). Traffic is measured in flit-hops: a packet of f flits that
// traverses h links contributes f*h flit-hops.
//
// Each directed link forwards one flit per cycle; the model reserves links
// for the full serialization time of a packet, so contention on hot links
// delays later packets. This is a wormhole approximation (no virtual
// channels, no credit stalls), which is sufficient for the flit-hop and
// queuing behaviour studied in the paper.
package mesh

import (
	"fmt"

	"repro/internal/sim"
)

// Config describes mesh geometry and link parameters.
type Config struct {
	Width, Height int   // tiles in X and Y
	LinkLatency   int64 // cycles for a flit to traverse one link
	LocalLatency  int64 // cycles for a same-tile (0-hop) delivery
}

// Handler receives a delivered payload at a tile.
type Handler func(payload any)

// Mesh is the interconnect. Create one with New.
type Mesh struct {
	cfg      Config
	k        *sim.Kernel
	handlers []Handler
	// linkFree[t][d] is the cycle at which tile t's outgoing link in
	// direction d becomes free. Directions: 0=+X(E) 1=-X(W) 2=+Y(S) 3=-Y(N).
	linkFree [][4]int64

	// Telemetry.
	packets  uint64
	flitHops uint64
}

// New creates a mesh driven by kernel k.
func New(k *sim.Kernel, cfg Config) *Mesh {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic("mesh: non-positive dimensions")
	}
	if cfg.LinkLatency <= 0 {
		cfg.LinkLatency = 1
	}
	if cfg.LocalLatency <= 0 {
		cfg.LocalLatency = 1
	}
	n := cfg.Width * cfg.Height
	return &Mesh{
		cfg:      cfg,
		k:        k,
		handlers: make([]Handler, n),
		linkFree: make([][4]int64, n),
	}
}

// Tiles returns the number of tiles.
func (m *Mesh) Tiles() int { return m.cfg.Width * m.cfg.Height }

// Register installs the delivery handler for a tile. It must be called once
// per tile before any Send that targets it.
func (m *Mesh) Register(tile int, h Handler) {
	if m.handlers[tile] != nil {
		panic(fmt.Sprintf("mesh: tile %d registered twice", tile))
	}
	m.handlers[tile] = h
}

// Coord returns the (x, y) coordinate of a tile id.
func (m *Mesh) Coord(tile int) (x, y int) { return tile % m.cfg.Width, tile / m.cfg.Width }

// Hops returns the XY-route length in links between two tiles.
func (m *Mesh) Hops(src, dst int) int {
	sx, sy := m.Coord(src)
	dx, dy := m.Coord(dst)
	return abs(dx-sx) + abs(dy-sy)
}

// Send injects a packet of the given flit count from src to dst and
// schedules delivery of payload at the destination handler. It returns the
// number of link hops the packet traverses (0 for same-tile delivery) so
// that callers can account flit-hops.
func (m *Mesh) Send(src, dst, flits int, payload any) int {
	if flits <= 0 {
		panic("mesh: packet with no flits")
	}
	m.packets++
	if src == dst {
		m.deliver(dst, payload, m.k.Now()+m.cfg.LocalLatency)
		return 0
	}
	hops := 0
	t := m.k.Now() // header ready to leave current router
	x, y := m.Coord(src)
	dx, dy := m.Coord(dst)
	cur := src
	for cur != dst {
		var dir int
		switch {
		case x < dx:
			dir, x = 0, x+1
		case x > dx:
			dir, x = 1, x-1
		case y < dy:
			dir, y = 2, y+1
		default:
			dir, y = 3, y-1
		}
		start := t
		if free := m.linkFree[cur][dir]; free > start {
			start = free
		}
		m.linkFree[cur][dir] = start + int64(flits) // serialization
		t = start + m.cfg.LinkLatency               // header at next router
		cur = y*m.cfg.Width + x
		hops++
	}
	// The tail flit arrives flits-1 cycles after the header.
	m.deliver(dst, payload, t+int64(flits-1))
	m.flitHops += uint64(flits * hops)
	return hops
}

func (m *Mesh) deliver(dst int, payload any, at int64) {
	h := m.handlers[dst]
	if h == nil {
		panic(fmt.Sprintf("mesh: no handler registered for tile %d", dst))
	}
	m.k.At(at, func() { h(payload) })
}

// Packets returns the number of packets injected so far.
func (m *Mesh) Packets() uint64 { return m.packets }

// FlitHops returns total flit-hops carried so far.
func (m *Mesh) FlitHops() uint64 { return m.flitHops }

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
