package mesh

import (
	"testing"

	"repro/internal/sim"
)

// checkDeflConservation is the white-box no-drop/no-duplicate audit the
// deflection property and fuzz tests run after every kernel step: every
// live flit record sits in exactly one place (a link arrival ring, an
// injection queue, or a side buffer), per-node staged counts and the
// active-node bitmask agree with the structures, and each ring's arrival
// stamps are strictly increasing (at most one flit enters a link per
// cycle — the per-tick output-port assignment was a permutation).
func checkDeflConservation(t *testing.T, r *deflRouter) {
	t.Helper()
	total := 0
	for n := range r.nodes {
		nd := &r.nodes[n]
		staged := 0
		for p := range nd.rings {
			ring := &nd.rings[p]
			prev := int64(-1)
			for i := 0; i < ring.n; i++ {
				slot := &ring.s[(ring.head+i)%len(ring.s)]
				if slot.f == nil {
					t.Fatalf("node %d port %d: nil flit in ring slot %d", n, p, i)
				}
				if slot.at <= prev {
					t.Fatalf("node %d port %d: ring stamps not strictly increasing (%d after %d) — two flits on one link in one cycle", n, p, slot.at, prev)
				}
				prev = slot.at
			}
			staged += ring.n
		}
		for i := nd.injHead; i < len(nd.injQ); i++ {
			if nd.injQ[i] == nil {
				t.Fatalf("node %d: nil flit in live injection queue", n)
			}
		}
		for _, f := range nd.sideQ {
			if f == nil {
				t.Fatalf("node %d: nil flit in side buffer", n)
			}
		}
		staged += nd.localLen()
		if staged != nd.staged {
			t.Fatalf("node %d: staged = %d but %d flits present", n, nd.staged, staged)
		}
		bit := r.activeMask[n>>6]>>uint(n&63)&1 == 1
		if bit != (nd.staged > 0) {
			t.Fatalf("node %d: activeMask bit %v but staged = %d", n, bit, nd.staged)
		}
		total += staged
	}
	if total != r.flits {
		t.Fatalf("%d flit records on the network, router accounts %d (drop or duplicate)", total, r.flits)
	}
}

// checkDeflDrained asserts a fully drained network: no live flits, no
// in-flight packets, no active bits.
func checkDeflDrained(t *testing.T, r *deflRouter) {
	t.Helper()
	if r.flits != 0 || r.inFlight != 0 {
		t.Fatalf("drained network still accounts %d flits / %d packets", r.flits, r.inFlight)
	}
	for w, word := range r.activeMask {
		if word != 0 {
			t.Fatalf("drained network still has active bits in word %d: %#x", w, word)
		}
	}
}

// An uncontended flit pays one arbitration cycle at injection plus
// LinkLatency per hop — the same formula as the vc router, so latencies
// are directly comparable across the two cycle-level models.
func TestDeflectionUncontendedSingleFlitLatency(t *testing.T) {
	k, m, delivered := newRouterTest(t, "deflection", "mesh", 4, 4)
	m.Send(0, 15, 1, nil) // 6 hops
	k.Run()
	if *delivered != 1 {
		t.Fatal("not delivered")
	}
	s := m.Stats()
	if s.LatencyMax != 6*3+1 {
		t.Fatalf("deflection 1-flit latency = %d, want 19", s.LatencyMax)
	}
	if s.DeflectedHops != 0 {
		t.Fatalf("uncontended flit deflected %d hops", s.DeflectedHops)
	}
}

// Multi-flit packets inject one flit per cycle and eject one per cycle:
// hops*L + flits, matching the vc pipeline formula.
func TestDeflectionUncontendedMultiFlitLatency(t *testing.T) {
	k, m, _ := newRouterTest(t, "deflection", "mesh", 4, 4)
	m.Send(0, 2, 4, "a") // 2 hops, 4 flits
	k.Run()
	if got := m.Stats().LatencyMax; got != 2*3+4 {
		t.Fatalf("deflection 4-flit 2-hop latency = %d, want 10", got)
	}
}

// The deflection router is deterministic: identical injection sequences
// yield identical delivery times, latencies and telemetry (deflected
// hops included) on every topology.
func TestDeflectionSendDeterministicPerTopology(t *testing.T) {
	for _, kind := range TopologyKinds() {
		run := func() (int64, NetStats) {
			k, m, _ := newRouterTest(t, "deflection", kind, 4, 4)
			for i := 0; i < 40; i++ {
				m.Send(i%16, (i*7+3)%16, 1+i%5, nil)
			}
			k.Run()
			return k.Now(), m.Stats()
		}
		t1, s1 := run()
		t2, s2 := run()
		if t1 != t2 || s1 != s2 {
			t.Fatalf("%s: nondeterministic deflection delivery: %d/%d %+v %+v", kind, t1, t2, s1, s2)
		}
	}
}

// All-to-all traffic drains on every topology — oldest-first priority is
// the livelock-freedom argument (the globally oldest flit always wins its
// arbitration, so it advances productively every cycle it is staged).
// Every packet completes, no faster than its minimal route allows, and
// after the drain the traversal ledger balances: actual link traversals
// equal the minimal flit-hops charged at injection plus the deflected
// hops reported as waste.
func TestDeflectionAllToAllDrainsEveryTopology(t *testing.T) {
	for _, kind := range TopologyKinds() {
		k, m, delivered := newRouterTest(t, "deflection", kind, 4, 4)
		r := m.r.(*deflRouter)
		want := 0
		for s := 0; s < 16; s++ {
			for d := 0; d < 16; d++ {
				if s == d {
					continue
				}
				m.Send(s, d, 5, nil)
				want++
			}
		}
		if steps := k.RunLimit(5_000_000); steps == 5_000_000 {
			t.Fatalf("%s: deflection network livelocked", kind)
		}
		if *delivered != want {
			t.Fatalf("%s: delivered %d of %d packets", kind, *delivered, want)
		}
		checkDeflDrained(t, r)
		s := m.Stats()
		var traversals uint64
		for _, l := range m.Topology().Links() {
			traversals += uint64(m.linkBusy[l.From][l.Port])
		}
		if traversals != m.FlitHops()+s.DeflectedHops {
			t.Fatalf("%s: %d link traversals, want minimal %d + deflected %d",
				kind, traversals, m.FlitHops(), s.DeflectedHops)
		}
		if kind == "mesh" && s.DeflectedHops == 0 {
			t.Errorf("mesh all-to-all saw no deflections; contention model suspect")
		}
	}
}

// Per-packet minimality: a packet can never be delivered before its
// minimal route allows (injection + hops*L + flits). The payload carries
// the bound and the handler checks it against the kernel clock.
func TestDeflectionDeliveryNeverBeatsMinimalRoute(t *testing.T) {
	for _, kind := range TopologyKinds() {
		k := &sim.Kernel{}
		m := New(k, Config{Width: 4, Height: 4, Topology: kind, Router: "deflection",
			LinkLatency: 3, LocalLatency: 1})
		for tile := 0; tile < m.Tiles(); tile++ {
			m.Register(tile, func(p any) {
				if minAt := p.(int64); k.Now() < minAt {
					t.Fatalf("%s: delivery at %d beats minimal-route bound %d", kind, k.Now(), minAt)
				}
			})
		}
		for i := 0; i < 60; i++ {
			s, d, flits := i%16, (i*11+5)%16, 1+i%5
			if s == d {
				continue
			}
			m.Send(s, d, flits, k.Now()+int64(m.Hops(s, d))*3+int64(flits))
		}
		k.Run()
	}
}

// Starvation: a saturating hotspot cannot livelock a crossing flow. The
// cross packet is injected while the hotspot traffic is already in
// flight, so it is strictly the youngest traffic on the fabric — and it
// still delivers within the age-priority bound: every older flit
// advances productively each cycle it is staged, so once the older
// traffic drains the cross packet's own minimal route is all that
// remains. The bound is loose but finite: a constant factor over the
// older flits' ejection-serialized drain time plus the cross route.
func TestDeflectionHotspotCannotStarveCrossFlow(t *testing.T) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: 4, Height: 4, Topology: "mesh", Router: "deflection",
		LinkLatency: 3, LocalLatency: 1})
	crossAt := int64(-1)
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(p any) {
			if s, ok := p.(string); ok && s == "cross" {
				crossAt = k.Now()
			}
		})
	}
	olderFlits := 0
	for round := 0; round < 12; round++ {
		for src := 1; src < 16; src++ {
			m.Send(src, 0, 5, nil)
			olderFlits += 5
		}
	}
	k.At(40, func() { m.Send(3, 12, 1, "cross") })
	if steps := k.RunLimit(2_000_000); steps == 2_000_000 {
		t.Fatal("hotspot traffic never drained (livelock)")
	}
	if crossAt < 0 {
		t.Fatal("cross packet starved: hotspot drained but it was never delivered")
	}
	bound := 40 + int64(olderFlits)*8 + int64(m.Hops(3, 12))*3 + 1
	if crossAt > bound {
		t.Fatalf("cross packet delivered at %d, beyond age-priority bound %d", crossAt, bound)
	}
}

// Point-to-point ordering: packets between one (src, dst) pair must
// deliver in injection order even when deflections reorder their flits
// on the fabric — the endpoint reorder buffer is what lets the coherence
// protocols run unchanged on the deflection router. The hotspot cross
// traffic makes detours (and therefore out-of-order ejections) likely.
func TestDeflectionDeliveryInOrderPerPair(t *testing.T) {
	k := &sim.Kernel{}
	m := New(k, Config{Width: 4, Height: 4, Topology: "mesh", Router: "deflection",
		LinkLatency: 3, LocalLatency: 1})
	lastSeq := make([]int, m.Tiles()) // per source, at the one destination
	for tile := 0; tile < m.Tiles(); tile++ {
		m.Register(tile, func(p any) {
			if p == nil {
				return
			}
			v := p.([2]int)
			src, seq := v[0], v[1]
			if seq != lastSeq[src]+1 {
				t.Fatalf("packet %d from tile %d delivered after %d", seq, src, lastSeq[src])
			}
			lastSeq[src] = seq
		})
	}
	for round := 1; round <= 10; round++ {
		for src := 1; src < 16; src++ {
			m.Send(src, 0, 1+(src+round)%5, [2]int{src, round})
			// Background cross traffic to force deflections on the way.
			m.Send((src+5)%16, (src*3)%16, 2, nil)
		}
	}
	if steps := k.RunLimit(2_000_000); steps == 2_000_000 {
		t.Fatal("network did not drain")
	}
	for src := 1; src < 16; src++ {
		if lastSeq[src] != 10 {
			t.Fatalf("tile %d delivered %d of 10 ordered packets", src, lastSeq[src])
		}
	}
}

// A saturating hotspot must both deflect (contention at the hot tile's
// inbound ports) and report strictly higher mean latency than the ideal
// reservation model — congestion is visible, not hidden.
func TestDeflectionHotspotTelemetry(t *testing.T) {
	ideal := hotspotMeanLatency(t, "ideal")
	defl := hotspotMeanLatency(t, "deflection")
	if !(defl > ideal) {
		t.Fatalf("deflection mean latency %.2f not strictly above ideal %.2f", defl, ideal)
	}
	k, m, _ := newRouterTest(t, "deflection", "mesh", 4, 4)
	for round := 0; round < 8; round++ {
		for src := 1; src < 16; src++ {
			m.Send(src, 0, 5, nil)
		}
	}
	k.Run()
	s := m.Stats()
	if s.Router != "deflection" {
		t.Fatalf("stats router = %q", s.Router)
	}
	if s.DeflectedHops == 0 {
		t.Fatal("saturating hotspot produced zero deflected hops")
	}
	if s.PeakVCOccupancy <= 0 {
		t.Fatalf("peak local-queue occupancy %d; injection backlog must register", s.PeakVCOccupancy)
	}
	if s.LinkUtilMax <= s.LinkUtilMean || s.LinkUtilMax > 1 {
		t.Fatalf("link utilization mean %.3f max %.3f implausible", s.LinkUtilMean, s.LinkUtilMax)
	}
	var histTotal uint64
	for _, c := range s.LatencyHist {
		histTotal += c
	}
	if histTotal != s.Delivered {
		t.Fatalf("latency histogram counts %d packets, delivered %d", histTotal, s.Delivered)
	}
}
