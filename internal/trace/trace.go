// Package trace records workload memory-op streams to a compact binary
// format and replays them as memsys.Programs, opening the workload axis to
// captured external traces alongside the ported benchmarks and synthetic
// patterns.
//
// A trace captures everything the simulator contract needs — thread count,
// footprint, region table, phase structure with per-phase written-region
// sets, and every (phase, thread) op stream — so a replayed trace drives
// any protocol bit-identically to the program it was recorded from.
//
// The file format (magic "RTRC", version 1) is varint-packed: op addresses
// are delta-encoded per stream and the op kind rides in the low two bits
// of a single varint per op, which keeps traces a few bytes per op. Every
// structural field is bounds-checked on load, so a truncated or corrupt
// file is a loud error, never a half-replayed workload.
package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/memsys"
)

const (
	magic   = "RTRC"
	version = 1
)

// maxTraceSide bounds decoded structural counts (threads, phases, regions)
// against corrupt length fields allocating unbounded memory.
const maxTraceSide = 1 << 20

// Trace is a fully captured workload: the program contract, materialized.
type Trace struct {
	Name      string
	Threads   int
	Footprint uint32
	Warmup    int
	Regions   []memsys.Region
	Written   [][]uint8       // per phase: region ids written
	Ops       [][][]memsys.Op // [phase][thread]
}

// Phases returns the recorded phase count.
func (t *Trace) Phases() int { return len(t.Ops) }

// TotalOps returns the number of recorded operations across all streams.
func (t *Trace) TotalOps() int {
	n := 0
	for _, phase := range t.Ops {
		for _, stream := range phase {
			n += len(stream)
		}
	}
	return n
}

// Equal reports whether two traces are bit-identical: same contract fields
// and the same op streams, op for op.
func (t *Trace) Equal(o *Trace) bool {
	if t.Name != o.Name || t.Threads != o.Threads || t.Footprint != o.Footprint ||
		t.Warmup != o.Warmup || len(t.Regions) != len(o.Regions) ||
		len(t.Written) != len(o.Written) || len(t.Ops) != len(o.Ops) {
		return false
	}
	for i := range t.Regions {
		a, b := t.Regions[i], o.Regions[i]
		if a.ID != b.ID || a.Name != b.Name || a.Base != b.Base || a.Size != b.Size ||
			a.StrideWords != b.StrideWords || a.Bypass != b.Bypass ||
			len(a.CommOffsets) != len(b.CommOffsets) {
			return false
		}
		for j := range a.CommOffsets {
			if a.CommOffsets[j] != b.CommOffsets[j] {
				return false
			}
		}
	}
	for p := range t.Written {
		if len(t.Written[p]) != len(o.Written[p]) {
			return false
		}
		for i := range t.Written[p] {
			if t.Written[p][i] != o.Written[p][i] {
				return false
			}
		}
	}
	for p := range t.Ops {
		if len(t.Ops[p]) != len(o.Ops[p]) {
			return false
		}
		for th := range t.Ops[p] {
			if len(t.Ops[p][th]) != len(o.Ops[p][th]) {
				return false
			}
			for i := range t.Ops[p][th] {
				if t.Ops[p][th][i] != o.Ops[p][th][i] {
					return false
				}
			}
		}
	}
	return true
}

// Record captures a program's complete op streams by direct enumeration.
// EmitOps is pure over state frozen at construction, so the result is
// bit-identical to what any simulation of the program drives.
func Record(p memsys.Program) *Trace {
	t := &Trace{
		Name:      p.Name(),
		Threads:   p.Threads(),
		Footprint: p.FootprintBytes(),
		Warmup:    p.WarmupPhases(),
		Regions:   append([]memsys.Region(nil), p.Regions()...),
	}
	phases := p.Phases()
	t.Written = make([][]uint8, phases)
	t.Ops = make([][][]memsys.Op, phases)
	for ph := 0; ph < phases; ph++ {
		t.Written[ph] = append([]uint8(nil), p.WrittenRegions(ph)...)
		t.Ops[ph] = make([][]memsys.Op, t.Threads)
		for th := 0; th < t.Threads; th++ {
			var ops []memsys.Op
			p.EmitOps(ph, th, func(o memsys.Op) { ops = append(ops, o) })
			t.Ops[ph][th] = ops
		}
	}
	return t
}

// Recorder wraps a Program and captures each (phase, thread) stream the
// first time the simulator pulls it, so a live run records its own
// workload as a side effect. It implements memsys.Program and forwards
// ops unchanged; captures are mutex-guarded because the engine shares one
// program across concurrent cells.
type Recorder struct {
	prog memsys.Program

	mu  sync.Mutex
	ops [][][]memsys.Op
	got [][]bool
}

// NewRecorder wraps a program for live capture.
func NewRecorder(p memsys.Program) *Recorder {
	phases := p.Phases()
	r := &Recorder{
		prog: p,
		ops:  make([][][]memsys.Op, phases),
		got:  make([][]bool, phases),
	}
	for ph := range r.ops {
		r.ops[ph] = make([][]memsys.Op, p.Threads())
		r.got[ph] = make([]bool, p.Threads())
	}
	return r
}

// Name implements memsys.Program.
func (r *Recorder) Name() string { return r.prog.Name() }

// Threads implements memsys.Program.
func (r *Recorder) Threads() int { return r.prog.Threads() }

// FootprintBytes implements memsys.Program.
func (r *Recorder) FootprintBytes() uint32 { return r.prog.FootprintBytes() }

// Regions implements memsys.Program.
func (r *Recorder) Regions() []memsys.Region { return r.prog.Regions() }

// Phases implements memsys.Program.
func (r *Recorder) Phases() int { return r.prog.Phases() }

// WarmupPhases implements memsys.Program.
func (r *Recorder) WarmupPhases() int { return r.prog.WarmupPhases() }

// WrittenRegions implements memsys.Program.
func (r *Recorder) WrittenRegions(p int) []uint8 { return r.prog.WrittenRegions(p) }

// EmitOps implements memsys.Program, teeing the stream into the capture
// buffer on first pull.
func (r *Recorder) EmitOps(p, t int, emit func(memsys.Op)) {
	r.mu.Lock()
	captured := r.got[p][t]
	r.mu.Unlock()
	if captured {
		r.prog.EmitOps(p, t, emit)
		return
	}
	var buf []memsys.Op
	r.prog.EmitOps(p, t, func(o memsys.Op) {
		buf = append(buf, o)
		emit(o)
	})
	r.mu.Lock()
	if !r.got[p][t] {
		r.got[p][t] = true
		r.ops[p][t] = buf
	}
	r.mu.Unlock()
}

// Trace materializes the capture. Streams the simulation never pulled
// (e.g. when recording was cut short) are filled by direct enumeration,
// which is bit-identical because EmitOps is pure.
func (r *Recorder) Trace() *Trace {
	t := Record(r.prog)
	r.mu.Lock()
	defer r.mu.Unlock()
	for ph := range r.got {
		for th := range r.got[ph] {
			if r.got[ph][th] {
				t.Ops[ph][th] = r.ops[ph][th]
			}
		}
	}
	return t
}

// program replays a Trace through the memsys.Program contract.
type program struct {
	t    *Trace
	name string
}

// NewProgram wraps a trace as a runnable Program. A non-empty name
// overrides the recorded one (the workload registry passes the canonical
// replay spec so matrix keys stay consistent).
func NewProgram(t *Trace, name string) memsys.Program {
	if name == "" {
		name = t.Name
	}
	return &program{t: t, name: name}
}

// Name implements memsys.Program.
func (p *program) Name() string { return p.name }

// Threads implements memsys.Program.
func (p *program) Threads() int { return p.t.Threads }

// FootprintBytes implements memsys.Program.
func (p *program) FootprintBytes() uint32 { return p.t.Footprint }

// Regions implements memsys.Program.
func (p *program) Regions() []memsys.Region { return p.t.Regions }

// Phases implements memsys.Program.
func (p *program) Phases() int { return p.t.Phases() }

// WarmupPhases implements memsys.Program.
func (p *program) WarmupPhases() int { return p.t.Warmup }

// WrittenRegions implements memsys.Program.
func (p *program) WrittenRegions(ph int) []uint8 { return p.t.Written[ph] }

// EmitOps implements memsys.Program: replay the recorded stream verbatim.
func (p *program) EmitOps(ph, th int, emit func(memsys.Op)) {
	for _, op := range p.t.Ops[ph][th] {
		emit(op)
	}
}

// zigzag folds a signed delta into an unsigned varint payload.
func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

type writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (w *writer) uvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.w.Write(w.buf[:n])
}

func (w *writer) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

// Write serializes a trace.
func Write(out io.Writer, t *Trace) error {
	w := &writer{w: bufio.NewWriter(out)}
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	w.uvarint(version)
	w.str(t.Name)
	w.uvarint(uint64(t.Threads))
	w.uvarint(uint64(t.Footprint))
	w.uvarint(uint64(t.Warmup))
	w.uvarint(uint64(len(t.Regions)))
	for _, r := range t.Regions {
		w.uvarint(uint64(r.ID))
		w.str(r.Name)
		w.uvarint(uint64(r.Base))
		w.uvarint(uint64(r.Size))
		w.uvarint(uint64(r.StrideWords))
		w.uvarint(uint64(len(r.CommOffsets)))
		for _, o := range r.CommOffsets {
			w.uvarint(uint64(o))
		}
		b := uint64(0)
		if r.Bypass {
			b = 1
		}
		w.uvarint(b)
	}
	w.uvarint(uint64(len(t.Ops)))
	for ph := range t.Ops {
		w.uvarint(uint64(len(t.Written[ph])))
		for _, id := range t.Written[ph] {
			w.uvarint(uint64(id))
		}
		for th := range t.Ops[ph] {
			stream := t.Ops[ph][th]
			w.uvarint(uint64(len(stream)))
			prev := int64(0)
			for _, op := range stream {
				switch op.Kind {
				case memsys.OpLoad, memsys.OpStore:
					delta := int64(op.Addr) - prev
					prev = int64(op.Addr)
					w.uvarint(zigzag(delta)<<2 | uint64(op.Kind))
				case memsys.OpCompute:
					w.uvarint(uint64(op.Cycles)<<2 | uint64(memsys.OpCompute))
				default:
					return fmt.Errorf("trace: unencodable op kind %d", op.Kind)
				}
			}
		}
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

type reader struct {
	r *bufio.Reader
}

func (r *reader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(r.r)
	if err != nil {
		return 0, fmt.Errorf("trace: truncated %s: %w", what, err)
	}
	return v, nil
}

func (r *reader) count(what string, max uint64) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("trace: corrupt %s count %d (max %d)", what, v, max)
	}
	return int(v), nil
}

func (r *reader) str(what string) (string, error) {
	n, err := r.count(what+" length", maxTraceSide)
	if err != nil {
		return "", err
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		return "", fmt.Errorf("trace: truncated %s: %w", what, err)
	}
	return string(b), nil
}

// Read deserializes a trace, validating structure as it goes.
func Read(in io.Reader) (*Trace, error) {
	r := &reader{r: bufio.NewReader(in)}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r.r, head); err != nil {
		return nil, fmt.Errorf("trace: not a trace file: %w", err)
	}
	if !bytes.Equal(head, []byte(magic)) {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", head, magic)
	}
	ver, err := r.uvarint("version")
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d (have %d)", ver, version)
	}
	t := &Trace{}
	if t.Name, err = r.str("name"); err != nil {
		return nil, err
	}
	if t.Threads, err = r.count("threads", maxTraceSide); err != nil {
		return nil, err
	}
	if t.Threads == 0 {
		return nil, fmt.Errorf("trace: zero threads")
	}
	fp, err := r.uvarint("footprint")
	if err != nil {
		return nil, err
	}
	if fp > 1<<32-1 {
		return nil, fmt.Errorf("trace: corrupt footprint %d", fp)
	}
	t.Footprint = uint32(fp)
	if t.Warmup, err = r.count("warmup", maxTraceSide); err != nil {
		return nil, err
	}
	nRegions, err := r.count("region", maxTraceSide)
	if err != nil {
		return nil, err
	}
	t.Regions = make([]memsys.Region, nRegions)
	for i := range t.Regions {
		reg := &t.Regions[i]
		id, err := r.count("region id", 255)
		if err != nil {
			return nil, err
		}
		reg.ID = uint8(id)
		if reg.Name, err = r.str("region name"); err != nil {
			return nil, err
		}
		base, err := r.uvarint("region base")
		if err != nil {
			return nil, err
		}
		size, err := r.uvarint("region size")
		if err != nil {
			return nil, err
		}
		// size is checked against the remaining span (not base+size, which
		// can wrap in uint64 and slip a truncated Size past validation).
		if base > uint64(t.Footprint) || size > uint64(t.Footprint)-base {
			return nil, fmt.Errorf("trace: region %q [%d, %d) outside footprint %d",
				reg.Name, base, base+size, t.Footprint)
		}
		reg.Base, reg.Size = uint32(base), uint32(size)
		stride, err := r.count("region stride", 1<<16-1)
		if err != nil {
			return nil, err
		}
		reg.StrideWords = uint16(stride)
		nComm, err := r.count("comm offset", maxTraceSide)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nComm; j++ {
			off, err := r.count("comm offset", 1<<16-1)
			if err != nil {
				return nil, err
			}
			reg.CommOffsets = append(reg.CommOffsets, uint16(off))
		}
		byp, err := r.count("bypass flag", 1)
		if err != nil {
			return nil, err
		}
		reg.Bypass = byp == 1
	}
	phases, err := r.count("phase", maxTraceSide)
	if err != nil {
		return nil, err
	}
	if t.Warmup >= phases {
		return nil, fmt.Errorf("trace: warmup %d >= phases %d", t.Warmup, phases)
	}
	t.Written = make([][]uint8, phases)
	t.Ops = make([][][]memsys.Op, phases)
	for ph := 0; ph < phases; ph++ {
		nw, err := r.count("written region", 255)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nw; i++ {
			id, err := r.count("written region id", 255)
			if err != nil {
				return nil, err
			}
			t.Written[ph] = append(t.Written[ph], uint8(id))
		}
		t.Ops[ph] = make([][]memsys.Op, t.Threads)
		for th := 0; th < t.Threads; th++ {
			n, err := r.count("op", 1<<31-1)
			if err != nil {
				return nil, err
			}
			// Cap the preallocation: a corrupt count must not reserve
			// gigabytes before the (missing) op data fails to parse.
			capHint := n
			if capHint > 1<<16 {
				capHint = 1 << 16
			}
			stream := make([]memsys.Op, 0, capHint)
			prev := int64(0)
			for i := 0; i < n; i++ {
				v, err := r.uvarint("op")
				if err != nil {
					return nil, err
				}
				kind := memsys.OpKind(v & 3)
				switch kind {
				case memsys.OpLoad, memsys.OpStore:
					addr := prev + unzigzag(v>>2)
					if addr < 0 || addr >= int64(t.Footprint) {
						return nil, fmt.Errorf("trace: phase %d thread %d op %d: address %#x outside footprint %#x",
							ph, th, i, addr, t.Footprint)
					}
					prev = addr
					stream = append(stream, memsys.Op{Kind: kind, Addr: uint32(addr)})
				case memsys.OpCompute:
					cycles := v >> 2
					if cycles > 1<<16-1 {
						return nil, fmt.Errorf("trace: phase %d thread %d op %d: corrupt compute cycles %d", ph, th, i, cycles)
					}
					stream = append(stream, memsys.Op{Kind: memsys.OpCompute, Cycles: uint16(cycles)})
				default:
					return nil, fmt.Errorf("trace: phase %d thread %d op %d: unknown kind %d", ph, th, i, kind)
				}
			}
			t.Ops[ph][th] = stream
		}
	}
	return t, nil
}

// WriteFile serializes a trace to a file.
func WriteFile(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a trace from a file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}
