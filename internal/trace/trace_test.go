package trace_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func collect(p memsys.Program, ph, th int) []memsys.Op {
	var ops []memsys.Op
	p.EmitOps(ph, th, func(o memsys.Op) { ops = append(ops, o) })
	return ops
}

// Every registry workload must survive a record -> serialize -> parse ->
// replay round trip bit-identically: the trace equals itself after the
// format, and the replayed program emits the original op streams.
func TestRoundTripEveryRegistryWorkload(t *testing.T) {
	for _, spec := range workloads.RegistryWorkloads() {
		spec := spec
		t.Run(spec, func(t *testing.T) {
			prog := workloads.MustByName(spec, workloads.Tiny, 16)
			tr := trace.Record(prog)
			var buf bytes.Buffer
			if err := trace.Write(&buf, tr); err != nil {
				t.Fatal(err)
			}
			got, err := trace.Read(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !tr.Equal(got) {
				t.Fatal("trace drifted across serialize/parse")
			}
			replayed := trace.NewProgram(got, "")
			if replayed.Name() != prog.Name() || replayed.Threads() != prog.Threads() ||
				replayed.FootprintBytes() != prog.FootprintBytes() ||
				replayed.Phases() != prog.Phases() || replayed.WarmupPhases() != prog.WarmupPhases() {
				t.Fatal("replayed contract fields drifted")
			}
			for ph := 0; ph < prog.Phases(); ph++ {
				for th := 0; th < prog.Threads(); th++ {
					want, have := collect(prog, ph, th), collect(replayed, ph, th)
					if len(want) != len(have) {
						t.Fatalf("phase %d thread %d: %d ops replayed, want %d", ph, th, len(have), len(want))
					}
					for i := range want {
						if want[i] != have[i] {
							t.Fatalf("phase %d thread %d op %d drifted", ph, th, i)
						}
					}
				}
			}
		})
	}
}

// The recording wrapper must capture, during a real simulation, exactly
// the stream direct enumeration records — the record -> replay golden pin.
func TestRecorderLiveCaptureMatchesDirectRecord(t *testing.T) {
	prog := workloads.MustByName("FFT", workloads.Tiny, 16)
	rec := trace.NewRecorder(prog)
	cfg := memsys.Default().Scaled(workloads.Tiny.ScaleDiv())
	if _, err := core.RunOne(cfg, "MESI", rec); err != nil {
		t.Fatal(err)
	}
	if !rec.Trace().Equal(trace.Record(prog)) {
		t.Fatal("live capture differs from direct enumeration")
	}
}

// A replayed trace must drive a protocol to the same measurement as the
// program it was recorded from (only the benchmark label may differ).
func TestReplayedRunBitIdentical(t *testing.T) {
	prog := workloads.MustByName("radix", workloads.Tiny, 16)
	path := filepath.Join(t.TempDir(), "radix.trc")
	if err := trace.WriteFile(path, trace.Record(prog)); err != nil {
		t.Fatal(err)
	}
	replayed := workloads.MustByName("replay(file="+path+")", workloads.Tiny, 16)
	cfg := memsys.Default().Scaled(workloads.Tiny.ScaleDiv())
	want, err := core.RunOne(cfg, "DBypFull", prog)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.RunOne(cfg, "DBypFull", replayed)
	if err != nil {
		t.Fatal(err)
	}
	got.Benchmark = want.Benchmark // the replay spec label, by design
	if *want != *got {
		t.Fatalf("replayed run drifted from the recorded program:\nwant %+v\ngot  %+v", want, got)
	}
}

// Corrupt and truncated files must fail loudly at parse time, never
// half-replay.
func TestCorruptTracesRejected(t *testing.T) {
	prog := workloads.MustByName("neighbor", workloads.Tiny, 4)
	var buf bytes.Buffer
	if err := trace.Write(&buf, trace.Record(prog)); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := trace.Read(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
	bad := append([]byte("XXXX"), raw[4:]...)
	if _, err := trace.Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	for _, cut := range []int{5, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		if _, err := trace.Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncation at %d bytes accepted", cut)
		}
	}
}

// The replay spec itself must error loudly on missing or unreadable
// files instead of handing the engine a nil program.
func TestReplaySpecErrors(t *testing.T) {
	if _, err := workloads.ByName("replay", workloads.Tiny, 16); err == nil {
		t.Error("replay without a file accepted")
	}
	if _, err := workloads.ByName("replay(file=/nonexistent/x.trc)", workloads.Tiny, 16); err == nil {
		t.Error("replay of a missing file accepted")
	}
}
