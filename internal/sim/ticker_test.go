package sim

import (
	"math/rand"
	"testing"
)

func TestTickerFiresNextCycle(t *testing.T) {
	var k Kernel
	var fired []int64
	k.SetTicker(func() {
		fired = append(fired, k.Now())
		if k.Now() < 3 {
			k.TickNext()
		}
	})
	if k.TickArmed() {
		t.Fatal("tick armed before TickNext")
	}
	k.TickNext()
	if !k.TickArmed() {
		t.Fatal("tick not armed after TickNext")
	}
	k.Run()
	want := []int64{1, 2, 3}
	if len(fired) != len(want) {
		t.Fatalf("tick fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("tick fired at %v, want %v", fired, want)
		}
	}
	if k.TickArmed() {
		t.Fatal("tick still armed after drain")
	}
}

func TestSetTickerTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second SetTicker did not panic")
		}
	}()
	var k Kernel
	k.SetTicker(func() {})
	k.SetTicker(func() {})
}

func TestTickNextWithoutTickerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TickNext without SetTicker did not panic")
		}
	}()
	var k Kernel
	k.TickNext()
}

func TestTickNextWhileArmedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double arm did not panic")
		}
	}()
	var k Kernel
	k.SetTicker(func() {})
	k.TickNext()
	k.TickNext()
}

// TickSkipTo must not jump past a pending heap event: that event may change
// what the tick can do (in the simulator, injecting a packet).
func TestTickSkipToClampsToHeapEvent(t *testing.T) {
	var k Kernel
	var tickAt []int64
	k.SetTicker(func() {
		tickAt = append(tickAt, k.Now())
		if k.Now() < 100 {
			k.TickSkipTo(100)
		}
	})
	evtAt := int64(-1)
	k.At(40, func() { evtAt = k.Now() })
	k.TickSkipTo(100)
	k.Run()
	if evtAt != 40 {
		t.Fatalf("event fired at %d, want 40", evtAt)
	}
	// The tick is pulled to the event's cycle, re-skips, then lands at 100.
	want := []int64{40, 100}
	if len(tickAt) != len(want) || tickAt[0] != want[0] || tickAt[1] != want[1] {
		t.Fatalf("tick fired at %v, want %v", tickAt, want)
	}
	if k.Clamped() != 0 {
		t.Fatalf("Clamped = %d, want 0", k.Clamped())
	}
}

// Skipping to the past is a caller bug and must be counted like At's clamp,
// with the tick landing on the next cycle so time still moves forward.
func TestTickSkipToPastClamped(t *testing.T) {
	var k Kernel
	var tickAt []int64
	k.SetTicker(func() {
		tickAt = append(tickAt, k.Now())
		if len(tickAt) == 1 {
			k.TickSkipTo(k.Now() - 3)
		}
	})
	k.At(10, func() {})
	k.TickSkipTo(10)
	k.Run()
	if len(tickAt) != 2 || tickAt[0] != 10 || tickAt[1] != 11 {
		t.Fatalf("tick fired at %v, want [10 11]", tickAt)
	}
	if k.Clamped() != 1 {
		t.Fatalf("Clamped = %d, want 1", k.Clamped())
	}
}

// RunUntil must execute an armed tick that falls inside the window, leave
// one beyond the window armed, and still advance the clock to t exactly.
func TestRunUntilWithArmedTick(t *testing.T) {
	var k Kernel
	var tickAt []int64
	k.SetTicker(func() {
		tickAt = append(tickAt, k.Now())
		k.TickSkipTo(k.Now() + 50)
	})
	k.TickSkipTo(10)
	k.RunUntil(30)
	if len(tickAt) != 1 || tickAt[0] != 10 {
		t.Fatalf("tick fired at %v inside RunUntil(30), want [10]", tickAt)
	}
	if k.Now() != 30 {
		t.Fatalf("Now = %d after RunUntil(30), want 30", k.Now())
	}
	if !k.TickArmed() {
		t.Fatal("tick beyond the window must stay armed")
	}
	if at, ok := k.NextEventAt(); !ok || at != 60 {
		t.Fatalf("NextEventAt = %d,%v, want 60,true", at, ok)
	}
	k.RunUntil(60)
	if len(tickAt) != 2 || tickAt[1] != 60 {
		t.Fatalf("tick fired at %v, want second firing at 60", tickAt)
	}
}

// RunLimit is the driver's livelock watchdog: recurring-slot ticks must
// count against the budget exactly like heap events, or a spinning router
// could starve the watchdog forever.
func TestRunLimitCountsSlotTicks(t *testing.T) {
	var k Kernel
	ticks := 0
	k.SetTicker(func() {
		ticks++
		k.TickNext() // spin forever, like a deadlocked vc network
	})
	k.TickNext()
	if n := k.RunLimit(50); n != 50 {
		t.Fatalf("RunLimit ran %d, want 50", n)
	}
	if ticks != 50 {
		t.Fatalf("ticker fired %d times, want 50", ticks)
	}
	if !k.TickArmed() {
		t.Fatal("tick must remain armed after the watchdog cuts it off")
	}
}

func TestNextEventAt(t *testing.T) {
	var k Kernel
	if _, ok := k.NextEventAt(); ok {
		t.Fatal("NextEventAt on empty kernel reported an event")
	}
	k.At(7, func() {})
	if at, ok := k.NextEventAt(); !ok || at != 7 {
		t.Fatalf("NextEventAt = %d,%v, want 7,true", at, ok)
	}
	k.SetTicker(func() {})
	k.TickSkipTo(3)
	if at, ok := k.NextEventAt(); !ok || at != 3 {
		t.Fatalf("NextEventAt = %d,%v, want 3,true (armed tick is earlier)", at, ok)
	}
}

// The exactness contract of the recurring-tick slot: a slot ticker that
// skips provably idle cycles with TickSkipTo must produce the exact global
// event order of a reference ticker that re-arms every cycle with
// After(1, tick) — including every equal-timestamp interleaving with heap
// events, and with events scheduling further events mid-run.
func TestSlotOrderingMatchesPerCycleChain(t *testing.T) {
	const horizon = 400
	// "Work" cycles are the ones where the tick does something observable;
	// on all other cycles the tick is a no-op, which is what licenses the
	// slot version to skip them.
	work := func(c int64) bool { return c%7 == 0 || c%5 == 3 }
	nextWork := func(c int64) int64 {
		for t := c + 1; ; t++ {
			if work(t) {
				return t
			}
		}
	}

	run := func(slot bool) []int64 {
		var k Kernel
		var log []int64 // tick firings: +cycle; event firings: -(id+1)
		rng := rand.New(rand.NewSource(99))
		var tick func()
		tick = func() {
			now := k.Now()
			if work(now) {
				log = append(log, now)
			}
			if now >= horizon {
				return
			}
			if slot {
				if nw := nextWork(now); nw <= horizon {
					k.TickSkipTo(nw)
				}
				// No work cycle left inside the horizon: the chain would
				// only tick no-ops from here, so the slot stops.
			} else {
				k.After(1, tick)
			}
		}
		id := 0
		var spawn func(depth int)
		spawn = func(depth int) {
			me := int64(id)
			id++
			k.At(k.Now()+int64(rng.Intn(25)), func() {
				log = append(log, -(me + 1))
				if depth < 3 {
					spawn(depth + 1)
					spawn(depth + 1)
				}
			})
		}
		for i := 0; i < 12; i++ {
			spawn(0)
		}
		if slot {
			k.SetTicker(tick)
			k.TickNext()
		} else {
			k.After(1, tick)
		}
		k.Run()
		return log
	}

	chain, slot := run(false), run(true)
	if len(chain) != len(slot) {
		t.Fatalf("event counts differ: chain %d, slot %d", len(chain), len(slot))
	}
	for i := range chain {
		if chain[i] != slot[i] {
			t.Fatalf("order diverges at %d: chain %v, slot %v", i, chain[i], slot[i])
		}
	}
}

// noop is a package-level event body so scheduling benches measure the
// queue, not closure allocation.
func noop() {}

func noopArg(any) {}

// BenchmarkEventPushPop measures raw heap traffic: 64 out-of-order pushes
// followed by 64 pops per iteration.
func BenchmarkEventPushPop(b *testing.B) {
	var k Kernel
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := k.Now()
		for j := 0; j < 64; j++ {
			k.At(base+int64((j*37)%64), noop)
		}
		for j := 0; j < 64; j++ {
			k.Step()
		}
	}
}

// BenchmarkRecurringTickSlot measures the dedicated slot: one tick per
// cycle with TickNext re-arming, no heap traffic at all.
func BenchmarkRecurringTickSlot(b *testing.B) {
	var k Kernel
	b.ReportAllocs()
	n := 0
	k.SetTicker(func() {
		n++
		if n < b.N {
			k.TickNext()
		}
	})
	k.TickNext()
	k.Run()
}

// BenchmarkRecurringTickChain is the pre-slot baseline: a per-cycle ticker
// that re-arms through the heap with After(1, ...), paying a push+pop and a
// closure per cycle.
func BenchmarkRecurringTickChain(b *testing.B) {
	var k Kernel
	b.ReportAllocs()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(1, tick)
		}
	}
	k.After(1, tick)
	k.Run()
}

// BenchmarkRunUntil measures windowed draining over a sparse schedule, the
// driver's inner loop during sweeps.
func BenchmarkRunUntil(b *testing.B) {
	var k Kernel
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k.AtArg(k.Now()+int64(i%128), noopArg, nil)
		if k.Pending() >= 1024 {
			k.RunUntil(k.Now() + 256)
		}
	}
	k.Run()
}
