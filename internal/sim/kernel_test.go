package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyKernel(t *testing.T) {
	var k Kernel
	if k.Step() {
		t.Fatal("Step on empty kernel returned true")
	}
	if k.Now() != 0 {
		t.Fatalf("Now = %d, want 0", k.Now())
	}
	k.Run() // must not hang
}

func TestOrdering(t *testing.T) {
	var k Kernel
	var got []int64
	for _, at := range []int64{30, 10, 20} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	k.Run()
	want := []int64{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestFIFOAtSameCycle(t *testing.T) {
	var k Kernel
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events not FIFO: pos %d = %d", i, got[i])
		}
	}
}

func TestAfterRelative(t *testing.T) {
	var k Kernel
	var fired int64 = -1
	k.At(10, func() {
		k.After(5, func() { fired = k.Now() })
	})
	k.Run()
	if fired != 15 {
		t.Fatalf("After fired at %d, want 15", fired)
	}
}

func TestPastSchedulingClamped(t *testing.T) {
	var k Kernel
	var fired int64 = -1
	k.At(10, func() {
		k.At(3, func() { fired = k.Now() }) // in the past: clamps to now
	})
	k.Run()
	if fired != 10 {
		t.Fatalf("past event fired at %d, want clamp to 10", fired)
	}
	if k.Clamped() != 1 {
		t.Fatalf("Clamped = %d, want 1: past scheduling must be counted, not silent", k.Clamped())
	}
}

// Regression for the silent-clamp bug: well-behaved schedules (present and
// future timestamps only, including t == now) must never bump the counter.
func TestClampedZeroForValidSchedules(t *testing.T) {
	var k Kernel
	k.At(5, func() {
		k.At(k.Now(), func() {}) // t == now is legal, not a clamp
		k.After(0, func() {})
		k.After(7, func() {})
	})
	k.Run()
	if k.Clamped() != 0 {
		t.Fatalf("Clamped = %d, want 0 for a valid schedule", k.Clamped())
	}
}

func TestRunUntil(t *testing.T) {
	var k Kernel
	count := 0
	for _, at := range []int64{5, 10, 15, 20} {
		k.At(at, func() { count++ })
	}
	k.RunUntil(12)
	if count != 2 {
		t.Fatalf("RunUntil(12) ran %d events, want 2", count)
	}
	if k.Now() != 12 {
		t.Fatalf("Now = %d, want 12", k.Now())
	}
	k.Run()
	if count != 4 {
		t.Fatalf("after Run, count = %d, want 4", count)
	}
}

func TestRunLimit(t *testing.T) {
	var k Kernel
	for i := 0; i < 10; i++ {
		k.At(int64(i), func() {})
	}
	if n := k.RunLimit(4); n != 4 {
		t.Fatalf("RunLimit ran %d, want 4", n)
	}
	if k.Pending() != 6 {
		t.Fatalf("Pending = %d, want 6", k.Pending())
	}
}

func TestSteps(t *testing.T) {
	var k Kernel
	k.At(1, func() {})
	k.At(2, func() {})
	k.Run()
	if k.Steps() != 2 {
		t.Fatalf("Steps = %d, want 2", k.Steps())
	}
}

// Property: events fire in nondecreasing timestamp order, and equal
// timestamps fire in insertion order, for random schedules.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint8) bool {
		var k Kernel
		type rec struct {
			at  int64
			ins int
		}
		var fired []rec
		for i, ti := range times {
			at, ins := int64(ti), i
			k.At(at, func() { fired = append(fired, rec{at, ins}) })
		}
		k.Run()
		if len(fired) != len(times) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].ins < fired[j].ins
		})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving At calls from within running events preserves
// global time ordering (time never goes backwards).
func TestTimeMonotonicProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var k Kernel
	last := int64(-1)
	ok := true
	var spawn func(depth int)
	spawn = func(depth int) {
		if k.Now() < last {
			ok = false
		}
		last = k.Now()
		if depth < 4 {
			for i := 0; i < 3; i++ {
				k.After(int64(rng.Intn(20)), func() { spawn(depth + 1) })
			}
		}
	}
	k.At(0, func() { spawn(0) })
	k.Run()
	if !ok {
		t.Fatal("time went backwards")
	}
}

func BenchmarkKernelSchedule(b *testing.B) {
	var k Kernel
	for i := 0; i < b.N; i++ {
		k.After(int64(i%64), func() {})
		if k.Pending() > 1024 {
			for k.Pending() > 0 {
				k.Step()
			}
		}
	}
	k.Run()
}
