// Package sim provides a deterministic discrete-event simulation kernel.
//
// All simulator components (caches, network links, memory controllers,
// cores) schedule closures on a single Kernel. Events with equal timestamps
// fire in scheduling order, which makes every simulation run fully
// deterministic for a given input.
//
// The event queue is a hand-rolled 4-ary min-heap over a flat []event
// slice: no container/heap interface boxing (which allocated on every
// Push/Pop), and sift paths touch one cache line per level. Components on
// allocation-free hot paths schedule with AtArg, which carries a
// pointer-sized argument instead of forcing a closure per event.
//
// A component that needs to run every cycle (the vc router's network tick)
// registers itself once with SetTicker and re-arms with TickNext or
// TickSkipTo. The recurring tick lives in a dedicated slot beside the
// heap, so the most frequent event in the simulator costs O(1) integer
// updates per cycle instead of a heap push+pop — and TickSkipTo can elide
// provably idle cycles entirely while preserving the exact equal-timestamp
// ordering of the per-cycle schedule (see the seq accounting below).
package sim

// event is a callback scheduled to run at a simulated cycle. Exactly one
// of fn and fna is set; fna receives arg, so hot paths can reuse a
// package-level function value plus a free-listed argument instead of
// allocating a closure.
type event struct {
	at  int64
	seq uint64
	fn  func()
	fna func(any)
	arg any
}

// Kernel is a discrete-event scheduler. The zero value is ready to use.
type Kernel struct {
	pq      []event
	now     int64
	seq     uint64
	steps   uint64
	clamped uint64

	// The dedicated recurring-tick slot (SetTicker / TickNext /
	// TickSkipTo). tickSeq orders the slot against heap events with the
	// same timestamp through the shared seq counter, so slot scheduling is
	// indistinguishable from an equivalent heap schedule.
	tickFn    func()
	tickAt    int64
	tickSeq   uint64
	tickArmed bool
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() int64 { return k.now }

// Steps returns the number of events executed so far (recurring-slot ticks
// included; cycles elided by TickSkipTo are not, since nothing ran).
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of events waiting to run, counting an armed
// recurring tick.
func (k *Kernel) Pending() int {
	n := len(k.pq)
	if k.tickArmed {
		n++
	}
	return n
}

// At schedules fn to run at absolute cycle t. Scheduling in the past is an
// error in component logic; the kernel clamps it to "now" so that a bug
// cannot move time backwards, and counts the clamp so the error cannot
// hide — Clamped is surfaced in the driver's debug stats and asserted
// zero by the regression suite.
func (k *Kernel) At(t int64, fn func()) {
	if t < k.now {
		t = k.now
		k.clamped++
	}
	k.push(event{at: t, seq: k.seq, fn: fn})
	k.seq++
}

// AtArg schedules fn(arg) at absolute cycle t. It is the allocation-free
// form of At: fn is typically a package-level function value and arg a
// pointer from a caller-owned free list, so scheduling builds no closure.
// Past timestamps clamp and count exactly as in At.
func (k *Kernel) AtArg(t int64, fn func(any), arg any) {
	if t < k.now {
		t = k.now
		k.clamped++
	}
	k.push(event{at: t, seq: k.seq, fna: fn, arg: arg})
	k.seq++
}

// Clamped returns how many events were scheduled in the past and clamped
// to "now". Any nonzero value marks a component-logic bug.
func (k *Kernel) Clamped() uint64 { return k.clamped }

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d int64, fn func()) { k.At(k.now+d, fn) }

// SetTicker registers fn as the kernel's dedicated recurring-tick
// callback. Only one component per kernel may own the slot (in this
// simulator, the vc router's network tick); registering twice panics.
// The ticker is armed with TickNext or TickSkipTo and fires like any
// other event, interleaved with heap events by (cycle, sequence) order.
func (k *Kernel) SetTicker(fn func()) {
	if k.tickFn != nil {
		panic("sim: SetTicker called twice; the kernel has one recurring-tick slot")
	}
	k.tickFn = fn
}

// TickArmed reports whether the recurring tick is scheduled.
func (k *Kernel) TickArmed() bool { return k.tickArmed }

// TickNext arms the recurring tick for the next cycle. It is equivalent to
// After(1, ticker) — it consumes one sequence number, so equal-timestamp
// ordering against other events is identical — but costs O(1) with no
// heap traffic and no allocation.
func (k *Kernel) TickNext() {
	if k.tickFn == nil {
		panic("sim: TickNext without SetTicker")
	}
	if k.tickArmed {
		panic("sim: recurring tick armed twice")
	}
	k.tickAt = k.now + 1
	k.tickSeq = k.seq
	k.seq++
	k.tickArmed = true
}

// TickSkipTo arms the recurring tick for cycle t, skipping the cycles in
// between. The caller asserts that a tick on any elided cycle would be a
// no-op (the vc router proves this from its arrival/credit horizon); the
// kernel additionally clamps t to the next pending heap event, since that
// event may invalidate the caller's proof (e.g. by injecting a packet).
//
// Ordering is exact, not approximate: a per-cycle ticker that re-arms with
// After(1, tick) consumes one sequence number per cycle, and events
// scheduled at a cycle always order against that cycle's tick through
// those numbers. TickSkipTo therefore consumes one sequence number per
// elided cycle and gives the armed tick the sequence number its
// chain-scheduled ancestor would have had, so every equal-timestamp
// comparison resolves exactly as under per-cycle re-arming.
func (k *Kernel) TickSkipTo(t int64) {
	if k.tickFn == nil {
		panic("sim: TickSkipTo without SetTicker")
	}
	if k.tickArmed {
		panic("sim: recurring tick armed twice")
	}
	u := t
	if len(k.pq) > 0 && k.pq[0].at < u {
		u = k.pq[0].at // a pending event may change what the tick can do
	}
	if u <= k.now {
		if t <= k.now {
			k.clamped++ // skipping to the past is a caller bug, like At
		}
		u = k.now + 1
	}
	d := uint64(u - k.now)       // cycles the chain would have re-armed across
	k.tickSeq = k.seq + d - 1    // the seq the arm at cycle u-1 would draw
	k.seq += d
	k.tickAt = u
	k.tickArmed = true
}

// NextEventAt returns the cycle of the earliest pending event (heap or
// armed recurring tick), so drivers can see the next wakeup. ok is false
// when nothing is scheduled.
func (k *Kernel) NextEventAt() (int64, bool) {
	if k.tickArmed {
		if len(k.pq) == 0 || !k.heapBeforeTick() {
			return k.tickAt, true
		}
		return k.pq[0].at, true
	}
	if len(k.pq) == 0 {
		return 0, false
	}
	return k.pq[0].at, true
}

// heapBeforeTick reports whether the heap root fires before the armed
// tick; both must exist.
func (k *Kernel) heapBeforeTick() bool {
	r := &k.pq[0]
	if r.at != k.tickAt {
		return r.at < k.tickAt
	}
	return r.seq < k.tickSeq
}

// Step runs the earliest pending event and returns false if none remain.
func (k *Kernel) Step() bool {
	if k.tickArmed && (len(k.pq) == 0 || !k.heapBeforeTick()) {
		k.now = k.tickAt
		k.tickArmed = false
		k.steps++
		k.tickFn()
		return true
	}
	if len(k.pq) == 0 {
		return false
	}
	e := k.pop()
	k.now = e.at
	k.steps++
	if e.fn != nil {
		e.fn()
	} else {
		e.fna(e.arg)
	}
	return true
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t. An armed recurring tick beyond t stays armed.
func (k *Kernel) RunUntil(t int64) {
	for {
		at, ok := k.NextEventAt()
		if !ok || at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunLimit executes at most n events; it returns the number executed. It is
// used by tests and the core driver as a watchdog against livelock;
// recurring-slot ticks count like any other event.
func (k *Kernel) RunLimit(n uint64) uint64 {
	var i uint64
	for ; i < n; i++ {
		if !k.Step() {
			break
		}
	}
	return i
}

// The event queue: a 4-ary min-heap ordered by (at, seq) on a flat slice.
// Four children per node halve the tree depth of the binary layout, and
// sift loops compare siblings within one or two cache lines — the classic
// d-ary trade of slightly more comparisons for far fewer cache misses.

const heapArity = 4

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (k *Kernel) push(e event) {
	k.pq = append(k.pq, e)
	i := len(k.pq) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !eventLess(&k.pq[i], &k.pq[p]) {
			break
		}
		k.pq[i], k.pq[p] = k.pq[p], k.pq[i]
		i = p
	}
}

func (k *Kernel) pop() event {
	root := k.pq[0]
	n := len(k.pq) - 1
	k.pq[0] = k.pq[n]
	k.pq[n] = event{} // release fn/arg references
	k.pq = k.pq[:n]
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&k.pq[c], &k.pq[min]) {
				min = c
			}
		}
		if !eventLess(&k.pq[min], &k.pq[i]) {
			break
		}
		k.pq[i], k.pq[min] = k.pq[min], k.pq[i]
		i = min
	}
	return root
}
