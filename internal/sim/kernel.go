// Package sim provides a deterministic discrete-event simulation kernel.
//
// All simulator components (caches, network links, memory controllers,
// cores) schedule closures on a single Kernel. Events with equal timestamps
// fire in scheduling order, which makes every simulation run fully
// deterministic for a given input.
package sim

import "container/heap"

// Event is a closure scheduled to run at a simulated cycle.
type event struct {
	at  int64
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() (int64, bool) { // earliest timestamp
	if len(h) == 0 {
		return 0, false
	}
	return h[0].at, true
}

// Kernel is a discrete-event scheduler. The zero value is ready to use.
type Kernel struct {
	pq      eventHeap
	now     int64
	seq     uint64
	steps   uint64
	clamped uint64
}

// Now returns the current simulated cycle.
func (k *Kernel) Now() int64 { return k.now }

// Steps returns the number of events executed so far.
func (k *Kernel) Steps() uint64 { return k.steps }

// Pending returns the number of events waiting to run.
func (k *Kernel) Pending() int { return len(k.pq) }

// At schedules fn to run at absolute cycle t. Scheduling in the past is an
// error in component logic; the kernel clamps it to "now" so that a bug
// cannot move time backwards, and counts the clamp so the error cannot
// hide — Clamped is surfaced in the driver's debug stats and asserted
// zero by the regression suite.
func (k *Kernel) At(t int64, fn func()) {
	if t < k.now {
		t = k.now
		k.clamped++
	}
	heap.Push(&k.pq, event{at: t, seq: k.seq, fn: fn})
	k.seq++
}

// Clamped returns how many events were scheduled in the past and clamped
// to "now". Any nonzero value marks a component-logic bug.
func (k *Kernel) Clamped() uint64 { return k.clamped }

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d int64, fn func()) { k.At(k.now+d, fn) }

// Step runs the earliest pending event and returns false if none remain.
func (k *Kernel) Step() bool {
	if len(k.pq) == 0 {
		return false
	}
	e := heap.Pop(&k.pq).(event)
	k.now = e.at
	k.steps++
	e.fn()
	return true
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock to t.
func (k *Kernel) RunUntil(t int64) {
	for {
		at, ok := k.pq.peek()
		if !ok || at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// RunLimit executes at most n events; it returns the number executed. It is
// used by tests as a watchdog against livelock.
func (k *Kernel) RunLimit(n uint64) uint64 {
	var i uint64
	for ; i < n; i++ {
		if !k.Step() {
			break
		}
	}
	return i
}
