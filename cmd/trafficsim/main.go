// Command trafficsim reruns the paper's experiments and prints its figure
// tables: the protocol x benchmark traffic/time/waste matrices of Figures
// 5.1a-d, 5.2 and 5.3a-c, plus the headline paper-vs-measured summary.
//
// Protocols are resolved through the composable registry: canonical paper
// names (MESI ... DBypFull) or base+Option specs such as DeNovo+BypL2 or
// DFlexL1+BypFull. Benchmarks are workload-registry specs: the paper's six
// ported benchmarks, synthetic traffic patterns with optional parameters
// (uniform, transpose, bitcomp, hotspot, neighbor, prodcons), or recorded
// traces (see cmd/papertables for both inventories).
//
// Examples:
//
//	trafficsim -fig 5.1a -size small
//	trafficsim -fig all -size tiny -benchmarks FFT,radix
//	trafficsim -summary -size small
//	trafficsim -fig 5.2 -protocols MESI,MMemL1,DBypFull
//	trafficsim -fig 5.1a -protocols MESI,DeNovo,DeNovo+BypL2,DFlexL1+BypFull
//	trafficsim -fig 5.1a -topology torus -workers 8
//	trafficsim -fig net -router vc -size tiny -benchmarks FFT
//	trafficsim -fig net -router vc -benchmarks 'uniform(p=0.1),hotspot(t=2),transpose'
//	trafficsim -record /tmp/fft.trc -benchmarks FFT -size tiny
//	trafficsim -fig 5.1a -benchmarks 'replay(file=/tmp/fft.trc)'
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	fig := flag.String("fig", "", "figure to print: 5.1a 5.1b 5.1c 5.1d 5.2 5.3a 5.3b 5.3c net, or 'all'")
	summary := flag.Bool("summary", false, "print the headline paper-vs-measured averages")
	sizeName := flag.String("size", "tiny", "input scale: tiny, small, paper (caches scale with inputs; see DESIGN.md)")
	protoCSV := flag.String("protocols", "", "comma-separated protocol specs: canonical names or base+Option compositions, e.g. MESI,DeNovo+BypL2 (default: the paper's nine)")
	benchCSV := flag.String("benchmarks", "", "comma-separated workload specs: benchmark names, synthetic patterns like uniform(p=0.1) or hotspot(t=2), or replay(file=x.trc) (default: the paper's six)")
	record := flag.String("record", "", "record the single workload in -benchmarks to this trace file and exit (run it later with replay(file=...))")
	threads := flag.Int("threads", 16, "worker threads (= cores used)")
	topology := flag.String("topology", "mesh", "NoC topology: mesh, ring, torus")
	router := flag.String("router", "ideal", "router model: ideal (injection-time reservation), vc (cycle-level VC wormhole)")
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per CPU, 1 = serial)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *fig == "" && !*summary && *record == "" {
		*fig = "all"
		*summary = true
	}

	var size workloads.Size
	switch *sizeName {
	case "tiny":
		size = workloads.Tiny
	case "small":
		size = workloads.Small
	case "paper":
		size = workloads.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *sizeName)
		os.Exit(2)
	}

	// Fail fast on unknown figure ids and workload specs, before paying
	// for any simulation.
	ids := []string{*fig}
	if *fig == "all" {
		ids = core.FigureIDs()
	}
	if *fig != "" {
		for _, id := range ids {
			if err := core.ValidFigureID(id); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	benchmarks := splitSpecs(*benchCSV)
	for _, spec := range benchmarks {
		if _, err := workloads.ParseSpec(spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *record != "" {
		if len(benchmarks) != 1 {
			fmt.Fprintln(os.Stderr, "-record needs exactly one workload in -benchmarks")
			os.Exit(2)
		}
		prog, err := workloads.ByName(benchmarks[0], size, *threads)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr := trace.Record(prog)
		if err := trace.WriteFile(*record, tr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("recorded %s (%s scale, %d threads, %d phases, %d ops) to %s\n",
			prog.Name(), size, prog.Threads(), tr.Phases(), tr.TotalOps(), *record)
		fmt.Printf("replay with: -benchmarks 'replay(file=%s)'\n", *record)
		return
	}

	opt := core.MatrixOptions{Size: size, Threads: *threads, Topology: *topology, Router: *router, Workers: *workers}
	if *protoCSV != "" {
		opt.Protocols = splitCSV(*protoCSV)
	}
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}
	if !*quiet {
		opt.Progress = func(b, p string) { fmt.Fprintf(os.Stderr, "running %s / %s...\n", b, p) }
	}

	m, err := core.RunMatrix(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if m.Topology != "mesh" || m.Router != "ideal" {
		fmt.Printf("NoC topology: %s, router: %s\n\n", m.Topology, m.Router)
	}

	if *fig != "" {
		for _, id := range ids {
			t, err := m.Figure(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(t)
		}
	}
	if *summary {
		fmt.Println(m.Summarize())
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitSpecs splits a comma-separated workload-spec list, keeping commas
// inside parameter lists intact: "hotspot(t=2,p=0.1),FFT" is two specs.
func splitSpecs(s string) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if p := strings.TrimSpace(s[start:end]); p != "" {
			out = append(out, p)
		}
	}
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(len(s))
	return out
}
