// Command trafficsim reruns the paper's experiments and prints its figure
// tables: the protocol x benchmark traffic/time/waste matrices of Figures
// 5.1a-d, 5.2 and 5.3a-c, the congestion telemetry table, the headline
// paper-vs-measured summary, and — with -sweep — assembled load-latency /
// waste-vs-load curve tables over a third parameter axis.
//
// Protocols are resolved through the composable registry: canonical paper
// names (MESI ... DBypFull) or base+Option specs such as DeNovo+BypL2 or
// DFlexL1+BypFull. Benchmarks are workload-registry specs: the paper's six
// ported benchmarks, synthetic traffic patterns with optional parameters
// (uniform, transpose, bitcomp, hotspot, neighbor, prodcons), or recorded
// traces. Sweeps are "axis=value,value,..." over an engine axis (topology,
// router, mesh, vcs, vcdepth, threads, protocol) or "family(key=lo..hi)"
// over a workload parameter (see cmd/papertables for all inventories, and
// docs/GUIDE.md for a walkthrough).
//
// The command is a flag-parsing shim over internal/job: flags become a
// job.Request, job.Run executes it, and the renderers here turn the
// unified event stream back into the exact progress lines and tables this
// tool has always printed.
//
// Examples:
//
//	trafficsim -fig 5.1a -size small
//	trafficsim -fig all -size tiny -benchmarks FFT,radix
//	trafficsim -summary -size small
//	trafficsim -fig 5.2 -protocols MESI,MMemL1,DBypFull
//	trafficsim -fig 5.1a -protocols MESI,DeNovo,DeNovo+BypL2,DFlexL1+BypFull
//	trafficsim -fig 5.1a -topology torus -workers 8
//	trafficsim -fig net -router vc -size tiny -benchmarks FFT
//	trafficsim -fig net -router vc -mesh 8x8 -benchmarks 'hotspot(t=2)'
//	trafficsim -sweep mesh=4x4,8x8,16x16 -router vc -benchmarks 'hotspot(t=2)'
//	trafficsim -fig net -router vc -benchmarks 'uniform(p=0.1),hotspot(t=2),transpose'
//	trafficsim -record /tmp/fft.trc -benchmarks FFT -size tiny
//	trafficsim -fig 5.1a -benchmarks 'replay(file=/tmp/fft.trc)'
//	trafficsim -sweep 'hotspot(t=1..16)' -size tiny -protocols MESI,DeNovo,DBypFull
//	trafficsim -sweep 'uniform(p=0.01..0.09..0.02)' -router vc
//	trafficsim -sweep topology=mesh,ring,torus -benchmarks FFT
//	trafficsim -sweep 'hotspot(t=1..16)' -cachedir /tmp/points   # persists each point
//	trafficsim -sweep 'hotspot(t=1..16)' -cachedir /tmp/points -resume
//	trafficsim -sweep 'uniform(p=0.001..0.1..0.0002)' -maxpoints 500 -cachedir /tmp/points
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/mesh"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() { os.Exit(run()) }

// The -help text enumerates valid names from the registries themselves, so
// it can never drift from what the parsers accept (the hand-maintained
// lists had already gone stale once).
//
// run carries main's body with a real return code so the profiling defers
// execute — os.Exit skips deferred functions, and a silently truncated
// CPU profile is exactly the kind of quiet failure this tool refuses.
func run() (code int) {
	fig := flag.String("fig", "", "figure to print: "+strings.Join(core.FigureIDs(), " ")+", or 'all'")
	summary := flag.Bool("summary", false, "print the headline paper-vs-measured averages")
	sizeName := flag.String("size", "tiny", "input scale: tiny, small, paper (caches scale with inputs; see DESIGN.md)")
	protoCSV := flag.String("protocols", "", "comma-separated protocol specs: canonical names ("+
		strings.Join(core.ProtocolNames(), ", ")+", DBypHW) or base+Option compositions with options "+
		optionTokens()+" (default: the paper's nine)")
	benchCSV := flag.String("benchmarks", "", "comma-separated workload specs, name(key=value,...) over: "+
		strings.Join(workloads.SpecNames(), ", ")+" (default: the paper's six)")
	sweep := flag.String("sweep", "", "sweep one axis and print the assembled curve table: 'axis=v1,v2,...' over "+
		strings.Join(core.SweepAxisNames(), "|")+", or a workload parameter range like 'hotspot(t=1..16)'")
	cachedir := flag.String("cachedir", "", "content-addressed sweep-point cache directory: completed points persist here as the sweep runs, and points already present (from any earlier sweep) are served without simulating")
	resume := flag.Bool("resume", false, "resume an interrupted sweep from -cachedir (rerun the same sweep command; finished points load from the cache)")
	maxpoints := flag.Int("maxpoints", core.DefaultSweepPointCap, "sweep expansion cap; a sweep that expands past it is an error (raise deliberately for large sweeps, ideally with -cachedir)")
	record := flag.String("record", "", "record the single workload in -benchmarks to this trace file and exit (run it later with replay(file=...))")
	threads := flag.Int("threads", 16, "worker threads (= cores used)")
	meshDims := flag.String("mesh", "4x4", "tile-grid dimensions WxH (e.g. "+
		strings.Join(core.MeshPresets(), ", ")+"); tiles, corner MC placement and Bloom banks follow, and -threads must not exceed the tile count")
	topology := flag.String("topology", "mesh", "NoC topology: "+strings.Join(mesh.TopologyKinds(), ", "))
	router := flag.String("router", "ideal", "router model: "+routerHelp())
	vcs := flag.Int("vcs", 0, "vc router: virtual channels per input port (0 = model default; even, >= 2)")
	vcdepth := flag.Int("vcdepth", 0, "vc router: flit buffer depth per VC (0 = model default)")
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per CPU, 1 = serial)")
	quiet := flag.Bool("q", false, "suppress progress output")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile, taken at exit, to this file")
	flag.Parse()

	if *fig == "" && !*summary && *record == "" && *sweep == "" {
		*fig = "all"
		*summary = true
	}
	if *record != "" && (*sweep != "" || *fig != "" || *summary) {
		fmt.Fprintln(os.Stderr, "-record only records a trace; drop -sweep/-fig/-summary (replay the trace in a later run)")
		return 2
	}
	if *resume && *cachedir == "" {
		fmt.Fprintln(os.Stderr, "-resume loads finished points from the point cache; add -cachedir (the same one the interrupted run used)")
		return 2
	}
	if *maxpoints < 1 {
		fmt.Fprintf(os.Stderr, "-maxpoints %d: the sweep cap must be >= 1 (default %d)\n", *maxpoints, core.DefaultSweepPointCap)
		return 2
	}
	explicit := job.Explicit(flag.CommandLine)
	if *sweep == "" {
		for _, name := range []string{"cachedir", "resume", "maxpoints"} {
			if explicit[name] {
				fmt.Fprintf(os.Stderr, "-%s configures sweep runs and is dead without one; add -sweep\n", name)
				return 2
			}
		}
	}

	// Only pin the axis knobs the user actually passed: the engine applies
	// the same defaults (mesh, ideal, 16 threads) to zero-valued Request
	// fields, and a sweep over an axis must be able to tell "defaulted"
	// from "explicit" — sweeping topology with an explicit -topology is a
	// conflict error, sweeping it against the default is the normal case.
	req := job.Request{
		Summary:    *summary,
		Size:       *sizeName,
		Benchmarks: job.SplitSpecs(*benchCSV),
		Protocols:  job.SplitList(*protoCSV),
		Sweep:      *sweep,
		VCs:        *vcs,
		VCDepth:    *vcdepth,
		Workers:    *workers,
		MaxPoints:  *maxpoints,
	}
	if *fig != "" {
		req.Figures = []string{*fig}
	}
	if explicit["threads"] {
		req.Threads = *threads
	}
	if explicit["mesh"] {
		req.Mesh = *meshDims
	}
	if explicit["topology"] {
		req.Topology = *topology
	}
	if explicit["router"] {
		req.Router = *router
	}
	// Fail fast — unknown names, malformed specs, axis-ownership conflicts
	// — before paying for any simulation; validation errors keep their
	// usage-error exit code.
	if err := req.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	// Profiling wraps everything that can cost time (record, sweep, or the
	// matrix). Unwritable paths fail here, before any simulation, instead of
	// discovering the problem after a long run.
	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		}
	}()

	if *record != "" {
		if len(req.Benchmarks) != 1 {
			fmt.Fprintln(os.Stderr, "-record needs exactly one workload in -benchmarks")
			return 2
		}
		size, _ := job.SizeFromName(*sizeName) // validated above
		prog, err := workloads.ByName(req.Benchmarks[0], size, *threads)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		tr := trace.Record(prog)
		if err := trace.WriteFile(*record, tr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("recorded %s (%s scale, %d threads, %d phases, %d ops) to %s\n",
			prog.Name(), size, prog.Threads(), tr.Phases(), tr.TotalOps(), *record)
		fmt.Printf("replay with: -benchmarks 'replay(file=%s)'\n", *record)
		return
	}

	// One renderer over the unified event stream reproduces both progress
	// vocabularies: per-cell "running bench / proto" lines for matrix runs,
	// per-point "sweep point i/N" lines for sweeps. Cache corruption and
	// store failures are loud even under -q — the point's result is still
	// correct, but silent self-healing would hide a real problem (disk,
	// tampering) and a later -resume will resimulate an unpersisted point.
	isSweep := req.IsSweep()
	rc := job.RunConfig{Events: func(ev job.Event) {
		switch ev.Kind {
		case job.KindCell:
			if !isSweep && !*quiet {
				fmt.Fprintf(os.Stderr, "running %s / %s...\n", ev.Bench, ev.Protocol)
			}
		case job.KindPoint:
			switch ev.Status {
			case job.StatusCacheCorrupt:
				fmt.Fprintf(os.Stderr, "sweep point %d/%d %s=%s: cache entry corrupt, resimulating: %s\n",
					ev.Point+1, ev.Total, ev.Axis, ev.Value, ev.Error)
			case job.StatusStoreFailed:
				fmt.Fprintf(os.Stderr, "sweep point %d/%d %s=%s: completed but not persisted to the cache: %s\n",
					ev.Point+1, ev.Total, ev.Axis, ev.Value, ev.Error)
			default:
				if !*quiet {
					fmt.Fprintf(os.Stderr, "sweep point %d/%d %s=%s: %s\n",
						ev.Point+1, ev.Total, ev.Axis, ev.Value, ev.Status)
				}
			}
		}
	}}

	if isSweep {
		if *cachedir != "" {
			if rc.Cache, err = core.OpenPointCache(*cachedir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
		// Interrupts cancel the pool at the next cell boundary instead of
		// killing the process: completed points are kept (and, with
		// -cachedir, already persisted), so ^C on a long sweep loses at
		// most the cells in flight.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		out, err := job.Run(ctx, req, rc)
		var res *core.SweepResult
		if out != nil {
			res = out.Sweep
		}
		if res != nil && !*quiet {
			ncached := 0
			for _, p := range res.Points {
				if p.Cached {
					ncached++
				}
			}
			fmt.Fprintf(os.Stderr, "sweep %s: %d/%d points complete (%d cached, %d simulated)\n",
				res.Spec, len(res.Points), res.Expected, ncached, len(res.Points)-ncached)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "sweep interrupted")
			} else {
				fmt.Fprintln(os.Stderr, err)
			}
			if res != nil && len(res.Points) > 0 {
				if *cachedir != "" {
					fmt.Fprintf(os.Stderr, "%d/%d points are persisted in %s; rerun the same sweep with -resume to continue\n",
						len(res.Points), res.Expected, *cachedir)
				} else {
					fmt.Fprintf(os.Stderr, "%d/%d points completed but are not persisted; rerun with -cachedir to make sweeps resumable\n",
						len(res.Points), res.Expected)
				}
			}
			return 1
		}
		if err := out.RenderText(os.Stdout, req); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return
	}

	out, err := job.Run(context.Background(), req, rc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := out.RenderText(os.Stdout, req); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

// startProfiles begins CPU profiling and reserves the heap-profile file.
// Both files are created up front so an unwritable path is a loud, early
// usage error rather than a profile silently missing after the run. The
// returned stop function ends the CPU profile and writes the heap snapshot;
// its error is surfaced as a nonzero exit by the caller.
func startProfiles(cpu, mem string) (stop func() error, err error) {
	var cpuF, memF *os.File
	if cpu != "" {
		cpuF, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if mem != "" {
		memF, err = os.Create(mem)
		if err != nil {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memF != nil {
			runtime.GC() // settle the live set so the snapshot is meaningful
			if err := pprof.WriteHeapProfile(memF); err != nil {
				memF.Close()
				return fmt.Errorf("-memprofile: %w", err)
			}
			if err := memF.Close(); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// optionTokens renders the protocol option vocabulary for -help.
func optionTokens() string {
	var toks []string
	for _, o := range core.OptionCatalog() {
		toks = append(toks, o.Token)
	}
	return strings.Join(toks, "|")
}

// routerHelp renders the router inventory for -help.
func routerHelp() string {
	var parts []string
	for _, kind := range mesh.RouterKinds() {
		desc, err := mesh.RouterDescription(kind)
		if err != nil {
			panic(err) // kinds come from the registry itself
		}
		parts = append(parts, fmt.Sprintf("%s (%s)", kind, desc))
	}
	return strings.Join(parts, ", ")
}
