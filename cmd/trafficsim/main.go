// Command trafficsim reruns the paper's experiments and prints its figure
// tables: the protocol x benchmark traffic/time/waste matrices of Figures
// 5.1a-d, 5.2 and 5.3a-c, the congestion telemetry table, the headline
// paper-vs-measured summary, and — with -sweep — assembled load-latency /
// waste-vs-load curve tables over a third parameter axis.
//
// Protocols are resolved through the composable registry: canonical paper
// names (MESI ... DBypFull) or base+Option specs such as DeNovo+BypL2 or
// DFlexL1+BypFull. Benchmarks are workload-registry specs: the paper's six
// ported benchmarks, synthetic traffic patterns with optional parameters
// (uniform, transpose, bitcomp, hotspot, neighbor, prodcons), or recorded
// traces. Sweeps are "axis=value,value,..." over an engine axis (topology,
// router, mesh, vcs, vcdepth, threads, protocol) or "family(key=lo..hi)"
// over a workload parameter (see cmd/papertables for all inventories, and
// docs/GUIDE.md for a walkthrough).
//
// Examples:
//
//	trafficsim -fig 5.1a -size small
//	trafficsim -fig all -size tiny -benchmarks FFT,radix
//	trafficsim -summary -size small
//	trafficsim -fig 5.2 -protocols MESI,MMemL1,DBypFull
//	trafficsim -fig 5.1a -protocols MESI,DeNovo,DeNovo+BypL2,DFlexL1+BypFull
//	trafficsim -fig 5.1a -topology torus -workers 8
//	trafficsim -fig net -router vc -size tiny -benchmarks FFT
//	trafficsim -fig net -router vc -mesh 8x8 -benchmarks 'hotspot(t=2)'
//	trafficsim -sweep mesh=4x4,8x8,16x16 -router vc -benchmarks 'hotspot(t=2)'
//	trafficsim -fig net -router vc -benchmarks 'uniform(p=0.1),hotspot(t=2),transpose'
//	trafficsim -record /tmp/fft.trc -benchmarks FFT -size tiny
//	trafficsim -fig 5.1a -benchmarks 'replay(file=/tmp/fft.trc)'
//	trafficsim -sweep 'hotspot(t=1..16)' -size tiny -protocols MESI,DeNovo,DBypFull
//	trafficsim -sweep 'uniform(p=0.01..0.09..0.02)' -router vc
//	trafficsim -sweep topology=mesh,ring,torus -benchmarks FFT
//	trafficsim -sweep 'hotspot(t=1..16)' -cachedir /tmp/points   # persists each point
//	trafficsim -sweep 'hotspot(t=1..16)' -cachedir /tmp/points -resume
//	trafficsim -sweep 'uniform(p=0.001..0.1..0.0002)' -maxpoints 500 -cachedir /tmp/points
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/mesh"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() { os.Exit(run()) }

// The -help text enumerates valid names from the registries themselves, so
// it can never drift from what the parsers accept (the hand-maintained
// lists had already gone stale once).
//
// run carries main's body with a real return code so the profiling defers
// execute — os.Exit skips deferred functions, and a silently truncated
// CPU profile is exactly the kind of quiet failure this tool refuses.
func run() (code int) {
	fig := flag.String("fig", "", "figure to print: "+strings.Join(core.FigureIDs(), " ")+", or 'all'")
	summary := flag.Bool("summary", false, "print the headline paper-vs-measured averages")
	sizeName := flag.String("size", "tiny", "input scale: tiny, small, paper (caches scale with inputs; see DESIGN.md)")
	protoCSV := flag.String("protocols", "", "comma-separated protocol specs: canonical names ("+
		strings.Join(core.ProtocolNames(), ", ")+", DBypHW) or base+Option compositions with options "+
		optionTokens()+" (default: the paper's nine)")
	benchCSV := flag.String("benchmarks", "", "comma-separated workload specs, name(key=value,...) over: "+
		strings.Join(workloads.SpecNames(), ", ")+" (default: the paper's six)")
	sweep := flag.String("sweep", "", "sweep one axis and print the assembled curve table: 'axis=v1,v2,...' over "+
		strings.Join(core.SweepAxisNames(), "|")+", or a workload parameter range like 'hotspot(t=1..16)'")
	cachedir := flag.String("cachedir", "", "content-addressed sweep-point cache directory: completed points persist here as the sweep runs, and points already present (from any earlier sweep) are served without simulating")
	resume := flag.Bool("resume", false, "resume an interrupted sweep from -cachedir (rerun the same sweep command; finished points load from the cache)")
	maxpoints := flag.Int("maxpoints", core.DefaultSweepPointCap, "sweep expansion cap; a sweep that expands past it is an error (raise deliberately for large sweeps, ideally with -cachedir)")
	record := flag.String("record", "", "record the single workload in -benchmarks to this trace file and exit (run it later with replay(file=...))")
	threads := flag.Int("threads", 16, "worker threads (= cores used)")
	meshDims := flag.String("mesh", "4x4", "tile-grid dimensions WxH (e.g. "+
		strings.Join(core.MeshPresets(), ", ")+"); tiles, corner MC placement and Bloom banks follow, and -threads must not exceed the tile count")
	topology := flag.String("topology", "mesh", "NoC topology: "+strings.Join(mesh.TopologyKinds(), ", "))
	router := flag.String("router", "ideal", "router model: "+routerHelp())
	vcs := flag.Int("vcs", 0, "vc router: virtual channels per input port (0 = model default; even, >= 2)")
	vcdepth := flag.Int("vcdepth", 0, "vc router: flit buffer depth per VC (0 = model default)")
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per CPU, 1 = serial)")
	quiet := flag.Bool("q", false, "suppress progress output")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to this file")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile, taken at exit, to this file")
	flag.Parse()

	if *fig == "" && !*summary && *record == "" && *sweep == "" {
		*fig = "all"
		*summary = true
	}
	if *record != "" && (*sweep != "" || *fig != "" || *summary) {
		fmt.Fprintln(os.Stderr, "-record only records a trace; drop -sweep/-fig/-summary (replay the trace in a later run)")
		return 2
	}
	if (*vcs != 0 || *vcdepth != 0) && *router != "vc" {
		fmt.Fprintln(os.Stderr, "-vcs/-vcdepth configure the vc router and are dead under any other model; add -router vc")
		return 2
	}
	if *resume && *cachedir == "" {
		fmt.Fprintln(os.Stderr, "-resume loads finished points from the point cache; add -cachedir (the same one the interrupted run used)")
		return 2
	}
	if *maxpoints < 1 {
		fmt.Fprintf(os.Stderr, "-maxpoints %d: the sweep cap must be >= 1 (default %d)\n", *maxpoints, core.DefaultSweepPointCap)
		return 2
	}
	if *sweep == "" {
		explicitFlags := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicitFlags[f.Name] = true })
		for _, name := range []string{"cachedir", "resume", "maxpoints"} {
			if explicitFlags[name] {
				fmt.Fprintf(os.Stderr, "-%s configures sweep runs and is dead without one; add -sweep\n", name)
				return 2
			}
		}
	}

	var size workloads.Size
	switch *sizeName {
	case "tiny":
		size = workloads.Tiny
	case "small":
		size = workloads.Small
	case "paper":
		size = workloads.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *sizeName)
		return 2
	}

	// Fail fast on unknown figure ids and workload specs, before paying
	// for any simulation.
	ids := []string{*fig}
	if *fig == "all" {
		ids = core.FigureIDs()
	}
	if *fig != "" {
		for _, id := range ids {
			if err := core.ValidFigureID(id); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
	}
	benchmarks := splitSpecs(*benchCSV)
	for _, spec := range benchmarks {
		if _, err := workloads.ParseSpec(spec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}

	// Profiling wraps everything that can cost time (record, sweep, or the
	// matrix). Unwritable paths fail here, before any simulation, instead of
	// discovering the problem after a long run.
	stopProf, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			if code == 0 {
				code = 1
			}
		}
	}()

	if *record != "" {
		if len(benchmarks) != 1 {
			fmt.Fprintln(os.Stderr, "-record needs exactly one workload in -benchmarks")
			return 2
		}
		prog, err := workloads.ByName(benchmarks[0], size, *threads)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		tr := trace.Record(prog)
		if err := trace.WriteFile(*record, tr); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("recorded %s (%s scale, %d threads, %d phases, %d ops) to %s\n",
			prog.Name(), size, prog.Threads(), tr.Phases(), tr.TotalOps(), *record)
		fmt.Printf("replay with: -benchmarks 'replay(file=%s)'\n", *record)
		return
	}

	// Only pin the axis knobs the user actually passed: the engine applies
	// the same defaults (mesh, ideal, 16 threads) to zero values, and a
	// sweep over an axis must be able to tell "defaulted" from "explicit"
	// — sweeping topology with an explicit -topology is a conflict error,
	// sweeping it against the default is the normal case.
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	opt := core.MatrixOptions{Size: size, Workers: *workers, VCs: *vcs, VCDepth: *vcdepth}
	if explicit["threads"] {
		opt.Threads = *threads
	}
	if explicit["mesh"] {
		w, h, err := memsys.ParseMeshDims(*meshDims)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opt.MeshWidth, opt.MeshHeight = w, h
	}
	if explicit["topology"] {
		opt.Topology = *topology
	}
	if explicit["router"] {
		opt.Router = *router
	}
	if *protoCSV != "" {
		opt.Protocols = splitCSV(*protoCSV)
	}
	if len(benchmarks) > 0 {
		opt.Benchmarks = benchmarks
	}
	if !*quiet {
		opt.Progress = func(b, p string) { fmt.Fprintf(os.Stderr, "running %s / %s...\n", b, p) }
	}

	if *sweep != "" {
		if *fig != "" || *summary {
			fmt.Fprintln(os.Stderr, "-sweep prints its own assembled table; drop -fig/-summary")
			return 2
		}
		// Fail fast before any simulation if the spec is malformed,
		// collides with an explicitly pinned axis, or would be a no-op.
		// RunSweepOpt re-resolves the spec internally; the duplicate parse
		// costs microseconds and buys usage errors their exit code 2.
		s, err := core.ParseSweepLimit(*sweep, *maxpoints)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		if _, err := s.PointOptions(opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		// Sweep-level progress replaces the per-cell lines: a long sweep
		// reports "point i/N" with the axis value and whether the point
		// came from the cache, so it never looks hung. Cache corruption
		// is loud even under -q — the entry is resimulated, but silent
		// self-healing would hide a real problem (disk, tampering).
		opt.Progress = nil
		sopt := core.SweepOptions{MaxPoints: *maxpoints}
		if *cachedir != "" {
			if sopt.Cache, err = core.OpenPointCache(*cachedir); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
		}
		sopt.Progress = func(ev core.SweepProgress) {
			if ev.Status == core.SweepPointCacheCorrupt {
				fmt.Fprintf(os.Stderr, "sweep point %d/%d %s=%s: cache entry corrupt, resimulating: %v\n",
					ev.Point+1, ev.Total, ev.Axis, ev.Value, ev.Err)
				return
			}
			// A store failure does not fail the sweep (the point's result
			// is in the table); it is loud even under -q because a later
			// -resume will resimulate the unpersisted point.
			if ev.Status == core.SweepPointStoreFailed {
				fmt.Fprintf(os.Stderr, "sweep point %d/%d %s=%s: completed but not persisted to the cache: %v\n",
					ev.Point+1, ev.Total, ev.Axis, ev.Value, ev.Err)
				return
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "sweep point %d/%d %s=%s: %s\n",
					ev.Point+1, ev.Total, ev.Axis, ev.Value, ev.Status)
			}
		}
		// Interrupts cancel the pool at the next cell boundary instead of
		// killing the process: completed points are kept (and, with
		// -cachedir, already persisted), so ^C on a long sweep loses at
		// most the cells in flight.
		ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stopSignals()
		res, err := core.RunSweepOpt(ctx, opt, *sweep, sopt)
		if res != nil && !*quiet {
			ncached := 0
			for _, p := range res.Points {
				if p.Cached {
					ncached++
				}
			}
			fmt.Fprintf(os.Stderr, "sweep %s: %d/%d points complete (%d cached, %d simulated)\n",
				res.Spec, len(res.Points), res.Expected, ncached, len(res.Points)-ncached)
		}
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "sweep interrupted")
			} else {
				fmt.Fprintln(os.Stderr, err)
			}
			if res != nil && len(res.Points) > 0 {
				if *cachedir != "" {
					fmt.Fprintf(os.Stderr, "%d/%d points are persisted in %s; rerun the same sweep with -resume to continue\n",
						len(res.Points), res.Expected, *cachedir)
				} else {
					fmt.Fprintf(os.Stderr, "%d/%d points completed but are not persisted; rerun with -cachedir to make sweeps resumable\n",
						len(res.Points), res.Expected)
				}
			}
			return 1
		}
		// The header states only the knobs that are actually pinned across
		// the whole sweep — never the axis being swept (the conflict check
		// above already rules out pinning that one explicitly).
		var pins []string
		if explicit["mesh"] && s.Axis != "mesh" {
			pins = append(pins, "mesh: "+memsys.FormatMeshDims(opt.MeshWidth, opt.MeshHeight))
		}
		if explicit["topology"] && s.Axis != "topology" {
			pins = append(pins, "topology: "+*topology)
		}
		if explicit["router"] && s.Axis != "router" {
			pins = append(pins, "router: "+*router)
		}
		if len(pins) > 0 {
			fmt.Printf("NoC %s\n\n", strings.Join(pins, ", "))
		}
		fmt.Println(res.Table())
		return
	}

	m, err := core.RunMatrix(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if m.Topology != "mesh" || m.Router != "ideal" || explicit["mesh"] {
		header := fmt.Sprintf("NoC topology: %s, router: %s", m.Topology, m.Router)
		if explicit["mesh"] {
			header += ", mesh: " + memsys.FormatMeshDims(opt.MeshWidth, opt.MeshHeight)
		}
		fmt.Printf("%s\n\n", header)
	}

	if *fig != "" {
		for _, id := range ids {
			t, err := m.Figure(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Println(t)
		}
	}
	if *summary {
		fmt.Println(m.Summarize())
	}
	return 0
}

// startProfiles begins CPU profiling and reserves the heap-profile file.
// Both files are created up front so an unwritable path is a loud, early
// usage error rather than a profile silently missing after the run. The
// returned stop function ends the CPU profile and writes the heap snapshot;
// its error is surfaced as a nonzero exit by the caller.
func startProfiles(cpu, mem string) (stop func() error, err error) {
	var cpuF, memF *os.File
	if cpu != "" {
		cpuF, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if mem != "" {
		memF, err = os.Create(mem)
		if err != nil {
			if cpuF != nil {
				pprof.StopCPUProfile()
				cpuF.Close()
			}
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
	}
	return func() error {
		if cpuF != nil {
			pprof.StopCPUProfile()
			if err := cpuF.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memF != nil {
			runtime.GC() // settle the live set so the snapshot is meaningful
			if err := pprof.WriteHeapProfile(memF); err != nil {
				memF.Close()
				return fmt.Errorf("-memprofile: %w", err)
			}
			if err := memF.Close(); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// optionTokens renders the protocol option vocabulary for -help.
func optionTokens() string {
	var toks []string
	for _, o := range core.OptionCatalog() {
		toks = append(toks, o.Token)
	}
	return strings.Join(toks, "|")
}

// routerHelp renders the router inventory for -help.
func routerHelp() string {
	var parts []string
	for _, kind := range mesh.RouterKinds() {
		parts = append(parts, fmt.Sprintf("%s (%s)", kind, mesh.RouterDescription(kind)))
	}
	return strings.Join(parts, ", ")
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// splitSpecs splits a comma-separated workload-spec list, keeping commas
// inside parameter lists intact: "hotspot(t=2,p=0.1),FFT" is two specs.
func splitSpecs(s string) []string {
	var out []string
	depth, start := 0, 0
	flush := func(end int) {
		if p := strings.TrimSpace(s[start:end]); p != "" {
			out = append(out, p)
		}
	}
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				flush(i)
				start = i + 1
			}
		}
	}
	flush(len(s))
	return out
}
