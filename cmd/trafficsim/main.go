// Command trafficsim reruns the paper's experiments and prints its figure
// tables: the protocol x benchmark traffic/time/waste matrices of Figures
// 5.1a-d, 5.2 and 5.3a-c, plus the headline paper-vs-measured summary.
//
// Examples:
//
// Protocols are resolved through the composable registry: canonical paper
// names (MESI ... DBypFull) or base+Option specs such as DeNovo+BypL2 or
// DFlexL1+BypFull (see cmd/papertables for the full inventory).
//
//	trafficsim -fig 5.1a -size small
//	trafficsim -fig all -size tiny -benchmarks FFT,radix
//	trafficsim -summary -size small
//	trafficsim -fig 5.2 -protocols MESI,MMemL1,DBypFull
//	trafficsim -fig 5.1a -protocols MESI,DeNovo,DeNovo+BypL2,DFlexL1+BypFull
//	trafficsim -fig 5.1a -topology torus -workers 8
//	trafficsim -fig net -router vc -size tiny -benchmarks FFT
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	fig := flag.String("fig", "", "figure to print: 5.1a 5.1b 5.1c 5.1d 5.2 5.3a 5.3b 5.3c net, or 'all'")
	summary := flag.Bool("summary", false, "print the headline paper-vs-measured averages")
	sizeName := flag.String("size", "tiny", "input scale: tiny, small, paper (caches scale with inputs; see DESIGN.md)")
	protoCSV := flag.String("protocols", "", "comma-separated protocol specs: canonical names or base+Option compositions, e.g. MESI,DeNovo+BypL2 (default: the paper's nine)")
	benchCSV := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all six)")
	threads := flag.Int("threads", 16, "worker threads (= cores used)")
	topology := flag.String("topology", "mesh", "NoC topology: mesh, ring, torus")
	router := flag.String("router", "ideal", "router model: ideal (injection-time reservation), vc (cycle-level VC wormhole)")
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per CPU, 1 = serial)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *fig == "" && !*summary {
		*fig = "all"
		*summary = true
	}

	var size workloads.Size
	switch *sizeName {
	case "tiny":
		size = workloads.Tiny
	case "small":
		size = workloads.Small
	case "paper":
		size = workloads.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown size %q\n", *sizeName)
		os.Exit(2)
	}

	opt := core.MatrixOptions{Size: size, Threads: *threads, Topology: *topology, Router: *router, Workers: *workers}
	if *protoCSV != "" {
		opt.Protocols = splitCSV(*protoCSV)
	}
	if *benchCSV != "" {
		opt.Benchmarks = splitCSV(*benchCSV)
	}
	if !*quiet {
		opt.Progress = func(b, p string) { fmt.Fprintf(os.Stderr, "running %s / %s...\n", b, p) }
	}

	m, err := core.RunMatrix(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if m.Topology != "mesh" || m.Router != "ideal" {
		fmt.Printf("NoC topology: %s, router: %s\n\n", m.Topology, m.Router)
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = core.FigureIDs()
	}
	if *fig != "" {
		for _, id := range ids {
			t, err := m.Figure(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Println(t)
		}
	}
	if *summary {
		fmt.Println(m.Summarize())
	}
}

func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
