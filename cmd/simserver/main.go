// Command simserver runs the simulation-as-a-service HTTP transport: a
// bounded job queue over the same run-orchestration layer the CLIs use
// (internal/job), so a request submitted over HTTP produces exactly the
// same tables trafficsim prints — bit-identically, including when served
// from the shared content-addressed cache.
//
// API (JSON unless noted):
//
//	POST   /v1/jobs             submit a job.Request; 202 with the job id
//	GET    /v1/jobs/{id}        status + progress counts
//	GET    /v1/jobs/{id}/events unified progress stream, NDJSON, resumable
//	                            with ?from=<seq>
//	GET    /v1/jobs/{id}/result assembled result; ?format=text renders the
//	                            CLI's exact bytes
//	DELETE /v1/jobs/{id}        cancel (queued or running)
//	GET    /v1/catalog          registry inventories (papertables), text
//	GET    /v1/healthz          liveness
//
// Example session:
//
//	simserver -addr :8080 -cachedir /tmp/points &
//	curl -s localhost:8080/v1/jobs -d '{"sweep":"hotspot(t=1,2)","protocols":["MESI"]}'
//	curl -s localhost:8080/v1/jobs/job-1/events
//	curl -s 'localhost:8080/v1/jobs/job-1/result?format=text'
//
// SIGINT/SIGTERM drain gracefully: no new submissions, queued jobs are
// cancelled, running jobs get -grace to finish (partial sweep results
// stay persisted in the cache for the next identical submission to
// resume from), then the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/job"
)

func main() { os.Exit(run()) }

func run() int {
	addr := flag.String("addr", ":8080", "listen address")
	bound := flag.Int("bound", 16, "queued-job bound; submissions past it get 503 + Retry-After")
	executors := flag.Int("executors", 1, "jobs running concurrently (one already saturates the host via the engine's worker pool)")
	cachedir := flag.String("cachedir", "", "shared content-addressed result store: identical submissions are served from it bit-identically, and cancelled sweeps keep their finished points there")
	grace := flag.Duration("grace", 30*time.Second, "shutdown grace period for running jobs before their contexts are cancelled")
	flag.Parse()

	qopts := job.QueueOptions{Bound: *bound, Executors: *executors}
	if *cachedir != "" {
		cache, err := core.OpenPointCache(*cachedir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		qopts.Cache = cache
	}
	q := job.NewQueue(qopts)

	srv := &http.Server{Addr: *addr, Handler: job.NewServer(q)}

	// Serve until the first SIGINT/SIGTERM, then drain: stop accepting
	// (listener closes after in-flight requests finish), cancel queued
	// jobs, give running jobs the grace period, and only then force-cancel
	// — the order that never loses a completed point.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("simserver listening on %s (bound %d, executors %d)", *addr, *bound, *executors)

	select {
	case err := <-errc:
		// The listener died on its own (port in use, ...): nothing is
		// running yet that a drain would save.
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-ctx.Done():
	}

	log.Printf("simserver draining (grace %s)", *grace)
	graceCtx, cancelGrace := context.WithTimeout(context.Background(), *grace)
	defer cancelGrace()
	q.Shutdown(graceCtx)
	// The queue is fully drained; give straggling HTTP responses (event
	// streams end at the terminal state they just reached) a moment to
	// flush before closing the listener.
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := srv.Shutdown(httpCtx); err != nil {
		srv.Close()
	}
	<-errc // ListenAndServe has returned http.ErrServerClosed
	log.Printf("simserver stopped")
	return 0
}
