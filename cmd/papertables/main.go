// Command papertables prints the paper's configuration tables — Table 4.1
// (simulated system parameters) and Table 4.2 (application input sizes) —
// plus the inventories of every registry axis the scenario space is built
// from: NoC topologies, router models, protocol specs, workload specs,
// and the sweepable axes trafficsim -sweep turns into curve tables.
//
// The tables themselves come from job.FprintInventory, the same renderer
// the simserver /v1/catalog endpoint serves; this command is the stdout
// shim over it.
package main

import (
	"flag"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/job"
)

func main() {
	meshDims := flag.String("mesh", "4x4", "tile-grid dimensions WxH to render Table 4.1 and the topology inventory at (e.g. "+
		strings.Join(core.MeshPresets(), ", ")+")")
	flag.Parse()

	if err := job.FprintInventory(os.Stdout, *meshDims); err != nil {
		log.Fatal(err)
	}
}
