// Wastemap: the paper's waste-characterization methodology (§4.1) applied
// to one protocol/benchmark pair: every word fetched into the L1, into the
// L2, and from memory is classified as Used, Fetch, Write, Invalidate,
// Evict, Unevicted or Excess, reproducing one column of Figures 5.3a-c.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/waste"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "fluidanimate", "workload spec: a benchmark name or a synthetic pattern like uniform(p=0.1)")
	proto := flag.String("protocol", "DBypFull", "protocol configuration")
	topology := flag.String("topology", "mesh", "NoC topology: mesh, ring, torus")
	router := flag.String("router", "ideal", "router model: ideal, vc")
	flag.Parse()

	size := workloads.Tiny
	prog, err := workloads.ByName(*bench, size, 16)
	if err != nil {
		log.Fatal(err)
	}
	cfg := memsys.Default().Scaled(size.ScaleDiv())
	cfg.Topology = *topology
	cfg.Router = *router
	res, err := core.RunOne(cfg, *proto, prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s under %s — words fetched per level, by waste category\n\n", prog.Name(), *proto)
	fmt.Printf("%-8s %10s", "level", "total")
	for _, c := range waste.Categories {
		fmt.Printf(" %11s", c)
	}
	fmt.Println()
	for _, level := range []waste.Level{waste.LevelL1, waste.LevelL2, waste.LevelMem} {
		total := res.WasteTotal(level)
		fmt.Printf("%-8s %10d", level, total)
		for _, c := range waste.Categories {
			if total == 0 {
				fmt.Printf(" %11s", "-")
				continue
			}
			fmt.Printf(" %10.1f%%", float64(res.Waste[level][c])/float64(total)*100)
		}
		fmt.Println()
	}

	fmt.Printf("\noverall wasted traffic share: %.1f%% of %0.f flit-hops\n",
		res.WasteShare*100, res.Total())
	fmt.Println("\nCategories (§4.1): Used = read by the program (or reused from the L2);")
	fmt.Println("Fetch = word fetched while already present; Write = overwritten before")
	fmt.Println("use; Invalidate/Evict = lost before use; Unevicted = still cached at")
	fmt.Println("the end; Excess = fetched from DRAM but dropped at the memory")
	fmt.Println("controller by the L2 Flex filter.")
}
