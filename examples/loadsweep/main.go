// Loadsweep: assemble the classic NoC load curve from the scenario space.
// A hotspot(t=1..16) sweep concentrates all consumer traffic on t hot
// tiles — t=16 is spread like uniform traffic, t=1 hammers a single L2
// slice — and the assembled table shows how traffic, packet latency, link
// heat and waste move along the axis for each protocol, the form the
// paper's "are we there yet?" question is answered in.
//
// The sweep itself runs through internal/job (the same orchestration
// layer trafficsim and the simserver share); what stays here is the
// flag parsing and the ASCII latency-curve rendering.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/memsys"
)

func main() {
	spec := flag.String("sweep", "hotspot(t=1..16)", "sweep spec: axis=v1,v2,... or workload(key=lo..hi)")
	protoCSV := flag.String("protocols", "MESI,DeNovo,DBypFull", "comma-separated protocol specs (the curve family)")
	sizeName := flag.String("size", "tiny", "input scale: tiny, small, paper")
	meshDims := flag.String("mesh", "4x4", "tile-grid dimensions WxH (e.g. "+strings.Join(core.MeshPresets(), ", ")+")")
	topology := flag.String("topology", "mesh", "NoC topology")
	router := flag.String("router", "ideal", "router model")
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per CPU, shared across all sweep points)")
	cachedir := flag.String("cachedir", "", "sweep-point cache directory: completed points persist and repeated points load instead of simulating")
	maxpoints := flag.Int("maxpoints", core.DefaultSweepPointCap, "sweep expansion cap")
	flag.Parse()

	if *maxpoints < 1 {
		log.Fatalf("-maxpoints %d: the sweep cap must be >= 1 (default %d)", *maxpoints, core.DefaultSweepPointCap)
	}
	if _, err := job.SizeFromName(*sizeName); err != nil {
		log.Fatal(err)
	}

	// Pin topology/router only when passed explicitly, so engine-axis
	// sweeps over them (-sweep topology=...) don't see a phantom conflict
	// with the flag defaults.
	explicit := job.Explicit(flag.CommandLine)
	req := job.Request{
		Sweep:     *spec,
		Size:      *sizeName,
		Workers:   *workers,
		MaxPoints: *maxpoints,
	}
	if explicit["mesh"] {
		if _, _, err := memsys.ParseMeshDims(*meshDims); err != nil {
			log.Fatal(err)
		}
		req.Mesh = *meshDims
	}
	if explicit["topology"] {
		req.Topology = *topology
	}
	if explicit["router"] {
		req.Router = *router
	}
	// A protocol-axis sweep owns the protocol list: an explicitly passed
	// -protocols is an error (matching trafficsim), and the flag's default
	// is simply not applied. Otherwise apply the flag, normalized through
	// the registry so spelling variants of one spec don't surprise anyone
	// downstream.
	parsed, err := core.ParseSweepLimit(*spec, *maxpoints)
	if err != nil {
		log.Fatal(err)
	}
	if parsed.Axis == "protocol" && explicit["protocols"] {
		log.Fatalf("sweep %q sets the protocol axis; drop the explicit -protocols list", parsed.Spec)
	}
	if parsed.Axis != "protocol" {
		var protos []string
		for _, p := range job.SplitList(*protoCSV) {
			v, err := core.ParseProtocol(p)
			if err != nil {
				log.Fatal(err)
			}
			protos = append(protos, v.Spec)
		}
		if len(protos) > 0 {
			req.Protocols = protos
		}
	}

	// Sweep-level progress (point i/N with cache-hit vs simulated) rather
	// than per-cell lines: the point is the unit a long sweep is watched
	// in. With -cachedir each completed point persists as the sweep runs,
	// so a killed run resumes by rerunning the same command.
	rc := job.RunConfig{Events: func(ev job.Event) {
		if ev.Kind == job.KindPoint {
			fmt.Fprintf(os.Stderr, "sweep point %d/%d %s=%s: %s\n", ev.Point+1, ev.Total, ev.Axis, ev.Value, ev.Status)
		}
	}}
	if *cachedir != "" {
		if rc.Cache, err = core.OpenPointCache(*cachedir); err != nil {
			log.Fatal(err)
		}
	}
	out, err := job.Run(context.Background(), req, rc)
	if err != nil {
		if out != nil && out.Sweep != nil && len(out.Sweep.Points) > 0 && *cachedir != "" {
			log.Printf("%d/%d points are persisted in %s; rerun to resume", len(out.Sweep.Points), out.Sweep.Expected, *cachedir)
		}
		log.Fatal(err)
	}
	res := out.Sweep
	table := res.Table()
	fmt.Println(table)

	// The curve family comes from the assembled rows (already canonical),
	// in first-appearance order — correct for protocol-axis sweeps too,
	// where the protocol varies with the point.
	var protos []string
	seenProto := map[string]bool{}
	for _, r := range table.Rows {
		if !seenProto[r.Protocol] {
			seenProto[r.Protocol] = true
			protos = append(protos, r.Protocol)
		}
	}

	// A terminal-width latency curve per protocol: the saturation shape at
	// a glance, mean packet latency scaled to the sweep's worst point.
	idx := -1
	for i, c := range table.Columns {
		if c == "MeanLat" {
			idx = i
		}
	}
	worst := 0.0
	for _, r := range table.Rows {
		if r.Values[idx] > worst {
			worst = r.Values[idx]
		}
	}
	if worst == 0 {
		return
	}
	fmt.Printf("mean packet latency along %s (each bar scaled to the worst point, %.1f cycles):\n", res.Axis, worst)
	for _, proto := range protos {
		fmt.Printf("\n%s\n", proto)
		for _, r := range table.Rows {
			if r.Protocol != proto {
				continue
			}
			// On a protocol-axis sweep the point is the protocol itself;
			// the benchmark is what distinguishes the bars.
			label := r.Point
			if parsed.Axis == "protocol" {
				label = r.Bench
			}
			lat := r.Values[idx]
			fmt.Printf("  %-12s %-40s %6.2f\n", label, strings.Repeat("#", int(lat/worst*40+0.5)), lat)
		}
	}
}
