// Bloomtune: the §4.4 design-space sweep for the "L2 Request Bypass"
// Bloom filters. The paper picks an idealized geometry (32 filters x 512
// entries per slice, 32 KB per L1); this example shows how shrinking the
// filters raises the false-positive rate and erodes the bypass benefit
// while keeping correctness (Bloom filters never produce false negatives,
// so the protocol stays safe at every size).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

func main() {
	size := workloads.Tiny
	prog := func() memsys.Program { return workloads.MustByName("FFT", size, 16) }

	type row struct {
		filters, entries int
	}
	sweeps := []row{{32, 512}, {8, 512}, {32, 64}, {4, 64}}

	fmt.Println("L2 Request Bypass Bloom geometry sweep (FFT, DBypFull)")
	fmt.Printf("%8s %8s %10s %14s %14s %12s\n",
		"filters", "entries", "L1 copy", "total traffic", "bloom traffic", "exec cycles")
	for _, s := range sweeps {
		cfg := memsys.Default().Scaled(size.ScaleDiv())
		cfg.Bloom.FiltersPerSlice = s.filters
		cfg.Bloom.Entries = s.entries
		res, err := core.RunOne(cfg, "DBypFull", prog())
		if err != nil {
			log.Fatal(err)
		}
		copyKB := float64(s.filters*s.entries*cfg.Tiles) / 8 / 1024
		fmt.Printf("%8d %8d %8.1fKB %14.0f %14.0f %12d\n",
			s.filters, s.entries, copyKB,
			res.Total(),
			res.FlitHops[memsys.ClassOVH][memsys.BOvhBloom],
			res.ExecCycles)
	}
	fmt.Println("\nPaper §4.4: ~32KB of L1 filter copies is the least desirable cost of")
	fmt.Println("the optimizations; this sweep quantifies the trade-off.")
}
