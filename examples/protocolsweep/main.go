// Protocolsweep: walk the paper's full protocol ladder (MESI -> MMemL1 ->
// DeNovo -> ... -> DBypFull) on one benchmark and show how each
// optimization changes the Figure 5.1a traffic stack. This is the
// per-benchmark view of the paper's main result.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/workloads"
)

func main() {
	bench := flag.String("bench", "kD-tree", "workload spec: a ported benchmark (fluidanimate, LU, FFT, radix, barnes, kD-tree) or a synthetic pattern like uniform(p=0.1), hotspot(t=2), prodcons")
	topology := flag.String("topology", "mesh", "NoC topology: mesh, ring, torus")
	router := flag.String("router", "ideal", "router model: ideal, vc")
	workers := flag.Int("workers", 0, "parallel simulations (0 = one per CPU)")
	extras := flag.Bool("extras", false, "append the registry's composed variants (ablations the paper never ran) to the ladder")
	flag.Parse()

	protocols := core.ProtocolNames()
	if *extras {
		protocols = append(protocols, core.ComposedVariants()...)
	}
	m, err := core.RunMatrix(core.MatrixOptions{
		Size:       workloads.Tiny,
		Protocols:  protocols,
		Benchmarks: []string{*bench},
		Topology:   *topology,
		Router:     *router,
		Workers:    *workers,
		Progress:   func(b, p string) { fmt.Printf("  running %s...\n", p) },
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNoC topology: %s, router: %s\n", m.Topology, m.Router)

	fmt.Println()
	fmt.Println(m.Fig51a())

	fmt.Println("What to look for (paper §5.2):")
	fmt.Println("  MMemL1     - store fills stop visiting the L2 (ST shrinks)")
	fmt.Println("  DeNovo     - overhead (unblock/inval/ack) collapses to NACKs")
	fmt.Println("  DFlexL1    - comm-region responses shrink LD (barnes, kD-tree)")
	fmt.Println("  DValidateL2- L2 write-validate removes store-side memory fetches")
	fmt.Println("  DBypL2     - streaming data stops polluting the L2")
	fmt.Println("  DBypFull   - requests skip the L2 when Bloom filters prove it safe")
	if *extras {
		fmt.Println("\nComposed variants (-extras; registry ablations beyond the paper):")
		desc := map[string]string{
			"DeNovo+BypL2":       "response bypass alone, without Flex/ValidateL2",
			"DFlexL1+BypFull":    "Bloom-guarded bypass on the bare Flex protocol",
			"DValidateL2+FlexL1": "the largest on-chip-only stack",
			"MESI+MemL1":         "MMemL1 spelled compositionally (identical bars)",
		}
		for _, spec := range core.ComposedVariants() {
			d := desc[spec]
			if d == "" {
				// A variant added to the registry after this legend: fall
				// back to its resolved option set.
				if v, err := core.ParseProtocol(spec); err == nil {
					d = v.Family + " + " + strings.Join(v.Options, "+")
				}
			}
			fmt.Printf("  %-19s - %s\n", spec, d)
		}
	}
}
