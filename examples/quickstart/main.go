// Quickstart: run one benchmark under the MESI baseline and the fully
// optimized DeNovo protocol (DBypFull), and print the headline comparison
// the paper is about — how much on-chip traffic is wasted data movement
// and how much of it the optimization stack removes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/workloads"
)

func main() {
	// Inputs and caches scale together so working-set ratios match the
	// paper (DESIGN.md). Tiny finishes in seconds.
	size := workloads.Tiny
	cfg := memsys.Default().Scaled(size.ScaleDiv())
	prog := workloads.MustByName("FFT", size, 16)

	var results []*core.Result
	for _, proto := range []string{"MESI", "DBypFull"} {
		res, err := core.RunOne(cfg, proto, prog)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
	}

	base := results[0]
	fmt.Printf("benchmark: %s (%s scale, 16 cores)\n\n", prog.Name(), size)
	fmt.Printf("%-10s %14s %12s %12s %12s\n", "protocol", "flit-hops", "vs MESI", "exec cycles", "waste share")
	for _, r := range results {
		fmt.Printf("%-10s %14.0f %11.1f%% %12d %11.1f%%\n",
			r.Protocol, r.Total(), r.Total()/base.Total()*100, r.ExecCycles, r.WasteShare*100)
	}

	fmt.Println("\ntraffic by class (flit-hops):")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "protocol", "LD", "ST", "WB", "Overhead")
	for _, r := range results {
		fmt.Printf("%-10s %12.0f %12.0f %12.0f %12.0f\n", r.Protocol,
			r.ClassTotal(memsys.ClassLD), r.ClassTotal(memsys.ClassST),
			r.ClassTotal(memsys.ClassWB), r.ClassTotal(memsys.ClassOVH))
	}

	// Topology is the other big traffic lever: the same protocol on a
	// torus (wraparound links) halves the longest routes, and a ring pays
	// for its two-port routers with longer ones.
	fmt.Println("\nDBypFull traffic by NoC topology (flit-hops):")
	meshTotal := results[1].Total() // the DBypFull run above used the mesh
	fmt.Printf("%-10s %14.0f %11.1f%% of mesh\n", "mesh", meshTotal, 100.0)
	for _, topo := range []string{"torus", "ring"} {
		cfgT := cfg
		cfgT.Topology = topo
		r, err := core.RunOne(cfgT, "DBypFull", prog)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14.0f %11.1f%% of mesh\n", topo, r.Total(), r.Total()/meshTotal*100)
	}

	// The workload axis is wider than the ported benchmarks: the registry
	// also serves synthetic traffic patterns (uniform, transpose, bitcomp,
	// hotspot, neighbor, prodcons), each a DRF program with the same waste
	// attribution, so protocol wins can be read against a controlled
	// sharing pattern instead of an application's mix.
	fmt.Println("\nDBypFull vs MESI on synthetic patterns (flit-hops):")
	fmt.Printf("%-16s %14s %14s %10s\n", "pattern", "MESI", "DBypFull", "vs MESI")
	for _, spec := range []string{"uniform", "hotspot(t=1)", "prodcons"} {
		sp := workloads.MustByName(spec, size, 16)
		var tot [2]float64
		for i, proto := range []string{"MESI", "DBypFull"} {
			r, err := core.RunOne(cfg, proto, sp)
			if err != nil {
				log.Fatal(err)
			}
			tot[i] = r.Total()
		}
		fmt.Printf("%-16s %14.0f %14.0f %9.1f%%\n", spec, tot[0], tot[1], tot[1]/tot[0]*100)
	}

	// The router model decides what congestion the telemetry can see: the
	// ideal model reserves whole routes at injection, while the vc model
	// pays for buffers, credits and allocation cycle by cycle. The MESI
	// run above already carries the ideal-router telemetry.
	cfgVC := cfg
	cfgVC.Router = "vc"
	vc, err := core.RunOne(cfgVC, "MESI", prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMESI congestion by router model (same mesh, same workload):")
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "router", "mean lat", "max lat", "hot link", "peak VC")
	for _, r := range []*core.Result{base, vc} {
		n := r.Net
		fmt.Printf("%-10s %12.1f %12d %11.1f%% %12d\n",
			n.Router, n.LatencyMean, n.LatencyMax, n.LinkUtilMax*100, n.PeakVCOccupancy)
	}
}
