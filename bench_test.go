// Benchmark harness: one benchmark per paper table/figure (DESIGN.md's
// per-experiment index), plus ablation benches for the design choices the
// paper calls out. The full protocol x benchmark matrix is expensive, so
// it is computed once per `go test -bench` process at the Small scale and
// shared by every figure benchmark; each figure bench then reports its
// headline values as custom metrics.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// The metric names encode (figure, quantity); values are percentages
// normalized to the MESI baseline, as in the paper's graphs.
package repro

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/memsys"
	"repro/internal/trace"
	"repro/internal/workloads"
)

var (
	matrixOnce sync.Once
	matrix     *core.Matrix
	matrixErr  error
)

// sharedMatrix runs the full 9-protocol x 6-benchmark cross product once.
func sharedMatrix(b *testing.B) *core.Matrix {
	b.Helper()
	matrixOnce.Do(func() {
		matrix, matrixErr = core.RunMatrix(core.MatrixOptions{Size: workloads.Small})
	})
	if matrixErr != nil {
		b.Fatal(matrixErr)
	}
	return matrix
}

// reportFigure rebuilds a figure table per iteration (the measured work)
// and reports the normalized stack totals of the headline protocols.
func reportFigure(b *testing.B, id string) {
	m := sharedMatrix(b)
	var t *core.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		t, err = m.Figure(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Report the average stacked height per protocol (percent of MESI).
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, row := range t.Rows {
		sums[row.Protocol] += row.Total()
		counts[row.Protocol]++
	}
	for _, proto := range []string{"MESI", "MMemL1", "DeNovo", "DFlexL1", "DBypFull"} {
		if n := counts[proto]; n > 0 {
			b.ReportMetric(sums[proto]/float64(n), proto+"_%")
		}
	}
}

// BenchmarkTable4_1_Parameters verifies/reports the simulated system of
// Table 4.1 (pure configuration; the interesting output is the metrics).
func BenchmarkTable4_1_Parameters(b *testing.B) {
	var cfg memsys.Config
	for i := 0; i < b.N; i++ {
		cfg = memsys.Default()
	}
	b.ReportMetric(float64(cfg.Tiles), "tiles")
	b.ReportMetric(float64(cfg.L1Bytes)/1024, "L1_KB")
	b.ReportMetric(float64(cfg.L2SliceBytes*cfg.Tiles)/1024/1024, "L2_MB")
	b.ReportMetric(float64(cfg.LinkLatency), "link_cycles")
}

// BenchmarkTable4_2_Inputs reports the benchmark footprints per scale.
func BenchmarkTable4_2_Inputs(b *testing.B) {
	var total uint32
	for i := 0; i < b.N; i++ {
		total = 0
		for _, p := range workloads.Catalog(workloads.Small, 16) {
			total += p.FootprintBytes()
		}
	}
	b.ReportMetric(float64(total)/1024/1024, "small_total_MB")
}

// One benchmark per figure of the evaluation (§5).

func BenchmarkFig5_1a_OverallTraffic(b *testing.B)   { reportFigure(b, "5.1a") }
func BenchmarkFig5_1b_LoadTraffic(b *testing.B)      { reportFigure(b, "5.1b") }
func BenchmarkFig5_1c_StoreTraffic(b *testing.B)     { reportFigure(b, "5.1c") }
func BenchmarkFig5_1d_WritebackTraffic(b *testing.B) { reportFigure(b, "5.1d") }
func BenchmarkFig5_2_ExecutionTime(b *testing.B)     { reportFigure(b, "5.2") }
func BenchmarkFig5_3a_L1FetchWaste(b *testing.B)     { reportFigure(b, "5.3a") }
func BenchmarkFig5_3b_L2FetchWaste(b *testing.B)     { reportFigure(b, "5.3b") }
func BenchmarkFig5_3c_MemFetchWaste(b *testing.B)    { reportFigure(b, "5.3c") }

// BenchmarkHeadlineSummary reports the paper's §5.1 averages as metrics
// (values are reduction percentages; paper: 39.5 / 13.9 / 6.2 / 10.5).
func BenchmarkHeadlineSummary(b *testing.B) {
	m := sharedMatrix(b)
	var s *core.Summary
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = m.Summarize()
	}
	b.StopTimer()
	b.ReportMetric(s.TrafficDBypFullVsMESI*100, "traffic_DBypFull_vs_MESI_%")
	b.ReportMetric(s.TrafficDeNovoVsMESI*100, "traffic_DeNovo_vs_MESI_%")
	b.ReportMetric(s.TrafficMMemL1VsMESI*100, "traffic_MMemL1_vs_MESI_%")
	b.ReportMetric(s.TimeDBypFullVsMESI*100, "time_DBypFull_vs_MESI_%")
	b.ReportMetric(s.DBypFullWasteShare*100, "DBypFull_waste_%")
	b.ReportMetric(s.MESIOverheadShare*100, "MESI_overhead_%")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// ablationRun measures one (protocol, benchmark) pair at Tiny scale under
// a possibly modified configuration and reports traffic + time metrics.
func ablationRun(b *testing.B, proto, bench string, mutate func(*memsys.Config)) {
	ablationRunSized(b, workloads.Tiny, proto, bench, mutate)
}

func ablationRunSized(b *testing.B, size workloads.Size, proto, bench string, mutate func(*memsys.Config)) {
	b.Helper()
	b.ReportAllocs()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		cfg := memsys.Default().Scaled(size.ScaleDiv())
		if mutate != nil {
			mutate(&cfg)
		}
		var err error
		res, err = core.RunOne(cfg, proto, workloads.MustByName(bench, size, 16))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Total(), "flit-hops")
	b.ReportMetric(float64(res.ExecCycles), "cycles")
	b.ReportMetric(res.WasteShare*100, "waste_%")
}

// Write-combining batching (§4.2): the 10,000-cycle timeout lets
// registrations for a line coalesce into one message. Cutting the timeout
// to near zero degenerates into per-word registration traffic — the same
// failure §5.2.2 describes for radix when the table cannot hold a line
// long enough. (The 32-entry cap itself rarely binds in this simulator:
// the scattered lines fall out of the small L1 first, carrying their
// pending registrations with the combined writeback.)
func BenchmarkAblationWriteCombineBatched(b *testing.B) {
	ablationRun(b, "DValidateL2", "FFT", nil)
}

func BenchmarkAblationWriteCombineNoBatch(b *testing.B) {
	ablationRun(b, "DValidateL2", "FFT", func(c *memsys.Config) { c.WriteCombineTimeout = 1 })
}

// Bloom filter geometry (§4.4): smaller filters raise the false-positive
// rate, shrinking the request-bypass benefit. radix keeps ~1024 scattered
// dirty lines on-chip, so undersized filters saturate.
func BenchmarkAblationBloomPaperSize(b *testing.B) {
	ablationRun(b, "DBypFull", "radix", nil)
}

func BenchmarkAblationBloomTiny(b *testing.B) {
	ablationRun(b, "DBypFull", "radix", func(c *memsys.Config) {
		c.Bloom.FiltersPerSlice = 2
		c.Bloom.Entries = 64
	})
}

// MemToL1 (§3.1): latency win for DeNovo without a traffic change; the
// MESI variant (MMemL1) also saves traffic.
func BenchmarkAblationDeNovoNoMemToL1(b *testing.B) {
	ablationRun(b, "DValidateL2", "FFT", nil)
}

func BenchmarkAblationDeNovoMemToL1(b *testing.B) {
	ablationRun(b, "DMemL1", "FFT", nil)
}

// Flex packet cap (§5.3): kD-tree's two-record edge communication region
// is exactly the 64B packet cap. Halving the cap truncates the prefetch,
// forcing extra requests and refetches — the packet-size sensitivity the
// paper blames for two of three edge lines being read twice from memory.
func BenchmarkAblationFlexCap4Flits(b *testing.B) {
	ablationRun(b, "DFlexL2", "kD-tree", nil)
}

func BenchmarkAblationFlexCap2Flits(b *testing.B) {
	ablationRun(b, "DFlexL2", "kD-tree", func(c *memsys.Config) { c.MaxDataFlits = 2 })
}

// Protocol end-to-end micro-benchmarks: simulation throughput per
// protocol family on one workload (events are the simulator's cost unit).
func BenchmarkSimThroughputMESI(b *testing.B) {
	ablationRun(b, "MESI", "LU", nil)
}

func BenchmarkSimThroughputDBypFull(b *testing.B) {
	ablationRun(b, "DBypFull", "LU", nil)
}

// Cycle-level vc-router throughput: the same end-to-end runs under the vc
// wormhole model, whose per-cycle kernel tick dominates simulator cost.
// These pin the hot-path optimizations (kernel recurring-tick slot, idle
// skip-ahead, allocation-free flit paths); compare against BENCH_pr5-era
// numbers via scripts/benchjson -compare.
func vcRun(c *memsys.Config) { c.Router = "vc" }

func BenchmarkSimThroughputVCMESI(b *testing.B) {
	ablationRun(b, "MESI", "LU", vcRun)
}

func BenchmarkSimThroughputVCDBypFull(b *testing.B) {
	ablationRun(b, "DBypFull", "LU", vcRun)
}

func BenchmarkSimThroughputVCHotspot(b *testing.B) {
	ablationRun(b, "MESI", "hotspot(t=1)", vcRun)
}

func BenchmarkSimThroughputVCUniform(b *testing.B) {
	ablationRun(b, "MESI", "uniform", vcRun)
}

// End-to-end throughput on the deflection router (the PR 10 third
// fabric model): the bufferless tick loop replaces vc's credit and
// allocation machinery with oldest-first arbitration plus the endpoint
// reorder buffer. The hotspot shape is the interesting one — it is where
// deflections (and the DeflectedHops waste category) actually occur.
func deflRun(c *memsys.Config) { c.Router = "deflection" }

func BenchmarkSimThroughputDeflectionMESI(b *testing.B) {
	ablationRun(b, "MESI", "LU", deflRun)
}

func BenchmarkSimThroughputDeflectionHotspot(b *testing.B) {
	ablationRun(b, "MESI", "hotspot(t=1)", deflRun)
}

func BenchmarkSimThroughputDeflectionUniform(b *testing.B) {
	ablationRun(b, "MESI", "uniform", deflRun)
}

// Mesh-scaling throughput (the PR 8 geometry axis): the same vc-router
// end-to-end runs on re-dimensioned fabrics. The 16 worker threads map to
// the first 16 of 64/256 tiles, so the larger grids are sparser — on a
// 16x16 mesh with a single hot tile most of the fabric idles, which is
// exactly the case the O(active) tick path (active-node bitmask instead
// of a per-cycle scan of all 256 routers) exists for.
func mesh8x8VCRun(c *memsys.Config)   { *c = c.WithMesh(8, 8); c.Router = "vc" }
func mesh16x16VCRun(c *memsys.Config) { *c = c.WithMesh(16, 16); c.Router = "vc" }

func BenchmarkSimThroughputVCMesh8x8(b *testing.B) {
	ablationRun(b, "MESI", "uniform", mesh8x8VCRun)
}

func BenchmarkSimThroughputVCMesh16x16(b *testing.B) {
	ablationRun(b, "MESI", "uniform", mesh16x16VCRun)
}

func BenchmarkSimThroughputVCSparseHotspot16x16(b *testing.B) {
	ablationRun(b, "MESI", "hotspot(t=1)", mesh16x16VCRun)
}

// Extension beyond the paper (its §6 follow-up): hardware counter-based
// reuse prediction for L2 bypass instead of software annotations.
// Compare with the software-annotated DBypL2 on the same benchmark.
func BenchmarkExtensionBypassSoftware(b *testing.B) {
	ablationRun(b, "DBypL2", "kD-tree", nil)
}

func BenchmarkExtensionBypassHardware(b *testing.B) {
	ablationRun(b, "DBypHW", "kD-tree", nil)
}

// --- Synthetic-pattern benches (the PR 4 workload axis) ---
//
// The same traffic/time/waste metrics on the registry's synthetic
// patterns, so the trajectory tracks protocol behavior under controlled
// sharing shapes alongside the application mixes. Hotspot at a single hot
// tile is the concentration extreme; uniform is the spread extreme.
func BenchmarkAblationSyntheticUniformMESI(b *testing.B) {
	ablationRun(b, "MESI", "uniform", nil)
}

func BenchmarkAblationSyntheticUniformDeNovo(b *testing.B) {
	ablationRun(b, "DeNovo", "uniform", nil)
}

func BenchmarkAblationSyntheticHotspotMESI(b *testing.B) {
	ablationRun(b, "MESI", "hotspot(t=1)", nil)
}

func BenchmarkAblationSyntheticHotspotDeNovo(b *testing.B) {
	ablationRun(b, "DeNovo", "hotspot(t=1)", nil)
}

// --- Sweep benches (the PR 5 third axis) ---
//
// One assembled curve per bench: the Tiny hotspot concentration sweep
// (the golden sweep's shape) and a vc-router injection-rate sweep. The
// reported metrics are the curve's endpoints — traffic and mean packet
// latency at the lightest and heaviest point — so the trajectory tracks
// the curve shape, not just one operating point.
func sweepBench(b *testing.B, opt core.MatrixOptions, spec string) {
	b.Helper()
	var table *core.SweepTable
	for i := 0; i < b.N; i++ {
		res, err := core.RunSweep(opt, spec)
		if err != nil {
			b.Fatal(err)
		}
		table = res.Table()
	}
	// Endpoints of one protocol's curve (the first listed), so first-vs-last
	// deltas measure the load axis, not a protocol difference.
	proto := table.Rows[0].Protocol
	var curve []core.SweepRow
	for _, r := range table.Rows {
		if r.Protocol == proto {
			curve = append(curve, r)
		}
	}
	first, last := curve[0], curve[len(curve)-1]
	b.ReportMetric(float64(len(table.Rows)), "rows")
	b.ReportMetric(first.Values[0], "first_flit-hops")
	b.ReportMetric(last.Values[0], "last_flit-hops")
	b.ReportMetric(first.Values[2], "first_mean_lat")
	b.ReportMetric(last.Values[2], "last_mean_lat")
}

func BenchmarkSweepHotspotConcentration(b *testing.B) {
	sweepBench(b, core.MatrixOptions{
		Size:      workloads.Tiny,
		Protocols: []string{"MESI", "DeNovo"},
	}, "hotspot(t=1,2,4,8,16)")
}

func BenchmarkSweepUniformLoadVC(b *testing.B) {
	sweepBench(b, core.MatrixOptions{
		Size:      workloads.Tiny,
		Router:    "vc",
		Protocols: []string{"MESI"},
	}, "uniform(p=0.02..0.1..0.04)")
}

// Trace replay overhead: replaying a recorded FFT trace must cost the
// same simulated work as the live program (the recorded stream is
// bit-identical); the bench pins the replay path's throughput.
func BenchmarkAblationTraceReplayFFT(b *testing.B) {
	dir := b.TempDir()
	path := dir + "/fft.trc"
	if err := trace.WriteFile(path, trace.Record(workloads.MustByName("FFT", workloads.Tiny, 16))); err != nil {
		b.Fatal(err)
	}
	ablationRun(b, "MESI", "replay(file="+path+")", nil)
}
