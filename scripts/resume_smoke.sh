#!/usr/bin/env bash
# Kill-and-resume + cache-reuse smoke for the sweep point cache.
#
# Three runs of one sweep: an uncached reference, a cached run killed
# (SIGINT) as soon as its first point lands on disk, and the resumed run
# that must (a) print a table byte-identical to the reference and (b) only
# simulate the points the killed run didn't finish. A fourth identical run
# must simulate nothing at all — the cache-reuse guarantee.
set -euo pipefail
cd "$(dirname "$0")/.."

SWEEP='hotspot(t=1..8)'
NPOINTS=8
ARGS=(-sweep "$SWEEP" -size tiny -protocols MESI,DeNovo)

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
cache="$work/cache"

go build -o "$work/trafficsim" ./cmd/trafficsim

echo "== reference run (no cache)"
"$work/trafficsim" "${ARGS[@]}" -q > "$work/ref.txt"

# One worker keeps the killed run serial (the widest window between the
# first persisted point and the last), and the whole kill phase retries:
# on a fast runner the sweep can still finish before the 50ms-granularity
# poll spots the first cache entry and the SIGINT lands, which is a lost
# race, not a failure. Worker count cannot change any result — that is
# the engine's determinism guarantee — so the reference stays comparable.
echo "== cached run, killed after the first point persists"
persisted=
for attempt in 1 2 3 4 5; do
  rm -rf "$cache"
  "$work/trafficsim" "${ARGS[@]}" -cachedir "$cache" -workers 1 -q > /dev/null 2>&1 &
  pid=$!
  for _ in $(seq 200); do
    compgen -G "$cache/*.json" > /dev/null && break
    kill -0 "$pid" 2> /dev/null || break
    sleep 0.05
  done
  kill -INT "$pid" 2> /dev/null || true
  if wait "$pid"; then
    echo "   attempt $attempt: sweep finished before the kill landed; retrying"
    continue
  fi
  compgen -G "$cache/*.json" > /dev/null \
    || { echo "   attempt $attempt: killed before any point persisted; retrying"; continue; }
  n=$(ls "$cache"/*.json | wc -l)
  if [ "$n" -ge "$NPOINTS" ]; then
    echo "   attempt $attempt: all $n points persisted before the kill; retrying"
    continue
  fi
  persisted=$n
  break
done
[ -n "$persisted" ] || { echo "kill never landed mid-sweep in 5 attempts"; exit 1; }
echo "   killed with $persisted point(s) persisted"

echo "== resumed run: table must be byte-identical to the reference"
"$work/trafficsim" "${ARGS[@]}" -cachedir "$cache" -resume > "$work/resumed.txt" 2>"$work/resumed.err"
diff -u "$work/ref.txt" "$work/resumed.txt"
grep -F "$NPOINTS/$NPOINTS points complete ($persisted cached, $((NPOINTS - persisted)) simulated)" "$work/resumed.err" \
  || { echo "resumed run did not reuse the $persisted persisted point(s):"; cat "$work/resumed.err"; exit 1; }

echo "== rerun: a fully cached sweep must simulate zero points"
"$work/trafficsim" "${ARGS[@]}" -cachedir "$cache" -resume > "$work/cached.txt" 2>"$work/cached.err"
diff -u "$work/ref.txt" "$work/cached.txt"
grep -F "$NPOINTS/$NPOINTS points complete ($NPOINTS cached, 0 simulated)" "$work/cached.err" \
  || { echo "rerun simulated points it should have served from cache:"; cat "$work/cached.err"; exit 1; }

# The mesh axis re-dimensions the whole fabric per point, and the point
# key hashes the dimensions — an 8x8 point must persist, reload under
# its own key, and never be confused with the 4x4 point.
echo "== mesh-axis sweep: the 8x8 point caches and reloads under the dims-aware key"
mcache="$work/mesh-cache"
MARGS=(-sweep mesh=4x4,8x8 -router vc -size tiny -benchmarks 'hotspot(t=1)' -protocols MESI)
"$work/trafficsim" "${MARGS[@]}" -q > "$work/mesh-ref.txt"
"$work/trafficsim" "${MARGS[@]}" -cachedir "$mcache" > "$work/mesh-first.txt" 2>"$work/mesh-first.err"
diff -u "$work/mesh-ref.txt" "$work/mesh-first.txt"
grep -F "2/2 points complete (0 cached, 2 simulated)" "$work/mesh-first.err" \
  || { echo "first mesh sweep did not simulate both points:"; cat "$work/mesh-first.err"; exit 1; }
"$work/trafficsim" "${MARGS[@]}" -cachedir "$mcache" -resume > "$work/mesh-cached.txt" 2>"$work/mesh-cached.err"
diff -u "$work/mesh-ref.txt" "$work/mesh-cached.txt"
grep -F "2/2 points complete (2 cached, 0 simulated)" "$work/mesh-cached.err" \
  || { echo "mesh rerun simulated points it should have served from cache:"; cat "$work/mesh-cached.err"; exit 1; }

echo "resume smoke OK"
