// Command benchjson converts `go test -bench` output on stdin into the
// benchmark-trajectory JSON committed as BENCH_pr<n>.json (see
// scripts/bench.sh). Each benchmark line becomes one record holding every
// reported metric (ns/op, B/op, allocs/op and the custom figure metrics).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type output struct {
	Tool       string   `json:"tool"`
	Command    string   `json:"command"`
	Note       string   `json:"note"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := output{
		Tool:    "scripts/bench.sh",
		Command: "go test -bench=. -benchmem -benchtime=1x -run '^$'",
		Note: "figure benches aggregate the Small-scale 9x6 matrix; ablation and sweep benches run Tiny. " +
			"Custom metrics (percent-of-MESI stacks, flit-hops, cycles, curve endpoints) are deterministic; " +
			"ns/op, B/op and allocs/op are environment-dependent.",
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... --- FAIL"
		}
		rec := record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			rec.Metrics[fields[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
