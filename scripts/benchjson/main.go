// Command benchjson converts `go test -bench` output on stdin into the
// benchmark-trajectory JSON committed as BENCH_pr<n>.json (see
// scripts/bench.sh). Each benchmark line becomes one record holding every
// reported metric (ns/op, B/op, allocs/op and the custom figure metrics).
//
// With -compare old.json new.json it instead prints a per-benchmark
// markdown delta table (ns/op and allocs/op) for the two trajectory
// snapshots — CI appends it to the job summary — and warns loudly on
// stderr for every benchmark that got more than 20% slower. Warnings do
// not fail the command: wall-clock on shared runners is noisy, and the
// committed trajectory exists precisely so a human can tell a real
// regression from runner jitter.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type output struct {
	Tool       string   `json:"tool"`
	Command    string   `json:"command"`
	Note       string   `json:"note"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 {
		if os.Args[1] == "-compare" && len(os.Args) == 4 {
			if err := compare(os.Args[2], os.Args[3]); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
			return
		}
		fmt.Fprintln(os.Stderr, "usage: benchjson < bench.txt > out.json\n       benchjson -compare old.json new.json")
		os.Exit(2)
	}
	out := output{
		Tool:    "scripts/bench.sh",
		Command: "go test -bench=. -benchmem -benchtime=1x -run '^$'",
		Note: "figure benches aggregate the Small-scale 9x6 matrix; ablation and sweep benches run Tiny. " +
			"Custom metrics (percent-of-MESI stacks, flit-hops, cycles, curve endpoints) are deterministic; " +
			"ns/op, B/op and allocs/op are environment-dependent — judge cross-snapshot deltas against an " +
			"unchanged bench like SimThroughputMESI before blaming the code. PR 6 same-machine before/after " +
			"for the then-new vc benches (ns/op, 3-iteration runs): SimThroughputVCMESI 277ms->75ms, " +
			"VCDBypFull 257->87, VCHotspot 53->18, VCUniform 55->19, SweepUniformLoadVC 164->55. " +
			"PR 8 (O(active) tick) same-machine before/after on the router-isolated internal/mesh benches, " +
			"where the fabric runs without the protocol engines that dominate the end-to-end benches " +
			"(ns/op, 3-run means): VCSparseFlow16x16 51.0us->16.0us (3.2x), VCSparseHotspot16x16 " +
			"57.1us->30.9us (1.8x), VCSparseFlow4x4 ~3.5us and VCDense4x4 ~37us unchanged (within noise); " +
			"end-to-end SimThroughputVCMesh8x8/16x16 and VCSparseHotspot16x16 are new at PR 8 and their " +
			"simulation metrics (cycles, flit-hops) were bit-identical across the rewrite.",
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... --- FAIL"
		}
		rec := record{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			rec.Metrics[fields[i+1]] = v
		}
		out.Benchmarks = append(out.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(out.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// regressionPct is the slowdown beyond which a benchmark delta is flagged
// as a loud warning.
const regressionPct = 20.0

// compare prints a per-benchmark markdown delta table for two trajectory
// snapshots and warns on stderr about every >20% ns/op regression.
func compare(oldPath, newPath string) error {
	older, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newer, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}
	oldIdx := map[string]record{}
	for _, r := range older.Benchmarks {
		oldIdx[r.Name] = r
	}
	newNames := map[string]bool{}

	fmt.Printf("### Bench trajectory: %s → %s\n\n", oldPath, newPath)
	fmt.Println("ns/op and allocs/op are environment-dependent; the custom metrics " +
		"(flit-hops, cycles, curve endpoints) inside the snapshots are the deterministic ground truth.")
	fmt.Println()
	fmt.Println("| benchmark | ns/op (old) | ns/op (new) | Δ ns/op | allocs/op (old) | allocs/op (new) | note |")
	fmt.Println("|---|---:|---:|---:|---:|---:|---|")

	var regressions []string
	for _, nr := range newer.Benchmarks {
		newNames[nr.Name] = true
		or, ok := oldIdx[nr.Name]
		if !ok {
			fmt.Printf("| %s | — | %s | — | — | %s | new in %s |\n",
				nr.Name, num(nr.Metrics["ns/op"]), num(nr.Metrics["allocs/op"]), newPath)
			continue
		}
		oldNs, newNs := or.Metrics["ns/op"], nr.Metrics["ns/op"]
		note := ""
		delta := "—"
		if oldNs > 0 && newNs > 0 {
			pct := (newNs - oldNs) / oldNs * 100
			delta = fmt.Sprintf("%+.1f%%", pct)
			switch {
			case pct > regressionPct:
				note = fmt.Sprintf("⚠️ **>%.0f%% slower**", regressionPct)
				regressions = append(regressions,
					fmt.Sprintf("%s: %s -> %s ns/op (%+.1f%%)", nr.Name, num(oldNs), num(newNs), pct))
			case pct < -regressionPct:
				note = "✅ faster"
			}
		}
		fmt.Printf("| %s | %s | %s | %s | %s | %s | %s |\n",
			nr.Name, num(oldNs), num(newNs), delta,
			num(or.Metrics["allocs/op"]), num(nr.Metrics["allocs/op"]), note)
	}
	for _, or := range older.Benchmarks {
		if !newNames[or.Name] {
			fmt.Printf("| %s | %s | — | — | %s | — | removed in %s |\n",
				or.Name, num(or.Metrics["ns/op"]), num(or.Metrics["allocs/op"]), newPath)
		}
	}
	fmt.Println()
	if len(regressions) > 0 {
		fmt.Printf("**%d benchmark(s) regressed by more than %.0f%% — check whether the cause is the "+
			"change or the runner before merging.**\n", len(regressions), regressionPct)
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "WARNING: bench regression: %s\n", r)
		}
	} else {
		fmt.Printf("No benchmark regressed by more than %.0f%%.\n", regressionPct)
	}
	return nil
}

// loadSnapshot reads one committed BENCH_pr<n>.json trajectory file.
func loadSnapshot(path string) (*output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var o output
	if err := json.Unmarshal(data, &o); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(o.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	return &o, nil
}

// num renders a metric compactly: integers without decimals, everything at
// full precision otherwise.
func num(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}
