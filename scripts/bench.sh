#!/usr/bin/env bash
# Regenerate the benchmark trajectory snapshot (BENCH_pr10.json).
#
# One iteration per benchmark (-benchtime=1x): the headline values are the
# reported custom metrics — percent-of-MESI figure stacks over the
# Small-scale 9x6 matrix, flit-hops/cycles for the Tiny ablations — which
# are fully deterministic. Wall-clock ns/op is recorded but is environment
# noise; compare metrics, not times, across commits. The Tiny synthetic-
# pattern benches (BenchmarkAblationSynthetic*, trace replay) track the
# PR 4 workload axis, the sweep benches (BenchmarkSweep*: hotspot
# concentration, vc injection-rate curve endpoints) track the PR 5 sweep
# engine, and the vc-router throughput benches (BenchmarkSimThroughputVC*)
# plus the kernel microbenches track the PR 6 hot-path work, alongside the
# figure stacks. The mesh-scaling benches (SimThroughputVCMesh*, the
# router-isolated BenchmarkVC* in internal/mesh) track the PR 8 geometry
# axis and the O(active) tick path, and the deflection-router benches
# (SimThroughputDeflection*, the router-isolated BenchmarkDefl* in
# internal/mesh) track the PR 10 bufferless model. Compare two snapshots
# with:
#   go run ./scripts/benchjson -compare BENCH_pr8.json BENCH_pr10.json
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_pr10.json}"
# The kernel and router microbenches are too fast for -benchtime=1x to
# mean anything, so they get fixed iteration counts instead.
{
  go test -bench=. -benchmem -benchtime=1x -run '^$' -timeout 60m .
  go test -bench=. -benchmem -benchtime=100000x -run '^$' ./internal/sim
  go test -bench=. -benchmem -benchtime=10000x -run '^$' ./internal/mesh
} | tee /dev/stderr \
  | go run ./scripts/benchjson > "$out"
echo "wrote $out" >&2
