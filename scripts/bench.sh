#!/usr/bin/env bash
# Regenerate the benchmark trajectory snapshot (BENCH_pr5.json).
#
# One iteration per benchmark (-benchtime=1x): the headline values are the
# reported custom metrics — percent-of-MESI figure stacks over the
# Small-scale 9x6 matrix, flit-hops/cycles for the Tiny ablations — which
# are fully deterministic. Wall-clock ns/op is recorded but is environment
# noise; compare metrics, not times, across commits. The Tiny synthetic-
# pattern benches (BenchmarkAblationSynthetic*, trace replay) track the
# PR 4 workload axis, and the sweep benches (BenchmarkSweep*: hotspot
# concentration, vc injection-rate curve endpoints) track the PR 5 sweep
# engine, alongside the figure stacks.
#
# Usage: scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
out="${1:-BENCH_pr5.json}"
go test -bench=. -benchmem -benchtime=1x -run '^$' -timeout 60m . \
  | tee /dev/stderr \
  | go run ./scripts/benchjson > "$out"
echo "wrote $out" >&2
