#!/usr/bin/env bash
# End-to-end smoke test for cmd/simserver: the HTTP transport must serve
# the exact bytes the CLI prints (the byte-identity contract across the
# shared orchestration layer), serve identical resubmissions from the
# cache with zero simulated points, reject malformed specs loudly with
# the CLI's own validation message, and drain cleanly on SIGTERM.
#
# Usage: scripts/simserver_smoke.sh  (from the repo root; needs curl + jq)
set -euo pipefail

ADDR=127.0.0.1:18473
BASE="http://$ADDR"
WORK=$(mktemp -d)
SWEEP='hotspot(t=1,2)'

cleanup() {
  [[ -n "${SRV_PID:-}" ]] && kill -9 "$SRV_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== build"
go build -o "$WORK/trafficsim" ./cmd/trafficsim
go build -o "$WORK/simserver" ./cmd/simserver

echo "== golden: the CLI's table for the sweep"
"$WORK/trafficsim" -sweep "$SWEEP" -protocols MESI -q > "$WORK/cli.out"

echo "== start simserver"
"$WORK/simserver" -addr "$ADDR" -cachedir "$WORK/cache" -grace 20s &
SRV_PID=$!
for i in $(seq 1 50); do
  curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1 && break
  [[ $i == 50 ]] && { echo "server never came up"; exit 1; }
  sleep 0.2
done

wait_done() {
  local id=$1
  for i in $(seq 1 300); do
    state=$(curl -fsS "$BASE/v1/jobs/$id" | jq -r .state)
    case "$state" in
      done) return 0 ;;
      failed|cancelled) echo "job $id ended $state"; curl -fsS "$BASE/v1/jobs/$id"; exit 1 ;;
    esac
    sleep 0.2
  done
  echo "job $id never finished"; exit 1
}

echo "== submit the same sweep over HTTP"
ID=$(curl -fsS "$BASE/v1/jobs" \
  -d "{\"sweep\":\"$SWEEP\",\"protocols\":[\"MESI\"]}" | jq -r .id)
wait_done "$ID"
curl -fsS "$BASE/v1/jobs/$ID/result?format=text" > "$WORK/http.out"
if ! cmp "$WORK/cli.out" "$WORK/http.out"; then
  echo "HTTP result is not byte-identical to the CLI table"
  diff "$WORK/cli.out" "$WORK/http.out" || true
  exit 1
fi
echo "   byte-identical to trafficsim -sweep"

echo "== the event stream replays gap-free"
SEQS=$(curl -fsS "$BASE/v1/jobs/$ID/events" | jq -r .seq | paste -sd, -)
EXPECT=$(seq 0 "$(( $(echo "$SEQS" | tr ',' '\n' | wc -l) - 1 ))" | paste -sd, -)
[[ "$SEQS" == "$EXPECT" ]] || { echo "event seqs not gap-free: $SEQS"; exit 1; }

echo "== identical resubmission is served from the cache (0 simulated)"
ID2=$(curl -fsS "$BASE/v1/jobs" \
  -d "{\"sweep\":\"$SWEEP\",\"protocols\":[\"MESI\"]}" | jq -r .id)
wait_done "$ID2"
STATUS=$(curl -fsS "$BASE/v1/jobs/$ID2")
CACHED=$(echo "$STATUS" | jq .progress.points_cached)
DONE=$(echo "$STATUS" | jq .progress.points_done)
if [[ "$CACHED" != 2 || "$DONE" != 2 ]]; then
  echo "resubmission was not fully cache-served: $STATUS"; exit 1
fi
curl -fsS "$BASE/v1/jobs/$ID2/result?format=text" > "$WORK/http2.out"
cmp "$WORK/cli.out" "$WORK/http2.out" || { echo "cached result differs"; exit 1; }

echo "== malformed spec is a loud 400 with the CLI's message"
CODE=$(curl -s -o "$WORK/err.json" -w '%{http_code}' "$BASE/v1/jobs" \
  -d '{"sweep":"hotspot(t=4)"}')
[[ "$CODE" == 400 ]] || { echo "want 400, got $CODE"; exit 1; }
grep -q 'no parameter has multiple values' "$WORK/err.json" \
  || { echo "400 body lost the validation message:"; cat "$WORK/err.json"; exit 1; }

echo "== SIGTERM drains cleanly (exit 0)"
kill -TERM "$SRV_PID"
EXIT=0
wait "$SRV_PID" || EXIT=$?
SRV_PID=
[[ "$EXIT" == 0 ]] || { echo "simserver exited $EXIT on SIGTERM"; exit 1; }

echo "simserver smoke: ok"
