// Command doccheck enforces the repo's godoc standard, next to go vet in
// CI: every package under internal/ and cmd/ must carry a package doc
// comment, and every exported top-level symbol in the packages listed in
// fullCoverage (the library surface users program against) must carry a
// doc comment. It prints one line per violation and exits nonzero if any
// exist, so a drive-by export cannot silently regress the docs site.
//
// Usage: go run ./scripts/doccheck (from the repo root).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// fullCoverage lists the package directories where every exported symbol —
// types, funcs, methods, consts, vars — must have a doc comment, not just
// the package clause: the registry/engine/sweep surface (internal/core),
// the workload and trace registries, the interconnect, and the coherence
// substrate. The protocol state machines and leaf building blocks only
// need package docs; their exported surface is documented
// opportunistically.
var fullCoverage = map[string]bool{
	"internal/core":      true,
	"internal/job":       true,
	"internal/workloads": true,
	"internal/trace":     true,
	"internal/mesh":      true,
	"internal/coher":     true,
}

func main() {
	var violations []string
	pkgDirs := map[string][]*ast.File{}
	fset := token.NewFileSet()

	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return fmt.Errorf("parse %s: %w", path, err)
			}
			dir := filepath.ToSlash(filepath.Dir(path))
			pkgDirs[dir] = append(pkgDirs[dir], f)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	dirs := make([]string, 0, len(pkgDirs))
	for dir := range pkgDirs {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)

	for _, dir := range dirs {
		files := pkgDirs[dir]
		hasPkgDoc := false
		for _, f := range files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			violations = append(violations, fmt.Sprintf("%s: package %s has no package doc comment", dir, files[0].Name.Name))
		}
		if !fullCoverage[dir] {
			continue
		}
		for _, f := range files {
			for _, decl := range f.Decls {
				violations = append(violations, checkDecl(fset, decl)...)
			}
		}
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported symbol(s)/package(s)\n", len(violations))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}

// checkDecl returns a violation per undocumented exported symbol in one
// top-level declaration.
func checkDecl(fset *token.FileSet, decl ast.Decl) []string {
	var out []string
	at := func(pos token.Pos) string { return fset.Position(pos).String() }
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		name := d.Name.Name
		if d.Recv != nil && len(d.Recv.List) > 0 {
			recv := recvTypeName(d.Recv.List[0].Type)
			// Methods on unexported types are not part of the godoc
			// surface unless the type is reachable; hold the same bar for
			// exported receiver types only.
			if !ast.IsExported(recv) {
				return nil
			}
			name = recv + "." + name
		}
		out = append(out, fmt.Sprintf("%s: exported %s has no doc comment", at(d.Pos()), name))
	case *ast.GenDecl:
		// A doc comment on the grouped decl covers every spec inside it
		// (the idiomatic const/var block comment).
		if d.Doc != nil {
			return nil
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
					out = append(out, fmt.Sprintf("%s: exported type %s has no doc comment", at(s.Pos()), s.Name.Name))
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						out = append(out, fmt.Sprintf("%s: exported %s has no doc comment", at(n.Pos()), n.Name))
					}
				}
			}
		}
	}
	return out
}

// recvTypeName unwraps a method receiver type to its base identifier.
func recvTypeName(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr: // generic receiver T[P]
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
